#!/bin/sh
# Formatting check, gated on ocamlformat being installed.
#
# Default mode reports unformatted files as warnings and exits 0, so the
# check can sit in the default `dune runtest` tier without breaking
# environments that lack ocamlformat (the CI container does not ship it).
# Set RGS_FMT_STRICT=1 to turn reports into a failure.

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check_fmt: ocamlformat not installed; skipping formatting check"
  exit 0
fi

cd "$(dirname "$0")/.." || exit 1

dirty=0
for f in $(find lib bin bench test examples \( -name '*.ml' -o -name '*.mli' \) 2>/dev/null | sort); do
  if ! ocamlformat --check "$f" >/dev/null 2>&1; then
    echo "check_fmt: needs formatting: $f"
    dirty=1
  fi
done

if [ "$dirty" = 1 ] && [ "${RGS_FMT_STRICT:-0}" = 1 ]; then
  echo "check_fmt: FAILED (RGS_FMT_STRICT=1)"
  exit 1
fi
if [ "$dirty" = 1 ]; then
  echo "check_fmt: warnings only (set RGS_FMT_STRICT=1 to fail)"
fi
exit 0
