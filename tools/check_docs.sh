#!/bin/sh
# Interface-documentation check, gated on odoc being installed.
#
# Two layers:
#   1. Always on: every .mli under lib/core, lib/sequence, lib/server and
#      lib/post must open with
#      a module-level doc comment ("(**" as its first token), so each
#      public module states its contract where odoc and readers look first.
#   2. When odoc is installed: `dune build @doc` must succeed with odoc
#      warnings promoted to errors (bad references, missing labels). The CI
#      container does not ship odoc, so this layer no-ops with a notice
#      there, mirroring tools/check_fmt.sh.

cd "$(dirname "$0")/.." || exit 1

missing=0
for f in $(find lib/core lib/sequence lib/server lib/post -name '*.mli' 2>/dev/null | sort); do
  # first non-blank line must start the module doc comment
  first=$(sed -n '/[^[:space:]]/{p;q;}' "$f")
  case "$first" in
    "(**"*) ;;
    *)
      echo "check_docs: $f: missing module-level doc comment (must start with '(**')"
      missing=1
      ;;
  esac
done

if [ "$missing" = 1 ]; then
  echo "check_docs: FAILED (undocumented interfaces)"
  exit 1
fi

if ! command -v odoc >/dev/null 2>&1; then
  echo "check_docs: odoc not installed; skipping 'dune build @doc' (doc comments verified)"
  exit 0
fi

# Run in a separate build dir so this works from inside `dune runtest`
# (the outer build holds the default _build lock). The root dune file
# promotes odoc warnings to errors for this build.
if ! env -u INSIDE_DUNE dune build @doc --build-dir _build_doc 2>doc.log; then
  echo "check_docs: FAILED ('dune build @doc' with warnings as errors):"
  cat doc.log
  rm -f doc.log
  exit 1
fi
rm -f doc.log
echo "check_docs: odoc build clean"
exit 0
