#!/bin/sh
# Interface- and CLI-documentation check.
#
# Three layers:
#   1. Always on: every .mli under lib/core, lib/sequence, lib/store,
#      lib/server and lib/post must open with a module-level doc comment
#      ("(**" as its first token), so each public module states its
#      contract where odoc and readers look first.
#   2. Always on (when the CLI binaries are built): every `--flag`
#      mentioned in README.md or data/README.md must appear in the
#      generated --help of some CLI, so the README cannot list a flag
#      that was renamed or removed.
#   3. When odoc is installed: `dune build @doc` must succeed with odoc
#      warnings promoted to errors (bad references, missing labels). The
#      CI container does not ship odoc, so this layer no-ops with a
#      notice there, mirroring tools/check_fmt.sh.

cd "$(dirname "$0")/.." || exit 1

missing=0
for f in $(find lib/core lib/sequence lib/store lib/server lib/post \
    -name '*.mli' 2>/dev/null | sort); do
  # first non-blank line must start the module doc comment
  first=$(sed -n '/[^[:space:]]/{p;q;}' "$f")
  case "$first" in
    "(**"*) ;;
    *)
      echo "check_docs: $f: missing module-level doc comment (must start with '(**')"
      missing=1
      ;;
  esac
done

if [ "$missing" = 1 ]; then
  echo "check_docs: FAILED (undocumented interfaces)"
  exit 1
fi

# Layer 2: README flag staleness. Collect every --long-flag token the
# READMEs mention and demand each one appears in a generated --help page.
# Inside `dune runtest` the executables are declared deps (bin/*.exe in
# the build context); a direct source-tree run falls back to _build.
BIN=bin
[ -x "$BIN/rgsminer.exe" ] || BIN=_build/default/bin
if [ -x "$BIN/rgsminer.exe" ]; then
  help=$(
    "$BIN/rgsminer.exe" --help=plain 2>/dev/null
    "$BIN/rgsminer.exe" pack --help=plain 2>/dev/null
    "$BIN/rgsminerd.exe" --help=plain 2>/dev/null
    "$BIN/rgsworker.exe" --help=plain 2>/dev/null
    "$BIN/rgsgen.exe" --help=plain 2>/dev/null
    for sub in quest jboss clickstream tcas; do
      "$BIN/rgsgen.exe" "$sub" --help=plain 2>/dev/null
    done
    for sub in gen-quest comparators fig4 casestudy; do
      "$BIN/experiments.exe" "$sub" --help=plain 2>/dev/null
    done
  )
  stale=0
  for readme in README.md data/README.md; do
    for flag in $(grep -o -- '--[a-z][a-z0-9-]*' "$readme" | sort -u); do
      case "$help" in
        *"$flag"*) ;;
        *)
          echo "check_docs: $readme mentions $flag, which no CLI --help documents"
          stale=1
          ;;
      esac
    done
  done
  if [ "$stale" = 1 ]; then
    echo "check_docs: FAILED (stale README flag listings)"
    exit 1
  fi
  echo "check_docs: README flags all present in generated --help"
else
  echo "check_docs: CLI binaries not built; skipping README flag check"
fi

if ! command -v odoc >/dev/null 2>&1; then
  echo "check_docs: odoc not installed; skipping 'dune build @doc' (doc comments verified)"
  exit 0
fi

# Run in a separate build dir so this works from inside `dune runtest`
# (the outer build holds the default _build lock). The root dune file
# promotes odoc warnings to errors for this build.
if ! env -u INSIDE_DUNE dune build @doc --build-dir _build_doc 2>doc.log; then
  echo "check_docs: FAILED ('dune build @doc' with warnings as errors):"
  cat doc.log
  rm -f doc.log
  exit 1
fi
rm -f doc.log
echo "check_docs: odoc build clean"
exit 0
