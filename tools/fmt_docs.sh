#!/bin/sh
# Markdown link check: every relative link target in the repo's own docs
# must exist. External links (http/https/mailto) and pure anchors are not
# checked — this guards against the common failure of renaming or moving
# a file and leaving `[text](OLD.md)` behind, not against the network.
#
# Scope: the hand-written docs at the repo root plus data/README.md.
# Driver-owned and reference-dump files (ISSUE.md, PAPER.md, PAPERS.md,
# SNIPPETS.md) are excluded: they are not ours to fix and may quote
# `](...)` fragments inside code blocks.

cd "$(dirname "$0")/.." || exit 1

DOCS="README.md DESIGN.md OBSERVABILITY.md FORMAT.md ROADMAP.md \
      CHANGES.md data/README.md"
[ -f EXPERIMENTS.md ] && DOCS="$DOCS EXPERIMENTS.md"
[ -f PROTOCOL.md ] && DOCS="$DOCS PROTOCOL.md"

dead=0
for doc in $DOCS; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # inline links: ](target) — one per line via grep -o, then strip the
  # wrapper. Targets containing ')' or whitespace are out of scope.
  for target in $(grep -o ']([^)<>[:space:]]*)' "$doc" 2>/dev/null \
                  | sed 's/^](//; s/)$//'); do
    case "$target" in
      http://*|https://*|mailto:*|'#'*|'') continue ;;
    esac
    path=${target%%#*}          # drop any anchor
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "fmt_docs: $doc: dead relative link -> $target"
      dead=1
    fi
  done
done

if [ "$dead" = 1 ]; then
  echo "fmt_docs: FAILED (dead relative links)"
  exit 1
fi
echo "fmt_docs: all relative links resolve"
exit 0
