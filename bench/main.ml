(* Benchmark harness: regenerates every table and figure of the paper
   (Section A) and runs one Bechamel micro-benchmark per experiment id
   (Section B).

   Run with: dune exec bench/main.exe
   Knobs (environment):
     RGS_BENCH_SCALE    dataset scale relative to the paper (default 0.05)
     RGS_BENCH_TIMEOUT  per-mining-run cut-off in seconds (default 5)
     RGS_BENCH_SKIP_TABLES / RGS_BENCH_SKIP_MICRO  set to 1 to skip a section

   The tables here are shape-checks at reduced scale; EXPERIMENTS.md records
   the larger-budget runs produced with bin/experiments.exe. *)

module E = Rgs_experiments

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let env_flag name = Sys.getenv_opt name = Some "1"

let scale = env_float "RGS_BENCH_SCALE" 0.05
let timeout_s = env_float "RGS_BENCH_TIMEOUT" 5.

let print_table title t =
  Format.printf "== %s ==@.%s@." title (Rgs_post.Report.to_string t)

(* --- Section A: paper tables and figures --- *)

let section_tables () =
  Format.printf "### Section A: paper tables and figures (scale %.2f, cut-off %.0fs)@.@."
    scale timeout_s;
  print_table "Table I: support semantics on Example 1.1" (E.Table1.report ());
  let sweep name ~x_label (rows, label) =
    print_table
      (Printf.sprintf "%s — %s" name label)
      (E.Sweeps.report ~x_label rows);
    print_string (E.Sweeps.charts rows);
    print_newline ()
  in
  sweep "Figure 2 (runtime & #patterns vs min_sup)" ~x_label:"min_sup"
    (E.Sweeps.fig2 ~scale ~timeout_s ());
  sweep "Figure 3 (runtime & #patterns vs min_sup)" ~x_label:"min_sup"
    (E.Sweeps.fig3 ~scale ~timeout_s ());
  sweep "Figure 4 (runtime & #patterns vs min_sup)" ~x_label:"min_sup"
    (E.Sweeps.fig4 ~scale:(max scale 0.1) ~timeout_s ());
  sweep "Figure 5 (vary #sequences D)" ~x_label:"D"
    (E.Sweeps.fig5 ~scale ~timeout_s ());
  sweep "Figure 6 (vary average length C=S)" ~x_label:"avg_len"
    (E.Sweeps.fig6 ~scale ~timeout_s ());
  let db = E.Exp_common.quest_d5c20n10s20 ~scale () in
  print_table "Sec IV-A comparators — D5C20N10S20-like, min_sup=10"
    (E.Comparators.report (E.Comparators.compare_all ~timeout_s db ~min_sup:10));
  let tcas = E.Exp_common.tcas_like ~scale:0.1 () in
  print_table "Ablation (DESIGN.md) — TCAS-like, min_sup=100"
    (E.Ablation.report (E.Ablation.run ~timeout_s tcas ~min_sup:100));
  let o = E.Case_study.run ~max_patterns:2000 () in
  print_table "Sec IV-B case study — JBoss-like traces, min_sup=18" (E.Case_study.report o)

(* --- Section B: bechamel micro-benchmarks, one per experiment id --- *)

open Bechamel
open Toolkit

let micro_tests () =
  let open Rgs_sequence in
  let open Rgs_core in
  (* Fixed small inputs so each staged function runs in well under 100ms. *)
  let table1_db = Seqdb.of_strings [ "AABCDABB"; "ABCD" ] in
  let quest = E.Exp_common.quest_d5c20n10s20 ~scale:0.02 () in
  let quest_idx = Inverted_index.build quest in
  let gazelle = E.Exp_common.gazelle_like ~scale:0.02 () in
  let gazelle_idx = Inverted_index.build gazelle in
  let tcas = E.Exp_common.tcas_like ~scale:0.02 () in
  let tcas_idx = Inverted_index.build tcas in
  let jboss, jboss_codec = E.Exp_common.jboss_like () in
  let jboss_idx = Inverted_index.build jboss in
  let lock = Option.get (Codec.find jboss_codec "TransImpl.lock") in
  let unlock = Option.get (Codec.find jboss_codec "TransImpl.unlock") in
  let lock_unlock = Pattern.of_list [ lock; unlock ] in
  let table3_idx = Inverted_index.build (Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ]) in
  let acb = Pattern.of_string "ACB" in
  [
    Test.make ~name:"table1:semantics-rows" (Staged.stage (fun () ->
        Sys.opaque_identity (E.Table1.rows ())));
    Test.make ~name:"fig2:clogsgrow-quest" (Staged.stage (fun () ->
        Sys.opaque_identity (Clogsgrow.mine ~max_length:4 quest_idx ~min_sup:5)));
    Test.make ~name:"fig3:clogsgrow-gazelle" (Staged.stage (fun () ->
        Sys.opaque_identity (Clogsgrow.mine ~max_length:3 gazelle_idx ~min_sup:60)));
    Test.make ~name:"fig4:clogsgrow-tcas" (Staged.stage (fun () ->
        Sys.opaque_identity (Clogsgrow.mine ~max_length:3 tcas_idx ~min_sup:15)));
    Test.make ~name:"fig5:gsgrow-quest" (Staged.stage (fun () ->
        Sys.opaque_identity (Gsgrow.mine ~max_length:4 quest_idx ~min_sup:5)));
    Test.make ~name:"fig6:supcomp-long-pattern" (Staged.stage (fun () ->
        Sys.opaque_identity (Sup_comp.support table3_idx acb)));
    Test.make ~name:"comparators:prefixspan-quest" (Staged.stage (fun () ->
        Sys.opaque_identity (Rgs_baselines.Prefixspan.mine ~max_length:4 quest ~min_sup:5)));
    Test.make ~name:"comparators:bide-quest" (Staged.stage (fun () ->
        Sys.opaque_identity (Rgs_baselines.Bide.mine ~max_length:4 quest ~min_sup:5)));
    Test.make ~name:"casestudy:supcomp-lock-unlock" (Staged.stage (fun () ->
        Sys.opaque_identity (Sup_comp.support jboss_idx lock_unlock)));
    Test.make ~name:"casestudy:closure-check" (Staged.stage (fun () ->
        Sys.opaque_identity (Closure.is_closed jboss_idx lock_unlock)));
    Test.make ~name:"primitive:index-build" (Staged.stage (fun () ->
        Sys.opaque_identity (Inverted_index.build table1_db)));
    Test.make ~name:"primitive:insgrow" (Staged.stage (fun () ->
        let i = Support_set.of_event table3_idx 0 in
        Sys.opaque_identity (Support_set.grow table3_idx i 2)));
    Test.make ~name:"primitive:btree-successor" (Staged.stage (fun () ->
        let bt = Btree.of_sorted_array (Array.init 1000 (fun i -> 2 * i)) in
        Sys.opaque_identity (Btree.successor bt 999)));
  ]

(* Parallel scaling: one timed CloGSgrow per domain count (too coarse for
   bechamel's sampling; measured directly). Speedup only appears on
   multi-core hosts; output equality with the sequential miner is
   guaranteed either way (test/test_parallel.ml). *)
let section_parallel () =
  let open Rgs_core in
  Format.printf "host cores (recommended domains): %d@."
    (Domain.recommended_domain_count ());
  let jboss, _ = E.Exp_common.jboss_like () in
  let idx = Rgs_sequence.Inverted_index.build jboss in
  let t = Rgs_post.Report.create ~columns:[ "domains"; "time_s"; "patterns" ] in
  let counts =
    List.sort_uniq compare [ 1; 2; Parallel_miner.default_domains () ]
  in
  List.iter
    (fun domains ->
      let (results, _), elapsed =
        E.Exp_common.time (fun () ->
            Parallel_miner.mine_closed ~domains ~max_length:5 idx ~min_sup:18)
      in
      Rgs_post.Report.add_row t
        [ string_of_int domains; Rgs_post.Report.cell_float elapsed;
          string_of_int (List.length results) ])
    counts;
  print_table "parallel CloGSgrow scaling — JBoss-like, min_sup=18, max_length=5" t

let section_micro () =
  Format.printf "@.### Section B: bechamel micro-benchmarks@.@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let t = Rgs_post.Report.create ~columns:[ "bench"; "time/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let cell =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
              if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
              else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
              else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
              else Printf.sprintf "%.0f ns" est
            | _ -> "n/a"
          in
          Rgs_post.Report.add_row t [ name; cell ])
        analyzed)
    (micro_tests ());
  print_table "micro-benchmarks (OLS time per run)" t

let () =
  if not (env_flag "RGS_BENCH_SKIP_TABLES") then section_tables ();
  if not (env_flag "RGS_BENCH_SKIP_MICRO") then begin
    section_micro ();
    section_parallel ()
  end
