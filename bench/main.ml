(* Benchmark harness: regenerates every table and figure of the paper
   (Section A) and runs one Bechamel micro-benchmark per experiment id
   (Section B).

   Run with: dune exec bench/main.exe
   Knobs (environment):
     RGS_BENCH_SCALE    dataset scale relative to the paper (default 0.05)
     RGS_BENCH_TIMEOUT  per-mining-run cut-off in seconds (default 5)
     RGS_BENCH_SKIP_TABLES / RGS_BENCH_SKIP_LAYOUT / RGS_BENCH_SKIP_MICRO /
     RGS_BENCH_SKIP_CHECKPOINT / RGS_BENCH_SKIP_QUERY / RGS_BENCH_SKIP_STORE
                        set to 1 to skip a section
     RGS_DATA_DIR       where the checked-in datasets live (default data)
     RGS_BENCH_JSON_PATH  layout-comparison JSON output (default BENCH_core.json)
     RGS_BENCH_LAYOUT_REPS  timing repetitions per layout run (default 3)

   The tables here are shape-checks at reduced scale; EXPERIMENTS.md records
   the larger-budget runs produced with bin/experiments.exe. *)

module E = Rgs_experiments

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let env_flag name = Sys.getenv_opt name = Some "1"

let scale = env_float "RGS_BENCH_SCALE" 0.05
let timeout_s = env_float "RGS_BENCH_TIMEOUT" 5.

let print_table title t =
  Format.printf "== %s ==@.%s@." title (Rgs_post.Report.to_string t)

(* --- Section A: paper tables and figures --- *)

let section_tables () =
  Format.printf "### Section A: paper tables and figures (scale %.2f, cut-off %.0fs)@.@."
    scale timeout_s;
  print_table "Table I: support semantics on Example 1.1" (E.Table1.report ());
  let sweep name ~x_label (rows, label) =
    print_table
      (Printf.sprintf "%s — %s" name label)
      (E.Sweeps.report ~x_label rows);
    print_string (E.Sweeps.charts rows);
    print_newline ()
  in
  sweep "Figure 2 (runtime & #patterns vs min_sup)" ~x_label:"min_sup"
    (E.Sweeps.fig2 ~scale ~timeout_s ());
  sweep "Figure 3 (runtime & #patterns vs min_sup)" ~x_label:"min_sup"
    (E.Sweeps.fig3 ~scale ~timeout_s ());
  sweep "Figure 4 (runtime & #patterns vs min_sup)" ~x_label:"min_sup"
    (E.Sweeps.fig4 ~scale:(max scale 0.1) ~timeout_s ());
  sweep "Figure 5 (vary #sequences D)" ~x_label:"D"
    (E.Sweeps.fig5 ~scale ~timeout_s ());
  sweep "Figure 6 (vary average length C=S)" ~x_label:"avg_len"
    (E.Sweeps.fig6 ~scale ~timeout_s ());
  let db = E.Exp_common.quest_d5c20n10s20 ~scale () in
  print_table "Sec IV-A comparators — D5C20N10S20-like, min_sup=10"
    (E.Comparators.report (E.Comparators.compare_all ~timeout_s db ~min_sup:10));
  let tcas = E.Exp_common.tcas_like ~scale:0.1 () in
  print_table "Ablation (DESIGN.md) — TCAS-like, min_sup=100"
    (E.Ablation.report (E.Ablation.run ~timeout_s tcas ~min_sup:100));
  let o = E.Case_study.run ~max_patterns:2000 () in
  print_table "Sec IV-B case study — JBoss-like traces, min_sup=18" (E.Case_study.report o)

(* --- Section F: binary store — zero-copy open vs text parse ---

   The paper-scale corpus is generated from data/quest_paper.config
   (deterministic, never checked in as text), saved in the SPMF text
   format and packed into a .rgsdb. Three budgets are enforced, so a
   regression in the store's open path or the mapped read path fails the
   bench instead of drifting: the mmap open must beat the text parse by
   >= 100x, mining the mapped database must produce output identical to
   the text path, and the workload must actually exercise the cursor's
   doubling search (cursor_gallops > 0 — long postings are the point of
   this corpus). Rows land in BENCH_core.json under "store" (the JSON is
   written by section_layout, which runs after this section). *)

let store_rows = ref []

let section_store () =
  let open Rgs_sequence in
  let open Rgs_core in
  let module Store = Rgs_store.Store in
  let signatures results =
    List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results
  in
  let data_dir = Option.value (Sys.getenv_opt "RGS_DATA_DIR") ~default:"data" in
  let config_path = Filename.concat data_dir "quest_paper.config" in
  Format.printf
    "@.### Section F: binary store — zero-copy open vs text parse@.@.";
  if not (Sys.file_exists config_path) then
    Format.printf "(skipping: %s not found)@." config_path
  else begin
    let p = Rgs_datagen.Quest_gen.load_config config_path in
    let label = Rgs_datagen.Quest_gen.label p in
    let db, gen_s = E.Exp_common.time (fun () -> Rgs_datagen.Quest_gen.generate p) in
    let alphabet = Alphabet.size (Seqdb.dense_alphabet db) in
    Format.printf "%s: %d sequences, %d events, alphabet %d (generated in %.1fs)@."
      label (Seqdb.size db) (Seqdb.total_length db) alphabet gen_s;
    let txt = Filename.temp_file "rgs_bench_store" ".spmf" in
    let rgsdb = Filename.temp_file "rgs_bench_store" ".rgsdb" in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun f -> if Sys.file_exists f then Sys.remove f) [ txt; rgsdb ])
      (fun () ->
        Seq_io.save_spmf db txt;
        Store.write ~path:rgsdb db;
        let size f = (Unix.stat f).Unix.st_size in
        let text_bytes = size txt and store_bytes = size rgsdb in
        let reps = int_of_float (env_float "RGS_BENCH_LAYOUT_REPS" 3.) |> max 1 in
        let best f =
          ignore (f ());
          let wall = ref infinity in
          for _ = 1 to reps do
            let _, elapsed = E.Exp_common.time f in
            if elapsed < !wall then wall := elapsed
          done;
          !wall
        in
        let parse_s = best (fun () -> Seq_io.load_spmf txt) in
        let open_s = best (fun () -> Store.open_db rgsdb) in
        let speedup = parse_s /. open_s in
        let t =
          Rgs_post.Report.create
            ~columns:[ "path"; "bytes"; "load_s"; "speedup" ]
        in
        Rgs_post.Report.add_row t
          [ "text (spmf parse)"; string_of_int text_bytes;
            Rgs_post.Report.cell_float parse_s; "1.0x" ];
        Rgs_post.Report.add_row t
          [ "store (mmap open)"; string_of_int store_bytes;
            Rgs_post.Report.cell_float open_s;
            Printf.sprintf "%.0fx" speedup ];
        print_table
          (Printf.sprintf "open cost — %s, best of %d" label reps) t;
        if speedup < 100. then
          failwith
            (Printf.sprintf
               "store bench: mmap open is only %.1fx faster than the text \
                parse (budget: >= 100x)"
               speedup);
        (* the mapped database must mine exactly like the parsed one, and
           the long postings must drive the cursor into its gallop path.
           GSgrow (mine-all): on this dense corpus CloGSgrow's closure
           pass multiplies the work ~120x without changing what this
           section pins, the mapped read path *)
        let min_sup = 2000 and max_length = 2 in
        let text_db = Seq_io.load_spmf txt in
        let store_t = Store.open_store rgsdb in
        let mine db =
          let idx = Inverted_index.build_kind Inverted_index.Kcsr db in
          Metrics.reset ();
          let results, wall =
            E.Exp_common.time (fun () ->
                fst (Gsgrow.mine ~max_length idx ~min_sup))
          in
          (signatures results, wall, Metrics.value Metrics.cursor_gallops)
        in
        let out_text, mine_text_s, _ = mine text_db in
        let out_store, mine_store_s, gallops = mine (Store.db store_t) in
        if out_text <> out_store then
          failwith "store bench: mapped mining output differs from text path";
        if gallops = 0 then
          failwith
            "store bench: cursor_gallops = 0 — the paper-scale corpus no \
             longer exercises the gallop path";
        Format.printf
          "gsgrow min_sup=%d max_length=%d: %d patterns, text %.2fs, \
           store %.2fs, %d gallops (outputs identical)@."
          min_sup max_length (List.length out_text) mine_text_s mine_store_s
          gallops;
        store_rows :=
          [
            Printf.sprintf
              "    {\"dataset\": %S, \"config\": \"quest_paper.config\", \
               \"sequences\": %d, \"events\": %d, \"alphabet\": %d, \
               \"text_bytes\": %d, \"store_bytes\": %d, \"parse_s\": %.6f, \
               \"open_s\": %.6f, \"open_speedup_x\": %.1f, \"min_sup\": %d, \
               \"max_length\": %d, \"patterns\": %d, \"mine_text_s\": %.6f, \
               \"mine_store_s\": %.6f, \"cursor_gallops\": %d, \
               \"outputs_identical\": true, \"digest\": %S}"
              label (Seqdb.size db) (Seqdb.total_length db) alphabet
              text_bytes store_bytes parse_s open_s speedup min_sup
              max_length (List.length out_text) mine_text_s mine_store_s
              gallops (Store.digest store_t);
          ])
  end

(* --- Section G: shard-parallel mining with work-stealing DFS ---

   Two claims are pinned. First, correctness-as-performance-contract: on
   the JBoss-like corpus (and the paper-scale QUEST corpus when its
   config is present), mining under every shard count in {1,2,4,8} with
   both executors — static largest-first root claiming (LPT) and the
   work-stealing deque — produces output byte-identical to the
   sequential miner (enforced; a divergence fails the bench). Second,
   the scheduling claim: on a skewed-roots workload where one event
   dominates every sequence, LPT degenerates to a single busy domain
   while stealing splits the dominant subtree — stealing must actually
   happen (steal_successes > 0, enforced) and must beat LPT wall-clock.
   The wall-clock budget is only enforced on multi-core hosts: on one
   core both executors serialize onto the same total work, so the
   comparison is recorded but not gated (same caveat as the parallel
   scaling section). Rows land in BENCH_core.json under "steal". *)

let steal_rows = ref []

let section_steal () =
  let open Rgs_sequence in
  let open Rgs_core in
  let signatures results =
    List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results
  in
  let reps = int_of_float (env_float "RGS_BENCH_LAYOUT_REPS" 3.) |> max 1 in
  let domains = 4 in
  Format.printf
    "@.### Section G: shard-parallel mining with work stealing (%d domains, \
     best of %d)@.@."
    domains reps;
  let best f =
    ignore (f ());
    let wall = ref infinity in
    for _ = 1 to reps do
      let _, elapsed = E.Exp_common.time f in
      if elapsed < !wall then wall := elapsed
    done;
    !wall
  in
  (* identity sweep: shards x executor vs the sequential miner *)
  let jboss, _ = E.Exp_common.jboss_like () in
  let datasets =
    ("jboss_like", jboss, 18, 4)
    ::
    (let data_dir = Option.value (Sys.getenv_opt "RGS_DATA_DIR") ~default:"data" in
     let config_path = Filename.concat data_dir "quest_paper.config" in
     if not (Sys.file_exists config_path) then begin
       Format.printf "(skipping quest_paper: %s not found)@." config_path;
       []
     end
     else
       let p = Rgs_datagen.Quest_gen.load_config config_path in
       (* mine-all at a high threshold, as in the store section: the
          closure pass would multiply the work without changing what
          this section pins (the executors) *)
       [ (Rgs_datagen.Quest_gen.label p, Rgs_datagen.Quest_gen.generate p,
          2000, 2) ])
  in
  let t =
    Rgs_post.Report.create
      ~columns:[ "dataset"; "shards"; "executor"; "time_s"; "patterns" ]
  in
  List.iter
    (fun (name, db, min_sup, max_length) ->
      let idx = Inverted_index.build_kind Inverted_index.Kcsr db in
      let all_mode = min_sup >= 2000 in
      let mine ~steal ~shards () =
        if all_mode then
          fst (Parallel_miner.mine_all ~domains ~max_length ~steal ~shards idx
                 ~min_sup)
        else
          fst (Parallel_miner.mine_closed ~domains ~max_length ~steal ~shards
                 idx ~min_sup)
      in
      let sequential =
        signatures
          (if all_mode then fst (Gsgrow.mine ~max_length idx ~min_sup)
           else fst (Clogsgrow.mine ~max_length idx ~min_sup))
      in
      List.iter
        (fun shards ->
          List.iter
            (fun (label, steal) ->
              let out = signatures (mine ~steal ~shards ()) in
              if out <> sequential then
                failwith
                  (Printf.sprintf
                     "steal bench: %s shards=%d %s: output differs from the \
                      sequential miner"
                     name shards label);
              let wall = best (fun () -> ignore (mine ~steal ~shards ())) in
              Rgs_post.Report.add_row t
                [ name; string_of_int shards; label;
                  Rgs_post.Report.cell_float wall;
                  string_of_int (List.length out) ];
              steal_rows :=
                Printf.sprintf
                  "    {\"dataset\": %S, \"min_sup\": %d, \"domains\": %d, \
                   \"shards\": %d, \"executor\": %S, \"wall_s\": %.6f, \
                   \"patterns\": %d, \"outputs_identical\": true}"
                  name min_sup domains shards label wall (List.length out)
                :: !steal_rows)
            [ ("lpt", false); ("steal", true) ])
        [ 1; 2; 4; 8 ])
    datasets;
  print_table "shards x executor — outputs checked against sequential" t;
  (* the scheduling claim: skewed roots, LPT vs stealing *)
  let skew =
    let st = Random.State.make [| 77 |] in
    Seqdb.of_sequences
      (List.init 48 (fun _ ->
           Sequence.of_list
             (List.init 120 (fun _ ->
                  if Random.State.int st 100 < 85 then 0
                  else 1 + Random.State.int st 19))))
  in
  let min_sup = 40 and max_length = 5 in
  let idx = Inverted_index.build_kind Inverted_index.Kcsr skew in
  let sequential = signatures (fst (Clogsgrow.mine ~max_length idx ~min_sup)) in
  let run ~steal () =
    fst (Parallel_miner.mine_closed ~domains ~max_length ~steal idx ~min_sup)
  in
  List.iter
    (fun (label, steal) ->
      if signatures (run ~steal ()) <> sequential then
        failwith
          (Printf.sprintf "steal bench: skew %s: output differs from the \
                           sequential miner" label))
    [ ("lpt", false); ("steal", true) ];
  let lpt_wall = best (fun () -> ignore (run ~steal:false ())) in
  let before = Metrics.snapshot () in
  let steal_wall = best (fun () -> ignore (run ~steal:true ())) in
  let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
  let attempts = Metrics.find d "steal_attempts" in
  let successes = Metrics.find d "steal_successes" in
  let cores = Domain.recommended_domain_count () in
  let enforced = cores >= 2 in
  Format.printf
    "skewed roots (48 seqs, 85%% one event): lpt %.3fs, steal %.3fs \
     (%.2fx), %d/%d steals landed%s@."
    lpt_wall steal_wall (lpt_wall /. steal_wall) successes attempts
    (if enforced then "" else " [1-core host: wall-clock budget not enforced]");
  if successes = 0 then
    failwith
      "steal bench: steal_successes = 0 — the skewed workload no longer \
       triggers stealing";
  if enforced && steal_wall > lpt_wall then
    failwith
      (Printf.sprintf
         "steal bench: stealing (%.3fs) is slower than LPT (%.3fs) on the \
          skewed-roots workload"
         steal_wall lpt_wall);
  steal_rows :=
    Printf.sprintf
      "    {\"dataset\": \"skewed_roots\", \"min_sup\": %d, \"domains\": %d, \
       \"lpt_wall_s\": %.6f, \"steal_wall_s\": %.6f, \"speedup_x\": %.2f, \
       \"steal_attempts\": %d, \"steal_successes\": %d, \"host_cores\": %d, \
       \"wall_budget_enforced\": %b, \"outputs_identical\": true}"
      min_sup domains lpt_wall steal_wall (lpt_wall /. steal_wall) attempts
      successes cores enforced
    :: !steal_rows

(* --- Section H: supervised multi-process shard workers ---

   Pins the supervision tax. Mining with every instance growth shipped to
   per-shard rgsworker processes over the CRC-framed socketpairs must
   stay byte-identical to the in-process sharded run (enforced; that is
   the whole contract of the supervisor), and a fault-free run must
   spawn exactly one worker per shard, restart none and never degrade
   (enforced — a restart here means the handshake or liveness deadline
   is mis-tuned, not a flaky host). What is recorded, not gated, is the
   overhead ratio of supervised vs in-process growth per shard count —
   the price of crash isolation. Skipped gracefully when the rgsworker
   executable is not built next to the bench binary;
   RGS_BENCH_SKIP_SUPERVISE gates the whole section (the perf-smoke
   alias sets it: process supervision has no place in a 1-rep smoke).
   Rows land in BENCH_core.json under "supervise". *)

let supervise_rows = ref []

let section_supervise () =
  let open Rgs_core in
  let worker_exe =
    Filename.concat (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "rgsworker.exe"))
  in
  Format.printf "@.### Section H: supervised multi-process shard workers@.@.";
  if not (Sys.file_exists worker_exe) then
    Format.printf "(skipping: %s not built)@." worker_exe
  else begin
    let signatures results =
      List.map
        (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support))
        results
    in
    let reps = int_of_float (env_float "RGS_BENCH_LAYOUT_REPS" 3.) |> max 1 in
    let best f =
      ignore (f ());
      let wall = ref infinity in
      for _ = 1 to reps do
        let _, elapsed = E.Exp_common.time f in
        if elapsed < !wall then wall := elapsed
      done;
      !wall
    in
    let db, _ = E.Exp_common.jboss_like () in
    let min_sup = 18 and max_length = 4 in
    let sequential =
      signatures
        (Miner.mine
           ~config:(Miner.config ~max_length ~min_sup ())
           db)
          .Miner.results
    in
    let t =
      Rgs_post.Report.create
        ~columns:
          [ "shards"; "mode"; "time_s"; "overhead_x"; "spawns"; "restarts" ]
    in
    List.iter
      (fun shards ->
        let inproc_cfg = Miner.config ~shards ~max_length ~min_sup () in
        let inproc_wall =
          best (fun () -> ignore (Miner.mine ~config:inproc_cfg db))
        in
        let sup =
          Rgs_server.Supervisor.create
            (Rgs_server.Supervisor.config ~shards ~worker_exe ())
            db
        in
        Fun.protect
          ~finally:(fun () -> Rgs_server.Supervisor.shutdown sup)
          (fun () ->
            let cfg =
              Miner.config ~shards
                ~shard_dispatch:(Rgs_server.Supervisor.dispatch sup)
                ~max_length ~min_sup ()
            in
            let out = signatures (Miner.mine ~config:cfg db).Miner.results in
            if out <> sequential then
              failwith
                (Printf.sprintf
                   "supervise bench: shards=%d: output differs from the \
                    sequential miner"
                   shards);
            let wall = best (fun () -> ignore (Miner.mine ~config:cfg db)) in
            let s = Rgs_server.Supervisor.stats sup in
            if s.Rgs_server.Supervisor.degraded then
              failwith "supervise bench: supervisor degraded on a healthy host";
            if s.Rgs_server.Supervisor.restarts > 0 then
              failwith
                (Printf.sprintf
                   "supervise bench: %d restart(s) without any injected fault"
                   s.Rgs_server.Supervisor.restarts);
            if s.Rgs_server.Supervisor.spawns <> shards then
              failwith
                (Printf.sprintf
                   "supervise bench: %d spawn(s) for %d shard(s)"
                   s.Rgs_server.Supervisor.spawns shards);
            let overhead = wall /. inproc_wall in
            Rgs_post.Report.add_row t
              [ string_of_int shards; "in-process";
                Rgs_post.Report.cell_float inproc_wall; "1.00"; "-"; "-" ];
            Rgs_post.Report.add_row t
              [ string_of_int shards; "supervised";
                Rgs_post.Report.cell_float wall;
                Printf.sprintf "%.2f" overhead;
                string_of_int s.Rgs_server.Supervisor.spawns;
                string_of_int s.Rgs_server.Supervisor.restarts ];
            supervise_rows :=
              Printf.sprintf
                "    {\"dataset\": \"jboss_like\", \"min_sup\": %d, \
                 \"shards\": %d, \"inproc_wall_s\": %.6f, \
                 \"supervised_wall_s\": %.6f, \"overhead_x\": %.2f, \
                 \"spawns\": %d, \"restarts\": %d, \
                 \"outputs_identical\": true}"
                min_sup shards inproc_wall wall overhead
                s.Rgs_server.Supervisor.spawns
                s.Rgs_server.Supervisor.restarts
              :: !supervise_rows))
      [ 2; 4 ];
    print_table
      "supervised worker processes vs in-process sharded growth \
       (outputs checked against sequential)"
      t
  end

(* --- Section C: columnar layout, old vs new index backend ---

   Mines the two checked-in datasets with the seed hashtable index and the
   CSR index, verifies both backends produce the identical pattern set, and
   reports wall time, patterns/sec and the Metrics counters side by side.
   Also written as machine-readable JSON (RGS_BENCH_JSON_PATH, default
   BENCH_core.json) so CI can track the speedup. *)

let section_layout () =
  let open Rgs_sequence in
  let open Rgs_core in
  let data_dir = Option.value (Sys.getenv_opt "RGS_DATA_DIR") ~default:"data" in
  let json_path =
    Option.value (Sys.getenv_opt "RGS_BENCH_JSON_PATH") ~default:"BENCH_core.json"
  in
  let reps =
    int_of_float (env_float "RGS_BENCH_LAYOUT_REPS" 3.) |> max 1
  in
  Format.printf
    "@.### Section C: columnar layout — legacy (seed) vs CSR index (best of %d)@.@."
    reps;
  let datasets =
    List.filter_map
      (fun (name, file, min_sup, max_length) ->
        let path = Filename.concat data_dir file in
        if Sys.file_exists path then Some (name, path, min_sup, max_length)
        else begin
          Format.printf "(skipping %s: %s not found)@." name path;
          None
        end)
      [
        (* low min_sup on quest_small: the INSgrow-dominated regime *)
        ("quest_small", "quest_small.txt", 4, Some 5);
        ("jboss_traces", "jboss_traces.txt", 18, Some 4);
      ]
  in
  let signatures results =
    List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results
  in
  let runs = ref [] in
  let speedups = ref [] in
  let t =
    Rgs_post.Report.create
      ~columns:
        [ "dataset"; "algo"; "backend"; "time_s"; "patterns"; "patterns/s";
          "next_calls"; "cursor_adv"; "cursor_gal"; "peak_words" ]
  in
  List.iter
    (fun (name, path, min_sup, max_length) ->
      let db, _codec = Seq_io.load_tokens path in
      let algos =
        [
          ("gsgrow", fun idx -> fst (Gsgrow.mine ?max_length idx ~min_sup));
          ("clogsgrow", fun idx -> fst (Clogsgrow.mine ?max_length idx ~min_sup));
        ]
      in
      List.iter
        (fun (algo, mine) ->
          let measure kind =
            let idx = Inverted_index.build_kind kind db in
            (* warm-up run also yields the output for the equality check *)
            let out = signatures (mine idx) in
            Metrics.reset ();
            (* level the heap: collect the previous backend's garbage now
               so it is not collected inside this backend's timed reps *)
            Gc.compact ();
            let wall = ref infinity in
            for _ = 1 to reps do
              let _, elapsed = E.Exp_common.time (fun () -> mine idx) in
              if elapsed < !wall then wall := elapsed
            done;
            ( idx,
              out,
              !wall,
              Metrics.value Metrics.next_calls / reps,
              Metrics.value Metrics.cursor_advances / reps,
              Metrics.value Metrics.cursor_gallops / reps )
          in
          (* Memory is measured after both backends' timing so the big
             retained runs cannot skew the timed reps: one extra untimed
             run per backend, sampled with its full result set still live —
             the retained support sets are the run's memory peak. The read
             through opaque_identity after the sample keeps the compiler
             from proving the list dead and collecting it early. *)
          let words_of idx =
            Gc.compact ();
            let keep = mine idx in
            let words = Metrics.sample_live_words () in
            ignore (Sys.opaque_identity (List.length keep));
            words
          in
          let idx_legacy, out_legacy, wall_legacy, next_legacy, adv_legacy,
              gal_legacy =
            measure Inverted_index.Klegacy
          in
          let idx_csr, out_csr, wall_csr, next_csr, adv_csr, gal_csr =
            measure Inverted_index.Kcsr
          in
          let words_legacy = words_of idx_legacy in
          let words_csr = words_of idx_csr in
          if out_legacy <> out_csr then
            failwith
              (Printf.sprintf "layout bench: %s/%s: CSR output differs from legacy"
                 name algo);
          let patterns = List.length out_csr in
          let row backend wall next_calls cursor_adv cursor_gal peak_words =
            let per_sec = float_of_int patterns /. wall in
            Rgs_post.Report.add_row t
              [ name; algo; backend; Rgs_post.Report.cell_float wall;
                string_of_int patterns; Printf.sprintf "%.0f" per_sec;
                string_of_int next_calls; string_of_int cursor_adv;
                string_of_int cursor_gal; string_of_int peak_words ];
            runs :=
              Printf.sprintf
                "    {\"dataset\": %S, \"algo\": %S, \"backend\": %S, \
                 \"min_sup\": %d, \"wall_s\": %.6f, \"patterns\": %d, \
                 \"patterns_per_sec\": %.1f, \"next_calls\": %d, \
                 \"cursor_advances\": %d, \"cursor_gallops\": %d, \
                 \"peak_live_words\": %d}"
                name algo backend min_sup wall patterns per_sec next_calls
                cursor_adv cursor_gal peak_words
              :: !runs
          in
          row "legacy" wall_legacy next_legacy adv_legacy gal_legacy words_legacy;
          row "csr" wall_csr next_csr adv_csr gal_csr words_csr;
          let speedup = wall_legacy /. wall_csr in
          speedups :=
            Printf.sprintf
              "    {\"dataset\": %S, \"algo\": %S, \"csr_speedup_x\": %.2f, \
               \"outputs_identical\": true}"
              name algo speedup
            :: !speedups;
          Format.printf "%s/%s: csr %.2fx vs legacy (outputs identical)@." name
            algo speedup)
        algos)
    datasets;
  print_table "old vs new layout (identical outputs checked)" t;
  (* Tracing overhead: CloGSgrow on the CSR index with the trace disabled
     (Trace.null — the miners' default, and the configuration every
     untraced run above exercises), at Roots level and at Nodes level.
     Disabled tracing must stay a branch-predictable no-op, so "off" here
     must match the plain runs within noise. *)
  let trace_rows = ref [] in
  let tt =
    Rgs_post.Report.create
      ~columns:[ "dataset"; "trace"; "time_s"; "overhead"; "events" ]
  in
  List.iter
    (fun (name, path, min_sup, max_length) ->
      let db, _codec = Seq_io.load_tokens path in
      let idx = Inverted_index.build_kind Inverted_index.Kcsr db in
      let measure trace =
        ignore (Clogsgrow.mine ?max_length ~trace idx ~min_sup);
        let wall = ref infinity in
        for _ = 1 to reps do
          let _, elapsed =
            E.Exp_common.time (fun () -> Clogsgrow.mine ?max_length ~trace idx ~min_sup)
          in
          if elapsed < !wall then wall := elapsed
        done;
        !wall
      in
      let wall_off = measure Trace.null in
      let levels =
        [ ("roots", Trace.Roots); ("nodes", Trace.Nodes) ]
      in
      let row label wall events =
        let overhead = (wall /. wall_off -. 1.) *. 100. in
        Rgs_post.Report.add_row tt
          [ name; label; Rgs_post.Report.cell_float wall;
            Printf.sprintf "%+.1f%%" overhead; string_of_int events ];
        trace_rows :=
          Printf.sprintf
            "    {\"dataset\": %S, \"trace\": %S, \"wall_s\": %.6f, \
             \"overhead_pct\": %.1f, \"events_per_run\": %d}"
            name label wall overhead events
          :: !trace_rows
      in
      row "off" wall_off 0;
      List.iter
        (fun (label, level) ->
          (* fresh trace per timed run so the ring never saturates *)
          let wall = ref infinity in
          let events = ref 0 in
          ignore (measure Trace.null);
          for _ = 1 to reps do
            let trace = Trace.create ~level () in
            let _, elapsed =
              E.Exp_common.time (fun () ->
                  Clogsgrow.mine ?max_length ~trace idx ~min_sup)
            in
            events := List.length (Trace.events trace) + Trace.dropped trace;
            if elapsed < !wall then wall := elapsed
          done;
          row label !wall !events)
        levels)
    datasets;
  print_table "tracing overhead — CloGSgrow on CSR (best of reps)" tt;
  (* Galloping seek: decompose each backend's seek work into linear
     advances (short hops) and gallop steps (doubling probes, bisection
     halvings, B+-tree descent levels). Counters are deterministic, so one
     fresh run per cell suffices. *)
  let gallop_rows = ref [] in
  let gt =
    Rgs_post.Report.create
      ~columns:
        [ "dataset"; "backend"; "next_calls"; "advances"; "gallops";
          "adv/seek" ]
  in
  List.iter
    (fun (name, path, min_sup, max_length) ->
      let db, _codec = Seq_io.load_tokens path in
      List.iter
        (fun kind ->
          let idx = Inverted_index.build_kind kind db in
          ignore (Gsgrow.mine ?max_length idx ~min_sup);
          Metrics.reset ();
          ignore (Gsgrow.mine ?max_length idx ~min_sup);
          let next_calls = Metrics.value Metrics.next_calls in
          let adv = Metrics.value Metrics.cursor_advances in
          let gal = Metrics.value Metrics.cursor_gallops in
          let per_seek =
            if next_calls = 0 then 0.
            else float_of_int adv /. float_of_int next_calls
          in
          let backend = Inverted_index.kind_name kind in
          Rgs_post.Report.add_row gt
            [ name; backend; string_of_int next_calls; string_of_int adv;
              string_of_int gal; Printf.sprintf "%.3f" per_seek ];
          gallop_rows :=
            Printf.sprintf
              "    {\"dataset\": %S, \"backend\": %S, \"algo\": \"gsgrow\", \
               \"min_sup\": %d, \"next_calls\": %d, \"cursor_advances\": %d, \
               \"cursor_gallops\": %d, \"advances_per_seek\": %.4f}"
              name backend min_sup next_calls adv gal per_seek
            :: !gallop_rows)
        Inverted_index.[ Kcsr; Klegacy; Kpaged ])
    datasets;
  print_table "galloping seek — per-backend seek-work decomposition (GSgrow)" gt;
  (* Pool scheduling: largest-root-first vs index-order claiming. The
     output must be bit-identical (the pool's merge is claim-order
     independent); only wall time may move. *)
  let schedule_rows = ref [] in
  let st =
    Rgs_post.Report.create
      ~columns:[ "dataset"; "schedule"; "domains"; "time_s"; "patterns" ]
  in
  List.iter
    (fun (name, path, min_sup, max_length) ->
      let db, _codec = Seq_io.load_tokens path in
      let idx = Inverted_index.build_kind Inverted_index.Kcsr db in
      let domains = Parallel_miner.default_domains () in
      let run schedule =
        ignore
          (Parallel_miner.mine_closed ~domains ?max_length ~schedule idx
             ~min_sup);
        let out = ref [] in
        let wall = ref infinity in
        for _ = 1 to reps do
          let (results, _), elapsed =
            E.Exp_common.time (fun () ->
                Parallel_miner.mine_closed ~domains ?max_length ~schedule idx
                  ~min_sup)
          in
          out := signatures results;
          if elapsed < !wall then wall := elapsed
        done;
        (!out, !wall)
      in
      let out_index, wall_index = run `Index in
      let out_largest, wall_largest = run `Largest_first in
      if out_index <> out_largest then
        failwith
          (Printf.sprintf
             "pool schedule bench: %s: largest-first output differs from \
              index order"
             name);
      let row label wall =
        Rgs_post.Report.add_row st
          [ name; label; string_of_int domains;
            Rgs_post.Report.cell_float wall;
            string_of_int (List.length out_index) ];
        schedule_rows :=
          Printf.sprintf
            "    {\"dataset\": %S, \"schedule\": %S, \"domains\": %d, \
             \"min_sup\": %d, \"wall_s\": %.6f, \"patterns\": %d, \
             \"outputs_identical\": true}"
            name label domains min_sup wall (List.length out_index)
          :: !schedule_rows
      in
      row "index" wall_index;
      row "largest_first" wall_largest;
      Format.printf "%s: largest-first %.2fx vs index order (outputs identical)@."
        name
        (wall_index /. wall_largest))
    datasets;
  print_table
    "pool scheduling — CloGSgrow, index order vs largest-root-first" st;
  (* Closure funnel: how the Theorem 5 pre-filter splits candidate
     extensions as min_sup tightens — checks that were rejected outright
     vs those that had to grow their base (and of these, how many grew to
     completion). quest_small only: the low-support regime is where the
     funnel shape changes. *)
  let funnel_rows = ref [] in
  let ft =
    Rgs_post.Report.create
      ~columns:
        [ "dataset"; "min_sup"; "bound_checks"; "bound_rejects"; "base_grows";
          "full_grows"; "reject%" ]
  in
  List.iter
    (fun (name, path, _min_sup, max_length) ->
      if name = "quest_small" then begin
        let db, _codec = Seq_io.load_tokens path in
        let idx = Inverted_index.build_kind Inverted_index.Kcsr db in
        List.iter
          (fun min_sup ->
            Metrics.reset ();
            ignore (Clogsgrow.mine ?max_length idx ~min_sup);
            let checks = Metrics.value Metrics.closure_bound_checks in
            let rejects = Metrics.value Metrics.closure_bound_rejects in
            let base = Metrics.value Metrics.closure_base_grows in
            let full = Metrics.value Metrics.closure_full_grows in
            let reject_pct =
              if checks = 0 then 0.
              else 100. *. float_of_int rejects /. float_of_int checks
            in
            Rgs_post.Report.add_row ft
              [ name; string_of_int min_sup; string_of_int checks;
                string_of_int rejects; string_of_int base;
                string_of_int full; Printf.sprintf "%.1f%%" reject_pct ];
            funnel_rows :=
              Printf.sprintf
                "    {\"dataset\": %S, \"min_sup\": %d, \
                 \"closure_bound_checks\": %d, \"closure_bound_rejects\": %d, \
                 \"closure_base_grows\": %d, \"closure_full_grows\": %d}"
                name min_sup checks rejects base full
              :: !funnel_rows)
          [ 2; 3; 4; 6; 8 ]
      end)
    datasets;
  print_table "closure funnel — pre-filter outcome counts vs min_sup" ft;
  if datasets <> [] then begin
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n  \"bench\": \"columnar layout, legacy vs CSR\",\n  \"reps\": %d,\n  \
       \"runs\": [\n%s\n  ],\n  \"speedups\": [\n%s\n  ],\n  \
       \"trace_overhead\": [\n%s\n  ],\n  \"seek_gallop\": [\n%s\n  ],\n  \
       \"pool_schedule\": [\n%s\n  ],\n  \"closure_funnel\": [\n%s\n  ],\n  \
       \"store\": [\n%s\n  ],\n  \"steal\": [\n%s\n  ],\n  \
       \"supervise\": [\n%s\n  ]\n}\n"
      reps
      (String.concat ",\n" (List.rev !runs))
      (String.concat ",\n" (List.rev !speedups))
      (String.concat ",\n" (List.rev !trace_rows))
      (String.concat ",\n" (List.rev !gallop_rows))
      (String.concat ",\n" (List.rev !schedule_rows))
      (String.concat ",\n" (List.rev !funnel_rows))
      (String.concat ",\n" (List.rev !store_rows))
      (String.concat ",\n" (List.rev !steal_rows))
      (String.concat ",\n" (List.rev !supervise_rows));
    close_out oc;
    Format.printf "wrote %s@." json_path
  end

(* --- Section B: bechamel micro-benchmarks, one per experiment id --- *)

open Bechamel
open Toolkit

let micro_tests () =
  let open Rgs_sequence in
  let open Rgs_core in
  (* Fixed small inputs so each staged function runs in well under 100ms. *)
  let table1_db = Seqdb.of_strings [ "AABCDABB"; "ABCD" ] in
  let quest = E.Exp_common.quest_d5c20n10s20 ~scale:0.02 () in
  let quest_idx = Inverted_index.build quest in
  let gazelle = E.Exp_common.gazelle_like ~scale:0.02 () in
  let gazelle_idx = Inverted_index.build gazelle in
  let tcas = E.Exp_common.tcas_like ~scale:0.02 () in
  let tcas_idx = Inverted_index.build tcas in
  let jboss, jboss_codec = E.Exp_common.jboss_like () in
  let jboss_idx = Inverted_index.build jboss in
  let lock = Option.get (Codec.find jboss_codec "TransImpl.lock") in
  let unlock = Option.get (Codec.find jboss_codec "TransImpl.unlock") in
  let lock_unlock = Pattern.of_list [ lock; unlock ] in
  let table3_idx = Inverted_index.build (Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ]) in
  let acb = Pattern.of_string "ACB" in
  [
    Test.make ~name:"table1:semantics-rows" (Staged.stage (fun () ->
        Sys.opaque_identity (E.Table1.rows ())));
    Test.make ~name:"fig2:clogsgrow-quest" (Staged.stage (fun () ->
        Sys.opaque_identity (Clogsgrow.mine ~max_length:4 quest_idx ~min_sup:5)));
    Test.make ~name:"fig3:clogsgrow-gazelle" (Staged.stage (fun () ->
        Sys.opaque_identity (Clogsgrow.mine ~max_length:3 gazelle_idx ~min_sup:60)));
    Test.make ~name:"fig4:clogsgrow-tcas" (Staged.stage (fun () ->
        Sys.opaque_identity (Clogsgrow.mine ~max_length:3 tcas_idx ~min_sup:15)));
    Test.make ~name:"fig5:gsgrow-quest" (Staged.stage (fun () ->
        Sys.opaque_identity (Gsgrow.mine ~max_length:4 quest_idx ~min_sup:5)));
    Test.make ~name:"fig6:supcomp-long-pattern" (Staged.stage (fun () ->
        Sys.opaque_identity (Sup_comp.support table3_idx acb)));
    Test.make ~name:"comparators:prefixspan-quest" (Staged.stage (fun () ->
        Sys.opaque_identity (Rgs_baselines.Prefixspan.mine ~max_length:4 quest ~min_sup:5)));
    Test.make ~name:"comparators:bide-quest" (Staged.stage (fun () ->
        Sys.opaque_identity (Rgs_baselines.Bide.mine ~max_length:4 quest ~min_sup:5)));
    Test.make ~name:"casestudy:supcomp-lock-unlock" (Staged.stage (fun () ->
        Sys.opaque_identity (Sup_comp.support jboss_idx lock_unlock)));
    Test.make ~name:"casestudy:closure-check" (Staged.stage (fun () ->
        Sys.opaque_identity (Closure.is_closed jboss_idx lock_unlock)));
    Test.make ~name:"primitive:index-build" (Staged.stage (fun () ->
        Sys.opaque_identity (Inverted_index.build table1_db)));
    Test.make ~name:"primitive:insgrow" (Staged.stage (fun () ->
        let i = Support_set.of_event table3_idx 0 in
        Sys.opaque_identity (Support_set.grow table3_idx i 2)));
    Test.make ~name:"primitive:btree-successor" (Staged.stage (fun () ->
        let bt = Btree.of_sorted_array (Array.init 1000 (fun i -> 2 * i)) in
        Sys.opaque_identity (Btree.successor bt 999)));
  ]

(* Parallel scaling: one timed CloGSgrow per domain count (too coarse for
   bechamel's sampling; measured directly). Speedup only appears on
   multi-core hosts; output equality with the sequential miner is
   guaranteed either way (test/test_parallel.ml). *)
let section_parallel () =
  let open Rgs_core in
  Format.printf "host cores (recommended domains): %d@."
    (Domain.recommended_domain_count ());
  let jboss, _ = E.Exp_common.jboss_like () in
  let idx = Rgs_sequence.Inverted_index.build jboss in
  let t = Rgs_post.Report.create ~columns:[ "domains"; "time_s"; "patterns" ] in
  let counts =
    List.sort_uniq compare [ 1; 2; Parallel_miner.default_domains () ]
  in
  List.iter
    (fun domains ->
      let (results, _), elapsed =
        E.Exp_common.time (fun () ->
            Parallel_miner.mine_closed ~domains ~max_length:5 idx ~min_sup:18)
      in
      Rgs_post.Report.add_row t
        [ string_of_int domains; Rgs_post.Report.cell_float elapsed;
          string_of_int (List.length results) ])
    counts;
  print_table "parallel CloGSgrow scaling — JBoss-like, min_sup=18, max_length=5" t

(* --- Section D: durable checkpoint log — append vs whole-file rewrite ---

   PR 1's checkpoint rewrote the whole file after every completed root, so
   saving root i cost O(results of roots 1..i) — O(n^2) marshalling over a
   run. The v2 record log appends one CRC32-framed record per root. This
   section replays both strategies over the same mined results at several
   root counts; "rewrite" is what the seed format would have paid. *)

let section_checkpoint () =
  let open Rgs_core in
  Format.printf "@.### Section D: checkpoint log — append vs whole-file rewrite@.@.";
  let db = E.Exp_common.quest_d5c20n10s20 ~scale:0.05 () in
  let report = Miner.mine ~config:(Miner.config ~min_sup:10 ~max_length:4 ()) db in
  let results = report.Miner.results in
  let fp = String.make 32 'b' in
  let entries n =
    List.init n (fun k ->
        { Checkpoint.root = k; results = List.filteri (fun i _ -> i mod n = k) results })
  in
  let with_temp f =
    let path = Filename.temp_file "rgs_bench_ckpt" ".bin" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () -> f path)
  in
  let t =
    Rgs_post.Report.create
      ~columns:[ "roots"; "rewrite_s"; "append_s"; "rewrite/append"; "log_bytes" ]
  in
  List.iter
    (fun n ->
      let es = entries n in
      let prefix i = List.filteri (fun j _ -> j < i) es in
      let (), rewrite_s =
        E.Exp_common.time (fun () ->
            with_temp (fun path ->
                for i = 1 to n do
                  Checkpoint.write ~path ~fingerprint:fp ~completed:(prefix i)
                    ~quarantined:[] ()
                done))
      in
      let bytes = ref 0 in
      let (), append_s =
        E.Exp_common.time (fun () ->
            with_temp (fun path ->
                let w = Checkpoint.Writer.create ~path ~fingerprint:fp () in
                List.iter
                  (fun e -> Checkpoint.Writer.append w (Checkpoint.Root_done e))
                  es;
                Checkpoint.Writer.close w;
                bytes := (Unix.stat path).Unix.st_size))
      in
      Rgs_post.Report.add_row t
        [ string_of_int n; Rgs_post.Report.cell_float rewrite_s;
          Rgs_post.Report.cell_float append_s;
          Printf.sprintf "%.1fx" (rewrite_s /. append_s);
          string_of_int !bytes ])
    [ 8; 32; 128 ];
  print_table
    (Printf.sprintf "checkpoint save cost over a run (%d mined patterns)"
       (List.length results))
    t

let section_micro () =
  Format.printf "@.### Section B: bechamel micro-benchmarks@.@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let t = Rgs_post.Report.create ~columns:[ "bench"; "time/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let cell =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
              if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
              else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
              else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
              else Printf.sprintf "%.0f ns" est
            | _ -> "n/a"
          in
          Rgs_post.Report.add_row t [ name; cell ])
        analyzed)
    (micro_tests ());
  print_table "micro-benchmarks (OLS time per run)" t

(* --- Section E: query answer modes — in-DFS pruning vs mine-all ---

   The query layer's one claim worth benching: a top-k or targeted answer
   is computed by visiting fewer DFS nodes, not by post-filtering a full
   enumeration. Every mode's answer is checked against the mine-all run
   (the k best supports for top-k, the exact filtered subset for
   targeted) and the node counts land in BENCH_query.json
   (RGS_BENCH_QUERY_JSON_PATH). Two budgets are enforced, so a pruning
   regression fails the bench instead of drifting silently: top-100 on
   jboss_traces must expand under 25% of mine-all's nodes, and the
   answers must match mine-all exactly. *)

let section_query () =
  let open Rgs_sequence in
  let open Rgs_core in
  let data_dir = Option.value (Sys.getenv_opt "RGS_DATA_DIR") ~default:"data" in
  let json_path =
    Option.value
      (Sys.getenv_opt "RGS_BENCH_QUERY_JSON_PATH")
      ~default:"BENCH_query.json"
  in
  Format.printf
    "@.### Section E: query answer modes — in-DFS pruning vs mine-all@.@.";
  let datasets =
    List.filter_map
      (fun (name, file, min_sup, max_length) ->
        let path = Filename.concat data_dir file in
        if Sys.file_exists path then Some (name, path, min_sup, max_length)
        else begin
          Format.printf "(skipping %s: %s not found)@." name path;
          None
        end)
      [
        ("quest_small", "quest_small.txt", 4, Some 5);
        ("jboss_traces", "jboss_traces.txt", 18, Some 4);
      ]
  in
  let all_rows = ref [] in
  let topk_rows = ref [] in
  let target_rows = ref [] in
  let delta_rows = ref [] in
  let t =
    Rgs_post.Report.create
      ~columns:[ "dataset"; "mode"; "dfs_nodes"; "node%"; "patterns"; "time_s" ]
  in
  List.iter
    (fun (name, path, min_sup, max_length) ->
      let db, _codec = Seq_io.load_tokens path in
      let idx = Inverted_index.build_kind Inverted_index.Kcsr db in
      (* queries prune hardest where the pattern universe is largest: the
         all-patterns mode (the closed sets of these datasets are smaller
         than k = 100, which would make top-k pruning a no-op) *)
      let run ?(mode = Miner.All) query =
        Metrics.reset ();
        let report, wall =
          E.Exp_common.time (fun () ->
              Miner.mine_indexed
                (Miner.config ~mode ~query ?max_length ~min_sup ())
                idx)
        in
        (report.Miner.results, Metrics.value Metrics.dfs_nodes, wall)
      in
      let sig_of m = (Pattern.to_list m.Mined.pattern, m.Mined.support) in
      let all, nodes_all, wall_all = run Query.All in
      let row mode nodes patterns wall =
        let pct =
          100. *. float_of_int nodes /. float_of_int (max 1 nodes_all)
        in
        Rgs_post.Report.add_row t
          [ name; mode; string_of_int nodes; Printf.sprintf "%.1f%%" pct;
            string_of_int patterns; Rgs_post.Report.cell_float wall ];
        pct
      in
      ignore (row "all" nodes_all (List.length all) wall_all);
      all_rows :=
        Printf.sprintf
          "    {\"dataset\": %S, \"min_sup\": %d, \"dfs_nodes\": %d, \
           \"patterns\": %d, \"wall_s\": %.6f}"
          name min_sup nodes_all (List.length all) wall_all
        :: !all_rows;
      (* top-100: the supports must be exactly the 100 best of mine-all *)
      let k = 100 in
      let topk, nodes_topk, wall_topk = run (Query.Top_k k) in
      let expect_sup =
        List.filteri (fun i _ -> i < k)
          (List.sort Mined.compare_by_support_desc all)
        |> List.map (fun m -> m.Mined.support)
        |> List.sort compare
      in
      let got_sup =
        List.map (fun m -> m.Mined.support) topk |> List.sort compare
      in
      if got_sup <> expect_sup then
        failwith
          (Printf.sprintf
             "query bench: %s: top-%d supports differ from mine-all" name k);
      let pct =
        row (Printf.sprintf "top-%d" k) nodes_topk (List.length topk)
          wall_topk
      in
      if name = "jboss_traces" && pct >= 25.0 then
        failwith
          (Printf.sprintf
             "query bench: top-%d on %s expanded %.1f%% of mine-all's nodes \
              (budget: < 25%%)"
             k name pct);
      topk_rows :=
        Printf.sprintf
          "    {\"dataset\": %S, \"k\": %d, \"dfs_nodes\": %d, \
           \"node_ratio\": %.4f, \"patterns\": %d, \"wall_s\": %.6f, \
           \"outputs_identical\": true}"
          name k nodes_topk
          (float_of_int nodes_topk /. float_of_int (max 1 nodes_all))
          (List.length topk) wall_topk
        :: !topk_rows;
      (* targeted: the best length-2 closed pattern as the target; the
         answer must be the exact containment filter of mine-all *)
      let by_sup = List.sort Mined.compare_by_support_desc all in
      let target =
        match
          List.filter (fun m -> Pattern.length m.Mined.pattern = 2) by_sup
        with
        | m :: _ -> m.Mined.pattern
        | [] -> (List.hd by_sup).Mined.pattern
      in
      let targeted, nodes_t, wall_t = run (Query.Targeted target) in
      let expect =
        List.filter
          (fun m -> Pattern.is_subpattern target ~of_:m.Mined.pattern)
          all
      in
      if List.map sig_of targeted <> List.map sig_of expect then
        failwith
          (Printf.sprintf
             "query bench: %s: targeted answer differs from the post-filter"
             name);
      ignore
        (row
           (Printf.sprintf "target %s" (Pattern.to_string target))
           nodes_t (List.length targeted) wall_t);
      target_rows :=
        Printf.sprintf
          "    {\"dataset\": %S, \"target\": %S, \"dfs_nodes\": %d, \
           \"node_ratio\": %.4f, \"patterns\": %d, \"wall_s\": %.6f, \
           \"outputs_identical\": true}"
          name
          (Pattern.to_string target)
          nodes_t
          (float_of_int nodes_t /. float_of_int (max 1 nodes_all))
          (List.length targeted) wall_t
        :: !target_rows;
      (* δ-cover of the closed answer (its natural input) at a few
         compression bands *)
      let closed, _, _ = run ~mode:Miner.Closed Query.All in
      List.iter
        (fun delta ->
          let covers = Rgs_post.Compress.delta_cover ~delta closed in
          let reps = List.length covers in
          delta_rows :=
            Printf.sprintf
              "    {\"dataset\": %S, \"delta\": %.2f, \"patterns\": %d, \
               \"representatives\": %d, \"covered\": %d}"
              name delta (List.length closed) reps
              (List.length closed - reps)
            :: !delta_rows)
        [ 0.05; 0.2; 0.5 ])
    datasets;
  print_table "query answer modes — DFS nodes vs mine-all (answers checked)" t;
  if datasets <> [] then begin
    let oc = open_out json_path in
    Printf.fprintf oc
      "{\n  \"bench\": \"query answer modes, in-DFS pruning vs mine-all\",\n  \
       \"mine_all\": [\n%s\n  ],\n  \"top_k\": [\n%s\n  ],\n  \
       \"targeted\": [\n%s\n  ],\n  \"delta_cover\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.rev !all_rows))
      (String.concat ",\n" (List.rev !topk_rows))
      (String.concat ",\n" (List.rev !target_rows))
      (String.concat ",\n" (List.rev !delta_rows));
    close_out oc;
    Format.printf "wrote %s@." json_path
  end

let () =
  if not (env_flag "RGS_BENCH_SKIP_TABLES") then section_tables ();
  (* store before layout: section_layout writes the JSON, including the
     store rows gathered here *)
  if not (env_flag "RGS_BENCH_SKIP_STORE") then section_store ();
  (* steal before layout for the same reason: its rows go in the JSON *)
  if not (env_flag "RGS_BENCH_SKIP_STEAL") then section_steal ();
  if not (env_flag "RGS_BENCH_SKIP_SUPERVISE") then section_supervise ();
  if not (env_flag "RGS_BENCH_SKIP_LAYOUT") then section_layout ();
  if not (env_flag "RGS_BENCH_SKIP_MICRO") then begin
    section_micro ();
    section_parallel ()
  end;
  if not (env_flag "RGS_BENCH_SKIP_CHECKPOINT") then section_checkpoint ();
  if not (env_flag "RGS_BENCH_SKIP_QUERY") then section_query ()
