(* Tests for the experiment harness: timed runs honour budgets, sweeps
   have the right shape, the case study pipeline is wired correctly. *)

open Rgs_sequence
module E = Rgs_experiments

let tiny_db = Seqdb.of_strings [ "ABCABCA"; "AABBCCC"; "CBACBA" ]

let test_run_counts () =
  let idx = Inverted_index.build tiny_db in
  let all = E.Exp_common.run_gsgrow idx ~min_sup:3 in
  let closed = E.Exp_common.run_clogsgrow idx ~min_sup:3 in
  Alcotest.(check bool) "all not timed out" false all.E.Exp_common.timed_out;
  Alcotest.(check bool) "counts consistent" true
    (closed.E.Exp_common.patterns <= all.E.Exp_common.patterns);
  (* counts match direct mining *)
  let direct, _ = Rgs_core.Gsgrow.mine idx ~min_sup:3 in
  Alcotest.(check int) "all count" (List.length direct) all.E.Exp_common.patterns

let test_run_timeout_marks () =
  (* A zero budget must abort immediately and mark the run. *)
  let db =
    Rgs_datagen.Quest_gen.generate (Rgs_datagen.Quest_gen.params ~d:200 ~c:20 ~n:50 ~s:6 ())
  in
  let idx = Inverted_index.build db in
  let run = E.Exp_common.run_gsgrow ~timeout_s:0.0 idx ~min_sup:2 in
  Alcotest.(check bool) "timed out" true run.E.Exp_common.timed_out

let test_sweep_shape () =
  let rows = E.Sweeps.min_sup_sweep ~timeout_s:10. tiny_db ~min_sups:[ 3; 5; 4 ] in
  Alcotest.(check (list int)) "descending thresholds" [ 5; 4; 3 ]
    (List.map (fun r -> r.E.Sweeps.x) rows);
  List.iter
    (fun r ->
      match r.E.Sweeps.all with
      | Some all ->
        Alcotest.(check bool)
          (Printf.sprintf "closed <= all at %d" r.E.Sweeps.x)
          true
          (r.E.Sweeps.closed.E.Exp_common.patterns <= all.E.Exp_common.patterns)
      | None -> Alcotest.fail "tiny sweep should not skip GSgrow")
    rows;
  (* monotone: lower min_sup, more (or equal) patterns *)
  let counts = List.map (fun r -> r.E.Sweeps.closed.E.Exp_common.patterns) rows in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "closed counts grow as min_sup drops" true (non_decreasing counts)

let test_sweep_report_renders () =
  let rows = E.Sweeps.min_sup_sweep ~timeout_s:10. tiny_db ~min_sups:[ 3; 4 ] in
  let rendered = Rgs_post.Report.to_string (E.Sweeps.report ~x_label:"min_sup" rows) in
  Alcotest.(check bool) "mentions closed_patterns column" true
    (String.length rendered > 0);
  Alcotest.(check bool) "two data rows" true
    (List.length (String.split_on_char '\n' (String.trim rendered)) = 4)

let test_comparators_entries () =
  let entries = E.Comparators.compare_all ~timeout_s:10. ~max_length:4 tiny_db ~min_sup:2 in
  Alcotest.(check int) "five miners" 5 (List.length entries);
  List.iter
    (fun e ->
      Alcotest.(check bool) (e.E.Comparators.miner ^ " ran") true
        (e.E.Comparators.elapsed_s >= 0.);
      Alcotest.(check bool) (e.E.Comparators.miner ^ " found") true
        (e.E.Comparators.patterns > 0))
    entries;
  (* closed sequential miners agree with each other *)
  let find name =
    (List.find (fun e -> e.E.Comparators.miner = name) entries).E.Comparators.patterns
  in
  Alcotest.(check int) "CloSpan = BIDE"
    (find "CloSpan (closed, sequential)")
    (find "BIDE (closed, sequential)")

let test_ablation_entries () =
  let entries = E.Ablation.run ~timeout_s:10. tiny_db ~min_sup:3 in
  Alcotest.(check int) "five variants" 5 (List.length entries);
  let patterns_of k = (List.nth entries k).E.Ablation.patterns in
  (* full CloGSgrow and CCheck-only emit the same closed set *)
  Alcotest.(check int) "LBCheck output-invariant" (patterns_of 0) (patterns_of 1);
  Alcotest.(check bool) "GSgrow emits more" true (patterns_of 2 >= patterns_of 0);
  (* the post-hoc filter finds the same closed set when GSgrow finishes *)
  Alcotest.(check int) "post-filter = CloGSgrow" (patterns_of 0) (patterns_of 3);
  (* levelwise finds the same frequent set as GSgrow *)
  Alcotest.(check int) "levelwise = GSgrow" (patterns_of 2) (patterns_of 4)

let test_case_study_smoke () =
  (* High threshold + small budget: fast, still exercises the pipeline. *)
  let o = E.Case_study.run ~min_sup:150 ~max_patterns:200 () in
  Alcotest.(check int) "28 traces" 28 o.E.Case_study.traces;
  Alcotest.(check bool) "pipeline monotone" true
    (o.E.Case_study.after_postprocessing <= o.E.Case_study.closed_patterns);
  Alcotest.(check bool) "lock-unlock support positive" true
    (o.E.Case_study.lock_unlock_support > 0);
  (* report renders *)
  let rendered = Rgs_post.Report.to_string (E.Case_study.report o) in
  Alcotest.(check bool) "report non-empty" true (String.length rendered > 100)

(* --stats smoke: the experiments CLI must write the same Metrics JSON as
   rgsminer --stats, scoped to the experiment's own work (a snapshot diff,
   so counters from process startup are excluded). *)
let test_stats_flag_smoke () =
  (* resolve against the test binary, not the cwd: dune runtest and a bare
     dune exec run from different directories *)
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "experiments.exe"))
  in
  if not (Sys.file_exists exe) then Alcotest.fail "experiments.exe not built";
  Test_trace.with_temp_file (fun path ->
      let cmd =
        Printf.sprintf "%s table1 --stats %s >/dev/null 2>/dev/null"
          (Filename.quote exe) (Filename.quote path)
      in
      Alcotest.(check int) "exit code" 0 (Sys.command cmd);
      let j = Test_trace.Json.parse (Test_trace.read_file path) in
      let counter name =
        let entry = Test_trace.Json.get name j in
        Alcotest.(check string)
          (name ^ " kind") "counter"
          (Test_trace.Json.(to_str (get "kind" entry)));
        int_of_float Test_trace.Json.(to_num (get "value" entry))
      in
      (* Table I mines Example 1.1, so the hot-path counters must have
         registered real work *)
      Alcotest.(check bool) "next_calls > 0" true (counter "next_calls" > 0);
      Alcotest.(check bool) "insgrow_calls > 0" true
        (counter "insgrow_calls" > 0);
      Alcotest.(check bool) "cursor_gallops present" true
        (counter "cursor_gallops" >= 0))

(* --trace smoke: the experiments CLI exports the ambient trace its sweeps
   record into as the same Chrome trace_event JSON rgsminer writes. *)
let test_trace_flag_smoke () =
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "experiments.exe"))
  in
  if not (Sys.file_exists exe) then Alcotest.fail "experiments.exe not built";
  Test_trace.with_temp_file (fun path ->
      let cmd =
        Printf.sprintf
          "%s fig2 --scale 0.01 --timeout 1 --trace %s >/dev/null 2>/dev/null"
          (Filename.quote exe) (Filename.quote path)
      in
      Alcotest.(check int) "exit code" 0 (Sys.command cmd);
      let doc = Test_trace.Json.parse (Test_trace.read_file path) in
      let events = Test_trace.Json.(to_arr (get "traceEvents" doc)) in
      Alcotest.(check bool) "trace nonempty" true (events <> []);
      (* the sweep's mining runs show up as complete ("X") spans *)
      let spans =
        List.filter
          (fun e -> Test_trace.Json.(to_str (get "ph" e)) = "X")
          events
      in
      Alcotest.(check bool) "has spans" true (spans <> []))

let suite =
  [
    Alcotest.test_case "timed run counts" `Quick test_run_counts;
    Alcotest.test_case "timeout marking" `Quick test_run_timeout_marks;
    Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
    Alcotest.test_case "sweep report renders" `Quick test_sweep_report_renders;
    Alcotest.test_case "comparators entries" `Quick test_comparators_entries;
    Alcotest.test_case "ablation entries" `Quick test_ablation_entries;
    Alcotest.test_case "case study smoke" `Quick test_case_study_smoke;
    Alcotest.test_case "--stats flag smoke" `Quick test_stats_flag_smoke;
    Alcotest.test_case "--trace flag smoke" `Quick test_trace_flag_smoke;
  ]
