(* Unit tests for Pattern: growth, insertion/extensions (Definition 3.4),
   subsequence containment. *)

open Rgs_core

let p = Pattern.of_string

let test_basics () =
  let ab = p "AB" in
  Alcotest.(check int) "length" 2 (Pattern.length ab);
  Alcotest.(check int) "get 1" 0 (Pattern.get ab 1);
  Alcotest.(check int) "get 2" 1 (Pattern.get ab 2);
  Alcotest.(check int) "last" 1 (Pattern.last ab);
  Alcotest.(check bool) "empty" true (Pattern.is_empty Pattern.empty);
  Alcotest.(check string) "to_string" "AB" (Pattern.to_string ab);
  Alcotest.(check (list int)) "events" [ 0; 1 ] (Pattern.events (p "ABAB"))

let test_bounds () =
  Alcotest.check_raises "get 0" (Invalid_argument "Pattern.get: index 0 out of [1;2]")
    (fun () -> ignore (Pattern.get (p "AB") 0));
  Alcotest.check_raises "last empty" (Invalid_argument "Pattern.last: empty pattern")
    (fun () -> ignore (Pattern.last Pattern.empty))

let test_grow_concat () =
  Alcotest.(check bool) "grow" true (Pattern.equal (Pattern.grow (p "AB") 2) (p "ABC"));
  Alcotest.(check bool) "grow empty" true (Pattern.equal (Pattern.grow Pattern.empty 0) (p "A"));
  Alcotest.(check bool) "concat" true (Pattern.equal (Pattern.concat (p "AB") (p "CD")) (p "ABCD"))

let test_insert () =
  let ab = p "AB" in
  Alcotest.(check bool) "prepend" true (Pattern.equal (Pattern.insert ab ~at:0 2) (p "CAB"));
  Alcotest.(check bool) "middle" true (Pattern.equal (Pattern.insert ab ~at:1 2) (p "ACB"));
  Alcotest.(check bool) "append" true (Pattern.equal (Pattern.insert ab ~at:2 2) (p "ABC"));
  Alcotest.check_raises "out of range" (Invalid_argument "Pattern.insert: position 3 out of [0;2]")
    (fun () -> ignore (Pattern.insert ab ~at:3 2))

let test_extensions () =
  let exts = Pattern.extensions (p "AB") ~events:[ 0; 1 ] in
  (* 3 positions x 2 events *)
  Alcotest.(check int) "count" 6 (List.length exts);
  let strings = List.map (fun (_, _, q) -> Pattern.to_string q) exts in
  List.iter
    (fun expected ->
      Alcotest.(check bool) ("contains " ^ expected) true (List.mem expected strings))
    [ "AAB"; "BAB"; "AAB"; "ABB"; "ABA"; "ABB" ];
  (* every extension is a proper super-pattern *)
  List.iter
    (fun (_, _, q) ->
      Alcotest.(check bool) "superpattern" true (Pattern.is_subpattern (p "AB") ~of_:q))
    exts

let test_subpattern () =
  let check_sub a b expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s sub of %s" a b)
      expected
      (Pattern.is_subpattern (p a) ~of_:(p b))
  in
  check_sub "AB" "AABB" true;
  check_sub "AB" "BA" false;
  check_sub "ABC" "ABC" true;
  check_sub "AAB" "AB" false;
  check_sub "ACB" "ABCACB" true;
  check_sub "" "ABC" true;
  check_sub "A" "" false

let test_compare_orders () =
  let r1 = { Mined.pattern = p "AB"; support = 5; support_set = Support_set.empty } in
  let r2 = { Mined.pattern = p "ABC"; support = 5; support_set = Support_set.empty } in
  let r3 = { Mined.pattern = p "Z"; support = 9; support_set = Support_set.empty } in
  let by_sup = List.sort Mined.compare_by_support_desc [ r1; r2; r3 ] in
  Alcotest.(check (list string)) "by support" [ "Z"; "AB"; "ABC" ]
    (List.map (fun r -> Pattern.to_string r.Mined.pattern) by_sup);
  let by_len = List.sort Mined.compare_by_length_desc [ r1; r2; r3 ] in
  Alcotest.(check (list string)) "by length" [ "ABC"; "AB"; "Z" ]
    (List.map (fun r -> Pattern.to_string r.Mined.pattern) by_len)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "grow/concat" `Quick test_grow_concat;
    Alcotest.test_case "insert" `Quick test_insert;
    Alcotest.test_case "extensions" `Quick test_extensions;
    Alcotest.test_case "subpattern" `Quick test_subpattern;
    Alcotest.test_case "result orders" `Quick test_compare_orders;
  ]
