(* Unit tests for the rgs_sequence substrate: events, codecs, sequences,
   databases, I/O and the inverted index. *)

open Rgs_sequence

(* --- Codec --- *)

let test_codec_roundtrip () =
  let c = Codec.create () in
  let a = Codec.intern c "alpha" in
  let b = Codec.intern c "beta" in
  Alcotest.(check int) "first id" 0 a;
  Alcotest.(check int) "second id" 1 b;
  Alcotest.(check int) "reintern" a (Codec.intern c "alpha");
  Alcotest.(check string) "name" "beta" (Codec.name c b);
  Alcotest.(check (option int)) "find" (Some 0) (Codec.find c "alpha");
  Alcotest.(check (option int)) "find missing" None (Codec.find c "gamma");
  Alcotest.(check int) "size" 2 (Codec.size c);
  Alcotest.(check (list int)) "alphabet" [ 0; 1 ] (Codec.alphabet c)

let test_codec_growth () =
  let c = Codec.create ~capacity:1 () in
  let ids = List.init 100 (fun i -> Codec.intern c (string_of_int i)) in
  Alcotest.(check (list int)) "dense ids" (List.init 100 Fun.id) ids;
  Alcotest.(check string) "name 99" "99" (Codec.name c 99)

let test_codec_bad_name () =
  let c = Codec.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Codec.name: unknown event id 5")
    (fun () -> ignore (Codec.name c 5));
  Alcotest.(check (option string)) "name_opt" None (Codec.name_opt c 5)

(* --- Sequence --- *)

let test_sequence_basics () =
  let s = Sequence.of_string "ABCA" in
  Alcotest.(check int) "length" 4 (Sequence.length s);
  Alcotest.(check int) "get 1" 0 (Sequence.get s 1);
  Alcotest.(check int) "get 4" 0 (Sequence.get s 4);
  Alcotest.(check (list int)) "events" [ 0; 1; 2 ] (Sequence.events s);
  Alcotest.(check int) "count A" 2 (Sequence.count s 0);
  Alcotest.(check int) "count D" 0 (Sequence.count s 3);
  Alcotest.(check bool) "not empty" false (Sequence.is_empty s);
  Alcotest.(check bool) "empty" true (Sequence.is_empty (Sequence.of_list []))

let test_sequence_bounds () =
  let s = Sequence.of_string "AB" in
  Alcotest.check_raises "get 0" (Invalid_argument "Sequence.get: position 0 out of [1;2]")
    (fun () -> ignore (Sequence.get s 0));
  Alcotest.check_raises "get 3" (Invalid_argument "Sequence.get: position 3 out of [1;2]")
    (fun () -> ignore (Sequence.get s 3))

let test_sequence_of_string_invalid () =
  Alcotest.check_raises "lowercase" (Invalid_argument "Sequence.of_string: bad char 'a'")
    (fun () -> ignore (Sequence.of_string "aB"))

let test_sequence_sub_append () =
  let s = Sequence.of_string "ABCDE" in
  Alcotest.(check bool) "sub" true
    (Sequence.equal (Sequence.sub s ~pos:2 ~len:3) (Sequence.of_string "BCD"));
  Alcotest.(check bool) "append" true
    (Sequence.equal
       (Sequence.append (Sequence.of_string "AB") (Sequence.of_string "CD"))
       (Sequence.of_string "ABCD"))

let test_sequence_iteri () =
  let s = Sequence.of_string "ABC" in
  let seen = ref [] in
  Sequence.iteri (fun i e -> seen := (i, e) :: !seen) s;
  Alcotest.(check (list (pair int int))) "1-based" [ (3, 2); (2, 1); (1, 0) ] !seen

let test_sequence_pp () =
  Alcotest.(check string) "letters" "ABC"
    (Format.asprintf "%a" Sequence.pp (Sequence.of_string "ABC"));
  Alcotest.(check string) "ids" "<0 27>"
    (Format.asprintf "%a" Sequence.pp (Sequence.of_list [ 0; 27 ]))

(* --- Seqdb --- *)

let db = Seqdb.of_strings [ "ABCABCA"; "AABBCCC" ]

let test_seqdb_basics () =
  Alcotest.(check int) "size" 2 (Seqdb.size db);
  Alcotest.(check int) "total_length" 14 (Seqdb.total_length db);
  Alcotest.(check int) "max_length" 7 (Seqdb.max_length db);
  Alcotest.(check (list int)) "alphabet" [ 0; 1; 2 ] (Seqdb.alphabet db);
  Alcotest.(check int) "event_count A" 5 (Seqdb.event_count db 0);
  Alcotest.(check int) "event_count C" 5 (Seqdb.event_count db 2);
  Alcotest.(check bool) "seq 1" true
    (Sequence.equal (Seqdb.seq db 1) (Sequence.of_string "ABCABCA"))

let test_seqdb_bounds () =
  Alcotest.check_raises "seq 0" (Invalid_argument "Seqdb.seq: index 0 out of [1;2]")
    (fun () -> ignore (Seqdb.seq db 0))

let test_seqdb_stats () =
  let st = Seqdb.stats db in
  Alcotest.(check int) "sequences" 2 st.Seqdb.num_sequences;
  Alcotest.(check int) "events" 3 st.Seqdb.num_events;
  Alcotest.(check int) "min" 7 st.Seqdb.min_length;
  Alcotest.(check int) "max" 7 st.Seqdb.max_length;
  Alcotest.(check (float 0.001)) "avg" 7.0 st.Seqdb.avg_length

(* --- Seq_io --- *)

let test_io_tokens_roundtrip () =
  let text = "login view buy\nlogin logout\n# comment\n\nview view\n" in
  let parsed, codec = Seq_io.parse_tokens text in
  Alcotest.(check int) "3 sequences" 3 (Seqdb.size parsed);
  Alcotest.(check int) "4 names" 4 (Codec.size codec);
  let printed = Seq_io.print_tokens codec parsed in
  let reparsed, _ = Seq_io.parse_tokens ~codec printed in
  Alcotest.(check bool) "roundtrip" true (Seqdb.equal parsed reparsed)

let test_io_spmf_roundtrip () =
  let text = "1 -1 2 -1 3 -2\n4 -1 4 -2\n" in
  let parsed = Seq_io.parse_spmf text in
  Alcotest.(check int) "2 sequences" 2 (Seqdb.size parsed);
  Alcotest.(check (list int)) "seq 1" [ 1; 2; 3 ] (Sequence.to_list (Seqdb.seq parsed 1));
  let reparsed = Seq_io.parse_spmf (Seq_io.print_spmf parsed) in
  Alcotest.(check bool) "roundtrip" true (Seqdb.equal parsed reparsed)

let test_io_spmf_malformed () =
  Alcotest.check_raises "trailing"
    (Seq_io.Parse_error { line = 1; msg = "trailing events without -2 terminator" })
    (fun () -> ignore (Seq_io.parse_spmf "1 2 3"));
  Alcotest.check_raises "bad token"
    (Seq_io.Parse_error { line = 2; msg = "bad token \"x\"" })
    (fun () -> ignore (Seq_io.parse_spmf "1 -2\n1 x -2"));
  Alcotest.check_raises "bad event"
    (Seq_io.Parse_error { line = 1; msg = "bad event -7" })
    (fun () -> ignore (Seq_io.parse_spmf "-7 -2"))

let test_io_spmf_lenient () =
  (* skip the malformed middle line, keep the well-formed rest *)
  let db, skipped = Seq_io.parse_spmf_report ~strict:false "1 2 -2\n1 x -2\n3 -2\n" in
  Alcotest.(check int) "skipped count" 1 skipped;
  Alcotest.(check int) "2 sequences kept" 2 (Seqdb.size db);
  Alcotest.(check (list int)) "seq 2" [ 3 ] (Sequence.to_list (Seqdb.seq db 2));
  (* trailing events at EOF count as one skipped line *)
  let db, skipped = Seq_io.parse_spmf_report ~strict:false "1 -2\n2 3" in
  Alcotest.(check int) "trailing skipped" 1 skipped;
  Alcotest.(check int) "1 sequence" 1 (Seqdb.size db);
  (* strict report never skips *)
  let _, skipped = Seq_io.parse_spmf_report "1 -2\n" in
  Alcotest.(check int) "strict skips none" 0 skipped

let test_io_chars_malformed () =
  (match Seq_io.parse_chars "AB\na!\n" with
  | exception Seq_io.Parse_error { line = 2; _ } -> ()
  | exception e -> raise e
  | _ -> Alcotest.fail "expected Parse_error on line 2");
  let db, skipped = Seq_io.parse_chars_report ~strict:false "AB\na!\nBA\n" in
  Alcotest.(check int) "skipped" 1 skipped;
  Alcotest.(check int) "kept" 2 (Seqdb.size db)

let test_io_chars () =
  let parsed = Seq_io.parse_chars "AB\nBA\n" in
  Alcotest.(check int) "2 seqs" 2 (Seqdb.size parsed);
  Alcotest.(check (list int)) "seq 2" [ 1; 0 ] (Sequence.to_list (Seqdb.seq parsed 2))

let test_io_files () =
  let path = Filename.temp_file "rgs_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let codec = Codec.of_names [ "x"; "y" ] in
      let original = Seqdb.of_sequences [ Sequence.of_list [ 0; 1; 0 ] ] in
      Seq_io.save_tokens codec original path;
      let loaded, _ = Seq_io.load_tokens ~codec path in
      Alcotest.(check bool) "file roundtrip" true (Seqdb.equal original loaded))

(* --- Inverted index --- *)

let idx = Inverted_index.build db

let test_index_positions () =
  Alcotest.(check (list int)) "A in S1" [ 1; 4; 7 ]
    (Array.to_list (Inverted_index.positions idx ~seq:1 0));
  Alcotest.(check (list int)) "C in S2" [ 5; 6; 7 ]
    (Array.to_list (Inverted_index.positions idx ~seq:2 2));
  Alcotest.(check (list int)) "missing event" []
    (Array.to_list (Inverted_index.positions idx ~seq:1 9))

let test_index_next () =
  Alcotest.(check (option int)) "next A after 0" (Some 1)
    (Inverted_index.next idx ~seq:1 0 ~lowest:0);
  Alcotest.(check (option int)) "next A after 1" (Some 4)
    (Inverted_index.next idx ~seq:1 0 ~lowest:1);
  Alcotest.(check (option int)) "next A after 6" (Some 7)
    (Inverted_index.next idx ~seq:1 0 ~lowest:6);
  Alcotest.(check (option int)) "next A after 7" None
    (Inverted_index.next idx ~seq:1 0 ~lowest:7);
  Alcotest.(check (option int)) "next missing" None
    (Inverted_index.next idx ~seq:2 9 ~lowest:0)

let test_index_counts () =
  Alcotest.(check int) "occurrences A" 5 (Inverted_index.occurrence_count idx 0);
  Alcotest.(check int) "occurrences missing" 0 (Inverted_index.occurrence_count idx 9);
  Alcotest.(check (list int)) "events" [ 0; 1; 2 ] (Inverted_index.events idx);
  Alcotest.(check (list int)) "frequent >= 5" [ 0; 2 ]
    (Inverted_index.frequent_events idx ~min_sup:5)

(* next() agrees with a linear scan on every position of every sequence. *)
let test_index_next_exhaustive () =
  Seqdb.iter
    (fun i s ->
      List.iter
        (fun e ->
          for lowest = 0 to Sequence.length s do
            let linear = ref None in
            (try
               for pos = lowest + 1 to Sequence.length s do
                 if Sequence.get s pos = e then begin
                   linear := Some pos;
                   raise Exit
                 end
               done
             with Exit -> ());
            Alcotest.(check (option int))
              (Printf.sprintf "next S%d e%d lowest=%d" i e lowest)
              !linear
              (Inverted_index.next idx ~seq:i e ~lowest)
          done)
        (Seqdb.alphabet db))
    db

let suite =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec growth" `Quick test_codec_growth;
    Alcotest.test_case "codec bad name" `Quick test_codec_bad_name;
    Alcotest.test_case "sequence basics" `Quick test_sequence_basics;
    Alcotest.test_case "sequence bounds" `Quick test_sequence_bounds;
    Alcotest.test_case "sequence of_string invalid" `Quick test_sequence_of_string_invalid;
    Alcotest.test_case "sequence sub/append" `Quick test_sequence_sub_append;
    Alcotest.test_case "sequence iteri 1-based" `Quick test_sequence_iteri;
    Alcotest.test_case "sequence pp" `Quick test_sequence_pp;
    Alcotest.test_case "seqdb basics" `Quick test_seqdb_basics;
    Alcotest.test_case "seqdb bounds" `Quick test_seqdb_bounds;
    Alcotest.test_case "seqdb stats" `Quick test_seqdb_stats;
    Alcotest.test_case "io tokens roundtrip" `Quick test_io_tokens_roundtrip;
    Alcotest.test_case "io spmf roundtrip" `Quick test_io_spmf_roundtrip;
    Alcotest.test_case "io spmf malformed" `Quick test_io_spmf_malformed;
    Alcotest.test_case "io spmf lenient" `Quick test_io_spmf_lenient;
    Alcotest.test_case "io chars malformed" `Quick test_io_chars_malformed;
    Alcotest.test_case "io chars" `Quick test_io_chars;
    Alcotest.test_case "io files" `Quick test_io_files;
    Alcotest.test_case "index positions" `Quick test_index_positions;
    Alcotest.test_case "index next" `Quick test_index_next;
    Alcotest.test_case "index counts" `Quick test_index_counts;
    Alcotest.test_case "index next exhaustive" `Quick test_index_next_exhaustive;
  ]
