(* Differential suite for the columnar (CSR) index backend.

   The refactor's contract is bit-identical behavior: on every database the
   CSR backend must answer positions/next/count_between exactly like the
   legacy hashtable layout and the paged B-tree layout, the monotone cursor
   must agree with repeated [next] calls, and the full miners must produce
   identical outputs on all backends. Each property runs on 100+ random
   databases.

   The fourth backend is the store round-trip: the database packed into a
   [.rgsdb] file, re-opened as a mapped Seqdb (lazy sequences, zero-copy
   CSR slices over the pack-time sections), and indexed through the same
   [build] entry. Every property holding on it pins the mapped read path
   to the heap one. *)

open Rgs_sequence
open Rgs_core
module Store = Rgs_store.Store

(* Pack [db] and re-open it mapped. The temp file is unlinked immediately:
   on Linux the mapping outlives the directory entry, which also checks
   that nothing in the index re-opens the path. *)
let mapped_db db =
  let path = Filename.temp_file "rgs_csr" ".rgsdb" in
  Store.write ~path db;
  let sdb, _ = Store.open_db path in
  Sys.remove path;
  sdb

let backends db =
  [
    Inverted_index.build_kind Inverted_index.Kcsr db;
    Inverted_index.build_kind Inverted_index.Klegacy db;
    Inverted_index.build_kind ~fanout:4 Inverted_index.Kpaged db;
    Inverted_index.build_kind Inverted_index.Kcsr (mapped_db db);
  ]

let small_db = Gens.db ~num_seqs:6 ~alphabet:5 ~max_len:14

(* positions / next / count_between / occurrence_count / events answer
   identically on all three backends, including absent events. *)
let prop_queries_equal =
  Gens.make ~name:"csr = legacy = paged: queries" ~count:120 small_db
    Gens.print_db (fun db ->
      match backends db with
      | [ csr; legacy; paged; mapped ] ->
        let events = [ 0; 1; 2; 3; 4; 5; 99 ] (* 5 and 99 are absent *) in
        List.for_all
          (fun alt ->
            Inverted_index.events csr = Inverted_index.events alt
            && Inverted_index.frequent_events csr ~min_sup:3
               = Inverted_index.frequent_events alt ~min_sup:3
            && List.for_all
                 (fun e ->
                   Inverted_index.occurrence_count csr e
                   = Inverted_index.occurrence_count alt e
                   &&
                   let ok = ref true in
                   Seqdb.iter
                     (fun i s ->
                       let n = Sequence.length s in
                       if
                         Inverted_index.positions csr ~seq:i e
                         <> Inverted_index.positions alt ~seq:i e
                       then ok := false;
                       for lowest = 0 to n + 1 do
                         if
                           Inverted_index.next csr ~seq:i e ~lowest
                           <> Inverted_index.next alt ~seq:i e ~lowest
                         then ok := false
                       done;
                       for lo = 0 to n do
                         if
                           Inverted_index.count_between csr ~seq:i e ~lo
                             ~hi:(lo + 5)
                           <> Inverted_index.count_between alt ~seq:i e ~lo
                                ~hi:(lo + 5)
                         then ok := false
                       done;
                       ())
                     db;
                   !ok)
                 events)
          [ legacy; paged; mapped ]
      | _ -> assert false)

(* A monotone stream of seeks through a cursor returns exactly what
   repeated stateless [next] calls return, on every backend. *)
let prop_cursor_equals_next =
  Gens.make ~name:"cursor seek = repeated next" ~count:120 small_db
    Gens.print_db (fun db ->
      List.for_all
        (fun idx ->
          let ok = ref true in
          List.iter
            (fun e ->
              Seqdb.iter
                (fun i s ->
                  let c = Inverted_index.cursor idx ~seq:i e in
                  for lowest = 0 to Sequence.length s + 1 do
                    if
                      Inverted_index.seek c ~lowest
                      <> Inverted_index.next idx ~seq:i e ~lowest
                    then ok := false
                  done;
                  Inverted_index.cursor_finish c)
                db)
            [ 0; 1; 2; 3; 4; 7 ];
          !ok)
        (backends db))

(* Support-set growth agrees across backends and stays well-formed. *)
let prop_grow_equal =
  Gens.make ~name:"Support_set.grow across backends" ~count:120
    QCheck2.Gen.(pair small_db (Gens.pattern ~alphabet:5 ~max_len:4))
    Gens.print_db_pattern (fun (db, pat) ->
      match backends db with
      | [ csr; legacy; paged; mapped ] ->
        let grow_all idx =
          let sets = ref [] in
          let i = ref (Support_set.of_event idx (Pattern.get pat 1)) in
          sets := [ !i ];
          for j = 2 to Pattern.length pat do
            i := Support_set.grow idx !i (Pattern.get pat j);
            sets := !i :: !sets
          done;
          List.rev !sets
        in
        let on_csr = grow_all csr in
        List.for_all Support_set.well_formed on_csr
        && List.for_all2 Support_set.equal on_csr (grow_all legacy)
        && List.for_all2 Support_set.equal on_csr (grow_all paged)
        && List.for_all2 Support_set.equal on_csr (grow_all mapped)
      | _ -> assert false)

let signatures results =
  List.map
    (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support))
    results

(* Full-miner differential: GSgrow and CloGSgrow mine the exact same
   pattern set (same order, same supports) on all three backends. *)
let prop_miners_equal =
  Gens.make ~name:"GSgrow/CloGSgrow across backends" ~count:100 small_db
    Gens.print_db (fun db ->
      match backends db with
      | [ csr; legacy; paged; mapped ] ->
        let all idx = signatures (fst (Gsgrow.mine ~max_length:4 idx ~min_sup:2)) in
        let closed idx =
          signatures (fst (Clogsgrow.mine ~max_length:4 idx ~min_sup:2))
        in
        all csr = all legacy
        && all csr = all paged
        && all csr = all mapped
        && closed csr = closed legacy
        && closed csr = closed paged
        && closed csr = closed mapped
      | _ -> assert false)

(* Gap-constrained mining rides the same cursor path; cover it too. *)
let prop_gap_miner_equal =
  Gens.make ~name:"gap-constrained across backends" ~count:100 small_db
    Gens.print_db (fun db ->
      match backends db with
      | [ csr; legacy; paged; mapped ] ->
        let mine idx =
          signatures
            (fst (Gap_constrained.mine ~max_length:4 idx ~max_gap:2 ~min_sup:2))
        in
        mine csr = mine legacy && mine csr = mine paged && mine csr = mine mapped
      | _ -> assert false)

(* Deterministic end-to-end runs on generated trace data, closer to the
   bench workloads than the tiny qcheck databases. *)
let test_trace_miner_equivalence () =
  List.iter
    (fun seed ->
      let db =
        Rgs_datagen.Trace_gen.generate
          (Rgs_datagen.Trace_gen.params ~num_sequences:25 ~num_events:12 ~seed ())
      in
      let mine kind =
        let idx = Inverted_index.build_kind kind db in
        ( signatures (fst (Gsgrow.mine ~max_length:4 idx ~min_sup:6)),
          signatures (fst (Clogsgrow.mine ~max_length:4 idx ~min_sup:6)) )
      in
      let all_csr, closed_csr = mine Inverted_index.Kcsr in
      let all_legacy, closed_legacy = mine Inverted_index.Klegacy in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "gsgrow seed %d" seed)
        all_legacy all_csr;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "clogsgrow seed %d" seed)
        closed_legacy closed_csr;
      Alcotest.(check bool)
        (Printf.sprintf "nonempty seed %d" seed)
        true
        (List.length all_csr > 0))
    [ 1; 7; 42 ]

(* Alphabet interning unit checks: dense ids are ascending event rank;
   Direct vs Table lookup choice must not change answers. *)
let test_alphabet () =
  let db = Seqdb.of_strings [ "DBA"; "CAB" ] in
  let alpha = Seqdb.dense_alphabet db in
  Alcotest.(check int) "size" 4 (Alphabet.size alpha);
  Alcotest.(check (list int)) "events sorted"
    [ 0; 1; 2; 3 ]
    (Array.to_list (Alphabet.events alpha));
  Array.iteri
    (fun want e ->
      Alcotest.(check int) "dense roundtrip" want (Alphabet.dense alpha e);
      Alcotest.(check int) "event roundtrip" e (Alphabet.event alpha want))
    (Alphabet.events alpha);
  Alcotest.(check int) "absent" (-1) (Alphabet.dense alpha 9);
  Alcotest.(check bool) "mem" true (Alphabet.mem alpha 2);
  Alcotest.(check bool) "not mem" false (Alphabet.mem alpha 9);
  (* sparse ids force the hashtable fallback; semantics must match *)
  let sparse =
    Seqdb.of_sequences
      [ Sequence.of_list [ 1_000_000; 3; 1_000_000 ]; Sequence.of_list [ 3 ] ]
  in
  let a = Seqdb.dense_alphabet sparse in
  Alcotest.(check int) "sparse size" 2 (Alphabet.size a);
  Alcotest.(check int) "sparse dense 3" 0 (Alphabet.dense a 3);
  Alcotest.(check int) "sparse dense big" 1 (Alphabet.dense a 1_000_000);
  Alcotest.(check int) "sparse absent" (-1) (Alphabet.dense a 4)

let suite =
  [
    Alcotest.test_case "alphabet interning" `Quick test_alphabet;
    prop_queries_equal;
    prop_cursor_equals_next;
    prop_grow_equal;
    prop_miners_equal;
    prop_gap_miner_equal;
    Alcotest.test_case "trace miner equivalence" `Quick test_trace_miner_equivalence;
  ]
