(* Tests for post-processing filters (case-study pipeline) and the report
   table renderer. *)

open Rgs_core
open Rgs_post

let p = Pattern.of_string
let mined s sup = { Mined.pattern = p s; support = sup; support_set = Support_set.empty }

let names results = List.map (fun r -> Pattern.to_string r.Mined.pattern) results

let test_density () =
  Alcotest.(check (float 0.0001)) "ABAB" 0.5 (Filters.density (p "ABAB"));
  Alcotest.(check (float 0.0001)) "ABCD" 1.0 (Filters.density (p "ABCD"));
  Alcotest.(check (float 0.0001)) "AAAA" 0.25 (Filters.density (p "AAAA"));
  Alcotest.(check (float 0.0001)) "empty" 0.0 (Filters.density Pattern.empty)

let test_density_filter_strict () =
  let results = [ mined "ABAB" 5; mined "AAAAA" 9; mined "ABC" 3 ] in
  (* > 0.5 is strict: ABAB (0.5) is dropped *)
  Alcotest.(check (list string)) "strict" [ "ABC" ]
    (names (Filters.density_filter ~min_density:0.5 results));
  Alcotest.(check (list string)) "40%" [ "ABAB"; "ABC" ]
    (names (Filters.density_filter ~min_density:0.4 results))

let test_maximal_filter () =
  let results = [ mined "AB" 5; mined "ABC" 4; mined "ABCD" 3; mined "XY" 2 ] in
  Alcotest.(check (list string)) "keep maximal only" [ "ABCD"; "XY" ]
    (names (Filters.maximal_filter results));
  (* supports are irrelevant to maximality *)
  let results = [ mined "AB" 3; mined "AXB" 3 ] in
  Alcotest.(check (list string)) "subpattern dropped" [ "AXB" ]
    (names (Filters.maximal_filter results))

let test_rank_by_length () =
  let results = [ mined "AB" 9; mined "ABCDE" 2; mined "ABC" 5 ] in
  Alcotest.(check (list string)) "longest first" [ "ABCDE"; "ABC"; "AB" ]
    (names (Filters.rank_by_length results))

let test_pipeline () =
  let results =
    [
      mined "AB" 5;    (* dense but subsumed by ACB? no - AB ⊑ ACB *)
      mined "ACB" 4;
      mined "AAAAAAA" 9;  (* fails density *)
      mined "XYZ" 2;
    ]
  in
  Alcotest.(check (list string)) "pipeline" [ "ACB"; "XYZ" ]
    (names (Filters.case_study_pipeline results))

let test_report_table () =
  let t = Report.create ~columns:[ "a"; "b" ] in
  Report.add_row t [ "x"; "1" ];
  Report.add_int_row t "y" [ 22 ];
  let rendered = Report.to_string t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0 && String.sub rendered 0 1 = "|");
  (* columns align: every line has the same length *)
  let lines = String.split_on_char '\n' (String.trim rendered) in
  let lens = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun l -> l = List.hd lens) lens);
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  Alcotest.check_raises "row width" (Invalid_argument "Report.add_row: row width mismatch")
    (fun () -> Report.add_row t [ "only-one" ])

let test_ascii_chart () =
  let open Ascii_chart in
  let chart =
    render ~width:10 ~title:"runtime"
      [
        { label = "All"; points = [ ("10", Some 100.); ("5", None) ] };
        { label = "Closed"; points = [ ("10", Some 100.); ("5", Some 1.) ] };
      ]
  in
  let lines = String.split_on_char '\n' (String.trim chart) in
  Alcotest.(check int) "title + header + 2 rows" 4 (List.length lines);
  Alcotest.(check bool) "log-scale label" true
    (String.length (List.hd lines) > 0 && List.hd lines = "runtime (log scale)");
  (* max bar has full width; None renders blank *)
  let row10 = List.nth lines 2 in
  Alcotest.(check bool) "full bar present" true
    (String.length (String.concat "" (String.split_on_char ' ' row10)) >= 20);
  (* inconsistent ticks rejected *)
  Alcotest.check_raises "tick mismatch"
    (Invalid_argument "Ascii_chart.render: series have inconsistent ticks")
    (fun () ->
      ignore
        (render ~title:"x"
           [
             { label = "a"; points = [ ("1", Some 1.) ] };
             { label = "b"; points = [ ("2", Some 1.) ] };
           ]))

let test_sweep_charts_render () =
  let db = Rgs_sequence.Seqdb.of_strings [ "ABCABCA"; "AABBCCC" ] in
  let rows = Rgs_experiments.Sweeps.min_sup_sweep ~timeout_s:10. db ~min_sups:[ 3; 4 ] in
  let charts = Rgs_experiments.Sweeps.charts rows in
  Alcotest.(check bool) "both panels" true
    (String.length charts > 0
    && String.split_on_char '\n' charts
       |> List.exists (fun l -> l = "(a) runtime [s] (log scale)"))

let test_report_cells () =
  Alcotest.(check string) "float" "0.123" (Report.cell_float 0.1234);
  Alcotest.(check string) "int" "42" (Report.cell_int 42)

let suite =
  [
    Alcotest.test_case "density" `Quick test_density;
    Alcotest.test_case "density filter strict" `Quick test_density_filter_strict;
    Alcotest.test_case "maximal filter" `Quick test_maximal_filter;
    Alcotest.test_case "rank by length" `Quick test_rank_by_length;
    Alcotest.test_case "case-study pipeline" `Quick test_pipeline;
    Alcotest.test_case "report table" `Quick test_report_table;
    Alcotest.test_case "ascii chart" `Quick test_ascii_chart;
    Alcotest.test_case "sweep charts render" `Quick test_sweep_charts_render;
    Alcotest.test_case "report cells" `Quick test_report_cells;
  ]
