(* Cross-semantics properties and failure injection: relations between the
   different support definitions, oracle guard rails, and I/O error
   handling. *)

open Rgs_sequence
open Rgs_core

let gen_db = Gens.db
let gen_pattern = Gens.pattern
let print_pair = Gens.print_db_pattern
let make = Gens.make

(* strict (footnote 1) support never exceeds the paper's support: strict
   non-overlap is a stronger requirement. *)
let prop_strict_le_support =
  make ~name:"strict overlap support <= repetitive support" ~count:200
    QCheck2.Gen.(pair (gen_db ~num_seqs:2 ~alphabet:3 ~max_len:6) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      Strict_overlap.support db p <= Sup_comp.support (Inverted_index.build db) p)

(* exact gap-constrained support is monotone in the gap bound and reaches
   the unconstrained support at large gaps *)
let prop_gap_monotone =
  make ~name:"exact gap support monotone in max_gap" ~count:150
    QCheck2.Gen.(pair (gen_db ~num_seqs:2 ~alphabet:3 ~max_len:6) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      let at g = Brute_force.support ~max_gap:g db p in
      let unconstrained = Brute_force.support db p in
      at 0 <= at 1
      && at 1 <= at 2
      && at 2 <= at 5
      && at 20 = unconstrained)

(* sequential support <= repetitive support (each containing sequence
   yields at least one instance) *)
let prop_sequential_le_repetitive =
  make ~name:"sequential support <= repetitive support" ~count:200
    QCheck2.Gen.(pair (gen_db ~num_seqs:4 ~alphabet:3 ~max_len:7) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      Rgs_baselines.Seq_mining.support db p
      <= Sup_comp.support (Inverted_index.build db) p)

(* iterative occurrences are a subset of all occurrences; minimal windows
   are no more numerous than gap-unbounded occurrences *)
let prop_iterative_le_all_occurrences =
  make ~name:"iterative occurrences <= all landmarks" ~count:200
    QCheck2.Gen.(pair (gen_db ~num_seqs:2 ~alphabet:3 ~max_len:6) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      Rgs_baselines.Iterative.db_support db p
      <= List.length (Brute_force.all_instances db p))

(* episode window support is monotone in the window width *)
let prop_episode_monotone_in_width =
  make ~name:"episode window support monotone in w" ~count:150
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) (int_bound 2) >|= Sequence.of_list)
        (gen_pattern ~alphabet:3 ~max_len:3))
    (fun (s, p) ->
      Format.asprintf "seq: %a pattern: %s" Sequence.pp s (Pattern.to_string p))
    (fun (s, p) ->
      let at w = Rgs_baselines.Episode.window_support s p ~w in
      let n = max 1 (Sequence.length s) in
      (* wider windows contain at least the occurrences of narrower ones
         anchored at the same starts, but there are also fewer windows; the
         guaranteed monotonicity is on "some window contains": at n is 0/1 *)
      at n >= if Rgs_baselines.Seq_mining.contains s p then 1 else 0)

(* --- failure injection --- *)

let test_missing_file () =
  match Seq_io.load_tokens "/nonexistent/rgs/test/file.txt" with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "expected Sys_error"

let test_brute_force_budget () =
  (* A pathological sequence with exponentially many landmarks must hit
     the budget rather than hang. *)
  let s = Sequence.of_string (String.concat "" (List.init 15 (fun _ -> "AB"))) in
  let p = Pattern.of_string "ABABABAB" in
  match Brute_force.landmarks_in ~max_landmarks:1000 s p with
  | exception Brute_force.Too_large -> ()
  | landmarks ->
    Alcotest.failf "expected Too_large, got %d landmarks" (List.length landmarks)

let test_strict_overlap_budget () =
  let db = Seqdb.of_strings [ String.concat "" (List.init 40 (fun _ -> "AB")) ] in
  match Strict_overlap.support ~max_landmarks:100_000 db (Pattern.of_string "AB") with
  | exception Brute_force.Too_large -> ()
  | n -> Alcotest.failf "expected Too_large, got %d" n

let test_empty_database () =
  let db = Seqdb.of_sequences [] in
  let idx = Inverted_index.build db in
  Alcotest.(check int) "support in empty db" 0 (Sup_comp.support idx (Pattern.of_string "A"));
  let results, _ = Gsgrow.mine idx ~min_sup:1 in
  Alcotest.(check int) "no patterns" 0 (List.length results);
  let closed, _ = Clogsgrow.mine idx ~min_sup:1 in
  Alcotest.(check int) "no closed patterns" 0 (List.length closed)

let test_empty_sequences_in_db () =
  let db = Seqdb.of_sequences [ Sequence.of_list []; Sequence.of_string "AB" ] in
  let idx = Inverted_index.build db in
  Alcotest.(check int) "AB" 1 (Sup_comp.support idx (Pattern.of_string "AB"));
  let results, _ = Clogsgrow.mine idx ~min_sup:1 in
  Alcotest.(check bool) "mines fine" true (results <> [])

let test_min_sup_above_everything () =
  let db = Seqdb.of_strings [ "ABCABC" ] in
  let idx = Inverted_index.build db in
  let results, _ = Gsgrow.mine idx ~min_sup:1000 in
  Alcotest.(check int) "nothing frequent" 0 (List.length results)

(* --- resilient runtime: budgets, crash-isolated pool, checkpoint/resume --- *)

let signatures results =
  List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results

let multiset results = List.sort compare (signatures results)

let mid_db =
  lazy
    (Rgs_datagen.Quest_gen.generate
       (Rgs_datagen.Quest_gen.params ~d:60 ~c:15 ~n:40 ~s:4 ~seed:7 ()))

let exn_injected = Failure "injected fault"

(* One root crashing in the pool — every time, so the sequential retry fails
   too — loses only that root's patterns; all other roots survive, all
   domains are joined (the call returns), and the outcome is Worker_failed. *)
let test_worker_crash_loses_one_root () =
  let db = Lazy.force mid_db in
  let idx = Inverted_index.build db in
  let min_sup = 5 in
  let events = Inverted_index.frequent_events idx ~min_sup in
  Alcotest.(check bool) "several roots" true (List.length events >= 3);
  let bad_root = List.nth events 1 in
  let bad_index = 1 in
  let full, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup in
  let survivors =
    List.filter (fun r -> Pattern.get r.Mined.pattern 1 <> bad_root) full
  in
  let results, stats =
    Budget.Fault.with_hook
      (function
        | Budget.Fault.Worker k when k = bad_index -> raise exn_injected
        | _ -> ())
      (fun () -> Parallel_miner.mine_closed ~domains:3 ~max_length:4 idx ~min_sup)
  in
  Alcotest.(check (list (pair string int)))
    "other roots' patterns intact" (signatures survivors) (signatures results);
  Alcotest.(check bool) "worker failed" true (stats.Clogsgrow.outcome = Budget.Worker_failed)

(* A root crashing once recovers through the sequential retry: full results,
   Completed outcome. *)
let test_worker_crash_retry_recovers () =
  let db = Lazy.force mid_db in
  let idx = Inverted_index.build db in
  let min_sup = 5 in
  let full, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup in
  let fired = Atomic.make false in
  let results, stats =
    Budget.Fault.with_hook
      (function
        | Budget.Fault.Worker 0 when not (Atomic.exchange fired true) ->
          raise exn_injected
        | _ -> ())
      (fun () -> Parallel_miner.mine_closed ~domains:3 ~max_length:4 idx ~min_sup)
  in
  Alcotest.(check (list (pair string int)))
    "retry recovers everything" (signatures full) (signatures results);
  Alcotest.(check bool) "completed" true (stats.Clogsgrow.outcome = Budget.Completed)

(* Crashes injected at INSgrow granularity inside the sequential miner
   propagate to the caller (no pool to contain them). *)
let test_insgrow_fault_sequential () =
  let db = Seqdb.of_strings [ "ABCABC"; "ABCABC" ] in
  let idx = Inverted_index.build db in
  match
    Budget.Fault.with_hook
      (function Budget.Fault.Insgrow -> raise exn_injected | _ -> ())
      (fun () -> Gsgrow.mine idx ~min_sup:2)
  with
  | exception Failure msg -> Alcotest.(check string) "fault surfaces" "injected fault" msg
  | _ -> Alcotest.fail "expected the injected fault to escape"

(* An expired deadline stops the search immediately with partial (here:
   empty) results instead of raising. *)
let test_deadline_immediate () =
  let db = Lazy.force mid_db in
  let idx = Inverted_index.build db in
  let budget = Budget.create ~deadline_s:0.0 () in
  let results, stats = Clogsgrow.mine ~budget idx ~min_sup:5 in
  Alcotest.(check bool) "deadline outcome" true
    (stats.Clogsgrow.outcome = Budget.Deadline_exceeded);
  Alcotest.(check int) "no patterns mined" 0 (List.length results);
  (* parallel flavour: pool drains gracefully, same outcome *)
  let presults, pstats = Parallel_miner.mine_closed ~domains:3 ~budget idx ~min_sup:5 in
  Alcotest.(check int) "parallel empty too" 0 (List.length presults);
  Alcotest.(check bool) "parallel deadline outcome" true
    (pstats.Clogsgrow.outcome = Budget.Deadline_exceeded)

(* A DFS-node budget yields a partial result that is a sub-multiset of the
   full closed set, with outcome Truncated. *)
let test_node_budget_partial_subset () =
  let db = Lazy.force mid_db in
  let idx = Inverted_index.build db in
  let min_sup = 5 in
  let full, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup in
  let budget = Budget.create ~max_nodes:40 () in
  let partial, stats = Clogsgrow.mine ~max_length:4 ~budget idx ~min_sup in
  Alcotest.(check bool) "truncated" true (stats.Clogsgrow.outcome = Budget.Truncated);
  Alcotest.(check bool) "strictly partial" true
    (List.length partial < List.length full);
  let full_set = multiset full in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%s in full set" (fst s))
        true (List.mem s full_set))
    (multiset partial)

let test_cancellation () =
  let db = Lazy.force mid_db in
  let idx = Inverted_index.build db in
  let budget = Budget.create () in
  Budget.cancel budget;
  let _, stats = Gsgrow.mine ~budget idx ~min_sup:5 in
  Alcotest.(check bool) "cancelled" true (stats.Gsgrow.outcome = Budget.Cancelled)

let test_memory_limit () =
  let db = Lazy.force mid_db in
  let idx = Inverted_index.build db in
  (* one word: trips on the first check *)
  let budget = Budget.create ~max_words:1 () in
  let _, stats = Clogsgrow.mine ~budget idx ~min_sup:5 in
  Alcotest.(check bool) "memory limit" true
    (stats.Clogsgrow.outcome = Budget.Memory_limit)

(* run_pool directly: exceptions are contained per root, the call returns
   (all domains joined), and untouched roots still complete. *)
let test_run_pool_isolation () =
  let mine_root k = if k mod 2 = 1 then raise exn_injected else k * 10 in
  let slots, halt = Parallel_miner.run_pool ~domains:4 ~num_roots:9 ~mine_root () in
  Alcotest.(check bool) "no budget halt" true (halt = None);
  Array.iteri
    (fun k status ->
      match status with
      | Parallel_miner.Done v when k mod 2 = 0 ->
        Alcotest.(check int) "even root mined" (k * 10) v
      | Parallel_miner.Failed e when k mod 2 = 1 ->
        Alcotest.(check bool) "odd root failed" true (e = exn_injected)
      | _ -> Alcotest.failf "unexpected status for root %d" k)
    slots;
  (* retry with a now-clean mine_root heals every failure *)
  let healed = Parallel_miner.retry_failed ~mine_root:(fun k -> k * 10) slots in
  Array.iteri
    (fun k status ->
      match status with
      | Parallel_miner.Done v -> Alcotest.(check int) "healed" (k * 10) v
      | _ -> Alcotest.failf "root %d not healed" k)
    healed

let with_temp_checkpoint f =
  let path = Filename.temp_file "rgs_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* The acceptance scenario: a node-budget-stopped run checkpoints its
   completed roots; resuming with the limit lifted yields the exact pattern
   multiset (and order) of an uninterrupted run. *)
let test_checkpoint_resume_equals_uninterrupted () =
  with_temp_checkpoint (fun path ->
      let db = Lazy.force mid_db in
      let min_sup = 5 in
      let full = Miner.mine ~config:(Miner.config ~min_sup ~max_length:4 ()) db in
      let stopped =
        Miner.mine_resumable ~checkpoint:path
          (Miner.config ~min_sup ~max_length:4 ~max_nodes:60 ())
          db
      in
      Alcotest.(check bool) "stopped early" true
        (stopped.Miner.outcome = Budget.Truncated);
      Alcotest.(check bool) "partial is smaller" true
        (List.length stopped.Miner.results < List.length full.Miner.results);
      (* partial results are a sub-multiset of the full answer *)
      let full_set = multiset full.Miner.results in
      List.iter
        (fun s -> Alcotest.(check bool) "partial in full" true (List.mem s full_set))
        (multiset stopped.Miner.results);
      (* resume without the node budget: must complete and match exactly *)
      let resumed =
        Miner.mine_resumable ~checkpoint:path ~resume:true
          (Miner.config ~min_sup ~max_length:4 ())
          db
      in
      Alcotest.(check bool) "resume completed" true
        (resumed.Miner.outcome = Budget.Completed);
      Alcotest.(check (list (pair string int)))
        "resumed = uninterrupted (order included)"
        (signatures full.Miner.results) (signatures resumed.Miner.results))

(* Resuming repeatedly under the same small budget also converges to the
   uninterrupted answer: each leg banks at least the roots it finished. *)
let test_checkpoint_resume_iterated () =
  with_temp_checkpoint (fun path ->
      let db = Lazy.force mid_db in
      let min_sup = 6 in
      let full = Miner.mine ~config:(Miner.config ~min_sup ~max_length:3 ()) db in
      let budgeted = Miner.config ~min_sup ~max_length:3 ~max_nodes:200 () in
      let rec converge resume n =
        if n > 50 then Alcotest.fail "did not converge in 50 resumes"
        else
          let report = Miner.mine_resumable ~checkpoint:path ~resume budgeted db in
          if report.Miner.outcome = Budget.Completed then report else converge true (n + 1)
      in
      let final = converge false 0 in
      Alcotest.(check (list (pair string int)))
        "iterated resume converges to the full answer"
        (signatures full.Miner.results) (signatures final.Miner.results))

(* A worker crash under the pool still checkpoints the surviving roots.
   The persistent fault crashes root 0 in the pool AND in the retry, so it
   is quarantined; a plain resume (fault cleared) skips it, and a resume
   with [retry_quarantined] re-mines it and completes. *)
let test_checkpoint_after_worker_crash () =
  with_temp_checkpoint (fun path ->
      let db = Lazy.force mid_db in
      let min_sup = 5 in
      let cfg = Miner.config ~min_sup ~max_length:4 ~domains:3 () in
      let full = Miner.mine ~config:(Miner.config ~min_sup ~max_length:4 ()) db in
      let crashed =
        Budget.Fault.with_hook
          (function Budget.Fault.Worker 0 -> raise exn_injected | _ -> ())
          (fun () -> Miner.mine_resumable ~checkpoint:path cfg db)
      in
      Alcotest.(check bool) "worker failed" true
        (crashed.Miner.outcome = Budget.Worker_failed);
      Alcotest.(check int) "root quarantined" 1 crashed.Miner.quarantined;
      let skipped = Miner.mine_resumable ~checkpoint:path ~resume:true cfg db in
      Alcotest.(check int) "plain resume skips the poison root" 1
        skipped.Miner.quarantined;
      Alcotest.(check bool) "plain resume still Worker_failed" true
        (skipped.Miner.outcome = Budget.Worker_failed);
      let resumed =
        Miner.mine_resumable ~checkpoint:path ~resume:true
          ~retry_quarantined:true cfg db
      in
      Alcotest.(check bool) "retry_quarantined resume completed" true
        (resumed.Miner.outcome = Budget.Completed);
      Alcotest.(check int) "no roots quarantined anymore" 0
        resumed.Miner.quarantined;
      Alcotest.(check (list (pair string int)))
        "resume fills in the crashed root"
        (signatures full.Miner.results) (signatures resumed.Miner.results))

(* Checkpoints refuse to resume against different parameters or data. *)
let test_checkpoint_fingerprint_mismatch () =
  with_temp_checkpoint (fun path ->
      let db = Lazy.force mid_db in
      let _ =
        Miner.mine_resumable ~checkpoint:path
          (Miner.config ~min_sup:5 ~max_length:3 ~max_nodes:60 ())
          db
      in
      match
        Miner.mine_resumable ~checkpoint:path ~resume:true
          (Miner.config ~min_sup:6 ~max_length:3 ())
          db
      with
      | exception Checkpoint.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt on changed min_sup")

let test_checkpoint_corrupt_file () =
  with_temp_checkpoint (fun path ->
      let oc = open_out_bin path in
      output_string oc "not a checkpoint at all";
      close_out oc;
      match Checkpoint.load ~path ~expected_fingerprint:"x" with
      | exception Checkpoint.Corrupt _ -> ()
      | _ -> Alcotest.fail "expected Corrupt on garbage file")

let test_config_validation () =
  Alcotest.check_raises "min_sup 0" (Invalid_argument "Miner: min_sup must be >= 1")
    (fun () -> ignore (Miner.config ~min_sup:0 ()));
  Alcotest.check_raises "negative min_sup"
    (Invalid_argument "Miner: min_sup must be >= 1") (fun () ->
      ignore (Miner.config ~min_sup:(-3) ()));
  Alcotest.check_raises "negative deadline"
    (Invalid_argument "Miner: deadline_s must be >= 0") (fun () ->
      ignore (Miner.config ~min_sup:1 ~deadline_s:(-1.0) ()));
  (* hand-built configs cannot bypass validation either *)
  let bad = { (Miner.config ~min_sup:1 ()) with Miner.min_sup = 0 } in
  Alcotest.check_raises "mine rejects bad record"
    (Invalid_argument "Miner: min_sup must be >= 1") (fun () ->
      ignore (Miner.mine ~config:bad (Seqdb.of_strings [ "AB" ])))

let test_outcome_severity () =
  Alcotest.(check bool) "completed not stop" false (Budget.is_stop Budget.Completed);
  Alcotest.(check bool) "worker_failed dominates" true
    (Budget.combine Budget.Deadline_exceeded Budget.Worker_failed
    = Budget.Worker_failed);
  Alcotest.(check bool) "combine is max" true
    (Budget.combine Budget.Truncated Budget.Completed = Budget.Truncated)

(* --- durable log: checked-in corrupt-checkpoint corpus --- *)

(* The fixtures under test/fixtures/ pin the exact bytes a crash can leave
   behind; test/tools/gen_fixtures.ml regenerates them when the framing
   changes. *)
let fixture name =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "fixtures")
    name

let fixture_fp = String.make 32 'a'

let completed_roots (t : Checkpoint.t) =
  List.map (fun (e : Checkpoint.entry) -> e.Checkpoint.root) t.Checkpoint.completed

let test_fixture_full () =
  let t = Checkpoint.load ~path:(fixture "full.ckpt") ~expected_fingerprint:fixture_fp in
  Alcotest.(check (list int)) "all roots" [ 1; 2; 3 ] (completed_roots t);
  Alcotest.(check int) "clean load" 0 t.Checkpoint.salvaged_bytes;
  Alcotest.(check bool) "completed outcome" true (t.Checkpoint.outcome = Budget.Completed)

let test_fixture_truncated_mid_record () =
  let t =
    Checkpoint.load
      ~path:(fixture "truncated_mid_record.ckpt")
      ~expected_fingerprint:fixture_fp
  in
  Alcotest.(check (list int)) "whole-record prefix" [ 1; 2 ] (completed_roots t);
  Alcotest.(check bool) "torn tail measured" true (t.Checkpoint.salvaged_bytes > 0)

let test_fixture_flipped_crc () =
  let t =
    Checkpoint.load ~path:(fixture "flipped_crc.ckpt") ~expected_fingerprint:fixture_fp
  in
  (* record 2's CRC is corrupted: salvage stops before it even though
     record 3 is intact — a log is only trusted up to the first bad frame *)
  Alcotest.(check (list int)) "stops at first bad frame" [ 1 ] (completed_roots t);
  Alcotest.(check bool) "torn tail measured" true (t.Checkpoint.salvaged_bytes > 0)

let test_fixture_unusable () =
  let expect_corrupt name =
    match Checkpoint.load ~path:(fixture name) ~expected_fingerprint:fixture_fp with
    | exception Checkpoint.Corrupt _ -> ()
    | _ -> Alcotest.failf "%s: expected Corrupt" name
  in
  expect_corrupt "wrong_version.ckpt";
  expect_corrupt "empty.ckpt"

(* --- salvage at arbitrary truncation points --- *)

let header_len = String.length "RGS-CHECKPOINT\n" + String.length ("v2 " ^ fixture_fp ^ "\n")

(* A realistic log image: real mined results marshalled into 7 roots. *)
let salvage_image =
  lazy
    (let db = Lazy.force mid_db in
     let report = Miner.mine ~config:(Miner.config ~min_sup:5 ~max_length:3 ()) db in
     let chunk k = List.filteri (fun i _ -> i mod 7 = k) report.Miner.results in
     let completed = List.init 7 (fun k -> { Checkpoint.root = k; results = chunk k }) in
     let path = Filename.temp_file "rgs_ckpt_img" ".bin" in
     Fun.protect
       ~finally:(fun () -> Sys.remove path)
       (fun () ->
         Checkpoint.write ~path ~fingerprint:fixture_fp ~completed ~quarantined:[] ();
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> (really_input_string ic (in_channel_length ic), completed))))

(* Load the image cut at byte [cut] and check the salvage contract: Corrupt
   iff the header itself is torn, otherwise a whole-record prefix of the
   original log with intact payloads and no invented records. *)
let check_cut image completed cut =
  let path = Filename.temp_file "rgs_ckpt_cut" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc (String.sub image 0 cut);
      close_out oc;
      match Checkpoint.load ~path ~expected_fingerprint:fixture_fp with
      | exception Checkpoint.Corrupt _ -> cut < header_len
      | t ->
        (* a header torn exactly at its final newline still carries the whole
           fingerprint (input_line EOF-terminates), so loading it as an empty
           log is acceptable — hence header_len - 1 *)
        cut >= header_len - 1
        && t.Checkpoint.salvaged_bytes >= 0
        && t.Checkpoint.salvaged_bytes <= max 0 (cut - header_len)
        && (cut < String.length image || t.Checkpoint.salvaged_bytes = 0)
        && List.length t.Checkpoint.completed <= List.length completed
        && List.for_all2
             (fun (got : Checkpoint.entry) (want : Checkpoint.entry) ->
               got.Checkpoint.root = want.Checkpoint.root
               && multiset got.Checkpoint.results = multiset want.Checkpoint.results)
             t.Checkpoint.completed
             (List.filteri
                (fun i _ -> i < List.length t.Checkpoint.completed)
                completed))

let prop_salvage_any_truncation =
  make ~name:"checkpoint salvage at any truncation point" ~count:120
    QCheck2.Gen.(int_bound 10_000)
    string_of_int
    (fun permille ->
      let image, completed = Lazy.force salvage_image in
      let len = String.length image in
      let cut = min len (permille * len / 10_000) in
      check_cut image completed cut)

(* the random property rarely lands inside the 51-byte header or the first
   frame boundary; sweep those cuts exhaustively *)
let test_salvage_header_cuts () =
  let image, completed = Lazy.force salvage_image in
  for cut = 0 to min (String.length image) (header_len + 64) do
    if not (check_cut image completed cut) then
      Alcotest.failf "salvage contract violated at cut %d" cut
  done

(* --- stale temp files from a killed process are swept on the next save --- *)

let test_stale_temp_sweep () =
  with_temp_checkpoint (fun path ->
      let stale =
        Filename.concat (Filename.dirname path) "rgs-ckpt-killed-123.tmp"
      in
      close_out (open_out stale);
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists stale then Sys.remove stale)
        (fun () ->
          Checkpoint.write ~path ~fingerprint:fixture_fp ~completed:[] ~quarantined:[] ();
          Alcotest.(check bool) "stale temp swept" false (Sys.file_exists stale);
          Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path)))

(* --- checkpoint I/O faults degrade durability, never the mining run --- *)

let test_checkpoint_io_transient () =
  with_temp_checkpoint (fun path ->
      let db = Lazy.force mid_db in
      let cfg = Miner.config ~min_sup:5 ~max_length:3 () in
      let full = Miner.mine ~config:cfg db in
      let before = Metrics.snapshot () in
      let fired = ref false in
      let report =
        Budget.Fault.with_hook
          (function
            | Budget.Fault.Checkpoint_io when not !fired ->
              fired := true;
              failwith "injected: transient disk error"
            | _ -> ())
          (fun () -> Miner.mine_resumable ~checkpoint:path cfg db)
      in
      let delta = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      Alcotest.(check bool) "run completed" true (report.Miner.outcome = Budget.Completed);
      Alcotest.(check (list (pair string int))) "results unaffected"
        (multiset full.Miner.results) (multiset report.Miner.results);
      Alcotest.(check bool) "write retried" true
        (Metrics.find delta "checkpoint_io_retries" >= 1);
      Alcotest.(check int) "no write abandoned" 0
        (Metrics.find delta "checkpoint_io_failures");
      (* the log survived the hiccup: a resume replays it cleanly *)
      let resumed = Miner.mine_resumable ~checkpoint:path ~resume:true cfg db in
      Alcotest.(check (list (pair string int))) "log still resumable"
        (multiset full.Miner.results) (multiset resumed.Miner.results))

let test_checkpoint_io_persistent () =
  with_temp_checkpoint (fun path ->
      let db = Lazy.force mid_db in
      let cfg = Miner.config ~min_sup:5 ~max_length:3 () in
      let full = Miner.mine ~config:cfg db in
      let before = Metrics.snapshot () in
      let report =
        Budget.Fault.with_hook
          (function
            | Budget.Fault.Checkpoint_io -> failwith "injected: disk gone"
            | _ -> ())
          (fun () -> Miner.mine_resumable ~checkpoint:path cfg db)
      in
      let delta = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      (* durability is lost, the answer is not *)
      Alcotest.(check bool) "run completed" true (report.Miner.outcome = Budget.Completed);
      Alcotest.(check (list (pair string int))) "results unaffected"
        (multiset full.Miner.results) (multiset report.Miner.results);
      Alcotest.(check bool) "write abandoned" true
        (Metrics.find delta "checkpoint_io_failures" >= 1))

(* --- cooperative shutdown: the flag stops the run, the log records it,
       and a resume finishes the job --- *)

let test_shutdown_flag_interrupts_and_resumes () =
  with_temp_checkpoint (fun path ->
      let db = Lazy.force mid_db in
      (* max_nodes far above the run's size: present only so a budget is
         created (the shutdown flag is polled by Budget.check) *)
      let cfg = Miner.config ~min_sup:5 ~max_length:3 ~max_nodes:10_000_000 () in
      let full = Miner.mine ~config:cfg db in
      Budget.reset_shutdown ();
      let calls = ref 0 in
      let interrupted =
        Fun.protect ~finally:Budget.reset_shutdown (fun () ->
            Budget.Fault.with_hook
              (function
                | Budget.Fault.Insgrow ->
                  incr calls;
                  if !calls = 20 then Budget.request_shutdown ()
                | _ -> ())
              (fun () -> Miner.mine_resumable ~checkpoint:path cfg db))
      in
      Alcotest.(check bool) "interrupted" true
        (interrupted.Miner.outcome = Budget.Interrupted);
      Alcotest.(check bool) "partial results" true
        (List.length interrupted.Miner.results < List.length full.Miner.results);
      let resumed = Miner.mine_resumable ~checkpoint:path ~resume:true cfg db in
      Alcotest.(check bool) "resume completed" true
        (resumed.Miner.outcome = Budget.Completed);
      Alcotest.(check (list (pair string int))) "resume heals the interruption"
        (multiset full.Miner.results) (multiset resumed.Miner.results))

(* --- end-to-end: the real binary under kill -9 and SIGTERM --- *)

let rgsminer_exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "rgsminer.exe"))

let quest_small =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "data" "quest_small.txt"))

let read_all fd =
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec loop () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n > 0 then (
      Buffer.add_subbytes buf chunk 0 n;
      loop ())
  in
  loop ();
  Unix.close fd;
  Buffer.contents buf

(* Run rgsminer as a real child process, optionally slowing each root down
   (the RGS_CHAOS_ROOT_DELAY_MS knob) and signalling it mid-run. Returns
   the wait status and the captured stdout (stderr is discarded). *)
let run_rgsminer ?root_delay_ms ?kill args =
  if not (Sys.file_exists rgsminer_exe) then Alcotest.fail "rgsminer.exe not built";
  let env =
    match root_delay_ms with
    | None -> Unix.environment ()
    | Some ms ->
      Array.append (Unix.environment ())
        [| Printf.sprintf "RGS_CHAOS_ROOT_DELAY_MS=%d" ms |]
  in
  let out_read, out_write = Unix.pipe () in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process_env rgsminer_exe
      (Array.of_list (rgsminer_exe :: args))
      env Unix.stdin out_write dev_null
  in
  Unix.close out_write;
  Unix.close dev_null;
  (match kill with
  | None -> ()
  | Some (after_s, signal) ->
    Unix.sleepf after_s;
    (try Unix.kill pid signal with Unix.Unix_error (Unix.ESRCH, _, _) -> ()));
  let out = read_all out_read in
  let _, status = Unix.waitpid [] pid in
  (status, out)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* pp_report prints the wall-clock time; strip it before comparing two
   runs' stdout byte-for-byte. *)
let normalize_report out =
  String.split_on_char '\n' out
  |> List.map (fun line ->
         if contains line " pattern" && contains line " in " then
           let rec cut i =
             if i + 4 > String.length line then line
             else if String.sub line i 4 = " in " then String.sub line 0 i
             else cut (i + 1)
           in
           cut 0
         else line)
  |> String.concat "\n"

let e2e_args extra = [ "--min-sup"; "3"; "--max-length"; "3"; "--limit"; "100000" ] @ extra @ [ quest_small ]

(* The acceptance scenario for the durable log: a run killed outright
   (kill -9, no handler runs, the in-flight record may be torn) leaves a
   salvageable log, and resuming reproduces the uninterrupted run's stdout
   exactly. *)
let test_e2e_kill9_resume () =
  with_temp_checkpoint (fun ckpt ->
      let status_base, out_base = run_rgsminer (e2e_args []) in
      Alcotest.(check bool) "baseline exit 0" true (status_base = Unix.WEXITED 0);
      let status_killed, _ =
        run_rgsminer ~root_delay_ms:50 ~kill:(0.6, Sys.sigkill)
          (e2e_args [ "--checkpoint"; ckpt ])
      in
      Alcotest.(check bool) "killed outright" true
        (status_killed = Unix.WSIGNALED Sys.sigkill);
      Alcotest.(check bool) "log left behind" true (Sys.file_exists ckpt);
      let status_res, out_res =
        run_rgsminer (e2e_args [ "--checkpoint"; ckpt; "--resume" ])
      in
      Alcotest.(check bool) "resume exit 0" true (status_res = Unix.WEXITED 0);
      Alcotest.(check string) "resumed stdout = uninterrupted stdout"
        (normalize_report out_base) (normalize_report out_res))

(* Same acceptance scenario with sharded growth on: the per-shard merge is
   invisible to the checkpoint (the fingerprint deliberately excludes the
   shard count), so a kill -9 mid-run under --shards resumes to exactly
   the uninterrupted unsharded run's stdout — and a checkpoint written
   sharded resumes fine without --shards. *)
let test_e2e_kill9_resume_sharded () =
  with_temp_checkpoint (fun ckpt ->
      let status_base, out_base = run_rgsminer (e2e_args []) in
      Alcotest.(check bool) "baseline exit 0" true (status_base = Unix.WEXITED 0);
      let status_killed, _ =
        run_rgsminer ~root_delay_ms:50 ~kill:(0.6, Sys.sigkill)
          (e2e_args [ "--checkpoint"; ckpt; "--shards"; "3" ])
      in
      Alcotest.(check bool) "killed outright" true
        (status_killed = Unix.WSIGNALED Sys.sigkill);
      Alcotest.(check bool) "log left behind" true (Sys.file_exists ckpt);
      (* resume WITHOUT --shards: the log must be interchangeable *)
      let status_res, out_res =
        run_rgsminer (e2e_args [ "--checkpoint"; ckpt; "--resume" ])
      in
      Alcotest.(check bool) "resume exit 0" true (status_res = Unix.WEXITED 0);
      Alcotest.(check string) "sharded-then-killed resume = uninterrupted"
        (normalize_report out_base) (normalize_report out_res))

(* SIGTERM is the graceful path: the run stops at the next budget poll,
   appends its final Run_outcome record, reports the interruption on
   stdout, and exits with the documented code 130. *)
let test_e2e_sigterm_graceful () =
  with_temp_checkpoint (fun ckpt ->
      let status_base, out_base = run_rgsminer (e2e_args []) in
      Alcotest.(check bool) "baseline exit 0" true (status_base = Unix.WEXITED 0);
      let status_term, out_term =
        run_rgsminer ~root_delay_ms:50 ~kill:(0.6, Sys.sigterm)
          (e2e_args [ "--checkpoint"; ckpt ])
      in
      Alcotest.(check bool) "documented exit code 130" true
        (status_term = Unix.WEXITED 130);
      Alcotest.(check bool) "reports the interruption" true
        (contains out_term "interrupted");
      let status_res, out_res =
        run_rgsminer (e2e_args [ "--checkpoint"; ckpt; "--resume" ])
      in
      Alcotest.(check bool) "resume exit 0" true (status_res = Unix.WEXITED 0);
      Alcotest.(check string) "resumed stdout = uninterrupted stdout"
        (normalize_report out_base) (normalize_report out_res))

let suite =
  [
    prop_strict_le_support;
    prop_gap_monotone;
    prop_sequential_le_repetitive;
    prop_iterative_le_all_occurrences;
    prop_episode_monotone_in_width;
    Alcotest.test_case "missing input file" `Quick test_missing_file;
    Alcotest.test_case "brute-force budget" `Quick test_brute_force_budget;
    Alcotest.test_case "strict-overlap budget" `Quick test_strict_overlap_budget;
    Alcotest.test_case "empty database" `Quick test_empty_database;
    Alcotest.test_case "empty sequences" `Quick test_empty_sequences_in_db;
    Alcotest.test_case "min_sup above everything" `Quick test_min_sup_above_everything;
    Alcotest.test_case "worker crash loses one root" `Quick test_worker_crash_loses_one_root;
    Alcotest.test_case "worker crash retry recovers" `Quick test_worker_crash_retry_recovers;
    Alcotest.test_case "insgrow fault sequential" `Quick test_insgrow_fault_sequential;
    Alcotest.test_case "deadline immediate" `Quick test_deadline_immediate;
    Alcotest.test_case "node budget partial subset" `Quick test_node_budget_partial_subset;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "memory limit" `Quick test_memory_limit;
    Alcotest.test_case "run_pool isolation" `Quick test_run_pool_isolation;
    Alcotest.test_case "checkpoint resume = uninterrupted" `Quick
      test_checkpoint_resume_equals_uninterrupted;
    Alcotest.test_case "checkpoint resume iterated" `Quick test_checkpoint_resume_iterated;
    Alcotest.test_case "checkpoint after worker crash" `Quick
      test_checkpoint_after_worker_crash;
    Alcotest.test_case "checkpoint fingerprint mismatch" `Quick
      test_checkpoint_fingerprint_mismatch;
    Alcotest.test_case "checkpoint corrupt file" `Quick test_checkpoint_corrupt_file;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "outcome severity" `Quick test_outcome_severity;
    Alcotest.test_case "fixture: full log" `Quick test_fixture_full;
    Alcotest.test_case "fixture: truncated mid-record" `Quick
      test_fixture_truncated_mid_record;
    Alcotest.test_case "fixture: flipped CRC" `Quick test_fixture_flipped_crc;
    Alcotest.test_case "fixture: unusable files" `Quick test_fixture_unusable;
    prop_salvage_any_truncation;
    Alcotest.test_case "salvage: header-area cuts" `Quick test_salvage_header_cuts;
    Alcotest.test_case "stale temp sweep" `Quick test_stale_temp_sweep;
    Alcotest.test_case "checkpoint io fault transient" `Quick
      test_checkpoint_io_transient;
    Alcotest.test_case "checkpoint io fault persistent" `Quick
      test_checkpoint_io_persistent;
    Alcotest.test_case "shutdown flag interrupts and resumes" `Quick
      test_shutdown_flag_interrupts_and_resumes;
    Alcotest.test_case "e2e: kill -9 then resume" `Quick test_e2e_kill9_resume;
    Alcotest.test_case "e2e: kill -9 under --shards then resume" `Quick
      test_e2e_kill9_resume_sharded;
    Alcotest.test_case "e2e: SIGTERM graceful exit" `Quick test_e2e_sigterm_graceful;
  ]
