(* Cross-semantics properties and failure injection: relations between the
   different support definitions, oracle guard rails, and I/O error
   handling. *)

open Rgs_sequence
open Rgs_core

let gen_db = Gens.db
let gen_pattern = Gens.pattern
let print_pair = Gens.print_db_pattern
let make = Gens.make

(* strict (footnote 1) support never exceeds the paper's support: strict
   non-overlap is a stronger requirement. *)
let prop_strict_le_support =
  make ~name:"strict overlap support <= repetitive support" ~count:200
    QCheck2.Gen.(pair (gen_db ~num_seqs:2 ~alphabet:3 ~max_len:6) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      Strict_overlap.support db p <= Sup_comp.support (Inverted_index.build db) p)

(* exact gap-constrained support is monotone in the gap bound and reaches
   the unconstrained support at large gaps *)
let prop_gap_monotone =
  make ~name:"exact gap support monotone in max_gap" ~count:150
    QCheck2.Gen.(pair (gen_db ~num_seqs:2 ~alphabet:3 ~max_len:6) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      let at g = Brute_force.support ~max_gap:g db p in
      let unconstrained = Brute_force.support db p in
      at 0 <= at 1
      && at 1 <= at 2
      && at 2 <= at 5
      && at 20 = unconstrained)

(* sequential support <= repetitive support (each containing sequence
   yields at least one instance) *)
let prop_sequential_le_repetitive =
  make ~name:"sequential support <= repetitive support" ~count:200
    QCheck2.Gen.(pair (gen_db ~num_seqs:4 ~alphabet:3 ~max_len:7) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      Rgs_baselines.Seq_mining.support db p
      <= Sup_comp.support (Inverted_index.build db) p)

(* iterative occurrences are a subset of all occurrences; minimal windows
   are no more numerous than gap-unbounded occurrences *)
let prop_iterative_le_all_occurrences =
  make ~name:"iterative occurrences <= all landmarks" ~count:200
    QCheck2.Gen.(pair (gen_db ~num_seqs:2 ~alphabet:3 ~max_len:6) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      Rgs_baselines.Iterative.db_support db p
      <= List.length (Brute_force.all_instances db p))

(* episode window support is monotone in the window width *)
let prop_episode_monotone_in_width =
  make ~name:"episode window support monotone in w" ~count:150
    QCheck2.Gen.(
      pair (list_size (int_range 1 8) (int_bound 2) >|= Sequence.of_list)
        (gen_pattern ~alphabet:3 ~max_len:3))
    (fun (s, p) ->
      Format.asprintf "seq: %a pattern: %s" Sequence.pp s (Pattern.to_string p))
    (fun (s, p) ->
      let at w = Rgs_baselines.Episode.window_support s p ~w in
      let n = max 1 (Sequence.length s) in
      (* wider windows contain at least the occurrences of narrower ones
         anchored at the same starts, but there are also fewer windows; the
         guaranteed monotonicity is on "some window contains": at n is 0/1 *)
      at n >= if Rgs_baselines.Seq_mining.contains s p then 1 else 0)

(* --- failure injection --- *)

let test_missing_file () =
  match Seq_io.load_tokens "/nonexistent/rgs/test/file.txt" with
  | exception Sys_error _ -> ()
  | _ -> Alcotest.fail "expected Sys_error"

let test_brute_force_budget () =
  (* A pathological sequence with exponentially many landmarks must hit
     the budget rather than hang. *)
  let s = Sequence.of_string (String.concat "" (List.init 15 (fun _ -> "AB"))) in
  let p = Pattern.of_string "ABABABAB" in
  match Brute_force.landmarks_in ~max_landmarks:1000 s p with
  | exception Brute_force.Too_large -> ()
  | landmarks ->
    Alcotest.failf "expected Too_large, got %d landmarks" (List.length landmarks)

let test_strict_overlap_budget () =
  let db = Seqdb.of_strings [ String.concat "" (List.init 40 (fun _ -> "AB")) ] in
  match Strict_overlap.support ~max_landmarks:100_000 db (Pattern.of_string "AB") with
  | exception Brute_force.Too_large -> ()
  | n -> Alcotest.failf "expected Too_large, got %d" n

let test_empty_database () =
  let db = Seqdb.of_sequences [] in
  let idx = Inverted_index.build db in
  Alcotest.(check int) "support in empty db" 0 (Sup_comp.support idx (Pattern.of_string "A"));
  let results, _ = Gsgrow.mine idx ~min_sup:1 in
  Alcotest.(check int) "no patterns" 0 (List.length results);
  let closed, _ = Clogsgrow.mine idx ~min_sup:1 in
  Alcotest.(check int) "no closed patterns" 0 (List.length closed)

let test_empty_sequences_in_db () =
  let db = Seqdb.of_sequences [ Sequence.of_list []; Sequence.of_string "AB" ] in
  let idx = Inverted_index.build db in
  Alcotest.(check int) "AB" 1 (Sup_comp.support idx (Pattern.of_string "AB"));
  let results, _ = Clogsgrow.mine idx ~min_sup:1 in
  Alcotest.(check bool) "mines fine" true (results <> [])

let test_min_sup_above_everything () =
  let db = Seqdb.of_strings [ "ABCABC" ] in
  let idx = Inverted_index.build db in
  let results, _ = Gsgrow.mine idx ~min_sup:1000 in
  Alcotest.(check int) "nothing frequent" 0 (List.length results)

let suite =
  [
    prop_strict_le_support;
    prop_gap_monotone;
    prop_sequential_le_repetitive;
    prop_iterative_le_all_occurrences;
    prop_episode_monotone_in_width;
    Alcotest.test_case "missing input file" `Quick test_missing_file;
    Alcotest.test_case "brute-force budget" `Quick test_brute_force_budget;
    Alcotest.test_case "strict-overlap budget" `Quick test_strict_overlap_budget;
    Alcotest.test_case "empty database" `Quick test_empty_database;
    Alcotest.test_case "empty sequences" `Quick test_empty_sequences_in_db;
    Alcotest.test_case "min_sup above everything" `Quick test_min_sup_above_everything;
  ]
