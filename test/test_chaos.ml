(* Seeded chaos sweep over the Budget.Fault sites (Chaos harness).

   For every generated plan — site kind x trigger firing count x
   transient/persistent — the faulted run must uphold the resilience
   invariant: mined output restricted to non-quarantined roots equals the
   fault-free run, and no injected fault escapes mine_all / mine_closed /
   mine_resumable as an uncaught exception. The sweep is bounded so tier-1
   stays fast; RGS_CHAOS_PLANS raises the plan count for a deeper run
   (e.g. RGS_CHAOS_PLANS=100 dune build @chaos). *)

open Rgs_sequence
open Rgs_core

let chaos_db =
  lazy
    (Rgs_datagen.Quest_gen.generate
       (Rgs_datagen.Quest_gen.params ~d:40 ~c:12 ~n:30 ~s:3 ~seed:11 ()))

let min_sup = 5

let plan_count =
  match Sys.getenv_opt "RGS_CHAOS_PLANS" with
  | Some v -> ( try max 1 (int_of_string v) with Failure _ -> 12)
  | None -> 12

let plan_str plan = Format.asprintf "%a" Chaos.pp_plan plan

let check plan ~baseline ~faulty ~quarantined =
  match Chaos.check_invariant ~baseline ~faulty ~quarantined with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" (plan_str plan) msg

let quarantined_delta before =
  Metrics.find
    (Metrics.diff ~before ~after:(Metrics.snapshot ()))
    "quarantined_roots"

let with_temp_checkpoint f =
  let path = Filename.temp_file "rgs-chaos" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* --- generator determinism --- *)

let test_plans_deterministic () =
  let a = Chaos.plans ~seed:42 ~count:20 () in
  let b = Chaos.plans ~seed:42 ~count:20 () in
  Alcotest.(check bool) "same seed, same plans" true (a = b);
  let c = Chaos.plans ~seed:43 ~count:20 () in
  Alcotest.(check bool) "different seed, different plans" true (a <> c);
  List.iter
    (fun (p : Chaos.plan) ->
      Alcotest.(check bool) "trigger in [1,8]" true
        (p.trigger >= 1 && p.trigger <= 8))
    a;
  (* cycling guarantees kind coverage even in a small sweep *)
  let kinds = List.sort_uniq compare (List.map (fun p -> p.Chaos.kind) a) in
  Alcotest.(check int) "all three kinds attacked" 3 (List.length kinds)

let test_inject_counts_firings () =
  let fire () = Budget.Fault.fire Budget.Fault.Insgrow in
  let plan = { Chaos.id = 0; kind = Chaos.Insgrow; trigger = 3; persistent = false } in
  Chaos.inject plan (fun () ->
      fire ();
      fire ();
      (match fire () with
      | exception Chaos.Injected p -> Alcotest.(check int) "plan id" 0 p.Chaos.id
      | () -> Alcotest.fail "third firing should inject");
      (* transient: the fourth firing passes *)
      fire ());
  let persistent = { plan with Chaos.persistent = true } in
  Chaos.inject persistent (fun () ->
      fire ();
      fire ();
      (match fire () with
      | exception Chaos.Injected _ -> ()
      | () -> Alcotest.fail "third firing should inject");
      match fire () with
      | exception Chaos.Injected _ -> ()
      | () -> Alcotest.fail "persistent fault must keep firing")

(* --- invariant checker is itself testable --- *)

let mined root support =
  {
    Mined.pattern = Pattern.of_list [ root ];
    support;
    support_set = Support_set.empty;
  }

let test_invariant_checker () =
  let baseline = [ mined 1 5; mined 2 4 ] in
  Alcotest.(check bool) "identical ok" true
    (Chaos.check_invariant ~baseline ~faulty:baseline ~quarantined:0 = Ok ());
  Alcotest.(check bool) "missing root needs quarantine count" true
    (Result.is_error
       (Chaos.check_invariant ~baseline ~faulty:[ mined 1 5 ] ~quarantined:0));
  Alcotest.(check bool) "missing root matches quarantine count" true
    (Chaos.check_invariant ~baseline ~faulty:[ mined 1 5 ] ~quarantined:1 = Ok ());
  Alcotest.(check bool) "changed support detected" true
    (Result.is_error
       (Chaos.check_invariant ~baseline
          ~faulty:[ mined 1 6; mined 2 4 ]
          ~quarantined:0));
  Alcotest.(check bool) "invented root detected" true
    (Result.is_error
       (Chaos.check_invariant ~baseline
          ~faulty:[ mined 1 5; mined 2 4; mined 3 2 ]
          ~quarantined:0))

(* --- the sweeps --- *)

let test_sweep_mine_all () =
  let db = Lazy.force chaos_db in
  let idx = Inverted_index.build db in
  let baseline, _ = Parallel_miner.mine_all ~domains:2 ~max_length:3 idx ~min_sup in
  Alcotest.(check bool) "baseline mined something" true (baseline <> []);
  List.iter
    (fun plan ->
      let before = Metrics.snapshot () in
      match
        Chaos.inject plan (fun () ->
            Parallel_miner.mine_all ~domains:2 ~max_length:3 idx ~min_sup)
      with
      | faulty, _ ->
        check plan ~baseline ~faulty ~quarantined:(quarantined_delta before)
      | exception e ->
        Alcotest.failf "%s: escaped exception %s" (plan_str plan)
          (Printexc.to_string e))
    (Chaos.plans
       ~kinds:[ Chaos.Insgrow; Chaos.Worker ]
       ~seed:101 ~count:plan_count ())

let test_sweep_mine_closed () =
  let db = Lazy.force chaos_db in
  let idx = Inverted_index.build db in
  let baseline, _ =
    Parallel_miner.mine_closed ~domains:2 ~max_length:3 idx ~min_sup
  in
  Alcotest.(check bool) "baseline mined something" true (baseline <> []);
  List.iter
    (fun plan ->
      let before = Metrics.snapshot () in
      match
        Chaos.inject plan (fun () ->
            Parallel_miner.mine_closed ~domains:2 ~max_length:3 idx ~min_sup)
      with
      | faulty, _ ->
        check plan ~baseline ~faulty ~quarantined:(quarantined_delta before)
      | exception e ->
        Alcotest.failf "%s: escaped exception %s" (plan_str plan)
          (Printexc.to_string e))
    (Chaos.plans
       ~kinds:[ Chaos.Insgrow; Chaos.Worker ]
       ~seed:202 ~count:plan_count ())

(* mine_resumable additionally exposes the Checkpoint_io site; a
   checkpoint-write fault may never change mined output, only degrade
   durability (report.quarantined stays 0 for those plans). *)
let test_sweep_mine_resumable () =
  let db = Lazy.force chaos_db in
  let cfg = Miner.config ~min_sup ~max_length:3 ~domains:2 () in
  let baseline = Miner.mine_resumable cfg db in
  Alcotest.(check bool) "baseline completed" true
    (baseline.Miner.outcome = Budget.Completed);
  List.iter
    (fun plan ->
      with_temp_checkpoint (fun path ->
          match
            Chaos.inject plan (fun () ->
                Miner.mine_resumable ~checkpoint:path cfg db)
          with
          | report ->
            check plan ~baseline:baseline.Miner.results
              ~faulty:report.Miner.results
              ~quarantined:report.Miner.quarantined;
            if plan.Chaos.kind = Chaos.Checkpoint_io then
              Alcotest.(check int)
                (plan_str plan ^ ": checkpoint faults quarantine nothing")
                0 report.Miner.quarantined
          | exception e ->
            Alcotest.failf "%s: escaped exception %s" (plan_str plan)
              (Printexc.to_string e)))
    (Chaos.plans ~seed:303 ~count:plan_count ())

(* The work-stealing executor exposes two further sites: a worker crash
   right after a successful steal (Steal) and a cancellation between a
   sharded growth's per-shard INSgrow passes and the combine
   (Shard_merge). Same invariant: output modulo quarantined roots equals
   the fault-free run — the sequential retry neither steals nor runs the
   faulted merge pass at the same firing, so transient faults are fully
   absorbed. The skewed database makes real steals likely, so Steal plans
   actually fire rather than passing vacuously. *)
let steal_db =
  lazy
    (QCheck2.Gen.generate1
       ~rand:(Random.State.make [| 0xC0A5 |])
       (Gens.skewed_db ~num_seqs:16 ~alphabet:4 ~len:16))

let test_sweep_mine_steal () =
  let db = Lazy.force steal_db in
  let idx = Inverted_index.build db in
  (* GSgrow, not CloGSgrow: the invariant counts absent roots against the
     quarantine tally, which needs every root to emit at least its own
     size-1 pattern in the fault-free run *)
  let baseline, _, q0 =
    Parallel_miner.mine_steal ~domains:3 ~max_length:4 ~shards:2
      ~strategy:Gsgrow.strategy idx ~min_sup:4
  in
  Alcotest.(check int) "fault-free baseline" 0 q0;
  Alcotest.(check bool) "baseline mined something" true (baseline <> []);
  List.iter
    (fun plan ->
      match
        Chaos.inject plan (fun () ->
            Parallel_miner.mine_steal ~domains:3 ~max_length:4 ~shards:2
              ~strategy:Gsgrow.strategy idx ~min_sup:4)
      with
      | faulty, _, quarantined -> check plan ~baseline ~faulty ~quarantined
      | exception e ->
        Alcotest.failf "%s: escaped exception %s" (plan_str plan)
          (Printexc.to_string e))
    (Chaos.plans
       ~kinds:[ Chaos.Insgrow; Chaos.Worker; Chaos.Steal; Chaos.Shard_merge ]
       ~seed:404 ~count:plan_count ())

(* Mid-merge cancellation under the checkpointed path: Shard_merge faults
   inside mine_resumable with sharding on must uphold the same invariant,
   and the checkpoint must stay loadable afterwards (exercised by the
   robustness tier; here the report contract suffices). *)
let test_sweep_resumable_sharded () =
  let db = Lazy.force chaos_db in
  let cfg = Miner.config ~min_sup ~max_length:3 ~domains:2 ~shards:3 () in
  let baseline = Miner.mine_resumable cfg db in
  Alcotest.(check bool) "sharded baseline completed" true
    (baseline.Miner.outcome = Budget.Completed);
  List.iter
    (fun plan ->
      with_temp_checkpoint (fun path ->
          match
            Chaos.inject plan (fun () ->
                Miner.mine_resumable ~checkpoint:path cfg db)
          with
          | report ->
            check plan ~baseline:baseline.Miner.results
              ~faulty:report.Miner.results
              ~quarantined:report.Miner.quarantined
          | exception e ->
            Alcotest.failf "%s: escaped exception %s" (plan_str plan)
              (Printexc.to_string e)))
    (Chaos.plans
       ~kinds:[ Chaos.Shard_merge; Chaos.Worker ]
       ~seed:505 ~count:plan_count ())

let suite =
  [
    Alcotest.test_case "plans deterministic" `Quick test_plans_deterministic;
    Alcotest.test_case "inject counts firings" `Quick test_inject_counts_firings;
    Alcotest.test_case "invariant checker" `Quick test_invariant_checker;
    Alcotest.test_case "sweep mine_all" `Quick test_sweep_mine_all;
    Alcotest.test_case "sweep mine_closed" `Quick test_sweep_mine_closed;
    Alcotest.test_case "sweep mine_resumable" `Quick test_sweep_mine_resumable;
    Alcotest.test_case "sweep mine_steal" `Quick test_sweep_mine_steal;
    Alcotest.test_case "sweep resumable sharded" `Quick
      test_sweep_resumable_sharded;
  ]
