(* The rgsminerd serving loop, attacked from every angle the ISSUE names:
   admission control under overload, round-robin fairness, client
   disconnects, the idle watchdog, graceful drain with restart-resume,
   the job-level chaos plans, and — as child-process e2e runs of the real
   binary — kill -9 with jobs in flight, SIGTERM drain, and kill -9
   landing mid-drain. The invariant throughout: whatever the fault, a
   resubmitted job id finishes with output equal to an uninterrupted
   batch run (modulo quarantined roots, per Chaos.check_invariant).

   Slow jobs are manufactured with the Budget.Fault.Worker site (fired
   once per root claim) in-process, and with the RGS_CHAOS_ROOT_DELAY_MS
   knob for child processes, so every scenario has a deterministic window
   to strike in. No test sleeps unboundedly: client sockets carry receive
   timeouts and the dune alias wraps the suite in a watchdog timeout. *)

open Rgs_sequence
open Rgs_core
open Rgs_server

(* --- the shared job: a generated db shipped inline, mined closed --- *)

let test_db =
  lazy
    (Rgs_datagen.Quest_gen.generate
       (Rgs_datagen.Quest_gen.params ~d:25 ~c:10 ~n:25 ~s:3 ~seed:7 ()))

let db_text = lazy (Seq_io.print_spmf (Lazy.force test_db))

let spec ?(min_sup = 4) ?(max_length = Some 3) ?(max_gap = None)
    ?(query = Protocol.Q_all) ?(compress_delta = None) id =
  {
    Protocol.job_id = id;
    db = Protocol.Inline { format = Protocol.Spmf; text = Lazy.force db_text };
    min_sup;
    mode = Protocol.Closed;
    max_length;
    max_gap;
    deadline_s = None;
    max_nodes = None;
    max_words = None;
    query;
    compress_delta;
  }

(* the uninterrupted batch run every daemon answer is compared against;
   loaded through Job.load_db so the parse path is byte-identical *)
let baseline =
  lazy
    (let sp = spec "baseline" in
     match Job.load_db sp with
     | Error e -> failwith e
     | Ok db ->
       let report = Miner.mine ~config:(Job.config_of sp) db in
       List.map
         (fun m -> (Pattern.to_list m.Mined.pattern, m.Mined.support))
         report.Miner.results)

let sorted l = List.sort compare l

let check_results name got =
  Alcotest.(check (list (pair (list int) int)))
    name
    (sorted (Lazy.force baseline))
    (sorted got)

let mined_of (events, support) =
  { Mined.pattern = Pattern.of_list events; support; support_set = Support_set.empty }

(* the chaos invariant, over the wire signatures *)
let chaos_check plan ~faulty ~quarantined =
  match
    Chaos.check_invariant
      ~baseline:(List.map mined_of (Lazy.force baseline))
      ~faulty:(List.map mined_of faulty) ~quarantined
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%a: %s" Chaos.pp_job_plan plan msg

(* --- harness: an in-process daemon on a temp socket + state dir --- *)

let fresh_dir () =
  let path = Filename.temp_file "rgs-daemon" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rm_rf dir =
  (match Sys.readdir dir with
  | files ->
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      files
  | exception Sys_error _ -> ());
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

type handle = {
  sock : string;
  dir : string;
  t : Daemon.t;
  dom : int Domain.t;
  mutable code : int option;
}

(* drain and join (memoised); returns the serve exit code *)
let stop h =
  match h.code with
  | Some c -> c
  | None ->
    Daemon.request_drain h.t;
    let c = Domain.join h.dom in
    h.code <- Some c;
    c

let with_daemon ?(queue_capacity = 16) ?(workers = 2) ?idle_timeout_s
    ?(drain_grace_s = 0.3) ?dir f =
  let dir, own_dir =
    match dir with Some d -> (d, false) | None -> (fresh_dir (), true)
  in
  let sock = Filename.concat dir "rgsminerd.sock" in
  let cfg =
    Daemon.config ~queue_capacity ~workers ?idle_timeout_s ~drain_grace_s
      ~tick_s:0.02 ~socket_path:sock ~state_dir:dir ()
  in
  let t = Daemon.create cfg in
  let dom = Domain.spawn (fun () -> Daemon.serve t) in
  let h = { sock; dir; t; dom; code = None } in
  Fun.protect
    ~finally:(fun () ->
      ignore (stop h);
      if own_dir then rm_rf dir)
    (fun () -> f h)

let poll ?(timeout_s = 20.0) msg pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "poll timeout: %s" msg
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let stat c name =
  match List.assoc_opt name (Client.stats c) with Some v -> v | None -> 0

(* ~0.5-0.8 s per job at 25-40 ms per root: wide enough to strike
   mid-job, narrow enough to keep the suite fast *)
let with_slow_roots delay_s f =
  Budget.Fault.with_hook
    (function Budget.Fault.Worker _ -> Unix.sleepf delay_s | _ -> ())
    f

let submit_ok c sp =
  match Client.submit c sp with
  | Protocol.Accepted _ -> ()
  | r ->
    Alcotest.failf "expected Accepted for %s, got %s" sp.Protocol.job_id
      (match r with
      | Protocol.Overloaded _ -> "Overloaded"
      | Protocol.Duplicate _ -> "Duplicate"
      | Protocol.Rejected { reason; _ } -> "Rejected: " ^ reason
      | _ -> "unexpected frame")

let with_client h f =
  let c = Client.connect h.sock in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

(* --- basics: handshake, ping, stats, typed rejections --- *)

let test_ping_stats () =
  with_daemon (fun h ->
      with_client h (fun c ->
          Alcotest.(check bool) "pong" true (Client.ping c);
          let stats = Client.stats c in
          Alcotest.(check bool) "clients gauge counts us" true
            (List.assoc "daemon_clients_connected" stats >= 1);
          Alcotest.(check int) "nothing running" 0
            (List.assoc "daemon_jobs_running" stats)))

let expect_rejected c sp frag =
  match Client.submit c sp with
  | Protocol.Rejected { reason; _ } ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      m = 0 || go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "reason %S mentions %S" reason frag)
      true (contains reason frag)
  | _ -> Alcotest.failf "spec %s should be rejected" sp.Protocol.job_id

let test_typed_rejections () =
  with_daemon (fun h ->
      with_client h (fun c ->
          expect_rejected c (spec "../evil") "job id";
          expect_rejected c (spec ~min_sup:0 "bad-minsup") "min_sup";
          expect_rejected c (spec ~max_gap:(Some 1) "gappy") "max_gap";
          (* an undecodable inline db is admitted, then rejected by the
             worker — crash isolation, not a daemon crash *)
          let bad =
            {
              (spec "bad-db") with
              Protocol.db =
                Protocol.Inline { format = Protocol.Spmf; text = "not a db\n" };
            }
          in
          submit_ok c bad;
          let rec wait_rejection () =
            match Client.next_response c with
            | Some (Protocol.Rejected { job_id = "bad-db"; reason }) -> reason
            | Some _ -> wait_rejection ()
            | None -> Alcotest.fail "daemon hung up instead of rejecting"
          in
          let reason = wait_rejection () in
          Alcotest.(check bool) "parse error surfaced" true
            (String.length reason > 0);
          (* the daemon survived the poisonous job *)
          Alcotest.(check bool) "still serving" true (Client.ping c)))

(* --- protocol v2: version negotiation, v1 compatibility, queries --- *)

(* A v1 client must keep working against a v2 daemon: its payloads travel
   in the old record layout, decode through the preserved V1 shapes, and
   its jobs run with the default mine-all query. *)
let test_v1_client_compat () =
  with_daemon (fun h ->
      let c = Client.connect ~version:1 h.sock in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Alcotest.(check bool) "v1 ping" true (Client.ping c);
          submit_ok c (spec "v1-compat");
          let got, summary = Client.collect_job c ~job_id:"v1-compat" in
          Alcotest.(check string) "completed" "completed" summary.Protocol.outcome;
          check_results "v1 submit = batch mine-all-query" got;
          (* a query cannot be smuggled through a v1 connection: the
             encoder refuses before any bytes hit the wire *)
          (match
             Client.submit c (spec ~query:(Protocol.Q_top_k 3) "v1-query")
           with
          | exception Protocol.Protocol_error _ -> ()
          | _ -> Alcotest.fail "v1 encode of a queried spec must fail");
          (* ... and the failed encode did not poison the connection *)
          Alcotest.(check bool) "still serving v1" true (Client.ping c)))

(* an unsupported hello version is refused at the handshake — the client
   observes EOF, not a decoder crash *)
let test_unsupported_version_refused () =
  with_daemon (fun h ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX h.sock);
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
          let bad = Protocol.hello_of_version (Protocol.version + 7) in
          ignore (Unix.write_substring fd bad 0 (String.length bad));
          (* the daemon sheds us: EOF (possibly after an error frame) *)
          let rec drained () =
            match Protocol.read_frame fd with
            | None -> true
            | Some _ -> drained ()
            | exception Protocol.Protocol_error _ -> true
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              -> true
          in
          Alcotest.(check bool) "connection closed" true (drained ())))

(* malformed queries are typed rejections on a live connection *)
let test_malformed_query_rejected () =
  with_daemon (fun h ->
      with_client h (fun c ->
          expect_rejected c (spec ~query:(Protocol.Q_target []) "q-empty")
            "target";
          expect_rejected c
            (spec ~query:(Protocol.Q_target [ 1; -2 ]) "q-neg")
            "target";
          expect_rejected c (spec ~query:(Protocol.Q_top_k 0) "q-k0") "top_k";
          expect_rejected c
            (spec ~compress_delta:(Some 1.5) "q-delta")
            "compress_delta";
          Alcotest.(check bool) "still serving" true (Client.ping c)))

(* v2 queried jobs end-to-end, and the checkpoint refusing a mismatched
   query on resubmission of the same job id *)
let test_v2_queries_end_to_end () =
  with_daemon (fun h ->
      with_client h (fun c ->
          (* top-k: the k best supports of the batch answer *)
          submit_ok c (spec ~query:(Protocol.Q_top_k 3) "q-top3");
          let got, _ = Client.collect_job c ~job_id:"q-top3" in
          let supports l = List.sort compare (List.map snd l) in
          let expect =
            List.filteri (fun i _ -> i < 3)
              (List.sort (fun (_, s1) (_, s2) -> compare s2 s1)
                 (Lazy.force baseline))
          in
          Alcotest.(check int) "three answers" 3 (List.length got);
          Alcotest.(check (list int))
            "top-3 supports" (supports expect) (supports got);
          (* targeted: exactly the containing subset of the batch answer *)
          let target = [ fst (List.hd (Lazy.force baseline)) ] |> List.concat in
          submit_ok c (spec ~query:(Protocol.Q_target target) "q-target");
          let got, _ = Client.collect_job c ~job_id:"q-target" in
          let expect =
            List.filter
              (fun (p, _) ->
                Pattern.is_subpattern (Pattern.of_list target)
                  ~of_:(Pattern.of_list p))
              (Lazy.force baseline)
          in
          Alcotest.(check (list (pair (list int) int)))
            "targeted = filtered batch" (sorted expect) (sorted got);
          (* resubmitting a finished id under a different query must hit
             the checkpoint fingerprint, not silently remine *)
          submit_ok c (spec ~query:(Protocol.Q_top_k 2) "q-top3");
          let rec wait_reject () =
            match Client.next_response c with
            | Some (Protocol.Rejected { job_id = "q-top3"; reason }) -> reason
            | Some _ -> wait_reject ()
            | None -> Alcotest.fail "daemon hung up instead of rejecting"
          in
          let reason = wait_reject () in
          Alcotest.(check bool)
            (Printf.sprintf "reason %S names the checkpoint" reason)
            true
            (String.length reason >= 10 && String.sub reason 0 10 = "checkpoint");
          (* δ-compression: a subset of the batch answer travels back *)
          submit_ok c (spec ~compress_delta:(Some 1.0) "q-delta1");
          let got, _ = Client.collect_job c ~job_id:"q-delta1" in
          Alcotest.(check bool) "compressed answer is smaller" true
            (List.length got <= List.length (Lazy.force baseline));
          Alcotest.(check bool) "representatives come from the answer" true
            (List.for_all
               (fun row -> List.mem row (Lazy.force baseline))
               got)))

(* --- the core contract: daemon output == batch output --- *)

let test_submit_matches_batch () =
  with_daemon (fun h ->
      with_client h (fun c ->
          (match Client.submit c (spec "batch-eq") with
          | Protocol.Accepted { position = 1; _ } -> ()
          | _ -> Alcotest.fail "first job should be accepted at depth 1");
          let pats, summary = Client.collect_job c ~job_id:"batch-eq" in
          check_results "daemon == batch" pats;
          Alcotest.(check string) "outcome" "completed" summary.Protocol.outcome;
          Alcotest.(check (option string)) "natural finish" None
            summary.Protocol.stopped_by;
          Alcotest.(check int) "no quarantine" 0 summary.Protocol.quarantined;
          Alcotest.(check int) "total matches stream" (List.length pats)
            summary.Protocol.total;
          (* resubmitting a finished id resumes its checkpoint: the full
             answer is replayed, not re-mined from scratch *)
          submit_ok c (spec "batch-eq");
          let pats2, summary2 = Client.collect_job c ~job_id:"batch-eq" in
          check_results "resubmission replays the full answer" pats2;
          Alcotest.(check string) "replay completes" "completed"
            summary2.Protocol.outcome))

(* --- admission control: bounded queue, typed shedding --- *)

let test_overload_sheds () =
  with_daemon ~workers:1 ~queue_capacity:2 (fun h ->
      with_client h (fun c ->
          with_slow_roots 0.03 (fun () ->
              submit_ok c (spec "ov-0");
              poll "first job running" (fun () ->
                  stat c "daemon_jobs_running" = 1);
              (match Client.submit c (spec "ov-1") with
              | Protocol.Accepted { position = 1; _ } -> ()
              | _ -> Alcotest.fail "queue slot 1");
              (match Client.submit c (spec "ov-2") with
              | Protocol.Accepted { position = 2; _ } -> ()
              | _ -> Alcotest.fail "queue slot 2");
              let t0 = Unix.gettimeofday () in
              (match Client.submit c (spec "ov-3") with
              | Protocol.Overloaded { pending = 2; capacity = 2; _ } -> ()
              | Protocol.Overloaded _ ->
                Alcotest.fail "overload must report pending=2 capacity=2"
              | _ -> Alcotest.fail "job K+1 must be load-shed");
              Alcotest.(check bool) "shed in bounded time" true
                (Unix.gettimeofday () -. t0 < 5.0));
          (* the shed request disturbed nothing in flight *)
          List.iter
            (fun id ->
              let pats, summary = Client.collect_job c ~job_id:id in
              check_results (id ^ " undisturbed") pats;
              Alcotest.(check string) (id ^ " completes") "completed"
                summary.Protocol.outcome)
            [ "ov-0"; "ov-1"; "ov-2" ]))

(* --- fairness: round-robin across clients, not global FIFO --- *)

let test_fair_dispatch () =
  with_daemon ~workers:1 ~queue_capacity:8 (fun h ->
      with_client h (fun a ->
          with_client h (fun b ->
              with_slow_roots 0.025 (fun () ->
                  submit_ok a (spec "fair-a1");
                  poll "a1 running" (fun () -> stat b "daemon_jobs_running" = 1);
                  submit_ok a (spec "fair-a2");
                  submit_ok a (spec "fair-a3");
                  submit_ok b (spec "fair-b1");
                  submit_ok b (spec "fair-b2"));
              let seq_of c id =
                let pats, summary = Client.collect_job c ~job_id:id in
                check_results (id ^ " == batch") pats;
                summary.Protocol.seq
              in
              let _ = seq_of a "fair-a1" in
              let _ = seq_of a "fair-a2" in
              let seq_a3 = seq_of a "fair-a3" in
              let seq_b1 = seq_of b "fair-b1" in
              let _ = seq_of b "fair-b2" in
              (* under global FIFO b1 would finish after a3 *)
              Alcotest.(check bool) "b1 dispatched before a3" true
                (seq_b1 < seq_a3))))

(* --- duplicate live id: rejected, original undisturbed --- *)

let test_duplicate_live_id () =
  with_daemon ~workers:1 (fun h ->
      with_client h (fun c ->
          with_slow_roots 0.03 (fun () ->
              submit_ok c (spec "dup");
              poll "dup running" (fun () -> stat c "daemon_jobs_running" = 1);
              match Client.submit c (spec "dup") with
              | Protocol.Duplicate _ -> ()
              | _ -> Alcotest.fail "live id must be a Duplicate");
          let pats, summary = Client.collect_job c ~job_id:"dup" in
          check_results "original undisturbed" pats;
          Alcotest.(check string) "original completes" "completed"
            summary.Protocol.outcome))

(* --- disconnect detection: cancel, release the slot, resume later --- *)

let test_disconnect_cancels_and_resumes () =
  with_daemon ~workers:1 (fun h ->
      with_client h (fun b ->
          let disconnected_before = stat b "daemon_jobs_disconnected" in
          with_slow_roots 0.04 (fun () ->
              let a = Client.connect h.sock in
              submit_ok a (spec "disco");
              poll "disco running" (fun () -> stat b "daemon_jobs_running" = 1);
              (* the client vanishes mid-job *)
              Client.close a);
          poll "cancelled job released its pool slot" (fun () ->
              stat b "daemon_jobs_running" = 0);
          Alcotest.(check bool) "disconnect counted" true
            (stat b "daemon_jobs_disconnected" > disconnected_before);
          (* the daemon still takes work, and the orphaned checkpoint
             turns the resubmission into a resume *)
          submit_ok b (spec "disco");
          let pats, summary = Client.collect_job b ~job_id:"disco" in
          check_results "resume after disconnect == batch" pats;
          Alcotest.(check string) "resume completes" "completed"
            summary.Protocol.outcome))

(* --- idle watchdog: a stalled job is cancelled, the id stays usable --- *)

let test_watchdog_cancels_stalled () =
  with_daemon ~workers:1 ~idle_timeout_s:0.25 (fun h ->
      with_client h (fun c ->
          let calls = Atomic.make 0 in
          let summary =
            Budget.Fault.with_hook
              (function
                | Budget.Fault.Worker _ ->
                  (* wedge the third root: no node progress for far longer
                     than the idle timeout *)
                  if Atomic.fetch_and_add calls 1 = 2 then Unix.sleepf 1.5
                | _ -> ())
              (fun () ->
                submit_ok c (spec "stall");
                snd (Client.collect_job c ~job_id:"stall"))
          in
          Alcotest.(check (option string)) "stopped by the watchdog"
            (Some "watchdog") summary.Protocol.stopped_by;
          Alcotest.(check string) "cancelled outcome" "cancelled"
            summary.Protocol.outcome;
          (* recovery: the unwedged resubmission finishes the job *)
          submit_ok c (spec "stall");
          let pats, summary2 = Client.collect_job c ~job_id:"stall" in
          check_results "resume after watchdog == batch" pats;
          Alcotest.(check string) "resume completes" "completed"
            summary2.Protocol.outcome))

(* --- graceful drain: typed cancellations, exit 130, restart-resume --- *)

let test_drain_and_restart_resume () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      with_daemon ~workers:1 ~drain_grace_s:0.2 ~dir (fun h ->
          with_client h (fun c ->
              with_slow_roots 0.06 (fun () ->
                  submit_ok c (spec "dr-run");
                  poll "dr-run running" (fun () ->
                      stat c "daemon_jobs_running" = 1);
                  submit_ok c (spec "dr-q");
                  Daemon.request_drain h.t;
                  (* the queued job is dropped immediately with a typed
                     terminal frame *)
                  let _, sq = Client.collect_job c ~job_id:"dr-q" in
                  Alcotest.(check (option string)) "queued job drained"
                    (Some "drain") sq.Protocol.stopped_by;
                  Alcotest.(check string) "queued job cancelled" "cancelled"
                    sq.Protocol.outcome;
                  Alcotest.(check int) "nothing streamed for it" 0
                    sq.Protocol.total;
                  (* the running job is cancelled when the grace expires *)
                  let _, sr = Client.collect_job c ~job_id:"dr-run" in
                  Alcotest.(check (option string)) "running job drained"
                    (Some "drain") sr.Protocol.stopped_by));
          Alcotest.(check int) "interrupted drain exits 130" 130 (stop h));
      (* restart on the same state dir: both ids resume to completion *)
      with_daemon ~dir (fun h2 ->
          with_client h2 (fun c ->
              List.iter
                (fun id ->
                  submit_ok c (spec id);
                  let pats, summary = Client.collect_job c ~job_id:id in
                  check_results (id ^ " resumes == batch") pats;
                  Alcotest.(check string) (id ^ " completes") "completed"
                    summary.Protocol.outcome)
                [ "dr-run"; "dr-q" ]);
          Alcotest.(check int) "clean drain exits 0" 0 (stop h2)))

(* --- job-level chaos plans --- *)

let test_job_plans_deterministic () =
  let a = Chaos.job_plans ~seed:5 ~count:8 () in
  let b = Chaos.job_plans ~seed:5 ~count:8 () in
  Alcotest.(check bool) "same seed, same plans" true (a = b);
  Alcotest.(check bool) "different seed, different plans" true
    (a <> Chaos.job_plans ~seed:6 ~count:8 ());
  List.iter
    (fun (p : Chaos.job_plan) ->
      Alcotest.(check bool) "delay in [1,8]" true (p.delay >= 1 && p.delay <= 8))
    a;
  let sites = List.sort_uniq compare (List.map (fun p -> p.Chaos.site) a) in
  Alcotest.(check int) "all four sites attacked" 4 (List.length sites);
  (* only the socket site maps to a Budget.Fault plan *)
  List.iter
    (fun (p : Chaos.job_plan) ->
      match (p.site, Chaos.fault_plan_of_job p) with
      | Chaos.Socket_write_fail, Some fp ->
        Alcotest.(check bool) "socket fault plan" true
          (fp.Chaos.kind = Chaos.Socket_write && fp.Chaos.trigger = p.delay
         && not fp.Chaos.persistent)
      | Chaos.Socket_write_fail, None ->
        Alcotest.fail "socket site needs a fault plan"
      | _, None -> ()
      | _, Some _ -> Alcotest.fail "harness-enacted sites map to no plan")
    a

let run_job_plan (plan : Chaos.job_plan) =
  let id =
    Printf.sprintf "cj%d-%s" plan.Chaos.jid (Chaos.job_site_name plan.Chaos.site)
  in
  with_daemon ~workers:1 (fun h ->
      match plan.Chaos.site with
      | Chaos.Client_disconnect ->
        with_client h (fun b ->
            with_slow_roots 0.03 (fun () ->
                let a = Client.connect h.sock in
                submit_ok a (spec id);
                poll "victim running" (fun () -> stat b "daemon_jobs_running" = 1);
                Unix.sleepf (float_of_int plan.Chaos.delay *. 0.01);
                Client.close a);
            poll "slot released" (fun () -> stat b "daemon_jobs_running" = 0);
            submit_ok b (spec id);
            let pats, summary = Client.collect_job b ~job_id:id in
            chaos_check plan ~faulty:pats ~quarantined:summary.Protocol.quarantined)
      | Chaos.Overlapping_resume ->
        with_client h (fun c ->
            with_slow_roots 0.03 (fun () ->
                submit_ok c (spec id);
                poll "victim running" (fun () -> stat c "daemon_jobs_running" = 1);
                Unix.sleepf (float_of_int plan.Chaos.delay *. 0.01);
                (* the overlapping resume of a live id must be refused,
                   not corrupt the shared checkpoint *)
                match Client.submit c (spec id) with
                | Protocol.Duplicate _ -> ()
                | _ -> Alcotest.fail "overlapping resume must be a Duplicate");
            let pats, summary = Client.collect_job c ~job_id:id in
            chaos_check plan ~faulty:pats ~quarantined:summary.Protocol.quarantined;
            (* and once it finished, the id resumes cleanly *)
            submit_ok c (spec id);
            let pats2, summary2 = Client.collect_job c ~job_id:id in
            chaos_check plan ~faulty:pats2
              ~quarantined:summary2.Protocol.quarantined)
      | Chaos.Socket_write_fail -> (
        let fplan =
          match Chaos.fault_plan_of_job plan with
          | Some p -> p
          | None -> Alcotest.fail "socket site needs a fault plan"
        in
        let first_try =
          Chaos.inject fplan (fun () ->
              let a = Client.connect h.sock in
              let res =
                match Client.submit a (spec id) with
                | Protocol.Accepted _ -> (
                  match Client.collect_job a ~job_id:id with
                  | res -> Some res
                  | exception (Protocol.Protocol_error _ | Unix.Unix_error _) ->
                    None)
                | exception (Protocol.Protocol_error _ | Unix.Unix_error _) ->
                  None
                | _ -> Alcotest.fail "fresh id must be accepted"
              in
              Client.close a;
              res)
        in
        match first_try with
        | Some (pats, summary) ->
          (* the injected write was not on this job's path (or the
             trigger outran the write count): output must be intact *)
          chaos_check plan ~faulty:pats ~quarantined:summary.Protocol.quarantined
        | None ->
          (* the daemon shed us mid-stream; recover on a fresh connection *)
          with_client h (fun b ->
              poll "shed job released its slot" (fun () ->
                  stat b "daemon_jobs_running" = 0);
              let rec resubmit () =
                match Client.submit b (spec id) with
                | Protocol.Accepted _ -> ()
                | Protocol.Duplicate _ ->
                  Unix.sleepf 0.05;
                  resubmit ()
                | _ -> Alcotest.fail "recovery submission refused"
              in
              resubmit ();
              let pats, summary = Client.collect_job b ~job_id:id in
              chaos_check plan ~faulty:pats
                ~quarantined:summary.Protocol.quarantined))
      | Chaos.Kill_mid_drain ->
        (* needs a kill -9 of a real process: exercised by the e2e test
           below with the same plan generator *)
        ())

let test_job_chaos_sweep () =
  Chaos.job_plans
    ~sites:[ Chaos.Client_disconnect; Chaos.Overlapping_resume; Chaos.Socket_write_fail ]
    ~seed:23 ~count:6 ()
  |> List.iter run_job_plan

(* --- concurrent resume safety: interleaved checkpoint writers --- *)

let writer_isolation_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:8
       ~name:"interleaved per-job writers never cross-contaminate"
       QCheck2.Gen.(pair (int_range 5 30) (int_range 5 30))
       (fun (na, nb) ->
         let pa = Filename.temp_file "rgs-wa" ".ckpt" in
         let pb = Filename.temp_file "rgs-wb" ".ckpt" in
         Fun.protect
           ~finally:(fun () ->
             List.iter
               (fun p -> try Sys.remove p with Sys_error _ -> ())
               [ pa; pb ])
           (fun () ->
             let wa =
               Checkpoint.Writer.create ~path:pa ~fingerprint:"job-a" ()
             in
             let wb =
               Checkpoint.Writer.create ~path:pb ~fingerprint:"job-b" ()
             in
             let appender w base n =
               Domain.spawn (fun () ->
                   for i = 1 to n do
                     Checkpoint.Writer.append w
                       (Checkpoint.Root_done { root = base + i; results = [] })
                   done)
             in
             let da = appender wa 1000 na in
             let db = appender wb 2000 nb in
             Domain.join da;
             Domain.join db;
             Checkpoint.Writer.close wa;
             Checkpoint.Writer.close wb;
             let roots_of path fp =
               let log = Checkpoint.load ~path ~expected_fingerprint:fp in
               ( List.sort compare
                   (List.map
                      (fun (e : Checkpoint.entry) -> e.Checkpoint.root)
                      log.Checkpoint.completed),
                 log.Checkpoint.salvaged_bytes )
             in
             let roots_a, salvaged_a = roots_of pa "job-a" in
             let roots_b, salvaged_b = roots_of pb "job-b" in
             roots_a = List.init na (fun i -> 1001 + i)
             && roots_b = List.init nb (fun i -> 2001 + i)
             && salvaged_a = 0 && salvaged_b = 0)))

(* --- non-strict parsing is observable: parse_errors_skipped --- *)

let test_parse_errors_skipped_metric () =
  let before = Metrics.snapshot () in
  let db, skipped =
    Seq_io.parse_spmf_report ~strict:false
      "1 -1 2 -1 -2\nnot a number -2\n3 -1 4 -1 -2\n"
  in
  Alcotest.(check int) "one line skipped" 1 skipped;
  Alcotest.(check int) "good lines survive" 2 (Seqdb.size db);
  let _, skipped_chars = Seq_io.parse_chars_report ~strict:false "ABC\nab!\nDEF\n" in
  Alcotest.(check int) "chars line skipped" 1 skipped_chars;
  let delta =
    Metrics.find (Metrics.diff ~before ~after:(Metrics.snapshot ()))
      "parse_errors_skipped"
  in
  Alcotest.(check int) "every skip is counted" (skipped + skipped_chars) delta

(* --- end-to-end: the real binaries under kill -9 and SIGTERM --- *)

let bin name =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" name))

let rgsminerd_exe = bin "rgsminerd.exe"
let rgsminer_exe = bin "rgsminer.exe"

let quest_small =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "data" "quest_small.txt"))

let spawn ?(root_delay_ms = 0) exe args =
  if not (Sys.file_exists exe) then Alcotest.failf "%s not built" exe;
  let env =
    if root_delay_ms = 0 then Unix.environment ()
    else
      Array.append (Unix.environment ())
        [| Printf.sprintf "RGS_CHAOS_ROOT_DELAY_MS=%d" root_delay_ms |]
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process_env exe
      (Array.of_list (exe :: args))
      env Unix.stdin null null
  in
  Unix.close null;
  pid

let spawn_daemon ?root_delay_ms ~sock ~dir extra =
  spawn ?root_delay_ms rgsminerd_exe
    ([ "--socket"; sock; "--state-dir"; dir ] @ extra)

let wait_ready sock =
  poll "daemon accepting connections" (fun () ->
      Sys.file_exists sock
      && match Client.connect ~timeout_s:2.0 sock with
         | c ->
           let ok = Client.ping c in
           Client.close c;
           ok
         | exception (Unix.Unix_error _ | Protocol.Protocol_error _) -> false)

let wait_exit pid = snd (Unix.waitpid [] pid)

(* The acceptance scenario: kill -9 with two jobs in flight (torn
   in-flight checkpoint records possible), restart, resubmit both —
   outputs must equal the uninterrupted batch run. *)
let test_e2e_kill9_two_jobs_resume () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sock = Filename.concat dir "d.sock" in
      let pid =
        spawn_daemon ~root_delay_ms:50 ~sock ~dir [ "--workers"; "2" ]
      in
      wait_ready sock;
      let c = Client.connect sock in
      submit_ok c (spec "e2e-k1");
      submit_ok c (spec "e2e-k2");
      poll "both jobs in flight" (fun () -> stat c "daemon_jobs_running" = 2);
      Unix.sleepf 0.3;
      Unix.kill pid Sys.sigkill;
      Alcotest.(check bool) "killed outright" true
        (wait_exit pid = Unix.WSIGNALED Sys.sigkill);
      Client.close c;
      let pid2 = spawn_daemon ~sock ~dir [ "--workers"; "2" ] in
      wait_ready sock;
      let c2 = Client.connect sock in
      Fun.protect
        ~finally:(fun () -> Client.close c2)
        (fun () ->
          List.iter
            (fun id ->
              submit_ok c2 (spec id);
              let pats, summary = Client.collect_job c2 ~job_id:id in
              check_results (id ^ " restart-resume == batch") pats;
              Alcotest.(check string) (id ^ " completes") "completed"
                summary.Protocol.outcome)
            [ "e2e-k1"; "e2e-k2" ]);
      Unix.kill pid2 Sys.sigterm;
      Alcotest.(check bool) "clean drain exits 0" true
        (wait_exit pid2 = Unix.WEXITED 0))

let test_e2e_sigterm_drain () =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sock = Filename.concat dir "d.sock" in
      let stats_path = Filename.concat dir "daemon-stats.json" in
      let pid =
        spawn_daemon ~root_delay_ms:50 ~sock ~dir
          [
            "--workers"; "1"; "--drain-grace"; "0.2";
            "--stats"; stats_path; "--stats-interval"; "0.05";
          ]
      in
      wait_ready sock;
      let c = Client.connect sock in
      submit_ok c (spec "e2e-d1");
      poll "job in flight" (fun () -> stat c "daemon_jobs_running" = 1);
      poll "periodic stats dump landed" (fun () -> Sys.file_exists stats_path);
      Unix.kill pid Sys.sigterm;
      (* the drain is client-visible before the process exits *)
      let _, summary = Client.collect_job c ~job_id:"e2e-d1" in
      Alcotest.(check (option string)) "drained mid-job" (Some "drain")
        summary.Protocol.stopped_by;
      Alcotest.(check bool) "interrupted drain exits 130" true
        (wait_exit pid = Unix.WEXITED 130);
      Client.close c;
      let pid2 = spawn_daemon ~sock ~dir [] in
      wait_ready sock;
      let c2 = Client.connect sock in
      Fun.protect
        ~finally:(fun () -> Client.close c2)
        (fun () ->
          submit_ok c2 (spec "e2e-d1");
          let pats, summary2 = Client.collect_job c2 ~job_id:"e2e-d1" in
          check_results "post-drain resume == batch" pats;
          Alcotest.(check string) "resume completes" "completed"
            summary2.Protocol.outcome);
      Unix.kill pid2 Sys.sigterm;
      Alcotest.(check bool) "clean drain exits 0" true
        (wait_exit pid2 = Unix.WEXITED 0))

(* Kill_mid_drain, the fourth job-level chaos site: SIGTERM starts a
   drain, kill -9 lands before it finishes, and the restart still
   resumes to the batch answer. *)
let test_e2e_kill9_mid_drain () =
  let plan =
    List.hd (Chaos.job_plans ~sites:[ Chaos.Kill_mid_drain ] ~seed:31 ~count:1 ())
  in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sock = Filename.concat dir "d.sock" in
      let pid =
        spawn_daemon ~root_delay_ms:60 ~sock ~dir
          [ "--workers"; "1"; "--drain-grace"; "5" ]
      in
      wait_ready sock;
      let c = Client.connect sock in
      submit_ok c (spec "e2e-md");
      poll "job in flight" (fun () -> stat c "daemon_jobs_running" = 1);
      Unix.kill pid Sys.sigterm;
      Unix.sleepf (float_of_int plan.Chaos.delay *. 0.02);
      Unix.kill pid Sys.sigkill;
      Alcotest.(check bool) "killed mid-drain" true
        (wait_exit pid = Unix.WSIGNALED Sys.sigkill);
      Client.close c;
      let pid2 = spawn_daemon ~sock ~dir [] in
      wait_ready sock;
      let c2 = Client.connect sock in
      Fun.protect
        ~finally:(fun () -> Client.close c2)
        (fun () ->
          submit_ok c2 (spec "e2e-md");
          let pats, summary = Client.collect_job c2 ~job_id:"e2e-md" in
          chaos_check plan ~faulty:pats ~quarantined:summary.Protocol.quarantined;
          Alcotest.(check string) "resume completes" "completed"
            summary.Protocol.outcome);
      Unix.kill pid2 Sys.sigterm;
      Alcotest.(check bool) "clean drain exits 0" true
        (wait_exit pid2 = Unix.WEXITED 0))

(* --- rgsminer --stats-interval: periodic dumps land mid-run --- *)

let test_e2e_stats_interval () =
  let stats_path = Filename.temp_file "rgs-stats" ".json" in
  Sys.remove stats_path;
  Fun.protect
    ~finally:(fun () -> try Sys.remove stats_path with Sys_error _ -> ())
    (fun () ->
      let pid =
        spawn ~root_delay_ms:30 rgsminer_exe
          [
            "--min-sup"; "3"; "--max-length"; "3";
            "--stats"; stats_path; "--stats-interval"; "0.05";
            quest_small;
          ]
      in
      let alive_when_seen = ref false in
      poll "periodic dump lands" (fun () ->
          if Sys.file_exists stats_path then begin
            alive_when_seen := fst (Unix.waitpid [ Unix.WNOHANG ] pid) = 0;
            true
          end
          else false);
      Alcotest.(check bool) "dump landed while still mining" true
        !alive_when_seen;
      Alcotest.(check bool) "run exits 0" true (wait_exit pid = Unix.WEXITED 0);
      let ic = open_in stats_path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        m = 0 || go 0
      in
      Alcotest.(check bool) "final dump holds run metrics" true
        (contains content "dfs_nodes");
      (* a .json target must get JSON, not Prometheus text — the atomic
         temp file must not defeat the extension switch *)
      Alcotest.(check bool) "json path gets json" true
        (contains content "\"kind\": \"counter\""))

let test_stats_interval_requires_stats () =
  let pid =
    spawn rgsminer_exe
      [ "--min-sup"; "3"; "--stats-interval"; "1"; quest_small ]
  in
  Alcotest.(check bool) "--stats-interval without --stats is an error" true
    (wait_exit pid = Unix.WEXITED 1)

let suite =
  [
    Alcotest.test_case "ping and stats frames" `Quick test_ping_stats;
    Alcotest.test_case "typed rejections, daemon survives" `Quick
      test_typed_rejections;
    Alcotest.test_case "v1 client compatibility" `Quick test_v1_client_compat;
    Alcotest.test_case "unsupported hello version refused" `Quick
      test_unsupported_version_refused;
    Alcotest.test_case "malformed query rejected, typed" `Quick
      test_malformed_query_rejected;
    Alcotest.test_case "v2 queries end-to-end, checkpoint query pin" `Quick
      test_v2_queries_end_to_end;
    Alcotest.test_case "submit == batch, resubmit replays" `Quick
      test_submit_matches_batch;
    Alcotest.test_case "overload sheds job K+1, in-flight undisturbed" `Quick
      test_overload_sheds;
    Alcotest.test_case "round-robin fairness across clients" `Quick
      test_fair_dispatch;
    Alcotest.test_case "duplicate live id refused" `Quick test_duplicate_live_id;
    Alcotest.test_case "disconnect cancels, resubmit resumes" `Quick
      test_disconnect_cancels_and_resumes;
    Alcotest.test_case "idle watchdog cancels a stalled job" `Quick
      test_watchdog_cancels_stalled;
    Alcotest.test_case "drain: typed cancellations, 130, restart-resume" `Quick
      test_drain_and_restart_resume;
    Alcotest.test_case "job plans are deterministic" `Quick
      test_job_plans_deterministic;
    Alcotest.test_case "job-level chaos sweep" `Quick test_job_chaos_sweep;
    writer_isolation_prop;
    Alcotest.test_case "parse_errors_skipped counts non-strict skips" `Quick
      test_parse_errors_skipped_metric;
    Alcotest.test_case "e2e: kill -9 with two jobs, restart-resume" `Quick
      test_e2e_kill9_two_jobs_resume;
    Alcotest.test_case "e2e: SIGTERM drain, exit 130, resume" `Quick
      test_e2e_sigterm_drain;
    Alcotest.test_case "e2e: kill -9 mid-drain, resume" `Quick
      test_e2e_kill9_mid_drain;
    Alcotest.test_case "e2e: rgsminer --stats-interval dumps mid-run" `Quick
      test_e2e_stats_interval;
    Alcotest.test_case "--stats-interval requires --stats" `Quick
      test_stats_interval_requires_stats;
  ]
