(* Tests for domain-parallel mining: output identical (order included) to
   the sequential miners, across domain counts and datasets. *)

open Rgs_sequence
open Rgs_core

let signatures results =
  List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results

let dbs =
  lazy
    [
      ("table3", Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ]);
      ( "quest",
        Rgs_datagen.Quest_gen.generate
          (Rgs_datagen.Quest_gen.params ~d:50 ~c:15 ~n:40 ~s:4 ~seed:11 ()) );
      ( "traces",
        Rgs_datagen.Trace_gen.generate
          (Rgs_datagen.Trace_gen.params ~num_sequences:40 ~num_events:20 ~seed:12 ()) );
    ]

let test_parallel_all_matches () =
  List.iter
    (fun (name, db) ->
      let idx = Inverted_index.build db in
      let sequential, seq_stats = Gsgrow.mine ~max_length:4 idx ~min_sup:5 in
      List.iter
        (fun domains ->
          let parallel, par_stats =
            Parallel_miner.mine_all ~domains ~max_length:4 idx ~min_sup:5
          in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s all d%d" name domains)
            (signatures sequential) (signatures parallel);
          Alcotest.(check int)
            (Printf.sprintf "%s stats d%d" name domains)
            seq_stats.Gsgrow.patterns par_stats.Gsgrow.patterns)
        [ 1; 2; 4 ])
    (Lazy.force dbs)

let test_parallel_closed_matches () =
  List.iter
    (fun (name, db) ->
      let idx = Inverted_index.build db in
      let sequential, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup:5 in
      List.iter
        (fun domains ->
          let parallel, _ =
            Parallel_miner.mine_closed ~domains ~max_length:4 idx ~min_sup:5
          in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s closed d%d" name domains)
            (signatures sequential) (signatures parallel))
        [ 1; 3 ])
    (Lazy.force dbs)

let test_parallel_determinism () =
  let _, db = List.nth (Lazy.force dbs) 1 in
  let idx = Inverted_index.build db in
  let runs =
    List.init 3 (fun _ ->
        signatures (fst (Parallel_miner.mine_closed ~domains:4 ~max_length:3 idx ~min_sup:5)))
  in
  match runs with
  | first :: rest ->
    List.iter
      (fun r -> Alcotest.(check (list (pair string int))) "stable across runs" first r)
      rest
  | [] -> assert false

let test_parallel_validation () =
  let idx = Inverted_index.build (Seqdb.of_strings [ "AB" ]) in
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Parallel_miner: domains must be >= 1") (fun () ->
      ignore (Parallel_miner.mine_all ~domains:0 idx ~min_sup:1));
  Alcotest.check_raises "min_sup 0"
    (Invalid_argument "Parallel_miner: min_sup must be >= 1") (fun () ->
      ignore (Parallel_miner.mine_all idx ~min_sup:0));
  Alcotest.(check bool) "default domains >= 1" true (Parallel_miner.default_domains () >= 1)

let test_more_domains_than_roots () =
  let idx = Inverted_index.build (Seqdb.of_strings [ "ABAB" ]) in
  let results, _ = Parallel_miner.mine_all ~domains:6 idx ~min_sup:2 in
  let sequential, _ = Gsgrow.mine idx ~min_sup:2 in
  Alcotest.(check (list (pair string int))) "tiny db" (signatures sequential)
    (signatures results)

let suite =
  [
    Alcotest.test_case "parallel all = sequential" `Quick test_parallel_all_matches;
    Alcotest.test_case "parallel closed = sequential" `Quick test_parallel_closed_matches;
    Alcotest.test_case "deterministic across runs" `Quick test_parallel_determinism;
    Alcotest.test_case "validation" `Quick test_parallel_validation;
    Alcotest.test_case "more domains than roots" `Quick test_more_domains_than_roots;
  ]
