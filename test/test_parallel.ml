(* Tests for domain-parallel mining: output identical (order included) to
   the sequential miners, across domain counts and datasets. *)

open Rgs_sequence
open Rgs_core

let signatures results =
  List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results

let dbs =
  lazy
    [
      ("table3", Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ]);
      ( "quest",
        Rgs_datagen.Quest_gen.generate
          (Rgs_datagen.Quest_gen.params ~d:50 ~c:15 ~n:40 ~s:4 ~seed:11 ()) );
      ( "traces",
        Rgs_datagen.Trace_gen.generate
          (Rgs_datagen.Trace_gen.params ~num_sequences:40 ~num_events:20 ~seed:12 ()) );
    ]

let test_parallel_all_matches () =
  List.iter
    (fun (name, db) ->
      let idx = Inverted_index.build db in
      let sequential, seq_stats = Gsgrow.mine ~max_length:4 idx ~min_sup:5 in
      List.iter
        (fun domains ->
          let parallel, par_stats =
            Parallel_miner.mine_all ~domains ~max_length:4 idx ~min_sup:5
          in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s all d%d" name domains)
            (signatures sequential) (signatures parallel);
          Alcotest.(check int)
            (Printf.sprintf "%s stats d%d" name domains)
            seq_stats.Gsgrow.patterns par_stats.Gsgrow.patterns)
        [ 1; 2; 4 ])
    (Lazy.force dbs)

let test_parallel_closed_matches () =
  List.iter
    (fun (name, db) ->
      let idx = Inverted_index.build db in
      let sequential, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup:5 in
      List.iter
        (fun domains ->
          let parallel, _ =
            Parallel_miner.mine_closed ~domains ~max_length:4 idx ~min_sup:5
          in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s closed d%d" name domains)
            (signatures sequential) (signatures parallel))
        [ 1; 3 ])
    (Lazy.force dbs)

let test_parallel_determinism () =
  let _, db = List.nth (Lazy.force dbs) 1 in
  let idx = Inverted_index.build db in
  let runs =
    List.init 3 (fun _ ->
        signatures (fst (Parallel_miner.mine_closed ~domains:4 ~max_length:3 idx ~min_sup:5)))
  in
  match runs with
  | first :: rest ->
    List.iter
      (fun r -> Alcotest.(check (list (pair string int))) "stable across runs" first r)
      rest
  | [] -> assert false

let test_parallel_validation () =
  let idx = Inverted_index.build (Seqdb.of_strings [ "AB" ]) in
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Parallel_miner: domains must be >= 1") (fun () ->
      ignore (Parallel_miner.mine_all ~domains:0 idx ~min_sup:1));
  Alcotest.check_raises "min_sup 0"
    (Invalid_argument "Parallel_miner: min_sup must be >= 1") (fun () ->
      ignore (Parallel_miner.mine_all idx ~min_sup:0));
  Alcotest.(check bool) "default domains >= 1" true (Parallel_miner.default_domains () >= 1)

let test_more_domains_than_roots () =
  let idx = Inverted_index.build (Seqdb.of_strings [ "ABAB" ]) in
  let results, _ = Parallel_miner.mine_all ~domains:6 idx ~min_sup:2 in
  let sequential, _ = Gsgrow.mine idx ~min_sup:2 in
  Alcotest.(check (list (pair string int))) "tiny db" (signatures sequential)
    (signatures results)

(* --- largest-root-first scheduling ---

   The claim order is a pure permutation: mined output, per-root statuses
   and stats must be identical to index-order claiming, with or without
   injected faults. *)

let test_schedule_output_identical () =
  List.iter
    (fun (name, db) ->
      let idx = Inverted_index.build db in
      List.iter
        (fun domains ->
          let mine schedule =
            let results, stats =
              Parallel_miner.mine_closed ~domains ~max_length:4 ~schedule idx
                ~min_sup:5
            in
            (signatures results, stats.Clogsgrow.patterns)
          in
          let out_index, n_index = mine `Index in
          let out_largest, n_largest = mine `Largest_first in
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s schedule d%d" name domains)
            out_index out_largest;
          Alcotest.(check int)
            (Printf.sprintf "%s schedule stats d%d" name domains)
            n_index n_largest)
        [ 1; 3 ])
    (Lazy.force dbs)

let test_largest_first_order_shape () =
  let _, db = List.nth (Lazy.force dbs) 2 in
  let idx = Inverted_index.build db in
  let roots =
    Array.of_list (Inverted_index.frequent_events idx ~min_sup:5)
  in
  let order = Parallel_miner.largest_first_order idx roots in
  Alcotest.(check int) "permutation length" (Array.length roots)
    (Array.length order);
  let seen = Array.make (Array.length roots) false in
  Array.iter (fun k -> seen.(k) <- true) order;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen);
  (* weights nonincreasing along the claim order *)
  let w k = Inverted_index.occurrence_count idx roots.(k) in
  let ok = ref true in
  for j = 1 to Array.length order - 1 do
    if w order.(j - 1) < w order.(j) then ok := false
  done;
  Alcotest.(check bool) "weights nonincreasing" true !ok;
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument "Parallel_miner.run_pool: order length <> num_roots")
    (fun () ->
      ignore
        (Parallel_miner.run_pool ~order:[| 0 |] ~domains:1
           ~num_roots:(Array.length roots)
           ~mine_root:(fun _ -> ())
           ()))

(* Regression: equal occurrence counts must order by root index, not by
   whatever permutation Array.sort (which is unstable) happens to leave.
   Every event below occurs exactly twice, so any tie-break bug shows up
   as a non-identity order. *)
let test_largest_first_order_tie_break () =
  let idx = Inverted_index.build (Seqdb.of_strings [ "ABCABC"; "DD" ]) in
  let roots = Array.of_list (Inverted_index.frequent_events idx ~min_sup:2) in
  Alcotest.(check bool) "all-tied fixture" true (Array.length roots >= 3);
  let counts =
    Array.map (fun e -> Inverted_index.occurrence_count idx e) roots
  in
  Array.iter (fun c -> Alcotest.(check int) "uniform weight" counts.(0) c) counts;
  let order = Parallel_miner.largest_first_order idx roots in
  Alcotest.(check (array int))
    "ties resolve to the identity permutation"
    (Array.init (Array.length roots) Fun.id)
    order

(* Per-root statuses stay keyed by root under reordering, including
   injected crashes: the same root fails (twice, surviving its retry as
   [Failed]) whichever claim order ran, and every other root's result is
   unchanged. *)
let test_schedule_fault_injection () =
  let _, db = List.nth (Lazy.force dbs) 2 in
  let idx = Inverted_index.build db in
  let events = Inverted_index.frequent_events idx ~min_sup:5 in
  let roots = Array.of_list events in
  let num_roots = Array.length roots in
  Alcotest.(check bool) "enough roots" true (num_roots >= 3);
  let crash_root = 1 in
  let run order =
    Budget.Fault.with_hook
      (function
        | Budget.Fault.Worker k when k = crash_root -> failwith "injected"
        | _ -> ())
      (fun () ->
        let slots, _ =
          Parallel_miner.run_pool ?order ~domains:2 ~num_roots
            ~mine_root:(fun k ->
              signatures
                (fst
                   (Gsgrow.mine ~max_length:3 ~events ~roots:[ roots.(k) ] idx
                      ~min_sup:5)))
            ()
        in
        Parallel_miner.retry_failed ~mine_root:(fun _ -> assert false) slots)
  in
  let reversed = Array.init num_roots (fun i -> num_roots - 1 - i) in
  let by_index = run None in
  let by_largest = run (Some (Parallel_miner.largest_first_order idx roots)) in
  let by_reverse = run (Some reversed) in
  let status_sig = function
    | Parallel_miner.Done r -> "done " ^ String.concat "," (List.map fst r)
    | Parallel_miner.Failed _ -> "failed"
    | Parallel_miner.Skipped -> "skipped"
    | Parallel_miner.Quarantined _ -> "quarantined"
  in
  Array.iteri
    (fun k expected ->
      let expect = status_sig expected in
      Alcotest.(check string)
        (Printf.sprintf "root %d status (largest-first)" k)
        expect
        (status_sig by_largest.(k));
      Alcotest.(check string)
        (Printf.sprintf "root %d status (reversed)" k)
        expect
        (status_sig by_reverse.(k));
      if k = crash_root then
        Alcotest.(check string)
          "twice-crashed root is quarantined" "quarantined" expect)
    by_index

(* A halted pool skips unclaimed roots; reordering changes WHICH claims
   were in flight but a Skipped slot must still be reported as Skipped,
   never silently promoted. *)
let test_schedule_halt_preserves_skips () =
  let num_roots = 6 in
  let order = [| 5; 4; 3; 2; 1; 0 |] in
  let slots, _ =
    Parallel_miner.run_pool ~order ~domains:1 ~num_roots
      ~halt_on:(fun r -> r = 5)
      ~mine_root:Fun.id ()
  in
  Alcotest.(check bool) "first claim done" true (slots.(5) = Parallel_miner.Done 5);
  (* halt after the first claim: the remaining five roots stay Skipped *)
  let skipped =
    Array.to_list slots
    |> List.filter (fun s -> s = Parallel_miner.Skipped)
    |> List.length
  in
  Alcotest.(check int) "rest skipped" 5 skipped

let suite =
  [
    Alcotest.test_case "parallel all = sequential" `Quick test_parallel_all_matches;
    Alcotest.test_case "parallel closed = sequential" `Quick test_parallel_closed_matches;
    Alcotest.test_case "deterministic across runs" `Quick test_parallel_determinism;
    Alcotest.test_case "validation" `Quick test_parallel_validation;
    Alcotest.test_case "more domains than roots" `Quick test_more_domains_than_roots;
    Alcotest.test_case "schedule: output identical" `Quick
      test_schedule_output_identical;
    Alcotest.test_case "schedule: largest-first order shape" `Quick
      test_largest_first_order_shape;
    Alcotest.test_case "schedule: tie-break is deterministic" `Quick
      test_largest_first_order_tie_break;
    Alcotest.test_case "schedule: faults keyed by root" `Quick
      test_schedule_fault_injection;
    Alcotest.test_case "schedule: halt preserves skips" `Quick
      test_schedule_halt_preserves_skips;
  ]
