(* Tests for the data-generation substrate: PRNG determinism, sampler
   sanity, and the statistical calibration of the four dataset
   generators. *)

open Rgs_sequence
open Rgs_datagen

(* --- Splitmix --- *)

let test_determinism () =
  let a = Splitmix.create ~seed:1 in
  let b = Splitmix.create ~seed:1 in
  let xs = List.init 32 (fun _ -> Splitmix.int a 1000) in
  let ys = List.init 32 (fun _ -> Splitmix.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Splitmix.create ~seed:2 in
  let zs = List.init 32 (fun _ -> Splitmix.int c 1000) in
  Alcotest.(check bool) "different seed, different stream" true (xs <> zs)

let test_ranges () =
  let rng = Splitmix.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Splitmix.int rng 7 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 7);
    let y = Splitmix.int_in rng ~min:3 ~max:5 in
    Alcotest.(check bool) "int_in range" true (y >= 3 && y <= 5);
    let f = Splitmix.float rng in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 1.)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Splitmix.int rng 0))

let test_split_independence () =
  let rng = Splitmix.create ~seed:4 in
  let child = Splitmix.split rng in
  let xs = List.init 16 (fun _ -> Splitmix.int rng 100) in
  let ys = List.init 16 (fun _ -> Splitmix.int child 100) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_weighted_index () =
  let rng = Splitmix.create ~seed:5 in
  (* index 1 has weight 0: never drawn *)
  for _ = 1 to 500 do
    let k = Splitmix.weighted_index rng [| 1.0; 0.0; 3.0 |] in
    Alcotest.(check bool) "never zero-weight" true (k = 0 || k = 2)
  done;
  Alcotest.check_raises "all zero"
    (Invalid_argument "Splitmix.weighted_index: no positive weight") (fun () ->
      ignore (Splitmix.weighted_index rng [| 0.0; 0.0 |]))

let test_shuffle_permutes () =
  let rng = Splitmix.create ~seed:6 in
  let a = Array.init 50 Fun.id in
  Splitmix.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (list int)) "permutation" (List.init 50 Fun.id) (Array.to_list sorted)

(* --- Samplers --- *)

let mean_of samples = List.fold_left ( +. ) 0. samples /. float_of_int (List.length samples)

let test_poisson_mean () =
  let rng = Splitmix.create ~seed:7 in
  let samples = List.init 3000 (fun _ -> float_of_int (Samplers.poisson rng ~mean:20.)) in
  let m = mean_of samples in
  Alcotest.(check bool) (Printf.sprintf "poisson mean ~20 (got %.2f)" m) true
    (m > 18.5 && m < 21.5);
  (* large-mean path (normal-ish splitting) *)
  let samples = List.init 500 (fun _ -> float_of_int (Samplers.poisson rng ~mean:200.)) in
  let m = mean_of samples in
  Alcotest.(check bool) (Printf.sprintf "poisson mean ~200 (got %.2f)" m) true
    (m > 190. && m < 210.)

let test_geometric_mean () =
  let rng = Splitmix.create ~seed:8 in
  let p = 0.25 in
  let samples = List.init 4000 (fun _ -> float_of_int (Samplers.geometric rng ~p)) in
  let m = mean_of samples in
  (* mean = (1-p)/p = 3 *)
  Alcotest.(check bool) (Printf.sprintf "geometric mean ~3 (got %.2f)" m) true
    (m > 2.7 && m < 3.3)

let test_zipf_skew () =
  let rng = Splitmix.create ~seed:9 in
  let z = Samplers.zipf ~n:100 ~s:1.2 in
  let counts = Array.make 100 0 in
  for _ = 1 to 5000 do
    let k = Samplers.zipf_draw rng z in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "strong skew" true (counts.(0) > 5000 / 10)

let test_pareto_bounds () =
  let rng = Splitmix.create ~seed:10 in
  for _ = 1 to 1000 do
    let x = Samplers.pareto_int rng ~alpha:1.1 ~x_min:20 ~max_value:651 in
    Alcotest.(check bool) "bounded" true (x >= 20 && x <= 651)
  done

(* --- Quest generator --- *)

let test_quest_shape () =
  let params = Quest_gen.params ~d:200 ~c:20 ~n:1000 ~s:5 () in
  let db = Quest_gen.generate params in
  let st = Seqdb.stats db in
  Alcotest.(check int) "D sequences" 200 st.Seqdb.num_sequences;
  Alcotest.(check bool)
    (Printf.sprintf "avg length ~C (got %.1f)" st.Seqdb.avg_length)
    true
    (st.Seqdb.avg_length > 15. && st.Seqdb.avg_length < 26.);
  Alcotest.(check bool) "alphabet bounded by N" true (st.Seqdb.num_events <= 1000);
  (* determinism *)
  Alcotest.(check bool) "deterministic" true
    (Seqdb.equal db (Quest_gen.generate params));
  (* different seed differs *)
  let params' = Quest_gen.params ~d:200 ~c:20 ~n:1000 ~s:5 ~seed:7 () in
  Alcotest.(check bool) "seed-sensitive" false (Seqdb.equal db (Quest_gen.generate params'))

let test_quest_label () =
  Alcotest.(check string) "paper label" "D5C20N10S20"
    (Quest_gen.label (Quest_gen.params ~d:5000 ~c:20 ~n:10000 ~s:20 ()));
  Alcotest.(check string) "absolute label" "D500C20N10S20"
    (Quest_gen.label (Quest_gen.params ~d:500 ~c:20 ~n:10000 ~s:20 ()))

let test_quest_embeds_patterns () =
  (* With no noise and no corruption, sequences are concatenations of pool
     patterns, so mining should find a long frequent pattern. *)
  let params =
    Quest_gen.params ~d:30 ~c:30 ~n:50 ~s:6 ~num_patterns:3 ~corruption:0.0
      ~noise_ratio:0.0 ()
  in
  let db = Quest_gen.generate params in
  let idx = Inverted_index.build db in
  let results, _ = Rgs_core.Gsgrow.mine ~max_length:3 idx ~min_sup:30 in
  Alcotest.(check bool) "frequent length-3 pattern exists" true
    (List.exists (fun r -> Rgs_core.Pattern.length r.Rgs_core.Mined.pattern = 3) results)

(* --- Clickstream generator --- *)

let test_clickstream_shape () =
  let params = Clickstream_gen.gazelle_like ~scale:0.05 () in
  let db = Clickstream_gen.generate params in
  let st = Seqdb.stats db in
  Alcotest.(check int) "scaled sequences" 1468 st.Seqdb.num_sequences;
  Alcotest.(check bool)
    (Printf.sprintf "short average (got %.2f)" st.Seqdb.avg_length)
    true (st.Seqdb.avg_length < 10.);
  Alcotest.(check bool)
    (Printf.sprintf "heavy tail (max %d)" st.Seqdb.max_length)
    true
    (st.Seqdb.max_length > 15);
  Alcotest.(check bool) "bounded" true (st.Seqdb.max_length <= 651)

(* --- Trace generator --- *)

let test_trace_model_runner () =
  let open Trace_gen in
  let rng = Splitmix.create ~seed:11 in
  let model = Seq [ Emit 1; Branch [ (1.0, Emit 2); (0.0, Emit 3) ]; Emit 4 ] in
  let s = run_model rng model in
  Alcotest.(check (list int)) "deterministic branch" [ 1; 2; 4 ] (Sequence.to_list s);
  (* loop runs at least once, at most max_iters *)
  let loop = Loop { body = Emit 7; continue_p = 1.0; max_iters = 5 } in
  let s = run_model rng loop in
  Alcotest.(check (list int)) "loop capped" [ 7; 7; 7; 7; 7 ] (Sequence.to_list s);
  let never = Loop { body = Emit 7; continue_p = 0.0; max_iters = 5 } in
  let s = run_model rng never in
  Alcotest.(check (list int)) "loop at least once" [ 7 ] (Sequence.to_list s);
  (* max_length truncation *)
  let s = run_model rng ~max_length:3 (Seq [ Emit 1; Emit 2; Emit 3; Emit 4 ]) in
  Alcotest.(check int) "truncated" 3 (Sequence.length s)

let test_trace_model_events () =
  let open Trace_gen in
  let model = Seq [ Emit 3; Opt (0.5, Emit 1); Loop { body = Emit 2; continue_p = 0.1; max_iters = 2 } ] in
  Alcotest.(check (list int)) "collected events" [ 1; 2; 3 ] (events_of_model model)

let test_tcas_shape () =
  let db = Trace_gen.generate (Trace_gen.tcas_like ~scale:0.5 ()) in
  let st = Seqdb.stats db in
  Alcotest.(check int) "sequences" 789 st.Seqdb.num_sequences;
  Alcotest.(check bool) "max <= 70" true (st.Seqdb.max_length <= 70);
  Alcotest.(check bool)
    (Printf.sprintf "avg in trace range (got %.1f)" st.Seqdb.avg_length)
    true
    (st.Seqdb.avg_length > 15. && st.Seqdb.avg_length < 70.);
  Alcotest.(check bool) "alphabet <= 75" true (st.Seqdb.num_events <= 75)

(* --- JBoss generator --- *)

let test_jboss_shape () =
  let db, codec = Jboss_gen.generate (Jboss_gen.params ()) in
  let st = Seqdb.stats db in
  Alcotest.(check int) "28 traces" 28 st.Seqdb.num_sequences;
  Alcotest.(check bool) "max <= 125" true (st.Seqdb.max_length <= 125);
  Alcotest.(check bool)
    (Printf.sprintf "avg near 91 (got %.1f)" st.Seqdb.avg_length)
    true
    (st.Seqdb.avg_length > 50. && st.Seqdb.avg_length < 125.);
  (* every lifecycle event is interned *)
  List.iter
    (fun name ->
      Alcotest.(check bool) ("interned: " ^ name) true
        (Option.is_some (Codec.find codec name)))
    Jboss_gen.full_lifecycle;
  Alcotest.(check int) "lifecycle has 66 steps" 66 (List.length Jboss_gen.full_lifecycle);
  Alcotest.(check int) "six blocks" 6 (List.length Jboss_gen.blocks)

let test_jboss_rollback_path () =
  (* With rollback_p = 1 every transaction aborts: rollback events appear,
     commit events do not. *)
  let db, codec = Jboss_gen.generate (Jboss_gen.params ~rollback_p:1.0 ()) in
  let has name =
    match Codec.find codec name with
    | None -> false
    | Some e -> Seqdb.event_count db e > 0
  in
  Alcotest.(check bool) "rollback present" true (has "TxManager.rollback");
  Alcotest.(check bool) "commit absent" false (has "TxManager.commit");
  (* and the complement *)
  let db, codec = Jboss_gen.generate (Jboss_gen.params ~rollback_p:0.0 ()) in
  let has name =
    match Codec.find codec name with
    | None -> false
    | Some e -> Seqdb.event_count db e > 0
  in
  Alcotest.(check bool) "commit present" true (has "TxManager.commit");
  Alcotest.(check bool) "rollback absent" false (has "TxManager.rollback")

let test_clickstream_revisit_extremes () =
  (* With revisit_p = 1 every click after the first repeats an earlier
     page, so each session has exactly one distinct event. *)
  let db =
    Clickstream_gen.generate
      (Clickstream_gen.params ~num_sequences:50 ~revisit_p:1.0 ())
  in
  Seqdb.iter
    (fun i s ->
      if Sequence.length s > 0 then
        Alcotest.(check int)
          (Printf.sprintf "session %d single page" i)
          1
          (List.length (Sequence.events s)))
    db

let test_splitmix_copy () =
  let a = Splitmix.create ~seed:99 in
  ignore (Splitmix.int a 10);
  let b = Splitmix.copy a in
  let xs = List.init 8 (fun _ -> Splitmix.int a 1000) in
  let ys = List.init 8 (fun _ -> Splitmix.int b 1000) in
  Alcotest.(check (list int)) "copy continues identically" xs ys

let test_jboss_lock_unlock_frequent () =
  let db, codec = Jboss_gen.generate (Jboss_gen.params ()) in
  let lock = Option.get (Codec.find codec "TransImpl.lock") in
  let unlock = Option.get (Codec.find codec "TransImpl.unlock") in
  let sup =
    Rgs_core.Sup_comp.support (Inverted_index.build db)
      (Rgs_core.Pattern.of_list [ lock; unlock ])
  in
  (* the case study's most frequent fine-grained behaviour *)
  Alcotest.(check bool) (Printf.sprintf "lock->unlock frequent (sup %d)" sup) true (sup > 28)

let suite =
  [
    Alcotest.test_case "splitmix determinism" `Quick test_determinism;
    Alcotest.test_case "splitmix ranges" `Quick test_ranges;
    Alcotest.test_case "splitmix split" `Quick test_split_independence;
    Alcotest.test_case "weighted index" `Quick test_weighted_index;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "pareto bounds" `Quick test_pareto_bounds;
    Alcotest.test_case "quest shape" `Quick test_quest_shape;
    Alcotest.test_case "quest label" `Quick test_quest_label;
    Alcotest.test_case "quest embeds patterns" `Quick test_quest_embeds_patterns;
    Alcotest.test_case "clickstream shape" `Quick test_clickstream_shape;
    Alcotest.test_case "trace model runner" `Quick test_trace_model_runner;
    Alcotest.test_case "trace model events" `Quick test_trace_model_events;
    Alcotest.test_case "tcas shape" `Quick test_tcas_shape;
    Alcotest.test_case "jboss shape" `Quick test_jboss_shape;
    Alcotest.test_case "jboss rollback path" `Quick test_jboss_rollback_path;
    Alcotest.test_case "clickstream revisit extremes" `Quick test_clickstream_revisit_extremes;
    Alcotest.test_case "splitmix copy" `Quick test_splitmix_copy;
    Alcotest.test_case "jboss lock-unlock" `Quick test_jboss_lock_unlock_frequent;
  ]
