(* Tests for the related-work baselines: sequential miners (PrefixSpan /
   CloSpan / BIDE) and the Table I support semantics. *)

open Rgs_sequence
open Rgs_core
open Rgs_baselines

let p = Pattern.of_string
let fig1 = Seqdb.of_strings [ "AABCDABB"; "ABCD" ]

(* --- Seq_mining --- *)

let test_contains () =
  let s = Sequence.of_string "AABCDABB" in
  Alcotest.(check bool) "AB" true (Seq_mining.contains s (p "AB"));
  Alcotest.(check bool) "ABBB" true (Seq_mining.contains s (p "ABBB"));
  Alcotest.(check bool) "ABBBB" false (Seq_mining.contains s (p "ABBBB"));
  Alcotest.(check bool) "empty" true (Seq_mining.contains s Pattern.empty);
  Alcotest.(check bool) "DAB" true (Seq_mining.contains s (p "DAB"))

let test_leftmost_match () =
  let s = Sequence.of_string "AABCDABB" in
  Alcotest.(check (option (list int))) "AB" (Some [ 1; 3 ])
    (Option.map Array.to_list (Seq_mining.leftmost_match s (p "AB")));
  Alcotest.(check (option (list int))) "AB from 3" (Some [ 6; 7 ])
    (Option.map Array.to_list (Seq_mining.leftmost_match s ~from:3 (p "AB")));
  Alcotest.(check (option (list int))) "missing" None
    (Option.map Array.to_list (Seq_mining.leftmost_match s (p "DD")))

let test_seq_support () =
  Alcotest.(check int) "AB" 2 (Seq_mining.support fig1 (p "AB"));
  Alcotest.(check int) "CD" 2 (Seq_mining.support fig1 (p "CD"));
  Alcotest.(check int) "ABB" 1 (Seq_mining.support fig1 (p "ABB"));
  Alcotest.(check int) "missing" 0 (Seq_mining.support fig1 (p "DD"))

(* --- PrefixSpan: against definition-level counting --- *)

let seq_support_oracle db pattern = Seq_mining.support db pattern

let enumerate_frequent_oracle db ~min_sup ~max_length =
  (* exhaustive DFS with Apriori on sequential support *)
  let events = Seqdb.alphabet db in
  let results = ref [] in
  let rec dfs q =
    List.iter
      (fun e ->
        let q' = Pattern.grow q e in
        let sup = seq_support_oracle db q' in
        if sup >= min_sup then begin
          results := (Pattern.to_string q', sup) :: !results;
          if Pattern.length q' < max_length then dfs q'
        end)
      events
  in
  dfs Pattern.empty;
  List.sort compare !results

let test_prefixspan_complete () =
  let db = Seqdb.of_strings [ "ABCAB"; "BCA"; "AACB"; "CBA" ] in
  let got, _ = Prefixspan.mine ~max_length:4 db ~min_sup:2 in
  let got = List.sort compare (List.map (fun (q, s) -> (Pattern.to_string q, s)) got) in
  Alcotest.(check (list (pair string int)))
    "prefixspan = oracle"
    (enumerate_frequent_oracle db ~min_sup:2 ~max_length:4)
    got

let test_prefixspan_min_sup_validation () =
  Alcotest.check_raises "min_sup 0" (Invalid_argument "Prefixspan.mine: min_sup must be >= 1")
    (fun () -> ignore (Prefixspan.mine fig1 ~min_sup:0))

(* --- Closed sequential: CloSpan and BIDE agree with filtered PrefixSpan --- *)

let closed_oracle db ~min_sup ~max_length =
  let all, _ = Prefixspan.mine ~max_length db ~min_sup in
  List.sort compare
    (List.map (fun (q, s) -> (Pattern.to_string q, s)) (Clospan.closed_filter all))

let dbs_for_closed =
  [
    Seqdb.of_strings [ "ABCAB"; "BCA"; "AACB"; "CBA" ];
    Seqdb.of_strings [ "AABB"; "ABAB"; "BBAA" ];
    Seqdb.of_strings [ "ABCD"; "ACBD"; "ABD"; "AD" ];
    fig1;
  ]

let test_clospan_closed () =
  List.iteri
    (fun k db ->
      let got, _ = Clospan.mine ~max_length:5 db ~min_sup:2 in
      let got = List.sort compare (List.map (fun (q, s) -> (Pattern.to_string q, s)) got) in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "db %d" k)
        (closed_oracle db ~min_sup:2 ~max_length:5)
        got)
    dbs_for_closed

let test_bide_closed () =
  List.iteri
    (fun k db ->
      let got, _ = Bide.mine ~max_length:5 db ~min_sup:2 in
      let got = List.sort compare (List.map (fun (q, s) -> (Pattern.to_string q, s)) got) in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "db %d" k)
        (closed_oracle db ~min_sup:2 ~max_length:5)
        got)
    dbs_for_closed

let test_bide_backscan_invariant () =
  List.iteri
    (fun k db ->
      let with_bs, _ = Bide.mine ~max_length:5 ~use_backscan:true db ~min_sup:2 in
      let without_bs, _ = Bide.mine ~max_length:5 ~use_backscan:false db ~min_sup:2 in
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "db %d" k)
        (List.sort compare (List.map (fun (q, s) -> (Pattern.to_string q, s)) without_bs))
        (List.sort compare (List.map (fun (q, s) -> (Pattern.to_string q, s)) with_bs)))
    dbs_for_closed

let test_bide_is_closed_sequential () =
  (* In {ABC, ABC}: AB is not closed (ABC has equal support); ABC is. *)
  let db = Seqdb.of_strings [ "ABC"; "ABC" ] in
  Alcotest.(check bool) "AB not closed" false (Bide.is_closed_sequential db (p "AB"));
  Alcotest.(check bool) "ABC closed" true (Bide.is_closed_sequential db (p "ABC"));
  Alcotest.(check bool) "BC not closed" false (Bide.is_closed_sequential db (p "BC"));
  (* backward extension case: in {XABC, ABC, XABC}: ABC closed, but in
     {XABC, XABC}: ABC is not (X extends backward). *)
  let db2 = Seqdb.of_strings [ "XABC"; "XABC" ] in
  Alcotest.(check bool) "ABC backward-extensible" false (Bide.is_closed_sequential db2 (p "ABC"))

(* --- Episode mining (Mannila) --- *)

let s1 = Sequence.of_string "AABCDABB"

let test_episode_windows () =
  Alcotest.(check int) "AB w=4 in S1" 4 (Episode.window_support s1 (p "AB") ~w:4);
  Alcotest.(check int) "AB w=2 in S1" 2 (Episode.window_support s1 (p "AB") ~w:2);
  Alcotest.(check int) "AB w=8 in S1" 1 (Episode.window_support s1 (p "AB") ~w:8);
  Alcotest.(check int) "A w=1 in S1" 3 (Episode.window_support s1 (p "A") ~w:1);
  Alcotest.check_raises "w=0" (Invalid_argument "Episode.window_support: w must be >= 1")
    (fun () -> ignore (Episode.window_support s1 (p "A") ~w:0))

let test_episode_minimal_windows () =
  Alcotest.(check (list (pair int int))) "AB minimal windows"
    [ (2, 3); (6, 7) ]
    (Episode.minimal_windows s1 (p "AB"));
  Alcotest.(check int) "support" 2 (Episode.minimal_window_support s1 (p "AB"));
  Alcotest.(check (list (pair int int))) "ABB minimal windows"
    [ (2, 7); (6, 8) ]
    (Episode.minimal_windows s1 (p "ABB"));
  Alcotest.(check (list (pair int int))) "missing" []
    (Episode.minimal_windows s1 (p "DD"))

(* --- Gap requirement (Zhang) --- *)

let test_gap_counts () =
  Alcotest.(check int) "AB gaps 0..3" 4 (Gap_occurrences.count s1 (p "AB") ~gmin:0 ~gmax:3);
  Alcotest.(check int) "AB unbounded" 8
    (Gap_occurrences.count s1 (p "AB") ~gmin:0 ~gmax:8);
  Alcotest.(check int) "AB gap exactly 0" 2
    (Gap_occurrences.count s1 (p "AB") ~gmin:0 ~gmax:0);
  Alcotest.(check int) "Nl" 22
    (Gap_occurrences.max_possible ~seq_len:8 ~pat_len:2 ~gmin:0 ~gmax:3);
  Alcotest.(check (float 0.0001)) "ratio" (4. /. 22.)
    (Gap_occurrences.support_ratio s1 (p "AB") ~gmin:0 ~gmax:3);
  Alcotest.check_raises "bad bounds" (Invalid_argument "Gap_occurrences: bad gap bounds")
    (fun () -> ignore (Gap_occurrences.count s1 (p "AB") ~gmin:2 ~gmax:1))

let test_gap_counts_against_enumeration () =
  (* On a small sequence, compare with explicit landmark enumeration. *)
  let s = Sequence.of_string "ABABAB" in
  let db = Seqdb.of_sequences [ s ] in
  List.iter
    (fun (gmin, gmax) ->
      let by_dp = Gap_occurrences.count s (p "AB") ~gmin ~gmax in
      let by_enum =
        List.length
          (List.filter
             (fun lm -> lm.(1) - lm.(0) - 1 >= gmin && lm.(1) - lm.(0) - 1 <= gmax)
             (Brute_force.landmarks_in s (p "AB")))
      in
      ignore db;
      Alcotest.(check int) (Printf.sprintf "gaps %d..%d" gmin gmax) by_enum by_dp)
    [ (0, 0); (0, 1); (0, 5); (1, 3); (2, 2) ]

(* --- Interaction patterns (El-Ramly) --- *)

let test_interaction () =
  Alcotest.(check int) "AB in S1" 8 (Interaction.support s1 (p "AB"));
  Alcotest.(check int) "AB db" 9 (Interaction.db_support fig1 (p "AB"));
  Alcotest.(check int) "CD db" 2 (Interaction.db_support fig1 (p "CD"));
  Alcotest.(check int) "A singletons" 3 (Interaction.support s1 (p "A"));
  Alcotest.(check int) "missing" 0 (Interaction.support s1 (p "DD"))

(* --- Iterative patterns (Lo et al.) --- *)

let test_iterative () =
  Alcotest.(check (list (pair int int))) "AB occurrences in S1"
    [ (2, 3); (6, 7) ]
    (Iterative.occurrences s1 (p "AB"));
  Alcotest.(check int) "AB db" 3 (Iterative.db_support fig1 (p "AB"));
  Alcotest.(check int) "CD db" 2 (Iterative.db_support fig1 (p "CD"));
  (* gap events from the pattern alphabet break an occurrence *)
  let s = Sequence.of_string "ACB" in
  Alcotest.(check int) "foreign gap ok" 1 (Iterative.support s (p "AB"));
  let s = Sequence.of_string "AAB" in
  Alcotest.(check int) "own-alphabet gap breaks" 1 (Iterative.support s (p "AB"))

(* --- Levelwise baseline = GSgrow output --- *)

let test_levelwise_equals_gsgrow () =
  List.iter
    (fun db ->
      let idx = Inverted_index.build db in
      let level_results, stats = Levelwise.mine ~max_length:5 idx ~min_sup:2 in
      let dfs_results, _ = Rgs_core.Gsgrow.mine ~max_length:5 idx ~min_sup:2 in
      let norm l = List.sort compare l in
      Alcotest.(check (list (pair string int)))
        "same frequent set"
        (norm
           (List.map
              (fun r -> (Rgs_core.Pattern.to_string r.Rgs_core.Mined.pattern, r.Rgs_core.Mined.support))
              dfs_results))
        (norm (List.map (fun (q, s) -> (Rgs_core.Pattern.to_string q, s)) level_results));
      Alcotest.(check bool) "did candidate work" true
        (stats.Levelwise.candidates >= List.length level_results))
    dbs_for_closed

let test_levelwise_levels () =
  let idx = Inverted_index.build (Seqdb.of_strings [ "ABC"; "ABC" ]) in
  let _, stats = Levelwise.mine idx ~min_sup:2 in
  Alcotest.(check int) "deepest level" 3 stats.Levelwise.levels;
  let idx = Inverted_index.build (Seqdb.of_strings [ "AB"; "BA" ]) in
  let _, stats = Levelwise.mine idx ~min_sup:2 in
  Alcotest.(check int) "singletons only" 1 stats.Levelwise.levels

(* --- Table I assembled --- *)

let test_table1_rows () =
  let rows = Rgs_experiments.Table1.rows () in
  Alcotest.(check int) "7 rows" 7 (List.length rows);
  List.iter2
    (fun (name, a, c) (ename, ea, ec) ->
      Alcotest.(check string) "row name" ename name;
      Alcotest.(check int) (name ^ " sup(AB)") ea a;
      Alcotest.(check int) (name ^ " sup(CD)") ec c)
    rows Rgs_experiments.Table1.expected

let suite =
  [
    Alcotest.test_case "seq contains" `Quick test_contains;
    Alcotest.test_case "leftmost match" `Quick test_leftmost_match;
    Alcotest.test_case "sequential support" `Quick test_seq_support;
    Alcotest.test_case "prefixspan complete" `Quick test_prefixspan_complete;
    Alcotest.test_case "prefixspan validation" `Quick test_prefixspan_min_sup_validation;
    Alcotest.test_case "clospan = closed oracle" `Quick test_clospan_closed;
    Alcotest.test_case "bide = closed oracle" `Quick test_bide_closed;
    Alcotest.test_case "bide backscan invariant" `Quick test_bide_backscan_invariant;
    Alcotest.test_case "bide closedness check" `Quick test_bide_is_closed_sequential;
    Alcotest.test_case "episode windows" `Quick test_episode_windows;
    Alcotest.test_case "episode minimal windows" `Quick test_episode_minimal_windows;
    Alcotest.test_case "gap-requirement counts" `Quick test_gap_counts;
    Alcotest.test_case "gap DP = enumeration" `Quick test_gap_counts_against_enumeration;
    Alcotest.test_case "interaction support" `Quick test_interaction;
    Alcotest.test_case "iterative support" `Quick test_iterative;
    Alcotest.test_case "levelwise = GSgrow" `Quick test_levelwise_equals_gsgrow;
    Alcotest.test_case "levelwise levels" `Quick test_levelwise_levels;
    Alcotest.test_case "Table I rows" `Quick test_table1_rows;
  ]
