(* Regenerate the corrupt-checkpoint corpus under test/fixtures/.

   Usage: dune exec test/tools/gen_fixtures.exe -- test/fixtures

   The corpus is checked in, so the salvage tests exercise the exact bytes
   a crash can leave behind; rerun this tool (and re-commit) whenever the
   checkpoint record format changes. The record payloads deliberately use
   empty result lists, so the fixtures survive representation changes in
   Mined.t/Support_set.t and only pin the framing. *)

open Rgs_core

let fingerprint = String.make 32 'a'

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Split a v2 checkpoint image into header + framed records, using the
   length field of each frame. *)
let frames_of image =
  let header_len = String.index_from image (String.index image '\n' + 1) '\n' + 1 in
  let header = String.sub image 0 header_len in
  let le32 off =
    let b i = Char.code image.[off + i] in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  in
  let rec split off acc =
    if off >= String.length image then List.rev acc
    else
      let len = 8 + le32 off in
      split (off + len) (String.sub image off len :: acc)
  in
  (header, split header_len [])

let () =
  let dir = Sys.argv.(1) in
  let base = Filename.concat dir "full.ckpt" in
  let entry root = { Checkpoint.root; results = [] } in
  Checkpoint.write ~path:base ~fingerprint
    ~completed:[ entry 1; entry 2; entry 3 ]
    ~quarantined:[] ();
  let image = read_file base in
  let header, frames = frames_of image in
  let r1, r2, r3 =
    match frames with
    | [ a; b; c; _outcome ] -> (a, b, c)
    | _ -> failwith "expected 3 Root_done frames + 1 Run_outcome frame"
  in
  (* cut inside the third record's payload *)
  write_file
    (Filename.concat dir "truncated_mid_record.ckpt")
    (header ^ r1 ^ r2 ^ String.sub r3 0 (String.length r3 - 3));
  (* corrupt the CRC of the second record: only the first survives *)
  let bad = Bytes.of_string r2 in
  Bytes.set bad 4 (Char.chr (Char.code (Bytes.get bad 4) lxor 0xFF));
  write_file
    (Filename.concat dir "flipped_crc.ckpt")
    (header ^ r1 ^ Bytes.to_string bad ^ r3);
  write_file
    (Filename.concat dir "wrong_version.ckpt")
    (Printf.sprintf "RGS-CHECKPOINT\nv1 %s\n" fingerprint);
  write_file (Filename.concat dir "empty.ckpt") "";
  Printf.printf "wrote 5 fixture(s) to %s (fingerprint %s)\n" dir fingerprint
