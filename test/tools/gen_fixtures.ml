(* Regenerate the corrupt-fixture corpora under test/fixtures/.

   Usage: dune exec test/tools/gen_fixtures.exe -- test/fixtures

   Two corpora, both checked in:

   - *.ckpt — corrupt checkpoint logs: the salvage tests exercise the
     exact bytes a crash can leave behind. The record payloads
     deliberately use empty result lists, so the fixtures survive
     representation changes in Mined.t/Support_set.t and only pin the
     framing.

   - *.rgsdb — corrupt binary stores: one intact store plus one mutant
     per FORMAT.md clause the open/verify paths enforce (the test names
     in test_store.ml cite the clause each fixture violates). The
     mutations are made with local little-endian/CRC-32 helpers mirroring
     FORMAT.md §1, not with the writer's internals, so regenerating them
     doubles as a second implementation of the framing spec.

   Rerun this tool (and re-commit) whenever either format changes. *)

open Rgs_core

let fingerprint = String.make 32 'a'

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

(* Split a v2 checkpoint image into header + framed records, using the
   length field of each frame. *)
let frames_of image =
  let header_len = String.index_from image (String.index image '\n' + 1) '\n' + 1 in
  let header = String.sub image 0 header_len in
  let le32 off =
    let b i = Char.code image.[off + i] in
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  in
  let rec split off acc =
    if off >= String.length image then List.rev acc
    else
      let len = 8 + le32 off in
      split (off + len) (String.sub image off len :: acc)
  in
  (header, split header_len [])

(* --- the .rgsdb corpus (FORMAT.md §1 helpers) --- *)

let crc32 s =
  let table =
    Array.init 256 (fun i ->
        let c = ref i in
        for _ = 0 to 7 do
          c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
        done;
        !c)
  in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  (!c lxor 0xFFFFFFFF) land 0xFFFFFFFF

let set_u32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let set_u64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let get_u64 (s : string) off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) lor (b 4 lsl 32)
  lor (b 5 lsl 40) lor (b 6 lsl 48) lor (b 7 lsl 56)

let flip b off = Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xFF))

(* table entries are 32 bytes from offset 64 (§3); the table CRC sits
   right after the last entry (§3.2), the header CRC at byte 60 (§2.3) *)
let entry_base i = 64 + (32 * i)

let reseal_header b = set_u32 b 60 (crc32 (Bytes.sub_string b 0 60))

let reseal_table count b =
  set_u32 b (entry_base count) (crc32 (Bytes.sub_string b 64 (32 * count)))

let gen_store_fixtures dir =
  (* four token sequences with a repeating 3-name alphabet: small enough
     to eyeball in xxd, rich enough that every section is non-empty *)
  let text =
    "login view buy\nview view login buy\nbuy login view\nlogin login buy view\n"
  in
  let db, codec = Rgs_sequence.Seq_io.parse_tokens text in
  let good = Filename.concat dir "good.rgsdb" in
  Rgs_store.Store.write ~codec ~path:good db;
  let image = read_file good in
  let count = get_u64 image 16 in
  let mutant name f =
    let b = Bytes.of_string image in
    f b;
    write_file (Filename.concat dir name) (Bytes.to_string b)
  in
  (* §2.1: not a store at all *)
  mutant "bad_magic.rgsdb" (fun b -> flip b 0);
  (* §2.2: version checked before the header CRC, so no reseal needed *)
  mutant "wrong_version.rgsdb" (fun b -> set_u32 b 8 99);
  (* §2.3: a flipped digest byte breaks the header CRC *)
  mutant "bad_header_crc.rgsdb" (fun b -> flip b 40);
  (* §3.1: a resealed header declaring more entries than the file holds *)
  mutant "truncated_table.rgsdb" (fun b ->
      set_u64 b 16 1_000_000;
      reseal_header b);
  (* §3.1 still, but via the overflow route: 32·2^59 wraps a 63-bit int,
     so a reader that multiplies before comparing would accept the count
     and then walk a wrapped table *)
  mutant "huge_count.rgsdb" (fun b ->
      set_u64 b 16 (1 lsl 59);
      reseal_header b);
  (* §3.2: a flipped reserved byte inside entry 0 breaks the table CRC *)
  mutant "bad_table_crc.rgsdb" (fun b -> flip b (entry_base 0 + 4));
  (* §3.3: CPOS (entry 4) renamed — the unknown tag is ignored, the
     required section is gone *)
  mutant "missing_section.rgsdb" (fun b ->
      Bytes.blit_string "XPOS" 0 b (entry_base 4) 4;
      reseal_table count b);
  (* §3.4: EVTS (entry 2) offset nudged off the 8-byte grid *)
  mutant "misaligned_section.rgsdb" (fun b ->
      set_u64 b (entry_base 2 + 8) (get_u64 image (entry_base 2 + 8) + 4);
      reseal_table count b);
  (* §3.5: a flipped byte inside the EVTS payload — open must succeed,
     verify must fail *)
  mutant "bad_payload_crc.rgsdb" (fun b ->
      flip b (get_u64 image (entry_base 2 + 8)));
  (* §2.5: the first CSOF word (entry 3) bumped off zero — the prefix-sum
     invariant is broken, and because §2.5 is a framing check the open
     must reject it even though the payload CRCs are deferred *)
  mutant "bad_csof.rgsdb" (fun b ->
      set_u64 b (get_u64 image (entry_base 3 + 8)) 1);
  (* §3.6: NAME (entry 5, optional) renamed to an unknown tag — the store
     must still open, with no codec *)
  mutant "unknown_section.rgsdb" (fun b ->
      Bytes.blit_string "ZQQQ" 0 b (entry_base 5) 4;
      reseal_table count b);
  (* §3.6 again, adversarially: the unknown entry's offset/length point
     exabytes outside the file. Unknown sections are skipped wholesale,
     so both the open and a full verify must succeed without ever
     dereferencing them *)
  mutant "unknown_oob_section.rgsdb" (fun b ->
      Bytes.blit_string "ZOOB" 0 b (entry_base 5) 4;
      set_u64 b (entry_base 5 + 8) (1 lsl 40);
      set_u64 b (entry_base 5 + 16) (1 lsl 40);
      reseal_table count b);
  Printf.printf "wrote good.rgsdb + 12 mutant(s) to %s (%d sections)\n" dir count

let () =
  let dir = Sys.argv.(1) in
  let base = Filename.concat dir "full.ckpt" in
  let entry root = { Checkpoint.root; results = [] } in
  Checkpoint.write ~path:base ~fingerprint
    ~completed:[ entry 1; entry 2; entry 3 ]
    ~quarantined:[] ();
  let image = read_file base in
  let header, frames = frames_of image in
  let r1, r2, r3 =
    match frames with
    | [ a; b; c; _outcome ] -> (a, b, c)
    | _ -> failwith "expected 3 Root_done frames + 1 Run_outcome frame"
  in
  (* cut inside the third record's payload *)
  write_file
    (Filename.concat dir "truncated_mid_record.ckpt")
    (header ^ r1 ^ r2 ^ String.sub r3 0 (String.length r3 - 3));
  (* corrupt the CRC of the second record: only the first survives *)
  let bad = Bytes.of_string r2 in
  Bytes.set bad 4 (Char.chr (Char.code (Bytes.get bad 4) lxor 0xFF));
  write_file
    (Filename.concat dir "flipped_crc.ckpt")
    (header ^ r1 ^ Bytes.to_string bad ^ r3);
  write_file
    (Filename.concat dir "wrong_version.ckpt")
    (Printf.sprintf "RGS-CHECKPOINT\nv1 %s\n" fingerprint);
  write_file (Filename.concat dir "empty.ckpt") "";
  Printf.printf "wrote 5 fixture(s) to %s (fingerprint %s)\n" dir fingerprint;
  gen_store_fixtures dir
