(* Targeted regression tests for subtle algorithmic corners found during
   development. *)

open Rgs_sequence
open Rgs_core

let p = Pattern.of_string

(* CloSpan's equivalence pruning fires only in the safe direction (current
   pattern contained in an already-explored pattern with an identical
   projection). Construct a database where the unsafe direction (explored
   pattern contained in the current one) occurs: the closed output must
   still be exact. In {XAYB, XAYB, AB}: patterns "AB" and "XAB"/"AYB"
   interact through shared projected suffixes. *)
let test_clospan_unsafe_direction () =
  let db = Seqdb.of_strings [ "XAYB"; "XAYB"; "AB" ] in
  let got, _ = Rgs_baselines.Clospan.mine ~max_length:5 db ~min_sup:2 in
  let all, _ = Rgs_baselines.Prefixspan.mine ~max_length:5 db ~min_sup:2 in
  let expected = Rgs_baselines.Clospan.closed_filter all in
  Alcotest.(check (list (pair string int)))
    "exact closed set"
    (List.sort compare (List.map (fun (q, s) -> (Pattern.to_string q, s)) expected))
    (List.sort compare (List.map (fun (q, s) -> (Pattern.to_string q, s)) got))

(* max_patterns yields a PREFIX of the untruncated DFS enumeration. *)
let test_budget_prefix_property () =
  let db = Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ] in
  let idx = Inverted_index.build db in
  let full, _ = Gsgrow.mine idx ~min_sup:3 in
  let full_sigs = List.map (fun r -> Pattern.to_string r.Mined.pattern) full in
  List.iter
    (fun budget ->
      let part, stats = Gsgrow.mine ~max_patterns:budget idx ~min_sup:3 in
      Alcotest.(check int) (Printf.sprintf "budget %d count" budget) budget
        (List.length part);
      Alcotest.(check bool) "truncated" true stats.Gsgrow.truncated;
      let part_sigs = List.map (fun r -> Pattern.to_string r.Mined.pattern) part in
      Alcotest.(check (list string))
        (Printf.sprintf "budget %d prefix" budget)
        (List.filteri (fun i _ -> i < budget) full_sigs)
        part_sigs)
    [ 1; 5; 10; 22 ]

(* The closure pre-filter bound must never reject a genuinely equal-support
   extension: cross-check is_closed against the oracle on dense repetitive
   inputs where envelope regions are tight. *)
let test_prefilter_no_false_rejects () =
  let dbs =
    [
      Seqdb.of_strings [ "AAAA"; "AAA" ];
      Seqdb.of_strings [ "ABABAB"; "BABA" ];
      Seqdb.of_strings [ "ABCABCABC" ];
      Seqdb.of_strings [ "AABBAABB"; "ABAB" ];
    ]
  in
  List.iter
    (fun db ->
      let idx = Inverted_index.build db in
      let patterns = [ "A"; "AA"; "AB"; "ABA"; "ABC"; "BC"; "BB" ] in
      List.iter
        (fun s ->
          let pat = p s in
          let sup = Sup_comp.support idx pat in
          if sup > 0 then begin
            let freq = Brute_force.frequent db ~min_sup:sup in
            let closed_def =
              not
                (List.exists
                   (fun (q, sq) ->
                     sq = sup
                     && Pattern.length q > Pattern.length pat
                     && Pattern.is_subpattern pat ~of_:q)
                   freq)
            in
            Alcotest.(check bool)
              (Format.asprintf "%s closed in %a" s Seqdb.pp db)
              closed_def (Closure.is_closed idx pat)
          end)
        patterns)
    dbs

(* Instance growth with duplicate events in the pattern: the same database
   position may serve different pattern indices in different instances
   (the paper's ACA discussion, Example 3.1 step 3'). *)
let test_shared_position_across_indices () =
  let db = Seqdb.of_strings [ "ACDBACADD" ] in
  let idx = Inverted_index.build db in
  let landmarks = Sup_comp.landmarks idx (p "ACA") in
  let as_lists = List.map (fun (f : Instance.full) -> Array.to_list f.Instance.landmark) landmarks in
  (* (2,<1,2,5>) and (2,<5,6,7>) in the paper's S2 share position 5 at
     different indices *)
  Alcotest.(check (list (list int))) "ACA instances"
    [ [ 1; 2; 5 ]; [ 5; 6; 7 ] ] as_lists

(* Support sets returned by the miners stay internally consistent after
   truncation. *)
let test_truncated_results_valid () =
  let db =
    Rgs_datagen.Quest_gen.generate
      (Rgs_datagen.Quest_gen.params ~d:30 ~c:15 ~n:20 ~s:4 ~seed:3 ())
  in
  let idx = Inverted_index.build db in
  let results, _ = Clogsgrow.mine ~max_patterns:10 idx ~min_sup:5 in
  List.iter
    (fun r ->
      Alcotest.(check int) "support consistent" r.Mined.support
        (Sup_comp.support idx r.Mined.pattern);
      Alcotest.(check bool) "set well-formed" true
        (Support_set.well_formed r.Mined.support_set))
    results

let suite =
  [
    Alcotest.test_case "clospan unsafe direction" `Quick test_clospan_unsafe_direction;
    Alcotest.test_case "budget prefix property" `Quick test_budget_prefix_property;
    Alcotest.test_case "pre-filter no false rejects" `Quick test_prefilter_no_false_rejects;
    Alcotest.test_case "shared position across indices" `Quick test_shared_position_across_indices;
    Alcotest.test_case "truncated results valid" `Quick test_truncated_results_valid;
  ]
