(* Property-based tests (qcheck): the production algorithms against the
   exponential reference oracle on small random databases.

   Properties checked:
   - supComp computes the true maximum non-overlapping instance count
     (greedy leftmost is optimal, Lemma 4 / Theorem 2);
   - the computed support set is non-redundant and leftmost;
   - Apriori monotonicity (Lemma 1): growing a pattern never increases
     support; deleting any event never decreases it;
   - GSgrow output = exhaustive frequent set with exact supports;
   - CloGSgrow output = exhaustive closed set (soundness + completeness);
   - CloGSgrow invariance: disabling LBCheck does not change the output;
   - closure checking agrees with the definition of closedness;
   - sequential baselines agree with definition-level counting. *)

open Rgs_sequence
open Rgs_core

(* --- generators (shared in gens.ml) --- *)

let gen_db = Gens.db
let gen_pattern = Gens.pattern
let default_db = gen_db ~num_seqs:4 ~alphabet:3 ~max_len:8
let default_pattern = gen_pattern ~alphabet:3 ~max_len:4
let print_db = Gens.print_db
let print_pair = Gens.print_db_pattern
let make = Gens.make

(* --- properties --- *)

let prop_support_matches_oracle =
  make ~name:"supComp = exact maximum (oracle)" ~count:300
    QCheck2.Gen.(pair default_db default_pattern)
    print_pair
    (fun (db, p) ->
      let idx = Inverted_index.build db in
      Sup_comp.support idx p = Brute_force.support db p)

let prop_support_set_valid =
  make ~name:"support set: valid, non-redundant, right-shift sorted" ~count:300
    QCheck2.Gen.(pair default_db default_pattern)
    print_pair
    (fun (db, p) ->
      let full = Sup_comp.landmarks (Inverted_index.build db) p in
      (* all landmarks valid *)
      List.for_all
        (fun (f : Instance.full) ->
          Instance.is_landmark_of p (Seqdb.seq db f.Instance.fseq) f.Instance.landmark)
        full
      && (* pairwise non-overlapping *)
      List.for_all
        (fun f1 ->
          List.for_all
            (fun f2 -> f1 == f2 || Instance.non_overlapping f1 f2)
            full)
        full
      && (* sorted in right-shift order *)
      (let rec sorted = function
         | a :: (b :: _ as rest) ->
           Instance.right_shift_compare_full a b <= 0 && sorted rest
         | _ -> true
       in
       sorted full))

(* Leftmostness (Definition 3.2): against every support set that a
   brute-force search can find. Checking the defining inequality for ALL
   support sets is exponential, so we check a strong consequence that is
   cheap: for each k, the k-th instance's positions are component-wise <=
   those of the k-th instance of any maximum non-redundant set found by a
   randomised greedy. We approximate with the oracle's exhaustive landmark
   set: for each prefix length j, the leftmost set's j-th positions are the
   smallest reachable. Here we only verify the first and last positions
   (which the compressed representation exposes and the algorithms rely
   on). *)
let prop_leftmost_borders =
  make ~name:"leftmost: ends are minimal among maximum sets" ~count:150
    QCheck2.Gen.(pair (gen_db ~num_seqs:3 ~alphabet:3 ~max_len:7) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      let full = Sup_comp.landmarks (Inverted_index.build db) p in
      let sup = List.length full in
      sup = 0
      ||
      (* Build every maximum non-redundant set per sequence by exhaustive
         search and compare sorted end positions. *)
      let ok = ref true in
      Seqdb.iter
        (fun i s ->
          let ours =
            List.filter (fun (f : Instance.full) -> f.Instance.fseq = i) full
          in
          let all =
            List.map
              (fun landmark -> { Instance.fseq = i; landmark })
              (Brute_force.landmarks_in s p)
          in
          let target = List.length ours in
          if target > 0 then begin
            (* enumerate all maximum sets; compare element-wise minima of
               sorted end positions *)
            let best_ends = ref None in
            let arr = Array.of_list all in
            let n = Array.length arr in
            let rec search k chosen =
              if List.length chosen = target then begin
                let ends =
                  List.sort compare
                    (List.map
                       (fun (f : Instance.full) ->
                         f.Instance.landmark.(Array.length f.Instance.landmark - 1))
                       chosen)
                in
                match !best_ends with
                | None -> best_ends := Some ends
                | Some b -> best_ends := Some (List.map2 min b ends)
              end
              else if k < n then begin
                if List.for_all (Instance.non_overlapping arr.(k)) chosen then
                  search (k + 1) (arr.(k) :: chosen);
                search (k + 1) chosen
              end
            in
            search 0 [];
            let our_ends =
              List.sort compare
                (List.map
                   (fun (f : Instance.full) ->
                     f.Instance.landmark.(Array.length f.Instance.landmark - 1))
                   ours)
            in
            match !best_ends with
            | None -> ok := false
            | Some b -> if not (List.for_all2 ( <= ) our_ends b) then ok := false
          end)
        db;
      !ok)

let prop_apriori_growth =
  make ~name:"Apriori: sup(P ◦ e) <= sup(P)" ~count:300
    QCheck2.Gen.(triple default_db default_pattern (int_bound 2))
    (fun (db, p, e) -> print_pair (db, p) ^ Printf.sprintf "\nevent: %d" e)
    (fun (db, p, e) ->
      let idx = Inverted_index.build db in
      Sup_comp.support idx (Pattern.grow p e) <= Sup_comp.support idx p)

let prop_apriori_deletion =
  make ~name:"Apriori: deleting any event never lowers support" ~count:200
    QCheck2.Gen.(pair default_db (gen_pattern ~alphabet:3 ~max_len:4))
    print_pair
    (fun (db, p) ->
      let idx = Inverted_index.build db in
      let sup = Sup_comp.support idx p in
      let m = Pattern.length p in
      m < 2
      || List.for_all
           (fun j ->
             let arr = Pattern.to_array p in
             let shorter =
               Pattern.of_array
                 (Array.append (Array.sub arr 0 j) (Array.sub arr (j + 1) (m - j - 1)))
             in
             Sup_comp.support idx shorter >= sup)
           (List.init m Fun.id))

let results_set results =
  List.sort_uniq compare
    (List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results)

let oracle_set oracle =
  List.sort_uniq compare (List.map (fun (q, s) -> (Pattern.to_string q, s)) oracle)

let prop_gsgrow_complete =
  make ~name:"GSgrow = exhaustive frequent set" ~count:120
    QCheck2.Gen.(pair (gen_db ~num_seqs:3 ~alphabet:3 ~max_len:7) (int_range 1 4))
    (fun (db, ms) -> print_db db ^ Printf.sprintf "min_sup: %d" ms)
    (fun (db, min_sup) ->
      let idx = Inverted_index.build db in
      let got, _ = Gsgrow.mine idx ~min_sup in
      results_set got = oracle_set (Brute_force.frequent db ~min_sup))

let prop_clogsgrow_closed =
  make ~name:"CloGSgrow = exhaustive closed set" ~count:120
    QCheck2.Gen.(pair (gen_db ~num_seqs:3 ~alphabet:3 ~max_len:7) (int_range 1 4))
    (fun (db, ms) -> print_db db ^ Printf.sprintf "min_sup: %d" ms)
    (fun (db, min_sup) ->
      let idx = Inverted_index.build db in
      let got, _ = Clogsgrow.mine idx ~min_sup in
      results_set got = oracle_set (Brute_force.closed db ~min_sup))

let prop_clogsgrow_lb_invariant =
  make ~name:"CloGSgrow: LBCheck does not change the output" ~count:120
    QCheck2.Gen.(pair (gen_db ~num_seqs:3 ~alphabet:3 ~max_len:7) (int_range 1 4))
    (fun (db, ms) -> print_db db ^ Printf.sprintf "min_sup: %d" ms)
    (fun (db, min_sup) ->
      let idx = Inverted_index.build db in
      let with_lb, _ = Clogsgrow.mine idx ~min_sup in
      let without_lb, _ = Clogsgrow.mine ~use_lb_check:false idx ~min_sup in
      results_set with_lb = results_set without_lb)

let prop_closure_check_definition =
  make ~name:"CCheck agrees with closedness by definition" ~count:150
    QCheck2.Gen.(pair (gen_db ~num_seqs:3 ~alphabet:3 ~max_len:7) (gen_pattern ~alphabet:3 ~max_len:3))
    print_pair
    (fun (db, p) ->
      let idx = Inverted_index.build db in
      let sup = Sup_comp.support idx p in
      sup = 0
      ||
      (* definition: closed iff no frequent super-pattern (at threshold
         sup) properly contains p with equal support. *)
      let freq = Brute_force.frequent db ~min_sup:sup in
      let closed_def =
        not
          (List.exists
             (fun (q, s) ->
               s = sup
               && Pattern.length q > Pattern.length p
               && Pattern.is_subpattern p ~of_:q)
             freq)
      in
      Closure.is_closed idx p = closed_def)

let prop_insgrow_incremental =
  make ~name:"supComp(P ◦ e) = INSgrow(supComp(P), e)" ~count:300
    QCheck2.Gen.(triple default_db default_pattern (int_bound 2))
    (fun (db, p, e) -> print_pair (db, p) ^ Printf.sprintf "\nevent: %d" e)
    (fun (db, p, e) ->
      let idx = Inverted_index.build db in
      let grown_direct = Sup_comp.support_set idx (Pattern.grow p e) in
      let grown_incr = Support_set.grow idx (Sup_comp.support_set idx p) e in
      Support_set.equal grown_direct grown_incr)

let suite =
  [
    prop_support_matches_oracle;
    prop_support_set_valid;
    prop_leftmost_borders;
    prop_apriori_growth;
    prop_apriori_deletion;
    prop_gsgrow_complete;
    prop_clogsgrow_closed;
    prop_clogsgrow_lb_invariant;
    prop_closure_check_definition;
    prop_insgrow_incremental;
  ]
