(* The query layer, checked three ways against code that shares nothing
   with the engine:

   1. an oracle DFS — fifteen lines of naive pattern growth over
      Support_set, written here — must agree with the engine's mine-all
      on every random database and backend (and its closed subset, the
      patterns with no equal-support superpattern in the full output,
      must agree with CloGSgrow);
   2. the in-DFS targeted plan must return exactly the brute-force
      post-filter of mine-all (same order: targeted answers keep DFS
      order and containment filtering preserves it);
   3. the in-DFS top-k plan must return the same support multiset as
      sorting mine-all and truncating — patterns at the k boundary may
      tie differently, supports may not — and each answer must be a
      genuine mined pattern with its true support.

   Everything runs on all three index backends so the query plans cannot
   silently depend on one cursor implementation. The δ-cover post-pass is
   checked against its definition: every absorbed pattern is contained in
   its representative within the δ support band, every input pattern is
   accounted for exactly once, and the cover is deterministic. *)

open Rgs_sequence
open Rgs_core

let backends db =
  [
    Inverted_index.build_kind Inverted_index.Kcsr db;
    Inverted_index.build_kind Inverted_index.Klegacy db;
    Inverted_index.build_kind ~fanout:4 Inverted_index.Kpaged db;
  ]

let sig_of m = (Pattern.to_list m.Mined.pattern, m.Mined.support)
let sigs = List.map sig_of
let sorted l = List.sort compare l

(* --- oracle 1: naive mine-all, sharing no code with Engine --- *)

let oracle_mine_all ?max_length idx ~min_sup =
  let events = Inverted_index.frequent_events idx ~min_sup in
  let under_limit p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  let acc = ref [] in
  let rec go p i =
    acc := (Pattern.to_list p, Support_set.size i) :: !acc;
    if under_limit p then
      List.iter
        (fun e ->
          let i' = Support_set.grow idx i e in
          if Support_set.size i' >= min_sup then go (Pattern.grow p e) i')
        events
  in
  List.iter
    (fun e ->
      let i = Support_set.of_event idx e in
      if Support_set.size i >= min_sup then go (Pattern.of_list [ e ]) i)
    events;
  List.rev !acc

(* independent support replay: grow the leftmost support set from scratch *)
let oracle_support idx p =
  match p with
  | [] -> 0
  | e :: rest ->
    Support_set.size
      (List.fold_left
         (fun i e -> Support_set.grow idx i e)
         (Support_set.of_event idx e)
         rest)

(* Closed subset by Definition 2.4, checked against single-event
   insertions: if any proper supersequence has equal support then, by
   antimonotonicity, some length+1 insertion does too — so insertions are
   a complete witness set. Closedness is global (a witness may exceed the
   mining length cap), which is why this cannot be computed by filtering
   the capped output list against itself. *)
let oracle_closed idx ~min_sup all =
  let events = Inverted_index.frequent_events idx ~min_sup in
  List.filter
    (fun (p, sup) ->
      let pat = Pattern.of_list p in
      not
        (List.exists
           (fun at ->
             List.exists
               (fun e ->
                 oracle_support idx
                   (Pattern.to_list (Pattern.insert pat ~at e))
                 = sup)
               events)
           (List.init (List.length p + 1) Fun.id)))
    all

let mine_with ?max_length ~mode ~query idx ~min_sup =
  let cfg =
    Miner.config ~mode ~query ?max_length ~min_sup ()
  in
  (Miner.mine_indexed cfg idx).Miner.results

let db_gen = Gens.db ~num_seqs:6 ~alphabet:5 ~max_len:12

(* --- 1: oracle vs engine, all and closed, every backend --- *)

let prop_oracle_vs_engine =
  Gens.make ~name:"oracle DFS = engine mine-all; its closed subset = CloGSgrow"
    ~count:120 db_gen Gens.print_db (fun db ->
      List.for_all
        (fun idx ->
          let expect = oracle_mine_all ~max_length:4 idx ~min_sup:2 in
          let all =
            sigs (mine_with ~max_length:4 ~mode:Miner.All ~query:Query.All idx
                    ~min_sup:2)
          in
          let closed =
            sigs (mine_with ~max_length:4 ~mode:Miner.Closed ~query:Query.All
                    idx ~min_sup:2)
          in
          all = expect
          && sorted closed = sorted (oracle_closed idx ~min_sup:2 expect))
        (backends db))

(* --- 2: in-DFS targeted = brute-force post-filter, exact order --- *)

let target_gen =
  QCheck2.Gen.(
    pair db_gen (list_size (int_range 1 3) (int_bound 4) >|= Pattern.of_list))

let print_db_target (db, t) =
  Printf.sprintf "db:\n%s\ntarget: %s" (Gens.print_db db) (Pattern.to_string t)

let prop_targeted_vs_post_filter =
  Gens.make ~name:"targeted query = post-filtered mine-all (both modes)"
    ~count:120 target_gen print_db_target (fun (db, target) ->
      List.for_all
        (fun idx ->
          List.for_all
            (fun mode ->
              let all =
                mine_with ~max_length:4 ~mode ~query:Query.All idx ~min_sup:2
              in
              let expect =
                List.filter
                  (fun m ->
                    Pattern.is_subpattern target ~of_:m.Mined.pattern)
                  all
              in
              let got =
                mine_with ~max_length:4 ~mode
                  ~query:(Query.Targeted target) idx ~min_sup:2
              in
              sigs got = sigs expect)
            [ Miner.All; Miner.Closed ])
        (backends db))

(* --- 3: in-DFS top-k: same supports as sort-and-truncate, true answers --- *)

let topk_gen = QCheck2.Gen.(pair db_gen (int_range 1 8))

let print_db_k (db, k) =
  Printf.sprintf "db:\n%s\nk: %d" (Gens.print_db db) k

let prop_topk_vs_sort_truncate =
  Gens.make ~name:"top-k query = sorted-truncated mine-all (both modes)"
    ~count:120 topk_gen print_db_k (fun (db, k) ->
      List.for_all
        (fun idx ->
          List.for_all
            (fun mode ->
              let all =
                mine_with ~max_length:4 ~mode ~query:Query.All idx ~min_sup:2
              in
              let expect =
                List.filteri
                  (fun i _ -> i < k)
                  (List.sort Mined.compare_by_support_desc all)
              in
              let got =
                mine_with ~max_length:4 ~mode ~query:(Query.Top_k k) idx
                  ~min_sup:2
              in
              (* the k boundary may tie differently; the supports may not *)
              List.length got = List.length expect
              && sorted (List.map (fun m -> m.Mined.support) got)
                 = sorted (List.map (fun m -> m.Mined.support) expect)
              (* every answer is a genuinely mined pattern, true support *)
              && List.for_all (fun m -> List.mem (sig_of m) (sigs all)) got
              (* and the report is presented support-descending *)
              && List.map sig_of (List.sort Mined.compare_by_support_desc got)
                 = sigs got)
            [ Miner.All; Miner.Closed ])
        (backends db))

(* --- the root-partitioned driver must agree with the in-process one --- *)

let prop_resumable_matches_indexed =
  Gens.make ~name:"mine_resumable agrees with mine_indexed on queries"
    ~count:40 topk_gen print_db_k (fun (db, k) ->
      let idx = Inverted_index.build db in
      let check query ~compare_sigs =
        let cfg = Miner.config ~query ~max_length:4 ~min_sup:2 () in
        let direct = (Miner.mine_indexed cfg idx).Miner.results in
        let partitioned = (Miner.mine_resumable cfg db).Miner.results in
        if compare_sigs then sorted (sigs direct) = sorted (sigs partitioned)
        else
          sorted (List.map (fun m -> m.Mined.support) direct)
          = sorted (List.map (fun m -> m.Mined.support) partitioned)
      in
      check Query.All ~compare_sigs:true
      && check (Query.Targeted (Pattern.of_list [ 0 ])) ~compare_sigs:true
      && check (Query.Top_k k) ~compare_sigs:false)

(* --- δ-cover: definitional properties + determinism --- *)

let prop_delta_cover =
  Gens.make ~name:"delta-cover: sound, complete, deterministic" ~count:80
    QCheck2.Gen.(pair db_gen (float_range 0.0 1.0))
    (fun (db, delta) ->
      Printf.sprintf "db:\n%s\ndelta: %f" (Gens.print_db db) delta)
    (fun (db, delta) ->
      let idx = Inverted_index.build db in
      let results = mine_with ~max_length:4 ~mode:Miner.Closed
          ~query:Query.All idx ~min_sup:2
      in
      let covers = Rgs_post.Compress.delta_cover ~delta results in
      let again = Rgs_post.Compress.delta_cover ~delta results in
      let absorbed_ok =
        List.for_all
          (fun c ->
            List.for_all
              (fun p ->
                Pattern.is_subpattern p.Mined.pattern
                  ~of_:c.Rgs_post.Compress.representative.Mined.pattern
                && float_of_int
                     (p.Mined.support
                     - c.Rgs_post.Compress.representative.Mined.support)
                   <= delta *. float_of_int p.Mined.support)
              c.Rgs_post.Compress.covered)
          covers
      in
      let accounted =
        List.concat_map
          (fun c ->
            c.Rgs_post.Compress.representative :: c.Rgs_post.Compress.covered)
          covers
      in
      absorbed_ok
      && sorted (sigs accounted) = sorted (sigs results)
      && List.length covers <= List.length results
      && sigs (Rgs_post.Compress.representatives covers)
         = sigs (Rgs_post.Compress.representatives again))

(* --- pruning actually happens (not just correct answers) --- *)

let test_query_prunes_search () =
  let db =
    Rgs_datagen.Quest_gen.generate
      (Rgs_datagen.Quest_gen.params ~d:25 ~c:10 ~n:25 ~s:3 ~seed:11 ())
  in
  let idx = Inverted_index.build db in
  let nodes query =
    Metrics.reset ();
    ignore (mine_with ~max_length:4 ~mode:Miner.All ~query idx ~min_sup:3);
    Metrics.value Metrics.dfs_nodes
  in
  let full = nodes Query.All in
  let topk = nodes (Query.Top_k 5) in
  let targeted = nodes (Query.Targeted (Pattern.of_list [ 0; 1; 2 ])) in
  Alcotest.(check bool)
    (Printf.sprintf "top-k expands fewer nodes (%d < %d)" topk full)
    true (topk < full);
  Alcotest.(check bool)
    (Printf.sprintf "targeted expands fewer nodes (%d < %d)" targeted full)
    true (targeted < full);
  (* the cuts are observable in the query metrics *)
  Metrics.reset ();
  ignore
    (mine_with ~max_length:4 ~mode:Miner.All
       ~query:(Query.Targeted (Pattern.of_list [ 0; 1; 2 ]))
       idx ~min_sup:3);
  Alcotest.(check bool) "query_targeted_cuts counted" true
    (Metrics.value Metrics.query_targeted_cuts > 0);
  Metrics.reset ();
  ignore (mine_with ~max_length:4 ~mode:Miner.All ~query:(Query.Top_k 5) idx
            ~min_sup:3);
  Alcotest.(check bool) "query_floor_prunes counted" true
    (Metrics.value Metrics.query_floor_prunes > 0)

let suite =
  [
    prop_oracle_vs_engine;
    prop_targeted_vs_post_filter;
    prop_topk_vs_sort_truncate;
    prop_resumable_matches_indexed;
    prop_delta_cover;
    Alcotest.test_case "query plans prune the DFS" `Quick
      test_query_prunes_search;
  ]
