(* Tests for the future-work extensions: gap-constrained repetitive mining
   (Section V) and pattern-based sequence features / classification. *)

open Rgs_sequence
open Rgs_core

let p = Pattern.of_string

(* --- Gap_constrained --- *)

let test_gap_grow_basic () =
  (* S = ABAB, pattern AB, max_gap 0: only adjacent pairs *)
  let idx = Inverted_index.build (Seqdb.of_strings [ "ABAB" ]) in
  Alcotest.(check int) "gap 0" 2 (Gap_constrained.support idx ~max_gap:0 (p "AB"));
  let idx = Inverted_index.build (Seqdb.of_strings [ "ACBAB" ]) in
  Alcotest.(check int) "gap 0 blocks C" 1 (Gap_constrained.support idx ~max_gap:0 (p "AB"));
  Alcotest.(check int) "gap 1 allows C" 2 (Gap_constrained.support idx ~max_gap:1 (p "AB"))

let test_gap_skip_not_break () =
  (* S = AAB with gap 0: the leftmost A cannot reach B, but the second can.
     A break-style growth would report 0; skip-style reports 1. *)
  let idx = Inverted_index.build (Seqdb.of_strings [ "AAB" ]) in
  Alcotest.(check int) "skip recovers" 1 (Gap_constrained.support idx ~max_gap:0 (p "AB"))

let test_gap_matches_paper_example () =
  (* Zhang-style gaps on Example 1.1's S1: 4 occurrences of AB with gaps
     0..3 — but the non-overlapping count is 2 (A@1/A@2 -> B@3 shares B). *)
  let db = Seqdb.of_strings [ "AABCDABB" ] in
  let idx = Inverted_index.build db in
  Alcotest.(check int) "non-overlap, gaps<=3" 2
    (Gap_constrained.support idx ~max_gap:3 (p "AB"));
  Alcotest.(check int) "oracle agrees" 2 (Brute_force.support ~max_gap:3 db (p "AB"))

let test_gap_unbounded_equals_unconstrained () =
  let db = Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ] in
  let idx = Inverted_index.build db in
  List.iter
    (fun s ->
      Alcotest.(check int) s
        (Sup_comp.support idx (p s))
        (Gap_constrained.support idx ~max_gap:100 (p s)))
    [ "A"; "AB"; "ACB"; "ACA"; "AA"; "ACAD" ]

let test_gap_mine_sound () =
  let db = Seqdb.of_strings [ "ABABAB"; "AABB"; "ABBA" ] in
  let idx = Inverted_index.build db in
  let results, stats = Gap_constrained.mine idx ~max_gap:1 ~min_sup:2 in
  Alcotest.(check bool) "found some" true (stats.Gap_constrained.patterns > 0);
  List.iter
    (fun r ->
      let exact = Brute_force.support ~max_gap:1 db r.Mined.pattern in
      Alcotest.(check bool)
        (Printf.sprintf "%s: greedy %d <= exact %d >= min_sup"
           (Pattern.to_string r.Mined.pattern) r.Mined.support exact)
        true
        (r.Mined.support <= exact && exact >= 2))
    results

let test_min_gap () =
  (* two-sided gap requirement: with min_gap = 1 adjacent pairs no longer
     count. *)
  let p = Pattern.of_string in
  (* ABAB: adjacent pairs excluded; only A@1 -> B@4 (gap 2) survives *)
  let db0 = Seqdb.of_strings [ "ABAB" ] in
  let idx = Inverted_index.build db0 in
  Alcotest.(check int) "adjacent excluded" 1
    (Gap_constrained.support ~min_gap:1 idx ~max_gap:3 (p "AB"));
  Alcotest.(check int) "oracle agrees on ABAB" 1
    (Brute_force.support ~min_gap:1 ~max_gap:3 db0 (p "AB"));
  Alcotest.(check int) "min_gap 3 excludes all" 0
    (Gap_constrained.support ~min_gap:3 idx ~max_gap:5 (p "AB"));
  let db = Seqdb.of_strings [ "ACBACB" ] in
  let idx = Inverted_index.build db in
  Alcotest.(check int) "gap exactly 1 kept" 2
    (Gap_constrained.support ~min_gap:1 idx ~max_gap:1 (p "AB"));
  Alcotest.(check int) "oracle agrees" 2
    (Brute_force.support ~min_gap:1 ~max_gap:1 db (p "AB"));
  Alcotest.check_raises "min > max"
    (Invalid_argument "Gap_constrained: min_gap > max_gap") (fun () ->
      ignore (Gap_constrained.support ~min_gap:3 idx ~max_gap:1 (p "AB")))

let test_gap_validation () =
  let idx = Inverted_index.build (Seqdb.of_strings [ "AB" ]) in
  Alcotest.check_raises "negative gap"
    (Invalid_argument "Gap_constrained: max_gap must be >= 0") (fun () ->
      ignore (Gap_constrained.mine idx ~max_gap:(-1) ~min_sup:1));
  Alcotest.check_raises "min_sup"
    (Invalid_argument "Gap_constrained.mine: min_sup must be >= 1") (fun () ->
      ignore (Gap_constrained.mine idx ~max_gap:1 ~min_sup:0))

(* qcheck: greedy gap-constrained support is a lower bound of the exact
   gap-constrained support. *)
let prop_gap_lower_bound =
  let gen =
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 3)
           (list_size (int_bound 7) (int_bound 2)))
        (list_size (int_range 1 3) (int_bound 2))
        (int_bound 3))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"gap-constrained greedy <= exact" ~count:300
       ~print:(fun (seqs, pat, gap) ->
         Printf.sprintf "seqs=%s pat=%s gap=%d"
           (String.concat ";"
              (List.map (fun s -> String.concat "," (List.map string_of_int s)) seqs))
           (String.concat "," (List.map string_of_int pat))
           gap)
       gen
       (fun (seqs, pat, gap) ->
         let db = Seqdb.of_sequences (List.map Sequence.of_list seqs) in
         let idx = Inverted_index.build db in
         let pattern = Pattern.of_list pat in
         Gap_constrained.support idx ~max_gap:gap pattern
         <= Brute_force.support ~max_gap:gap db pattern))

(* --- Features / classification --- *)

let repeaters_and_oneshots () =
  (* 6 repeaters (ABABAB...) and 6 one-shots (ABCD) *)
  let seqs =
    List.init 12 (fun k -> if k < 6 then "CABABABD" else "ABCD")
  in
  Seqdb.of_strings seqs

let test_feature_matrix () =
  let db = repeaters_and_oneshots () in
  let report = Rgs_core.Miner.mine ~config:(Miner.config ~min_sup:12 ()) db in
  let m = Rgs_post.Features.feature_matrix ~num_sequences:(Seqdb.size db) report.Miner.results in
  Alcotest.(check int) "12 rows" 12 (Array.length m.Rgs_post.Features.counts);
  (* the AB column separates the groups *)
  let ab_col =
    match
      Array.to_list m.Rgs_post.Features.patterns
      |> List.mapi (fun j q -> (j, q))
      |> List.find_opt (fun (_, q) -> Pattern.equal q (p "AB"))
    with
    | Some (j, _) -> j
    | None -> Alcotest.fail "AB not mined"
  in
  Array.iteri
    (fun i row ->
      let expected = if i < 6 then 3 else 1 in
      Alcotest.(check int) (Printf.sprintf "row %d" i) expected row.(ab_col))
    m.Rgs_post.Features.counts

let test_discriminative_and_classify () =
  let db = repeaters_and_oneshots () in
  let report = Rgs_core.Miner.mine ~config:(Miner.config ~min_sup:12 ()) db in
  let m = Rgs_post.Features.feature_matrix ~num_sequences:(Seqdb.size db) report.Miner.results in
  let labels = Array.init 12 (fun i -> i < 6) in
  let scored = Rgs_post.Features.discriminative_scores m ~labels in
  (* the best discriminator must involve the repeated AB behaviour, not CD *)
  let best, best_score = scored.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "best=%s score=%.2f" (Pattern.to_string best) best_score)
    true
    (Pattern.is_subpattern (p "AB") ~of_:best && best_score > 1.0);
  let top = Rgs_post.Features.select_top 2 scored in
  Alcotest.(check int) "top-2" 2 (List.length top);
  (* nearest-centroid separates the training data perfectly *)
  let model = Rgs_post.Features.train_nearest_centroid m ~labels in
  Array.iteri
    (fun i row ->
      Alcotest.(check bool) (Printf.sprintf "classify row %d" i) labels.(i)
        (Rgs_post.Features.classify model row))
    m.Rgs_post.Features.counts;
  (* unseen sequences *)
  let fresh = Rgs_post.Features.features_of_sequence db ~patterns:m.Rgs_post.Features.patterns 1 in
  Alcotest.(check bool) "fresh repeater" true (Rgs_post.Features.classify model fresh)

let test_features_validation () =
  let db = repeaters_and_oneshots () in
  let report = Rgs_core.Miner.mine ~config:(Miner.config ~min_sup:12 ()) db in
  let m = Rgs_post.Features.feature_matrix ~num_sequences:(Seqdb.size db) report.Miner.results in
  Alcotest.check_raises "bad labels length"
    (Invalid_argument "Features: labels length must match the number of sequences")
    (fun () -> ignore (Rgs_post.Features.discriminative_scores m ~labels:[| true |]));
  Alcotest.check_raises "one-group labels"
    (Invalid_argument "Features: both groups must be non-empty") (fun () ->
      ignore
        (Rgs_post.Features.discriminative_scores m ~labels:(Array.make 12 true)))

let suite =
  [
    Alcotest.test_case "gap grow basic" `Quick test_gap_grow_basic;
    Alcotest.test_case "gap skip-not-break" `Quick test_gap_skip_not_break;
    Alcotest.test_case "gap paper example" `Quick test_gap_matches_paper_example;
    Alcotest.test_case "gap unbounded = unconstrained" `Quick test_gap_unbounded_equals_unconstrained;
    Alcotest.test_case "gap mine sound" `Quick test_gap_mine_sound;
    Alcotest.test_case "gap min_gap" `Quick test_min_gap;
    Alcotest.test_case "gap validation" `Quick test_gap_validation;
    prop_gap_lower_bound;
    Alcotest.test_case "feature matrix" `Quick test_feature_matrix;
    Alcotest.test_case "discriminative + classify" `Quick test_discriminative_and_classify;
    Alcotest.test_case "features validation" `Quick test_features_validation;
  ]
