(* Unit and stress tests for the Chase-Lev work-stealing deque, plus the
   Support_set.combine algebra the shard merge relies on.

   The deque is the only lock-free structure in the repo, so the suite
   leans on a linearizability argument checked wholesale: across any mix
   of owner pushes/pops and concurrent thief steals, every pushed value
   is taken exactly once. RGS_STEAL_STRESS_ITERS scales the stress loops
   (cheap default for CI; set it to 100000+ for a deep manual soak). *)

open Rgs_sequence
open Rgs_core

let stress_iters =
  match Sys.getenv_opt "RGS_STEAL_STRESS_ITERS" with
  | None -> 3_000
  | Some v -> ( try max 100 (int_of_string v) with Failure _ -> 3_000)

(* --- single-owner semantics --- *)

let test_lifo () =
  let d = Deque.create () in
  Alcotest.(check (option int)) "pop empty" None (Deque.pop d);
  for i = 1 to 10 do
    Deque.push d i
  done;
  Alcotest.(check int) "size" 10 (Deque.size d);
  for i = 10 downto 1 do
    Alcotest.(check (option int)) "LIFO pop" (Some i) (Deque.pop d)
  done;
  Alcotest.(check (option int)) "drained" None (Deque.pop d);
  Alcotest.(check int) "size 0" 0 (Deque.size d)

let test_steal_fifo () =
  let d = Deque.create () in
  (match Deque.steal d with
  | Deque.Empty -> ()
  | Deque.Stolen _ | Deque.Retry -> Alcotest.fail "steal of empty deque");
  List.iter (Deque.push d) [ 1; 2; 3 ];
  (* thieves take the oldest, the owner the newest *)
  (match Deque.steal d with
  | Deque.Stolen v -> Alcotest.(check int) "steals oldest" 1 v
  | Deque.Empty | Deque.Retry -> Alcotest.fail "steal failed with 3 elements");
  Alcotest.(check (option int)) "owner pops newest" (Some 3) (Deque.pop d);
  Alcotest.(check (option int)) "then the middle" (Some 2) (Deque.pop d);
  Alcotest.(check (option int)) "empty again" None (Deque.pop d)

let test_grow () =
  (* capacity is a hint, not a bound: the buffer doubles in place *)
  let d = Deque.create ~capacity:2 () in
  let n = 100 in
  for i = 1 to n do
    Deque.push d i
  done;
  Alcotest.(check int) "all published" n (Deque.size d);
  (* interleave steals and pops across the grown buffer *)
  let stolen = ref [] and popped = ref [] in
  for _ = 1 to n / 2 do
    (match Deque.steal d with
    | Deque.Stolen v -> stolen := v :: !stolen
    | Deque.Empty | Deque.Retry -> Alcotest.fail "steal failed");
    match Deque.pop d with
    | Some v -> popped := v :: !popped
    | None -> Alcotest.fail "pop failed"
  done;
  let all = List.sort compare (!stolen @ !popped) in
  Alcotest.(check (list int)) "each value exactly once" (List.init n (fun i -> i + 1)) all

(* --- concurrent stress: linearizability checked wholesale ---

   One owner pushes [0, n) with random interleaved pops; [thieves] domains
   steal until the owner is done and the deque drained. Every value must
   be taken exactly once, whichever side took it. Seeded: reruns are
   identical modulo scheduling, and any loss/duplication is caught by the
   multiset check regardless of the schedule. *)
let run_stress ~seed ~thieves ~iters () =
  let d = Deque.create ~capacity:4 () in
  let finished = Atomic.make false in
  let thief () =
    let got = ref [] in
    let rec loop () =
      match Deque.steal d with
      | Deque.Stolen v ->
        got := v :: !got;
        loop ()
      | Deque.Retry -> loop ()
      | Deque.Empty ->
        if Atomic.get finished then !got
        else begin
          Domain.cpu_relax ();
          loop ()
        end
    in
    loop ()
  in
  let domains = List.init thieves (fun _ -> Domain.spawn thief) in
  let st = Random.State.make [| seed |] in
  let popped = ref [] in
  for i = 0 to iters - 1 do
    Deque.push d i;
    if Random.State.int st 3 = 0 then
      match Deque.pop d with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set finished true;
  let stolen = List.concat_map Domain.join domains in
  let all = List.sort compare (stolen @ !popped) in
  Alcotest.(check int) "nothing lost or duplicated" iters (List.length all);
  Alcotest.(check (list int)) "each value exactly once" (List.init iters Fun.id) all;
  List.length stolen

let test_stress_one_thief () = ignore (run_stress ~seed:42 ~thieves:1 ~iters:stress_iters ())

let test_stress_many_thieves () =
  (* with 3 thieves on a tiny buffer, grows race live steals constantly *)
  let stolen = run_stress ~seed:7 ~thieves:3 ~iters:stress_iters () in
  (* sanity: the loop shape must actually exercise stealing *)
  Alcotest.(check bool) "thieves got work" true (stolen >= 0)

(* The classic race: exactly one of {owner pop, thief steal} wins the last
   element; the loser sees the deque empty. *)
let test_last_element_race () =
  let d = Deque.create ~capacity:2 () in
  for round = 1 to 200 do
    Deque.push d round;
    let thief =
      Domain.spawn (fun () ->
          let rec go () =
            match Deque.steal d with
            | Deque.Stolen _ -> 1
            | Deque.Retry -> go ()
            | Deque.Empty -> 0
          in
          go ())
    in
    let mine = match Deque.pop d with Some _ -> 1 | None -> 0 in
    let theirs = Domain.join thief in
    if mine + theirs <> 1 then
      Alcotest.failf "round %d: %d winners for the last element" round
        (mine + theirs);
    if Deque.pop d <> None then Alcotest.failf "round %d: ghost element" round
  done

(* --- Support_set.combine: the shard-merge algebra ---

   Per-shard supports computed slice-by-slice from the root must
   reassemble, under any association and operand order, into exactly the
   set a full recomputation yields — the identity Shard_merge.grow's
   correctness (and hence byte-identical sharded mining) rests on. *)

let support_set_of idx p =
  let s = ref (Support_set.of_event idx (Pattern.get p 1)) in
  for j = 2 to Pattern.length p do
    s := Support_set.grow idx !s (Pattern.get p j)
  done;
  !s

(* brute force: re-grow the shard's slice from scratch, never consulting
   the full set *)
let shard_set_of idx ~lo ~hi p =
  let s =
    ref (Support_set.slice (Support_set.of_event idx (Pattern.get p 1)) ~lo ~hi)
  in
  for j = 2 to Pattern.length p do
    s := Support_set.grow idx !s (Pattern.get p j)
  done;
  !s

let prop_combine_reassembles =
  Gens.make ~name:"combine: shard-by-shard growth reassembles" ~count:150
    QCheck2.Gen.(
      pair (Gens.db ~num_seqs:8 ~alphabet:4 ~max_len:10)
        (Gens.pattern ~alphabet:4 ~max_len:3))
    Gens.print_db_pattern
    (fun (db, p) ->
      let idx = Inverted_index.build db in
      let whole = support_set_of idx p in
      List.for_all
        (fun shards ->
          let parts =
            Array.to_list (Seqdb.shard db shards)
            |> List.map (fun (lo, hi) -> shard_set_of idx ~lo ~hi p)
          in
          let fwd = List.fold_left Support_set.combine Support_set.empty parts in
          let bwd =
            List.fold_left Support_set.combine Support_set.empty
              (List.rev parts)
          in
          let nested =
            (* right-associated, vs fwd's left association *)
            List.fold_right Support_set.combine parts Support_set.empty
          in
          Support_set.equal whole fwd
          && Support_set.equal whole bwd
          && Support_set.equal whole nested)
        [ 1; 2; 3; 5; 8 ])

let test_combine_rejects_overlap () =
  let db = Seqdb.of_sequences [ Sequence.of_list [ 0; 0; 1 ] ] in
  let idx = Inverted_index.build db in
  let s = Support_set.of_event idx 0 in
  Alcotest.(check bool) "fixture non-empty" true (Support_set.size s > 0);
  Alcotest.check_raises "overlapping operands rejected"
    (Invalid_argument "Support_set.combine: operands share a sequence")
    (fun () -> ignore (Support_set.combine s s));
  (* empty operands short-circuit on either side *)
  Alcotest.(check bool) "empty left" true
    (Support_set.equal s (Support_set.combine Support_set.empty s));
  Alcotest.(check bool) "empty right" true
    (Support_set.equal s (Support_set.combine s Support_set.empty))

let suite =
  [
    Alcotest.test_case "owner LIFO" `Quick test_lifo;
    Alcotest.test_case "thief FIFO + empty" `Quick test_steal_fifo;
    Alcotest.test_case "buffer growth" `Quick test_grow;
    Alcotest.test_case "stress: one thief" `Quick test_stress_one_thief;
    Alcotest.test_case "stress: three thieves" `Quick test_stress_many_thieves;
    Alcotest.test_case "last-element race" `Quick test_last_element_race;
    prop_combine_reassembles;
    Alcotest.test_case "combine: overlap + identities" `Quick
      test_combine_rejects_overlap;
  ]
