(* Integration tests: the Miner facade, budgets/should_stop, metrics, and
   cross-algorithm consistency on generated datasets. *)

open Rgs_sequence
open Rgs_core

let table3 = Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ]

let test_miner_facade () =
  let report = Miner.mine ~min_sup:3 table3 in
  Alcotest.(check int) "closed count" 7 (List.length report.Miner.results);
  Alcotest.(check bool) "not truncated" false report.Miner.truncated;
  let all = Miner.mine ~config:(Miner.config ~mode:Miner.All ~min_sup:3 ()) table3 in
  Alcotest.(check int) "all count" 23 (List.length all.Miner.results);
  Alcotest.check_raises "no arguments"
    (Invalid_argument "Miner.mine: provide ~config or ~min_sup") (fun () ->
      ignore (Miner.mine table3))

let test_miner_max_patterns () =
  let config = Miner.config ~mode:Miner.All ~min_sup:3 ~max_patterns:5 () in
  let report = Miner.mine ~config table3 in
  Alcotest.(check int) "budget respected" 5 (List.length report.Miner.results);
  Alcotest.(check bool) "marked truncated" true report.Miner.truncated

let test_miner_max_length () =
  let config = Miner.config ~mode:Miner.All ~min_sup:3 ~max_length:2 () in
  let report = Miner.mine ~config table3 in
  Alcotest.(check bool) "length bound" true
    (List.for_all (fun r -> Pattern.length r.Mined.pattern <= 2) report.Miner.results);
  (* 1- and 2-event frequent patterns of the running example *)
  Alcotest.(check int) "count" 13 (List.length report.Miner.results)

let test_should_stop_immediate () =
  let idx = Inverted_index.build table3 in
  let _, stats = Gsgrow.mine ~should_stop:(fun () -> true) idx ~min_sup:3 in
  Alcotest.(check bool) "gsgrow truncated" true stats.Gsgrow.truncated;
  let _, cstats = Clogsgrow.mine ~should_stop:(fun () -> true) idx ~min_sup:3 in
  Alcotest.(check bool) "clogsgrow truncated" true cstats.Clogsgrow.truncated

let test_landmarks_and_support () =
  Alcotest.(check int) "support helper" 3 (Miner.support table3 (Pattern.of_string "ACB"));
  let landmarks = Miner.landmarks table3 (Pattern.of_string "ACB") in
  Alcotest.(check int) "landmark count" 3 (List.length landmarks)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_pp_report () =
  let report = Miner.mine ~min_sup:3 table3 in
  let text = Format.asprintf "%a" (fun ppf r -> Miner.pp_report ~limit:3 ppf r) report in
  Alcotest.(check bool) "mentions total" true (contains_substring text "7 patterns");
  (* limit 3 of 7: a "more" line must appear *)
  Alcotest.(check bool) "mentions more-line" true (contains_substring text "4 more")

(* Cross-check GSgrow vs CloGSgrow on generated data: every closed pattern
   is frequent with the same support, and for every frequent pattern there
   is a closed super-pattern with the same support. *)
let test_cross_check_generated () =
  let db =
    Rgs_datagen.Quest_gen.generate
      (Rgs_datagen.Quest_gen.params ~d:40 ~c:12 ~n:30 ~s:4 ~seed:5 ())
  in
  let idx = Inverted_index.build db in
  let min_sup = 8 in
  let all, _ = Gsgrow.mine ~max_length:5 idx ~min_sup in
  let closed, _ = Clogsgrow.mine ~max_length:5 idx ~min_sup in
  Alcotest.(check bool) "closed smaller" true (List.length closed <= List.length all);
  let all_map = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace all_map (Pattern.to_string r.Mined.pattern) r.Mined.support) all;
  List.iter
    (fun r ->
      match Hashtbl.find_opt all_map (Pattern.to_string r.Mined.pattern) with
      | Some sup -> Alcotest.(check int) "closed in all" sup r.Mined.support
      | None -> Alcotest.fail "closed pattern missing from GSgrow output")
    closed;
  (* caution: closed super-pattern may exceed max_length 5; only check
     frequent patterns of length < 5 *)
  List.iter
    (fun r ->
      if Pattern.length r.Mined.pattern < 5 then
        Alcotest.(check bool)
          (Printf.sprintf "closed cover for %s" (Pattern.to_string r.Mined.pattern))
          true
          (List.exists
             (fun c ->
               c.Mined.support = r.Mined.support
               && Pattern.is_subpattern r.Mined.pattern ~of_:c.Mined.pattern)
             closed))
    all

let test_config_variants () =
  (* the four execution paths of the facade agree where they should *)
  let closed = Miner.mine ~min_sup:3 table3 in
  let paged =
    Miner.mine ~config:(Miner.config ~min_sup:3 ~paged_index:true ()) table3
  in
  let parallel = Miner.mine ~config:(Miner.config ~min_sup:3 ~domains:2 ()) table3 in
  let signatures r =
    List.map (fun x -> (Pattern.to_string x.Mined.pattern, x.Mined.support)) r.Miner.results
  in
  Alcotest.(check (list (pair string int))) "paged = flat" (signatures closed)
    (signatures paged);
  Alcotest.(check (list (pair string int))) "parallel = sequential" (signatures closed)
    (signatures parallel);
  (* gap-constrained path *)
  let gapped = Miner.mine ~config:(Miner.config ~min_sup:3 ~max_gap:50 ()) table3 in
  Alcotest.(check int) "unbounded gap = all frequent patterns" 23
    (List.length gapped.Miner.results);
  (* invalid combinations *)
  Alcotest.check_raises "domains + max_patterns"
    (Invalid_argument "Miner: domains cannot be combined with max_patterns") (fun () ->
      ignore
        (Miner.mine ~config:(Miner.config ~min_sup:3 ~domains:2 ~max_patterns:5 ()) table3));
  Alcotest.check_raises "domains + max_gap"
    (Invalid_argument "Miner: domains cannot be combined with max_gap") (fun () ->
      ignore (Miner.mine ~config:(Miner.config ~min_sup:3 ~domains:2 ~max_gap:1 ()) table3))

let test_metrics_counters () =
  Metrics.reset ();
  Alcotest.(check (list (pair string int))) "reset empties" [] (Metrics.dump ());
  let idx = Inverted_index.build table3 in
  ignore (Clogsgrow.mine idx ~min_sup:3);
  let dump = Metrics.dump () in
  Alcotest.(check bool) "insgrow counted" true (List.mem_assoc "insgrow_calls" dump);
  Alcotest.(check bool) "bound checks counted" true
    (List.mem_assoc "closure_bound_checks" dump)

let test_support_set_well_formed_everywhere () =
  let db =
    Rgs_datagen.Trace_gen.generate
      (Rgs_datagen.Trace_gen.params ~num_sequences:30 ~num_events:20 ~seed:3 ())
  in
  let idx = Inverted_index.build db in
  let results, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup:10 in
  Alcotest.(check bool) "nonempty" true (results <> []);
  List.iter
    (fun r ->
      Alcotest.(check bool) "well-formed" true (Support_set.well_formed r.Mined.support_set);
      Alcotest.(check int) "size = support" r.Mined.support
        (Support_set.size r.Mined.support_set))
    results

(* Mid-size determinism check: a fixed seed must always yield the same
   dataset and the same mined pattern counts — catches regressions in the
   generators and in the miners at a scale where subtle bugs surface. *)
let test_midsize_determinism () =
  let db =
    Rgs_datagen.Quest_gen.generate
      (Rgs_datagen.Quest_gen.params ~d:150 ~c:18 ~n:60 ~s:5 ~seed:2026 ())
  in
  let idx = Inverted_index.build db in
  let all_1, _ = Gsgrow.mine ~max_length:5 idx ~min_sup:12 in
  let all_2, _ = Gsgrow.mine ~max_length:5 idx ~min_sup:12 in
  Alcotest.(check int) "gsgrow deterministic" (List.length all_1) (List.length all_2);
  let closed, _ = Clogsgrow.mine ~max_length:5 idx ~min_sup:12 in
  Alcotest.(check bool) "closed smaller" true (List.length closed < List.length all_1);
  (* every closed pattern's support matches a fresh supComp *)
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Pattern.to_string r.Mined.pattern)
        (Sup_comp.support idx r.Mined.pattern)
        r.Mined.support)
    closed

let suite =
  [
    Alcotest.test_case "facade" `Quick test_miner_facade;
    Alcotest.test_case "mid-size determinism" `Slow test_midsize_determinism;
    Alcotest.test_case "max_patterns budget" `Quick test_miner_max_patterns;
    Alcotest.test_case "max_length bound" `Quick test_miner_max_length;
    Alcotest.test_case "should_stop" `Quick test_should_stop_immediate;
    Alcotest.test_case "landmarks/support helpers" `Quick test_landmarks_and_support;
    Alcotest.test_case "pp_report" `Quick test_pp_report;
    Alcotest.test_case "cross-check on generated data" `Quick test_cross_check_generated;
    Alcotest.test_case "config variants" `Quick test_config_variants;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "support sets well-formed" `Quick test_support_set_well_formed_everywhere;
  ]
