(* Tests for the observability layer: the Trace ring buffer and its Chrome
   trace_event export, and the Metrics registry with snapshot/diff.

   The golden test parses the exported JSON back with a minimal parser and
   checks the schema Chrome/Perfetto require (ph, ts, dur, pid/tid) plus
   span nesting: every node-level instant falls inside a root span. The
   counter-consistency tests pin the invariant that the trace and the
   Metrics registry are two views of the same run: per-kind event counts
   equal the metric deltas. *)

open Rgs_sequence
open Rgs_core

(* --- minimal JSON parser (objects/arrays/strings/numbers) --- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Parse of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> raise (Parse (Printf.sprintf "expected '%c' at offset %d" c !pos))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        match peek () with
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some c -> Buffer.add_char buf c
          | None -> raise (Parse "eof in string escape"));
          advance ();
          loop ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
        | None -> raise (Parse "eof in string")
      in
      loop ();
      Buffer.contents buf
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> raise (Parse "expected ',' or '}' in object")
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elems (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> raise (Parse "expected ',' or ']' in array")
          in
          Arr (elems [])
        end
      | Some 't' ->
        pos := !pos + 4;
        Bool true
      | Some 'f' ->
        pos := !pos + 5;
        Bool false
      | Some 'n' ->
        pos := !pos + 4;
        Null
      | Some _ ->
        let start = !pos in
        let is_num = function
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        in
        while (match peek () with Some c -> is_num c | None -> false) do
          advance ()
        done;
        if !pos = start then raise (Parse "unexpected character");
        Num (float_of_string (String.sub s start (!pos - start)))
      | None -> raise (Parse "unexpected eof")
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then raise (Parse "trailing garbage");
    v

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

  let get k j =
    match member k j with
    | Some v -> v
    | None -> raise (Parse (Printf.sprintf "missing member %S" k))

  let to_arr = function Arr l -> l | _ -> raise (Parse "not an array")
  let to_str = function Str s -> s | _ -> raise (Parse "not a string")
  let to_num = function Num f -> f | _ -> raise (Parse "not a number")
end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_temp_file f =
  let path = Filename.temp_file "rgs-test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* the paper's Table III database *)
let table3 = lazy (Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ])

let kind_count trace k =
  match List.assoc_opt k (Trace.counts trace) with Some n -> n | None -> 0

(* --- golden Chrome export: schema and span nesting --- *)

let test_chrome_golden () =
  let idx = Inverted_index.build (Lazy.force table3) in
  let trace = Trace.create ~level:Trace.Nodes () in
  let results, _ = Clogsgrow.mine ~trace idx ~min_sup:2 in
  Alcotest.(check bool) "mined something" true (results <> []);
  with_temp_file (fun path ->
      Trace.write_chrome path trace;
      let doc = Json.parse (read_file path) in
      Alcotest.(check string)
        "displayTimeUnit" "ms"
        (Json.to_str (Json.get "displayTimeUnit" doc));
      let events = Json.to_arr (Json.get "traceEvents" doc) in
      Alcotest.(check bool) "has events" true (events <> []);
      (* every event satisfies the trace_event schema *)
      List.iter
        (fun e ->
          ignore (Json.to_str (Json.get "name" e));
          ignore (Json.to_num (Json.get "pid" e));
          ignore (Json.to_num (Json.get "tid" e));
          match Json.to_str (Json.get "ph" e) with
          | "X" ->
            ignore (Json.to_num (Json.get "ts" e));
            ignore (Json.to_num (Json.get "dur" e))
          | "i" ->
            ignore (Json.to_num (Json.get "ts" e));
            Alcotest.(check string) "instant scope" "t"
              (Json.to_str (Json.get "s" e))
          | "M" -> ignore (Json.get "args" e)
          | ph -> Alcotest.failf "unexpected ph %S" ph)
        events;
      let named name =
        List.filter (fun e -> Json.to_str (Json.get "name" e) = name) events
      in
      (* one root span per frequent size-1 pattern (A, B, C, D) *)
      let roots = named "root" in
      Alcotest.(check int) "root spans" 4 (List.length roots);
      List.iter
        (fun e ->
          Alcotest.(check string) "root is a span" "X"
            (Json.to_str (Json.get "ph" e)))
        roots;
      (* span nesting: every node-level instant lies inside a root span on
         the same thread (ts are microseconds; compare with 1ns slack) *)
      let root_bounds =
        List.map
          (fun e ->
            ( Json.to_num (Json.get "tid" e),
              Json.to_num (Json.get "ts" e),
              Json.to_num (Json.get "ts" e) +. Json.to_num (Json.get "dur" e) ))
          roots
      in
      let eps = 0.001 in
      List.iter
        (fun name ->
          List.iter
            (fun e ->
              let tid = Json.to_num (Json.get "tid" e) in
              let ts = Json.to_num (Json.get "ts" e) in
              let nested =
                List.exists
                  (fun (rtid, lo, hi) ->
                    rtid = tid && ts >= lo -. eps && ts <= hi +. eps)
                  root_bounds
              in
              if not nested then
                Alcotest.failf "%s instant at ts=%f outside every root span"
                  name ts)
            (named name))
        [ "node"; "extension"; "closure_check"; "lb_prune" ];
      (* node instants made it to the export *)
      Alcotest.(check int) "node instants exported"
        (kind_count trace Trace.Node)
        (List.length (named "node"));
      (* events are time-ordered as documented *)
      let rec sorted = function
        | a :: (b :: _ as rest) -> a.Trace.ts_ns <= b.Trace.ts_ns && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "events time-ordered" true (sorted (Trace.events trace)))

(* --- counter consistency: trace counts == Metrics deltas --- *)

let random_dbs =
  lazy
    [
      Lazy.force table3;
      Rgs_datagen.Quest_gen.generate
        (Rgs_datagen.Quest_gen.params ~d:40 ~c:12 ~n:30 ~s:4 ~seed:7 ());
      Rgs_datagen.Trace_gen.generate
        (Rgs_datagen.Trace_gen.params ~num_sequences:30 ~num_events:15 ~seed:8 ());
    ]

let test_counter_consistency_closed () =
  List.iter
    (fun db ->
      let idx = Inverted_index.build db in
      let trace = Trace.create ~level:Trace.Nodes ~capacity:(1 lsl 18) () in
      let before = Metrics.snapshot () in
      let results, stats = Clogsgrow.mine ~max_length:4 ~trace idx ~min_sup:3 in
      let delta = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      Alcotest.(check int) "no ring drops" 0 (Trace.dropped trace);
      Alcotest.(check int) "node instants = dfs_nodes delta"
        (Metrics.find delta "dfs_nodes")
        (kind_count trace Trace.Node);
      Alcotest.(check int) "node instants = stats.dfs_nodes"
        stats.Clogsgrow.dfs_nodes
        (kind_count trace Trace.Node);
      Alcotest.(check int) "lb_prune instants = lb_prunes delta"
        (Metrics.find delta "lb_prunes")
        (kind_count trace Trace.Lb_prune);
      Alcotest.(check int) "patterns_emitted delta = |results|"
        (List.length results)
        (Metrics.find delta "patterns_emitted"))
    (Lazy.force random_dbs)

let test_counter_consistency_all () =
  List.iter
    (fun db ->
      let idx = Inverted_index.build db in
      let trace = Trace.create ~level:Trace.Nodes ~capacity:(1 lsl 18) () in
      let before = Metrics.snapshot () in
      let results, _ = Gsgrow.mine ~max_length:3 ~trace idx ~min_sup:3 in
      let delta = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      Alcotest.(check int) "no ring drops" 0 (Trace.dropped trace);
      (* every GSgrow DFS node emits its pattern *)
      Alcotest.(check int) "node instants = dfs_nodes delta = |results|"
        (Metrics.find delta "dfs_nodes")
        (kind_count trace Trace.Node);
      Alcotest.(check int) "patterns_emitted delta = |results|"
        (List.length results)
        (Metrics.find delta "patterns_emitted"))
    (Lazy.force random_dbs)

(* --- ring wrap-around keeps the newest events and counts drops --- *)

let test_ring_wrap () =
  let trace = Trace.create ~level:Trace.Nodes ~capacity:8 () in
  for i = 1 to 20 do
    Trace.instant trace Trace.Node ~a0:i ~a1:0
  done;
  Alcotest.(check int) "retained" 8 (List.length (Trace.events trace));
  Alcotest.(check int) "dropped" 12 (Trace.dropped trace);
  let a0s =
    List.sort compare (List.map (fun e -> e.Trace.a0) (Trace.events trace))
  in
  Alcotest.(check (list int)) "newest kept" [ 13; 14; 15; 16; 17; 18; 19; 20 ] a0s

(* --- disabled tracing is inert --- *)

let test_disabled () =
  Alcotest.(check bool) "null roots off" false (Trace.roots_on Trace.null);
  Alcotest.(check bool) "null nodes off" false (Trace.nodes_on Trace.null);
  Alcotest.(check int) "null now = 0" 0 (Trace.now Trace.null);
  Trace.instant Trace.null Trace.Node ~a0:1 ~a1:2;
  Trace.span Trace.null Trace.Root ~a0:1 ~a1:2 ~start:0;
  Alcotest.(check int) "null records nothing" 0
    (List.length (Trace.events Trace.null));
  Alcotest.(check bool) "create Off is null" true
    (Trace.create ~level:Trace.Off () == Trace.null);
  let tr = Trace.create ~level:Trace.Roots () in
  Trace.instant tr Trace.Node ~a0:1 ~a1:1;
  Trace.instant tr Trace.Closure_check ~a0:0 ~a1:1;
  Trace.instant tr Trace.Budget_stop ~a0:1 ~a1:0;
  Alcotest.(check int) "Roots level gates node kinds" 1
    (List.length (Trace.events tr))

(* --- budget stops reach both the trace and the metric --- *)

let test_budget_stop_traced () =
  let idx = Inverted_index.build (Lazy.force table3) in
  let trace = Trace.create ~level:Trace.Roots () in
  let before = Metrics.snapshot () in
  let budget = Budget.create ~max_nodes:1 () in
  let _, stats = Clogsgrow.mine ~budget ~trace idx ~min_sup:2 in
  let delta = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
  Alcotest.(check bool) "run truncated" true stats.Clogsgrow.truncated;
  Alcotest.(check int) "budget_stop instant" 1
    (kind_count trace Trace.Budget_stop);
  Alcotest.(check int) "budget_stops metric" 1 (Metrics.find delta "budget_stops")

(* --- parallel runs: per-domain buffers, worker spans, live-words gauge --- *)

let test_parallel_worker_spans () =
  let db = List.nth (Lazy.force random_dbs) 1 in
  let idx = Inverted_index.build db in
  let trace = Trace.create ~level:Trace.Roots () in
  let before = Metrics.snapshot () in
  let results, _ =
    Parallel_miner.mine_closed ~domains:3 ~max_length:3 ~trace idx ~min_sup:5
  in
  let delta = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
  Alcotest.(check int) "worker spans = domains" 3 (kind_count trace Trace.Worker);
  Alcotest.(check int) "pool_workers metric = domains" 3
    (Metrics.find delta "pool_workers");
  let num_roots =
    List.length (Inverted_index.frequent_events idx ~min_sup:5)
  in
  Alcotest.(check int) "root spans = frequent roots" num_roots
    (kind_count trace Trace.Root);
  Alcotest.(check int) "patterns_emitted delta = |results|"
    (List.length results)
    (Metrics.find delta "patterns_emitted");
  (* claimed roots recorded in worker spans sum to the root count *)
  let claimed =
    List.fold_left
      (fun acc e -> if e.Trace.kind = Trace.Worker then acc + e.Trace.a1 else acc)
      0 (Trace.events trace)
  in
  Alcotest.(check int) "claimed roots sum" num_roots claimed

let test_peak_live_words_parallel () =
  let db = List.nth (Lazy.force random_dbs) 1 in
  let idx = Inverted_index.build db in
  Metrics.reset ();
  ignore (Parallel_miner.mine_closed ~domains:2 ~max_length:3 idx ~min_sup:5);
  (* regression: the gauge used to be sampled only on the main domain by
     benches; now every pool worker samples its own domain at exit *)
  Alcotest.(check bool) "pool workers sample peak_live_words" true
    (Metrics.value Metrics.peak_live_words > 0)

let test_checkpoint_write_span () =
  with_temp_file (fun path ->
      let trace = Trace.create ~level:Trace.Roots () in
      let before = Metrics.snapshot () in
      let cfg = Miner.config ~min_sup:2 () in
      let report =
        Miner.mine_resumable ~checkpoint:path ~trace cfg (Lazy.force table3)
      in
      let delta = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      Alcotest.(check bool) "completed" true
        (report.Miner.outcome = Budget.Completed);
      (* v2 log: one Checkpoint_write span per completed root; the
         checkpoint_writes metric additionally counts the header write and
         the final Run_outcome record *)
      let spans = kind_count trace Trace.Checkpoint_write in
      Alcotest.(check bool) "one span per completed root" true (spans >= 1);
      Alcotest.(check int) "checkpoint_writes metric" (spans + 2)
        (Metrics.find delta "checkpoint_writes"))

(* --- Metrics registry --- *)

let test_metrics_registry () =
  let c = Metrics.register "test_trace_scratch" Metrics.Counter in
  (match Metrics.register "test_trace_scratch" Metrics.Counter with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate register should raise");
  let g = Metrics.register "test_trace_scratch_gauge" Metrics.Gauge in
  let before = Metrics.snapshot () in
  Metrics.add c 5;
  Metrics.observe_max g 7;
  let after = Metrics.snapshot () in
  let delta = Metrics.diff ~before ~after in
  Alcotest.(check int) "counter diff subtracts" 5
    (Metrics.find delta "test_trace_scratch");
  Alcotest.(check int) "gauge diff keeps after" 7
    (Metrics.find delta "test_trace_scratch_gauge");
  Metrics.add c 3;
  let delta2 = Metrics.diff ~before:after ~after:(Metrics.snapshot ()) in
  Alcotest.(check int) "second window" 3
    (Metrics.find delta2 "test_trace_scratch");
  Alcotest.(check int) "absent metric reads 0" 0
    (Metrics.find delta2 "no_such_metric")

let test_metrics_export_formats () =
  let snap = Metrics.snapshot () in
  let prom = Format.asprintf "%a" Metrics.pp_prometheus snap in
  Alcotest.(check bool) "prometheus TYPE line" true
    (let needle = "# TYPE rgs_dfs_nodes counter" in
     let rec contains i =
       i + String.length needle <= String.length prom
       && (String.sub prom i (String.length needle) = needle || contains (i + 1))
     in
     contains 0);
  let json = Format.asprintf "%a" Metrics.pp_json snap in
  let doc = Json.parse json in
  let entry = Json.get "dfs_nodes" doc in
  Alcotest.(check string) "kind field" "counter"
    (Json.to_str (Json.get "kind" entry));
  ignore (Json.to_num (Json.get "value" entry));
  (* write_stats dispatches on the suffix *)
  with_temp_file (fun path ->
      Metrics.write_stats ~path snap;
      ignore (Json.parse (read_file path)))

(* --- rgsminer --trace-ring: a bounded ring drops the oldest events and
       surfaces the loss as the trace_dropped_events counter --- *)

let test_trace_ring_e2e () =
  let exe =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "bin" "rgsminer.exe"))
  in
  if not (Sys.file_exists exe) then Alcotest.fail "rgsminer.exe not built";
  let data =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      (Filename.concat ".." (Filename.concat "data" "quest_small.txt"))
  in
  with_temp_file (fun trace_path ->
      with_temp_file (fun stats_path ->
          let cmd =
            Printf.sprintf
              "%s --min-sup 3 --max-length 3 --trace %s --trace-level nodes \
               --trace-ring 64 --stats %s %s >/dev/null 2>/dev/null"
              (Filename.quote exe) (Filename.quote trace_path)
              (Filename.quote stats_path) (Filename.quote data)
          in
          Alcotest.(check int) "exit code" 0 (Sys.command cmd);
          (* quest_small at min_sup 3 has thousands of DFS nodes: a 64-slot
             ring must overflow and count every dropped event *)
          let stats = Json.parse (read_file stats_path) in
          let dropped =
            int_of_float (Json.to_num (Json.get "value" (Json.get "trace_dropped_events" stats)))
          in
          Alcotest.(check bool) "drops counted" true (dropped > 0);
          (* the export holds only what the ring retained *)
          let doc = Json.parse (read_file trace_path) in
          let events = Json.to_arr (Json.get "traceEvents" doc) in
          Alcotest.(check bool) "export bounded" true
            (List.length events > 0 && List.length events <= 64 + 8)))

let suite =
  [
    Alcotest.test_case "chrome export golden" `Quick test_chrome_golden;
    Alcotest.test_case "counters = trace (closed)" `Quick
      test_counter_consistency_closed;
    Alcotest.test_case "counters = trace (all)" `Quick test_counter_consistency_all;
    Alcotest.test_case "ring wrap-around" `Quick test_ring_wrap;
    Alcotest.test_case "disabled tracing inert" `Quick test_disabled;
    Alcotest.test_case "budget stop traced" `Quick test_budget_stop_traced;
    Alcotest.test_case "parallel worker spans" `Quick test_parallel_worker_spans;
    Alcotest.test_case "parallel peak_live_words" `Quick
      test_peak_live_words_parallel;
    Alcotest.test_case "checkpoint write span" `Quick test_checkpoint_write_span;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics export formats" `Quick test_metrics_export_formats;
    Alcotest.test_case "--trace-ring e2e" `Quick test_trace_ring_e2e;
  ]
