(* Tests for WINEPI episode mining and CSV export. *)

open Rgs_sequence
open Rgs_core

let p = Pattern.of_string

(* --- Winepi --- *)

let test_winepi_matches_counter () =
  let s = Sequence.of_string "AABCDABB" in
  let results, stats = Rgs_baselines.Winepi.mine s ~w:4 ~min_sup:3 in
  Alcotest.(check bool) "found some" true (stats.Rgs_baselines.Winepi.episodes > 0);
  (* every reported support matches the definition-level counter *)
  List.iter
    (fun (q, sup) ->
      Alcotest.(check int) (Pattern.to_string q) (Rgs_baselines.Episode.window_support s q ~w:4) sup;
      Alcotest.(check bool) "meets threshold" true (sup >= 3))
    results;
  (* AB has support 4 >= 3: it must be reported *)
  Alcotest.(check bool) "AB reported" true
    (List.exists (fun (q, _) -> Pattern.equal q (p "AB")) results)

let test_winepi_complete () =
  (* exhaustive cross-check on a small sequence *)
  let s = Sequence.of_string "ABCABC" in
  let w = 3 and min_sup = 2 in
  let results, _ = Rgs_baselines.Winepi.mine s ~w ~min_sup in
  let got = List.sort compare (List.map (fun (q, c) -> (Pattern.to_string q, c)) results) in
  (* oracle: enumerate all patterns over {A,B,C} up to length 3 *)
  let expected = ref [] in
  let events = [ 0; 1; 2 ] in
  let rec enum q =
    List.iter
      (fun e ->
        let q' = Pattern.grow q e in
        let sup = Rgs_baselines.Episode.window_support s q' ~w in
        if sup >= min_sup then begin
          expected := (Pattern.to_string q', sup) :: !expected;
          if Pattern.length q' < w then enum q'
        end)
      events
  in
  enum Pattern.empty;
  Alcotest.(check (list (pair string int))) "complete" (List.sort compare !expected) got

let test_winepi_frequency () =
  let s = Sequence.of_string "AABCDABB" in
  Alcotest.(check (float 0.0001)) "AB at w=4" (4. /. 5.)
    (Rgs_baselines.Winepi.frequency s (p "AB") ~w:4);
  Alcotest.check_raises "bad w" (Invalid_argument "Winepi.mine: w must be >= 1")
    (fun () -> ignore (Rgs_baselines.Winepi.mine s ~w:0 ~min_sup:1))

(* --- Export --- *)

let mined s sup = { Mined.pattern = p s; support = sup; support_set = Support_set.empty }

let test_results_csv () =
  let csv = Rgs_post.Export.results_to_csv [ mined "AB" 4; mined "ACB" 3 ] in
  Alcotest.(check string) "csv"
    "pattern,length,support\nAB,2,4\nACB,3,3\n" csv

let test_results_csv_with_codec () =
  let codec = Codec.of_names [ "lock, acquire"; "unlock" ] in
  let r = { Mined.pattern = Pattern.of_list [ 0; 1 ]; support = 7; support_set = Support_set.empty } in
  let csv = Rgs_post.Export.results_to_csv ~codec [ r ] in
  (* the comma inside the event name forces quoting *)
  Alcotest.(check string) "quoted"
    "pattern,length,support\n\"lock, acquire unlock\",2,7\n" csv

let test_features_csv () =
  let db = Seqdb.of_strings [ "ABAB"; "AB" ] in
  let report = Miner.mine ~config:(Miner.config ~mode:Miner.All ~min_sup:3 ()) db in
  let m = Rgs_post.Features.feature_matrix ~num_sequences:2 report.Miner.results in
  let csv = Rgs_post.Export.features_to_csv m in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "row ids" true
    (String.length (List.nth lines 1) > 0 && (List.nth lines 1).[0] = '1')

let test_report_csv () =
  let t = Rgs_post.Report.create ~columns:[ "x"; "y" ] in
  Rgs_post.Report.add_row t [ "1"; "hello" ];
  Rgs_post.Report.add_row t [ "2"; "wo,rld" ];
  Alcotest.(check string) "csv" "x,y\n1,hello\n2,\"wo,rld\"\n"
    (Rgs_post.Export.report_to_csv t)

let test_save_roundtrip () =
  let path = Filename.temp_file "rgs_export" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rgs_post.Export.save path "a,b\n1,2\n";
      let ic = open_in path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "roundtrip" "a,b\n1,2\n" contents)

let suite =
  [
    Alcotest.test_case "winepi matches counter" `Quick test_winepi_matches_counter;
    Alcotest.test_case "winepi complete" `Quick test_winepi_complete;
    Alcotest.test_case "winepi frequency" `Quick test_winepi_frequency;
    Alcotest.test_case "results csv" `Quick test_results_csv;
    Alcotest.test_case "results csv quoting" `Quick test_results_csv_with_codec;
    Alcotest.test_case "features csv" `Quick test_features_csv;
    Alcotest.test_case "report csv" `Quick test_report_csv;
    Alcotest.test_case "save roundtrip" `Quick test_save_roundtrip;
  ]
