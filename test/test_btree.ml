(* Tests for the B+-tree position store and the B-tree-backed index
   (Section III-D's memory-constrained alternative). *)

open Rgs_sequence

let test_build_and_list () =
  let keys = Array.init 100 (fun i -> (i * 3) + 1) in
  let t = Btree.of_sorted_array ~fanout:4 keys in
  Alcotest.(check int) "length" 100 (Btree.length t);
  Alcotest.(check (list int)) "roundtrip" (Array.to_list keys) (Btree.to_list t);
  Alcotest.(check bool) "multi-level" true (Btree.depth t > 1)

let test_empty_and_single () =
  let empty = Btree.of_sorted_array [||] in
  Alcotest.(check int) "empty length" 0 (Btree.length empty);
  Alcotest.(check (option int)) "empty successor" None (Btree.successor empty 0);
  Alcotest.(check int) "empty count" 0 (Btree.count_in empty ~lo:0 ~hi:10);
  let one = Btree.of_sorted_array [| 5 |] in
  Alcotest.(check (option int)) "single successor" (Some 5) (Btree.successor one 0);
  Alcotest.(check (option int)) "single successor above" None (Btree.successor one 5);
  Alcotest.(check int) "depth 1" 1 (Btree.depth one)

let test_validation () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Btree.of_sorted_array: keys must be strictly increasing")
    (fun () -> ignore (Btree.of_sorted_array [| 3; 2 |]));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Btree.of_sorted_array: keys must be strictly increasing")
    (fun () -> ignore (Btree.of_sorted_array [| 2; 2 |]));
  Alcotest.check_raises "fanout"
    (Invalid_argument "Btree.of_sorted_array: fanout < 2") (fun () ->
      ignore (Btree.of_sorted_array ~fanout:1 [| 1 |]))

(* successor / rank / mem agree with linear scans, across fanouts *)
let test_queries_exhaustive () =
  List.iter
    (fun fanout ->
      let keys = Array.of_list [ 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233 ] in
      let t = Btree.of_sorted_array ~fanout keys in
      for k = 0 to 250 do
        let expected = Array.fold_left (fun acc x -> if x > k then min acc x else acc) max_int keys in
        let expected = if expected = max_int then None else Some expected in
        Alcotest.(check (option int)) (Printf.sprintf "succ f%d k%d" fanout k)
          expected (Btree.successor t k);
        Alcotest.(check bool) (Printf.sprintf "mem f%d k%d" fanout k)
          (Array.exists (fun x -> x = k) keys)
          (Btree.mem t k)
      done;
      for lo = 0 to 50 do
        for hi = lo to 60 do
          let expected =
            Array.fold_left (fun acc x -> if x > lo && x < hi then acc + 1 else acc) 0 keys
          in
          Alcotest.(check int) (Printf.sprintf "count f%d (%d,%d)" fanout lo hi)
            expected (Btree.count_in t ~lo ~hi)
        done
      done)
    [ 2; 3; 4; 16; 64 ]

let test_to_array () =
  Alcotest.(check (list int)) "empty" []
    (Array.to_list (Btree.to_array (Btree.of_sorted_array [||])));
  List.iter
    (fun fanout ->
      List.iter
        (fun n ->
          let keys = Array.init n (fun i -> (i * 2) + 1) in
          let t = Btree.of_sorted_array ~fanout keys in
          let arr = Btree.to_array t in
          Alcotest.(check (list int))
            (Printf.sprintf "f%d n%d" fanout n)
            (Array.to_list keys) (Array.to_list arr);
          (* fresh array, not a view into the tree *)
          if n > 0 then begin
            arr.(0) <- -1;
            Alcotest.(check (list int))
              (Printf.sprintf "f%d n%d unaliased" fanout n)
              (Array.to_list keys)
              (Array.to_list (Btree.to_array t))
          end)
        [ 0; 1; 2; 7; 64; 257 ])
    [ 2; 3; 16 ]

(* qcheck: tree queries = array binary-search queries on random key sets *)
let prop_btree_equals_array =
  let gen =
    QCheck2.Gen.(
      pair (list_size (int_bound 60) (int_bound 200)) (int_bound 8 >|= fun f -> f + 2))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"btree = sorted array semantics" ~count:300
       ~print:(fun (keys, fanout) ->
         Printf.sprintf "keys=[%s] fanout=%d"
           (String.concat ";" (List.map string_of_int keys))
           fanout)
       gen
       (fun (keys, fanout) ->
         let sorted = List.sort_uniq compare keys in
         let arr = Array.of_list sorted in
         let t = Btree.of_sorted_array ~fanout arr in
         Btree.to_list t = sorted
         && List.for_all
              (fun k ->
                let linear =
                  List.fold_left
                    (fun acc x -> if x > k && (acc = None || x < Option.get acc) then Some x else acc)
                    None sorted
                in
                Btree.successor t k = linear)
              (List.init 40 (fun k -> k * 5))))

(* the paged backend answers exactly like the array backend *)
let test_index_equivalence () =
  let db =
    Rgs_datagen.Trace_gen.generate
      (Rgs_datagen.Trace_gen.params ~num_sequences:20 ~num_events:15 ~seed:9 ())
  in
  let flat = Inverted_index.build db in
  let paged = Inverted_index.build_paged ~fanout:4 db in
  Alcotest.(check bool) "flat not paged" false (Inverted_index.is_paged flat);
  Alcotest.(check bool) "paged is paged" true (Inverted_index.is_paged paged);
  Alcotest.(check (list int)) "events" (Inverted_index.events flat)
    (Inverted_index.events paged);
  List.iter
    (fun e ->
      Alcotest.(check int) "occurrence_count"
        (Inverted_index.occurrence_count flat e)
        (Inverted_index.occurrence_count paged e);
      Seqdb.iter
        (fun i s ->
          Alcotest.(check (list int))
            (Printf.sprintf "positions e%d S%d" e i)
            (Array.to_list (Inverted_index.positions flat ~seq:i e))
            (Array.to_list (Inverted_index.positions paged ~seq:i e));
          for lowest = 0 to Sequence.length s do
            Alcotest.(check (option int))
              (Printf.sprintf "next e%d S%d l%d" e i lowest)
              (Inverted_index.next flat ~seq:i e ~lowest)
              (Inverted_index.next paged ~seq:i e ~lowest)
          done;
          for lo = 0 to min 10 (Sequence.length s) do
            let hi = lo + 7 in
            Alcotest.(check int)
              (Printf.sprintf "count e%d S%d (%d,%d)" e i lo hi)
              (Inverted_index.count_between flat ~seq:i e ~lo ~hi)
              (Inverted_index.count_between paged ~seq:i e ~lo ~hi)
          done)
        db)
    (Inverted_index.events flat);
  Alcotest.(check (list int)) "frequent"
    (Inverted_index.frequent_events flat ~min_sup:10)
    (Inverted_index.frequent_events paged ~min_sup:10)

(* and mining on the paged backend yields identical results *)
let test_paged_mining_equivalence () =
  let db =
    Rgs_datagen.Quest_gen.generate
      (Rgs_datagen.Quest_gen.params ~d:40 ~c:12 ~n:30 ~s:4 ~seed:5 ())
  in
  let signatures (results, _) =
    List.map
      (fun r -> (Rgs_core.Pattern.to_string r.Rgs_core.Mined.pattern, r.Rgs_core.Mined.support))
      results
  in
  let flat = Inverted_index.build db in
  let paged = Inverted_index.build_paged ~fanout:4 db in
  Alcotest.(check (list (pair string int))) "gsgrow"
    (signatures (Rgs_core.Gsgrow.mine ~max_length:4 flat ~min_sup:8))
    (signatures (Rgs_core.Gsgrow.mine ~max_length:4 paged ~min_sup:8));
  Alcotest.(check (list (pair string int))) "clogsgrow"
    (signatures (Rgs_core.Clogsgrow.mine ~max_length:4 flat ~min_sup:8))
    (signatures (Rgs_core.Clogsgrow.mine ~max_length:4 paged ~min_sup:8))

let suite =
  [
    Alcotest.test_case "build and list" `Quick test_build_and_list;
    Alcotest.test_case "empty and single" `Quick test_empty_and_single;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "queries exhaustive" `Quick test_queries_exhaustive;
    Alcotest.test_case "to_array" `Quick test_to_array;
    prop_btree_equals_array;
    Alcotest.test_case "index equivalence" `Quick test_index_equivalence;
    Alcotest.test_case "paged mining equivalence" `Quick test_paged_mining_equivalence;
  ]
