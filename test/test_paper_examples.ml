(* Every worked example of the paper, checked literally.

   Table II database: S1 = ABCABCA, S2 = AABBCCC.
   Table III database: S1 = ABCACBDDB, S2 = ACDBACADD. *)

open Rgs_sequence
open Rgs_core

let table2 = Seqdb.of_strings [ "ABCABCA"; "AABBCCC" ]
let table3 = Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ]
let fig1 = Seqdb.of_strings [ "AABCDABB"; "ABCD" ]
let idx2 = Inverted_index.build table2
let idx3 = Inverted_index.build table3
let idx1 = Inverted_index.build fig1
let p = Pattern.of_string
let sup idx s = Sup_comp.support idx (p s)

let check_sup idx name expected =
  Alcotest.(check int) (Printf.sprintf "sup(%s)" name) expected (sup idx name)

let full_landmarks idx s =
  List.map
    (fun (f : Instance.full) -> (f.Instance.fseq, Array.to_list f.Instance.landmark))
    (Sup_comp.landmarks idx (p s))

(* --- Example 1.1 / Figure 1 --- *)

let test_example_1_1 () =
  check_sup idx1 "AB" 4;
  check_sup idx1 "CD" 2

(* The 100-sequence example from the Related Work discussion:
   S1..S50 = CABABABABABD, S51..S100 = ABCD;
   sup(AB) = 5*50 + 50 = 300, sup(CD) = 100. *)
let test_related_work_example () =
  let seqs =
    List.init 100 (fun k -> if k < 50 then "CABABABABABD" else "ABCD")
  in
  let idx = Inverted_index.build (Seqdb.of_strings seqs) in
  Alcotest.(check int) "sup(AB)" 300 (Sup_comp.support idx (p "AB"));
  Alcotest.(check int) "sup(CD)" 100 (Sup_comp.support idx (p "CD"))

(* supall overcounting example from Section II-A:
   SeqDB = {AABBCC...ZZ}; |SeqDB(AB)| = 4 but |SeqDB(ABC..Z)| = 2^26. *)
let test_overcounting_motivation () =
  let s = String.concat "" (List.init 26 (fun i ->
      let c = Char.chr (Char.code 'A' + i) in String.make 2 c))
  in
  let db = Seqdb.of_strings [ s ] in
  let ab_instances = Brute_force.all_instances db (p "AB") in
  Alcotest.(check int) "|SeqDB(AB)| = 4" 4 (List.length ab_instances);
  (* repetitive support avoids the blowup: *)
  let idx = Inverted_index.build db in
  Alcotest.(check int) "sup(AB) = 2" 2 (Sup_comp.support idx (p "AB"));
  let alphabet_pattern = Pattern.of_string "ABCDEFGHIJKLMNOPQRSTUVWXYZ" in
  Alcotest.(check int) "sup(A..Z) = 2" 2 (Sup_comp.support idx alphabet_pattern)

(* --- Example 2.1 / Table II --- *)

let test_example_2_1_instances () =
  let ab = Brute_force.all_instances table2 (p "AB") in
  Alcotest.(check int) "|S1(AB)| + |S2(AB)|" 7 (List.length ab);
  let in_s1 = List.filter (fun (f : Instance.full) -> f.Instance.fseq = 1) ab in
  let in_s2 = List.filter (fun (f : Instance.full) -> f.Instance.fseq = 2) ab in
  Alcotest.(check int) "3 instances of AB in S1" 3 (List.length in_s1);
  Alcotest.(check int) "4 instances of AB in S2" 4 (List.length in_s2);
  let landmarks_s1 =
    List.map (fun (f : Instance.full) -> Array.to_list f.Instance.landmark) in_s1
  in
  Alcotest.(check (list (list int)))
    "S1(AB) landmarks" [ [ 1; 2 ]; [ 1; 5 ]; [ 4; 5 ] ]
    (List.sort compare landmarks_s1);
  (* ABA: instances in S1 only. The paper's Example 2.1 lists three
     landmarks but omits <1,5,7>, which is also valid (S1[1]=A, S1[5]=B,
     S1[7]=A); the true count is 4. sup(ABA) = 2 is unaffected. *)
  let aba = Brute_force.all_instances table2 (p "ABA") in
  Alcotest.(check int) "|SeqDB(ABA)|" 4 (List.length aba);
  let aba_landmarks =
    List.sort compare
      (List.map (fun (f : Instance.full) -> Array.to_list f.Instance.landmark) aba)
  in
  Alcotest.(check (list (list int)))
    "SeqDB(ABA) landmarks"
    [ [ 1; 2; 4 ]; [ 1; 2; 7 ]; [ 1; 5; 7 ]; [ 4; 5; 7 ] ]
    aba_landmarks;
  Alcotest.check Alcotest.bool "all ABA instances in S1" true
    (List.for_all (fun (f : Instance.full) -> f.Instance.fseq = 1) aba)

let test_example_2_1_overlap () =
  let inst lm = { Instance.fseq = 1; landmark = Array.of_list lm } in
  (* (1,<1,2>) and (1,<1,5>) overlap at the first event *)
  Alcotest.check Alcotest.bool "overlap" true
    (Instance.overlap (inst [ 1; 2 ]) (inst [ 1; 5 ]));
  (* (1,<1,2>) and (1,<4,5>) are non-overlapping *)
  Alcotest.check Alcotest.bool "non-overlap" true
    (Instance.non_overlapping (inst [ 1; 2 ]) (inst [ 4; 5 ]));
  (* ABA: (1,<1,2,7>) and (1,<4,5,7>) overlap (l3 = l'3) *)
  Alcotest.check Alcotest.bool "ABA overlap" true
    (Instance.overlap (inst [ 1; 2; 7 ]) (inst [ 4; 5; 7 ]));
  (* ABA: (1,<1,2,4>) and (1,<4,5,7>) non-overlapping although l3 = l'1 = 4 *)
  Alcotest.check Alcotest.bool "ABA non-overlap across indices" true
    (Instance.non_overlapping (inst [ 1; 2; 4 ]) (inst [ 4; 5; 7 ]));
  (* ... but they do overlap under the stronger footnote-1 semantics *)
  Alcotest.check Alcotest.bool "ABA strict overlap" true
    (Instance.strictly_overlap (inst [ 1; 2; 4 ]) (inst [ 4; 5; 7 ]))

(* --- Example 2.2 --- *)

let test_example_2_2_supports () =
  check_sup idx2 "AB" 4;
  check_sup idx2 "ABA" 2

(* --- Example 2.3: sup(ABC) = sup(AB) = 4, so AB is not closed --- *)

let test_example_2_3_closedness () =
  check_sup idx2 "ABC" 4;
  Alcotest.check Alcotest.bool "AB not closed in Table II" false
    (Closure.is_closed idx2 (p "AB"));
  let landmarks = full_landmarks idx2 "ABC" in
  Alcotest.(check (list (pair int (list int))))
    "leftmost support set of ABC"
    [ (1, [ 1; 2; 3 ]); (1, [ 4; 5; 6 ]); (2, [ 1; 3; 5 ]); (2, [ 2; 4; 6 ]) ]
    landmarks

(* --- Example 3.1 / Table IV: instance growth from A to ACB --- *)

let test_example_3_1_table4 () =
  check_sup idx3 "A" 5;
  check_sup idx3 "AC" 4;
  check_sup idx3 "ACB" 3;
  Alcotest.(check (list (pair int (list int))))
    "support set I_A"
    [ (1, [ 1 ]); (1, [ 4 ]); (2, [ 1 ]); (2, [ 5 ]); (2, [ 7 ]) ]
    (full_landmarks idx3 "A");
  Alcotest.(check (list (pair int (list int))))
    "support set I_AC"
    [ (1, [ 1; 3 ]); (1, [ 4; 5 ]); (2, [ 1; 2 ]); (2, [ 5; 6 ]) ]
    (full_landmarks idx3 "AC");
  Alcotest.(check (list (pair int (list int))))
    "support set I_ACB"
    [ (1, [ 1; 3; 6 ]); (1, [ 4; 5; 9 ]); (2, [ 1; 2; 4 ]) ]
    (full_landmarks idx3 "ACB")

let test_example_3_1_aca () =
  check_sup idx3 "ACA" 3;
  Alcotest.(check (list (pair int (list int))))
    "support set I_ACA"
    [ (1, [ 1; 3; 4 ]); (2, [ 1; 2; 5 ]); (2, [ 5; 6; 7 ]) ]
    (full_landmarks idx3 "ACA")

(* --- Example 3.2: leftmost support sets --- *)

let test_example_3_2_leftmost () =
  (* The leftmost support set of AB in Table III is
     {(1,<1,2>), (1,<4,6>), (2,<1,4>)} — not the right-shifted variant. *)
  Alcotest.(check (list (pair int (list int))))
    "leftmost support set of AB"
    [ (1, [ 1; 2 ]); (1, [ 4; 6 ]); (2, [ 1; 4 ]) ]
    (full_landmarks idx3 "AB")

(* --- Example 3.4: GSgrow on Table III with min_sup = 3 --- *)

let test_example_3_4_gsgrow () =
  let results, stats = Gsgrow.mine idx3 ~min_sup:3 in
  Alcotest.check Alcotest.bool "not truncated" false stats.Gsgrow.truncated;
  let find s =
    List.find_opt (fun r -> Pattern.equal r.Mined.pattern (p s)) results
  in
  let sup_of s =
    match find s with Some r -> r.Mined.support | None -> -1
  in
  Alcotest.(check int) "AA frequent with sup 3" 3 (sup_of "AA");
  Alcotest.(check int) "ACB frequent with sup 3" 3 (sup_of "ACB");
  Alcotest.(check int) "ABD frequent with sup 3" 3 (sup_of "ABD");
  (* AAA has support 1 < 3: pruned *)
  Alcotest.check Alcotest.bool "AAA not frequent" true (find "AAA" = None);
  (* supports of all reported patterns match supComp *)
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Format.asprintf "sup(%a)" Pattern.pp r.Mined.pattern)
        (Sup_comp.support idx3 r.Mined.pattern)
        r.Mined.support)
    results

(* --- Example 3.5: AB is non-closed (ACB has equal support) but must not be
   LB-pruned: ABD is closed with prefix AB. --- *)

let test_example_3_5 () =
  check_sup idx3 "AB" 3;
  check_sup idx3 "ACB" 3;
  Alcotest.check Alcotest.bool "AB not closed" false (Closure.is_closed idx3 (p "AB"));
  Alcotest.check Alcotest.bool "AB not LB-prunable" false
    (Closure.lb_prunable idx3 (p "AB"));
  check_sup idx3 "ABD" 3

(* --- Example 3.6: AA is both non-closed and LB-prunable via ACA --- *)

let test_example_3_6 () =
  check_sup idx3 "AA" 3;
  check_sup idx3 "ACA" 3;
  Alcotest.(check (list (pair int (list int))))
    "leftmost support set of AA"
    [ (1, [ 1; 4 ]); (2, [ 1; 5 ]); (2, [ 5; 7 ]) ]
    (full_landmarks idx3 "AA");
  Alcotest.check Alcotest.bool "AA not closed" false (Closure.is_closed idx3 (p "AA"));
  Alcotest.check Alcotest.bool "AA LB-prunable" true (Closure.lb_prunable idx3 (p "AA"));
  check_sup idx3 "AAD" 3;
  check_sup idx3 "ACAD" 3;
  Alcotest.check Alcotest.bool "AAD not closed" false (Closure.is_closed idx3 (p "AAD"))

(* --- CloGSgrow on Table III agrees with the brute-force closed set --- *)

let test_clogsgrow_table3 () =
  let closed_oracle = Brute_force.closed table3 ~min_sup:3 in
  let results, _ = Clogsgrow.mine idx3 ~min_sup:3 in
  let got =
    List.sort compare
      (List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results)
  in
  let expected =
    List.sort compare
      (List.map (fun (q, s) -> (Pattern.to_string q, s)) closed_oracle)
  in
  Alcotest.(check (list (pair string int))) "closed set" expected got

(* --- Footnote 1: stronger overlap semantics --- *)

let test_footnote_strict_overlap () =
  Alcotest.(check int) "strict sup(ABA) = 1" 1
    (Strict_overlap.support table2 (p "ABA"));
  Alcotest.(check int) "paper sup(ABA) = 2" 2 (Sup_comp.support idx2 (p "ABA"));
  (* AABBAB is in the iterated shuffle of AB; ABBA is not. *)
  Alcotest.check Alcotest.bool "AABBAB in shuffle(AB)" true
    (Strict_overlap.in_iterated_shuffle ~v:(Sequence.of_string "AB")
       ~w:(Sequence.of_string "AABBAB"));
  Alcotest.check Alcotest.bool "ABBA not in shuffle(AB)" false
    (Strict_overlap.in_iterated_shuffle ~v:(Sequence.of_string "AB")
       ~w:(Sequence.of_string "ABBA"))

let suite =
  [
    Alcotest.test_case "example 1.1 (Figure 1)" `Quick test_example_1_1;
    Alcotest.test_case "related-work 100-sequence example" `Quick test_related_work_example;
    Alcotest.test_case "supall overcounting motivation" `Quick test_overcounting_motivation;
    Alcotest.test_case "example 2.1: instances" `Quick test_example_2_1_instances;
    Alcotest.test_case "example 2.1: overlap" `Quick test_example_2_1_overlap;
    Alcotest.test_case "example 2.2: supports" `Quick test_example_2_2_supports;
    Alcotest.test_case "example 2.3: closedness" `Quick test_example_2_3_closedness;
    Alcotest.test_case "example 3.1: Table IV growth" `Quick test_example_3_1_table4;
    Alcotest.test_case "example 3.1: ACA" `Quick test_example_3_1_aca;
    Alcotest.test_case "example 3.2: leftmost" `Quick test_example_3_2_leftmost;
    Alcotest.test_case "example 3.4: GSgrow" `Quick test_example_3_4_gsgrow;
    Alcotest.test_case "example 3.5: CCheck only" `Quick test_example_3_5;
    Alcotest.test_case "example 3.6: LBCheck prunes AA" `Quick test_example_3_6;
    Alcotest.test_case "CloGSgrow = oracle on Table III" `Quick test_clogsgrow_table3;
    Alcotest.test_case "footnote 1: strict overlap" `Quick test_footnote_strict_overlap;
  ]
