(* The @steal tier: differential proof that shard-parallel mining with
   work stealing is invisible in the output.

   Contract under test: for every database, index backend, shard count in
   {1,2,4,8} and domain count, [Parallel_miner.mine_steal] (and the
   [?steal]/[?shards] routing in Miner / Parallel_miner.mine_all/closed)
   emits {e byte-identical} results to the sequential miners — including
   under gap constraints and Targeted/Top_k query plans, and on the
   adversarial all-work-in-one-root skew where static per-root scheduling
   degenerates to a single busy domain. *)

open Rgs_sequence
open Rgs_core
module Store = Rgs_store.Store

let signatures results =
  List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results

let sig_t = Alcotest.(list (pair string int))
let closed_strategy = Clogsgrow.strategy ~use_lb_check:true ~use_c_check:true

let backends db =
  [
    ("csr", Inverted_index.build_kind Inverted_index.Kcsr db);
    ("legacy", Inverted_index.build_kind Inverted_index.Klegacy db);
    ("paged", Inverted_index.build_kind ~fanout:4 Inverted_index.Kpaged db);
  ]

let shard_counts = [ 1; 2; 4; 8 ]

(* A fixed adversarial instance of Gens.skewed_db: big enough that the
   dominant root's subtree dwarfs every other root put together. *)
let skew_db =
  lazy
    (QCheck2.Gen.generate1
       ~rand:(Random.State.make [| 0xBEE5 |])
       (Gens.skewed_db ~num_seqs:24 ~alphabet:4 ~len:24))

let dbs =
  lazy
    [
      ("table3", Seqdb.of_strings [ "ABCACBDDB"; "ACDBACADD" ], 2);
      ( "quest",
        Rgs_datagen.Quest_gen.generate
          (Rgs_datagen.Quest_gen.params ~d:50 ~c:15 ~n:40 ~s:4 ~seed:11 ()),
        5 );
      ("skew", Lazy.force skew_db, 6);
    ]

(* --- Seqdb.shard: the partition itself --- *)

let check_partition db n =
  let ranges = Seqdb.shard db n in
  let size = Seqdb.size db in
  if size = 0 then Alcotest.(check int) "empty db" 0 (Array.length ranges)
  else begin
    Alcotest.(check bool)
      (Printf.sprintf "at most %d shards" n)
      true
      (Array.length ranges <= n && Array.length ranges >= 1);
    (* contiguous, non-empty, covering exactly [1, size] in order *)
    let expect_lo = ref 1 in
    Array.iter
      (fun (lo, hi) ->
        Alcotest.(check int) "contiguous" !expect_lo lo;
        Alcotest.(check bool) "non-empty" true (hi >= lo);
        expect_lo := hi + 1)
      ranges;
    Alcotest.(check int) "covers the db" (size + 1) !expect_lo
  end

let test_shard_partition () =
  List.iter
    (fun (_, db, _) -> List.iter (check_partition db) [ 1; 2; 3; 5; 8; 100 ])
    (Lazy.force dbs);
  (* zero-length sequences at the tail must not produce empty shards *)
  let ragged =
    Seqdb.of_sequences
      (List.map Sequence.of_list [ [ 0; 1; 0 ]; [ 1 ]; []; []; [] ])
  in
  List.iter (check_partition ragged) [ 1; 2; 3; 4; 5; 9 ];
  check_partition (Seqdb.of_sequences []) 4;
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Seqdb.shard: shard count must be >= 1") (fun () ->
      ignore (Seqdb.shard ragged 0))

(* --- deterministic differentials: named dbs × shards × {LPT, steal} --- *)

let test_steal_all_matches () =
  List.iter
    (fun (name, db, min_sup) ->
      let idx = Inverted_index.build db in
      let sequential, _ = Gsgrow.mine ~max_length:4 idx ~min_sup in
      List.iter
        (fun shards ->
          let lpt, _ =
            Parallel_miner.mine_all ~domains:4 ~max_length:4 ~shards idx ~min_sup
          in
          Alcotest.check sig_t
            (Printf.sprintf "%s all s%d lpt" name shards)
            (signatures sequential) (signatures lpt);
          let steal, _ =
            Parallel_miner.mine_all ~domains:4 ~max_length:4 ~steal:true ~shards
              idx ~min_sup
          in
          Alcotest.check sig_t
            (Printf.sprintf "%s all s%d steal" name shards)
            (signatures sequential) (signatures steal))
        shard_counts)
    (Lazy.force dbs)

let test_steal_closed_matches () =
  List.iter
    (fun (name, db, min_sup) ->
      let idx = Inverted_index.build db in
      let sequential, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup in
      List.iter
        (fun shards ->
          let lpt, _ =
            Parallel_miner.mine_closed ~domains:3 ~max_length:4 ~shards idx
              ~min_sup
          in
          Alcotest.check sig_t
            (Printf.sprintf "%s closed s%d lpt" name shards)
            (signatures sequential) (signatures lpt);
          let steal, _ =
            Parallel_miner.mine_closed ~domains:3 ~max_length:4 ~steal:true
              ~shards idx ~min_sup
          in
          Alcotest.check sig_t
            (Printf.sprintf "%s closed s%d steal" name shards)
            (signatures sequential) (signatures steal))
        shard_counts)
    (Lazy.force dbs)

let test_steal_deterministic () =
  let _, db, min_sup = List.nth (Lazy.force dbs) 2 in
  let idx = Inverted_index.build db in
  let runs =
    List.init 5 (fun _ ->
        let r, _, q =
          Parallel_miner.mine_steal ~domains:4 ~max_length:4 ~shards:4
            ~strategy:Gsgrow.strategy idx ~min_sup
        in
        Alcotest.(check int) "no quarantines" 0 q;
        signatures r)
  in
  List.iteri
    (fun i r -> Alcotest.check sig_t (Printf.sprintf "run %d" i) (List.hd runs) r)
    (List.tl runs)

(* the store-backed (mapped) read path shards and steals identically *)
let test_steal_mapped_store () =
  let _, db, min_sup = List.nth (Lazy.force dbs) 1 in
  let path = Filename.temp_file "rgs_steal" ".rgsdb" in
  Store.write ~path db;
  let mdb, _ = Store.open_db path in
  Sys.remove path;
  let sequential, _ = Clogsgrow.mine ~max_length:4 (Inverted_index.build db) ~min_sup in
  let midx = Inverted_index.build mdb in
  let steal, _ =
    Parallel_miner.mine_closed ~domains:4 ~max_length:4 ~steal:true ~shards:3
      midx ~min_sup
  in
  Alcotest.check sig_t "mapped closed steal" (signatures sequential)
    (signatures steal)

(* --- QCheck differentials: random dbs × 3 backends --- *)

(* Each case draws one shard count and one backend, so 120 cases spread
   over {1,2,4,8} × {csr, legacy, paged} without multiplying the run
   count by twelve (the deterministic tests above already sweep every
   shard count exhaustively). *)
let with_shards gen =
  QCheck2.Gen.(pair gen (oneofl shard_counts))

let with_shards_backend gen =
  QCheck2.Gen.(triple gen (oneofl shard_counts) (int_bound 2))

let prop_steal_all_closed =
  Gens.make ~name:"steal ≡ sequential (all + closed, 3 backends)" ~count:120
    (with_shards_backend (Gens.db ~num_seqs:6 ~alphabet:4 ~max_len:9))
    (fun (db, shards, b) ->
      Printf.sprintf "shards: %d backend: %d\n%s" shards b (Gens.print_db db))
    (fun (db, shards, b) ->
      let _, idx = List.nth (backends db) b in
      let all_seq, _ = Gsgrow.mine ~max_length:4 idx ~min_sup:2 in
      let all_steal, _ =
        Parallel_miner.mine_all ~domains:3 ~max_length:4 ~steal:true ~shards idx
          ~min_sup:2
      in
      let closed_seq, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup:2 in
      let closed_steal, _ =
        Parallel_miner.mine_closed ~domains:3 ~max_length:4 ~steal:true ~shards
          idx ~min_sup:2
      in
      signatures all_seq = signatures all_steal
      && signatures closed_seq = signatures closed_steal)

let prop_steal_skewed =
  Gens.make ~name:"steal ≡ sequential on adversarial skew" ~count:40
    (with_shards (Gens.skewed_db ~num_seqs:8 ~alphabet:4 ~len:12))
    (fun (db, shards) ->
      Printf.sprintf "shards: %d\n%s" shards (Gens.print_db db))
    (fun (db, shards) ->
      let idx = Inverted_index.build db in
      let seq, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup:3 in
      let steal, _ =
        Parallel_miner.mine_closed ~domains:4 ~max_length:4 ~steal:true ~shards
          idx ~min_sup:3
      in
      signatures seq = signatures steal)

let prop_steal_gap =
  Gens.make ~name:"steal ≡ sequential (gap-constrained)" ~count:60
    (with_shards (Gens.db ~num_seqs:6 ~alphabet:4 ~max_len:9))
    (fun (db, shards) ->
      Printf.sprintf "shards: %d\n%s" shards (Gens.print_db db))
    (fun (db, shards) ->
      let idx = Inverted_index.build db in
      let seq, _ = Gap_constrained.mine ~max_length:4 idx ~max_gap:2 ~min_sup:2 in
      let steal, _, quarantined =
        Parallel_miner.mine_steal ~domains:3 ~max_length:4 ~shards
          ~strategy:(Gap_constrained.strategy ~min_gap:0 ~max_gap:2)
          idx ~min_sup:2
      in
      quarantined = 0 && signatures seq = signatures steal)

(* --- queries under stealing --- *)

let prop_steal_topk =
  (* baseline is the canonical answer: sort the FULL sequential output by
     support (desc) and take k — exactly Query.shared's finalize contract,
     independent of heap arrival order. *)
  Gens.make ~name:"steal Top_k ≡ sort-take-k of sequential" ~count:60
    QCheck2.Gen.(
      pair (Gens.db ~num_seqs:6 ~alphabet:4 ~max_len:9) (int_range 1 6))
    (fun (db, k) -> Printf.sprintf "k: %d\n%s" k (Gens.print_db db))
    (fun (db, k) ->
      let idx = Inverted_index.build db in
      let full, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup:2 in
      let expected =
        List.filteri
          (fun i _ -> i < k)
          (List.sort Mined.compare_by_support_desc full)
      in
      let cfg =
        Miner.config ~query:(Query.Top_k k) ~max_length:4 ~domains:3 ~steal:true
          ~shards:2 ~min_sup:2 ()
      in
      let report = Miner.mine_indexed cfg idx in
      signatures report.Miner.results = signatures expected)

let prop_steal_targeted =
  Gens.make ~name:"steal Targeted ≡ sequential Targeted" ~count:60
    QCheck2.Gen.(
      pair (Gens.db ~num_seqs:6 ~alphabet:4 ~max_len:9)
        (Gens.pattern ~alphabet:4 ~max_len:2))
    Gens.print_db_pattern
    (fun (db, p) ->
      let idx = Inverted_index.build db in
      let q = Query.Targeted p in
      let seq_cfg = Miner.config ~query:q ~max_length:4 ~min_sup:2 () in
      let steal_cfg =
        Miner.config ~query:q ~max_length:4 ~domains:3 ~steal:true ~shards:2
          ~min_sup:2 ()
      in
      let seq = Miner.mine_indexed seq_cfg idx in
      let steal = Miner.mine_indexed steal_cfg idx in
      signatures seq.Miner.results = signatures steal.Miner.results)

(* --- the Shard_merge proof obligation, run live --- *)

let test_shard_merge_verify () =
  let _, db, min_sup = List.nth (Lazy.force dbs) 1 in
  let idx = Inverted_index.build db in
  let sm = Shard_merge.make db ~shards:3 in
  let results = ref [] in
  (* ~verify:true recomputes every grow unsharded and raises on the first
     divergence, so completing at all is the proof; check the output too. *)
  let _ =
    Engine.run ~max_length:3
      (Shard_merge.strategy ~verify:true sm closed_strategy)
      idx ~min_sup
      ~emit:(fun m -> results := m :: !results)
  in
  let expected, _ = Clogsgrow.mine ~max_length:3 idx ~min_sup in
  Alcotest.check sig_t "verified sharded run ≡ sequential"
    (signatures expected)
    (signatures (List.rev !results))

(* --- stealing actually happens on the skewed workload --- *)

let test_steal_successes_on_skew () =
  let db = Lazy.force skew_db in
  let idx = Inverted_index.build db in
  let sequential, _ = Clogsgrow.mine ~max_length:5 idx ~min_sup:4 in
  (* scheduling decides *whether* a given run steals, never *what* it
     returns; retry a few times so the assertion is schedule-robust *)
  let rec attempt n =
    let before = Metrics.snapshot () in
    let steal, _, q =
      Parallel_miner.mine_steal ~domains:4 ~max_length:5
        ~strategy:closed_strategy idx ~min_sup:4
    in
    let after = Metrics.snapshot () in
    let d = Metrics.diff ~before ~after in
    Alcotest.(check int) "no quarantines" 0 q;
    Alcotest.check sig_t "skew steal output" (signatures sequential)
      (signatures steal);
    Alcotest.(check bool) "attempts counted" true
      (Metrics.find d "steal_attempts" > 0);
    if Metrics.find d "steal_successes" > 0 then ()
    else if n > 1 then attempt (n - 1)
    else Alcotest.fail "no successful steal in any run on the skewed workload"
  in
  attempt 10

let suite =
  [
    Alcotest.test_case "Seqdb.shard partition" `Quick test_shard_partition;
    Alcotest.test_case "all: shards × {lpt, steal}" `Quick test_steal_all_matches;
    Alcotest.test_case "closed: shards × {lpt, steal}" `Quick
      test_steal_closed_matches;
    Alcotest.test_case "steal run-to-run determinism" `Quick
      test_steal_deterministic;
    Alcotest.test_case "mapped store backend" `Quick test_steal_mapped_store;
    prop_steal_all_closed;
    prop_steal_skewed;
    prop_steal_gap;
    prop_steal_topk;
    prop_steal_targeted;
    Alcotest.test_case "Shard_merge verify run" `Quick test_shard_merge_verify;
    Alcotest.test_case "steals happen on skew" `Quick
      test_steal_successes_on_skew;
  ]
