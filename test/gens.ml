(* Shared qcheck generators and printers for the property-test suites. *)

open Rgs_sequence
open Rgs_core

let sequence ~alphabet ~max_len =
  QCheck2.Gen.(
    list_size (int_bound max_len) (int_bound (alphabet - 1)) >|= Sequence.of_list)

let db ~num_seqs ~alphabet ~max_len =
  QCheck2.Gen.(
    list_size (int_range 1 num_seqs) (sequence ~alphabet ~max_len)
    >|= Seqdb.of_sequences)

let pattern ~alphabet ~max_len =
  QCheck2.Gen.(
    list_size (int_range 1 max_len) (int_bound (alphabet - 1)) >|= Pattern.of_list)

(* Adversarial root skew for the work-stealing tier: one dominant event
   (0) makes up most of every sequence, so virtually the whole DFS lives
   under a single root — static per-root scheduling degenerates to one
   busy domain, and any load balancing must come from stealing inside
   that root's subtree. *)
let skewed_db ~num_seqs ~alphabet ~len =
  QCheck2.Gen.(
    let skewed_event =
      int_bound 99 >>= fun r ->
      if r < 80 || alphabet <= 1 then return 0
      else int_range 1 (alphabet - 1)
    in
    list_size (int_range 1 num_seqs)
      (list_size (return len) skewed_event >|= Sequence.of_list)
    >|= Seqdb.of_sequences)

let print_db d = Format.asprintf "%a" Seqdb.pp d

let print_db_pattern (d, p) =
  Printf.sprintf "db:\n%s\npattern: %s" (print_db d) (Pattern.to_string p)

let make ~name ~count gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)
