(* Shared qcheck generators and printers for the property-test suites. *)

open Rgs_sequence
open Rgs_core

let sequence ~alphabet ~max_len =
  QCheck2.Gen.(
    list_size (int_bound max_len) (int_bound (alphabet - 1)) >|= Sequence.of_list)

let db ~num_seqs ~alphabet ~max_len =
  QCheck2.Gen.(
    list_size (int_range 1 num_seqs) (sequence ~alphabet ~max_len)
    >|= Seqdb.of_sequences)

let pattern ~alphabet ~max_len =
  QCheck2.Gen.(
    list_size (int_range 1 max_len) (int_bound (alphabet - 1)) >|= Pattern.of_list)

let print_db d = Format.asprintf "%a" Seqdb.pp d

let print_db_pattern (d, p) =
  Printf.sprintf "db:\n%s\npattern: %s" (print_db d) (Pattern.to_string p)

let make ~name ~count gen print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen prop)
