let () =
  Alcotest.run "rgs"
    [
      ("sequence", Test_sequence.suite);
      ("btree", Test_btree.suite);
      ("pattern", Test_pattern.suite);
      ("core-units", Test_core_units.suite);
      ("csr", Test_csr.suite);
      ("store", Test_store.suite);
      ("perf-guard", Test_perf_guard.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("baselines", Test_baselines.suite);
      ("datagen", Test_datagen.suite);
      ("post", Test_post.suite);
      ("miner", Test_miner.suite);
      ("query", Test_query.suite);
      ("extensions", Test_extensions.suite);
      ("parallel", Test_parallel.suite);
      ("deque", Test_deque.suite);
      ("steal", Test_steal.suite);
      ("trace", Test_trace.suite);
      ("properties", Test_properties.suite);
      ("robustness", Test_robustness.suite);
      ("chaos", Test_chaos.suite);
      ("daemon", Test_daemon.suite);
      ("supervise", Test_supervise.suite);
      ("experiments", Test_experiments.suite);
      ("export", Test_export.suite);
      ("regressions", Test_regressions.suite);
    ]
