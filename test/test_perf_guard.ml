(* Perf-guard tier: locks in the hot-path optimisations behaviourally.

   The galloping seek is pure bookkeeping over a sorted positions list, so
   its contract is checked differentially — every monotone seek stream must
   return bit-identical positions to a straight linear scan over
   [Inverted_index.positions], on all three backends, across hundreds of
   random databases plus the adversarial shapes that stress each gallop
   branch (single-run postings, alternating events, seek-to-self,
   seek-past-end). The support-set sharing fix is locked by a memory
   regression: on a fixed seeded append-heavy workload the CSR backend's
   retained live words must stay within 1.25x of legacy. The closure-funnel
   bench section is pinned by checking that the quest_small sweep's lowest
   threshold actually exercises the pre-filter's survive path. *)

open Rgs_sequence
open Rgs_core

let backends db =
  [
    Inverted_index.build_kind Inverted_index.Kcsr db;
    Inverted_index.build_kind Inverted_index.Klegacy db;
    Inverted_index.build_kind ~fanout:4 Inverted_index.Kpaged db;
  ]

(* Reference for one monotone seek: first position strictly above [lowest]
   in the full positions array, found by linear scan from the start — the
   simplest possible oracle, sharing no code with the cursors. *)
let linear_next positions lowest =
  let n = Array.length positions in
  let rec go k = if k >= n then -1 else if positions.(k) > lowest then positions.(k) else go (k + 1) in
  go 0

let drive_and_compare idx ~seq e lowests =
  let positions = Inverted_index.positions idx ~seq e in
  let c = Inverted_index.cursor idx ~seq e in
  let ok =
    List.for_all
      (fun lowest ->
        Inverted_index.seek_pos c ~lowest = linear_next positions lowest)
      lowests
  in
  Inverted_index.cursor_finish c;
  ok

(* A nondecreasing lowest stream mixing hop sizes: dense unit steps (the
   linear-probe fast path), occasional long jumps (the gallop path), and
   repeats (seek with an unchanged bound must return the same answer). *)
let monotone_stream ~len steps =
  let lowests = ref [] in
  let cur = ref 0 in
  List.iter
    (fun step ->
      cur := min (len + 2) (!cur + step);
      lowests := !cur :: !lowests)
    steps;
  List.rev !lowests

let prop_gallop_equals_linear_scan =
  Gens.make ~name:"galloping seek = linear scan (all backends)" ~count:220
    QCheck2.Gen.(
      pair
        (Gens.db ~num_seqs:5 ~alphabet:4 ~max_len:30)
        (list_size (int_range 1 40) (int_bound 7)))
    (fun (db, steps) ->
      Printf.sprintf "db:\n%s\nsteps: [%s]" (Gens.print_db db)
        (String.concat ";" (List.map string_of_int steps)))
    (fun (db, steps) ->
      List.for_all
        (fun idx ->
          let ok = ref true in
          List.iter
            (fun e ->
              Seqdb.iter
                (fun i s ->
                  let lowests =
                    monotone_stream ~len:(Sequence.length s) steps
                  in
                  if not (drive_and_compare idx ~seq:i e lowests) then
                    ok := false)
                db)
            [ 0; 1; 2; 3; 9 (* 9 is absent *) ];
          !ok)
        (backends db))

(* Adversarial postings shapes, exercised deterministically on every
   backend. Each stream is checked against the linear-scan oracle AND
   against pinned expected outputs where the answer is obvious. *)
let test_gallop_adversarial () =
  let check name db ~seq e lowests =
    List.iter
      (fun idx ->
        Alcotest.(check bool)
          (Printf.sprintf "%s (%s)" name (Inverted_index.backend_name idx))
          true
          (drive_and_compare idx ~seq e lowests))
      (backends db)
  in
  (* single-run postings: one event occupies every position, so every hop
     lands within one dense run — the linear-probe fast path *)
  let runs = Seqdb.of_strings [ String.make 40 'A' ] in
  check "single-run, unit steps" runs ~seq:1 0 (List.init 42 (fun i -> i));
  check "single-run, big jumps" runs ~seq:1 0 [ 0; 13; 14; 35; 39; 40; 41 ];
  (* alternating events: every other position matches, hops of 2 *)
  let alt =
    Seqdb.of_sequences
      [ Sequence.of_list (List.init 40 (fun i -> i mod 2)) ]
  in
  check "alternating, event 0" alt ~seq:1 0 (List.init 42 (fun i -> i));
  check "alternating, event 1" alt ~seq:1 1 [ 0; 0; 1; 2; 20; 20; 37; 39 ];
  (* seek-to-self: feed each answer back as the next bound *)
  List.iter
    (fun idx ->
      let positions = Inverted_index.positions idx ~seq:1 0 in
      let c = Inverted_index.cursor idx ~seq:1 0 in
      let cur = ref 0 in
      let steps = ref 0 in
      let p = ref (Inverted_index.seek_pos c ~lowest:!cur) in
      while !p >= 0 do
        Alcotest.(check int)
          (Printf.sprintf "seek-to-self step %d (%s)" !steps
             (Inverted_index.backend_name idx))
          (linear_next positions !cur)
          !p;
        cur := !p;
        incr steps;
        p := Inverted_index.seek_pos c ~lowest:!cur
      done;
      Alcotest.(check int)
        (Printf.sprintf "seek-to-self visits all (%s)"
           (Inverted_index.backend_name idx))
        (Array.length positions) !steps;
      Inverted_index.cursor_finish c)
    (backends alt);
  (* seek-past-end: once exhausted, every later seek stays -1 *)
  check "past end, repeated" runs ~seq:1 0 [ 40; 41; 100; 100; 1000 ];
  check "absent event" runs ~seq:1 7 [ 0; 1; 2 ]

(* The gallop/advance split must be observable: on a workload with long
   hops the cursors must count gallops, and flushing must land in the
   registry (the bench's seek_gallop section reads these counters). *)
let test_gallop_metrics_flush () =
  (* one dense event to force long hops over the other's spent positions *)
  let db =
    Seqdb.of_sequences
      [ Sequence.of_list (List.init 200 (fun i -> if i mod 50 = 49 then 1 else 0)) ]
  in
  List.iter
    (fun idx ->
      Metrics.reset ();
      let c = Inverted_index.cursor idx ~seq:1 0 in
      let rec drain lowest =
        let p = Inverted_index.seek_pos c ~lowest in
        if p >= 0 then drain (p + 40)
      in
      drain 0;
      Alcotest.(check int)
        (Printf.sprintf "unflushed (%s)" (Inverted_index.backend_name idx))
        0
        (Metrics.value Metrics.next_calls);
      Inverted_index.cursor_finish c;
      Alcotest.(check bool)
        (Printf.sprintf "seeks flushed (%s)" (Inverted_index.backend_name idx))
        true
        (Metrics.value Metrics.next_calls > 0);
      Alcotest.(check bool)
        (Printf.sprintf "gallops counted (%s)" (Inverted_index.backend_name idx))
        true
        (Metrics.value Metrics.cursor_gallops > 0))
    (backends db)

(* --- the shared gallop-probe knob (Tuning) --- *)

(* the RGS_GALLOP_PROBE parse contract, pinned value by value *)
let test_gallop_probe_parse () =
  let check name input expect =
    Alcotest.(check int) name expect (Tuning.parse_gallop_probe input)
  in
  check "unset -> default" None Tuning.default_gallop_probe;
  check "plain integer" (Some "7") 7;
  check "zero disables the linear fast path" (Some "0") 0;
  check "surrounding whitespace tolerated" (Some "  12 ") 12;
  check "negative -> default" (Some "-3") Tuning.default_gallop_probe;
  check "non-numeric -> default" (Some "fast") Tuning.default_gallop_probe;
  check "empty -> default" (Some "") Tuning.default_gallop_probe;
  Alcotest.(check int) "builtin default is 4" 4 Tuning.default_gallop_probe

(* The knob is a performance dial, never a correctness dial: the same
   seek stream must return identical answers (vs the linear-scan oracle)
   at every probe setting, from 0 (always gallop) to absurdly large
   (always linear). *)
let probe_sweep = [ 0; 1; 2; Tuning.default_gallop_probe; 16; 1024 ]

let prop_answers_independent_of_gallop_probe =
  Gens.make ~name:"seeks independent of gallop probe (all backends)" ~count:60
    QCheck2.Gen.(
      pair
        (Gens.db ~num_seqs:4 ~alphabet:4 ~max_len:25)
        (list_size (int_range 1 25) (int_bound 7)))
    (fun (db, steps) ->
      Printf.sprintf "db:\n%s\nsteps: [%s]" (Gens.print_db db)
        (String.concat ";" (List.map string_of_int steps)))
    (fun (db, steps) ->
      let saved = Tuning.gallop_probe_limit () in
      Fun.protect
        ~finally:(fun () -> Tuning.set_gallop_probe saved)
        (fun () ->
          List.for_all
            (fun probe ->
              Tuning.set_gallop_probe probe;
              List.for_all
                (fun idx ->
                  let ok = ref true in
                  List.iter
                    (fun e ->
                      Seqdb.iter
                        (fun i s ->
                          let lowests =
                            monotone_stream ~len:(Sequence.length s) steps
                          in
                          if not (drive_and_compare idx ~seq:i e lowests) then
                            ok := false)
                        db)
                    [ 0; 1; 2; 3 ];
                  !ok)
                (backends db))
            probe_sweep))

(* ... and neither is the miner's output: full closed mining at every
   probe setting stays byte-identical to the default. *)
let test_miner_output_independent_of_gallop_probe () =
  let db =
    Rgs_datagen.Trace_gen.generate
      (Rgs_datagen.Trace_gen.params ~num_sequences:20 ~num_events:8 ~seed:13 ())
  in
  let saved = Tuning.gallop_probe_limit () in
  Fun.protect
    ~finally:(fun () -> Tuning.set_gallop_probe saved)
    (fun () ->
      let mine_sigs () =
        List.concat_map
          (fun idx ->
            let results, _ = Clogsgrow.mine ~max_length:4 idx ~min_sup:3 in
            List.map
              (fun m -> (Pattern.to_list m.Mined.pattern, m.Mined.support))
              results)
          (backends db)
      in
      Tuning.set_gallop_probe Tuning.default_gallop_probe;
      let expect = mine_sigs () in
      List.iter
        (fun probe ->
          Tuning.set_gallop_probe probe;
          Alcotest.(check (list (pair (list int) int)))
            (Printf.sprintf "probe %d" probe)
            expect (mine_sigs ()))
        probe_sweep)

(* --- memory regression: support-set sharing on append-heavy DFS --- *)

(* Retained live words of a full mining run (results held) on a fixed
   seeded workload, measured against a post-compaction baseline. The
   firsts-sharing fix makes grown groups alias their parent's arrays, so
   the CSR backend — whose [of_event] materialises fresh positions arrays —
   must retain no more than 1.25x the legacy backend's words. *)
let retained_words kind db =
  let idx = Inverted_index.build_kind kind db in
  Gc.compact ();
  let baseline = (Gc.stat ()).Gc.live_words in
  let results, _ = Gsgrow.mine ~max_length:4 idx ~min_sup:4 in
  let live = Metrics.sample_live_words () in
  ignore (Sys.opaque_identity (List.length results));
  (live - baseline, List.length results)

let test_memory_regression_csr_vs_legacy () =
  let db =
    Rgs_datagen.Trace_gen.generate
      (Rgs_datagen.Trace_gen.params ~num_sequences:30 ~num_events:10 ~seed:5 ())
  in
  Metrics.reset ();
  let legacy, n_legacy = retained_words Inverted_index.Klegacy db in
  let csr, n_csr = retained_words Inverted_index.Kcsr db in
  Alcotest.(check int) "same pattern count" n_legacy n_csr;
  Alcotest.(check bool) "workload is append-heavy" true (n_csr > 500);
  Alcotest.(check bool) "legacy retention positive" true (legacy > 0);
  let ratio = float_of_int csr /. float_of_int legacy in
  Alcotest.(check bool)
    (Printf.sprintf "csr retention %d <= 1.25x legacy %d (ratio %.3f)" csr
       legacy ratio)
    true (ratio <= 1.25);
  (* the samples must also have fed the peak gauge (PR 3 contract) *)
  Alcotest.(check bool) "peak_live_words gauge updated" true
    (Metrics.value Metrics.peak_live_words > 0)

(* Growth must share the parent's firsts arrays rather than copy them:
   physical equality through a deep chain, the mechanism behind the ratio
   above staying flat as depth grows. *)
let test_grow_shares_firsts () =
  let db = Seqdb.of_strings [ "ABABABABAB"; "BABABABABA" ] in
  List.iter
    (fun idx ->
      let i0 = Support_set.of_event idx 0 in
      let i1 = Support_set.grow idx i0 1 in
      let i2 = Support_set.grow idx i1 0 in
      Alcotest.(check bool) "depth-1 shares firsts" true
        (Support_set.group_firsts i1 0 == Support_set.group_firsts i0 0);
      Alcotest.(check bool) "depth-2 shares firsts" true
        (Support_set.group_firsts i2 0 == Support_set.group_firsts i0 0);
      Alcotest.(check bool) "well-formed after sharing" true
        (Support_set.well_formed i2);
      (* partial survival: len shrinks, the array does not *)
      Alcotest.(check bool) "len <= array length" true
        (Support_set.group_len i2 0
        <= Array.length (Support_set.group_firsts i2 0)))
    (backends db)

(* --- closure funnel pin: the bench sweep exercises the survive path --- *)

(* resolved against the test binary so the pin also runs under a bare
   dune exec (cwd = project root), not just dune runtest *)
let quest_small_path =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "data" "quest_small.txt"))

let test_closure_funnel_pin () =
  if not (Sys.file_exists quest_small_path) then
    Alcotest.skip ()
  else begin
    let db, _codec = Seq_io.load_tokens quest_small_path in
    let idx = Inverted_index.build db in
    Metrics.reset ();
    ignore (Clogsgrow.mine ~max_length:5 idx ~min_sup:2);
    let checks = Metrics.value Metrics.closure_bound_checks in
    let rejects = Metrics.value Metrics.closure_bound_rejects in
    let base = Metrics.value Metrics.closure_base_grows in
    Alcotest.(check bool) "pre-filter ran" true (checks > 0);
    (* the sweep's lowest threshold must reach the grow path — otherwise
       the funnel bench only ever measures the reject branch *)
    Alcotest.(check bool)
      (Printf.sprintf "closure_base_grows > 0 (got %d)" base)
      true (base > 0);
    Alcotest.(check bool) "funnel accounts checks" true
      (rejects + base <= checks)
  end

let suite =
  [
    prop_gallop_equals_linear_scan;
    Alcotest.test_case "gallop adversarial shapes" `Quick test_gallop_adversarial;
    Alcotest.test_case "gallop metrics flush" `Quick test_gallop_metrics_flush;
    Alcotest.test_case "gallop probe env parse" `Quick test_gallop_probe_parse;
    prop_answers_independent_of_gallop_probe;
    Alcotest.test_case "miner output independent of gallop probe" `Quick
      test_miner_output_independent_of_gallop_probe;
    Alcotest.test_case "memory: csr <= 1.25x legacy" `Quick
      test_memory_regression_csr_vs_legacy;
    Alcotest.test_case "grow shares firsts arrays" `Quick test_grow_shares_firsts;
    Alcotest.test_case "closure funnel pin (quest_small)" `Quick
      test_closure_funnel_pin;
  ]
