(* Unit tests for instances, support sets, instance growth and supComp on
   hand-checked inputs beyond the paper's own examples. *)

open Rgs_sequence
open Rgs_core

let p = Pattern.of_string

let inst seq lm = { Instance.fseq = seq; landmark = Array.of_list lm }

(* --- Instance --- *)

let test_compress () =
  let c = Instance.compress (inst 3 [ 2; 5; 9 ]) in
  Alcotest.(check int) "seq" 3 c.Instance.seq;
  Alcotest.(check int) "first" 2 c.Instance.first;
  Alcotest.(check int) "last" 9 c.Instance.last;
  Alcotest.check_raises "empty" (Invalid_argument "Instance.compress: empty landmark")
    (fun () -> ignore (Instance.compress (inst 1 [])))

let test_right_shift_order () =
  let a = { Instance.seq = 1; first = 1; last = 5 } in
  let b = { Instance.seq = 1; first = 2; last = 7 } in
  let c = { Instance.seq = 2; first = 1; last = 2 } in
  Alcotest.(check bool) "a before b" true (Instance.right_shift_compare a b < 0);
  Alcotest.(check bool) "b before c" true (Instance.right_shift_compare b c < 0);
  Alcotest.(check int) "reflexive" 0 (Instance.right_shift_compare a a)

let test_right_shift_order_full_tiebreak () =
  (* Regression: instances agreeing on sequence and last landmark used to
     compare equal even when earlier landmark positions differed, making
     the "order" non-total — sorting could then interleave distinct
     instances nondeterministically. Earlier positions now break ties
     lexicographically. *)
  let a = inst 1 [ 1; 3; 9 ] in
  let b = inst 1 [ 1; 4; 9 ] in
  Alcotest.(check bool) "lex tie-break a<b" true
    (Instance.right_shift_compare_full a b < 0);
  Alcotest.(check bool) "antisymmetric" true
    (Instance.right_shift_compare_full b a > 0);
  Alcotest.(check int) "reflexive" 0 (Instance.right_shift_compare_full a a);
  (* first position decides, consistent with the compressed order *)
  let c = inst 1 [ 2; 3; 9 ] in
  Alcotest.(check bool) "first decides" true
    (Instance.right_shift_compare_full a c < 0);
  Alcotest.(check bool) "matches compressed" true
    (Instance.right_shift_compare (Instance.compress a) (Instance.compress c) < 0);
  (* equal last but different length: lex scan decides at the first
     divergence *)
  let short = inst 1 [ 9 ] in
  let long = inst 1 [ 3; 9 ] in
  Alcotest.(check bool) "lex across lengths" true
    (Instance.right_shift_compare_full long short < 0);
  (* last landmark still dominates everything after the sequence *)
  let early = inst 1 [ 7; 8 ] in
  Alcotest.(check bool) "last dominates" true
    (Instance.right_shift_compare_full early a < 0);
  Alcotest.(check bool) "seq dominates" true
    (Instance.right_shift_compare_full a (inst 2 [ 1 ]) < 0)

let test_overlap_mismatched () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Instance.overlap: landmark lengths differ") (fun () ->
      ignore (Instance.overlap (inst 1 [ 1; 2 ]) (inst 1 [ 1; 2; 3 ])))

let test_different_sequences_never_overlap () =
  Alcotest.(check bool) "diff seq" true
    (Instance.non_overlapping (inst 1 [ 1; 2 ]) (inst 2 [ 1; 2 ]));
  Alcotest.(check bool) "strict diff seq" false
    (Instance.strictly_overlap (inst 1 [ 1; 2 ]) (inst 2 [ 1; 2 ]))

let test_is_landmark_of () =
  let s = Sequence.of_string "ABCAB" in
  Alcotest.(check bool) "valid" true (Instance.is_landmark_of (p "AB") s [| 1; 2 |]);
  Alcotest.(check bool) "valid gapped" true (Instance.is_landmark_of (p "AB") s [| 1; 5 |]);
  Alcotest.(check bool) "wrong event" false (Instance.is_landmark_of (p "AB") s [| 1; 3 |]);
  Alcotest.(check bool) "not increasing" false (Instance.is_landmark_of (p "AB") s [| 2; 2 |]);
  Alcotest.(check bool) "decreasing" false (Instance.is_landmark_of (p "AB") s [| 4; 2 |]);
  Alcotest.(check bool) "out of bounds" false (Instance.is_landmark_of (p "AB") s [| 1; 6 |]);
  Alcotest.(check bool) "wrong length" false (Instance.is_landmark_of (p "AB") s [| 1 |])

(* --- Support_set --- *)

let db = Seqdb.of_strings [ "ABCABCA"; "AABBCCC" ]
let idx = Inverted_index.build db

let test_of_event () =
  let i = Support_set.of_event idx 0 in
  Alcotest.(check int) "size" 5 (Support_set.size i);
  Alcotest.(check int) "sequences" 2 (Support_set.num_sequences i);
  Alcotest.(check (list int)) "sequence ids" [ 1; 2 ] (Support_set.sequences i);
  Alcotest.(check (list (pair int int))) "per-seq counts" [ (1, 3); (2, 2) ]
    (Support_set.per_sequence_counts i);
  let lasts = Array.to_list (Support_set.lasts i) in
  Alcotest.(check (list (pair int int))) "lasts"
    [ (1, 1); (1, 4); (1, 7); (2, 1); (2, 2) ] lasts

let test_of_event_missing () =
  let i = Support_set.of_event idx 9 in
  Alcotest.(check int) "empty" 0 (Support_set.size i);
  Alcotest.(check bool) "is_empty" true (Support_set.is_empty i)

let test_grow_step () =
  (* A -> AB on S1=ABCABCA, S2=AABBCCC:
     S1: (1)->2, (4)->5; (7) dies. S2: (1)->3, (2)->4. *)
  let i = Support_set.grow idx (Support_set.of_event idx 0) 1 in
  Alcotest.(check int) "size" 4 (Support_set.size i);
  let insts = Support_set.instances i in
  let as_triples = List.map (fun x -> Instance.(x.seq, (x.first, x.last))) insts in
  Alcotest.(check (list (pair int (pair int int)))) "instances"
    [ (1, (1, 2)); (1, (4, 5)); (2, (1, 3)); (2, (2, 4)) ]
    as_triples

let test_grow_to_empty () =
  let i = Support_set.grow idx (Support_set.of_event idx 0) 9 in
  Alcotest.(check int) "no extension" 0 (Support_set.size i)

let test_instances_in () =
  let i = Support_set.of_event idx 2 in
  Alcotest.(check int) "C in S1" 2 (Array.length (Support_set.instances_in i ~seq:1));
  Alcotest.(check int) "C in S2" 3 (Array.length (Support_set.instances_in i ~seq:2));
  Alcotest.(check int) "C in S3" 0 (Array.length (Support_set.instances_in i ~seq:3))

(* --- Insgrow full-landmark variant agrees with the compressed one --- *)

let test_full_variant_agrees () =
  let patterns = [ "A"; "AB"; "ABC"; "AA"; "ABA"; "CC"; "CCC"; "BC" ] in
  List.iter
    (fun s ->
      let pat = p s in
      let compressed = Sup_comp.support_set idx pat in
      let full = Sup_comp.landmarks idx pat in
      Alcotest.(check int) (s ^ ": same size") (Support_set.size compressed)
        (List.length full);
      (* compressing the full set gives exactly the compressed set *)
      let compressed_from_full = List.map Instance.compress full in
      Alcotest.(check bool) (s ^ ": same instances") true
        (compressed_from_full = Support_set.instances compressed);
      (* every full landmark is a real landmark *)
      List.iter
        (fun (f : Instance.full) ->
          Alcotest.(check bool) (s ^ ": landmark valid") true
            (Instance.is_landmark_of pat (Seqdb.seq db f.Instance.fseq) f.Instance.landmark))
        full;
      (* pairwise non-overlapping *)
      List.iteri
        (fun k1 f1 ->
          List.iteri
            (fun k2 f2 ->
              if k1 < k2 then
                Alcotest.(check bool) (s ^ ": non-overlap") true
                  (Instance.non_overlapping f1 f2))
            full)
        full)
    patterns

(* --- supComp edge cases --- *)

let test_supcomp_edges () =
  Alcotest.(check int) "empty pattern" 0 (Sup_comp.support idx Pattern.empty);
  Alcotest.(check int) "absent event" 0 (Sup_comp.support idx (p "Z"));
  Alcotest.(check int) "pattern longer than sequences" 0
    (Sup_comp.support idx (p "ABCABCABCABC"));
  Alcotest.(check int) "single event" 5 (Sup_comp.support idx (p "A"))

let test_supcomp_single_sequence_repeats () =
  (* AAAA: instances may share positions as long as they differ at every
     pattern index (Definition 2.3), so {<1,2>, <2,3>, <3,4>} is a
     non-redundant instance set of AA and sup(AA) = 3 (not 2!). Under the
     stronger footnote-1 semantics it would be 2. *)
  let db = Seqdb.of_strings [ "AAAA" ] in
  let idx = Inverted_index.build db in
  Alcotest.(check int) "A" 4 (Sup_comp.support idx (p "A"));
  Alcotest.(check int) "AA" 3 (Sup_comp.support idx (p "AA"));
  Alcotest.(check int) "AAA" 2 (Sup_comp.support idx (p "AAA"));
  Alcotest.(check int) "AAAA" 1 (Sup_comp.support idx (p "AAAA"));
  Alcotest.(check int) "strict AA" 2 (Strict_overlap.support db (p "AA"));
  Alcotest.(check int) "strict AAA" 1 (Strict_overlap.support db (p "AAA"))

let test_reconstruct_from_triples () =
  (* Section III-D: full landmarks re-derived from (i, l1, ln) triples
     coincide with the recomputed leftmost support set. *)
  List.iter
    (fun s ->
      let pat = p s in
      let set = Sup_comp.support_set idx pat in
      let reconstructed = Sup_comp.reconstruct idx pat set in
      let recomputed = Sup_comp.landmarks idx pat in
      Alcotest.(check bool) (s ^ ": reconstruct = landmarks") true
        (List.for_all2 Instance.equal_full reconstructed recomputed))
    [ "A"; "AB"; "ABC"; "ABA"; "CC"; "BC" ];
  (* a non-leftmost set is rejected *)
  let bogus =
    Support_set.unsafe_of_groups
      [| (1, [| { Instance.seq = 1; first = 4; last = 5 } |]) |]
  in
  Alcotest.check_raises "bogus set rejected"
    (Invalid_argument "Sup_comp.reconstruct: set is not a leftmost support set of p")
    (fun () -> ignore (Sup_comp.reconstruct idx (p "ABC") bogus))

let test_grow_from_until () =
  let i = Support_set.of_event idx 0 in
  (* growing A by BC: leftmost support set of ABC has size 4 *)
  (match Sup_comp.grow_from_until idx i (p "BC") ~min_size:4 with
  | Some i' -> Alcotest.(check int) "reached" 4 (Support_set.size i')
  | None -> Alcotest.fail "expected Some");
  (match Sup_comp.grow_from_until idx i (p "BC") ~min_size:5 with
  | Some _ -> Alcotest.fail "expected early abort"
  | None -> ());
  (* abort can trigger mid-growth: B has 4 occurrences < 5 *)
  (match Sup_comp.grow_from_until idx (Support_set.of_event idx 1) (p "C") ~min_size:5 with
  | Some _ -> Alcotest.fail "expected abort on input size"
  | None -> ())

let suite =
  [
    Alcotest.test_case "instance compress" `Quick test_compress;
    Alcotest.test_case "right-shift order" `Quick test_right_shift_order;
    Alcotest.test_case "right-shift order full tie-break" `Quick
      test_right_shift_order_full_tiebreak;
    Alcotest.test_case "overlap length mismatch" `Quick test_overlap_mismatched;
    Alcotest.test_case "cross-sequence overlap" `Quick test_different_sequences_never_overlap;
    Alcotest.test_case "is_landmark_of" `Quick test_is_landmark_of;
    Alcotest.test_case "support set of event" `Quick test_of_event;
    Alcotest.test_case "support set of missing event" `Quick test_of_event_missing;
    Alcotest.test_case "single grow step" `Quick test_grow_step;
    Alcotest.test_case "grow to empty" `Quick test_grow_to_empty;
    Alcotest.test_case "instances_in" `Quick test_instances_in;
    Alcotest.test_case "full variant agrees" `Quick test_full_variant_agrees;
    Alcotest.test_case "supComp edge cases" `Quick test_supcomp_edges;
    Alcotest.test_case "supComp within-sequence repeats" `Quick test_supcomp_single_sequence_repeats;
    Alcotest.test_case "reconstruct from triples" `Quick test_reconstruct_from_triples;
    Alcotest.test_case "grow_from_until" `Quick test_grow_from_until;
  ]
