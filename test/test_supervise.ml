(* The @supervise tier: supervised multi-process shard workers.

   Three layers of proof, mirroring the supervisor's trust boundaries:

   1. Wire: Support_set.encode/decode is the identity on random support
      sets, combine over decoded parts equals the in-process combine, and
      the Shard_worker frame codecs survive a socketpair round trip
      (while a corrupt frame is caught at the CRC, and silence is caught
      by SO_RCVTIMEO — the supervisor's failure signals).

   2. Differential: mining with real rgsworker processes (plain,
      gap-constrained, multi-domain) emits output identical to the
      sequential miner, with zero restarts and no degradation.

   3. Chaos: every process fault site (kill -9, heartbeat hang, corrupt
      reply frame, slow writer) x transient/persistent, injected via the
      RGS_WORKER_FAULT environment contract, still yields identical
      output — through restarts, quarantine or full degradation — and
      a supervisor that cannot spawn at all (bad executable) degrades
      gracefully from birth. *)

open Rgs_sequence
open Rgs_core
open Rgs_server

let signatures results =
  List.map (fun r -> (Pattern.to_string r.Mined.pattern, r.Mined.support)) results

let sig_t = Alcotest.(list (pair string int))

(* the test binary runs from _build/default/test; the worker is a declared
   dune dep one directory over *)
let worker_exe = Filename.concat (Sys.getcwd ()) "../bin/rgsworker.exe"

let quest ~seed =
  Rgs_datagen.Quest_gen.generate
    (Rgs_datagen.Quest_gen.params ~d:20 ~c:8 ~n:20 ~s:3 ~seed ())

(* --- 1. the wire layer --- *)

(* random support sets with the same shape mining produces: grow a
   1-event set a few times so instances have length > 1 *)
let support_set_gen =
  QCheck2.Gen.(
    Gens.db ~num_seqs:8 ~alphabet:5 ~max_len:14 >>= fun db ->
    let idx = Inverted_index.build db in
    let events = Inverted_index.events idx in
    match events with
    | [] -> return (db, Support_set.empty)
    | _ ->
      let event = oneofl events in
      event >>= fun e0 ->
      list_size (int_bound 3) event >|= fun grows ->
      ( db,
        List.fold_left
          (fun s e -> Support_set.grow idx s e)
          (Support_set.of_event idx e0)
          grows ))

let print_support_set (db, s) =
  Format.asprintf "db:@.%a@.set: %a" Seqdb.pp db Support_set.pp s

let test_encode_roundtrip =
  Gens.make ~name:"decode (encode s) = s on random support sets" ~count:150
    support_set_gen print_support_set (fun (_, s) ->
      Support_set.equal s (Support_set.decode (Support_set.encode s)))

let test_combine_decoded_parts =
  Gens.make
    ~name:"combine over encoded/decoded shard parts = in-process grow"
    ~count:120 support_set_gen print_support_set (fun (db, s) ->
      let idx = Inverted_index.build db in
      match Inverted_index.events idx with
      | [] -> true
      | e :: _ ->
        List.for_all
          (fun shards ->
            (* the dispatch every part travels through the wire codec,
               exactly what a worker round trip does to it *)
            let wire_dispatch ~ranges base idx s ev =
              Array.map
                (fun (lo, hi) ->
                  let enc = Support_set.encode (Support_set.slice s ~lo ~hi) in
                  Support_set.decode
                    (Support_set.encode
                       (base idx (Support_set.decode enc) ev)))
                ranges
            in
            let sm = Shard_merge.make ~dispatch:wire_dispatch db ~shards in
            let direct = Support_set.grow idx s e in
            let via_wire = Shard_merge.grow sm Support_set.grow idx s e in
            Support_set.equal direct via_wire)
          [ 1; 2; 3 ])

let test_decode_rejects_garbage () =
  let enc =
    Support_set.encode (Support_set.of_event (Inverted_index.build (quest ~seed:3)) 0)
  in
  let expect_invalid name s =
    match Support_set.decode s with
    | _ -> Alcotest.failf "%s: decode accepted a corrupt payload" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "truncated" (String.sub enc 0 (String.length enc - 8));
  expect_invalid "odd length" (enc ^ "x");
  expect_invalid "trailing words" (enc ^ String.make 16 '\000');
  let flipped = Bytes.of_string enc in
  Bytes.set flipped 0 '\xff';
  expect_invalid "flipped count" (Bytes.to_string flipped)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let sent =
        Shard_worker.Grow
          { req = 42; event = 7; gap = Some (0, 3); part = "payload" }
      in
      Shard_worker.write_to_worker a sent;
      (match Shard_worker.read_to_worker b with
      | Some (Shard_worker.Grow { req = 42; event = 7; gap = Some (0, 3); part = "payload" }) -> ()
      | _ -> Alcotest.fail "to_worker frame did not round-trip");
      Shard_worker.write_from_worker b (Shard_worker.Grown { req = 42; part = "x" });
      (match Shard_worker.read_from_worker a with
      | Some (Shard_worker.Grown { req = 42; part = "x" }) -> ()
      | _ -> Alcotest.fail "from_worker frame did not round-trip");
      (* a deliberately mis-CRC'd frame must fail loudly, not decode *)
      Shard_worker.write_corrupt_frame b;
      (match Shard_worker.read_from_worker a with
      | _ -> Alcotest.fail "corrupt frame was accepted"
      | exception Protocol.Protocol_error msg ->
        Alcotest.(check bool)
          "CRC mismatch reported" true
          (String.length msg > 0));
      (* and silence must trip the receive timeout — the liveness signal *)
      Unix.setsockopt_float a Unix.SO_RCVTIMEO 0.05;
      match Shard_worker.read_from_worker a with
      | _ -> Alcotest.fail "read returned without a frame"
      | exception Protocol.Protocol_error "read timeout" -> ())

(* --- 2. differential: real worker processes, no faults --- *)

let supervised_config ?gap ?worker_env ?(liveness_timeout_s = 5.0)
    ?(restart_budget = 2) ?flap_budget ?(exe = worker_exe) ~shards () =
  Supervisor.config ~shards ~heartbeat_ms:20 ~liveness_timeout_s
    ~restart_budget ?flap_budget ~backoff_base_ms:5 ~backoff_max_ms:20 ?gap
    ~worker_exe:exe ?worker_env ()

let with_supervisor cfg db f =
  let sup = Supervisor.create cfg db in
  Fun.protect ~finally:(fun () -> Supervisor.shutdown sup) (fun () -> f sup)

let mine_supervised ?(mode = Miner.Closed) ?max_gap ?max_length ?domains
    ~shards sup db ~min_sup =
  let config =
    Miner.config ~mode ?max_gap ?max_length ?domains ~shards
      ~shard_dispatch:(Supervisor.dispatch sup) ~min_sup ()
  in
  Miner.mine ~config db

let test_supervised_equals_sequential () =
  let db = quest ~seed:17 in
  let baseline = Miner.mine ~min_sup:3 db in
  with_supervisor (supervised_config ~shards:2 ()) db (fun sup ->
      let report = mine_supervised ~shards:2 sup db ~min_sup:3 in
      Alcotest.check sig_t "supervised = sequential"
        (signatures baseline.Miner.results)
        (signatures report.Miner.results);
      let s = Supervisor.stats sup in
      Alcotest.(check bool) "not degraded" false s.Supervisor.degraded;
      Alcotest.(check int) "no restarts" 0 s.Supervisor.restarts;
      Alcotest.(check int) "one spawn per shard" 2 s.Supervisor.spawns)

let test_supervised_gap_constrained () =
  let db = quest ~seed:23 in
  let config = Miner.config ~mode:Miner.All ~max_gap:2 ~min_sup:3 () in
  let baseline = Miner.mine ~config db in
  with_supervisor
    (supervised_config ~shards:2 ~gap:(0, 2) ())
    db
    (fun sup ->
      let report =
        mine_supervised ~mode:Miner.All ~max_gap:2 ~shards:2 sup db ~min_sup:3
      in
      Alcotest.check sig_t "supervised gap mining = sequential"
        (signatures baseline.Miner.results)
        (signatures report.Miner.results);
      Alcotest.(check bool) "not degraded" false (Supervisor.degraded sup))

let test_supervised_multi_domain () =
  let db = quest ~seed:29 in
  let baseline = Miner.mine ~min_sup:3 db in
  with_supervisor (supervised_config ~shards:2 ()) db (fun sup ->
      (* two pool domains dispatch concurrently into the same two
         workers: the ordered-lock fan-out must neither deadlock nor
         interleave replies across requests *)
      let report = mine_supervised ~domains:2 ~shards:2 sup db ~min_sup:3 in
      Alcotest.check sig_t "supervised multi-domain = sequential"
        (signatures baseline.Miner.results)
        (signatures report.Miner.results);
      let s = Supervisor.stats sup in
      Alcotest.(check int) "no restarts" 0 s.Supervisor.restarts)

let test_supervised_resumable () =
  let db = quest ~seed:31 in
  let baseline = Miner.mine ~min_sup:3 db in
  with_supervisor (supervised_config ~shards:2 ()) db (fun sup ->
      let config =
        Miner.config ~mode:Miner.Closed ~domains:2 ~shards:2
          ~shard_dispatch:(Supervisor.dispatch sup) ~min_sup:3 ()
      in
      let report = Miner.mine_resumable config db in
      Alcotest.check sig_t "supervised mine_resumable = sequential"
        (signatures baseline.Miner.results)
        (signatures report.Miner.results))

(* --- 3. chaos: the process fault sites --- *)

let fault_env plan = [ (Chaos.worker_fault_env, Chaos.worker_fault_to_string plan) ]

let test_chaos_sweep () =
  (* a small db, All mode and max_length 2 bound the growth count: the
     slow-writer site costs 50 ms per grow once armed, and CloGSgrow's
     closure checks would multiply the number of grows *)
  let db =
    Rgs_datagen.Quest_gen.generate
      (Rgs_datagen.Quest_gen.params ~d:12 ~c:6 ~n:10 ~s:3 ~seed:41 ())
  in
  let baseline =
    signatures
      (Miner.mine
         ~config:(Miner.config ~mode:Miner.All ~max_length:2 ~min_sup:3 ())
         db)
        .Miner.results
  in
  let plans =
    (* low triggers so every fault actually fires inside the run *)
    List.concat_map
      (fun psite ->
        List.map
          (fun persist -> { Chaos.wid = 0; psite; after = 2; persist })
          [ false; true ])
      [ Chaos.Proc_kill; Chaos.Proc_hang; Chaos.Proc_corrupt; Chaos.Proc_slow ]
  in
  List.iter
    (fun plan ->
      let before = Metrics.snapshot () in
      with_supervisor
        (supervised_config ~shards:2 ~liveness_timeout_s:0.4
           ~worker_env:(fault_env plan) ())
        db
        (fun sup ->
          let report =
            mine_supervised ~mode:Miner.All ~max_length:2 ~shards:2 sup db
              ~min_sup:3
          in
          let name = Format.asprintf "%a" Chaos.pp_proc_plan plan in
          Alcotest.check sig_t
            (name ^ ": output identical to sequential")
            baseline
            (signatures report.Miner.results);
          let s = Supervisor.stats sup in
          let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
          (match plan.Chaos.psite with
          | Chaos.Proc_slow ->
            (* slowness is not a failure: no restart may fire *)
            Alcotest.(check int) (name ^ ": no restarts") 0 s.Supervisor.restarts
          | Chaos.Proc_kill | Chaos.Proc_corrupt | Chaos.Proc_hang ->
            Alcotest.(check bool)
              (name ^ ": failure detected (restarts > 0)")
              true (s.Supervisor.restarts > 0);
            Alcotest.(check bool)
              (name ^ ": worker_restarts metric moved")
              true
              (Metrics.find d "worker_restarts" > 0));
          (match plan.Chaos.psite with
          | Chaos.Proc_hang ->
            Alcotest.(check bool)
              (name ^ ": liveness deadline tripped")
              true
              (Metrics.find d "worker_heartbeats_missed" > 0)
          | _ -> ());
          if plan.Chaos.persist && plan.Chaos.psite <> Chaos.Proc_slow then
            (* a fault that re-arms on every incarnation must exhaust the
               budget: quarantined shards or a fully degraded supervisor,
               never an infinite restart loop *)
            Alcotest.(check bool)
              (name ^ ": budget enforced (quarantine or degrade)")
              true
              (s.Supervisor.quarantined > 0 || s.Supervisor.degraded)))
    plans

let test_spawn_failure_degrades () =
  let db = quest ~seed:43 in
  let baseline = Miner.mine ~min_sup:3 db in
  let before = Metrics.snapshot () in
  with_supervisor
    (supervised_config ~shards:2 ~exe:"/nonexistent/rgsworker" ())
    db
    (fun sup ->
      Alcotest.(check bool) "degraded from birth" true (Supervisor.degraded sup);
      let report = mine_supervised ~shards:2 sup db ~min_sup:3 in
      Alcotest.check sig_t "degraded run completes with identical output"
        (signatures baseline.Miner.results)
        (signatures report.Miner.results);
      let s = Supervisor.stats sup in
      Alcotest.(check int) "no processes ever spawned" 0 s.Supervisor.spawns;
      let d = Metrics.diff ~before ~after:(Metrics.snapshot ()) in
      Alcotest.(check int) "supervisor_degraded gauge set" 1
        (Metrics.find d "supervisor_degraded"))

let test_flapping_degrades () =
  let db = quest ~seed:47 in
  let baseline = Miner.mine ~min_sup:3 db in
  (* every incarnation of both workers dies on its first request, and the
     per-shard budget is too big to save us: the global flap budget must
     cut the restart storm and degrade the whole run *)
  with_supervisor
    (supervised_config ~shards:2 ~restart_budget:1000 ~flap_budget:3
       ~worker_env:
         (fault_env { Chaos.wid = 0; psite = Chaos.Proc_kill; after = 1; persist = true })
       ())
    db
    (fun sup ->
      let report = mine_supervised ~shards:2 sup db ~min_sup:3 in
      Alcotest.check sig_t "flapping run output identical"
        (signatures baseline.Miner.results)
        (signatures report.Miner.results);
      let s = Supervisor.stats sup in
      Alcotest.(check bool) "degraded" true s.Supervisor.degraded;
      Alcotest.(check bool)
        "restart storm bounded by the flap budget" true
        (s.Supervisor.restarts <= 3 + 2))

(* --- the daemon's stale-socket probe (satellite regression) --- *)

let fresh_sock () =
  let path = Filename.temp_file "rgs-stale" ".sock" in
  Sys.remove path;
  path

let daemon_cfg sock dir = Daemon.config ~socket_path:sock ~state_dir:dir ()

let test_stale_socket_replaced () =
  let sock = fresh_sock () in
  let dir = Filename.temp_file "rgs-stale" ".dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  (* manufacture a crashed daemon's leftover: a bound socket file whose
     owner is gone (closed without unlink) *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.close fd;
  Alcotest.(check bool) "stale socket file exists" true (Sys.file_exists sock);
  let t = Daemon.create (daemon_cfg sock dir) in
  (* a fresh daemon must have claimed the path *)
  Alcotest.(check bool) "socket re-bound" true (Sys.file_exists sock);
  Daemon.request_drain t;
  ignore (Daemon.serve t);
  (try Sys.remove sock with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let test_live_socket_refused () =
  let sock = fresh_sock () in
  let dir = Filename.temp_file "rgs-live" ".dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let a = Daemon.create (daemon_cfg sock dir) in
  let serving = Domain.spawn (fun () -> Daemon.serve a) in
  (* the loser must get EADDRINUSE, not silently steal the socket *)
  (match Daemon.create (daemon_cfg sock dir) with
  | _ -> Alcotest.fail "second daemon bound over a live socket"
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ());
  Daemon.request_drain a;
  ignore (Domain.join serving);
  (try Sys.remove sock with Sys_error _ -> ());
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let test_non_socket_file_preserved () =
  let path = Filename.temp_file "rgs-notsock" ".sock" in
  let oc = open_out path in
  output_string oc "precious data\n";
  close_out oc;
  let dir = Filename.temp_file "rgs-notsock" ".dir" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  (match Daemon.create (daemon_cfg path dir) with
  | _ -> Alcotest.fail "daemon bound over a regular file"
  | exception Unix.Unix_error _ -> ());
  (* the probe must never have unlinked a non-socket *)
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "regular file untouched" "precious data" line;
  Sys.remove path;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let suite =
  [
    test_encode_roundtrip;
    test_combine_decoded_parts;
    Alcotest.test_case "decode rejects garbage" `Quick
      test_decode_rejects_garbage;
    Alcotest.test_case "frame roundtrip + corrupt + timeout" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "supervised = sequential" `Quick
      test_supervised_equals_sequential;
    Alcotest.test_case "supervised gap-constrained" `Quick
      test_supervised_gap_constrained;
    Alcotest.test_case "supervised multi-domain" `Quick
      test_supervised_multi_domain;
    Alcotest.test_case "supervised mine_resumable" `Quick
      test_supervised_resumable;
    Alcotest.test_case "chaos sweep: kill/hang/corrupt/slow" `Quick
      test_chaos_sweep;
    Alcotest.test_case "spawn failure degrades in-process" `Quick
      test_spawn_failure_degrades;
    Alcotest.test_case "flapping workers degrade" `Quick
      test_flapping_degrades;
    Alcotest.test_case "stale socket replaced after probe" `Quick
      test_stale_socket_replaced;
    Alcotest.test_case "live socket refused (EADDRINUSE)" `Quick
      test_live_socket_refused;
    Alcotest.test_case "non-socket file never deleted" `Quick
      test_non_socket_file_preserved;
  ]
