open Rgs_sequence
open Rgs_core

(* Messages between the supervisor and one shard worker process. Framing
   is [Protocol]'s length + CRC-32 header over a Marshal payload, so a
   torn or corrupted frame is detected at the CRC before Marshal ever
   sees the bytes; the worker's stdin/stdout carry nothing else. *)

type to_worker =
  | Grow of {
      req : int;
      event : Event.t;
      gap : (int * int) option;  (* (min_gap, max_gap) *)
      part : string;  (* Support_set.encode of this shard's slice *)
    }
  | Shutdown

type from_worker =
  | Ready of { lo : int; hi : int; digest : string }
  | Heartbeat
  | Grown of { req : int; part : string }
  | Failed of { req : int; reason : string }

let write_to_worker fd (m : to_worker) =
  Protocol.write_frame fd (Marshal.to_string m [])

let read_to_worker fd : to_worker option =
  Option.map (fun s -> (Marshal.from_string s 0 : to_worker)) (Protocol.read_frame fd)

let write_from_worker fd (m : from_worker) =
  Protocol.write_frame fd (Marshal.to_string m [])

let read_from_worker fd : from_worker option =
  Option.map (fun s -> (Marshal.from_string s 0 : from_worker)) (Protocol.read_frame fd)

(* --- corrupt-frame injection ([Chaos.Proc_corrupt]) --- *)

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

(* a well-formed header whose CRC is deliberately wrong — the shape of a
   torn write that flipped payload bits *)
let write_corrupt_frame fd =
  let payload = "corrupt-frame-fault" in
  let len = String.length payload in
  let buf = Bytes.create (8 + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.set_int32_be buf 4
    (Int32.of_int ((Checkpoint.crc32 payload lxor 0x5A5A5A5A) land 0xFFFFFFFF));
  Bytes.blit_string payload 0 buf 8 len;
  write_all fd buf 0 (8 + len)

(* --- the serve loop --- *)

let log_src = Logs.Src.create "rgs.worker" ~doc:"Shard worker process"

module Log = (val Logs.src_log log_src : Logs.LOG)

let armed_fault () =
  let restart_gen =
    match Sys.getenv_opt Chaos.worker_restart_env with
    | Some s -> ( try int_of_string s with Failure _ -> 0)
    | None -> 0
  in
  match Sys.getenv_opt Chaos.worker_fault_env with
  | None -> None
  | Some s -> (
    match Chaos.worker_fault_of_string s with
    | Some (site, after, persist) when persist || restart_gen = 0 ->
      Some (site, after, persist)
    | Some _ -> None (* transient fault already spent in a prior incarnation *)
    | None -> None (* garbage in the env var must not kill the worker *))

let serve ?(heartbeat_ms = 50) ~store ~lo ~hi () =
  let in_fd = Unix.stdin and out_fd = Unix.stdout in
  (* a dying supervisor must surface as EPIPE on our writes, not SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let db, _codec = Rgs_store.Store.open_db store in
  let wlock = Mutex.create () in
  let send m =
    Mutex.lock wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wlock)
      (fun () -> write_from_worker out_fd m)
  in
  let fault = armed_fault () in
  (* [Ready] goes out before the index build (which can take a while on a
     paper-scale corpus) so the supervisor's handshake never races the
     build; heartbeats start immediately after for the same reason. *)
  send (Ready { lo; hi; digest = Seqdb.content_digest db });
  let alive = Atomic.make true in
  let hung = Atomic.make false in
  let heartbeat =
    Domain.spawn (fun () ->
        let period = float_of_int heartbeat_ms /. 1000.0 in
        let rec beat () =
          if Atomic.get alive && not (Atomic.get hung) then begin
            (try Unix.sleepf period
             with Unix.Unix_error (Unix.EINTR, _, _) -> ());
            if Atomic.get alive && not (Atomic.get hung) then begin
              match send Heartbeat with
              | () -> beat ()
              | exception (Unix.Unix_error _ | Sys_error _) ->
                (* supervisor gone; the main loop will see EOF too *)
                Atomic.set alive false
            end
          end
        in
        beat ())
  in
  let finish () =
    Atomic.set alive false;
    Domain.join heartbeat
  in
  Fun.protect ~finally:finish (fun () ->
      let idx = Inverted_index.build db in
      Log.info (fun m ->
          m "serving shard [%d, %d] of %s (pid %d)" lo hi store (Unix.getpid ()));
      let grows = ref 0 in
      let slow = ref false in
      let reply req event gap part =
        if !slow then Unix.sleepf 0.05;
        let m =
          match
            let s = Support_set.decode part in
            match gap with
            | None -> Support_set.grow idx s event
            | Some (min_gap, max_gap) ->
              Gap_constrained.grow ~min_gap idx ~max_gap s event
          with
          | grown -> Grown { req; part = Support_set.encode grown }
          | exception e -> Failed { req; reason = Printexc.to_string e }
        in
        send m
      in
      let rec loop () =
        match read_to_worker in_fd with
        | None | Some Shutdown -> ()
        | Some (Grow { req; event; gap; part }) ->
          incr grows;
          let firing =
            match fault with
            | Some (site, after, persist)
              when !grows = after || (persist && !grows > after) ->
              Some site
            | _ -> None
          in
          (match firing with
          | Some Chaos.Proc_kill ->
            (* simulate a segfault-class crash: no cleanup, no reply *)
            Unix.kill (Unix.getpid ()) Sys.sigkill
          | Some Chaos.Proc_hang ->
            (* stop heartbeating and never reply: only the supervisor's
               liveness deadline can detect this state *)
            Atomic.set hung true;
            while true do
              Unix.sleep 3600
            done
          | Some Chaos.Proc_corrupt ->
            Mutex.lock wlock;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock wlock)
              (fun () -> write_corrupt_frame out_fd);
            loop ()
          | Some Chaos.Proc_slow ->
            slow := true;
            reply req event gap part;
            loop ()
          | None ->
            reply req event gap part;
            loop ())
      in
      match loop () with
      | () -> ()
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
      | exception Protocol.Protocol_error _ ->
        (* a torn request frame means the supervisor died mid-write or
           gave up on us; either way there is nobody left to serve *)
        ())
