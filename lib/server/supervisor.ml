open Rgs_sequence
open Rgs_core

let log_src = Logs.Src.create "rgs.supervisor" ~doc:"Shard worker supervision"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  shards : int;
  heartbeat_ms : int;
  liveness_timeout_s : float;
  restart_budget : int;
  flap_budget : int;
  backoff_base_ms : int;
  backoff_max_ms : int;
  seed : int;
  gap : (int * int) option;
  worker_exe : string option;
  worker_env : (string * string) list;
}

let config ?(heartbeat_ms = 50) ?(liveness_timeout_s = 5.0)
    ?(restart_budget = 3) ?flap_budget ?(backoff_base_ms = 10)
    ?(backoff_max_ms = 500) ?(seed = 0) ?gap ?worker_exe ?(worker_env = [])
    ~shards () =
  if shards < 1 then invalid_arg "Supervisor.config: shards must be >= 1";
  if heartbeat_ms < 1 then
    invalid_arg "Supervisor.config: heartbeat_ms must be >= 1";
  if liveness_timeout_s <= 0.0 then
    invalid_arg "Supervisor.config: liveness_timeout_s must be > 0";
  if restart_budget < 0 then
    invalid_arg "Supervisor.config: restart_budget must be >= 0";
  if backoff_base_ms < 0 || backoff_max_ms < backoff_base_ms then
    invalid_arg "Supervisor.config: backoff window must be 0 <= base <= max";
  let flap_budget =
    match flap_budget with
    | Some b ->
      if b < 0 then invalid_arg "Supervisor.config: flap_budget must be >= 0";
      b
    | None -> max 4 (shards * (restart_budget + 1))
  in
  {
    shards;
    heartbeat_ms;
    liveness_timeout_s;
    restart_budget;
    flap_budget;
    backoff_base_ms;
    backoff_max_ms;
    seed;
    gap;
    worker_exe;
    worker_env;
  }

type proc = { pid : int; fd : Unix.file_descr }

type worker = {
  shard : int;
  lo : int;
  hi : int;
  lock : Mutex.t;
  mutable proc : proc option;
  mutable attempts : int;  (* failed incarnations so far *)
  mutable quarantined : bool;
  mutable grows : int;  (* requests served by the current incarnation *)
  mutable span_start : int;  (* Trace.now at the current spawn *)
}

type t = {
  cfg : config;
  trace : Trace.t;
  digest : string;
  ranges : (int * int) array;
  exe : string option;
  store : string option;
  temp_store : bool;
  workers : worker array;
  degraded : bool Atomic.t;
  closed : bool Atomic.t;
  spawns : int Atomic.t;
  total_restarts : int Atomic.t;
  req_counter : int Atomic.t;
}

(* --- resolution of the worker executable and the shared store --- *)

let default_worker_exe () =
  match Sys.getenv_opt "RGS_WORKER_EXE" with
  | Some p -> if Sys.file_exists p then Some p else None
  | None ->
    let dir = Filename.dirname Sys.executable_name in
    List.find_opt Sys.file_exists
      [ Filename.concat dir "rgsworker.exe"; Filename.concat dir "rgsworker" ]

let resolve_exe cfg =
  match cfg.worker_exe with
  | Some p -> if Sys.file_exists p then Some p else None
  | None -> default_worker_exe ()

let resolve_store ?store db =
  match store with
  | Some p when Sys.file_exists p -> Some (p, false)
  | _ -> (
    (* pack a temporary store so workers can map the database; any
       failure here (read-only tmp, full disk) degrades instead of
       raising — supervision is best-effort by design *)
    match
      let path = Filename.temp_file "rgs_supervisor" ".rgsdb" in
      Rgs_store.Store.write ~path db;
      path
    with
    | path -> Some (path, true)
    | exception _ -> None)

(* --- deterministic backoff jitter (splitmix64, as in [Chaos]) --- *)

let splitmix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int

let backoff_s t w =
  let attempt = w.attempts in
  let expo = t.cfg.backoff_base_ms * (1 lsl min 16 (attempt - 1)) in
  let capped = min t.cfg.backoff_max_ms expo in
  (* jitter in [0.5, 1.5) of the capped delay, deterministic per
     (seed, shard, attempt) so chaos sweeps replay exactly *)
  let state = ref (Int64.of_int (t.cfg.seed + (w.shard * 1000003) + attempt)) in
  let jitter = 0.5 +. (float_of_int (splitmix state mod 1024) /. 1024.0) in
  float_of_int capped /. 1000.0 *. jitter

(* --- lifecycle --- *)

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error _ -> ()

(* record the incarnation's lifetime span, kill it, reap it *)
let teardown t w p =
  Trace.span t.trace Trace.Proc_worker ~a0:w.shard ~a1:w.grows
    ~start:w.span_start;
  (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
  (try Unix.close p.fd with Unix.Unix_error _ -> ());
  reap p.pid;
  w.proc <- None

let degrade t ~reason =
  if not (Atomic.exchange t.degraded true) then begin
    Metrics.observe_max Metrics.supervisor_degraded 1;
    Log.warn (fun m ->
        m "degrading to in-process sharded mining: %s (output is unchanged)"
          reason)
  end

let quarantine t w ~reason =
  if not w.quarantined then begin
    w.quarantined <- true;
    Metrics.hit Metrics.shard_quarantines;
    Log.warn (fun m ->
        m "shard %d quarantined after %d failed incarnation(s): %s \
           (computing it in-process from now on)"
          w.shard w.attempts reason);
    if Array.for_all (fun w -> w.quarantined) t.workers then
      degrade t ~reason:"every shard is quarantined"
  end

(* account one failed incarnation; decides restart vs quarantine vs
   global degradation. Call with [w.lock] held and [w.proc = None]. *)
let note_failure t w ~reason =
  Metrics.hit Metrics.worker_restarts;
  w.attempts <- w.attempts + 1;
  let total = 1 + Atomic.fetch_and_add t.total_restarts 1 in
  Log.warn (fun m ->
      m "shard %d worker failed (%s); failure %d/%d for the shard, %d/%d \
         globally"
        w.shard reason w.attempts
        (t.cfg.restart_budget + 1)
        total t.cfg.flap_budget);
  if total > t.cfg.flap_budget then
    degrade t ~reason:"workers are flapping (global restart budget spent)"
  else if w.attempts > t.cfg.restart_budget then quarantine t w ~reason

let env_with overrides =
  let keys = List.map fst overrides in
  let keep e =
    match String.index_opt e '=' with
    | Some i -> not (List.mem (String.sub e 0 i) keys)
    | None -> true
  in
  Array.append
    (Array.of_seq (Seq.filter keep (Array.to_seq (Unix.environment ()))))
    (Array.of_list (List.map (fun (k, v) -> k ^ "=" ^ v) overrides))

let spawn t w =
  match (t.exe, t.store) with
  | None, _ -> Error "no worker executable"
  | _, None -> Error "no shared store"
  | Some exe, Some store -> (
    let parent, child = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.set_close_on_exec parent;
    let args =
      [|
        exe;
        "--store"; store;
        "--lo"; string_of_int w.lo;
        "--hi"; string_of_int w.hi;
        "--heartbeat-ms"; string_of_int t.cfg.heartbeat_ms;
      |]
    in
    let env =
      env_with
        ((Chaos.worker_restart_env, string_of_int w.attempts)
        :: t.cfg.worker_env)
    in
    match Unix.create_process_env exe args env child child Unix.stderr with
    | exception e ->
      (try Unix.close parent with Unix.Unix_error _ -> ());
      (try Unix.close child with Unix.Unix_error _ -> ());
      Error (Printexc.to_string e)
    | pid ->
      Unix.close child;
      Unix.setsockopt_float parent Unix.SO_RCVTIMEO t.cfg.liveness_timeout_s;
      Atomic.incr t.spawns;
      Metrics.hit Metrics.worker_spawns;
      w.grows <- 0;
      w.span_start <- Trace.now t.trace;
      let fail reason =
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close parent with Unix.Unix_error _ -> ());
        reap pid;
        Trace.span t.trace Trace.Proc_worker ~a0:w.shard ~a1:0
          ~start:w.span_start;
        Error reason
      in
      (* handshake: [Ready] is the worker's first frame, sent before its
         index build, so this read is bounded by exec + store-map time *)
      (match Shard_worker.read_from_worker parent with
      | Some (Shard_worker.Ready { lo; hi; digest })
        when lo = w.lo && hi = w.hi && digest = t.digest ->
        w.proc <- Some { pid; fd = parent };
        Log.debug (fun m -> m "shard %d: worker pid %d ready" w.shard pid);
        Ok ()
      | Some (Shard_worker.Ready _) ->
        fail "handshake mismatch (wrong range or database digest)"
      | Some _ -> fail "unexpected first frame"
      | None -> fail "worker exited before handshake"
      | exception Protocol.Protocol_error msg -> fail ("handshake: " ^ msg)
      | exception Unix.Unix_error (e, _, _) ->
        fail ("handshake: " ^ Unix.error_message e)))

(* make the shard's worker live, restarting through the backoff/budget
   machinery as needed. Call with [w.lock] held. [false] = the shard is
   quarantined or the supervisor degraded: compute in-process. *)
let rec ensure t w =
  if w.quarantined || Atomic.get t.degraded || Atomic.get t.closed then false
  else
    match w.proc with
    | Some _ -> true
    | None -> (
      if w.attempts > 0 then begin
        let d = backoff_s t w in
        if d > 0.0 then
          try Unix.sleepf d with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end;
      match spawn t w with
      | Ok () -> true
      | Error reason ->
        note_failure t w ~reason;
        ensure t w)

(* a detected failure of the live incarnation: tear down + account *)
let restart t w ~reason =
  (match w.proc with Some p -> teardown t w p | None -> ());
  note_failure t w ~reason

let await t w p ~req =
  let rec go () =
    match Shard_worker.read_from_worker p.fd with
    | Some Shard_worker.Heartbeat -> go ()
    | Some (Shard_worker.Grown { req = r; part }) when r = req -> Ok part
    | Some (Shard_worker.Grown _) -> Error "stale reply frame"
    | Some (Shard_worker.Failed { req = r; reason }) when r = req ->
      Error ("worker-side failure: " ^ reason)
    | Some (Shard_worker.Failed _) -> Error "stale failure frame"
    | Some (Shard_worker.Ready _) -> Error "unexpected handshake frame"
    | None -> Error "worker exited (EOF)"
    | exception Protocol.Protocol_error msg ->
      if msg = "read timeout" then begin
        Metrics.hit Metrics.worker_heartbeats_missed;
        Error
          (Printf.sprintf "liveness timeout (no heartbeat within %gs)"
             t.cfg.liveness_timeout_s)
      end
      else Error ("corrupt reply frame: " ^ msg)
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  ignore w;
  go ()

(* one request against one shard, with restart + resend on failure.
   Call with [w.lock] held; [sent] carries the fan-out phase's request id
   when the send already happened. [None] = compute this part in-process. *)
let rec exchange t w ~enc ~event ~sent =
  if w.quarantined || Atomic.get t.degraded || Atomic.get t.closed then None
  else if not (ensure t w) then None
  else begin
    let p = match w.proc with Some p -> p | None -> assert false in
    let outcome =
      match sent with
      | Some req -> await t w p ~req
      | None -> (
        let req = Atomic.fetch_and_add t.req_counter 1 in
        match
          Shard_worker.write_to_worker p.fd
            (Shard_worker.Grow { req; event; gap = t.cfg.gap; part = enc })
        with
        | () -> await t w p ~req
        | exception Unix.Unix_error (e, _, _) ->
          Error ("send: " ^ Unix.error_message e)
        | exception Protocol.Protocol_error msg -> Error ("send: " ^ msg))
    in
    match outcome with
    | Ok part -> (
      match Support_set.decode part with
      | s ->
        w.grows <- w.grows + 1;
        Some s
      | exception Invalid_argument msg ->
        restart t w ~reason:msg;
        exchange t w ~enc ~event ~sent:None)
    | Error reason ->
      restart t w ~reason;
      exchange t w ~enc ~event ~sent:None
  end

(* --- the dispatch closure handed to [Shard_merge] --- *)

let dispatch t : Shard_merge.dispatch =
 fun ~ranges base idx s e ->
  let n = Array.length ranges in
  let inproc i =
    let lo, hi = ranges.(i) in
    base idx (Support_set.slice s ~lo ~hi) e
  in
  if
    Atomic.get t.closed || Atomic.get t.degraded || ranges <> t.ranges
    (* a layout this supervisor was not built for: serve it in-process
       rather than ship slices to workers holding different shards *)
  then Array.init n inproc
  else begin
    let encs =
      Array.init n (fun i ->
          let lo, hi = ranges.(i) in
          Support_set.encode (Support_set.slice s ~lo ~hi))
    in
    (* Fan out: take every shard's lock in ascending order and send its
       request, so all workers compute concurrently; then collect (and
       unlock) in the same ascending order. The fixed acquisition order
       makes concurrent dispatches from several pool domains
       deadlock-free; failed shards restart + resend inside [exchange]
       and fall back to [inproc] when quarantined or degraded. *)
    let sent = Array.make n None in
    for i = 0 to n - 1 do
      let w = t.workers.(i) in
      Mutex.lock w.lock;
      if (not (w.quarantined || Atomic.get t.degraded)) && ensure t w then begin
        let p = match w.proc with Some p -> p | None -> assert false in
        let req = Atomic.fetch_and_add t.req_counter 1 in
        match
          Shard_worker.write_to_worker p.fd
            (Shard_worker.Grow { req; event = e; gap = t.cfg.gap; part = encs.(i) })
        with
        | () -> sent.(i) <- Some req
        | exception Unix.Unix_error (err, _, _) ->
          restart t w ~reason:("send: " ^ Unix.error_message err)
        | exception Protocol.Protocol_error msg ->
          restart t w ~reason:("send: " ^ msg)
      end
    done;
    Array.init n (fun i ->
        let w = t.workers.(i) in
        let part =
          match exchange t w ~enc:encs.(i) ~event:e ~sent:sent.(i) with
          | Some part -> part
          | None -> inproc i
        in
        Mutex.unlock w.lock;
        part)
  end

(* --- construction / shutdown / introspection --- *)

let create ?(trace = Trace.null) ?store cfg db =
  (* dead workers must surface as EPIPE writes, not SIGPIPE death *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let ranges = Seqdb.shard db cfg.shards in
  let exe = resolve_exe cfg in
  let store, temp_store =
    if exe = None then (None, false)
    else
      match resolve_store ?store db with
      | Some (p, temp) -> (Some p, temp)
      | None -> (None, false)
  in
  let workers =
    Array.mapi
      (fun shard (lo, hi) ->
        {
          shard;
          lo;
          hi;
          lock = Mutex.create ();
          proc = None;
          attempts = 0;
          quarantined = false;
          grows = 0;
          span_start = 0;
        })
      ranges
  in
  let t =
    {
      cfg;
      trace;
      digest = Seqdb.content_digest db;
      ranges;
      exe;
      store;
      temp_store;
      workers;
      degraded = Atomic.make false;
      closed = Atomic.make false;
      spawns = Atomic.make 0;
      total_restarts = Atomic.make 0;
      req_counter = Atomic.make 0;
    }
  in
  (match (exe, store) with
  | None, _ -> degrade t ~reason:"no worker executable found"
  | _, None -> degrade t ~reason:"could not pack a shared .rgsdb store"
  | Some exe, Some store ->
    Log.info (fun m ->
        m "supervising %d shard worker(s): exe %s, store %s" cfg.shards exe
          store);
    (* spawn eagerly so startup failures surface (and degrade) before
       mining begins rather than on the first growth *)
    Array.iter
      (fun w ->
        Mutex.lock w.lock;
        ignore (ensure t w);
        Mutex.unlock w.lock)
      t.workers);
  t

let shutdown t =
  if not (Atomic.exchange t.closed true) then begin
    Array.iter
      (fun w ->
        Mutex.lock w.lock;
        (match w.proc with
        | None -> ()
        | Some p ->
          Trace.span t.trace Trace.Proc_worker ~a0:w.shard ~a1:w.grows
            ~start:w.span_start;
          (* polite first: Shutdown frame + close, then a short grace
             before SIGKILL so a mid-reply worker can finish its write *)
          (try Shard_worker.write_to_worker p.fd Shard_worker.Shutdown
           with Unix.Unix_error _ | Protocol.Protocol_error _ -> ());
          (try Unix.close p.fd with Unix.Unix_error _ -> ());
          let deadline = Unix.gettimeofday () +. 0.5 in
          let rec wait () =
            match Unix.waitpid [ Unix.WNOHANG ] p.pid with
            | 0, _ ->
              if Unix.gettimeofday () > deadline then begin
                (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
                reap p.pid
              end
              else begin
                (try Unix.sleepf 0.01
                 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
                wait ()
              end
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
            | exception Unix.Unix_error _ -> ()
          in
          wait ();
          w.proc <- None);
        Mutex.unlock w.lock)
      t.workers;
    if t.temp_store then
      match t.store with
      | Some p -> ( try Sys.remove p with Sys_error _ -> ())
      | None -> ()
  end

type stats = {
  spawns : int;
  restarts : int;
  quarantined : int;
  degraded : bool;
}

let stats (t : t) =
  {
    spawns = Atomic.get t.spawns;
    restarts = Atomic.get t.total_restarts;
    quarantined =
      Array.fold_left
        (fun n (w : worker) -> if w.quarantined then n + 1 else n)
        0 t.workers;
    degraded = Atomic.get t.degraded;
  }

let degraded (t : t) = Atomic.get t.degraded
let num_shards (t : t) = Array.length t.ranges
let ranges (t : t) = t.ranges

let pp_stats ppf s =
  Format.fprintf ppf
    "workers: %d spawn(s), %d restart(s), %d quarantined shard(s)%s" s.spawns
    s.restarts s.quarantined
    (if s.degraded then ", degraded to in-process" else "")
