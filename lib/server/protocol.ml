open Rgs_core

let magic = "RGSD"
let version = 1
let max_frame_bytes = 64 * 1024 * 1024

exception Protocol_error of string

type format = Tokens | Chars | Spmf

type db_source =
  | Inline of { format : format; text : string }
  | File of { format : format; path : string }

type mode = All | Closed

type job_spec = {
  job_id : string;
  db : db_source;
  min_sup : int;
  mode : mode;
  max_length : int option;
  max_gap : int option;
  deadline_s : float option;
  max_nodes : int option;
  max_words : int option;
}

type request = Submit of job_spec | Stats | Ping

type job_summary = {
  job_id : string;
  outcome : string;
  stopped_by : string option;
  quarantined : int;
  total : int;
  elapsed_s : float;
  seq : int;
}

type response =
  | Accepted of { job_id : string; position : int }
  | Overloaded of { job_id : string; pending : int; capacity : int }
  | Duplicate of { job_id : string }
  | Rejected of { job_id : string; reason : string }
  | Results of { job_id : string; patterns : (int list * int) list; seq : int }
  | Job_done of job_summary
  | Stats_frame of (string * int) list
  | Pong
  | Error_frame of string

let valid_job_id id =
  let n = String.length id in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       id

(* --- byte-level I/O, EINTR-safe --- *)

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

(* [None] only on EOF before the first byte; a read timeout (SO_RCVTIMEO
   makes the read fail with EAGAIN) becomes Protocol_error so callers
   under timeout discipline cannot hang. *)
let read_exact fd len =
  let b = Bytes.create len in
  let rec go off =
    if off >= len then Some b
    else
      match Unix.read fd b off (len - off) with
      | 0 ->
        if off = 0 then None
        else raise (Protocol_error "connection closed mid-frame")
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Protocol_error "read timeout")
  in
  go 0

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let write_frame ?(fire_fault = false) fd payload =
  if fire_fault then Budget.Fault.fire Budget.Fault.Socket_write;
  let len = String.length payload in
  if len > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame too large (%d bytes)" len));
  let buf = Bytes.create (8 + len) in
  put_u32 buf 0 len;
  put_u32 buf 4 (Checkpoint.crc32 payload);
  Bytes.blit_string payload 0 buf 8 len;
  write_all fd buf 0 (8 + len)

let read_frame fd =
  match read_exact fd 8 with
  | None -> None
  | Some hdr ->
    let len = get_u32 hdr 0 in
    let crc = get_u32 hdr 4 in
    if len > max_frame_bytes then
      raise (Protocol_error (Printf.sprintf "frame too large (%d bytes)" len));
    let payload =
      match read_exact fd len with
      | Some b -> Bytes.unsafe_to_string b
      | None -> raise (Protocol_error "connection closed mid-frame")
    in
    if Checkpoint.crc32 payload <> crc then
      raise (Protocol_error "frame CRC mismatch");
    Some payload

let hello = magic ^ String.make 1 (Char.chr version)

let send_hello fd =
  write_all fd (Bytes.of_string hello) 0 (String.length hello)

let read_hello fd =
  match read_exact fd (String.length hello) with
  | Some b -> Bytes.to_string b = hello
  | None -> false
  | exception Protocol_error _ -> false

(* --- payload codecs --- *)

let request_to_string (r : request) = Marshal.to_string r []
let response_to_string (r : response) = Marshal.to_string r []

let request_of_string s : request =
  try Marshal.from_string s 0
  with _ -> raise (Protocol_error "undecodable request payload")

let response_of_string s : response =
  try Marshal.from_string s 0
  with _ -> raise (Protocol_error "undecodable response payload")
