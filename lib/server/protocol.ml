open Rgs_core

let magic = "RGSD"
let version = 2
let min_version = 1
let max_frame_bytes = 64 * 1024 * 1024

exception Protocol_error of string

type format = Tokens | Chars | Spmf

type db_source =
  | Inline of { format : format; text : string }
  | File of { format : format; path : string }

type mode = All | Closed

type query_spec = Q_all | Q_target of int list | Q_top_k of int

type job_spec = {
  job_id : string;
  db : db_source;
  min_sup : int;
  mode : mode;
  max_length : int option;
  max_gap : int option;
  deadline_s : float option;
  max_nodes : int option;
  max_words : int option;
  query : query_spec;
  compress_delta : float option;
}

type request = Submit of job_spec | Stats | Ping

(* Marshal is structural: a v1 [job_spec] payload is a 9-field block, and
   reading it through the 11-field v2 record would walk off the end. The
   v1 layouts are kept verbatim so old payloads decode through their own
   shape and are upgraded explicitly. *)
module V1 = struct
  type job_spec = {
    job_id : string;
    db : db_source;
    min_sup : int;
    mode : mode;
    max_length : int option;
    max_gap : int option;
    deadline_s : float option;
    max_nodes : int option;
    max_words : int option;
  }

  type request = Submit of job_spec | Stats | Ping
end

(* a v1 client cannot express a query: it gets the default mine-all *)
let upgrade_v1 (s : V1.job_spec) : job_spec =
  {
    job_id = s.V1.job_id;
    db = s.V1.db;
    min_sup = s.V1.min_sup;
    mode = s.V1.mode;
    max_length = s.V1.max_length;
    max_gap = s.V1.max_gap;
    deadline_s = s.V1.deadline_s;
    max_nodes = s.V1.max_nodes;
    max_words = s.V1.max_words;
    query = Q_all;
    compress_delta = None;
  }

let downgrade_v1 (s : job_spec) : V1.job_spec =
  if s.query <> Q_all || s.compress_delta <> None then
    raise (Protocol_error "query options require protocol version 2");
  {
    V1.job_id = s.job_id;
    db = s.db;
    min_sup = s.min_sup;
    mode = s.mode;
    max_length = s.max_length;
    max_gap = s.max_gap;
    deadline_s = s.deadline_s;
    max_nodes = s.max_nodes;
    max_words = s.max_words;
  }

type job_summary = {
  job_id : string;
  outcome : string;
  stopped_by : string option;
  quarantined : int;
  total : int;
  elapsed_s : float;
  seq : int;
}

type response =
  | Accepted of { job_id : string; position : int }
  | Overloaded of { job_id : string; pending : int; capacity : int }
  | Duplicate of { job_id : string }
  | Rejected of { job_id : string; reason : string }
  | Results of { job_id : string; patterns : (int list * int) list; seq : int }
  | Job_done of job_summary
  | Stats_frame of (string * int) list
  | Pong
  | Error_frame of string

let valid_job_id id =
  let n = String.length id in
  n >= 1 && n <= 64
  && String.for_all
       (function
         | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true
         | _ -> false)
       id

(* --- byte-level I/O, EINTR-safe --- *)

let rec write_all fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len

(* [None] only on EOF before the first byte; a read timeout (SO_RCVTIMEO
   makes the read fail with EAGAIN) becomes Protocol_error so callers
   under timeout discipline cannot hang. *)
let read_exact fd len =
  let b = Bytes.create len in
  let rec go off =
    if off >= len then Some b
    else
      match Unix.read fd b off (len - off) with
      | 0 ->
        if off = 0 then None
        else raise (Protocol_error "connection closed mid-frame")
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        raise (Protocol_error "read timeout")
  in
  go 0

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let write_frame ?(fire_fault = false) fd payload =
  if fire_fault then Budget.Fault.fire Budget.Fault.Socket_write;
  let len = String.length payload in
  if len > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame too large (%d bytes)" len));
  let buf = Bytes.create (8 + len) in
  put_u32 buf 0 len;
  put_u32 buf 4 (Checkpoint.crc32 payload);
  Bytes.blit_string payload 0 buf 8 len;
  write_all fd buf 0 (8 + len)

let read_frame fd =
  match read_exact fd 8 with
  | None -> None
  | Some hdr ->
    let len = get_u32 hdr 0 in
    let crc = get_u32 hdr 4 in
    if len > max_frame_bytes then
      raise (Protocol_error (Printf.sprintf "frame too large (%d bytes)" len));
    let payload =
      match read_exact fd len with
      | Some b -> Bytes.unsafe_to_string b
      | None -> raise (Protocol_error "connection closed mid-frame")
    in
    if Checkpoint.crc32 payload <> crc then
      raise (Protocol_error "frame CRC mismatch");
    Some payload

let hello_of_version v = magic ^ String.make 1 (Char.chr v)
let hello = hello_of_version version
let version_supported v = v >= min_version && v <= version

let send_hello ?(version = version) fd =
  let h = hello_of_version version in
  write_all fd (Bytes.of_string h) 0 (String.length h)

let read_hello ?(version = version) fd =
  let h = hello_of_version version in
  match read_exact fd (String.length h) with
  | Some b -> Bytes.to_string b = h
  | None -> false
  | exception Protocol_error _ -> false

(* --- payload codecs --- *)

let request_to_string ?(version = version) (r : request) =
  if version = 1 then
    let r1 : V1.request =
      match r with
      | Submit spec -> V1.Submit (downgrade_v1 spec)
      | Stats -> V1.Stats
      | Ping -> V1.Ping
    in
    Marshal.to_string r1 []
  else Marshal.to_string r []

let response_to_string (r : response) = Marshal.to_string r []

let request_of_string ?(version = version) s : request =
  if version = 1 then
    match (Marshal.from_string s 0 : V1.request) with
    | V1.Submit spec -> Submit (upgrade_v1 spec)
    | V1.Stats -> Stats
    | V1.Ping -> Ping
    | exception _ -> raise (Protocol_error "undecodable request payload")
  else
    try Marshal.from_string s 0
    with _ -> raise (Protocol_error "undecodable request payload")

let response_of_string s : response =
  try Marshal.from_string s 0
  with _ -> raise (Protocol_error "undecodable response payload")
