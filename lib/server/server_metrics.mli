(** Daemon-side metrics, registered in the process-wide {!Metrics}
    registry (so they appear in stats frames, periodic dumps and
    [--stats] files next to the mining counters). All names carry a
    [daemon_] prefix; OBSERVABILITY.md documents each one. *)

open Rgs_sequence

val jobs_submitted : Metrics.counter
(** [Submit] requests that passed spec validation (before admission). *)

val jobs_completed : Metrics.counter
(** Jobs that ran to a natural finish and streamed a [Job_done]. *)

val jobs_overloaded : Metrics.counter
(** Submissions load-shed with a typed [Overloaded] response because the
    bounded queue was full. *)

val jobs_duplicate : Metrics.counter
(** Submissions rejected because the job id was already live
    (overlapping resume attempt). *)

val jobs_rejected : Metrics.counter
(** Submissions rejected for any other reason (bad spec, unreadable
    database, draining daemon). *)

val jobs_disconnected : Metrics.counter
(** Jobs cancelled — budget cancelled, queue entry dropped — because
    their client's connection went away. *)

val jobs_stalled : Metrics.counter
(** Jobs the idle watchdog cancelled because their roots stopped making
    progress for longer than the configured idle timeout. *)

val jobs_drained : Metrics.counter
(** Jobs dropped from the queue or cancelled in flight by a graceful
    drain (SIGTERM). *)

val jobs_running : Metrics.counter
(** Gauge: jobs currently executing on the pool. *)

val jobs_pending : Metrics.counter
(** Gauge: jobs admitted but not yet started. *)

val clients_connected : Metrics.counter
(** Gauge: live client connections. *)

val socket_write_failures : Metrics.counter
(** Response-frame writes that failed (EPIPE, timeout, injected
    {!Budget.Fault.Socket_write}); each one sheds the client. *)
