open Rgs_core

let log_src = Logs.Src.create "rgs.daemon" ~doc:"Mining service daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  socket_path : string;
  state_dir : string;
  queue_capacity : int;
  workers : int;
  limits : Job.limits;
  idle_timeout_s : float option;
  drain_grace_s : float;
  send_timeout_s : float;
  result_chunk : int;
  stats_path : string option;
  stats_interval_s : float;
  tick_s : float;
  shards : int option;
  shard_workers : int option;
}

let config ?(queue_capacity = 16) ?(workers = 2) ?(limits = Job.no_limits)
    ?idle_timeout_s ?(drain_grace_s = 5.0) ?(send_timeout_s = 10.0)
    ?(result_chunk = 512) ?stats_path ?(stats_interval_s = 10.0)
    ?(tick_s = 0.05) ?shards ?shard_workers ~socket_path ~state_dir () =
  if queue_capacity < 1 then invalid_arg "Daemon.config: queue_capacity >= 1";
  if workers < 1 then invalid_arg "Daemon.config: workers >= 1";
  if drain_grace_s < 0.0 then invalid_arg "Daemon.config: drain_grace_s >= 0";
  if send_timeout_s <= 0.0 then invalid_arg "Daemon.config: send_timeout_s > 0";
  if result_chunk < 1 then invalid_arg "Daemon.config: result_chunk >= 1";
  if stats_interval_s <= 0.0 then
    invalid_arg "Daemon.config: stats_interval_s > 0";
  if tick_s <= 0.0 then invalid_arg "Daemon.config: tick_s > 0";
  (match idle_timeout_s with
  | Some s when s <= 0.0 -> invalid_arg "Daemon.config: idle_timeout_s > 0"
  | _ -> ());
  (match shards with
  | Some n when n < 1 -> invalid_arg "Daemon.config: shards >= 1"
  | _ -> ());
  (match shard_workers with
  | Some n when n < 1 -> invalid_arg "Daemon.config: shard_workers >= 1"
  | _ -> ());
  (match (shards, shard_workers) with
  | Some s, Some w when s <> w ->
    invalid_arg
      "Daemon.config: shards and shard_workers disagree (one worker process \
       serves one shard)"
  | _ -> ());
  {
    socket_path;
    state_dir;
    queue_capacity;
    workers;
    limits;
    idle_timeout_s;
    drain_grace_s;
    send_timeout_s;
    result_chunk;
    stats_path;
    stats_interval_s;
    tick_s;
    shards;
    shard_workers;
  }

type conn = {
  cid : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable hello_done : bool;
  mutable version : int;  (* negotiated in the hello; decodes this conn *)
  mutable alive : bool;
}

type job_result =
  | Finished of Miner.report
  | Job_error of string  (* load/checkpoint/crash: typed rejection *)

type completion = { job : Job.t; result : job_result }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  sched : Scheduler.t;
  drain_flag : bool Atomic.t;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  completions : completion Queue.t;
  comp_lock : Mutex.t;
  conns : (int, conn) Hashtbl.t;  (* keyed by client id *)
  mutable next_cid : int;
  mutable draining : bool;
  mutable drain_started : float;
  mutable drain_forced : bool;
  mutable interrupted : bool;  (* a drain dropped or cancelled a job *)
  mutable comp_seq : int;  (* daemon-wide completion sequence *)
}

(* A socket file left by a crashed daemon would make bind fail forever,
   but blindly unlinking would silently hijack (and orphan) a live
   daemon's socket — and would even delete a regular file that happens
   to sit at the path. Probe first: only a socket nobody answers on is
   stale and removed. *)
let remove_stale_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () ->
          try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception
              Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
            false)
    in
    if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
    Log.info (fun m -> m "removing stale socket %s (nobody listening)" path);
    (try Unix.unlink path with Unix.Unix_error _ -> ()))
  | _ -> ()
(* not a socket: leave the file alone and let bind fail loudly *)

let create cfg =
  if not (Sys.file_exists cfg.state_dir) then Unix.mkdir cfg.state_dir 0o755;
  remove_stale_socket cfg.socket_path;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  {
    cfg;
    listen_fd;
    sched = Scheduler.create ~capacity:cfg.queue_capacity;
    drain_flag = Atomic.make false;
    pipe_r;
    pipe_w;
    completions = Queue.create ();
    comp_lock = Mutex.create ();
    conns = Hashtbl.create 16;
    next_cid = 0;
    draining = false;
    drain_started = 0.0;
    drain_forced = false;
    interrupted = false;
    comp_seq = 0;
  }

let request_drain t = Atomic.set t.drain_flag true

(* --- event-loop side: connections --- *)

let disconnect t conn =
  if conn.alive then begin
    conn.alive <- false;
    Hashtbl.remove t.conns conn.cid;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Atomic.set Server_metrics.clients_connected (Hashtbl.length t.conns);
    let dropped = Scheduler.cancel_client t.sched ~client:conn.cid in
    Metrics.add Server_metrics.jobs_disconnected (List.length dropped);
    Log.info (fun m ->
        m "client %d gone (%d queued job(s) dropped)" conn.cid
          (List.length dropped))
  end

(* All response writes funnel through here: any failure — EPIPE from a
   vanished client, a send timeout on a stuck one, an injected
   Socket_write fault — sheds the client instead of crashing the loop. *)
let send t conn resp =
  if not conn.alive then false
  else
    match
      Protocol.write_frame ~fire_fault:true conn.fd
        (Protocol.response_to_string resp)
    with
    | () -> true
    | exception
        ( Unix.Unix_error _ | Protocol.Protocol_error _ | Chaos.Injected _
        | Sys_error _ ) ->
      Metrics.hit Server_metrics.socket_write_failures;
      disconnect t conn;
      false

let accept_conn t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.send_timeout_s;
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    let conn =
      {
        cid;
        fd;
        inbuf = Buffer.create 256;
        hello_done = false;
        version = Protocol.version;
        alive = true;
      }
    in
    Hashtbl.replace t.conns cid conn;
    Atomic.set Server_metrics.clients_connected (Hashtbl.length t.conns);
    Log.info (fun m -> m "client %d connected" cid)
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()

(* --- requests --- *)

let stats_frame () = Metrics.snapshot () |> Metrics.to_list

let handle_request t conn (req : Protocol.request) =
  match req with
  | Protocol.Ping -> ignore (send t conn Protocol.Pong)
  | Protocol.Stats -> ignore (send t conn (Protocol.Stats_frame (stats_frame ())))
  | Protocol.Submit spec -> (
    match Job.validate spec with
    | Error reason ->
      Metrics.hit Server_metrics.jobs_rejected;
      ignore
        (send t conn
           (Protocol.Rejected { job_id = spec.Protocol.job_id; reason }))
    | Ok () -> (
      Metrics.hit Server_metrics.jobs_submitted;
      let spec = Job.clamp t.cfg.limits spec in
      let job = Job.create ~client:conn.cid spec in
      let job_id = spec.Protocol.job_id in
      match Scheduler.submit t.sched job with
      | Scheduler.Admitted position ->
        Log.info (fun m ->
            m "job %s admitted for client %d (queue depth %d)" job_id conn.cid
              position);
        ignore (send t conn (Protocol.Accepted { job_id; position }))
      | Scheduler.Overloaded { pending; capacity } ->
        Metrics.hit Server_metrics.jobs_overloaded;
        Log.info (fun m -> m "job %s load-shed (queue full)" job_id);
        ignore (send t conn (Protocol.Overloaded { job_id; pending; capacity }))
      | Scheduler.Duplicate ->
        Metrics.hit Server_metrics.jobs_duplicate;
        ignore (send t conn (Protocol.Duplicate { job_id }))
      | Scheduler.Draining ->
        Metrics.hit Server_metrics.jobs_rejected;
        ignore
          (send t conn (Protocol.Rejected { job_id; reason = "draining" }))))

(* Incremental frame parser over the connection's input buffer; returns
   [false] when the connection violated the protocol and must be shed. *)
let parse_conn t conn =
  let data = Buffer.contents conn.inbuf in
  let len = String.length data in
  let pos = ref 0 in
  let ok = ref true in
  let u32 off =
    (Char.code data.[off] lsl 24)
    lor (Char.code data.[off + 1] lsl 16)
    lor (Char.code data.[off + 2] lsl 8)
    lor Char.code data.[off + 3]
  in
  (try
     if (not conn.hello_done) && len - !pos >= String.length Protocol.hello
     then begin
       let n = String.length Protocol.hello in
       let m = String.length Protocol.magic in
       let v = Char.code data.[!pos + m] in
       if
         String.sub data !pos m <> Protocol.magic
         || not (Protocol.version_supported v)
       then begin
         ok := false;
         raise Exit
       end;
       pos := !pos + n;
       conn.hello_done <- true;
       conn.version <- v;
       (* echo the client's hello verbatim, settling the connection on its
          version; a failed write sheds the client below *)
       try Protocol.send_hello ~version:v conn.fd
       with Unix.Unix_error _ | Sys_error _ ->
         ok := false;
         raise Exit
     end;
     if conn.hello_done then begin
       let continue = ref true in
       while !continue && conn.alive do
         if len - !pos < 8 then continue := false
         else begin
           let flen = u32 !pos in
           let crc = u32 (!pos + 4) in
           if flen > Protocol.max_frame_bytes then begin
             ok := false;
             raise Exit
           end;
           if len - !pos < 8 + flen then continue := false
           else begin
             let payload = String.sub data (!pos + 8) flen in
             pos := !pos + 8 + flen;
             if Checkpoint.crc32 payload <> crc then begin
               ok := false;
               raise Exit
             end;
             match Protocol.request_of_string ~version:conn.version payload with
             | req -> handle_request t conn req
             | exception Protocol.Protocol_error _ ->
               ok := false;
               raise Exit
           end
         end
       done
     end
   with Exit -> ());
  let rest = String.sub data !pos (len - !pos) in
  Buffer.clear conn.inbuf;
  Buffer.add_string conn.inbuf rest;
  !ok

let on_readable t conn =
  let chunk_len = 65536 in
  let chunk = Bytes.create chunk_len in
  match Unix.read conn.fd chunk 0 chunk_len with
  | 0 -> disconnect t conn
  | n ->
    Buffer.add_subbytes conn.inbuf chunk 0 n;
    if not (parse_conn t conn) then begin
      ignore (send t conn (Protocol.Error_frame "protocol error"));
      disconnect t conn
    end
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | exception Unix.Unix_error _ -> disconnect t conn

(* --- worker side --- *)

let push_completion t comp =
  Mutex.lock t.comp_lock;
  Queue.push comp t.completions;
  Mutex.unlock t.comp_lock;
  (* self-pipe wakeup; a full pipe already guarantees a wakeup *)
  try ignore (Unix.write t.pipe_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()

let run_job t (job : Job.t) =
  match Job.load_db job.Job.spec with
  | Error msg -> Job_error msg
  | Ok db -> (
    (* the budget exists from here on, so the deadline is relative to
       start and the watchdog can observe node progress *)
    let budget = Job.budget_of job.Job.spec in
    Scheduler.start_budget t.sched job budget;
    (* sharding is a server-wide deployment knob, not part of the wire
       spec: output (and checkpoints) are identical either way. With
       --shard-workers the growths additionally run in supervised
       per-shard processes; a job on a mapped .rgsdb store shares that
       file with its workers, anything else gets a temporary pack. *)
    let supervisor =
      match t.cfg.shard_workers with
      | None -> None
      | Some n ->
        let store =
          match job.Job.spec.Protocol.db with
          | Protocol.File { path; _ }
            when Filename.check_suffix path ".rgsdb" ->
            Some path
          | _ -> None
        in
        Some (Supervisor.create ?store (Supervisor.config ~shards:n ()) db)
    in
    let shards =
      match t.cfg.shard_workers with Some _ as w -> w | None -> t.cfg.shards
    in
    let cfg =
      Job.config_of ?shards
        ?shard_dispatch:(Option.map Supervisor.dispatch supervisor)
        job.Job.spec
    in
    let ckpt =
      Job.checkpoint_path ~state_dir:t.cfg.state_dir job.Job.spec.Protocol.job_id
    in
    match
      Fun.protect
        ~finally:(fun () -> Option.iter Supervisor.shutdown supervisor)
        (fun () ->
          Miner.mine_resumable ~budget ~checkpoint:ckpt ~resume:true cfg db)
    with
    | report ->
      (* δ-cover compression is a post-pass: the checkpoint (and any
         resume) always holds the uncompressed answer *)
      let report =
        match job.Job.spec.Protocol.compress_delta with
        | None -> report
        | Some delta ->
          let covers =
            Rgs_post.Compress.delta_cover ~delta report.Miner.results
          in
          {
            report with
            Miner.results = Rgs_post.Compress.representatives covers;
          }
      in
      Finished report
    | exception Checkpoint.Corrupt msg ->
      Job_error ("checkpoint: " ^ msg)
    | exception e -> Job_error ("internal error: " ^ Printexc.to_string e))

let worker_loop t () =
  let rec loop () =
    match Scheduler.next_job t.sched with
    | `Drain -> ()
    | `Job job ->
      let result =
        match run_job t job with
        | r -> r
        | exception e -> Job_error ("internal error: " ^ Printexc.to_string e)
      in
      Scheduler.finish t.sched job;
      push_completion t { job; result };
      loop ()
  in
  loop ()

(* --- completions --- *)

let signatures results =
  List.map
    (fun m -> (Pattern.to_list m.Mined.pattern, m.Mined.support))
    results

let rec chunked n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
      | rest -> (List.rev acc, rest)
    in
    let chunk, rest = take n [] l in
    chunk :: chunked n rest

let next_seq t =
  t.comp_seq <- t.comp_seq + 1;
  t.comp_seq

let send_job_done t conn ~job_id ~outcome ~stopped_by ~quarantined ~total
    ~elapsed_s =
  let seq = next_seq t in
  match conn with
  | None -> ()
  | Some conn ->
    ignore
      (send t conn
         (Protocol.Job_done
            {
              Protocol.job_id;
              outcome;
              stopped_by;
              quarantined;
              total;
              elapsed_s;
              seq;
            }))

let handle_completion t { job; result } =
  let job_id = job.Job.spec.Protocol.job_id in
  let conn = Hashtbl.find_opt t.conns job.Job.client in
  match (result, job.Job.cancel_reason) with
  | _, Some Job.Disconnect ->
    (* the client is gone; its checkpoint stays for a future resume *)
    Metrics.hit Server_metrics.jobs_disconnected;
    Log.info (fun m -> m "job %s cancelled: client disconnected" job_id)
  | Job_error msg, _ ->
    Metrics.hit Server_metrics.jobs_rejected;
    Log.warn (fun m -> m "job %s failed: %s" job_id msg);
    ignore
      (Option.map
         (fun c -> send t c (Protocol.Rejected { job_id; reason = msg }))
         conn)
  | Finished report, reason ->
    (match reason with
    | Some Job.Stalled -> Metrics.hit Server_metrics.jobs_stalled
    | Some Job.Drain -> Metrics.hit Server_metrics.jobs_drained
    | Some Job.Disconnect -> ()
    | None -> Metrics.hit Server_metrics.jobs_completed);
    let patterns = signatures report.Miner.results in
    let total = List.length patterns in
    (* stream result chunks; a failed write sheds the client and the
       remaining sends become no-ops *)
    List.iteri
      (fun i chunk ->
        match conn with
        | Some c ->
          ignore
            (send t c (Protocol.Results { job_id; patterns = chunk; seq = i }))
        | None -> ())
      (chunked t.cfg.result_chunk patterns);
    send_job_done t conn ~job_id
      ~outcome:(Budget.to_string report.Miner.outcome)
      ~stopped_by:(Option.map Job.cancel_reason_name reason)
      ~quarantined:report.Miner.quarantined ~total
      ~elapsed_s:report.Miner.elapsed_s;
    Log.info (fun m ->
        m "job %s done: %d pattern(s), %s%s" job_id total
          (Budget.to_string report.Miner.outcome)
          (match reason with
          | Some r -> " (stopped by " ^ Job.cancel_reason_name r ^ ")"
          | None -> ""))

let process_completions t =
  let rec go () =
    Mutex.lock t.comp_lock;
    let c = Queue.take_opt t.completions in
    Mutex.unlock t.comp_lock;
    match c with
    | None -> ()
    | Some comp ->
      handle_completion t comp;
      go ()
  in
  go ()

let completions_pending t =
  Mutex.lock t.comp_lock;
  let n = Queue.length t.completions in
  Mutex.unlock t.comp_lock;
  n > 0

let drain_pipe t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.pipe_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
  in
  go ()

(* --- the event loop --- *)

let begin_drain t =
  t.draining <- true;
  t.drain_started <- Unix.gettimeofday ();
  Log.info (fun m -> m "drain requested: no longer admitting jobs");
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  let dropped = Scheduler.drain t.sched in
  if dropped <> [] then t.interrupted <- true;
  List.iter
    (fun (job : Job.t) ->
      Metrics.hit Server_metrics.jobs_drained;
      send_job_done t
        (Hashtbl.find_opt t.conns job.Job.client)
        ~job_id:job.Job.spec.Protocol.job_id ~outcome:"cancelled"
        ~stopped_by:(Some "drain") ~quarantined:0 ~total:0 ~elapsed_s:0.0)
    dropped

let force_drain t =
  t.drain_forced <- true;
  let cancelled = Scheduler.cancel_running_for_drain t.sched in
  if cancelled <> [] then begin
    t.interrupted <- true;
    Log.info (fun m ->
        m "drain grace expired: cancelling %d running job(s)"
          (List.length cancelled))
  end

let serve t =
  let workers = List.init t.cfg.workers (fun _ -> Domain.spawn (worker_loop t)) in
  let stats =
    Option.map
      (fun path ->
        Stats_dump.start ~interval_s:t.cfg.stats_interval_s ~path ())
      t.cfg.stats_path
  in
  Log.info (fun m ->
      m "serving on %s (%d worker(s), queue capacity %d)" t.cfg.socket_path
        t.cfg.workers t.cfg.queue_capacity);
  let rec loop () =
    let now = Unix.gettimeofday () in
    if Atomic.get t.drain_flag && not t.draining then begin_drain t;
    if
      t.draining && (not t.drain_forced)
      && now -. t.drain_started > t.cfg.drain_grace_s
    then force_drain t;
    (match t.cfg.idle_timeout_s with
    | Some idle_timeout_s ->
      ignore (Scheduler.scan_watchdog t.sched ~now ~idle_timeout_s)
    | None -> ());
    if
      t.draining
      && Scheduler.running t.sched = 0
      && not (completions_pending t)
    then ()
    else begin
      let read_fds =
        t.pipe_r
        :: ((if t.draining then [] else [ t.listen_fd ])
           @ Hashtbl.fold (fun _ c acc -> c.fd :: acc) t.conns [])
      in
      let ready, _, _ =
        try Unix.select read_fds [] [] t.cfg.tick_s
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = t.pipe_r then begin
            drain_pipe t;
            process_completions t
          end
          else if (not t.draining) && fd = t.listen_fd then accept_conn t
          else
            match
              Hashtbl.fold
                (fun _ c acc -> if c.fd = fd then Some c else acc)
                t.conns None
            with
            | Some conn -> on_readable t conn
            | None -> ())
        ready;
      loop ()
    end
  in
  loop ();
  List.iter Domain.join workers;
  (* a worker may have finished between the last pipe read and its join *)
  process_completions t;
  Option.iter Stats_dump.stop stats;
  Hashtbl.iter
    (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  Hashtbl.reset t.conns;
  (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
  (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
  Log.info (fun m ->
      m "drain complete (%s)" (if t.interrupted then "jobs interrupted" else "clean"));
  if t.interrupted then 130 else 0

let run cfg =
  let t = create cfg in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let handler = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  serve t
