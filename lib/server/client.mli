(** Blocking client for the [rgsminerd] protocol — used by the daemon's
    tests and usable as a library entry point.

    Every socket operation runs under a receive/send timeout
    ([SO_RCVTIMEO]/[SO_SNDTIMEO], default 30 s), translated into
    {!Protocol.Protocol_error} on expiry, so a caller can never hang on a
    wedged daemon — a property the CI watchdog relies on. *)

type t

val connect : ?version:int -> ?timeout_s:float -> string -> t
(** [connect path] opens the daemon's Unix-domain socket at [path] and
    performs the hello exchange. [version] (default
    {!Protocol.version}) pins the protocol version the connection speaks
    — pass [1] to act as a pre-query client (its requests travel in the
    v1 payload layout, and a [Submit] whose spec carries a query raises
    {!Protocol.Protocol_error} at encode time).
    @raise Invalid_argument on a version outside
    [[Protocol.min_version, Protocol.version]]
    @raise Unix.Unix_error when nothing listens at [path]
    @raise Protocol.Protocol_error when the daemon refuses the hello. *)

val submit : t -> Protocol.job_spec -> Protocol.response
(** Send a [Submit] and return the admission response (one of
    [Accepted]/[Overloaded]/[Duplicate]/[Rejected]). Result frames follow
    later — interleaved with other traffic — via {!next_response} or
    {!collect_job}. *)

val stats : t -> (string * int) list
(** One [Stats] round trip. Any streamed job frames that arrive before
    the [Stats_frame] are queued for later {!next_response} calls. *)

val ping : t -> bool
(** One [Ping]/[Pong] round trip; [false] on anything else. *)

val next_response : t -> Protocol.response option
(** Next frame from the daemon ([None] on clean EOF), consuming queued
    frames first. *)

val collect_job :
  t -> job_id:string -> (int list * int) list * Protocol.job_summary
(** Read frames until this job's [Job_done], accumulating its [Results]
    chunks in order; frames of other jobs are queued, not lost.
    @raise Protocol.Protocol_error on EOF before the job finished. *)

val close : t -> unit
(** Close the connection (abruptly, from the daemon's point of view —
    exactly what a vanished client looks like). Idempotent. *)
