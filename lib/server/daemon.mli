(** The [rgsminerd] serving loop: a fault-tolerant, long-running mining
    service over a Unix-domain socket.

    Architecture: one event-loop domain owns every socket — it accepts
    connections, parses request frames incrementally, answers admission
    decisions, and streams completed jobs' result frames — while
    [config.workers] pool domains pull admitted jobs from the
    {!Scheduler} and run each one through {!Miner.mine_resumable} with a
    fresh per-job {!Budget} (request limits clamped by the server-wide
    {!Job.limits}) and a per-job durable checkpoint log under
    [config.state_dir]. Workers hand finished jobs back to the event loop
    over an in-process queue plus a self-pipe, so all socket writes stay
    on one domain.

    Robustness properties, each exercised by the daemon test suite:

    - {b Admission control}: the pending queue is bounded; beyond it,
      submissions get a typed [Overloaded] response in bounded time and
      in-flight jobs are undisturbed. Dispatch is round-robin across
      clients.
    - {b Crash isolation}: a job that crashes — a poison root, a corrupt
      checkpoint, an undecodable database — is answered with a typed
      response; the daemon itself keeps serving.
    - {b Disconnect detection}: a vanished client (EOF, or any failed
      response write, including injected {!Budget.Fault.Socket_write}
      faults) has its queued jobs dropped and its running jobs' budgets
      cancelled, releasing pool slots promptly.
    - {b Durability}: each job's completed roots are checkpointed as they
      finish; resubmitting a job id — after a disconnect, a drain, or a
      daemon kill -9 and restart — resumes instead of restarting, and
      finishes with output identical to an uninterrupted run.
    - {b Graceful drain}: SIGTERM (or {!request_drain}) stops admission,
      lets in-flight jobs finish for [config.drain_grace_s], then cancels
      the stragglers — their final checkpoint records ([Run_outcome])
      are still appended — and {!serve} returns 130 if the drain
      interrupted or dropped any job, 0 on a clean drain.
    - {b Idle watchdog}: with [config.idle_timeout_s] set, a running job
      whose budget node count stops advancing for that long is cancelled
      ([stopped_by = "watchdog"]) so a wedged job cannot hold a pool slot
      forever.

    Observability: [Stats] requests answer with a metrics frame at any
    time, and [config.stats_path] enables a periodic {!Stats_dump}. *)

type config = {
  socket_path : string;  (** Unix-domain socket to listen on *)
  state_dir : string;  (** per-job checkpoint logs live here *)
  queue_capacity : int;  (** bounded pending queue (default 16) *)
  workers : int;  (** pool domains running jobs (default 2) *)
  limits : Job.limits;  (** server-wide clamps on per-job budgets *)
  idle_timeout_s : float option;  (** idle-watchdog threshold (default off) *)
  drain_grace_s : float;  (** drain grace before force-cancel (default 5) *)
  send_timeout_s : float;
      (** [SO_SNDTIMEO] on client sockets: a consumer stuck longer than
          this is shed (default 10) *)
  result_chunk : int;  (** patterns per [Results] frame (default 512) *)
  stats_path : string option;  (** periodic stats dump target (default off) *)
  stats_interval_s : float;  (** dump period (default 10) *)
  tick_s : float;
      (** event-loop tick: drain/watchdog latency bound (default 0.05) *)
  shards : int option;
      (** run every job's instance growths over this many database shards
          ({!Shard_merge}) — a server-wide deployment knob, invisible in
          job output and checkpoints (default unsharded) *)
  shard_workers : int option;
      (** additionally run each job's per-shard growths in this many
          supervised [rgsworker] processes ({!Supervisor}), one per
          shard: crash-isolated, heartbeat-monitored, restarted with
          backoff, degrading to in-process growth when spawning fails —
          job output and checkpoints are identical in every case
          (default in-process). Implies [shards]; when both are set they
          must agree. *)
}

val config :
  ?queue_capacity:int ->
  ?workers:int ->
  ?limits:Job.limits ->
  ?idle_timeout_s:float ->
  ?drain_grace_s:float ->
  ?send_timeout_s:float ->
  ?result_chunk:int ->
  ?stats_path:string ->
  ?stats_interval_s:float ->
  ?tick_s:float ->
  ?shards:int ->
  ?shard_workers:int ->
  socket_path:string ->
  state_dir:string ->
  unit ->
  config
(** Smart constructor with the defaults above.
    @raise Invalid_argument on non-positive sizes or timeouts, or when
    [shards] and [shard_workers] are both set but differ. *)

type t

val create : config -> t
(** Create the state directory if needed, bind and listen on
    [socket_path], and set up the worker plumbing. A leftover socket
    file at the path is {e probed} first: one nobody answers on (a
    previous daemon crashed before unlinking it) is removed and
    replaced; one a live daemon still serves raises
    [Unix.Unix_error (EADDRINUSE, "bind", path)] instead of silently
    hijacking it, and a non-socket file at the path is never deleted.
    Clients may connect as soon as [create] returns; their requests are
    processed once {!serve} runs.
    @raise Unix.Unix_error when binding fails or the socket is live. *)

val serve : t -> int
(** Run the event loop until a drain completes. Returns the process exit
    code: [0] for a clean drain, [130] when the drain interrupted or
    dropped jobs. Call from the domain that should own the sockets; tests
    run it in a spawned domain. *)

val request_drain : t -> unit
(** Begin a graceful drain: stop admitting, finish or cancel in-flight
    jobs, then make {!serve} return. Async-signal-safe (one atomic
    store); this is what the SIGTERM handler calls. Idempotent. *)

val run : config -> int
(** [create], install SIGTERM/SIGINT handlers that {!request_drain} (and
    ignore SIGPIPE — broken clients must surface as [EPIPE] writes, not
    process death), then {!serve}. The [rgsminerd] binary is a thin
    wrapper over this. *)
