open Rgs_sequence

let jobs_submitted = Metrics.register "daemon_jobs_submitted" Metrics.Counter
let jobs_completed = Metrics.register "daemon_jobs_completed" Metrics.Counter
let jobs_overloaded = Metrics.register "daemon_jobs_overloaded" Metrics.Counter
let jobs_duplicate = Metrics.register "daemon_jobs_duplicate" Metrics.Counter
let jobs_rejected = Metrics.register "daemon_jobs_rejected" Metrics.Counter

let jobs_disconnected =
  Metrics.register "daemon_jobs_disconnected" Metrics.Counter

let jobs_stalled = Metrics.register "daemon_jobs_stalled" Metrics.Counter
let jobs_drained = Metrics.register "daemon_jobs_drained" Metrics.Counter
let jobs_running = Metrics.register "daemon_jobs_running" Metrics.Gauge
let jobs_pending = Metrics.register "daemon_jobs_pending" Metrics.Gauge

let clients_connected =
  Metrics.register "daemon_clients_connected" Metrics.Gauge

let socket_write_failures =
  Metrics.register "daemon_socket_write_failures" Metrics.Counter
