open Rgs_sequence

type t = {
  stop_flag : bool Atomic.t;
  ticker : unit Domain.t;
  baseline : Metrics.snapshot option;
  path : string;
  mutable stopped : bool;
}

let write ?baseline ~path () =
  let now = Metrics.snapshot () in
  let snap =
    match baseline with
    | Some before -> Metrics.diff ~before ~after:now
    | None -> now
  in
  (* temp + rename in the target directory: readers never see a torn
     file, and the rename stays on one filesystem. The temp keeps the
     target's [.json] suffix so [Metrics.write_stats] picks the same
     format it would for the final path. *)
  let tmp =
    if Filename.check_suffix path ".json" then path ^ ".tmp.json"
    else path ^ ".tmp"
  in
  match
    Metrics.write_stats ~path:tmp snap;
    Sys.rename tmp path
  with
  | () -> ()
  | exception Sys_error _ ->
    (* a stats dump must never kill the run it observes *)
    (try Sys.remove tmp with Sys_error _ -> ())

let start ?baseline ~interval_s ~path () =
  if interval_s <= 0.0 then
    invalid_arg "Stats_dump.start: interval_s must be > 0";
  let stop_flag = Atomic.make false in
  let ticker =
    Domain.spawn (fun () ->
        (* sleep in short slices so [stop] is prompt even with long
           intervals *)
        let rec tick elapsed =
          if not (Atomic.get stop_flag) then
            if elapsed >= interval_s then begin
              write ?baseline ~path ();
              tick 0.0
            end
            else begin
              let slice = Float.min 0.05 (interval_s -. elapsed) in
              (try Unix.sleepf slice
               with Unix.Unix_error (Unix.EINTR, _, _) -> ());
              tick (elapsed +. slice)
            end
        in
        tick 0.0)
  in
  { stop_flag; ticker; baseline; path; stopped = false }

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stop_flag true;
    Domain.join t.ticker;
    (* final write: the file always ends with the run's last reading *)
    write ?baseline:t.baseline ~path:t.path ()
  end
