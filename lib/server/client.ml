type t = {
  fd : Unix.file_descr;
  version : int;  (* negotiated in the hello; encodes our requests *)
  queued : Protocol.response Queue.t;
      (* frames read while waiting for a specific reply *)
  mutable closed : bool;
}

let connect ?(version = Protocol.version) ?(timeout_s = 30.0) path =
  if not (Protocol.version_supported version) then
    invalid_arg (Printf.sprintf "Client.connect: unsupported version %d" version);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX path);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
    Protocol.send_hello ~version fd;
    if not (Protocol.read_hello ~version fd) then
      raise (Protocol.Protocol_error "daemon refused the hello")
  with
  | () -> { fd; version; queued = Queue.create (); closed = false }
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let send t req =
  Protocol.write_frame t.fd (Protocol.request_to_string ~version:t.version req)

let read_response t =
  match Protocol.read_frame t.fd with
  | None -> None
  | Some payload -> Some (Protocol.response_of_string payload)

let next_response t =
  match Queue.take_opt t.queued with
  | Some r -> Some r
  | None -> read_response t

(* Round-trip for a control request: job frames may arrive interleaved;
   queue them and return the first control reply. *)
let rec control_reply t =
  match read_response t with
  | None -> raise (Protocol.Protocol_error "daemon closed the connection")
  | Some ((Results _ | Job_done _) as streamed) ->
    Queue.push streamed t.queued;
    control_reply t
  | Some r -> r

let submit t spec =
  send t (Protocol.Submit spec);
  control_reply t

let stats t =
  send t Protocol.Stats;
  match control_reply t with
  | Protocol.Stats_frame l -> l
  | r ->
    raise
      (Protocol.Protocol_error
         ("unexpected reply to Stats: "
         ^ (match r with
           | Protocol.Pong -> "Pong"
           | Protocol.Error_frame m -> "Error_frame " ^ m
           | _ -> "admission frame")))

let ping t =
  send t Protocol.Ping;
  match control_reply t with Protocol.Pong -> true | _ -> false

let collect_job t ~job_id =
  let chunks = ref [] in
  let finished = ref None in
  (* first drain already-queued frames once, keeping the others queued *)
  let rec drain_queued n =
    if n > 0 then begin
      (match Queue.pop t.queued with
      | Protocol.Results r when r.job_id = job_id ->
        chunks := r.patterns :: !chunks
      | Protocol.Job_done s when s.Protocol.job_id = job_id ->
        finished := Some s
      | other -> Queue.push other t.queued);
      drain_queued (n - 1)
    end
  in
  drain_queued (Queue.length t.queued);
  let rec go () =
    match !finished with
    | Some s -> (List.concat (List.rev !chunks), s)
    | None -> (
      match read_response t with
      | None ->
        raise
          (Protocol.Protocol_error
             (Printf.sprintf "connection closed before job %s finished" job_id))
      | Some (Protocol.Results r) when r.job_id = job_id ->
        chunks := r.patterns :: !chunks;
        go ()
      | Some (Protocol.Job_done s) when s.Protocol.job_id = job_id ->
        (List.concat (List.rev !chunks), s)
      | Some other ->
        Queue.push other t.queued;
        go ())
  in
  go ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
