(** One mining job inside the daemon: spec validation, server-side limit
    clamping, database loading, and the mutable lifecycle record shared
    between the event loop, the scheduler and the pool workers.

    A job's identity is its client-chosen [job_id]; the id also names the
    job's durable checkpoint log under the daemon's state directory, which
    is what makes resubmission after a crash, a disconnect or a drain a
    {e resume} rather than a restart. All mutable fields are guarded by
    the owning {!Scheduler}'s lock. *)

open Rgs_sequence
open Rgs_core

type limits = {
  max_deadline_s : float option;  (** ceiling on any job's deadline *)
  max_nodes : int option;  (** ceiling on any job's DFS-node budget *)
  max_words : int option;  (** ceiling on any job's heap budget *)
}
(** Server-wide clamps: a job may ask for less, never for more. [None]
    leaves that axis unlimited. *)

val no_limits : limits

type cancel_reason =
  | Disconnect  (** the client connection went away *)
  | Stalled  (** the idle watchdog saw no root progress *)
  | Drain  (** a graceful drain cancelled the job *)

val cancel_reason_name : cancel_reason -> string
(** ["disconnect"] / ["watchdog"] / ["drain"] — the [stopped_by] wire
    value. *)

type t = {
  spec : Protocol.job_spec;
  client : int;  (** owning connection id *)
  mutable budget : Budget.t option;
      (** set by the worker at job start ({!start_budget}) — deadlines are
          relative to start, not admission *)
  mutable cancel_reason : cancel_reason option;
  mutable last_nodes : int;  (** watchdog: budget nodes at last scan *)
  mutable last_progress_at : float;  (** watchdog: time of last advance *)
}

val create : client:int -> Protocol.job_spec -> t

val validate : Protocol.job_spec -> (unit, string) result
(** Static spec checks: well-formed job id, [min_sup >= 1], non-negative
    limits, no [max_gap] (the gap-constrained path is not
    root-partitioned, so it cannot checkpoint/resume), a well-formed
    query (non-empty target of non-negative event ids, [top_k >= 1]) and
    [compress_delta] within [[0, 1]]. A malformed query is a typed
    rejection the client sees as {!Protocol.Rejected}, never a dropped
    connection. *)

val query_of : Protocol.job_spec -> Query.t
(** The in-DFS answer mode for the spec's wire-level query. *)

val clamp : limits -> Protocol.job_spec -> Protocol.job_spec
(** Apply the server-wide ceilings: each requested limit is reduced to the
    ceiling, and an unrequested limit becomes the ceiling itself. *)

val budget_of : Protocol.job_spec -> Budget.t
(** Fresh per-job budget from the (clamped) spec limits. Call at job
    start: the deadline is absolute from creation time. *)

val config_of :
  ?shards:int ->
  ?shard_dispatch:Shard_merge.dispatch ->
  Protocol.job_spec ->
  Miner.config
(** The {!Miner} config for the spec — {e without} budget limits (the
    daemon passes the explicit per-job budget instead). [shards] is the
    server-wide {!Daemon.config} knob, not part of the wire spec: sharded
    growth never changes job output or checkpoint compatibility.
    [shard_dispatch] routes the per-shard growths through a
    {!Supervisor}'s worker processes ([--shard-workers]); output and
    checkpoints are still identical.
    @raise Invalid_argument on values {!validate} would reject. *)

val load_db : Protocol.job_spec -> (Seqdb.t, string) result
(** Materialise the job's database: parse the inline text, or read and
    parse the server-side file. Parsing is strict — a malformed database
    is a typed rejection, not a silently smaller input. A [File] path
    ending in [.rgsdb] is opened as a mapped binary store instead of
    parsed (its [format] field is ignored); opened stores are cached per
    path, so every job on one corpus shares a single read-only mapping. *)

val preload_store : string -> (Seqdb.t, string) result
(** Open a [.rgsdb] store eagerly, verifying every section payload CRC
    (not just the open-time framing checks), and seed the {!load_db}
    cache with it. The daemon runs this on each [--store] path at startup
    so a corrupt store fails the boot, not the first job. *)

val checkpoint_path : state_dir:string -> string -> string
(** [checkpoint_path ~state_dir job_id] — the job's durable log,
    [state_dir/job-<id>.ckpt]. Only called with {!Protocol.valid_job_id}
    ids, which cannot traverse directories. *)
