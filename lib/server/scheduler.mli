(** Admission control and fair dispatch for daemon jobs.

    A bounded pending queue (admission beyond [capacity] is load-shed with
    a typed {!admit} result, never queued unboundedly), organised as one
    FIFO per client with a round-robin ring across clients, so one noisy
    client cannot starve the others: with clients A and B both backlogged,
    dispatch alternates A, B, A, B regardless of how many jobs A queued
    first.

    The structure is shared between the event-loop domain (submissions,
    cancellations, the watchdog) and the pool-worker domains
    ({!next_job}); one internal mutex guards every operation, and workers
    block on a condition variable when idle. Live job ids — queued or
    running — are unique: a second submission of a live id is rejected as
    a duplicate, which is what makes an overlapping resume of the same job
    id safe. *)

type t

val create : capacity:int -> t
(** [capacity] bounds the {e pending} queue (running jobs do not count).
    @raise Invalid_argument when [capacity < 1]. *)

type admit =
  | Admitted of int  (** queue position (1-based depth after enqueue) *)
  | Overloaded of { pending : int; capacity : int }
  | Duplicate  (** this job id is already queued or running *)
  | Draining  (** the daemon no longer admits work *)

val submit : t -> Job.t -> admit

val next_job : t -> [ `Job of Job.t | `Drain ]
(** Worker side: block until a job is available (round-robin across
    clients) or the scheduler is draining and empty, which tells the
    worker to exit. *)

val start_budget : t -> Job.t -> Rgs_core.Budget.t -> unit
(** Worker side, at job start: attach the freshly created budget. If the
    job was cancelled while queued (client vanished, drain), the budget is
    cancelled immediately so the first {!Rgs_core.Budget.check} stops the
    run. *)

val finish : t -> Job.t -> unit
(** Worker side: release the job's slot and retire its id (the id may be
    submitted again — that is a resume). *)

val cancel_client : t -> client:int -> Job.t list
(** Event-loop side, on disconnect: drop the client's queued jobs
    (returned) and cancel its running jobs' budgets with reason
    [Disconnect]. *)

val scan_watchdog : t -> now:float -> idle_timeout_s:float -> Job.t list
(** Event-loop side, periodically: compare every running job's budget
    node count against the last scan; a job with no progress for
    [idle_timeout_s] is cancelled with reason [Stalled] and returned
    (already-cancelled jobs are not re-reported). *)

val drain : t -> Job.t list
(** Stop admitting, mark the scheduler draining, wake all idle workers,
    and return the queued jobs that were dropped (marked [Drain]). *)

val cancel_running_for_drain : t -> Job.t list
(** Force the drain's grace deadline: cancel every still-running job's
    budget with reason [Drain]; returns the jobs newly cancelled. *)

val draining : t -> bool
val pending : t -> int
val running : t -> int
