(** Wire protocol of the [rgsminerd] mining daemon.

    A connection starts with a 5-byte hello — the magic ["RGSD"] plus one
    version byte — sent by the client and echoed verbatim by the server.
    The daemon speaks every version in [[min_version, version]]; the echo
    tells the client which version the connection settled on (always the
    one it asked for), and a client asking for an unsupported version gets
    its connection closed, which it observes as EOF during the handshake.
    After the hello, both directions carry {e frames}:

    {v
    offset 0   u32 big-endian   payload length (<= max_frame_bytes)
    offset 4   u32 big-endian   CRC-32 of the payload (Checkpoint.crc32)
    offset 8   payload          Marshal-encoded request / response
    v}

    The CRC catches torn or garbled frames before [Marshal] ever sees
    them; a frame that fails the length guard, the CRC or decoding raises
    {!Protocol_error}, and the daemon sheds the offending connection
    instead of crashing. Like {!Checkpoint}, payloads use [Marshal] and
    are only valid within one build of the binary — the version byte
    exists so a future incompatible revision is rejected at the
    handshake, not by a decoder crash.

    Requests are client-to-server; a [Submit] is answered by an admission
    response ([Accepted] / [Overloaded] / [Duplicate] / [Rejected]) and
    later — asynchronously, possibly interleaved with other jobs' frames —
    by zero or more [Results] chunks and exactly one [Job_done]. *)

val magic : string
(** ["RGSD"]. *)

val version : int
(** Current protocol version, the default for hellos and codecs. *)

val min_version : int
(** Oldest version the daemon still accepts (1: the pre-query protocol).
    Version-1 connections decode through the preserved v1 payload layouts
    and their jobs run with the default mine-all query. *)

val version_supported : int -> bool
(** [min_version <= v <= version]. *)

val max_frame_bytes : int
(** Upper bound on a frame payload (64 MiB); both sides reject larger
    frames before allocating. *)

exception Protocol_error of string
(** A malformed hello or frame, a CRC mismatch, an oversized frame, an
    undecodable payload, an EOF mid-frame, or a read timeout. *)

type format = Tokens | Chars | Spmf  (** input formats, as {!Seq_io} *)

type db_source =
  | Inline of { format : format; text : string }
      (** the database travels in the request *)
  | File of { format : format; path : string }
      (** the daemon reads [path] (a path on the {e server's}
          filesystem) *)

type mode = All | Closed  (** as {!Miner.mode} *)

(** Answer mode of a job, pruned inside the DFS (v2; {!Rgs_core.Query}). *)
type query_spec =
  | Q_all  (** every pattern — the only mode a v1 client can express *)
  | Q_target of int list
      (** only patterns containing this subsequence (event ids) *)
  | Q_top_k of int  (** the k best patterns by support *)

type job_spec = {
  job_id : string;
      (** client-chosen identity; names the job's durable checkpoint log,
          so resubmitting the same id resumes prior progress. Must match
          [[A-Za-z0-9._-]{1,64}]. *)
  db : db_source;
  min_sup : int;
  mode : mode;
  max_length : int option;
  max_gap : int option;  (** gap-constrained mining; disables checkpointing *)
  deadline_s : float option;  (** per-job wall-clock budget, clamped server-side *)
  max_nodes : int option;  (** per-job DFS-node budget, clamped server-side *)
  max_words : int option;  (** per-job heap ceiling, clamped server-side *)
  query : query_spec;
      (** answer mode (v2). The job's durable checkpoint is
          query-specific: resubmitting an id with a different query is a
          typed rejection, not a silent restart *)
  compress_delta : float option;
      (** δ ∈ [0,1]: post-mining δ-cover compression
          ({!Rgs_post.Compress}) — only representative patterns are
          streamed back (v2) *)
}

type request =
  | Submit of job_spec
  | Stats  (** answered with one [Stats_frame] — [GET /metrics] equivalent *)
  | Ping  (** answered with [Pong] *)

type job_summary = {
  job_id : string;
  outcome : string;  (** [Budget.to_string] of the run outcome *)
  stopped_by : string option;
      (** [None] for a natural finish; [Some "watchdog"] when the idle
          watchdog cancelled a stalled job, [Some "drain"] when a drain
          did *)
  quarantined : int;  (** poison roots excluded from the results *)
  total : int;  (** patterns streamed for this job *)
  elapsed_s : float;
  seq : int;  (** daemon-wide completion sequence number *)
}

type response =
  | Accepted of { job_id : string; position : int }
      (** admitted; [position] is the queue depth after enqueueing *)
  | Overloaded of { job_id : string; pending : int; capacity : int }
      (** load-shed: the bounded queue is full — retry later *)
  | Duplicate of { job_id : string }
      (** a job with this id is already queued or running *)
  | Rejected of { job_id : string; reason : string }
      (** invalid spec, unreadable database, draining daemon, ... *)
  | Results of { job_id : string; patterns : (int list * int) list; seq : int }
      (** one chunk of mined [(pattern events, support)] rows, in mining
          order; [seq] numbers the chunks of a job from 0 *)
  | Job_done of job_summary  (** terminal frame of a job *)
  | Stats_frame of (string * int) list
      (** current absolute metric readings ({!Metrics.dump} shape) *)
  | Pong
  | Error_frame of string  (** server-side protocol-level error report *)

(** {1 Frame I/O}

    All functions retry [EINTR]. Reads translate a receive timeout
    ([SO_RCVTIMEO] expiry) into {!Protocol_error} so a caller under
    timeout discipline can never hang. *)

val write_frame : ?fire_fault:bool -> Unix.file_descr -> string -> unit
(** Write one frame. [fire_fault] (daemon side only) fires
    {!Budget.Fault.Socket_write} first, so chaos plans can fail the write.
    @raise Unix.Unix_error on a broken connection (EPIPE et al). *)

val read_frame : Unix.file_descr -> string option
(** Read one frame; [None] on a clean EOF at a frame boundary.
    @raise Protocol_error on a torn frame, bad CRC or oversized length. *)

val hello : string
(** The 5 hello bytes for the current [version]. *)

val hello_of_version : int -> string
(** The 5 hello bytes for an arbitrary version — the daemon's connection
    parser matches the magic, then range-checks the version byte with
    {!version_supported} and echoes the client's hello back. *)

val send_hello : ?version:int -> Unix.file_descr -> unit
(** Write the hello (default: the current version). *)

val read_hello : ?version:int -> Unix.file_descr -> bool
(** Read and verify the 5-byte hello against [version] (default current);
    [false] on mismatch or EOF. *)

val request_to_string : ?version:int -> request -> string
(** Marshal codec. With [~version:1] the request is re-encoded through
    the preserved v1 layout.
    @raise Protocol_error when a v1 encoding is asked for a request that
    v1 cannot express (a non-[Q_all] query or [compress_delta]). *)

val request_of_string : ?version:int -> string -> request
(** Marshal codec; [version] selects the payload layout the bytes were
    written with (a v1 payload decoded with the v2 layout — or vice
    versa — would be garbage, which is why the daemon tracks each
    connection's negotiated version). A v1 [Submit] upgrades to
    [query = Q_all], [compress_delta = None].
    @raise Protocol_error on undecodable payloads. *)

val response_to_string : response -> string
val response_of_string : string -> response
(** Marshal codecs; responses have one layout shared by both protocol
    versions (v2 only extended requests). The [of_string] direction
    raises {!Protocol_error} on undecodable payloads. *)

val valid_job_id : string -> bool
(** [[A-Za-z0-9._-]{1,64}] — ids double as checkpoint file names. *)
