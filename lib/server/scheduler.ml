open Rgs_core

type t = {
  capacity : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queues : (int, Job.t Queue.t) Hashtbl.t;  (* client id -> pending FIFO *)
  ring : int Queue.t;  (* clients with pending jobs, round-robin order *)
  mutable pending_count : int;
  running_jobs : (string, Job.t) Hashtbl.t;  (* job id -> running *)
  live_ids : (string, unit) Hashtbl.t;  (* queued + running *)
  mutable draining_flag : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Scheduler.create: capacity must be >= 1";
  {
    capacity;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queues = Hashtbl.create 8;
    ring = Queue.create ();
    pending_count = 0;
    running_jobs = Hashtbl.create 8;
    live_ids = Hashtbl.create 8;
    draining_flag = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* level gauges, not peaks: store the current reading directly (a
   Metrics.counter is an [int Atomic.t]) *)
let set_gauges t =
  Atomic.set Server_metrics.jobs_pending t.pending_count;
  Atomic.set Server_metrics.jobs_running (Hashtbl.length t.running_jobs)

type admit =
  | Admitted of int
  | Overloaded of { pending : int; capacity : int }
  | Duplicate
  | Draining

let submit t (job : Job.t) =
  locked t (fun () ->
      if t.draining_flag then Draining
      else if Hashtbl.mem t.live_ids job.spec.Protocol.job_id then Duplicate
      else if t.pending_count >= t.capacity then
        Overloaded { pending = t.pending_count; capacity = t.capacity }
      else begin
        let q =
          match Hashtbl.find_opt t.queues job.client with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace t.queues job.client q;
            q
        in
        if Queue.is_empty q then Queue.push job.client t.ring;
        Queue.push job q;
        t.pending_count <- t.pending_count + 1;
        Hashtbl.replace t.live_ids job.spec.Protocol.job_id ();
        set_gauges t;
        Condition.signal t.nonempty;
        Admitted t.pending_count
      end)

(* Pop the next job round-robin: rotate the ring until a client with a
   non-empty queue surfaces (cancel_client may have emptied a queue whose
   client is still in the ring — such entries are dropped here). *)
let rec pop_ring t =
  match Queue.take_opt t.ring with
  | None -> None
  | Some client -> (
    match Hashtbl.find_opt t.queues client with
    | None -> pop_ring t
    | Some q -> (
      match Queue.take_opt q with
      | None -> pop_ring t
      | Some job ->
        if not (Queue.is_empty q) then Queue.push client t.ring;
        Some job))

let next_job t =
  locked t (fun () ->
      let rec wait () =
        match pop_ring t with
        | Some job ->
          t.pending_count <- t.pending_count - 1;
          Hashtbl.replace t.running_jobs job.Job.spec.Protocol.job_id job;
          job.Job.last_progress_at <- Unix.gettimeofday ();
          set_gauges t;
          `Job job
        | None ->
          if t.draining_flag then `Drain
          else begin
            Condition.wait t.nonempty t.lock;
            wait ()
          end
      in
      wait ())

let start_budget t (job : Job.t) budget =
  locked t (fun () ->
      job.Job.budget <- Some budget;
      job.Job.last_progress_at <- Unix.gettimeofday ();
      if job.Job.cancel_reason <> None then Budget.cancel budget)

let finish t (job : Job.t) =
  locked t (fun () ->
      Hashtbl.remove t.running_jobs job.Job.spec.Protocol.job_id;
      Hashtbl.remove t.live_ids job.Job.spec.Protocol.job_id;
      set_gauges t)

let cancel_job (job : Job.t) reason =
  if job.Job.cancel_reason = None then begin
    job.Job.cancel_reason <- Some reason;
    Option.iter Budget.cancel job.Job.budget;
    true
  end
  else false

let cancel_client t ~client =
  locked t (fun () ->
      let dropped = ref [] in
      (match Hashtbl.find_opt t.queues client with
      | None -> ()
      | Some q ->
        Queue.iter
          (fun (job : Job.t) ->
            ignore (cancel_job job Job.Disconnect);
            Hashtbl.remove t.live_ids job.Job.spec.Protocol.job_id;
            t.pending_count <- t.pending_count - 1;
            dropped := job :: !dropped)
          q;
        Queue.clear q;
        Hashtbl.remove t.queues client);
      Hashtbl.iter
        (fun _ (job : Job.t) ->
          if job.Job.client = client then ignore (cancel_job job Job.Disconnect))
        t.running_jobs;
      set_gauges t;
      List.rev !dropped)

let scan_watchdog t ~now ~idle_timeout_s =
  locked t (fun () ->
      let stalled = ref [] in
      Hashtbl.iter
        (fun _ (job : Job.t) ->
          match job.Job.budget with
          | None -> ()
          | Some b ->
            let nodes = Budget.nodes b in
            if nodes <> job.Job.last_nodes then begin
              job.Job.last_nodes <- nodes;
              job.Job.last_progress_at <- now
            end
            else if
              now -. job.Job.last_progress_at > idle_timeout_s
              && cancel_job job Job.Stalled
            then stalled := job :: !stalled)
        t.running_jobs;
      List.rev !stalled)

let drain t =
  locked t (fun () ->
      t.draining_flag <- true;
      let dropped = ref [] in
      Hashtbl.iter
        (fun _ q ->
          Queue.iter
            (fun (job : Job.t) ->
              ignore (cancel_job job Job.Drain);
              Hashtbl.remove t.live_ids job.Job.spec.Protocol.job_id;
              dropped := job :: !dropped)
            q;
          Queue.clear q)
        t.queues;
      Hashtbl.reset t.queues;
      Queue.clear t.ring;
      t.pending_count <- 0;
      set_gauges t;
      Condition.broadcast t.nonempty;
      List.rev !dropped)

let cancel_running_for_drain t =
  locked t (fun () ->
      let cancelled = ref [] in
      Hashtbl.iter
        (fun _ (job : Job.t) ->
          if cancel_job job Job.Drain then cancelled := job :: !cancelled)
        t.running_jobs;
      List.rev !cancelled)

let draining t = locked t (fun () -> t.draining_flag)
let pending t = locked t (fun () -> t.pending_count)
let running t = locked t (fun () -> Hashtbl.length t.running_jobs)
