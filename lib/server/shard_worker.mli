(** One shard worker process: the serving side of supervised sharded
    mining, and the message codecs shared with {!Supervisor}.

    A worker is a {e stateless per-shard growth server}. It maps a shared
    [.rgsdb] store (pages are shared with the supervisor and its sibling
    workers — the store layer was built for exactly this), builds its own
    inverted index, and then answers [Grow] requests: decode the
    supervisor's {!Rgs_core.Support_set.encode}d slice of the current
    support set, run one INSgrow pass (gap-constrained when the request
    says so), and reply with the encoded grown part. No mining state
    lives in the worker between requests, which is what makes the
    supervisor's kill-and-resend restart trivially correct: any request
    can be replayed against a fresh incarnation, or computed in-process,
    with an identical answer.

    Frames reuse {!Protocol}'s length + CRC-32 framing over the worker's
    stdin/stdout (a socketpair, so the supervisor can arm [SO_RCVTIMEO]
    as its liveness deadline). A heartbeat domain writes a [Heartbeat]
    frame every [heartbeat_ms] under the same writer mutex as replies,
    so a long INSgrow pass never looks like a hang.

    Fault injection ({!Rgs_core.Chaos} process plans) arrives via the
    {!Rgs_core.Chaos.worker_fault_env} environment variable; transient
    plans arm only when {!Rgs_core.Chaos.worker_restart_env} reports
    generation 0. *)

open Rgs_sequence

(** Requests, supervisor → worker. *)
type to_worker =
  | Grow of {
      req : int;  (** request id, echoed in the reply *)
      event : Event.t;  (** the extension event *)
      gap : (int * int) option;
          (** [(min_gap, max_gap)]: use the gap-constrained growth
              ({!Rgs_core.Gap_constrained.grow}) instead of plain INSgrow *)
      part : string;  (** {!Rgs_core.Support_set.encode} of this shard's slice *)
    }
  | Shutdown  (** drain and exit 0 (EOF on stdin means the same) *)

(** Replies and liveness, worker → supervisor. *)
type from_worker =
  | Ready of { lo : int; hi : int; digest : string }
      (** handshake: the shard range served and the mapped store's
          {!Rgs_sequence.Seqdb.content_digest} — the supervisor refuses a
          worker looking at different data *)
  | Heartbeat  (** periodic liveness frame from the heartbeat domain *)
  | Grown of { req : int; part : string }
      (** the grown part for request [req], encoded *)
  | Failed of { req : int; reason : string }
      (** the request failed cleanly worker-side (e.g. a slice that does
          not decode); the supervisor treats it like a crash *)

val write_to_worker : Unix.file_descr -> to_worker -> unit
val read_to_worker : Unix.file_descr -> to_worker option
val write_from_worker : Unix.file_descr -> from_worker -> unit

val read_from_worker : Unix.file_descr -> from_worker option
(** [None] on clean EOF. @raise Protocol.Protocol_error on a torn or
    CRC-corrupt frame, or when the descriptor's [SO_RCVTIMEO] expires
    (message ["read timeout"]) — the supervisor's three failure signals. *)

val write_corrupt_frame : Unix.file_descr -> unit
(** A well-formed header whose CRC is deliberately wrong — what the
    [Proc_corrupt] chaos site emits, and what protocol tests use to
    exercise the CRC guard. *)

val serve :
  ?heartbeat_ms:int -> store:string -> lo:int -> hi:int -> unit -> unit
(** Run the worker over stdin/stdout until [Shutdown], EOF, or a fatal
    supervisor-side disappearance (EPIPE / torn request frame), serving
    growth requests for the inclusive 1-based sequence range [[lo, hi]]
    of the [.rgsdb] store at [store]. Sends [Ready] {e before} building
    the index so the handshake never races a slow build, heartbeats
    every [heartbeat_ms] (default 50) from a dedicated domain, and
    ignores SIGPIPE. This is [bin/rgsworker.ml]'s whole body; it lives
    here so tests can drive a worker in-process over a socketpair. *)

val log_src : Logs.src
(** The [rgs.worker] log source. *)
