open Rgs_sequence
open Rgs_core

type limits = {
  max_deadline_s : float option;
  max_nodes : int option;
  max_words : int option;
}

let no_limits = { max_deadline_s = None; max_nodes = None; max_words = None }

type cancel_reason = Disconnect | Stalled | Drain

let cancel_reason_name = function
  | Disconnect -> "disconnect"
  | Stalled -> "watchdog"
  | Drain -> "drain"

type t = {
  spec : Protocol.job_spec;
  client : int;
  mutable budget : Budget.t option;
  mutable cancel_reason : cancel_reason option;
  mutable last_nodes : int;
  mutable last_progress_at : float;
}

let create ~client spec =
  {
    spec;
    client;
    budget = None;
    cancel_reason = None;
    last_nodes = 0;
    last_progress_at = Unix.gettimeofday ();
  }

let validate (spec : Protocol.job_spec) =
  if not (Protocol.valid_job_id spec.job_id) then
    Error "invalid job id (want [A-Za-z0-9._-]{1,64})"
  else if spec.min_sup < 1 then Error "min_sup must be >= 1"
  else if spec.max_gap <> None then
    Error "max_gap jobs are not resumable; use the rgsminer CLI"
  else if
    match spec.deadline_s with Some d -> d < 0.0 | None -> false
  then Error "deadline_s must be >= 0"
  else if match spec.max_nodes with Some n -> n < 0 | None -> false then
    Error "max_nodes must be >= 0"
  else if match spec.max_words with Some w -> w < 1 | None -> false then
    Error "max_words must be >= 1"
  else if
    match spec.query with Protocol.Q_target [] -> true | _ -> false
  then Error "target pattern must be non-empty"
  else if
    match spec.query with
    | Protocol.Q_target evs -> List.exists (fun e -> e < 0) evs
    | _ -> false
  then Error "target events must be >= 0"
  else if match spec.query with Protocol.Q_top_k k -> k < 1 | _ -> false then
    Error "top_k must be >= 1"
  else if
    match spec.compress_delta with
    | Some d -> not (d >= 0.0 && d <= 1.0)
    | None -> false
  then Error "compress_delta must be within [0, 1]"
  else Ok ()

(* each axis: min(requested, ceiling); an unrequested axis inherits the
   ceiling, so "no limit asked" still cannot exceed the server's. *)
let clamp_axis ceiling requested ~min:min_v =
  match (requested, ceiling) with
  | None, c -> c
  | (Some _ as r), None -> r
  | Some r, Some c -> Some (min_v r c)

let clamp limits (spec : Protocol.job_spec) =
  {
    spec with
    deadline_s = clamp_axis limits.max_deadline_s spec.deadline_s ~min:Float.min;
    max_nodes = clamp_axis limits.max_nodes spec.max_nodes ~min:Int.min;
    max_words = clamp_axis limits.max_words spec.max_words ~min:Int.min;
  }

let budget_of (spec : Protocol.job_spec) =
  Budget.create ?deadline_s:spec.deadline_s ?max_nodes:spec.max_nodes
    ?max_words:spec.max_words ()

let query_of (spec : Protocol.job_spec) =
  match spec.query with
  | Protocol.Q_all -> Query.All
  | Protocol.Q_target evs -> Query.Targeted (Pattern.of_list evs)
  | Protocol.Q_top_k k -> Query.Top_k k

let config_of ?shards ?shard_dispatch (spec : Protocol.job_spec) =
  Miner.config
    ~mode:(match spec.mode with Protocol.All -> Miner.All | Protocol.Closed -> Miner.Closed)
    ~query:(query_of spec) ?max_length:spec.max_length ?shards ?shard_dispatch
    ~min_sup:spec.min_sup ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse format text =
  match (format : Protocol.format) with
  | Protocol.Tokens -> fst (Seq_io.parse_tokens text)
  | Protocol.Chars -> Seq_io.parse_chars ~strict:true text
  | Protocol.Spmf -> Seq_io.parse_spmf ~strict:true text

(* Mapped [.rgsdb] stores are cached per path: every job referencing the
   same store (and the daemon's --store preload) shares one read-only
   mapping, so concurrent jobs on one corpus cost one set of pages. The
   cache never evicts — stores a daemon serves are few and mappings are
   cheap (page cache, not heap). *)
let store_cache : (string, Seqdb.t) Hashtbl.t = Hashtbl.create 4
let store_mutex = Mutex.create ()

let is_store_path path = Filename.check_suffix path ".rgsdb"

let open_store ~verify path =
  Mutex.protect store_mutex (fun () ->
      match Hashtbl.find_opt store_cache path with
      | Some db -> db
      | None ->
        let store = Rgs_store.Store.open_store ~verify path in
        let db = Rgs_store.Store.db store in
        Hashtbl.add store_cache path db;
        db)

let preload_store path =
  match open_store ~verify:true path with
  | db -> Ok db
  | exception Rgs_store.Store.Invalid_store e ->
    Error (Printf.sprintf "%s: %s" path (Rgs_store.Store.error_message e))
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "%s: %s" path (Unix.error_message err))
  | exception Sys_error msg -> Error msg

let load_db (spec : Protocol.job_spec) =
  match spec.db with
  | Protocol.Inline { format; text } -> (
    match parse format text with
    | db -> Ok db
    | exception Seq_io.Parse_error { line; msg } ->
      Error (Printf.sprintf "inline db: line %d: %s" line msg))
  | Protocol.File { format = _; path } when is_store_path path -> (
    match open_store ~verify:false path with
    | db -> Ok db
    | exception Rgs_store.Store.Invalid_store e ->
      Error (Printf.sprintf "%s: %s" path (Rgs_store.Store.error_message e))
    | exception Unix.Unix_error (err, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message err))
    | exception Sys_error msg -> Error msg)
  | Protocol.File { format; path } -> (
    match parse format (read_file path) with
    | db -> Ok db
    | exception Sys_error msg -> Error msg
    | exception Seq_io.Parse_error { line; msg } ->
      Error (Printf.sprintf "%s:%d: %s" path line msg))

let checkpoint_path ~state_dir job_id =
  Filename.concat state_dir ("job-" ^ job_id ^ ".ckpt")
