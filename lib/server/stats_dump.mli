(** Periodic metrics snapshots to a file — the shared helper behind
    [rgsminer --stats-interval] and the daemon's periodic stats dump.

    A background domain wakes every [interval_s], captures a
    {!Metrics.snapshot} (diffed against [baseline] when one is given, as
    the one-shot [--stats] behaviour does; absolute otherwise, which is
    what a long-running daemon wants) and writes it to [path] via a
    temp-file-plus-rename, so readers never observe a torn file. {!stop}
    performs one final write, making the no-interval behaviour a special
    case of interval [infinity]. *)

open Rgs_sequence

type t

val start :
  ?baseline:Metrics.snapshot -> interval_s:float -> path:string -> unit -> t
(** Spawn the ticker. [path]'s format follows {!Metrics.write_stats}
    (JSON for [.json], Prometheus text otherwise).
    @raise Invalid_argument when [interval_s <= 0]. *)

val stop : t -> unit
(** Stop the ticker, join its domain and write the final snapshot.
    Idempotent. *)
