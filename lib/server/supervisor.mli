(** Supervised multi-process shard workers: crash-isolated sharded
    mining with heartbeats, backoff restarts, and graceful in-process
    degradation.

    The supervisor owns one {!Shard_worker} process per shard of a
    {!Rgs_sequence.Seqdb.shard} layout. The mining DFS stays entirely in
    this process; only instance growth is delegated — {!dispatch}
    produces a {!Rgs_core.Shard_merge.dispatch} closure that encodes each
    shard's slice of the current support set, ships it to that shard's
    worker over a CRC-framed socketpair, and decodes the grown parts. A
    crashing, hanging, or corrupting worker therefore cannot take the
    miner down or poison its state: the supervisor's failure detection
    (below) tears the incarnation down, restarts it with exponential
    backoff, and {e replays or recomputes} the affected request — the
    mined output is byte-identical to an in-process run in every case.

    {2 Failure detection — the three signals}

    - {b death}: the socket reports EOF (or the send hits EPIPE) because
      the worker exited or was killed;
    - {b hang}: no frame (reply {e or} heartbeat) arrives within
      [liveness_timeout_s] — [SO_RCVTIMEO] expires and the read raises
      {!Protocol.Protocol_error} ["read timeout"]
      ({!Rgs_sequence.Metrics.worker_heartbeats_missed});
    - {b corruption}: a frame fails its CRC or is torn, or a reply body
      fails {!Rgs_core.Support_set.decode}'s re-validation.

    {2 The state machine}

    Each shard moves through [spawn → healthy → suspect → restart
    (backoff) → … → quarantine], with a global [degrade] escape hatch
    (DESIGN.md §11). A failed incarnation bumps the shard's attempt
    count; the next spawn waits [backoff_base_ms · 2^(attempt-1)] capped
    at [backoff_max_ms], jittered deterministically in [0.5, 1.5) from
    [(seed, shard, attempt)]. A shard that exhausts [restart_budget]
    is {e quarantined}: its parts are computed in-process from then on
    ({!Rgs_sequence.Metrics.shard_quarantines}), the others keep their
    workers. When total restarts exceed [flap_budget], or no worker
    executable / shared store can be found at all, the supervisor
    {e degrades}: every growth runs in-process
    ({!Rgs_sequence.Metrics.supervisor_degraded}) — mining always
    completes with identical output, just without process isolation. *)

open Rgs_sequence
open Rgs_core

type config = private {
  shards : int;  (** worker processes = shards of the database *)
  heartbeat_ms : int;  (** worker heartbeat period *)
  liveness_timeout_s : float;
      (** no frame for this long ⇒ the worker is declared hung *)
  restart_budget : int;  (** failed incarnations per shard before quarantine *)
  flap_budget : int;  (** total restarts across shards before degradation *)
  backoff_base_ms : int;  (** restart delay before attempt 1 *)
  backoff_max_ms : int;  (** exponential backoff cap *)
  seed : int;  (** jitter seed — sweeps replay identical schedules *)
  gap : (int * int) option;
      (** [(min_gap, max_gap)]: workers run gap-constrained growth *)
  worker_exe : string option;  (** explicit path to [rgsworker] *)
  worker_env : (string * string) list;
      (** extra environment for workers (chaos plans travel here) *)
}

val config :
  ?heartbeat_ms:int ->
  ?liveness_timeout_s:float ->
  ?restart_budget:int ->
  ?flap_budget:int ->
  ?backoff_base_ms:int ->
  ?backoff_max_ms:int ->
  ?seed:int ->
  ?gap:int * int ->
  ?worker_exe:string ->
  ?worker_env:(string * string) list ->
  shards:int ->
  unit ->
  config
(** Validated constructor. Defaults: heartbeat 50 ms, liveness timeout
    5 s, restart budget 3 per shard, flap budget
    [max 4 (shards * (restart_budget + 1))], backoff 10–500 ms, seed 0.
    [worker_exe] defaults to the [RGS_WORKER_EXE] environment variable,
    then an [rgsworker(.exe)] sibling of the running executable.
    @raise Invalid_argument on a non-positive [shards], [heartbeat_ms]
    or [liveness_timeout_s], a negative budget, or a backoff window
    violating [0 <= base <= max]. *)

type t

val create : ?trace:Trace.t -> ?store:string -> config -> Seqdb.t -> t
(** Spawn and handshake one worker per shard of [db], eagerly, so
    startup failures surface (and degrade) before mining begins. Workers
    map the [.rgsdb] at [store] when it exists; otherwise the database
    is packed into a temporary store (removed by {!shutdown}). Each
    handshake verifies the worker's range and
    {!Rgs_sequence.Seqdb.content_digest} against [db]. Worker lifetime
    spans are recorded into [trace] as [Proc_worker] events. Never
    raises for spawn-side problems — a supervisor that cannot supervise
    degrades instead ({!degraded}). Ignores SIGPIPE process-wide, as the
    daemon already does: dead workers must surface as EPIPE. *)

val dispatch : t -> Shard_merge.dispatch
(** The closure to install as {!Rgs_core.Miner.config}'s
    [shard_dispatch]. Thread-safe: concurrent pool domains fan out
    requests under per-worker mutexes taken in ascending shard order
    (deadlock-free), so distinct shards grow in parallel processes.
    Failed requests are replayed against a restarted worker; quarantined
    shards, a degraded supervisor, or a foreign [ranges] layout fall
    back to computing in-process — the returned parts are always
    content-identical to [base] applied per slice. *)

val shutdown : t -> unit
(** Stop all workers: a polite [Shutdown] frame and descriptor close,
    then SIGKILL for any worker still alive after a 0.5 s grace; reaps
    every child, records final lifetime spans, removes the temporary
    store if one was packed. Idempotent; the supervisor then serves
    every dispatch in-process. *)

type stats = {
  spawns : int;  (** worker processes forked, including restarts *)
  restarts : int;  (** incarnations torn down after a detected failure *)
  quarantined : int;  (** shards past their restart budget *)
  degraded : bool;  (** whether mining fell back fully in-process *)
}

val stats : t -> stats
val degraded : t -> bool

val num_shards : t -> int

val ranges : t -> (int * int) array
(** The shard layout workers were spawned for — pass the same [shards]
    count to the miner so its layout matches (a mismatch is safe but
    computes in-process). *)

val pp_stats : Format.formatter -> stats -> unit

val log_src : Logs.src
(** The [rgs.supervisor] log source. *)
