(** The [.rgsdb] zero-copy binary store.

    A packed store serializes a sequence database — interned alphabet,
    concatenated event stream, and the precomputed CSR inverted-index
    runs — into the versioned, CRC-guarded section file specified
    normatively in FORMAT.md. {!open_store} maps the sections read-only
    with [Unix.map_file]: opening costs header + section-table
    validation only (milliseconds, independent of corpus size), the
    mapped pages are physically shared across {!Rgs_sequence} pool
    domains and across processes (daemon restarts re-open the same page
    cache), and {!Seqdb.of_store} / {!Inverted_index.build} consume the
    sections without copying.

    Every structural defect detected at open raises {!Invalid_store}
    carrying the FORMAT.md clause the file violates; payload corruption
    is caught by {!verify} (section CRCs), which opens defer by default
    so open time stays O(1) in the corpus (FORMAT.md §3.5). *)

open Rgs_sequence

type error = {
  clause : string;  (** the violated FORMAT.md clause, e.g. ["§3.2"] *)
  reason : string;  (** human-readable detail *)
}

exception Invalid_store of error
(** A file that is not a usable [.rgsdb] store. The raising paths bump
    {!Metrics.store_crc_failures} when the defect is a failed CRC. *)

val error_message : error -> string
(** ["FORMAT.md §x.y: reason"] — the one-line form the CLIs print. *)

type t
(** An open store: the mapped sections plus decoded metadata. The
    mapping lives until the value is garbage-collected; every [Seqdb.t]
    or index built from it keeps it alive. *)

val write : ?codec:Codec.t -> path:string -> Seqdb.t -> unit
(** [write ~path db] packs [db] (and its event-name codec, when given)
    into a fresh store at [path], written atomically and durably (temp
    file, fsync, rename, best-effort directory fsync). The output is a pure function of the database content and
    codec — packing the same corpus twice yields byte-identical files.
    The CSR runs are computed here, at pack time, so opens never do. *)

val open_store : ?verify:bool -> ?trace:Trace.t -> string -> t
(** Map the store at the given path and validate its framing: magic,
    version, flags, header CRC, declared file size, section-table CRC,
    section bounds and alignment, and the section shapes (FORMAT.md §2,
    §3). With [~verify:true] every section payload CRC is checked too,
    as {!verify} does. Records one [Trace.Store_map] instant and feeds
    the [store_opens] / [store_open_ns] / [store_mapped_words] metrics.
    @raise Invalid_store on any violation. *)

val db : t -> Seqdb.t
(** The store-backed database (one shared {!Seqdb.t} per open store):
    sequences materialise lazily, the inverted index slices the mapped
    CSR sections zero-copy. *)

val codec : t -> Codec.t option
(** The event-name codec packed in the NAME section, when present —
    mining output printed through it is byte-identical to the tokens
    text path. *)

val digest : t -> string
(** Hex MD5 content digest sealed in the header at pack time; equals
    [Seqdb.content_digest (db t)] in O(1). *)

val mapped_words : t -> int
(** Total words of mapped integer-section payloads (the
    [store_mapped_words] gauge value this open contributed). *)

val path : t -> string

val sections : t -> (string * int) list
(** [(tag, payload words)] per section, in file order — for [pack]'s
    summary output and tests. *)

val verify : ?trace:Trace.t -> t -> unit
(** Re-read every {e recognised} section payload from the mapping and
    check it against the section table's CRC-32 (FORMAT.md §3.5).
    Unknown sections are skipped wholesale — their table offsets are
    unconstrained and never dereferenced (FORMAT.md §3.6). Bumps
    [store_crc_checks] per checked section and records
    [Trace.Store_crc] instants.
    @raise Invalid_store (clause §3.5) on the first mismatch. *)

val open_db : ?verify:bool -> ?trace:Trace.t -> string -> Seqdb.t * Codec.t option
(** [open_store] + [db] + [codec] in one call — the CLI entry. *)
