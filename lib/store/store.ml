open Rgs_sequence

(* On-disk framing constants. FORMAT.md is the normative spec; every
   numeric below (offsets, sizes, the magic) restates a clause there and
   the error paths cite the clause they enforce. *)
let magic = "\x89RGSDB\r\n" (* §2.1 *)
let version = 1 (* §2.2 *)
let header_bytes = 64 (* §2 *)
let table_entry_bytes = 32 (* §3 *)

let sec_alph = "ALPH"
let sec_sqof = "SQOF"
let sec_evts = "EVTS"
let sec_csof = "CSOF"
let sec_cpos = "CPOS"
let sec_name = "NAME"

let required_sections = [ sec_alph; sec_sqof; sec_evts; sec_csof; sec_cpos ]

(* The tags this reader interprets. Everything else is a §3.6 unknown
   section: skipped wholesale, so its offset/length are never trusted —
   in particular never used to address the mapping (verify included). *)
let known_tags = sec_name :: required_sections

type error = { clause : string; reason : string }

exception Invalid_store of error

let error_message e = Printf.sprintf "FORMAT.md %s: %s" e.clause e.reason

let invalid clause fmt =
  Printf.ksprintf (fun reason -> raise (Invalid_store { clause; reason })) fmt

(* --- CRC-32 (ISO-HDLC / zlib polynomial, §1.4), table-based, over both
   strings (writer) and mapped byte sections (verifier) --- *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_string s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  (!c lxor 0xFFFFFFFF) land 0xFFFFFFFF

type bytes_map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Checked gets: every caller's range is validated against the mapping
   first, but a CRC pass is cold-path work and an index bug here would
   read (or fault on) pages outside the file, so the bounds check stays. *)
let crc32_map (m : bytes_map) ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      table.((!c lxor Char.code (Bigarray.Array1.get m i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  (!c lxor 0xFFFFFFFF) land 0xFFFFFFFF

(* --- little-endian primitives (§1.2) --- *)

let buf_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let buf_u64 buf v =
  (* OCaml ints are 63-bit; the top byte is the sign-extended bit 62,
     which §1.3 constrains to 0 for all stored values *)
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let map_u32 (m : bytes_map) off =
  let b i = Char.code (Bigarray.Array1.get m (off + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let map_u64 (m : bytes_map) off =
  let b i = Char.code (Bigarray.Array1.get m (off + i)) in
  let lo = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  let hi = b 4 lor (b 5 lsl 8) lor (b 6 lsl 16) lor (b 7 lsl 24) in
  if hi land 0x8000_0000 <> 0 || hi land 0x4000_0000 <> 0 then
    invalid "§1.3" "stored integer exceeds the [0, 2^62) value range";
  lo lor (hi lsl 32)

let map_string (m : bytes_map) ~pos ~len =
  String.init len (fun i -> Bigarray.Array1.get m (pos + i))

(* --- writer --- *)

let ints_payload count get =
  let buf = Buffer.create ((8 * count) + 8) in
  for i = 0 to count - 1 do
    buf_u64 buf (get i)
  done;
  Buffer.contents buf

(* The CSR runs, computed once at pack time with the same counting-sort
   the in-memory index build uses; offsets are per-sequence-relative
   (§2.4) so the open path can slice them directly. *)
let csr_payloads db alpha =
  let k = Alphabet.size alpha in
  let offsets_buf = Buffer.create 4096 in
  let pos_buf = Buffer.create 4096 in
  Seqdb.iter
    (fun _ s ->
      let offsets = Array.make (k + 1) 0 in
      Sequence.iteri
        (fun _ e ->
          let d = Alphabet.dense alpha e in
          offsets.(d + 1) <- offsets.(d + 1) + 1)
        s;
      for d = 1 to k do
        offsets.(d) <- offsets.(d) + offsets.(d - 1)
      done;
      Array.iter (buf_u64 offsets_buf) offsets;
      let pos = Array.make (Sequence.length s) 0 in
      let fill = Array.sub offsets 0 k in
      Sequence.iteri
        (fun p e ->
          let d = Alphabet.dense alpha e in
          pos.(fill.(d)) <- p;
          fill.(d) <- fill.(d) + 1)
        s;
      Array.iter (buf_u64 pos_buf) pos)
    db;
  (Buffer.contents offsets_buf, Buffer.contents pos_buf)

let pad8 n = (8 - (n land 7)) land 7

let write ?codec ~path db =
  let alpha = Seqdb.dense_alphabet db in
  let events = Alphabet.events alpha in
  let n = Seqdb.size db in
  let alph = ints_payload (Array.length events) (Array.get events) in
  let sqof =
    let offs = Array.make (n + 1) 0 in
    Seqdb.iter (fun i s -> offs.(i) <- offs.(i - 1) + Sequence.length s) db;
    ints_payload (n + 1) (Array.get offs)
  in
  let evts =
    let buf = Buffer.create 4096 in
    Seqdb.iter (fun _ s -> Sequence.iteri (fun _ e -> buf_u64 buf e) s) db;
    Buffer.contents buf
  in
  let csof, cpos = csr_payloads db alpha in
  let sections =
    [ (sec_alph, alph); (sec_sqof, sqof); (sec_evts, evts); (sec_csof, csof);
      (sec_cpos, cpos) ]
    @
    match codec with
    | None -> []
    | Some c ->
      let names =
        List.map
          (fun e ->
            let name = Codec.name c e in
            if String.contains name '\n' then
              invalid_arg "Store.write: event name contains a newline";
            name)
          (Codec.alphabet c)
      in
      [ (sec_name, String.concat "\n" names) ]
  in
  let count = List.length sections in
  let payload_base = header_bytes + (table_entry_bytes * count) + 8 in
  (* section table + payload area, §3 *)
  let table_buf = Buffer.create (table_entry_bytes * count) in
  let body_buf = Buffer.create 4096 in
  let off = ref payload_base in
  List.iter
    (fun (tag, payload) ->
      Buffer.add_string table_buf tag;
      buf_u32 table_buf 0;
      buf_u64 table_buf !off;
      buf_u64 table_buf (String.length payload);
      buf_u32 table_buf (crc32_string payload);
      buf_u32 table_buf 0;
      Buffer.add_string body_buf payload;
      let pad = pad8 (String.length payload) in
      Buffer.add_string body_buf (String.make pad '\000');
      off := !off + String.length payload + pad)
    sections;
  let table = Buffer.contents table_buf in
  let file_size = !off in
  (* header, §2 *)
  let header_buf = Buffer.create header_bytes in
  Buffer.add_string header_buf magic;
  buf_u32 header_buf version;
  buf_u32 header_buf 0 (* flags, §2.2 *);
  buf_u64 header_buf count;
  buf_u64 header_buf file_size;
  Buffer.add_string header_buf (Digest.from_hex (Seqdb.content_digest db));
  buf_u64 header_buf 0 (* reserved *);
  buf_u32 header_buf 0 (* reserved *);
  let header_prefix = Buffer.contents header_buf in
  assert (String.length header_prefix = header_bytes - 4);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header_prefix;
      let crc_buf = Buffer.create 4 in
      buf_u32 crc_buf (crc32_string header_prefix);
      output_string oc (Buffer.contents crc_buf);
      output_string oc table;
      let tcrc_buf = Buffer.create 8 in
      buf_u32 tcrc_buf (crc32_string table);
      buf_u32 tcrc_buf 0;
      output_string oc (Buffer.contents tcrc_buf);
      Buffer.output_buffer oc body_buf;
      (* durability before the rename: without the fsync a crash can
         publish an empty or truncated file at the final path (§6) *)
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path;
  (* seal the rename itself; directory fsync is best-effort — some
     filesystems refuse it, and the file contents are already durable *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
    Fun.protect
      ~finally:(fun () -> Unix.close dirfd)
      (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())

(* --- opener --- *)

type section = { tag : string; s_off : int; s_len : int; s_crc : int }

type t = {
  path : string;
  bytes : bytes_map; (* whole-file read-only mapping, used by [verify] *)
  secs : section list;
  store_db : Seqdb.t;
  store_codec : Codec.t option;
  store_digest : string;
  words : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let map_section fd { s_off; s_len; _ } =
  if s_len = 0 then Ivec.empty
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int s_off) Bigarray.int Bigarray.c_layout
         false
         [| s_len / 8 |])

let find_section secs tag =
  match List.filter (fun s -> s.tag = tag) secs with
  | [ s ] -> s
  | [] -> invalid "§3.3" "required section %s is missing" tag
  | _ -> invalid "§3.3" "section %s appears more than once" tag

let check_int_section file_size s =
  if s.s_off land 7 <> 0 then
    invalid "§3.4" "section %s starts at unaligned offset %d" s.tag s.s_off;
  if s.s_len land 7 <> 0 then
    invalid "§3.4" "section %s has non-integral length %d" s.tag s.s_len;
  if s.s_off < header_bytes || s.s_off + s.s_len > file_size then
    invalid "§3.4" "section %s [%d, %d) lies outside the file" s.tag s.s_off
      (s.s_off + s.s_len)

let verify_section ?(trace = Trace.null) bytes s =
  Metrics.hit Metrics.store_crc_checks;
  let crc = crc32_map bytes ~pos:s.s_off ~len:s.s_len in
  let ok = crc = s.s_crc in
  Trace.instant trace Trace.Store_crc
    ~a0:(if s.tag = "" then 0 else Char.code s.tag.[0])
    ~a1:(if ok then 1 else 0);
  if not ok then begin
    Metrics.hit Metrics.store_crc_failures;
    invalid "§3.5" "section %s payload CRC mismatch (stored %08x, computed %08x)"
      s.tag s.s_crc crc
  end

(* Only recognised sections are CRC'd: an unknown section is skipped
   wholesale per §3.6, and its table entry's offset/length — attacker-
   or future-writer-controlled, with no bounds clause of their own —
   must never drive a read of the mapping. Recognised sections were
   bounds-checked against the file size at open (§3.4). *)
let known_secs t = List.filter (fun s -> List.mem s.tag known_tags) t.secs

let verify ?trace t = List.iter (verify_section ?trace t.bytes) (known_secs t)

let open_store ?(verify = false) ?(trace = Trace.null) path =
  if Sys.big_endian then
    invalid "§1.2" "the .rgsdb format is little-endian; big-endian hosts are unsupported by this reader";
  let t0 = now_ns () in
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let file_size = (Unix.fstat fd).Unix.st_size in
      if file_size < header_bytes then
        invalid "§2.1" "file is %d byte(s), shorter than the %d-byte header"
          file_size header_bytes;
      let bytes : bytes_map =
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| file_size |])
      in
      if map_string bytes ~pos:0 ~len:8 <> magic then
        invalid "§2.1" "bad magic (not a .rgsdb file)";
      let v = map_u32 bytes 8 in
      if v <> version then
        invalid "§2.2" "unsupported version %d (this reader implements version %d)"
          v version;
      let flags = map_u32 bytes 12 in
      if flags <> 0 then invalid "§2.2" "unknown header flags %#x" flags;
      let stored_header_crc = map_u32 bytes (header_bytes - 4) in
      let header_crc = crc32_map bytes ~pos:0 ~len:(header_bytes - 4) in
      if stored_header_crc <> header_crc then begin
        Metrics.hit Metrics.store_crc_failures;
        invalid "§2.3" "header CRC mismatch (stored %08x, computed %08x)"
          stored_header_crc header_crc
      end;
      Metrics.hit Metrics.store_crc_checks;
      let count = map_u64 bytes 16 in
      let declared_size = map_u64 bytes 24 in
      if declared_size <> file_size then
        invalid "§2.1" "header declares %d bytes but the file has %d (truncated or padded)"
          declared_size file_size;
      let digest_raw = map_string bytes ~pos:32 ~len:16 in
      let table_off = header_bytes in
      (* divide, don't multiply: count is attacker-controlled up to
         2^62-1 (§1.3) and [table_entry_bytes * count] can wrap a 63-bit
         int, sneaking a huge table past the §3.1 bound below *)
      if count > (file_size - table_off - 8) / table_entry_bytes then
        invalid "§3.1" "section table truncated: %d entries cannot fit in %d bytes"
          count (file_size - table_off);
      let table_len = table_entry_bytes * count in
      if table_off + table_len + 8 > file_size then
        invalid "§3.1" "section table truncated: %d entries need %d bytes, file has %d"
          count (table_len + 8) (file_size - table_off);
      let stored_table_crc = map_u32 bytes (table_off + table_len) in
      let table_crc = crc32_map bytes ~pos:table_off ~len:table_len in
      if stored_table_crc <> table_crc then begin
        Metrics.hit Metrics.store_crc_failures;
        invalid "§3.2" "section table CRC mismatch (stored %08x, computed %08x)"
          stored_table_crc table_crc
      end;
      Metrics.hit Metrics.store_crc_checks;
      let secs =
        List.init count (fun i ->
            let off = table_off + (i * table_entry_bytes) in
            {
              tag = map_string bytes ~pos:off ~len:4;
              s_off = map_u64 bytes (off + 8);
              s_len = map_u64 bytes (off + 16);
              s_crc = map_u32 bytes (off + 24);
            })
      in
      let required = List.map (find_section secs) required_sections in
      List.iter (check_int_section file_size) required;
      let alph_s, sqof_s, evts_s, csof_s, cpos_s =
        match required with
        | [ a; b; c; d; e ] -> (a, b, c, d, e)
        | _ -> assert false
      in
      let alph = map_section fd alph_s in
      let sqof = map_section fd sqof_s in
      let evts = map_section fd evts_s in
      let csof = map_section fd csof_s in
      let cpos = map_section fd cpos_s in
      if Ivec.length sqof = 0 then
        invalid "§2.5" "SQOF must hold at least one offset (N+1 entries)";
      let alpha =
        try Alphabet.of_events (Ivec.to_array alph)
        with Invalid_argument _ ->
          invalid "§2.4" "ALPH events are not strictly ascending"
      in
      let store_db =
        try
          Seqdb.of_store ~alpha ~seq_offsets:sqof ~events:evts
            ~csr_offsets:csof ~csr_pos:cpos
            ~digest:(Digest.to_hex digest_raw)
        with Invalid_argument reason -> invalid "§2.5" "%s" reason
      in
      let store_codec =
        (* §3.3 also binds NAME: at most one. A second entry would skip
           the bounds check below yet be CRC'd by [verify] as a known
           tag, reopening the very hole [known_secs] closes. *)
        match List.filter (fun s -> s.tag = sec_name) secs with
        | [] -> None
        | _ :: _ :: _ ->
          invalid "§3.3" "section %s appears more than once" sec_name
        | [ s ] ->
          if s.s_off < header_bytes || s.s_off + s.s_len > file_size then
            invalid "§3.4" "section %s [%d, %d) lies outside the file" s.tag
              s.s_off (s.s_off + s.s_len);
          let blob = map_string bytes ~pos:s.s_off ~len:s.s_len in
          let names = if blob = "" then [] else String.split_on_char '\n' blob in
          if List.length names < Alphabet.size alpha then
            invalid "§2.6" "NAME holds %d name(s) for an alphabet of %d"
              (List.length names) (Alphabet.size alpha);
          Some (Codec.of_names names)
      in
      let words =
        List.fold_left (fun w s -> w + (s.s_len / 8)) 0 required
      in
      let t =
        {
          path;
          bytes;
          secs;
          store_db;
          store_codec;
          store_digest = Digest.to_hex digest_raw;
          words;
        }
      in
      if verify then List.iter (verify_section ~trace bytes) (known_secs t);
      let dt = now_ns () - t0 in
      Metrics.hit Metrics.store_opens;
      Metrics.add Metrics.store_open_ns dt;
      Metrics.observe_max Metrics.store_mapped_words words;
      Trace.instant trace Trace.Store_map ~a0:words ~a1:(dt / 1000);
      t)

let db t = t.store_db
let codec t = t.store_codec
let digest t = t.store_digest
let mapped_words t = t.words
let path t = t.path
let sections t = List.map (fun s -> (s.tag, s.s_len / 8)) t.secs

let open_db ?verify ?trace path =
  let t = open_store ?verify ?trace path in
  (db t, codec t)
