(** Gazelle-like clickstream generator.

    Stand-in for the KDD Cup 2000 Gazelle dataset (29369 sequences, 1423
    distinct events, average length 3, maximum length 651). The defining
    regime — most sessions tiny, a small heavy tail of very long sessions in
    which patterns repeat many times — is reproduced with:

    - Zipf page popularity,
    - geometric session lengths for the bulk of sessions,
    - a bounded-Pareto tail for "power shopper" sessions,
    - a revisit process (with some probability the next click repeats a
      page seen earlier in the session), which is what creates
      within-sequence pattern repetition. *)

open Rgs_sequence

type params = {
  num_sequences : int;
  num_events : int;
  bulk_mean_length : float;  (** mean of the short-session regime *)
  tail_fraction : float;  (** fraction of heavy-tail sessions *)
  tail_alpha : float;  (** Pareto shape of the tail *)
  max_length : int;
  zipf_s : float;
  revisit_p : float;  (** probability a click revisits an earlier page *)
  seed : int;
}

val params :
  ?num_sequences:int ->
  ?num_events:int ->
  ?bulk_mean_length:float ->
  ?tail_fraction:float ->
  ?tail_alpha:float ->
  ?max_length:int ->
  ?zipf_s:float ->
  ?revisit_p:float ->
  ?seed:int ->
  unit ->
  params
(** Defaults approximate Gazelle at 1/10 scale: 2937 sequences, 1423
    events, bulk mean 2.2, tail fraction 0.02, max length 651. *)

val gazelle_like : ?scale:float -> ?seed:int -> unit -> params
(** Paper-calibrated parameters scaled by [scale] (default [0.1]) in the
    number of sequences. *)

val generate : params -> Seqdb.t
(** Deterministic in [params] (including [seed]). *)
