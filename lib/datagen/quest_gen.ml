open Rgs_sequence

type params = {
  d : int;
  c : int;
  n : int;
  s : int;
  num_patterns : int;
  corruption : float;
  noise_ratio : float;
  seed : int;
}

let params ?(num_patterns = 100) ?(corruption = 0.25) ?(noise_ratio = 0.25)
    ?(seed = 42) ~d ~c ~n ~s () =
  if d < 0 || c < 1 || n < 1 || s < 1 then invalid_arg "Quest_gen.params";
  { d; c; n; s; num_patterns; corruption; noise_ratio; seed }

let label p =
  let scaled x = if x >= 1000 && x mod 1000 = 0 then x / 1000 else x in
  Printf.sprintf "D%dC%dN%dS%d" (scaled p.d) p.c (scaled p.n) (scaled p.s)

(* The potentially frequent pattern pool. Pattern lengths are exponential
   around [s] (at least 1); a fraction of each pattern's events is reused
   from the previous pattern, as in the QUEST generator, so patterns share
   fragments. Pattern weights are exponential and normalised.

   Pattern events are drawn uniformly (as in the original generator); only
   the background noise is Zipf-skewed. Drawing pattern events from the
   Zipf head makes every pool pattern share its most popular events and
   the resulting databases are vastly denser than real QUEST output. *)
let make_pool rng p =
  let zipf = Samplers.zipf ~n:p.n ~s:1.05 in
  let previous = ref [||] in
  let make_one () =
    let len = max 1 (Samplers.poisson rng ~mean:(float_of_int p.s)) in
    let events =
      Array.init len (fun _ ->
          if Array.length !previous > 0 && Splitmix.bernoulli rng ~p:0.25 then
            Splitmix.choice rng !previous
          else Splitmix.int rng p.n)
    in
    previous := events;
    events
  in
  let pool = Array.init (max 1 p.num_patterns) (fun _ -> make_one ()) in
  let weights =
    Array.init (Array.length pool) (fun _ -> Samplers.exponential rng ~mean:1.)
  in
  (pool, weights, zipf)

let generate p =
  let rng = Splitmix.create ~seed:p.seed in
  let pool, weights, zipf = make_pool rng p in
  let gen_sequence () =
    let target = max 1 (Samplers.poisson rng ~mean:(float_of_int p.c)) in
    let out = ref [] in
    let len = ref 0 in
    let push e =
      out := e :: !out;
      incr len
    in
    while !len < target do
      if Splitmix.bernoulli rng ~p:p.noise_ratio then push (Samplers.zipf_draw rng zipf)
      else begin
        (* Embed a (possibly corrupted) pattern from the pool. *)
        let k = Splitmix.weighted_index rng weights in
        Array.iter
          (fun e ->
            if !len < target && not (Splitmix.bernoulli rng ~p:p.corruption) then begin
              (* occasional in-pattern noise gap *)
              if Splitmix.bernoulli rng ~p:0.1 && !len < target - 1 then
                push (Samplers.zipf_draw rng zipf);
              push e
            end)
          pool.(k)
      end
    done;
    Sequence.of_list (List.rev !out)
  in
  Seqdb.of_sequences (List.init p.d (fun _ -> gen_sequence ()))
