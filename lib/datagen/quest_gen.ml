open Rgs_sequence

type params = {
  d : int;
  c : int;
  n : int;
  s : int;
  num_patterns : int;
  corruption : float;
  noise_ratio : float;
  seed : int;
}

let params ?(num_patterns = 100) ?(corruption = 0.25) ?(noise_ratio = 0.25)
    ?(seed = 42) ~d ~c ~n ~s () =
  if d < 0 || c < 1 || n < 1 || s < 1 then invalid_arg "Quest_gen.params";
  { d; c; n; s; num_patterns; corruption; noise_ratio; seed }

(* key=value config files (data/*.config). One assignment per line;
   '#' starts a comment; blank lines are skipped. d/c/n/s are required,
   the rest take the [params] defaults. Unknown and duplicate keys are
   errors — a typo must not silently change the generated corpus. *)
let load_config path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let tbl = Hashtbl.create 8 in
      let lineno = ref 0 in
      let fail fmt = Printf.ksprintf failwith fmt in
      (try
         while true do
           let raw = input_line ic in
           incr lineno;
           let line =
             match String.index_opt raw '#' with
             | Some i -> String.sub raw 0 i
             | None -> raw
           in
           let line = String.trim line in
           if line <> "" then
             match String.index_opt line '=' with
             | None -> fail "%s:%d: expected key = value" path !lineno
             | Some i ->
               let key = String.trim (String.sub line 0 i) in
               let value =
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1))
               in
               if Hashtbl.mem tbl key then
                 fail "%s:%d: duplicate key %S" path !lineno key;
               Hashtbl.replace tbl key value
         done
       with End_of_file -> ());
      let known =
        [ "d"; "c"; "n"; "s"; "num_patterns"; "corruption"; "noise_ratio";
          "seed" ]
      in
      Hashtbl.iter
        (fun k _ -> if not (List.mem k known) then fail "%s: unknown key %S" path k)
        tbl;
      let req key =
        match Hashtbl.find_opt tbl key with
        | Some v -> v
        | None -> fail "%s: missing required key %S" path key
      in
      let int key v =
        match int_of_string_opt v with
        | Some n -> n
        | None -> fail "%s: key %S: %S is not an integer" path key v
      in
      let float_opt key default =
        match Hashtbl.find_opt tbl key with
        | None -> default
        | Some v -> (
          match float_of_string_opt v with
          | Some f -> f
          | None -> fail "%s: key %S: %S is not a number" path key v)
      in
      let int_opt key default =
        match Hashtbl.find_opt tbl key with
        | None -> default
        | Some v -> int key v
      in
      params
        ~num_patterns:(int_opt "num_patterns" 100)
        ~corruption:(float_opt "corruption" 0.25)
        ~noise_ratio:(float_opt "noise_ratio" 0.25)
        ~seed:(int_opt "seed" 42)
        ~d:(int "d" (req "d")) ~c:(int "c" (req "c")) ~n:(int "n" (req "n"))
        ~s:(int "s" (req "s")) ())

let label p =
  let scaled x = if x >= 1000 && x mod 1000 = 0 then x / 1000 else x in
  Printf.sprintf "D%dC%dN%dS%d" (scaled p.d) p.c (scaled p.n) (scaled p.s)

(* The potentially frequent pattern pool. Pattern lengths are exponential
   around [s] (at least 1); a fraction of each pattern's events is reused
   from the previous pattern, as in the QUEST generator, so patterns share
   fragments. Pattern weights are exponential and normalised.

   Pattern events are drawn uniformly (as in the original generator); only
   the background noise is Zipf-skewed. Drawing pattern events from the
   Zipf head makes every pool pattern share its most popular events and
   the resulting databases are vastly denser than real QUEST output. *)
let make_pool rng p =
  let zipf = Samplers.zipf ~n:p.n ~s:1.05 in
  let previous = ref [||] in
  let make_one () =
    let len = max 1 (Samplers.poisson rng ~mean:(float_of_int p.s)) in
    let events =
      Array.init len (fun _ ->
          if Array.length !previous > 0 && Splitmix.bernoulli rng ~p:0.25 then
            Splitmix.choice rng !previous
          else Splitmix.int rng p.n)
    in
    previous := events;
    events
  in
  let pool = Array.init (max 1 p.num_patterns) (fun _ -> make_one ()) in
  let weights =
    Array.init (Array.length pool) (fun _ -> Samplers.exponential rng ~mean:1.)
  in
  (pool, weights, zipf)

let generate p =
  let rng = Splitmix.create ~seed:p.seed in
  let pool, weights, zipf = make_pool rng p in
  let gen_sequence () =
    let target = max 1 (Samplers.poisson rng ~mean:(float_of_int p.c)) in
    let out = ref [] in
    let len = ref 0 in
    let push e =
      out := e :: !out;
      incr len
    in
    while !len < target do
      if Splitmix.bernoulli rng ~p:p.noise_ratio then push (Samplers.zipf_draw rng zipf)
      else begin
        (* Embed a (possibly corrupted) pattern from the pool. *)
        let k = Splitmix.weighted_index rng weights in
        Array.iter
          (fun e ->
            if !len < target && not (Splitmix.bernoulli rng ~p:p.corruption) then begin
              (* occasional in-pattern noise gap *)
              if Splitmix.bernoulli rng ~p:0.1 && !len < target - 1 then
                push (Samplers.zipf_draw rng zipf);
              push e
            end)
          pool.(k)
      end
    done;
    Sequence.of_list (List.rev !out)
  in
  Seqdb.of_sequences (List.init p.d (fun _ -> gen_sequence ()))
