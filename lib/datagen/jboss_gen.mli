(** JBoss transaction-component trace generator (case-study stand-in).

    The paper's case study (Section IV-B) mines 28 traces of the JBoss
    Application Server transaction component (64 distinct events, average
    length 91, maximum 125). We model the component's life cycle as a
    {!Trace_gen.model} whose event names are taken from the paper's
    Figure 7:

    connection set-up → transaction-manager set-up → transaction set-up →
    {e repeated} resource enlistment & execution → commit (or rollback) →
    transaction disposal,

    with the enlistment block looping (more than one resource can be
    enlisted before a commit — precisely the behaviour whose merged pattern
    the paper highlights), lock/unlock micro-patterns throughout, and
    occasional unrelated API noise creating gaps. *)

open Rgs_sequence

type params = {
  num_traces : int;
  enlist_continue_p : float;  (** probability of enlisting another resource *)
  rollback_p : float;  (** probability a transaction aborts instead of committing *)
  noise_p : float;  (** per-block probability of an interleaved noise event *)
  transactions_per_trace : int;  (** max transactions in one trace *)
  max_length : int;
  seed : int;
}

val params :
  ?num_traces:int ->
  ?enlist_continue_p:float ->
  ?rollback_p:float ->
  ?noise_p:float ->
  ?transactions_per_trace:int ->
  ?max_length:int ->
  ?seed:int ->
  unit ->
  params
(** Defaults are paper-calibrated: 28 traces, max length 125. *)

val generate : params -> Seqdb.t * Codec.t
(** The traces plus the codec mapping event ids to the Figure-7 style
    names ([TxManager.begin], [TransImpl.lock], ...). *)

val blocks : (string * string list) list
(** The six semantic blocks of Figure 7 (name, event names), in life-cycle
    order. Exposed so the case-study example can label mined patterns by
    block. *)

val full_lifecycle : string list
(** The 66-event happy path of Figure 7 (one enlistment iteration),
    read top-to-bottom, left-to-right. *)
