type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for
     bound << 2^62. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let int_in t ~min ~max =
  if max < min then invalid_arg "Splitmix.int_in: max < min";
  min + int t (max - min + 1)

let float t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1.p-53

let bool t = Int64.logand (next_int64 t) 1L = 1L
let bernoulli t ~p = float t < p

let choice t a =
  if Array.length a = 0 then invalid_arg "Splitmix.choice: empty array";
  a.(int t (Array.length a))

let weighted_index t w =
  let total = Array.fold_left ( +. ) 0. w in
  if Array.length w = 0 || total <= 0. then
    invalid_arg "Splitmix.weighted_index: no positive weight";
  let target = float t *. total in
  let acc = ref 0. and found = ref (Array.length w - 1) in
  (try
     Array.iteri
       (fun i x ->
         acc := !acc +. x;
         if !acc > target then begin
           found := i;
           raise Exit
         end)
       w
   with Exit -> ());
  !found

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
