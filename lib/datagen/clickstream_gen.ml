open Rgs_sequence

type params = {
  num_sequences : int;
  num_events : int;
  bulk_mean_length : float;
  tail_fraction : float;
  tail_alpha : float;
  max_length : int;
  zipf_s : float;
  revisit_p : float;
  seed : int;
}

let params ?(num_sequences = 2937) ?(num_events = 1423) ?(bulk_mean_length = 2.2)
    ?(tail_fraction = 0.02) ?(tail_alpha = 1.1) ?(max_length = 651)
    ?(zipf_s = 1.2) ?(revisit_p = 0.3) ?(seed = 42) () =
  if num_sequences < 0 || num_events < 1 then invalid_arg "Clickstream_gen.params";
  {
    num_sequences;
    num_events;
    bulk_mean_length;
    tail_fraction;
    tail_alpha;
    max_length;
    zipf_s;
    revisit_p;
    seed;
  }

let gazelle_like ?(scale = 0.1) ?seed () =
  params
    ~num_sequences:(max 1 (int_of_float (29369. *. scale)))
    ?seed ()

let generate p =
  let rng = Splitmix.create ~seed:p.seed in
  let zipf = Samplers.zipf ~n:p.num_events ~s:p.zipf_s in
  let gen_session () =
    let len =
      if Splitmix.bernoulli rng ~p:p.tail_fraction then
        Samplers.pareto_int rng ~alpha:p.tail_alpha ~x_min:20 ~max_value:p.max_length
      else 1 + Samplers.geometric rng ~p:(1. /. (p.bulk_mean_length +. 1.))
    in
    let len = min len p.max_length in
    let seen = Array.make len 0 in
    let count = ref 0 in
    let next_click () =
      if !count > 0 && Splitmix.bernoulli rng ~p:p.revisit_p then
        seen.(Splitmix.int rng !count)
      else Samplers.zipf_draw rng zipf
    in
    let events =
      Array.init len (fun k ->
          let e = next_click () in
          seen.(k) <- e;
          incr count;
          e)
    in
    Sequence.of_array events
  in
  Seqdb.of_sequences (List.init p.num_sequences (fun _ -> gen_session ()))
