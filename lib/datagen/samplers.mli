(** Distribution samplers used by the dataset generators. *)

type zipf
(** Precomputed Zipf(s, n) distribution over [0 .. n-1] (rank 0 most
    popular). *)

val zipf : n:int -> s:float -> zipf
(** @raise Invalid_argument when [n <= 0]. *)

val zipf_draw : Splitmix.t -> zipf -> int
(** Inverse-CDF sampling, [O(log n)]. *)

val poisson : Splitmix.t -> mean:float -> int
(** Knuth's method for small means, normal approximation beyond 50. *)

val geometric : Splitmix.t -> p:float -> int
(** Number of failures before the first success; mean [(1-p)/p]. *)

val pareto_int : Splitmix.t -> alpha:float -> x_min:int -> max_value:int -> int
(** Discretised bounded Pareto: heavy-tailed in [x_min .. max_value]. *)

val exponential : Splitmix.t -> mean:float -> float
(** Exponential variate with the given mean. *)
