(** Program-trace generator.

    Stand-in for the TCAS (Traffic alert and Collision Avoidance System)
    trace dataset of the paper (1578 traces, 75 distinct events, average
    length 36, maximum 70). Traces are random walks over a structured
    control-flow model: straight-line blocks, weighted branches, and loops —
    loops being what produces the heavy within-sequence repetition that the
    paper's repetitive-support semantics targets.

    The {!model} AST is exposed so other generators (notably
    {!Jboss_gen}) and user experiments can define their own programs. *)

open Rgs_sequence

(** Control-flow model. *)
type model =
  | Emit of Event.t  (** emit one event *)
  | Seq of model list  (** run sub-models in order *)
  | Branch of (float * model) list
      (** choose one alternative, proportional to weight *)
  | Loop of { body : model; continue_p : float; max_iters : int }
      (** run [body] at least once; after each iteration continue with
          probability [continue_p], up to [max_iters] iterations *)
  | Opt of float * model  (** run the sub-model with the given probability *)

val run_model : Splitmix.t -> ?max_length:int -> model -> Sequence.t
(** One random trace of the model, truncated at [max_length] events
    (default: unbounded). *)

val events_of_model : model -> Event.t list
(** Distinct events the model can emit, ascending. *)

type params = {
  num_sequences : int;
  num_events : int;  (** alphabet size of the synthetic program *)
  num_branches : int;  (** alternatives inside the main loop *)
  loop_continue_p : float;
  max_length : int;
  seed : int;
}

val params :
  ?num_sequences:int ->
  ?num_events:int ->
  ?num_branches:int ->
  ?loop_continue_p:float ->
  ?max_length:int ->
  ?seed:int ->
  unit ->
  params
(** Defaults are TCAS-calibrated: 1578 sequences, 75 events, 3 branches,
    continue probability 0.55, max length 70. *)

val tcas_like : ?scale:float -> ?seed:int -> unit -> params
(** TCAS-calibrated parameters with the number of sequences scaled by
    [scale] (default [1.0] — the real dataset is small). *)

val synthetic_program : params -> model
(** The deterministic synthetic program for the given parameters: init
    block, a sensor loop over weighted branch alternatives, shutdown
    block. *)

val generate : params -> Seqdb.t
(** [num_sequences] random traces of {!synthetic_program}, deterministic
    in [params]. *)
