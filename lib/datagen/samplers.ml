type zipf = { cdf : float array }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Samplers.zipf: n must be positive";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) s);
    cdf.(k) <- !acc
  done;
  let total = !acc in
  Array.iteri (fun k x -> cdf.(k) <- x /. total) cdf;
  { cdf }

let zipf_draw rng z =
  let u = Splitmix.float rng in
  (* least k with cdf.(k) >= u *)
  let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let rec poisson rng ~mean =
  if mean <= 0. then 0
  else if mean > 50. then begin
    (* Normal approximation, split to stay numerically comfortable. *)
    let half = poisson rng ~mean:(mean /. 2.) in
    half + poisson rng ~mean:(mean /. 2.)
  end
  else begin
    let limit = exp (-.mean) in
    let rec loop k prod =
      let prod = prod *. Splitmix.float rng in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.
  end

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Samplers.geometric: p must be in (0;1]";
  if p >= 1. then 0
  else begin
    let u = Splitmix.float rng in
    int_of_float (Float.floor (log1p (-.u) /. log1p (-.p)))
  end

let pareto_int rng ~alpha ~x_min ~max_value =
  if x_min < 1 || max_value < x_min then invalid_arg "Samplers.pareto_int: bad bounds";
  let u = Splitmix.float rng in
  let x = float_of_int x_min /. Float.pow (1. -. u) (1. /. alpha) in
  min max_value (max x_min (int_of_float x))

let exponential rng ~mean = -.mean *. log1p (-.Splitmix.float rng)
