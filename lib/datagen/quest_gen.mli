(** IBM QUEST-style synthetic sequence generator.

    Stand-in for the modified AgrawalSrikant generator the paper uses
    (Section IV-A): sequences are assembled by embedding corrupted copies of
    "potentially frequent" patterns, interleaved with noise. Parameters
    mirror the paper's [D, C, N, S] naming:

    - [d]: number of sequences ({e in thousands} in the paper's labels;
      here an absolute count for flexibility),
    - [c]: average number of events per sequence,
    - [n]: number of distinct events,
    - [s]: average length of the maximal potentially frequent patterns.

    The dataset label "D5C20N10S20" therefore corresponds to
    [v ~d:5000 ~c:20 ~n:10000 ~s:20]. *)

open Rgs_sequence

type params = {
  d : int;  (** number of sequences *)
  c : int;  (** average sequence length *)
  n : int;  (** alphabet size *)
  s : int;  (** average maximal-pattern length *)
  num_patterns : int;  (** size of the potentially frequent pattern pool *)
  corruption : float;  (** probability an embedded pattern event is dropped *)
  noise_ratio : float;  (** fraction of sequence positions filled with noise *)
  seed : int;
}

val params :
  ?num_patterns:int ->
  ?corruption:float ->
  ?noise_ratio:float ->
  ?seed:int ->
  d:int ->
  c:int ->
  n:int ->
  s:int ->
  unit ->
  params
(** Defaults: [num_patterns = 100], [corruption = 0.25],
    [noise_ratio = 0.25], [seed = 42]. *)

val load_config : string -> params
(** Parse a [key = value] config file (one assignment per line, ['#']
    comments, blank lines skipped) into {!params}. [d]/[c]/[n]/[s] are
    required; [num_patterns], [corruption], [noise_ratio] and [seed] take
    the {!params} defaults. Unknown keys, duplicate keys and unparsable
    values raise [Failure] citing [path:line] — a typo must not silently
    change the generated corpus. [data/quest_paper.config] is the
    checked-in instance: the paper-scale store workload is generated from
    it (and packed with [rgsminer pack]) rather than checked in as text. *)

val label : params -> string
(** Paper-style label, e.g. ["D5C20N10S20"] (D in thousands when [d] is a
    multiple of 1000, else as-is). *)

val generate : params -> Seqdb.t
(** Deterministic in [params] (including [seed]). *)
