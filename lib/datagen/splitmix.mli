(** Deterministic PRNG (SplitMix64).

    All generators in this library are seeded explicitly, so every dataset —
    and therefore every experiment — is reproducible bit-for-bit across
    runs. The state is mutable but never global. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream derived from the current state. *)

val copy : t -> t

val next_int64 : t -> int64
(** Uniform 64-bit step of SplitMix64. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [0 .. bound-1].
    @raise Invalid_argument when [bound <= 0]. *)

val int_in : t -> min:int -> max:int -> int
(** Uniform in [min .. max] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [true] with probability [p]. *)

val choice : t -> 'a array -> 'a
(** Uniform element.
    @raise Invalid_argument on the empty array. *)

val weighted_index : t -> float array -> int
(** Index sampled proportionally to the (non-negative) weights.
    @raise Invalid_argument when all weights are zero or the array is
    empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
