open Rgs_sequence

type params = {
  num_traces : int;
  enlist_continue_p : float;
  rollback_p : float;
  noise_p : float;
  transactions_per_trace : int;
  max_length : int;
  seed : int;
}

let params ?(num_traces = 28) ?(enlist_continue_p = 0.4) ?(rollback_p = 0.15)
    ?(noise_p = 0.2) ?(transactions_per_trace = 2) ?(max_length = 125)
    ?(seed = 42) () =
  if num_traces < 0 || transactions_per_trace < 1 then invalid_arg "Jboss_gen.params";
  {
    num_traces;
    enlist_continue_p;
    rollback_p;
    noise_p;
    transactions_per_trace;
    max_length;
    seed;
  }

(* Figure 7 of the paper, block by block. *)
let blocks =
  [
    ( "Connection Set Up",
      [
        "TransManLoc.getInstance";
        "TransManLoc.locate";
        "TransManLoc.tryJNDI";
        "TransManLoc.usePrivateAPI";
      ] );
    ( "Tx Manager Set Up",
      [
        "TxManager.getInstance";
        "TxManager.begin";
        "XidFactory.newXid";
        "XidFactory.getNextId";
        "XidImpl.getTrulyGlobalId";
      ] );
    ( "Transaction Set Up",
      [
        "TransImpl.assocCurThd";
        "TransImpl.lock";
        "TransImpl.unlock";
        "TransImpl.getLocId";
        "XidImpl.getLocId";
        "LocId.hashCode";
        "TxManager.getTrans";
        "TransImpl.isDone";
        "TransImpl.getStatus";
      ] );
    ( "Resource Enlistment & Transaction Execution",
      [
        "TxManager.getTrans";
        "TransImpl.isDone";
        "TransImpl.enlistResource";
        "TransImpl.lock";
        "TransImpl.createXidBranch";
        "XidFactory.newBranch";
        "TransImpl.unlock";
        "XidImpl.hashCode";
        "XidImpl.hashCode";
        "TransImpl.lock";
        "TransImpl.unlock";
        "XidImpl.hashCode";
        "TxManager.getTrans";
        "TransImpl.isDone";
        "TransImpl.equals";
        "TransImpl.getLocIdVal";
        "XidImpl.getLocIdVal";
        "TransImpl.getLocIdVal";
        "XidImpl.getLocIdVal";
      ] );
    ( "Transaction Commit",
      [
        "TxManager.commit";
        "TransImpl.commit";
        "TransImpl.lock";
        "TransImpl.beforePrepare";
        "TransImpl.checkIntegrity";
        "TransImpl.checkBeforeStatus";
        "TransImpl.endResources";
        "TransImpl.unlock";
        "XidImpl.hashCode";
        "TransImpl.lock";
        "TransImpl.unlock";
        "XidImpl.hashCode";
        "TransImpl.lock";
        "TransImpl.completeTrans";
        "TransImpl.cancelTimeout";
        "TransImpl.unlock";
        "TransImpl.lock";
        "TransImpl.doAfterCompletion";
        "TransImpl.unlock";
        "TransImpl.lock";
        "TransImpl.instanceDone";
      ] );
    ( "Transaction Dispose",
      [
        "TxManager.getInstance";
        "TxManager.releaseTransImpl";
        "TransImpl.getLocalId";
        "XidImpl.getLocalId";
        "LocalId.hashCode";
        "LocalId.equals";
        "TransImpl.unlock";
        "XidImpl.hashCode";
      ] );
  ]

let full_lifecycle = List.concat_map snd blocks

(* A rollback replaces the commit block; its events are extra vocabulary
   beyond Figure 7's happy path. *)
let rollback_block =
  [
    "TxManager.rollback";
    "TransImpl.rollback";
    "TransImpl.lock";
    "TransImpl.cancelTimeout";
    "TransImpl.completeTrans";
    "TransImpl.unlock";
    "TransImpl.instanceDone";
  ]

(* Unrelated API calls interleaved as noise, creating the gaps repetitive
   gapped subsequences must tolerate. *)
let noise_events =
  [
    "Logger.debug";
    "Logger.trace";
    "Cache.get";
    "Cache.put";
    "SecurityMgr.check";
    "Pool.acquire";
    "Pool.release";
    "Timer.schedule";
    "Stats.increment";
    "ClassLoader.load";
  ]

let block name = List.assoc name blocks

let generate p =
  let codec = Codec.create () in
  let ev name = Codec.intern codec name in
  (* Intern the full vocabulary deterministically, life-cycle order first. *)
  List.iter (fun n -> ignore (ev n)) full_lifecycle;
  List.iter (fun n -> ignore (ev n)) rollback_block;
  List.iter (fun n -> ignore (ev n)) noise_events;
  let rng = Splitmix.create ~seed:p.seed in
  let open Trace_gen in
  let noise = Opt (p.noise_p, Branch (List.map (fun n -> (1., Emit (ev n))) noise_events)) in
  let straight names = Seq (List.map (fun n -> Emit (ev n)) names) in
  let with_noise m = Seq [ noise; m ] in
  let transaction =
    Seq
      [
        with_noise (straight (block "Tx Manager Set Up"));
        with_noise (straight (block "Transaction Set Up"));
        Loop
          {
            body = with_noise (straight (block "Resource Enlistment & Transaction Execution"));
            continue_p = p.enlist_continue_p;
            max_iters = 3;
          };
        Branch
          [
            (1. -. p.rollback_p, straight (block "Transaction Commit"));
            (p.rollback_p, straight rollback_block);
          ];
        with_noise (straight (block "Transaction Dispose"));
      ]
  in
  let trace_model =
    Seq
      [
        straight (block "Connection Set Up");
        Loop { body = transaction; continue_p = 0.3; max_iters = p.transactions_per_trace };
      ]
  in
  let traces =
    List.init p.num_traces (fun _ -> run_model rng ~max_length:p.max_length trace_model)
  in
  (Seqdb.of_sequences traces, codec)
