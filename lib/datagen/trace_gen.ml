open Rgs_sequence

type model =
  | Emit of Event.t
  | Seq of model list
  | Branch of (float * model) list
  | Loop of { body : model; continue_p : float; max_iters : int }
  | Opt of float * model

exception Full

let run_model rng ?max_length m =
  let out = ref [] in
  let len = ref 0 in
  let push e =
    (match max_length with Some cap when !len >= cap -> raise Full | _ -> ());
    out := e :: !out;
    incr len
  in
  let rec go = function
    | Emit e -> push e
    | Seq ms -> List.iter go ms
    | Branch alts ->
      let weights = Array.of_list (List.map fst alts) in
      let k = Splitmix.weighted_index rng weights in
      go (snd (List.nth alts k))
    | Loop { body; continue_p; max_iters } ->
      let rec iterate i =
        if i < max_iters then begin
          go body;
          if Splitmix.bernoulli rng ~p:continue_p then iterate (i + 1)
        end
      in
      iterate 0
    | Opt (p, m) -> if Splitmix.bernoulli rng ~p then go m
  in
  (try go m with Full -> ());
  Sequence.of_list (List.rev !out)

let events_of_model m =
  let module ISet = Set.Make (Int) in
  let rec collect acc = function
    | Emit e -> ISet.add e acc
    | Seq ms -> List.fold_left collect acc ms
    | Branch alts -> List.fold_left (fun acc (_, m) -> collect acc m) acc alts
    | Loop { body; _ } -> collect acc body
    | Opt (_, m) -> collect acc m
  in
  ISet.elements (collect ISet.empty m)

type params = {
  num_sequences : int;
  num_events : int;
  num_branches : int;
  loop_continue_p : float;
  max_length : int;
  seed : int;
}

let params ?(num_sequences = 1578) ?(num_events = 75) ?(num_branches = 3)
    ?(loop_continue_p = 0.55) ?(max_length = 70) ?(seed = 42) () =
  if num_sequences < 0 || num_events < 8 || num_branches < 1 then
    invalid_arg "Trace_gen.params";
  { num_sequences; num_events; num_branches; loop_continue_p; max_length; seed }

let tcas_like ?(scale = 1.0) ?seed () =
  params ~num_sequences:(max 1 (int_of_float (1578. *. scale))) ?seed ()

(* Deterministic partition of the alphabet into blocks:
   - init block: 4 events,
   - per-branch body: an equal share of the remaining events (each branch a
     straight run with a tiny nested option),
   - shutdown block: 3 events.
   The split depends only on [params], not on the RNG, so the program is
   the same for every trace of a dataset. *)
let synthetic_program p =
  let init_len = 4 and final_len = 3 in
  let body_events = p.num_events - init_len - final_len in
  let per_branch = max 2 (body_events / p.num_branches) in
  let event = ref 0 in
  let fresh () =
    let e = !event in
    incr event;
    e mod p.num_events
  in
  let straight n = Seq (List.init n (fun _ -> Emit (fresh ()))) in
  let init = straight init_len in
  let branch_body k =
    ignore k;
    let head = straight (per_branch - 1) in
    let tail = Opt (0.5, Emit (fresh ())) in
    Seq [ head; tail ]
  in
  let alternatives =
    List.init p.num_branches (fun k -> (1. /. float_of_int (k + 1), branch_body k))
  in
  let loop =
    Loop { body = Branch alternatives; continue_p = p.loop_continue_p; max_iters = 8 }
  in
  let final = straight final_len in
  Seq [ init; loop; final ]

let generate p =
  let rng = Splitmix.create ~seed:p.seed in
  let program = synthetic_program p in
  Seqdb.of_sequences
    (List.init p.num_sequences (fun _ ->
         run_model rng ~max_length:p.max_length program))
