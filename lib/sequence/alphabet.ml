type lookup =
  | Direct of int array (* raw event -> dense id; -1 when absent *)
  | Table of (Event.t, int) Hashtbl.t

type t = {
  events : Event.t array; (* dense id -> raw event, ascending *)
  lookup : lookup;
}

(* A direct table spends [max_event + 1] words; worth it whenever the raw
   event space is not much larger than the alphabet itself (the common case:
   events already near-dense from Codec interning or generators). *)
let direct_worthwhile ~min_event ~max_event ~count =
  min_event >= 0 && max_event < (16 * count) + 1024

let make events =
  let count = Array.length events in
  let lookup =
    if count = 0 then Direct [||]
    else begin
      let min_event = events.(0) and max_event = events.(count - 1) in
      if direct_worthwhile ~min_event ~max_event ~count then begin
        let table = Array.make (max_event + 1) (-1) in
        Array.iteri (fun d e -> table.(e) <- d) events;
        Direct table
      end
      else begin
        let table = Hashtbl.create count in
        Array.iteri (fun d e -> Hashtbl.replace table e d) events;
        Table table
      end
    end
  in
  { events; lookup }

let of_events events =
  let events = Array.copy events in
  Array.iteri
    (fun i e ->
      if i > 0 && events.(i - 1) >= e then
        invalid_arg "Alphabet.of_events: events must be strictly ascending")
    events;
  make events

let of_sequences seqs =
  let seen : (Event.t, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun s -> Sequence.iteri (fun _ e -> Hashtbl.replace seen e ()) s)
    seqs;
  let events = Array.make (Hashtbl.length seen) 0 in
  let k = ref 0 in
  Hashtbl.iter
    (fun e () ->
      events.(!k) <- e;
      incr k)
    seen;
  Array.sort Int.compare events;
  make events

let size a = Array.length a.events

let event a d =
  if d < 0 || d >= Array.length a.events then
    invalid_arg (Printf.sprintf "Alphabet.event: dense id %d out of [0;%d)" d (Array.length a.events))
  else a.events.(d)

let events a = Array.copy a.events

let dense a e =
  match a.lookup with
  | Direct table -> if e < 0 || e >= Array.length table then -1 else table.(e)
  | Table table -> Option.value ~default:(-1) (Hashtbl.find_opt table e)

let mem a e = dense a e >= 0
