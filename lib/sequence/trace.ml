type level = Off | Roots | Nodes

type kind =
  | Root
  | Worker
  | Checkpoint_write
  | Budget_stop
  | Root_retry
  | Quarantine
  | Checkpoint_retry
  | Node
  | Extension
  | Closure_check
  | Lb_prune
  | Query_cut
  | Store_map
  | Store_crc
  | Steal
  | Shard_merge
  | Proc_worker

let num_kinds = 17

let kind_code = function
  | Root -> 0
  | Worker -> 1
  | Checkpoint_write -> 2
  | Budget_stop -> 3
  | Root_retry -> 4
  | Quarantine -> 5
  | Checkpoint_retry -> 6
  | Node -> 7
  | Extension -> 8
  | Closure_check -> 9
  | Lb_prune -> 10
  | Query_cut -> 11
  | Store_map -> 12
  | Store_crc -> 13
  | Steal -> 14
  | Shard_merge -> 15
  | Proc_worker -> 16

let kind_of_code = function
  | 0 -> Root
  | 1 -> Worker
  | 2 -> Checkpoint_write
  | 3 -> Budget_stop
  | 4 -> Root_retry
  | 5 -> Quarantine
  | 6 -> Checkpoint_retry
  | 7 -> Node
  | 8 -> Extension
  | 9 -> Closure_check
  | 10 -> Lb_prune
  | 11 -> Query_cut
  | 12 -> Store_map
  | 13 -> Store_crc
  | 14 -> Steal
  | 15 -> Shard_merge
  | 16 -> Proc_worker
  | c -> invalid_arg (Printf.sprintf "Trace: bad kind code %d" c)

let kind_name = function
  | Root -> "root"
  | Worker -> "worker"
  | Checkpoint_write -> "checkpoint_write"
  | Budget_stop -> "budget_stop"
  | Root_retry -> "root_retry"
  | Quarantine -> "quarantine"
  | Checkpoint_retry -> "checkpoint_retry"
  | Node -> "node"
  | Extension -> "extension"
  | Closure_check -> "closure_check"
  | Lb_prune -> "lb_prune"
  | Query_cut -> "query_cut"
  | Store_map -> "store_map"
  | Store_crc -> "store_crc"
  | Steal -> "steal"
  | Shard_merge -> "shard_merge"
  | Proc_worker -> "proc_worker"

(* Immutable [roots_on]/[nodes_on] flags keep the disabled-path check to one
   load and one predictable branch; the ring arrays are structure-of-arrays
   so recording writes five ints and bumps a cursor, allocation-free. *)
type t = {
  lvl : level;
  roots_on : bool;
  nodes_on : bool;
  base_ns : int;  (* creation time; exported timestamps are relative to it *)
  tid : int;
  kinds : Bytes.t;
  ts : int array;
  dur : int array;
  arg0 : int array;
  arg1 : int array;
  mutable n : int;  (* total events ever recorded in this buffer *)
  mutable last_ns : int;  (* monotonic clamp *)
  children : (int * t) list Atomic.t;  (* domain id -> child buffer *)
  next_tid : int Atomic.t;
}

let null =
  {
    lvl = Off;
    roots_on = false;
    nodes_on = false;
    base_ns = 0;
    tid = 0;
    kinds = Bytes.empty;
    ts = [||];
    dur = [||];
    arg0 = [||];
    arg1 = [||];
    n = 0;
    last_ns = 0;
    children = Atomic.make [];
    next_tid = Atomic.make 1;
  }

let raw_now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let make_buffer ~lvl ~capacity ~base_ns ~tid ~next_tid =
  let cap = pow2_at_least (max 2 capacity) 2 in
  {
    lvl;
    roots_on = lvl <> Off;
    nodes_on = lvl = Nodes;
    base_ns;
    tid;
    kinds = Bytes.make cap '\000';
    ts = Array.make cap 0;
    dur = Array.make cap 0;
    arg0 = Array.make cap 0;
    arg1 = Array.make cap 0;
    n = 0;
    last_ns = 0;
    children = Atomic.make [];
    next_tid;
  }

let create ?(capacity = 65536) ~level () =
  match level with
  | Off -> null
  | lvl ->
    make_buffer ~lvl ~capacity ~base_ns:(raw_now_ns ()) ~tid:0
      ~next_tid:(Atomic.make 1)

let level t = t.lvl
let roots_on t = t.roots_on
let nodes_on t = t.nodes_on

let rec for_domain t =
  if not t.roots_on then t
  else begin
    let id = (Domain.self () :> int) in
    let rec find = function
      | [] -> None
      | (i, c) :: tl -> if i = id then Some c else find tl
    in
    let cur = Atomic.get t.children in
    match find cur with
    | Some c -> c
    | None ->
      let child =
        make_buffer ~lvl:t.lvl ~capacity:(Array.length t.ts) ~base_ns:t.base_ns
          ~tid:(Atomic.fetch_and_add t.next_tid 1)
          ~next_tid:t.next_tid
      in
      if Atomic.compare_and_set t.children cur ((id, child) :: cur) then child
      else for_domain t (* another domain registered concurrently; retry *)
  end

let enabled t = function
  | Root | Worker | Checkpoint_write | Budget_stop | Root_retry | Quarantine
  | Checkpoint_retry | Store_map | Store_crc | Steal | Proc_worker ->
    t.roots_on
  | Node | Extension | Closure_check | Lb_prune | Query_cut | Shard_merge ->
    t.nodes_on

let now t =
  if not t.roots_on then 0
  else begin
    let raw = raw_now_ns () in
    let clamped = if raw < t.last_ns then t.last_ns else raw in
    t.last_ns <- clamped;
    clamped
  end

let record t k ~ts ~dur ~a0 ~a1 =
  (* once the ring is full every record overwrites the oldest event; count
     the loss where operators look for it, not only in [dropped] *)
  if t.n >= Array.length t.ts then Metrics.hit Metrics.trace_dropped_events;
  let i = t.n land (Array.length t.ts - 1) in
  Bytes.unsafe_set t.kinds i (Char.unsafe_chr (kind_code k));
  t.ts.(i) <- ts;
  t.dur.(i) <- dur;
  t.arg0.(i) <- a0;
  t.arg1.(i) <- a1;
  t.n <- t.n + 1

let instant t k ~a0 ~a1 = if enabled t k then record t k ~ts:(now t) ~dur:0 ~a0 ~a1

let span t k ~a0 ~a1 ~start =
  if enabled t k then begin
    let stop = now t in
    record t k ~ts:start ~dur:(stop - start) ~a0 ~a1
  end

(* --- readers --- *)

type event = {
  kind : kind;
  tid : int;
  ts_ns : int;
  dur_ns : int;
  a0 : int;
  a1 : int;
}

let buffers t = t :: List.map snd (Atomic.get t.children)

let buffer_events b acc =
  let cap = Array.length b.ts in
  if cap = 0 then acc
  else begin
    let kept = min b.n cap in
    let acc = ref acc in
    for j = kept - 1 downto 0 do
      let i = (b.n - kept + j) land (cap - 1) in
      acc :=
        {
          kind = kind_of_code (Char.code (Bytes.get b.kinds i));
          tid = b.tid;
          ts_ns = b.ts.(i) - b.base_ns;
          dur_ns = b.dur.(i);
          a0 = b.arg0.(i);
          a1 = b.arg1.(i);
        }
        :: !acc
    done;
    !acc
  end

let events t =
  let evs = List.fold_left (fun acc b -> buffer_events b acc) [] (buffers t) in
  (* chronological; longer spans first on ties so parents precede children *)
  List.sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with 0 -> compare b.dur_ns a.dur_ns | c -> c)
    evs

let dropped t =
  List.fold_left
    (fun acc b -> acc + max 0 (b.n - Array.length b.ts))
    0 (buffers t)

let counts t =
  let tally = Array.make num_kinds 0 in
  List.iter
    (fun b ->
      let cap = Array.length b.ts in
      let kept = min b.n cap in
      for j = 0 to kept - 1 do
        let i = (b.n - kept + j) land (cap - 1) in
        let c = Char.code (Bytes.get b.kinds i) in
        tally.(c) <- tally.(c) + 1
      done)
    (buffers t);
  let out = ref [] in
  for c = num_kinds - 1 downto 0 do
    if tally.(c) > 0 then out := (kind_of_code c, tally.(c)) :: !out
  done;
  !out

(* --- Chrome trace_event export --- *)

let arg_fields = function
  | Root -> [| "root"; "patterns" |]
  | Worker -> [| "slot"; "roots" |]
  | Checkpoint_write -> [| "completed"; "remaining" |]
  | Budget_stop -> [| "outcome" |]
  | Root_retry -> [| "slot" |]
  | Quarantine -> [| "slot" |]
  | Checkpoint_retry -> [| "attempt"; "gave_up" |]
  | Node -> [| "depth"; "support" |]
  | Extension -> [| "depth"; "frequent_extensions" |]
  | Closure_check -> [| "verdict"; "depth" |]
  | Lb_prune -> [| "depth"; "support" |]
  | Query_cut -> [| "depth"; "reason" |]
  | Store_map -> [| "mapped_words"; "open_us" |]
  | Store_crc -> [| "section"; "ok" |]
  | Steal -> [| "thief"; "victim" |]
  | Shard_merge -> [| "shards"; "merge_us" |]
  | Proc_worker -> [| "shard"; "grows" |]

let pp_args ppf ev =
  let fields = arg_fields ev.kind in
  Array.iteri
    (fun i name ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%S: %d" name (if i = 0 then ev.a0 else ev.a1))
    fields

let us ns = float_of_int ns /. 1e3

let pp_chrome ppf t =
  let evs = events t in
  Format.fprintf ppf "{@\n  \"displayTimeUnit\": \"ms\",@\n  \"traceEvents\": [";
  let first = ref true in
  let emit pp =
    if not !first then Format.fprintf ppf ",";
    first := false;
    Format.fprintf ppf "@\n    ";
    pp ()
  in
  emit (fun () ->
      Format.fprintf ppf
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
         \"args\": {\"name\": \"rgs\"}}");
  List.iter
    (fun (b : t) ->
      emit (fun () ->
          Format.fprintf ppf
            "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \
             \"args\": {\"name\": %S}}"
            b.tid
            (if b.tid = 0 then "main" else Printf.sprintf "worker-%d" b.tid)))
    (buffers t);
  List.iter
    (fun ev ->
      emit (fun () ->
          if ev.dur_ns > 0 || ev.kind = Root || ev.kind = Worker
             || ev.kind = Checkpoint_write
          then
            Format.fprintf ppf
              "{\"name\": %S, \"cat\": \"rgs\", \"ph\": \"X\", \"pid\": 0, \
               \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {%a}}"
              (kind_name ev.kind) ev.tid (us ev.ts_ns) (us ev.dur_ns) pp_args ev
          else
            Format.fprintf ppf
              "{\"name\": %S, \"cat\": \"rgs\", \"ph\": \"i\", \"s\": \"t\", \
               \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"args\": {%a}}"
              (kind_name ev.kind) ev.tid (us ev.ts_ns) pp_args ev))
    evs;
  Format.fprintf ppf "@\n  ],@\n  \"otherData\": {\"dropped_events\": %d}@\n}@\n"
    (dropped t)

let write_chrome path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      pp_chrome ppf t;
      Format.pp_print_flush ppf ())
