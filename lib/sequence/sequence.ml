type t = Event.t array

let of_array a = Array.copy a
let unsafe_of_array a = a
let of_list l = Array.of_list l

let of_string s =
  Array.init (String.length s) (fun i ->
      let c = s.[i] in
      if c < 'A' || c > 'Z' then
        invalid_arg (Printf.sprintf "Sequence.of_string: bad char %C" c)
      else Char.code c - Char.code 'A')

let to_array s = Array.copy s
let to_list s = Array.to_list s
let length s = Array.length s
let is_empty s = Array.length s = 0

let get s i =
  if i < 1 || i > Array.length s then
    invalid_arg (Printf.sprintf "Sequence.get: position %d out of [1;%d]" i (Array.length s))
  else Array.unsafe_get s (i - 1)

let unsafe_get s i = Array.unsafe_get s (i - 1)

let events s =
  let module ISet = Set.Make (Int) in
  ISet.elements (Array.fold_left (fun acc e -> ISet.add e acc) ISet.empty s)

let count s e =
  Array.fold_left (fun n e' -> if Event.equal e e' then n + 1 else n) 0 s

let sub s ~pos ~len =
  if pos < 1 || len < 0 || pos + len - 1 > Array.length s then
    invalid_arg "Sequence.sub: out of bounds"
  else Array.sub s (pos - 1) len

let append = Array.append
let equal a b = a = b
let compare = Stdlib.compare

let all_letters s = Array.for_all (fun e -> e >= 0 && e < 26) s

let pp ppf s =
  if Array.length s > 0 && all_letters s then
    Array.iter (fun e -> Format.pp_print_char ppf (Char.chr (Char.code 'A' + e))) s
  else begin
    Format.pp_print_char ppf '<';
    Array.iteri
      (fun i e ->
        if i > 0 then Format.pp_print_char ppf ' ';
        Format.pp_print_int ppf e)
      s;
    Format.pp_print_char ppf '>'
  end

let pp_with codec ppf s =
  Format.pp_print_char ppf '<';
  Array.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_char ppf ' ';
      Codec.pp_event codec ppf e)
    s;
  Format.pp_print_char ppf '>'

let fold_left = Array.fold_left
let iteri f s = Array.iteri (fun i e -> f (i + 1) e) s
