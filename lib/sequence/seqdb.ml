type t = { seqs : Sequence.t array; alpha : Alphabet.t }

(* The dense alphabet is interned eagerly: one O(total length) pass at build
   time buys hashing-free, array-indexed event lookups for the lifetime of
   the database (Inverted_index's CSR layout keys on dense ids). *)
let of_owned_array seqs = { seqs; alpha = Alphabet.of_sequences seqs }
let of_array seqs = of_owned_array (Array.copy seqs)
let of_sequences l = of_owned_array (Array.of_list l)
let of_strings l = of_sequences (List.map Sequence.of_string l)
let size db = Array.length db.seqs
let dense_alphabet db = db.alpha

let seq db i =
  if i < 1 || i > Array.length db.seqs then
    invalid_arg (Printf.sprintf "Seqdb.seq: index %d out of [1;%d]" i (Array.length db.seqs))
  else db.seqs.(i - 1)

let sequences db = Array.copy db.seqs
let total_length db = Array.fold_left (fun n s -> n + Sequence.length s) 0 db.seqs

let max_length db =
  Array.fold_left (fun m s -> max m (Sequence.length s)) 0 db.seqs

let avg_length db =
  if Array.length db.seqs = 0 then 0.
  else float_of_int (total_length db) /. float_of_int (Array.length db.seqs)

let alphabet db = Array.to_list (Alphabet.events db.alpha)
let alphabet_size db = Alphabet.size db.alpha

let event_count db e =
  Array.fold_left (fun n s -> n + Sequence.count s e) 0 db.seqs

let fold f init db =
  let acc = ref init in
  Array.iteri (fun i s -> acc := f !acc (i + 1) s) db.seqs;
  !acc

let iter f db = Array.iteri (fun i s -> f (i + 1) s) db.seqs
let equal a b = a.seqs = b.seqs

let pp ppf db =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i s -> Format.fprintf ppf "S%d = %a@," (i + 1) Sequence.pp s)
    db.seqs;
  Format.fprintf ppf "@]"

type stats = {
  num_sequences : int;
  num_events : int;
  total_length : int;
  min_length : int;
  max_length : int;
  avg_length : float;
}

let stats db =
  let min_length =
    if Array.length db.seqs = 0 then 0
    else Array.fold_left (fun m s -> min m (Sequence.length s)) max_int db.seqs
  in
  {
    num_sequences = size db;
    num_events = alphabet_size db;
    total_length = total_length db;
    min_length;
    max_length = max_length db;
    avg_length = avg_length db;
  }

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>sequences   : %d@,distinct evs: %d@,total length: %d@,\
     min/avg/max : %d / %.2f / %d@]"
    st.num_sequences st.num_events st.total_length st.min_length st.avg_length
    st.max_length
