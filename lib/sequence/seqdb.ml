(* A database is either heap-backed (every sequence built eagerly, the
   seed behaviour) or store-backed: the event data and precomputed CSR
   runs live in read-only mapped [Ivec] sections shared across domains
   and processes, and [Sequence.t] values are materialised lazily, one
   sequence at a time, only when something actually scans them (closure
   checks, printing). Mining through the inverted index alone never
   forces a sequence. *)
type mapped = {
  m_seq_offsets : Ivec.t; (* N+1 absolute offsets into events/csr_pos *)
  m_events : Ivec.t; (* concatenated sequences, sequence-major *)
  m_csr_offsets : Ivec.t; (* N*(k+1), per-sequence-relative (FORMAT.md §2.4) *)
  m_csr_pos : Ivec.t; (* 1-based positions grouped by dense id *)
  m_digest : string; (* hex MD5 of the canonical event stream *)
}

type t = {
  (* per-slot atomics: domains race to materialise a sequence; the CAS
     winner publishes and everyone reuses it (heap databases are fully
     populated at construction, so the slow path never runs for them) *)
  cache : Sequence.t option Atomic.t array;
  alpha : Alphabet.t;
  mapped : mapped option;
  digest : string option Atomic.t;
}

(* The dense alphabet is interned eagerly: one O(total length) pass at build
   time buys hashing-free, array-indexed event lookups for the lifetime of
   the database (Inverted_index's CSR layout keys on dense ids). *)
let of_owned_array seqs =
  {
    cache = Array.map (fun s -> Atomic.make (Some s)) seqs;
    alpha = Alphabet.of_sequences seqs;
    mapped = None;
    digest = Atomic.make None;
  }

let of_array seqs = of_owned_array (Array.copy seqs)
let of_sequences l = of_owned_array (Array.of_list l)
let of_strings l = of_sequences (List.map Sequence.of_string l)
let size db = Array.length db.cache
let dense_alphabet db = db.alpha
let is_mapped db = db.mapped <> None

let mapped_csr db =
  match db.mapped with
  | None -> None
  | Some m -> Some (m.m_csr_offsets, m.m_csr_pos)

let force db i0 =
  match db.mapped with
  | None ->
    (* heap databases populate every slot at construction *)
    assert false
  | Some m ->
    let lo = Ivec.get m.m_seq_offsets i0
    and hi = Ivec.get m.m_seq_offsets (i0 + 1) in
    let s =
      Sequence.unsafe_of_array (Ivec.sub_array m.m_events ~pos:lo ~len:(hi - lo))
    in
    let slot = db.cache.(i0) in
    if Atomic.compare_and_set slot None (Some s) then begin
      Metrics.add Metrics.store_resident_words (hi - lo);
      s
    end
    else match Atomic.get slot with Some s -> s | None -> s

let seq_at db i0 =
  match Atomic.get db.cache.(i0) with Some s -> s | None -> force db i0

let seq db i =
  if i < 1 || i > Array.length db.cache then
    invalid_arg
      (Printf.sprintf "Seqdb.seq: index %d out of [1;%d]" i (Array.length db.cache))
  else seq_at db (i - 1)

let sequences db = Array.init (size db) (seq_at db)

(* length of sequence [i0] without forcing it *)
let length_at db i0 =
  match db.mapped with
  | Some m -> Ivec.get m.m_seq_offsets (i0 + 1) - Ivec.get m.m_seq_offsets i0
  | None -> Sequence.length (seq_at db i0)

let total_length db =
  match db.mapped with
  | Some m -> Ivec.get m.m_seq_offsets (size db)
  | None ->
    let n = ref 0 in
    for i = 0 to size db - 1 do
      n := !n + Sequence.length (seq_at db i)
    done;
    !n

let max_length db =
  let m = ref 0 in
  for i = 0 to size db - 1 do
    m := max !m (length_at db i)
  done;
  !m

let avg_length db =
  if size db = 0 then 0.
  else float_of_int (total_length db) /. float_of_int (size db)

let alphabet db = Array.to_list (Alphabet.events db.alpha)
let alphabet_size db = Alphabet.size db.alpha

let event_count db e =
  match db.mapped with
  | Some m ->
    (* per-event totals fall out of the CSR offsets; no sequence forced *)
    let d = Alphabet.dense db.alpha e in
    if d < 0 then 0
    else begin
      let k = Alphabet.size db.alpha in
      let total = ref 0 in
      for i = 0 to size db - 1 do
        let base = i * (k + 1) in
        total :=
          !total
          + Ivec.get m.m_csr_offsets (base + d + 1)
          - Ivec.get m.m_csr_offsets (base + d)
      done;
      !total
    end
  | None ->
    let n = ref 0 in
    for i = 0 to size db - 1 do
      n := !n + Sequence.count (seq_at db i) e
    done;
    !n

let fold f init db =
  let acc = ref init in
  for i = 0 to size db - 1 do
    acc := f !acc (i + 1) (seq_at db i)
  done;
  !acc

let iter f db =
  for i = 0 to size db - 1 do
    f (i + 1) (seq_at db i)
  done

(* The canonical event stream: every event as "%d ", every sequence
   terminated by '\n'. Checkpoint fingerprints hash exactly this stream
   (plus the run parameters), and Store.write seals its MD5 into the
   .rgsdb header (FORMAT.md §2.1) — so a mapped database answers in O(1)
   and text-path and store-path runs share checkpoints. *)
let compute_digest db =
  let buf = Buffer.create (4 * (total_length db + size db) + 16) in
  iter
    (fun _ s ->
      Sequence.iteri
        (fun _ e ->
          Buffer.add_string buf (string_of_int e);
          Buffer.add_char buf ' ')
        s;
      Buffer.add_char buf '\n')
    db;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let content_digest db =
  match Atomic.get db.digest with
  | Some d -> d
  | None ->
    let d = compute_digest db in
    (* racing domains compute the same value; first publish wins *)
    ignore (Atomic.compare_and_set db.digest None (Some d));
    d

let of_store ~alpha ~seq_offsets ~events ~csr_offsets ~csr_pos ~digest =
  let n = Ivec.length seq_offsets - 1 in
  let k = Alphabet.size alpha in
  if n < 0 then invalid_arg "Seqdb.of_store: empty sequence-offset table";
  if Ivec.length csr_offsets <> n * (k + 1) then
    invalid_arg "Seqdb.of_store: CSR offset table size mismatch";
  if Ivec.get seq_offsets 0 <> 0 then
    invalid_arg "Seqdb.of_store: sequence offsets must start at 0";
  for i = 0 to n - 1 do
    if Ivec.get seq_offsets (i + 1) < Ivec.get seq_offsets i then
      invalid_arg "Seqdb.of_store: sequence offsets must be nondecreasing"
  done;
  let total = Ivec.get seq_offsets n in
  if Ivec.length events <> total then
    invalid_arg "Seqdb.of_store: event section size mismatch";
  if Ivec.length csr_pos <> total then
    invalid_arg "Seqdb.of_store: CSR position section size mismatch";
  (* Semantic CSR-offset check (FORMAT.md §2.5): every consumer of the
     mapped CSR — totals, slicing, the cursor gallop — indexes the
     position runs with these offsets unchecked, so each sequence's
     block must be a valid prefix-sum: starts at 0, nondecreasing, ends
     at the sequence's own length. O(N·(k+1)) over mapped table words;
     no event data is touched, so opens stay corpus-length-independent. *)
  for i = 0 to n - 1 do
    let base = i * (k + 1) in
    if Ivec.get csr_offsets base <> 0 then
      invalid_arg "Seqdb.of_store: CSR offsets must start at 0";
    for d = 1 to k do
      if Ivec.get csr_offsets (base + d) < Ivec.get csr_offsets (base + d - 1)
      then invalid_arg "Seqdb.of_store: CSR offsets must be nondecreasing"
    done;
    let len = Ivec.get seq_offsets (i + 1) - Ivec.get seq_offsets i in
    if Ivec.get csr_offsets (base + k) <> len then
      invalid_arg
        "Seqdb.of_store: CSR offsets must end at the sequence length"
  done;
  {
    cache = Array.init n (fun _ -> Atomic.make None);
    alpha;
    mapped =
      Some
        {
          m_seq_offsets = seq_offsets;
          m_events = events;
          m_csr_offsets = csr_offsets;
          m_csr_pos = csr_pos;
          m_digest = digest;
        };
    digest = Atomic.make (Some digest);
  }

let equal a b =
  size a = size b
  &&
  (* mapped stores carry their content hash; use it when both sides do *)
  match (a.mapped, b.mapped) with
  | Some ma, Some mb -> ma.m_digest = mb.m_digest
  | _ ->
    let rec go i =
      i >= size a || (Sequence.equal (seq_at a i) (seq_at b i) && go (i + 1))
    in
    go 0

(* Balanced contiguous shards by total event length. Greedy with a
   moving target (remaining length / remaining shards): sequences are
   appended to the current shard until it reaches the target, with the
   guard that every remaining shard can still claim at least one
   sequence. Uses [length_at] only — on mapped databases this is two
   offset-table reads per sequence, so sharding a paper-scale corpus
   forces nothing. *)
let shard db n =
  if n < 1 then invalid_arg "Seqdb.shard: shard count must be >= 1";
  let size = size db in
  if size = 0 then [||]
  else begin
    let n = min n size in
    let total = total_length db in
    let ranges = Array.make n (0, 0) in
    let lo = ref 1 in
    let remaining = ref total in
    for s = 0 to n - 1 do
      let shards_left = n - s in
      (* every later shard must keep at least one sequence *)
      let hi_cap = size - (shards_left - 1) in
      let target = !remaining / shards_left in
      let hi = ref !lo in
      let acc = ref (length_at db (!lo - 1)) in
      while !hi < hi_cap && !acc < target do
        incr hi;
        acc := !acc + length_at db (!hi - 1)
      done;
      (* the last shard absorbs any tail of zero-length sequences *)
      if shards_left = 1 then
        while !hi < size do
          incr hi;
          acc := !acc + length_at db (!hi - 1)
        done;
      ranges.(s) <- (!lo, !hi);
      remaining := !remaining - !acc;
      lo := !hi + 1
    done;
    ranges
  end

let pp ppf db =
  Format.fprintf ppf "@[<v>";
  iter (fun i s -> Format.fprintf ppf "S%d = %a@," i Sequence.pp s) db;
  Format.fprintf ppf "@]"

type stats = {
  num_sequences : int;
  num_events : int;
  total_length : int;
  min_length : int;
  max_length : int;
  avg_length : float;
}

let stats db =
  let min_length = ref (if size db = 0 then 0 else max_int) in
  for i = 0 to size db - 1 do
    min_length := min !min_length (length_at db i)
  done;
  {
    num_sequences = size db;
    num_events = alphabet_size db;
    total_length = total_length db;
    min_length = !min_length;
    max_length = max_length db;
    avg_length = avg_length db;
  }

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>sequences   : %d@,distinct evs: %d@,total length: %d@,\
     min/avg/max : %d / %.2f / %d@]"
    st.num_sequences st.num_events st.total_length st.min_length st.avg_length
    st.max_length
