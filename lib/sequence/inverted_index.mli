(** Inverted event index (Section III-D of the paper).

    For each event [e] and sequence [S_i], the index stores the ordered
    position list [L_{e,Si} = { j | S_i[j] = e }]. The [next] query — "the
    smallest position [l > lowest] with [S_i[l] = e]" — is answered by
    binary search in [O(log L)], exactly as the paper's subroutine
    [next(S, e, lowest)].

    Two storage backends implement the paper's two regimes:

    - {!build}: flat sorted arrays — "if the main memory is large enough
      for the index structure [L_{e,Si}]'s, we can use arrays";
    - {!build_paged}: bulk-loaded B+-trees ({!Btree}) — "otherwise,
      B-trees can be employed".

    Queries behave identically on both (property-tested); every mining
    algorithm runs on either. *)

type t

val build : Seqdb.t -> t
(** Array-backed index, built in one pass over the database,
    [O(total length)]. *)

val build_paged : ?fanout:int -> Seqdb.t -> t
(** B+-tree-backed index ([fanout] defaults to 16). Same query semantics;
    node-per-level access pattern suited to paged storage. *)

val db : t -> Seqdb.t
(** The database the index was built from. *)

val next : t -> seq:int -> Event.t -> lowest:int -> int option
(** [next idx ~seq:i e ~lowest] is the minimum position [l] such that
    [l > lowest] and [S_i[l] = e], or [None] if no such position exists.
    [seq] is 1-based. *)

val count_between : t -> seq:int -> Event.t -> lo:int -> hi:int -> int
(** Number of positions [p] of [e] in [S_i] with [lo < p < hi] (exclusive
    bounds) — [O(log L)]. *)

val positions : t -> seq:int -> Event.t -> int array
(** All positions of [e] in [S_i], ascending, 1-based. On the array
    backend the result is owned by the index and must not be mutated; on
    the paged backend it is materialised on each call. *)

val occurrence_count : t -> Event.t -> int
(** Total occurrences of [e] over the database — the repetitive support of
    the single-event pattern [e]. *)

val events : t -> Event.t list
(** Distinct events in the database, ascending. *)

val frequent_events : t -> min_sup:int -> Event.t list
(** Events whose occurrence count is at least [min_sup], ascending. By the
    Apriori property these are the only events that can appear in any
    frequent pattern. *)

val is_paged : t -> bool
(** [true] for {!build_paged} indexes; exposed for tests and reporting. *)
