(** Inverted event index (Section III-D of the paper).

    For each event [e] and sequence [S_i], the index stores the ordered
    position list [L_{e,Si} = { j | S_i[j] = e }]. The [next] query — "the
    smallest position [l > lowest] with [S_i[l] = e]" — is answered by
    binary search in [O(log L)], exactly as the paper's subroutine
    [next(S, e, lowest)].

    Three storage backends share the same query semantics (property-tested
    equal; every mining algorithm runs on any of them):

    - {!build} (default, columnar): CSR layout — per sequence, one
      contiguous positions buffer grouped by dense event id
      ({!Alphabet}) plus an offsets table indexed by dense id, so
      [positions]/[next]/[count_between] are pure array-slice arithmetic
      with zero hashing. Only this backend supports the stateful
      {!cursor} fast path.
    - {!build_legacy}: the seed layout — per-sequence hashtables of flat
      sorted arrays ("if the main memory is large enough for the index
      structure [L_{e,Si}]'s, we can use arrays"). Kept for old-vs-new
      benchmarking and differential testing.
    - {!build_paged}: bulk-loaded B+-trees ({!Btree}) — "otherwise,
      B-trees can be employed".

    The CSR backend spends [alphabet_size + 1] words of offsets per
    sequence; for databases whose alphabet vastly exceeds typical sequence
    length under tight memory, prefer {!build_paged}. *)

type t

type kind = Kcsr | Klegacy | Kpaged

val build : Seqdb.t -> t
(** Columnar (CSR) index, built in one counting pass and one fill pass over
    the database, [O(total length + N * alphabet)]. On a store-backed
    database ({!Seqdb.of_store}) the pass is skipped entirely: the CSR
    runs were precomputed at pack time, so building only slices the
    mapped sections — [O(N)] descriptors, zero copies, no event data
    read. *)

val build_legacy : Seqdb.t -> t
(** Hashtable-of-arrays index (the pre-columnar seed layout). *)

val build_paged : ?fanout:int -> Seqdb.t -> t
(** B+-tree-backed index ([fanout] defaults to 16). Same query semantics;
    node-per-level access pattern suited to paged storage. *)

val build_kind : ?fanout:int -> kind -> Seqdb.t -> t
(** Dispatch on {!kind} ([fanout] only affects [Kpaged]). *)

val db : t -> Seqdb.t
(** The database the index was built from. *)

val kind : t -> kind
val kind_name : kind -> string

val backend_name : t -> string
(** ["csr"], ["legacy"] or ["paged"] — for benches and reports. *)

val next : t -> seq:int -> Event.t -> lowest:int -> int option
(** [next idx ~seq:i e ~lowest] is the minimum position [l] such that
    [l > lowest] and [S_i[l] = e], or [None] if no such position exists.
    [seq] is 1-based. Counts into {!Metrics.next_calls}. *)

val count_between : t -> seq:int -> Event.t -> lo:int -> hi:int -> int
(** Number of positions [p] of [e] in [S_i] with [lo < p < hi] (exclusive
    bounds) — [O(log L)]. *)

val positions : t -> seq:int -> Event.t -> int array
(** All positions of [e] in [S_i], ascending, 1-based. Materialised on
    each call (a fresh array on every backend). *)

(** {2 Cursors}

    A cursor answers a {e monotone} sequence of [next] queries against one
    [(sequence, event)] position list. INSgrow's per-sequence pass is
    exactly that: by Lemma 3 the [lowest] bound — [max(last_position,
    inst.last)] — never decreases while walking a support-set group in
    right-shift order, so instead of re-running a full binary search per
    instance the cursor remembers where the previous seek ended and
    advances by galloping. A whole-group pass therefore costs
    O(occurrences of [e] in [S_i]) amortized, independent of the number of
    instances extended. *)

type cursor

val cursor : t -> seq:int -> Event.t -> cursor
(** A fresh cursor over [L_{e,Si}]. All three backends are stateful: the
    CSR cursor resolves its slice once (no hashing at all), the legacy
    cursor resolves the position array once per sequence (one hashtable
    probe at creation/{!reseat} instead of one per seek), and the paged
    cursor keeps a {!Btree.cursor} finger into the current leaf. *)

val seek : cursor -> lowest:int -> int option
(** [seek c ~lowest] is [next idx ~seq e ~lowest] for the cursor's list.
    Calls must pass nondecreasing [lowest] values (INSgrow's monotone
    bound, Lemma 3); positions at or below an earlier [lowest] are spent
    and will not be revisited. Short hops are resolved by a few linear
    probes (counted into {!Metrics.cursor_advances}); longer hops switch
    to a galloping (doubling) search, O(log hop), counted into
    {!Metrics.cursor_gallops}. *)

val seek_pos : cursor -> lowest:int -> int
(** As {!seek} but option-free: the position, or [-1] when none qualifies.
    The mining hot loops use this entry to avoid one allocation per
    successful seek. *)

val reseat : cursor -> seq:int -> unit
(** Re-point the cursor at sequence [seq]'s position list for the same
    event, resetting the monotone frontier but keeping the batched counts.
    An INSgrow pass over a whole support set thereby costs one cursor
    allocation and one {!cursor_finish} flush total. The sequence index is
    not re-validated — callers iterate a support set's groups, which are
    in range by construction. *)

val cursor_finish : cursor -> unit
(** Flush the cursor's locally batched counts into {!Metrics.next_calls},
    {!Metrics.cursor_advances} and {!Metrics.cursor_gallops} (one atomic
    add per counter, instead of contending on shared counters inside the
    seek loop). Safe to skip — only metrics accuracy is affected. *)

val occurrence_count : t -> Event.t -> int
(** Total occurrences of [e] over the database — the repetitive support of
    the single-event pattern [e]. [O(1)] (dense-alphabet table lookup). *)

val events : t -> Event.t list
(** Distinct events in the database, ascending. *)

val frequent_events : t -> min_sup:int -> Event.t list
(** Events whose occurrence count is at least [min_sup], ascending. By the
    Apriori property these are the only events that can appear in any
    frequent pattern. *)

val is_paged : t -> bool
(** [true] for {!build_paged} indexes; exposed for tests and reporting. *)
