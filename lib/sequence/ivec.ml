type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n : t = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n
let empty : t = create 0
let length (v : t) = Bigarray.Array1.dim v
let get (v : t) i = Bigarray.Array1.get v i
let unsafe_get (v : t) i = Bigarray.Array1.unsafe_get v i
let set (v : t) i x = Bigarray.Array1.set v i x
let sub (v : t) ~pos ~len : t = Bigarray.Array1.sub v pos len

let of_array a =
  let v = create (Array.length a) in
  Array.iteri (fun i x -> Bigarray.Array1.unsafe_set v i x) a;
  v

let sub_array (v : t) ~pos ~len =
  if len = 0 then [||]
  else Array.init len (fun i -> Bigarray.Array1.unsafe_get v (pos + i))

let to_array v = sub_array v ~pos:0 ~len:(length v)

let equal a b =
  length a = length b
  &&
  let n = length a in
  let rec go i = i >= n || (unsafe_get a i = unsafe_get b i && go (i + 1)) in
  go 0
