(** Runtime tuning knobs shared across the index backends.

    The galloping cursors (CSR/legacy windows in {!Inverted_index}, the
    paged B+-tree cursor in {!Btree}) all probe a few positions linearly
    past the frontier before switching to a doubling search. The
    threshold used to be a per-backend hard-coded constant; it now lives
    here, once, and can be overridden with the [RGS_GALLOP_PROBE]
    environment variable (read at startup; a non-negative integer —
    anything else falls back to the default). [0] disables the linear
    fast path entirely (every non-frontier hop gallops); large values
    degrade long hops toward linear scans. *)

val default_gallop_probe : int
(** The built-in threshold ([4]): linear probes per seek before
    galloping. *)

val parse_gallop_probe : string option -> int
(** Parse an [RGS_GALLOP_PROBE] value; falls back to
    {!default_gallop_probe} on [None], negative numbers or non-integers.
    Exposed pure so the env-var contract is unit-testable. *)

val gallop_probe_limit : unit -> int
(** The active threshold, consulted by every cursor seek. Initialised
    from [RGS_GALLOP_PROBE] at module load. *)

val set_gallop_probe : int -> unit
(** Override the active threshold (tests and experiments sweep it; the
    differential perf-guard property pins that answers do not depend on
    it).
    @raise Invalid_argument when negative. *)
