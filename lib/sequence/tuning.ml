let default_gallop_probe = 4

let parse_gallop_probe = function
  | None -> default_gallop_probe
  | Some v -> (
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 0 -> n
    | Some _ | None -> default_gallop_probe)

let gallop_probe = ref (parse_gallop_probe (Sys.getenv_opt "RGS_GALLOP_PROBE"))

let gallop_probe_limit () = !gallop_probe

let set_gallop_probe n =
  if n < 0 then invalid_arg "Tuning.set_gallop_probe: n must be >= 0";
  gallop_probe := n
