(** Bidirectional mapping between event names and event identifiers.

    A codec interns event names (arbitrary strings) as dense integer
    identifiers [0, 1, 2, ...]. All mining code works on identifiers; codecs
    are used at the input/output boundary. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh, empty codec. *)

val intern : t -> string -> Event.t
(** [intern c name] returns the identifier of [name], allocating the next
    fresh identifier if [name] is new. *)

val find : t -> string -> Event.t option
(** [find c name] is the identifier of [name] if it has been interned. *)

val name : t -> Event.t -> string
(** [name c e] is the name interned for [e].
    @raise Invalid_argument if [e] was not allocated by [c]. *)

val name_opt : t -> Event.t -> string option

val size : t -> int
(** Number of interned events. Identifiers range over [0 .. size - 1]. *)

val of_names : string list -> t
(** Codec interning the given names in order. *)

val pp_event : t -> Format.formatter -> Event.t -> unit
(** Prints the event's name, falling back to [e<id>] for unknown ids. *)

val alphabet : t -> Event.t list
(** All interned identifiers, ascending. *)
