(** Dense event alphabets.

    Mining code treats events as arbitrary integers ({!Event.t}), but the
    columnar index layout ({!Inverted_index}) wants a dense alphabet
    [0 .. size-1] so per-event data can live in flat arrays instead of
    hashtables. An alphabet interns the distinct events of a database into
    dense identifiers at {!Seqdb} build time — the integer analogue of what
    {!Codec} does for event names at the I/O boundary.

    Dense identifiers are assigned in ascending event order, so
    [event a 0 < event a 1 < ...] and iterating dense ids enumerates the
    alphabet in the same order as {!Seqdb.alphabet}. *)

type t

val of_sequences : Sequence.t array -> t
(** Interns every distinct event of the sequences, in one [O(total length)]
    pass (plus a sort of the distinct events). *)

val of_events : Event.t array -> t
(** Rebuilds an alphabet from its interned event list (strictly ascending,
    as {!events} returns it) — the store open path, which has the ALPH
    section at hand and must not rescan the database.
    @raise Invalid_argument when the events are not strictly ascending. *)

val size : t -> int
(** Number of distinct events; dense ids range over [0 .. size - 1]. *)

val event : t -> int -> Event.t
(** [event a d] is the raw event interned as dense id [d].
    @raise Invalid_argument when [d] is out of [0 .. size - 1]. *)

val events : t -> Event.t array
(** All interned events, ascending (fresh array). *)

val dense : t -> Event.t -> int
(** [dense a e] is the dense id of [e], or [-1] when [e] does not occur.
    [O(1)] when the raw event range is comparable to the alphabet size
    (direct table), [O(1) expected] otherwise (hashtable fallback for
    sparse or negative event spaces). *)

val mem : t -> Event.t -> bool
