(** Bulk-loaded B+-tree over sorted integer keys.

    Section III-D: "If the main memory is large enough for the index
    structure [L_{e,Si}]'s, we can use arrays ... Otherwise, B-trees can be
    employed". This is that alternative: position lists are bulk-loaded
    into a B+-tree of configurable fanout, and the [next] query becomes a
    successor search descending the tree. In-memory here, but with the
    access pattern (one node per level) a paged implementation would have;
    {!Inverted_index.build_paged} exposes it behind the standard index
    queries, and the equivalence with the array backend is
    property-tested. *)

type t

val of_sorted_array : ?fanout:int -> int array -> t
(** Bulk-loads the keys, which must be strictly increasing. [fanout]
    (default 16) is the maximum number of children per internal node.
    @raise Invalid_argument when keys are not strictly increasing or
    [fanout < 2]. *)

val length : t -> int
(** Number of keys. *)

val successor : t -> int -> int option
(** [successor t k] is the smallest key strictly greater than [k]. *)

val count_in : t -> lo:int -> hi:int -> int
(** Number of keys [k] with [lo < k < hi]. *)

val mem : t -> int -> bool

val to_list : t -> int list
(** All keys, ascending. *)

val to_array : t -> int array
(** All keys, ascending, into one preallocated array (no intermediate
    list) — the materialisation path of {!Inverted_index.positions} on the
    paged backend. *)

val depth : t -> int
(** Tree height (leaf = 1); exposed for tests. *)

(** {2 Monotone cursor}

    A stateful finger for monotone successor streams ({!Inverted_index}'s
    paged cursors). The cursor remembers the leaf the previous answer came
    from: a seek whose answer stays in that leaf costs a handful of linear
    probes (or one in-leaf bisection), and only a seek that leaves the leaf
    pays a fresh root-to-leaf descent. Seeks must pass nondecreasing
    [lowest] values. *)

type cursor

val cursor : t -> cursor
(** A fresh cursor positioned before the first key. *)

val cursor_seek : cursor -> lowest:int -> int
(** Smallest key strictly greater than [lowest], or [-1] when none
    remains. Equivalent to {!successor} under the monotonicity contract. *)

val cursor_reset : cursor -> t -> unit
(** Re-point the cursor at (possibly another) tree, resetting the monotone
    frontier but keeping the batched work counts. *)

val cursor_advanced : cursor -> int
(** Linear probes over spent keys since the last drain. *)

val cursor_gallops : cursor -> int
(** Bisection halvings and descent levels since the last drain. *)

val cursor_drain_counts : cursor -> int * int
(** [(advanced, gallops)] since the last drain, zeroing both. *)
