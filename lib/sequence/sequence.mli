(** Event sequences.

    A sequence [S = <e1, e2, ..., e_length>] is an ordered list of events
    (Section II of the paper). Positions are {b 1-based} throughout, matching
    the paper's notation: [get s i] is the paper's [S[i]], [1 <= i <= length s]. *)

type t
(** An immutable event sequence. *)

val of_array : Event.t array -> t
(** [of_array a] takes ownership of a copy of [a]. *)

val unsafe_of_array : Event.t array -> t
(** [unsafe_of_array a] adopts [a] without copying; the caller must never
    mutate it afterwards. Used by {!Seqdb} when materialising sequences
    out of a mapped store, where the freshly copied slice has no other
    owner. *)

val of_list : Event.t list -> t

val of_string : string -> t
(** [of_string "AABC"] maps each character to the event [Char.code c - Char.code 'A'],
    so ['A' -> 0], ['B' -> 1], ... Convenient for paper examples and tests.
    @raise Invalid_argument on characters outside ['A'..'Z']. *)

val to_array : t -> Event.t array
(** A fresh copy of the underlying events. *)

val to_list : t -> Event.t list

val length : t -> int

val is_empty : t -> bool

val get : t -> int -> Event.t
(** [get s i] is [S[i]] with 1-based [i].
    @raise Invalid_argument when [i < 1 || i > length s]. *)

val unsafe_get : t -> int -> Event.t
(** As {!get} but without bounds checking. *)

val events : t -> Event.t list
(** Distinct events occurring in the sequence, ascending. *)

val count : t -> Event.t -> int
(** Number of occurrences of the event. *)

val sub : t -> pos:int -> len:int -> t
(** [sub s ~pos ~len] is the substring [S[pos..pos+len-1]] (1-based [pos]). *)

val append : t -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as upper-case letters when all events are [< 26], else as
    space-separated ids. *)

val pp_with : Codec.t -> Format.formatter -> t -> unit

val fold_left : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val iteri : (int -> Event.t -> unit) -> t -> unit
(** Iterates with 1-based positions. *)
