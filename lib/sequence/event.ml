type t = int

let compare (a : t) (b : t) = Int.compare a b
let equal (a : t) (b : t) = Int.equal a b
let hash (a : t) = a
let pp ppf e = Format.fprintf ppf "e%d" e
