type counter = int Atomic.t
type kind = Counter | Gauge

let hit c = Atomic.incr c
let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c n)
let value = Atomic.get

let observe_max c v =
  let rec loop () =
    let cur = Atomic.get c in
    if v > cur && not (Atomic.compare_and_set c cur v) then loop ()
  in
  loop ()

(* The registry holds every named counter/gauge. Registration is rare
   (module init, plus the odd dynamic caller) and mutex-protected; readers
   snapshot the list under the same mutex and then read the atomics
   lock-free. *)
let registry : (string * kind * counter) list ref = ref []
let registry_mutex = Mutex.create ()

let register name kind =
  Mutex.lock registry_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mutex)
    (fun () ->
      if List.exists (fun (n, _, _) -> n = name) !registry then
        invalid_arg (Printf.sprintf "Metrics.register: duplicate name %S" name);
      let c = Atomic.make 0 in
      registry := (name, kind, c) :: !registry;
      c)

let registered () =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) (fun () -> !registry)

let insgrow_calls = register "insgrow_calls" Counter
let full_insgrow_calls = register "full_insgrow_calls" Counter
let next_calls = register "next_calls" Counter
let cursor_advances = register "cursor_advances" Counter
let cursor_gallops = register "cursor_gallops" Counter
let dfs_nodes = register "dfs_nodes" Counter
let patterns_emitted = register "patterns_emitted" Counter
let lb_prunes = register "lb_prunes" Counter
let closure_bound_checks = register "closure_bound_checks" Counter
let closure_bound_rejects = register "closure_bound_rejects" Counter
let closure_base_grows = register "closure_base_grows" Counter
let closure_full_grows = register "closure_full_grows" Counter
let budget_stops = register "budget_stops" Counter
let checkpoint_writes = register "checkpoint_writes" Counter
let checkpoint_io_retries = register "checkpoint_io_retries" Counter
let checkpoint_io_failures = register "checkpoint_io_failures" Counter
let checkpoint_salvaged_roots = register "checkpoint_salvaged_roots" Counter
let pool_workers = register "pool_workers" Counter
let root_retries = register "root_retries" Counter
let quarantined_roots = register "quarantined_roots" Counter
let trace_dropped_events = register "trace_dropped_events" Counter
let parse_errors_skipped = register "parse_errors_skipped" Counter
let query_targeted_cuts = register "query_targeted_cuts" Counter
let query_floor_prunes = register "query_floor_prunes" Counter
let query_topk_floor = register "query_topk_floor" Gauge
let query_delta_reps = register "query_delta_reps" Gauge
let query_delta_covered = register "query_delta_covered" Counter
let peak_live_words = register "peak_live_words" Gauge
let store_opens = register "store_opens" Counter
let store_open_ns = register "store_open_ns" Counter
let store_mapped_words = register "store_mapped_words" Gauge
let store_resident_words = register "store_resident_words" Counter
let store_crc_checks = register "store_crc_checks" Counter
let store_crc_failures = register "store_crc_failures" Counter
let steal_attempts = register "steal_attempts" Counter
let steal_successes = register "steal_successes" Counter
let shard_merge_ns = register "shard_merge_ns" Counter
let deque_max_depth = register "deque_max_depth" Gauge
let worker_spawns = register "worker_spawns" Counter
let worker_restarts = register "worker_restarts" Counter
let worker_heartbeats_missed = register "worker_heartbeats_missed" Counter
let shard_quarantines = register "shard_quarantines" Counter
let supervisor_degraded = register "supervisor_degraded" Gauge

let sample_live_words () =
  (* force a full major first: without it [Gc.stat]'s [live_words] includes
     whatever floating garbage the last cycle left, which varies with
     allocation rhythm rather than retention and made backend memory
     comparisons meaningless *)
  Gc.full_major ();
  let live = (Gc.stat ()).Gc.live_words in
  observe_max peak_live_words live;
  live

let reset () = List.iter (fun (_, _, c) -> Atomic.set c 0) (registered ())

(* --- snapshots --- *)

type snapshot = (string * kind * int) list

let snapshot () =
  List.map (fun (n, k, c) -> (n, k, Atomic.get c)) (registered ())
  |> List.sort compare

let diff ~before ~after =
  List.map
    (fun (n, k, v) ->
      match k with
      | Gauge -> (n, k, v)
      | Counter ->
        let v0 =
          match List.find_opt (fun (n0, _, _) -> n0 = n) before with
          | Some (_, _, v0) -> v0
          | None -> 0
        in
        (n, k, v - v0))
    after

let to_list s = List.map (fun (n, _, v) -> (n, v)) s

let find s name =
  match List.find_opt (fun (n, _, _) -> n = name) s with
  | Some (_, _, v) -> v
  | None -> 0

let dump () =
  List.filter (fun (_, v) -> v <> 0) (to_list (snapshot ()))

let pp ppf () =
  List.iter (fun (n, v) -> Format.fprintf ppf "%s = %d@." n v) (dump ())

let pp_prometheus ppf s =
  List.iter
    (fun (n, k, v) ->
      Format.fprintf ppf "# TYPE rgs_%s %s@." n
        (match k with Counter -> "counter" | Gauge -> "gauge");
      Format.fprintf ppf "rgs_%s %d@." n v)
    s

let pp_json ppf s =
  Format.fprintf ppf "{";
  List.iteri
    (fun i (n, k, v) ->
      Format.fprintf ppf "%s@\n  %S: {\"kind\": %S, \"value\": %d}"
        (if i = 0 then "" else ",")
        n
        (match k with Counter -> "counter" | Gauge -> "gauge")
        v)
    s;
  Format.fprintf ppf "@\n}@."

let write_stats ~path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      if Filename.check_suffix path ".json" then pp_json ppf s
      else pp_prometheus ppf s;
      Format.pp_print_flush ppf ())
