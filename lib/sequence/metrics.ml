type counter = int Atomic.t

let hit c = Atomic.incr c
let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c n)
let value = Atomic.get

let observe_max c v =
  let rec loop () =
    let cur = Atomic.get c in
    if v > cur && not (Atomic.compare_and_set c cur v) then loop ()
  in
  loop ()

let insgrow_calls = Atomic.make 0
let next_calls = Atomic.make 0
let cursor_advances = Atomic.make 0
let closure_bound_checks = Atomic.make 0
let closure_bound_rejects = Atomic.make 0
let closure_base_grows = Atomic.make 0
let closure_full_grows = Atomic.make 0
let peak_live_words = Atomic.make 0

let sample_live_words () =
  let live = (Gc.stat ()).Gc.live_words in
  observe_max peak_live_words live;
  live

let all =
  [
    ("insgrow_calls", insgrow_calls);
    ("next_calls", next_calls);
    ("cursor_advances", cursor_advances);
    ("closure_bound_checks", closure_bound_checks);
    ("closure_bound_rejects", closure_bound_rejects);
    ("closure_base_grows", closure_base_grows);
    ("closure_full_grows", closure_full_grows);
    ("peak_live_words", peak_live_words);
  ]

let reset () = List.iter (fun (_, c) -> Atomic.set c 0) all

let dump () =
  List.filter (fun (_, v) -> v <> 0) (List.map (fun (n, c) -> (n, Atomic.get c)) all)
  |> List.sort compare

let pp ppf () =
  List.iter (fun (n, v) -> Format.fprintf ppf "%s = %d@." n v) (dump ())
