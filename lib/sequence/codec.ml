type t = {
  by_name : (string, Event.t) Hashtbl.t;
  mutable names : string array; (* names.(id) = name, for id < next *)
  mutable next : int;
}

let create ?(capacity = 64) () =
  { by_name = Hashtbl.create capacity; names = Array.make (max capacity 1) ""; next = 0 }

let grow c =
  if c.next >= Array.length c.names then begin
    let bigger = Array.make (2 * Array.length c.names) "" in
    Array.blit c.names 0 bigger 0 c.next;
    c.names <- bigger
  end

let intern c name =
  match Hashtbl.find_opt c.by_name name with
  | Some id -> id
  | None ->
    let id = c.next in
    grow c;
    c.names.(id) <- name;
    c.next <- id + 1;
    Hashtbl.add c.by_name name id;
    id

let find c name = Hashtbl.find_opt c.by_name name

let name c e =
  if e < 0 || e >= c.next then
    invalid_arg (Printf.sprintf "Codec.name: unknown event id %d" e)
  else c.names.(e)

let name_opt c e = if e < 0 || e >= c.next then None else Some c.names.(e)
let size c = c.next

let of_names names =
  let c = create ~capacity:(List.length names + 1) () in
  List.iter (fun n -> ignore (intern c n)) names;
  c

let pp_event c ppf e =
  match name_opt c e with
  | Some n -> Format.pp_print_string ppf n
  | None -> Event.pp ppf e

let alphabet c = List.init c.next (fun i -> i)
