(** Reading and writing sequence databases.

    Three text formats are supported:

    - {b tokens}: one sequence per line, whitespace-separated event names.
      Empty lines and lines starting with ['#'] are skipped. Names are
      interned through a {!Codec.t}. Any token is a valid name, so this
      format has no malformed inputs.
    - {b chars}: one sequence per line as a string of letters ['A'..'Z']
      (paper-example style).
    - {b spmf}: the SPMF sequence format — integer events separated by [-1],
      each sequence terminated by [-2] (itemsets of size one).

    Malformed [chars]/[spmf] input raises {!Parse_error} carrying the
    1-based line number — or, with [~strict:false], the offending lines are
    skipped and counted: the [*_report] variants return the count, and
    every skip also bumps the {!Metrics.parse_errors_skipped} counter so
    non-strict loads stay observable ([--stats], daemon stats frames). *)

exception Parse_error of { line : int; msg : string }
(** A malformed input line. [line] is 1-based in the original text,
    counting blank and comment lines. *)

val parse_tokens : ?codec:Codec.t -> string -> Seqdb.t * Codec.t
(** Parses the [tokens] format from a string. Reuses [codec] when given.
    Never raises {!Parse_error}: every whitespace-separated token is a
    legal event name. *)

val parse_chars : ?strict:bool -> string -> Seqdb.t
(** Parses the [chars] format from a string.
    @raise Parse_error on characters outside ['A'..'Z'] when [strict]
    (default [true]); skips the malformed lines otherwise. *)

val parse_chars_report : ?strict:bool -> string -> Seqdb.t * int
(** As {!parse_chars}, also returning the number of skipped lines (always
    [0] when [strict]). *)

val parse_spmf : ?strict:bool -> string -> Seqdb.t
(** Parses the SPMF format from a string. Event ids are used directly.
    @raise Parse_error on a non-integer token, a negative event id other
    than [-1]/[-2], or trailing events without a [-2] terminator, when
    [strict] (default [true]). With [~strict:false] the offending line is
    skipped wholesale — including any half-built sequence it was extending
    — and counted. *)

val parse_spmf_report : ?strict:bool -> string -> Seqdb.t * int
(** As {!parse_spmf}, also returning the number of skipped lines. *)

val print_tokens : Codec.t -> Seqdb.t -> string
(** Inverse of {!parse_tokens}. *)

val print_spmf : Seqdb.t -> string
(** Inverse of {!parse_spmf}. *)

val load_tokens : ?codec:Codec.t -> string -> Seqdb.t * Codec.t
(** [load_tokens path] reads a [tokens]-format file. *)

val load_spmf : ?strict:bool -> string -> Seqdb.t
(** Reads an SPMF-format file. *)

val save_tokens : Codec.t -> Seqdb.t -> string -> unit
(** Writes a [tokens]-format file. *)

val save_spmf : Seqdb.t -> string -> unit
(** Writes an SPMF-format file. *)
