(** Reading and writing sequence databases.

    Three text formats are supported:

    - {b tokens}: one sequence per line, whitespace-separated event names.
      Empty lines and lines starting with ['#'] are skipped. Names are
      interned through a {!Codec.t}.
    - {b chars}: one sequence per line as a string of letters ['A'..'Z']
      (paper-example style).
    - {b spmf}: the SPMF sequence format — integer events separated by [-1],
      each sequence terminated by [-2] (itemsets of size one). *)

val parse_tokens : ?codec:Codec.t -> string -> Seqdb.t * Codec.t
(** Parses the [tokens] format from a string. Reuses [codec] when given. *)

val parse_chars : string -> Seqdb.t
(** Parses the [chars] format from a string. *)

val parse_spmf : string -> Seqdb.t
(** Parses the SPMF format from a string. Event ids are used directly.
    @raise Failure on malformed input. *)

val print_tokens : Codec.t -> Seqdb.t -> string
(** Inverse of {!parse_tokens}. *)

val print_spmf : Seqdb.t -> string
(** Inverse of {!parse_spmf}. *)

val load_tokens : ?codec:Codec.t -> string -> Seqdb.t * Codec.t
(** [load_tokens path] reads a [tokens]-format file. *)

val load_spmf : string -> Seqdb.t
(** Reads an SPMF-format file. *)

val save_tokens : Codec.t -> Seqdb.t -> string -> unit
(** Writes a [tokens]-format file. *)

val save_spmf : Seqdb.t -> string -> unit
(** Writes an SPMF-format file. *)
