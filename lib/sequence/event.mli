(** Events: the atomic symbols sequences are made of.

    An event is represented as a non-negative integer identifier. Human
    readable names are attached through a {!Codec.t}. The identifier
    representation keeps the mining inner loops allocation-free. *)

type t = int
(** An event identifier. Always [>= 0] for events produced by {!Codec}. *)

val compare : t -> t -> int
(** Total order on events (integer order). *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the raw identifier, [e<id>]. Use {!Codec.pp_event} for names. *)
