(** Structured tracing of mining runs: typed span/instant events in a
    preallocated ring buffer, exportable as Chrome [trace_event] JSON.

    A {!t} is a fixed-capacity ring of events stamped with monotonic
    nanosecond timestamps. Recording an event writes a handful of ints into
    preallocated arrays — no allocation, no I/O, no locks. A disabled trace
    ({!null}, or any kind above the configured {!level}) reduces every
    recording call to one load and one predictable branch, so the mining
    hot paths can call into this module unconditionally.

    Levels gate event volume: {!Roots} records only per-root DFS spans and
    coarse run milestones (worker lifecycle, budget stops, checkpoint
    writes); {!Nodes} additionally records one instant per DFS node,
    per-depth extension counts and closure/LBCheck outcomes. See
    [OBSERVABILITY.md] for every kind, its arguments and paper anchor.

    Domain-parallel runs record into per-domain child buffers
    ({!for_domain}) so workers never contend on a shared cursor; the
    children stay attached to their parent and every query/exporter
    ({!events}, {!counts}, {!pp_chrome}) reads the merged union, which is
    safe once the domains have been joined. *)

type level =
  | Off  (** record nothing; every call is a no-op *)
  | Roots  (** per-root spans + run milestones *)
  | Nodes  (** [Roots] plus per-DFS-node instants *)

(** Event kinds. The [Roots]-level kinds:

    - [Root]: span over one DFS root subtree; [a0] = root event id,
      [a1] = patterns emitted under that root.
    - [Worker]: span over one pool worker's lifetime; [a0] = worker slot,
      [a1] = roots claimed.
    - [Checkpoint_write]: span over one checkpoint save; [a0] = completed
      roots, [a1] = remaining roots.
    - [Budget_stop]: instant when a budget stops the search; [a0] =
      [Budget.severity]-style outcome code.
    - [Root_retry]: instant when a crashed root is retried sequentially;
      [a0] = root slot index.
    - [Quarantine]: instant when a root's retry also failed and the root
      was quarantined; [a0] = root slot index.
    - [Checkpoint_retry]: instant when a checkpoint write failed and was
      retried after a backoff; [a0] = attempt number (from 1), [a1] = 1
      when this failure exhausted the retries (the write was abandoned).
    - [Store_map]: instant per [.rgsdb] store opened (mapped); [a0] =
      mapped payload words, [a1] = open latency in microseconds.
    - [Store_crc]: instant per section CRC verification; [a0] = section
      tag (first byte of the FourCC), [a1] = 1 when the check passed,
      0 when it failed.
    - [Steal]: instant per successful work steal ([Parallel_miner]
      stealing mode); [a0] = thief worker slot, [a1] = victim worker
      slot. Attempts that found an empty deque or lost the ticket race
      only bump [Metrics.steal_attempts].
    - [Proc_worker]: span over one shard worker {e process} incarnation
      ([Supervisor]), from spawn to shutdown/failure; [a0] = shard
      index, [a1] = growth requests that incarnation served.

    The [Nodes]-level kinds:

    - [Node]: instant per DFS node; [a0] = depth (pattern length),
      [a1] = repetitive support.
    - [Extension]: instant per expanded node; [a0] = depth, [a1] = number
      of frequent extensions (those recursed into).
    - [Closure_check]: instant per closure check; [a0] = verdict (0
      closed, 1 non-closed, 2 LB-prunable), [a1] = depth.
    - [Lb_prune]: instant per subtree pruned by LBCheck (Theorem 5);
      [a0] = depth, [a1] = support.
    - [Query_cut]: instant per extension subtree cut by in-DFS query
      pruning; [a0] = depth, [a1] = reason (0 targeted unreachable,
      1 top-k floor).
    - [Shard_merge]: instant per sharded growth pass ([Shard_merge.grow]:
      per-shard INSgrow on slices, then [Support_set.combine]); [a0] =
      number of shards, [a1] = time spent combining in microseconds. *)
type kind =
  | Root
  | Worker
  | Checkpoint_write
  | Budget_stop
  | Root_retry
  | Quarantine
  | Checkpoint_retry
  | Node
  | Extension
  | Closure_check
  | Lb_prune
  | Query_cut
  | Store_map
  | Store_crc
  | Steal
  | Shard_merge
  | Proc_worker

type t

val null : t
(** The disabled trace (level {!Off}): never records, never allocates. *)

val create : ?capacity:int -> level:level -> unit -> t
(** A fresh trace. [capacity] (default [65536], rounded up to a power of
    two) bounds the events kept per buffer; once full, the ring keeps the
    newest events and {!dropped} counts the overwritten ones. [create
    ~level:Off ()] returns {!null}. *)

val level : t -> level

val roots_on : t -> bool
(** Whether [Roots]-level kinds are recorded. *)

val nodes_on : t -> bool
(** Whether [Nodes]-level kinds are recorded. Check this before computing
    expensive span arguments; the recording calls themselves are already
    no-ops when disabled. *)

val for_domain : t -> t
(** The calling domain's child buffer, created on first use (lock-free
    reads; creation retries a CAS). Pool workers record through this so
    domains never share a ring cursor. Returns [t] itself when tracing is
    off. Call it on the buffer handed to the run, not on another child. *)

val now : t -> int
(** Monotonic timestamp in nanoseconds ([0] when tracing is off) — capture
    before work that a {!span} will cover. Timestamps never decrease
    within a buffer. *)

val instant : t -> kind -> a0:int -> a1:int -> unit
(** Record an instant event (no duration); no-op when [kind]'s level is
    disabled. *)

val span : t -> kind -> a0:int -> a1:int -> start:int -> unit
(** Record a complete span from [start] (a {!now} reading) to the current
    time; no-op when [kind]'s level is disabled. *)

(** {1 Reading a trace}

    Readers merge the parent buffer with every per-domain child. They are
    meant for after the run (workers joined); they do not lock. *)

type event = {
  kind : kind;
  tid : int;  (** buffer id: 0 = parent, children numbered from 1 *)
  ts_ns : int;  (** nanoseconds since the trace was created *)
  dur_ns : int;  (** span duration; [0] for instants *)
  a0 : int;
  a1 : int;
}

val events : t -> event list
(** All retained events, oldest first (by [ts_ns]). *)

val counts : t -> (kind * int) list
(** Retained events per kind, only kinds that occurred. Counts equal the
    number of recording calls only while {!dropped} is [0]. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around, across all buffers. Each
    overwrite also bumps {!Metrics.trace_dropped_events}, so a lossy trace
    shows up in [--stats] output too. *)

val kind_name : kind -> string
(** Stable lowercase name used by the exporters (e.g. ["closure_check"]). *)

(** {1 Export} *)

val pp_chrome : Format.formatter -> t -> unit
(** Chrome [trace_event] JSON (the ["traceEvents"] object format):
    complete [ph:"X"] events for spans, [ph:"i"] for instants, plus
    process/thread-name metadata. Load in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. *)

val write_chrome : string -> t -> unit
(** Write {!pp_chrome} output to a file. *)
