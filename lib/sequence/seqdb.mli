(** Sequence databases.

    [SeqDB = {S1, S2, ..., SN}] (Section II). Sequence indices are {b 1-based}
    like in the paper: [seq db 1] is [S1]. *)

type t

val of_sequences : Sequence.t list -> t
val of_array : Sequence.t array -> t

val of_strings : string list -> t
(** Builds a database from letter strings via {!Sequence.of_string}. *)

val size : t -> int
(** [N], the number of sequences. *)

val seq : t -> int -> Sequence.t
(** [seq db i] is [S_i], 1-based.
    @raise Invalid_argument when [i] is out of [1..size db]. *)

val sequences : t -> Sequence.t array
(** The underlying sequences (fresh array, shared sequence values). *)

val total_length : t -> int
(** Sum of sequence lengths. *)

val max_length : t -> int
(** Length of the longest sequence; [0] when the database is empty. *)

val avg_length : t -> float

val alphabet : t -> Event.t list
(** Distinct events over the whole database, ascending. *)

val alphabet_size : t -> int

val dense_alphabet : t -> Alphabet.t
(** The dense event alphabet interned at build time: every distinct event
    mapped to a dense id in [0 .. alphabet_size - 1], in ascending event
    order. The columnar index layout ({!Inverted_index}) keys its
    per-sequence offset tables on these ids. *)

val event_count : t -> Event.t -> int
(** Total number of occurrences of an event across all sequences. This equals
    the repetitive support of the size-1 pattern made of that event. *)

val fold : ('a -> int -> Sequence.t -> 'a) -> 'a -> t -> 'a
(** Folds with 1-based sequence indices. *)

val iter : (int -> Sequence.t -> unit) -> t -> unit
(** Iterates with 1-based sequence indices. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

type stats = {
  num_sequences : int;
  num_events : int;  (** distinct events *)
  total_length : int;
  min_length : int;
  max_length : int;
  avg_length : float;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
