(** Sequence databases.

    [SeqDB = {S1, S2, ..., SN}] (Section II). Sequence indices are {b 1-based}
    like in the paper: [seq db 1] is [S1].

    A database is heap-backed (built from parsed text or a generator) or
    store-backed ({!of_store}): backed by read-only {!Ivec} sections
    mapped out of a [.rgsdb] file, with sequences materialised lazily on
    first access. Both answer every query below identically. *)

type t

val of_sequences : Sequence.t list -> t
val of_array : Sequence.t array -> t

val of_strings : string list -> t
(** Builds a database from letter strings via {!Sequence.of_string}. *)

val size : t -> int
(** [N], the number of sequences. *)

val seq : t -> int -> Sequence.t
(** [seq db i] is [S_i], 1-based.
    @raise Invalid_argument when [i] is out of [1..size db]. *)

val sequences : t -> Sequence.t array
(** The underlying sequences (fresh array, shared sequence values). *)

val total_length : t -> int
(** Sum of sequence lengths. *)

val max_length : t -> int
(** Length of the longest sequence; [0] when the database is empty. *)

val avg_length : t -> float

val alphabet : t -> Event.t list
(** Distinct events over the whole database, ascending. *)

val alphabet_size : t -> int

val dense_alphabet : t -> Alphabet.t
(** The dense event alphabet interned at build time: every distinct event
    mapped to a dense id in [0 .. alphabet_size - 1], in ascending event
    order. The columnar index layout ({!Inverted_index}) keys its
    per-sequence offset tables on these ids. *)

val event_count : t -> Event.t -> int
(** Total number of occurrences of an event across all sequences. This equals
    the repetitive support of the size-1 pattern made of that event. *)

val fold : ('a -> int -> Sequence.t -> 'a) -> 'a -> t -> 'a
(** Folds with 1-based sequence indices. *)

val iter : (int -> Sequence.t -> unit) -> t -> unit
(** Iterates with 1-based sequence indices. *)

val equal : t -> t -> bool
(** Content equality: same number of sequences, elementwise-equal
    sequences. When both sides are store-backed the sealed content
    digests are compared instead — O(1) and no sequence is forced. *)

val shard : t -> int -> (int * int) array
(** [shard db n] partitions the sequence range [1 .. size db] into at
    most [n] contiguous, non-empty, inclusive 1-based ranges
    [(lo, hi)], balanced by total event length (the proxy for
    per-shard mining cost). Deterministic greedy prefix walk: each
    shard closes once it reaches the remaining-length/remaining-shards
    target, so no shard is starved and the ranges cover the database
    exactly once in order. Shards are {e views} — nothing is copied;
    on a store-backed database the walk reads only the mapped offset
    table ({e no sequence is forced}). Returns fewer than [n] ranges
    when the database has fewer sequences, and [[||]] for an empty
    database. @raise Invalid_argument when [n < 1]. *)

val pp : Format.formatter -> t -> unit

(** {2 Store backing}

    The low-level bridge to the binary store (lib/store). [Store] maps a
    [.rgsdb] file and hands the typed sections to {!of_store}; everything
    above this line is backing-agnostic. *)

val of_store :
  alpha:Alphabet.t ->
  seq_offsets:Ivec.t ->
  events:Ivec.t ->
  csr_offsets:Ivec.t ->
  csr_pos:Ivec.t ->
  digest:string ->
  t
(** A store-backed database over mapped (or otherwise precomputed)
    sections: [seq_offsets] holds [N+1] nondecreasing offsets (starting
    at 0) into [events] and [csr_pos]; [csr_offsets] holds [N * (k+1)]
    per-sequence-relative CSR offsets for the [k]-event [alpha];
    [digest] is the hex MD5 of the canonical event stream sealed at pack
    time ({!content_digest}). Sequences materialise lazily and are cached
    (safe under parallel domains); {!Inverted_index.build} on the result
    slices the CSR sections zero-copy.
    @raise Invalid_argument when the section shapes disagree. *)

val is_mapped : t -> bool
(** [true] for {!of_store}-backed databases. *)

val mapped_csr : t -> (Ivec.t * Ivec.t) option
(** The precomputed CSR sections [(csr_offsets, csr_pos)] of a
    store-backed database, [None] for heap databases. Consumed by
    {!Inverted_index.build}. *)

val content_digest : t -> string
(** Hex MD5 of the canonical event stream (every event printed as
    ["%d "], every sequence terminated by ['\n'] — FORMAT.md §2.1).
    O(1) on store-backed databases (sealed at pack time), computed once
    and cached on heap databases. Checkpoint fingerprints build on this,
    so text-loaded and store-backed runs of the same corpus share
    checkpoints. *)

type stats = {
  num_sequences : int;
  num_events : int;  (** distinct events *)
  total_length : int;
  min_length : int;
  max_length : int;
  avg_length : float;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
