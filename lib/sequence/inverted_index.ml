type store =
  | Flat of int array (* positions, 1-based, ascending *)
  | Paged of Btree.t

type t = {
  db : Seqdb.t;
  per_seq : (Event.t, store) Hashtbl.t array;
  totals : (Event.t, int) Hashtbl.t;
  paged : bool;
}

let empty_positions : int array = [||]

(* One pass to size the position arrays, one to fill them. *)
let position_arrays db =
  let n = Seqdb.size db in
  let per_seq = Array.init n (fun _ -> Hashtbl.create 16) in
  let totals = Hashtbl.create 64 in
  Seqdb.iter
    (fun i s ->
      let counts = Hashtbl.create 16 in
      Sequence.iteri
        (fun _ e ->
          Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
        s;
      let tbl = per_seq.(i - 1) in
      Hashtbl.iter (fun e c -> Hashtbl.replace tbl e (Array.make c 0)) counts;
      let fill = Hashtbl.create 16 in
      Sequence.iteri
        (fun pos e ->
          let k = Option.value ~default:0 (Hashtbl.find_opt fill e) in
          (Hashtbl.find tbl e).(k) <- pos;
          Hashtbl.replace fill e (k + 1))
        s;
      Hashtbl.iter
        (fun e c ->
          Hashtbl.replace totals e (c + Option.value ~default:0 (Hashtbl.find_opt totals e)))
        counts)
    db;
  (per_seq, totals)

let build db =
  let arrays, totals = position_arrays db in
  let per_seq =
    Array.map
      (fun tbl ->
        let out = Hashtbl.create (Hashtbl.length tbl) in
        Hashtbl.iter (fun e a -> Hashtbl.add out e (Flat a)) tbl;
        out)
      arrays
  in
  { db; per_seq; totals; paged = false }

let build_paged ?fanout db =
  let arrays, totals = position_arrays db in
  let per_seq =
    Array.map
      (fun tbl ->
        let out = Hashtbl.create (Hashtbl.length tbl) in
        Hashtbl.iter (fun e a -> Hashtbl.add out e (Paged (Btree.of_sorted_array ?fanout a))) tbl;
        out)
      arrays
  in
  { db; per_seq; totals; paged = true }

let db t = t.db
let is_paged t = t.paged

let store t ~seq e =
  if seq < 1 || seq > Array.length t.per_seq then
    invalid_arg (Printf.sprintf "Inverted_index: bad sequence index %d" seq)
  else Hashtbl.find_opt t.per_seq.(seq - 1) e

let positions t ~seq e =
  match store t ~seq e with
  | None -> empty_positions
  | Some (Flat a) -> a
  | Some (Paged bt) -> Array.of_list (Btree.to_list bt)

(* Least index k with a.(k) > lowest, by binary search over the sorted
   positions; [Array.length a] when none. *)
let first_above a lowest =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) > lowest then hi := mid else lo := mid + 1
  done;
  !lo

let next t ~seq e ~lowest =
  match store t ~seq e with
  | None -> None
  | Some (Flat a) ->
    let k = first_above a lowest in
    if k >= Array.length a then None else Some a.(k)
  | Some (Paged bt) -> Btree.successor bt lowest

let count_between t ~seq e ~lo ~hi =
  if hi <= lo + 1 then 0
  else
    match store t ~seq e with
    | None -> 0
    | Some (Flat a) ->
      let first = first_above a lo in
      let beyond = first_above a (hi - 1) in
      beyond - first
    | Some (Paged bt) -> Btree.count_in bt ~lo ~hi

let occurrence_count t e = Option.value ~default:0 (Hashtbl.find_opt t.totals e)

let events t =
  List.sort Event.compare (Hashtbl.fold (fun e _ acc -> e :: acc) t.totals [])

let frequent_events t ~min_sup =
  List.filter (fun e -> occurrence_count t e >= min_sup) (events t)
