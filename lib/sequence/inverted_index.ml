(* Position/offset runs live in [Ivec] (Bigarray) buffers: identical code
   serves heap-allocated indexes and read-only sections mapped straight
   out of a [.rgsdb] store (see lib/store), so the zero-copy open path
   needs no backend of its own. *)
type csr = {
  offsets : Ivec.t; (* length alphabet+1, indexed by dense event id *)
  pos : Ivec.t; (* sequence positions, 1-based, grouped by dense id, each run ascending *)
}

type backend =
  | Csr of csr array
  | Legacy of (Event.t, Ivec.t) Hashtbl.t array
  | Paged of (Event.t, Btree.t) Hashtbl.t array

type kind = Kcsr | Klegacy | Kpaged

type t = {
  db : Seqdb.t;
  alpha : Alphabet.t;
  totals : int array; (* occurrences per dense event id, over the database *)
  backend : backend;
}

let empty_positions : int array = [||]

let totals_of_scan db alpha =
  let totals = Array.make (Alphabet.size alpha) 0 in
  Seqdb.iter
    (fun _ s ->
      Sequence.iteri
        (fun _ e ->
          let d = Alphabet.dense alpha e in
          totals.(d) <- totals.(d) + 1)
        s)
    db;
  totals

(* Per-event occurrence totals. A mapped database answers this from its
   CSR offsets alone — O(N * alphabet) loads over the mapped section, no
   sequence is materialised — so building an index on a store-backed
   Seqdb touches none of the event data. *)
let totals_of db alpha =
  match Seqdb.mapped_csr db with
  | Some (csr_offsets, _) ->
    let k = Alphabet.size alpha in
    let totals = Array.make k 0 in
    let n = Seqdb.size db in
    for i = 0 to n - 1 do
      let base = i * (k + 1) in
      for d = 0 to k - 1 do
        totals.(d) <-
          totals.(d)
          + Ivec.unsafe_get csr_offsets (base + d + 1)
          - Ivec.unsafe_get csr_offsets (base + d)
      done
    done;
    totals
  | None -> totals_of_scan db alpha

(* CSR construction: per sequence, one counting pass sizes the runs, a
   prefix sum turns counts into offsets, and one fill pass scatters the
   positions. Everything is a flat buffer; no per-event allocation. *)
let build_csr_scan db =
  let alpha = Seqdb.dense_alphabet db in
  let k = Alphabet.size alpha in
  let n = Seqdb.size db in
  let stores = Array.make n { offsets = Ivec.empty; pos = Ivec.empty } in
  Seqdb.iter
    (fun i s ->
      let offsets = Ivec.create (k + 1) in
      Bigarray.Array1.fill offsets 0;
      Sequence.iteri
        (fun _ e ->
          let d = Alphabet.dense alpha e in
          Ivec.set offsets (d + 1) (Ivec.get offsets (d + 1) + 1))
        s;
      for d = 1 to k do
        Ivec.set offsets d (Ivec.get offsets d + Ivec.get offsets (d - 1))
      done;
      let pos = Ivec.create (Sequence.length s) in
      let fill = Ivec.sub_array offsets ~pos:0 ~len:k in
      Sequence.iteri
        (fun p e ->
          let d = Alphabet.dense alpha e in
          Ivec.set pos fill.(d) p;
          fill.(d) <- fill.(d) + 1)
        s;
      stores.(i - 1) <- { offsets; pos })
    db;
  { db; alpha; totals = totals_of db alpha; backend = Csr stores }

(* Store-backed construction: the CSR runs were precomputed at pack time
   and mapped read-only ([Seqdb.mapped_csr]); per sequence the backend
   just slices the shared sections — slices alias the mapping, so the
   build costs O(N) slice descriptors and reads no event data at all.
   The offsets in a CSOF section are relative to the sequence's own
   positions run (FORMAT.md §2.4), exactly the invariant [csr_slice]
   expects. *)
let build_csr_mapped db ~csr_offsets ~csr_pos =
  let alpha = Seqdb.dense_alphabet db in
  let k = Alphabet.size alpha in
  let n = Seqdb.size db in
  let pos_base = ref 0 in
  let stores =
    Array.init n (fun i ->
        let offsets = Ivec.sub csr_offsets ~pos:(i * (k + 1)) ~len:(k + 1) in
        let len = Ivec.get offsets k in
        let pos = Ivec.sub csr_pos ~pos:!pos_base ~len in
        pos_base := !pos_base + len;
        { offsets; pos })
  in
  { db; alpha; totals = totals_of db alpha; backend = Csr stores }

let build db =
  match Seqdb.mapped_csr db with
  | Some (csr_offsets, csr_pos) -> build_csr_mapped db ~csr_offsets ~csr_pos
  | None -> build_csr_scan db

(* The seed layout: per-sequence hashtables of flat position arrays. Kept
   as a backend so benches can measure the columnar layout against it and
   the differential suite can cross-check all backends. *)
let position_arrays db =
  let n = Seqdb.size db in
  let per_seq = Array.init n (fun _ -> Hashtbl.create 16) in
  Seqdb.iter
    (fun i s ->
      let counts = Hashtbl.create 16 in
      Sequence.iteri
        (fun _ e ->
          Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
        s;
      let tbl = per_seq.(i - 1) in
      Hashtbl.iter (fun e c -> Hashtbl.replace tbl e (Array.make c 0)) counts;
      let fill = Hashtbl.create 16 in
      Sequence.iteri
        (fun pos e ->
          let k = Option.value ~default:0 (Hashtbl.find_opt fill e) in
          (Hashtbl.find tbl e).(k) <- pos;
          Hashtbl.replace fill e (k + 1))
        s)
    db;
  per_seq

let build_legacy db =
  let alpha = Seqdb.dense_alphabet db in
  let per_seq =
    Array.map
      (fun tbl ->
        let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
        Hashtbl.iter (fun e a -> Hashtbl.add out e (Ivec.of_array a)) tbl;
        out)
      (position_arrays db)
  in
  { db; alpha; totals = totals_of db alpha; backend = Legacy per_seq }

let build_paged ?fanout db =
  let alpha = Seqdb.dense_alphabet db in
  let per_seq =
    Array.map
      (fun tbl ->
        let out = Hashtbl.create (Hashtbl.length tbl) in
        Hashtbl.iter (fun e a -> Hashtbl.add out e (Btree.of_sorted_array ?fanout a)) tbl;
        out)
      (position_arrays db)
  in
  { db; alpha; totals = totals_of db alpha; backend = Paged per_seq }

let build_kind ?fanout kind db =
  match kind with
  | Kcsr -> build db
  | Klegacy -> build_legacy db
  | Kpaged -> build_paged ?fanout db

let db t = t.db

let kind t =
  match t.backend with Csr _ -> Kcsr | Legacy _ -> Klegacy | Paged _ -> Kpaged

let kind_name = function Kcsr -> "csr" | Klegacy -> "legacy" | Kpaged -> "paged"
let backend_name t = kind_name (kind t)
let is_paged t = match t.backend with Paged _ -> true | _ -> false

let check_seq t seq =
  if seq < 1 || seq > Seqdb.size t.db then
    invalid_arg (Printf.sprintf "Inverted_index: bad sequence index %d" seq)

(* CSR slice of event [e] in sequence [seq]: [lo] inclusive, [hi] exclusive
   into [store.pos]; the empty slice (0, 0) when [e] does not occur. *)
let csr_slice t (stores : csr array) ~seq e =
  let d = Alphabet.dense t.alpha e in
  if d < 0 then (Ivec.empty, 0, 0)
  else begin
    let store = stores.(seq - 1) in
    (store.pos, Ivec.get store.offsets d, Ivec.get store.offsets (d + 1))
  end

let positions t ~seq e =
  check_seq t seq;
  match t.backend with
  | Csr stores ->
    let pos, lo, hi = csr_slice t stores ~seq e in
    Ivec.sub_array pos ~pos:lo ~len:(hi - lo)
  | Legacy per_seq -> (
    match Hashtbl.find_opt per_seq.(seq - 1) e with
    | None -> empty_positions
    | Some v -> Ivec.to_array v)
  | Paged per_seq -> (
    match Hashtbl.find_opt per_seq.(seq - 1) e with
    | None -> empty_positions
    | Some bt -> Btree.to_array bt)

(* Least index k in [lo, hi) with a.(k) > lowest, by binary search over the
   sorted slice; [hi] when none. *)
let first_above (a : Ivec.t) ~lo ~hi lowest =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Ivec.unsafe_get a mid > lowest then hi := mid else lo := mid + 1
  done;
  !lo

(* Core of [next], uncounted and option-free: -1 when no position
   qualifies. The counted [next] and the cursors (which batch their own
   counts) both route here. *)
let next_pos t ~seq e ~lowest =
  match t.backend with
  | Csr stores ->
    let pos, lo, hi = csr_slice t stores ~seq e in
    let k = first_above pos ~lo ~hi lowest in
    if k >= hi then -1 else Ivec.get pos k
  | Legacy per_seq -> (
    match Hashtbl.find_opt per_seq.(seq - 1) e with
    | None -> -1
    | Some a ->
      let n = Ivec.length a in
      let k = first_above a ~lo:0 ~hi:n lowest in
      if k >= n then -1 else Ivec.get a k)
  | Paged per_seq -> (
    match Hashtbl.find_opt per_seq.(seq - 1) e with
    | None -> -1
    | Some bt -> ( match Btree.successor bt lowest with None -> -1 | Some p -> p))

let next t ~seq e ~lowest =
  check_seq t seq;
  Metrics.hit Metrics.next_calls;
  let p = next_pos t ~seq e ~lowest in
  if p < 0 then None else Some p

let count_between t ~seq e ~lo ~hi =
  check_seq t seq;
  if hi <= lo + 1 then 0
  else
    match t.backend with
    | Csr stores ->
      let pos, slo, shi = csr_slice t stores ~seq e in
      let first = first_above pos ~lo:slo ~hi:shi lo in
      let beyond = first_above pos ~lo:slo ~hi:shi (hi - 1) in
      beyond - first
    | Legacy per_seq -> (
      match Hashtbl.find_opt per_seq.(seq - 1) e with
      | None -> 0
      | Some a ->
        let n = Ivec.length a in
        let first = first_above a ~lo:0 ~hi:n lo in
        let beyond = first_above a ~lo:0 ~hi:n (hi - 1) in
        beyond - first)
    | Paged per_seq -> (
      match Hashtbl.find_opt per_seq.(seq - 1) e with
      | None -> 0
      | Some bt -> Btree.count_in bt ~lo ~hi)

(* --- cursors --- *)

(* Where a window cursor's flat position slice comes from — consulted by
   [reseat] to re-point the window at another sequence's list. The CSR and
   legacy backends share the whole seek machinery; only the slice lookup
   differs (offset arithmetic vs one hashtable probe per sequence). *)
type window_source =
  | Wcsr of { stores : csr array; d : int (* -1 when absent from the db *) }
  | Wlegacy of { lper : (Event.t, Ivec.t) Hashtbl.t array; le : Event.t }

type window_cursor = {
  src : window_source;
  mutable spos : Ivec.t;
  mutable shi : int;
  mutable sk : int; (* next candidate index; positions below sk are spent *)
  mutable seeks : int;
  mutable advanced : int;
  mutable gallops : int;
}

type paged_cursor = {
  pper : (Event.t, Btree.t) Hashtbl.t array;
  pe : Event.t;
  pbc : Btree.cursor; (* re-pointed per sequence; parked on [empty_btree]
                         when the event is absent *)
  mutable pseeks : int;
}

type cursor =
  | Cwindow of window_cursor
  | Cpaged of paged_cursor

let empty_btree = lazy (Btree.of_sorted_array [||])

let set_window c ~seq =
  match c.src with
  | Wcsr { stores; d } ->
    if d >= 0 then begin
      let store = stores.(seq - 1) in
      c.spos <- store.pos;
      c.shi <- Ivec.get store.offsets (d + 1);
      c.sk <- Ivec.get store.offsets d
    end
  | Wlegacy { lper; le } -> (
    match Hashtbl.find_opt lper.(seq - 1) le with
    | Some a ->
      c.spos <- a;
      c.shi <- Ivec.length a;
      c.sk <- 0
    | None ->
      c.spos <- Ivec.empty;
      c.shi <- 0;
      c.sk <- 0)

let window src =
  { src; spos = Ivec.empty; shi = 0; sk = 0; seeks = 0; advanced = 0;
    gallops = 0 }

let cursor t ~seq e =
  check_seq t seq;
  match t.backend with
  | Csr stores ->
    let c = window (Wcsr { stores; d = Alphabet.dense t.alpha e }) in
    set_window c ~seq;
    Cwindow c
  | Legacy per_seq ->
    let c = window (Wlegacy { lper = per_seq; le = e }) in
    set_window c ~seq;
    Cwindow c
  | Paged per_seq ->
    let bt =
      match Hashtbl.find_opt per_seq.(seq - 1) e with
      | Some bt -> bt
      | None -> Lazy.force empty_btree
    in
    Cpaged { pper = per_seq; pe = e; pbc = Btree.cursor bt; pseeks = 0 }

(* Re-point a cursor at another sequence's position list for the same
   event, keeping the locally batched counts. Lets a whole INSgrow pass
   over a support set use a single cursor allocation and a single metrics
   flush. *)
let reseat c ~seq =
  match c with
  | Cwindow c -> set_window c ~seq
  | Cpaged c ->
    Btree.cursor_reset c.pbc
      (match Hashtbl.find_opt c.pper.(seq - 1) c.pe with
      | Some bt -> bt
      | None -> Lazy.force empty_btree)

(* How many positions past the frontier a seek probes linearly before
   switching to galloping. Short hops dominate INSgrow passes (the next
   qualifying occurrence is usually a step or two away), so a handful of
   straight-line probes beats starting a doubling search every time. The
   threshold is shared with the paged B+-tree cursor and overridable via
   RGS_GALLOP_PROBE (see Tuning). *)
let linear_probe_limit () = Tuning.gallop_probe_limit ()

(* Hot cursor entry on the flat-array backends: -1 when no position
   qualifies. [lowest] must be nondecreasing across calls (the cursor never
   revisits an index below [sk]). Counts are batched in the cursor and
   flushed by [cursor_finish] so the per-seek cost carries no atomic
   operation: [advanced] counts spent positions stepped over linearly,
   [gallops] counts doubling probes and bisection halvings — so a long hop
   over a run of [n] spent positions costs [linear_probe_limit] advances
   plus O(log n) gallops instead of [n] linear steps. *)
let window_seek c ~lowest =
  c.seeks <- c.seeks + 1;
  let pos = c.spos and hi = c.shi in
  let k = c.sk in
  if k >= hi then -1
  else if Ivec.unsafe_get pos k > lowest then Ivec.unsafe_get pos k
  else begin
    (* linear fast path: the frontier is spent; probe the next few slots *)
    let probe_limit = linear_probe_limit () in
    let j = ref (k + 1) in
    let lin = ref 0 in
    while !lin < probe_limit && !j < hi && Ivec.unsafe_get pos !j <= lowest do
      incr lin;
      incr j
    done;
    c.advanced <- c.advanced + !lin;
    let j =
      if !j >= hi || Ivec.unsafe_get pos !j > lowest then !j
      else begin
        (* gallop: pos.(!j) is still spent; double the step until a probe
           exceeds [lowest] (or the window ends), then bisect the last
           bracket. O(log hop) total, and over a monotone pass the cursor
           never revisits an index, hence O(occurrences) amortized. *)
        let base = !j in
        let g = ref 0 in
        let step = ref 1 in
        let prev = ref base in
        let probe = ref (base + 1) in
        let bracketed = ref false in
        while (not !bracketed) && !probe < hi do
          incr g;
          if Ivec.unsafe_get pos !probe <= lowest then begin
            prev := !probe;
            step := !step * 2;
            probe := base + !step
          end
          else bracketed := true
        done;
        let lo = ref (!prev + 1) and bhi = ref (min !probe hi) in
        while !lo < !bhi do
          incr g;
          let mid = (!lo + !bhi) / 2 in
          if Ivec.unsafe_get pos mid > lowest then bhi := mid else lo := mid + 1
        done;
        c.gallops <- c.gallops + !g;
        !lo
      end
    in
    c.sk <- j;
    if j >= hi then -1 else Ivec.unsafe_get pos j
  end

let seek_pos c ~lowest =
  match c with
  | Cwindow c -> window_seek c ~lowest
  | Cpaged c ->
    c.pseeks <- c.pseeks + 1;
    Btree.cursor_seek c.pbc ~lowest

let seek c ~lowest =
  let p = seek_pos c ~lowest in
  if p < 0 then None else Some p

let cursor_finish c =
  match c with
  | Cwindow c ->
    Metrics.add Metrics.next_calls c.seeks;
    Metrics.add Metrics.cursor_advances c.advanced;
    Metrics.add Metrics.cursor_gallops c.gallops;
    c.seeks <- 0;
    c.advanced <- 0;
    c.gallops <- 0
  | Cpaged c ->
    Metrics.add Metrics.next_calls c.pseeks;
    let adv, gal = Btree.cursor_drain_counts c.pbc in
    Metrics.add Metrics.cursor_advances adv;
    Metrics.add Metrics.cursor_gallops gal;
    c.pseeks <- 0

let occurrence_count t e =
  let d = Alphabet.dense t.alpha e in
  if d < 0 then 0 else t.totals.(d)

let events t = Array.to_list (Alphabet.events t.alpha)

let frequent_events t ~min_sup =
  List.filter (fun e -> occurrence_count t e >= min_sup) (events t)
