(** Lightweight global counters for observing the mining hot paths.

    Counters are atomic so they stay accurate under domain-parallel mining;
    they cost one atomic operation when hit. The index/cursor hot path
    ({!Inverted_index.seek}) batches its counts locally and flushes them
    once per group ({!Inverted_index.cursor_finish}) so parallel mining
    does not contend on a shared cache line per extension. Benches and
    tests use the counters to explain where time goes. *)

type counter = int Atomic.t

val hit : counter -> unit
(** Increment (atomic). *)

val add : counter -> int -> unit
(** Add [n] (atomic); no-op when [n = 0]. *)

val value : counter -> int
(** Current reading. *)

val observe_max : counter -> int -> unit
(** Raise the counter to [v] if [v] exceeds its current value (atomic
    max — used for peak gauges such as {!peak_live_words}). *)

val sample_live_words : unit -> int
(** Sample the GC's live heap words ([Gc.stat], which walks the major
    heap — call between runs, not inside hot loops), fold the sample into
    {!peak_live_words}, and return it. *)

val reset : unit -> unit
(** Zero every counter. *)

val dump : unit -> (string * int) list
(** Current [(name, value)] pairs, name-sorted, zeros omitted. *)

val pp : Format.formatter -> unit -> unit

(** The counters themselves (bumped by library code): *)

val insgrow_calls : counter
(** Compressed instance-growth invocations (Support_set.grow). *)

val next_calls : counter
(** [next]-subroutine evaluations: direct {!Inverted_index.next} calls plus
    cursor {!Inverted_index.seek}s. *)

val cursor_advances : counter
(** Total positions a CSR cursor stepped over while seeking — the
    amortized-O(occurrences) work of a whole-sequence INSgrow pass. *)

val closure_bound_checks : counter
(** Pre-filter evaluations in Closure.check. *)

val closure_bound_rejects : counter
(** Candidate extensions the pre-filter proved hopeless (no growth run). *)

val closure_base_grows : counter
(** Extension candidates that survived the filter and grew their base. *)

val closure_full_grows : counter
(** Extensions grown to completion (equal support found). *)

val peak_live_words : counter
(** Peak GC live words observed via {!sample_live_words} (max gauge). *)
