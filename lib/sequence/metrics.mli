(** Registry of named global counters and gauges for the mining hot paths.

    Counters are atomic so they stay accurate under domain-parallel mining;
    they cost one atomic operation when hit. The index/cursor hot path
    ({!Inverted_index.seek}) batches its counts locally and flushes them
    once per group ({!Inverted_index.cursor_finish}) so parallel mining
    does not contend on a shared cache line per extension; the miners batch
    their per-run totals ([dfs_nodes], [lb_prunes], ...) the same way.

    Every counter lives in a registry with a stable name and a {!kind};
    {!snapshot} captures all of them at once and {!diff} subtracts two
    snapshots, which is how a caller attributes work to one run without
    resetting global state. {!pp_prometheus} and {!pp_json} render a
    snapshot for operators ([rgsminer --stats]); OBSERVABILITY.md documents
    each metric, its unit and its paper anchor. *)

type counter = int Atomic.t

type kind =
  | Counter  (** monotonically increasing count; {!diff} subtracts *)
  | Gauge  (** sampled level (e.g. a peak); {!diff} keeps the newer value *)

val register : string -> kind -> counter
(** Add a named metric to the registry and return its cell. Thread-safe.
    Raises [Invalid_argument] on a duplicate name. *)

val hit : counter -> unit
(** Increment (atomic). *)

val add : counter -> int -> unit
(** Add [n] (atomic); no-op when [n = 0]. *)

val value : counter -> int
(** Current reading. *)

val observe_max : counter -> int -> unit
(** Raise the counter to [v] if [v] exceeds its current value (atomic
    max — used for peak gauges such as {!peak_live_words}). *)

val sample_live_words : unit -> int
(** Sample the GC's live heap words, fold the sample into
    {!peak_live_words}, and return it. Runs [Gc.full_major] first so the
    reading counts reachable words only (not floating garbage) and is
    reproducible — call between runs or at worker exit, never inside hot
    loops. *)

val reset : unit -> unit
(** Zero every registered metric. *)

val dump : unit -> (string * int) list
(** Current [(name, value)] pairs, name-sorted, zeros omitted. *)

val pp : Format.formatter -> unit -> unit

(** {1 Snapshots} *)

type snapshot = (string * kind * int) list
(** A point-in-time reading of every registered metric, name-sorted. *)

val snapshot : unit -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-metric change between two snapshots: counters subtract ([after] -
    [before]), gauges keep the [after] value. Metrics registered after
    [before] was taken count from zero. *)

val to_list : snapshot -> (string * int) list
val find : snapshot -> string -> int
(** Value of a named metric in a snapshot; [0] when absent. *)

val pp_prometheus : Format.formatter -> snapshot -> unit
(** Prometheus text exposition format, each metric prefixed [rgs_] with a
    [# TYPE] line. *)

val pp_json : Format.formatter -> snapshot -> unit
(** Flat JSON object: [{"name": {"kind": ..., "value": ...}, ...}]. *)

val write_stats : path:string -> snapshot -> unit
(** Write a snapshot to [path]: {!pp_json} when the path ends in [.json],
    {!pp_prometheus} otherwise. *)

(** {1 The metrics themselves} (bumped by library code): *)

val insgrow_calls : counter
(** Compressed instance-growth invocations (Support_set.grow), i.e. runs
    of Algorithm 2 (INSgrow). *)

val full_insgrow_calls : counter
(** Uncompressed (full-landmark) instance-growth passes
    ([Insgrow.run_full]), used when reconstructing landmarks. *)

val next_calls : counter
(** [next]-subroutine evaluations: direct {!Inverted_index.next} calls plus
    cursor {!Inverted_index.seek}s (Sec III-D inverted-index lookups). *)

val cursor_advances : counter
(** Spent positions an index cursor stepped over {e linearly} while
    seeking (the short-hop fast path, at most a few per seek). Before the
    galloping seek this counted every position consumed; now long hops are
    resolved by doubling probes counted in {!cursor_gallops} instead, so
    [cursor_advances + cursor_gallops] is the total per-seek work beyond
    the O(1) frontier check. *)

val cursor_gallops : counter
(** Galloping work while seeking: doubling probes and bisection halvings
    (flat-array cursors), plus B+-tree descent levels (paged cursors).
    Each unit is one position comparison, O(log hop) per long hop. *)

val dfs_nodes : counter
(** Pattern-tree nodes visited by GSgrow/CloGSgrow/gap-constrained DFS
    (batched per run). *)

val patterns_emitted : counter
(** Patterns reported to the caller (frequent for GSgrow, closed for
    CloGSgrow; batched per run). *)

val lb_prunes : counter
(** DFS subtrees pruned by LBCheck, Theorem 5 (batched per run). *)

val closure_bound_checks : counter
(** Pre-filter evaluations in Closure.check. *)

val closure_bound_rejects : counter
(** Candidate extensions the pre-filter proved hopeless (no growth run). *)

val closure_base_grows : counter
(** Extension candidates that survived the filter and grew their base. *)

val closure_full_grows : counter
(** Extensions grown to completion (equal support found). *)

val budget_stops : counter
(** Times a budget ([Budget] deadline / node / memory limit, or a
    [max_patterns] cap) stopped a search early. *)

val checkpoint_writes : counter
(** Checkpoint records physically written ([Checkpoint.Writer] header
    rewrites and record appends that reached the disk). *)

val checkpoint_io_retries : counter
(** Checkpoint writes that failed (ENOSPC, EIO, an injected
    [Checkpoint_io] fault) and were retried after a backoff. *)

val checkpoint_io_failures : counter
(** Checkpoint writes abandoned after exhausting their retries; the run
    keeps mining, but the affected roots are not durable until a later
    write succeeds. *)

val checkpoint_salvaged_roots : counter
(** Intact root records recovered by [Checkpoint.load] from a truncated or
    torn checkpoint file (only bumped when trailing bytes were dropped). *)

val pool_workers : counter
(** Pool worker bodies started by [Parallel_miner.run_pool] (one per
    domain per pool run, including the main domain's). *)

val root_retries : counter
(** Crashed DFS roots retried sequentially after a pool run. *)

val quarantined_roots : counter
(** Roots whose sequential retry also failed and were quarantined
    ([Parallel_miner.retry_failed]); a resumed run skips them. *)

val trace_dropped_events : counter
(** Trace-ring events overwritten by wrap-around ([Trace] ring full) —
    non-zero means the written trace is lossy; raise the ring capacity
    ([rgsminer --trace-ring]). *)

val parse_errors_skipped : counter
(** Malformed input lines dropped by {!Seq_io} in non-strict mode
    ([~strict:false]); each skipped line counts once. Non-zero means the
    loaded database silently misses sequences — check the input file. *)

val query_targeted_cuts : counter
(** DFS subtrees cut by targeted-query reachability (the remaining query
    suffix cannot fit in the remaining length budget, or a query event is
    infrequent); batched per run. Each cut skips a whole extension
    subtree without growing it. *)

val query_floor_prunes : counter
(** Extensions pruned because their support fell below the {e rising}
    top-k floor (above the static [min_sup] Apriori bound); batched per
    run. Zero outside top-k queries. *)

val query_topk_floor : counter
(** Final support floor a top-k query converged to (max gauge): the
    smallest support in the answer heap once it filled, [0] when the heap
    never filled. *)

val query_delta_reps : counter
(** Representatives selected by the δ-cover compression pass (max gauge;
    set once per [Compress.delta_cover] call). *)

val query_delta_covered : counter
(** Patterns absorbed into a δ-cover representative (not emitted
    themselves). *)

val peak_live_words : counter
(** Peak GC live words observed via {!sample_live_words} (max gauge;
    sampled per domain at pool-worker exit and by benches between runs). *)

val store_opens : counter
(** [.rgsdb] stores opened (mapped) this process. *)

val store_open_ns : counter
(** Total wall time spent in store opens, in nanoseconds: mapping the
    sections, validating the header and section table, rebuilding the
    alphabet. Divide by {!store_opens} for the mean open latency. *)

val store_mapped_words : counter
(** Words of [.rgsdb] section payloads currently mapped read-only (max
    gauge over opens). Mapped words live outside the OCaml heap: they are
    shared between pool domains and processes, and are {e not} counted by
    {!peak_live_words} or the [--max-words] budget. *)

val store_resident_words : counter
(** Heap words copied out of a mapped store on demand (sequences
    materialised for closure checks and printing). The resident/mapped
    ratio is the fraction of the corpus a run actually touched. *)

val store_crc_checks : counter
(** Section payload CRC verifications performed ([Store.verify], and every
    open of the header + section table). *)

val store_crc_failures : counter
(** Section CRC verifications that failed. Always paired with a raised
    [Store.Invalid_store]; non-zero means on-disk corruption. *)

val steal_attempts : counter
(** Steal operations issued by idle pool workers against peers' deques
    ([Parallel_miner] stealing mode), including ones that found the deque
    empty or lost the CAS race. *)

val steal_successes : counter
(** Steals that won their ticket CAS and carried a DFS subtree to another
    worker. [steal_successes / steal_attempts] is the contention-adjusted
    steal hit rate; zero on a balanced workload means LPT alone kept every
    worker busy. *)

val shard_merge_ns : counter
(** Total wall time spent in [Shard_merge.grow] combining per-shard
    support sets ([Support_set.combine]), in nanoseconds — the overhead
    sharding adds on top of the per-shard INSgrow passes. *)

val deque_max_depth : counter
(** Deepest any worker's steal deque grew during a stealing pool run (max
    gauge): the high-water mark of deferred DFS subtrees awaiting an
    owner pop or a steal. *)

val worker_spawns : counter
(** Shard worker processes spawned by [Supervisor] (first launches and
    restarts alike — each [fork]+[exec] counts once). *)

val worker_restarts : counter
(** Worker incarnations torn down after a detected failure (exit/signal,
    liveness timeout, or corrupt reply frame) whose shard the supervisor
    then re-spawned or quarantined. [worker_spawns - worker_restarts] is
    the number of first launches when no spawn itself failed. *)

val worker_heartbeats_missed : counter
(** Times a worker's reply socket stayed silent past the liveness
    deadline (no heartbeat or reply frame within
    [Supervisor.config.liveness_timeout_s]); each miss triggers the
    restart path. *)

val shard_quarantines : counter
(** Shards whose worker exhausted its per-shard restart budget; the
    supervisor stops re-spawning them and computes those shards
    in-process, so output is unchanged. *)

val supervisor_degraded : counter
(** Gauge, [1] once a supervisor has fallen back to fully in-process
    sharded mining — worker spawning unavailable (no worker executable,
    store packing failed) or the global flap budget was exhausted. The
    run completes with byte-identical output either way. *)
