type node =
  | Leaf of int array (* sorted keys *)
  | Node of {
      seps : int array; (* seps.(i) = max key under children.(i) *)
      children : node array;
      prefix_sizes : int array;
          (* prefix_sizes.(i) = total keys in children.(0..i-1) *)
      total : int; (* total keys in this subtree *)
    }

type t = { root : node; size : int }

let check_sorted keys =
  for i = 1 to Array.length keys - 1 do
    if keys.(i - 1) >= keys.(i) then
      invalid_arg "Btree.of_sorted_array: keys must be strictly increasing"
  done

(* Split [items] into chunks of at most [fanout], as evenly as possible. *)
let chunk fanout items =
  let n = Array.length items in
  let num_chunks = (n + fanout - 1) / fanout in
  let base = n / num_chunks and extra = n mod num_chunks in
  let chunks = Array.make num_chunks [||] in
  let pos = ref 0 in
  for c = 0 to num_chunks - 1 do
    let size = base + if c < extra then 1 else 0 in
    chunks.(c) <- Array.sub items !pos size;
    pos := !pos + size
  done;
  chunks

let max_key_of_node = function
  | Leaf keys -> keys.(Array.length keys - 1)
  | Node { seps; _ } -> seps.(Array.length seps - 1)

let size_of_node = function
  | Leaf keys -> Array.length keys
  | Node { total; _ } -> total

let make_node children =
  let k = Array.length children in
  let prefix_sizes = Array.make k 0 in
  for i = 1 to k - 1 do
    prefix_sizes.(i) <- prefix_sizes.(i - 1) + size_of_node children.(i - 1)
  done;
  let total = prefix_sizes.(k - 1) + size_of_node children.(k - 1) in
  Node { seps = Array.map max_key_of_node children; children; prefix_sizes; total }

let of_sorted_array ?(fanout = 16) keys =
  if fanout < 2 then invalid_arg "Btree.of_sorted_array: fanout < 2";
  check_sorted keys;
  if Array.length keys = 0 then { root = Leaf [||]; size = 0 }
  else begin
    let rec build level =
      if Array.length level <= 1 then level.(0)
      else build (Array.map make_node (chunk fanout level))
    in
    let leaves = Array.map (fun ks -> Leaf ks) (chunk fanout keys) in
    { root = build leaves; size = Array.length keys }
  end

let length t = t.size

(* Least index i with a.(i) > k, by binary search. *)
let first_above a k =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) > k then hi := mid else lo := mid + 1
  done;
  !lo

let successor t k =
  let rec descend = function
    | Leaf keys ->
      let i = first_above keys k in
      if i >= Array.length keys then None else Some keys.(i)
    | Node { seps; children; _ } ->
      let i = first_above seps k in
      if i >= Array.length children then None else descend children.(i)
  in
  descend t.root

(* rank t k = number of keys <= k, one root-to-leaf path. *)
let rank t k =
  let rec descend acc = function
    | Leaf keys -> acc + first_above keys k
    | Node { seps; children; prefix_sizes; total } ->
      let i = first_above seps k in
      if i >= Array.length children then acc + total
      else descend (acc + prefix_sizes.(i)) children.(i)
  in
  descend 0 t.root

let count_in t ~lo ~hi = if hi <= lo + 1 then 0 else max 0 (rank t (hi - 1) - rank t lo)
let mem t k = match successor t (k - 1) with Some k' -> k' = k | None -> false

let to_list t =
  let rec collect acc = function
    | Leaf keys -> List.rev_append (Array.to_list keys) acc
    | Node { children; _ } -> Array.fold_left collect acc children
  in
  List.rev (collect [] t.root)

let to_array t =
  let out = Array.make t.size 0 in
  let k = ref 0 in
  let rec fill = function
    | Leaf keys ->
      Array.blit keys 0 out !k (Array.length keys);
      k := !k + Array.length keys
    | Node { children; _ } -> Array.iter fill children
  in
  fill t.root;
  out

let depth t =
  let rec go = function
    | Leaf _ -> 1
    | Node { children; _ } -> 1 + go children.(0)
  in
  go t.root

(* --- monotone cursor ---

   A finger into the tree for monotone successor streams: the cursor
   remembers the leaf the previous answer came from and its index inside
   it, so a seek whose answer lies in the same leaf costs a few array
   probes instead of a root-to-leaf descent. Work is counted into
   [advanced] (linear probes over spent keys) and [gallops] (in-leaf
   bisection halvings plus descent levels) so callers can attribute
   seek cost exactly like the flat-array cursors do. *)

type cursor = {
  mutable ctree : t;
  mutable cleaf : int array; (* keys of the current leaf; [||] before first descent *)
  mutable ci : int; (* next candidate index in cleaf *)
  mutable exhausted : bool; (* no key of the tree exceeds the last lowest *)
  mutable advanced : int;
  mutable gallops : int;
}

let cursor t =
  { ctree = t; cleaf = [||]; ci = 0; exhausted = false; advanced = 0; gallops = 0 }

let cursor_reset c t =
  c.ctree <- t;
  c.cleaf <- [||];
  c.ci <- 0;
  c.exhausted <- false

let cursor_advanced c = c.advanced
let cursor_gallops c = c.gallops

let cursor_drain_counts c =
  let a = c.advanced and g = c.gallops in
  c.advanced <- 0;
  c.gallops <- 0;
  (a, g)

(* Root-to-leaf descent to the leaf holding the successor of [lowest];
   each level costs one separator bisection, counted as one gallop. *)
let descend c lowest =
  let rec go = function
    | Leaf keys ->
      c.cleaf <- keys;
      c.gallops <- c.gallops + 1;
      c.ci <- first_above keys lowest;
      if c.ci >= Array.length keys then begin
        (* only possible at the rightmost leaf: seps routed us here *)
        c.exhausted <- true;
        -1
      end
      else keys.(c.ci)
    | Node { seps; children; _ } ->
      c.gallops <- c.gallops + 1;
      let i = first_above seps lowest in
      if i >= Array.length children then begin
        c.exhausted <- true;
        -1
      end
      else go children.(i)
  in
  go c.ctree.root

let cursor_seek c ~lowest =
  if c.exhausted then -1
  else begin
    let keys = c.cleaf and k = c.ci in
    let n = Array.length keys in
    if k < n && keys.(k) > lowest then keys.(k)
    else if k < n && keys.(n - 1) > lowest then begin
      (* answer is in the current leaf: a few linear probes (shared
         threshold, see Tuning), else bisect *)
      let cursor_linear_limit = Tuning.gallop_probe_limit () in
      let j = ref (k + 1) in
      let lin = ref 0 in
      while !lin < cursor_linear_limit && !j < n && keys.(!j) <= lowest do
        incr lin;
        incr j
      done;
      c.advanced <- c.advanced + !lin;
      let j =
        if !j >= n || keys.(!j) > lowest then !j
        else begin
          let lo = ref (!j + 1) and hi = ref n in
          while !lo < !hi do
            c.gallops <- c.gallops + 1;
            let mid = (!lo + !hi) / 2 in
            if keys.(mid) > lowest then hi := mid else lo := mid + 1
          done;
          !lo
        end
      in
      c.ci <- j;
      keys.(j)
    end
    else descend c lowest
  end
