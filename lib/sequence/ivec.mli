(** Flat integer vectors backed by [Bigarray].

    The columnar index ({!Inverted_index}) and the binary store keep their
    position/offset runs in [Bigarray.Array1] buffers of kind [int] rather
    than OCaml [int array]s: the representation is identical whether the
    buffer was allocated in memory or mapped read-only from a [.rgsdb]
    file with [Unix.map_file], so the mapped open path reuses every query
    and cursor unchanged (and the buffers live outside the GC heap, which
    keeps multi-GB corpora out of major collections).

    Values are native 63-bit OCaml ints stored as 64-bit host words; the
    on-disk contract (little-endian, values in [0, 2^62)) is specified in
    FORMAT.md §1.3. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Fresh uninitialised vector of the given length (outside the OCaml
    heap). *)

val empty : t
(** The length-0 vector (shared). *)

val length : t -> int

val get : t -> int -> int
(** Bounds-checked load. *)

val unsafe_get : t -> int -> int
(** Unchecked load — the cursor hot path; callers guard indices. *)

val set : t -> int -> int -> unit

val sub : t -> pos:int -> len:int -> t
(** Zero-copy slice sharing the underlying buffer (mapped or heap). *)

val of_array : int array -> t
(** Copying conversion. *)

val to_array : t -> int array
(** Copying conversion (fresh array). *)

val sub_array : t -> pos:int -> len:int -> int array
(** [to_array] of a slice, as one copy. *)

val equal : t -> t -> bool
(** Same length and elementwise equal (contents, not identity). *)
