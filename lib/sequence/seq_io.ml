let lines_of_string s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let tokens_of_line l =
  String.split_on_char ' ' l
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_tokens ?codec s =
  let codec = match codec with Some c -> c | None -> Codec.create () in
  let seq_of_line l =
    Sequence.of_list (List.map (Codec.intern codec) (tokens_of_line l))
  in
  (Seqdb.of_sequences (List.map seq_of_line (lines_of_string s)), codec)

let parse_chars s = Seqdb.of_strings (lines_of_string s)

let parse_spmf s =
  let ints =
    lines_of_string s
    |> List.concat_map tokens_of_line
    |> List.map (fun t ->
           match int_of_string_opt t with
           | Some i -> i
           | None -> failwith (Printf.sprintf "Seq_io.parse_spmf: bad token %S" t))
  in
  let rec split current seqs = function
    | [] ->
      if current <> [] then
        failwith "Seq_io.parse_spmf: trailing events without -2 terminator"
      else List.rev seqs
    | -2 :: rest -> split [] (Sequence.of_list (List.rev current) :: seqs) rest
    | -1 :: rest -> split current seqs rest
    | e :: rest when e >= 0 -> split (e :: current) seqs rest
    | e :: _ -> failwith (Printf.sprintf "Seq_io.parse_spmf: bad event %d" e)
  in
  Seqdb.of_sequences (split [] [] ints)

let print_tokens codec db =
  let buf = Buffer.create 1024 in
  Seqdb.iter
    (fun _ s ->
      Sequence.iteri
        (fun pos e ->
          if pos > 1 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Codec.name codec e))
        s;
      Buffer.add_char buf '\n')
    db;
  Buffer.contents buf

let print_spmf db =
  let buf = Buffer.create 1024 in
  Seqdb.iter
    (fun _ s ->
      Sequence.iteri
        (fun pos e ->
          if pos > 1 then Buffer.add_string buf "-1 ";
          Buffer.add_string buf (string_of_int e);
          Buffer.add_char buf ' ')
        s;
      Buffer.add_string buf "-2\n")
    db;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let load_tokens ?codec path = parse_tokens ?codec (read_file path)
let load_spmf path = parse_spmf (read_file path)
let save_tokens codec db path = write_file path (print_tokens codec db)
let save_spmf db path = write_file path (print_spmf db)
