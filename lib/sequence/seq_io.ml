exception Parse_error of { line : int; msg : string }

(* Non-blank, non-comment lines with their 1-based line numbers in the
   original string. *)
let numbered_lines s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, String.trim l))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

let lines_of_string s = List.map snd (numbered_lines s)

let tokens_of_line l =
  String.split_on_char ' ' l
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_tokens ?codec s =
  let codec = match codec with Some c -> c | None -> Codec.create () in
  let seq_of_line l =
    Sequence.of_list (List.map (Codec.intern codec) (tokens_of_line l))
  in
  (Seqdb.of_sequences (List.map seq_of_line (lines_of_string s)), codec)

let parse_chars_report ?(strict = true) s =
  let seqs = ref [] in
  let skipped = ref 0 in
  List.iter
    (fun (line, l) ->
      match Sequence.of_string l with
      | seq -> seqs := seq :: !seqs
      | exception Invalid_argument msg ->
        if strict then raise (Parse_error { line; msg })
        else begin
          Metrics.hit Metrics.parse_errors_skipped;
          incr skipped
        end)
    (numbered_lines s);
  (Seqdb.of_sequences (List.rev !seqs), !skipped)

let parse_chars ?strict s = fst (parse_chars_report ?strict s)

(* A sequence may span lines (the token stream is what matters), so the
   running event accumulator survives line boundaries; [current_line]
   remembers the last line that fed it, for error attribution. In
   non-strict mode a malformed line is dropped wholesale — including any
   half-built sequence it was extending — and counted. *)
exception Skip_line

let parse_spmf_report ?(strict = true) s =
  let seqs = ref [] in
  let skipped = ref 0 in
  let current = ref [] in
  let current_line = ref 0 in
  let error line msg =
    if strict then raise (Parse_error { line; msg })
    else begin
      Metrics.hit Metrics.parse_errors_skipped;
      incr skipped;
      current := [];
      raise Skip_line
    end
  in
  List.iter
    (fun (line, l) ->
      try
        List.iter
          (fun t ->
            match int_of_string_opt t with
            | None -> error line (Printf.sprintf "bad token %S" t)
            | Some -2 ->
              seqs := Sequence.of_list (List.rev !current) :: !seqs;
              current := []
            | Some -1 -> ()
            | Some e when e >= 0 ->
              current := e :: !current;
              current_line := line
            | Some e -> error line (Printf.sprintf "bad event %d" e))
          (tokens_of_line l)
      with Skip_line -> ())
    (numbered_lines s);
  if !current <> [] then
    if strict then
      raise
        (Parse_error
           { line = !current_line; msg = "trailing events without -2 terminator" })
    else begin
      Metrics.hit Metrics.parse_errors_skipped;
      incr skipped
    end;
  (Seqdb.of_sequences (List.rev !seqs), !skipped)

let parse_spmf ?strict s = fst (parse_spmf_report ?strict s)

let print_tokens codec db =
  let buf = Buffer.create 1024 in
  Seqdb.iter
    (fun _ s ->
      Sequence.iteri
        (fun pos e ->
          if pos > 1 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Codec.name codec e))
        s;
      Buffer.add_char buf '\n')
    db;
  Buffer.contents buf

let print_spmf db =
  let buf = Buffer.create 1024 in
  Seqdb.iter
    (fun _ s ->
      Sequence.iteri
        (fun pos e ->
          if pos > 1 then Buffer.add_string buf "-1 ";
          Buffer.add_string buf (string_of_int e);
          Buffer.add_char buf ' ')
        s;
      Buffer.add_string buf "-2\n")
    db;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let load_tokens ?codec path = parse_tokens ?codec (read_file path)
let load_spmf ?strict path = parse_spmf ?strict (read_file path)
let save_tokens codec db path = write_file path (print_tokens codec db)
let save_spmf db path = write_file path (print_spmf db)
