open Rgs_sequence
open Rgs_core

type stats = {
  patterns : int;
  candidates : int;
  levels : int;
  truncated : bool;
}

exception Budget_exhausted

let mine ?max_length ?(should_stop = fun () -> false) idx ~min_sup =
  if min_sup < 1 then invalid_arg "Levelwise.mine: min_sup must be >= 1";
  let events = Inverted_index.frequent_events idx ~min_sup in
  let candidates = ref 0 in
  let support p =
    if should_stop () then raise Budget_exhausted;
    incr candidates;
    Sup_comp.support idx p
  in
  let within p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  (* level 1: frequent single events (their support is the occurrence
     count, no supComp needed) *)
  let level1 =
    List.map (fun e -> (Pattern.of_list [ e ], Inverted_index.occurrence_count idx e)) events
  in
  (* [depth] is the level of the (non-empty) patterns in [level]. *)
  let rec expand level acc depth =
    (* candidates: frequent level-k patterns extended by frequent events;
       the prefix is frequent by construction (Apriori) *)
    let next =
      List.concat_map
        (fun (p, _) ->
          if within p then
            List.filter_map
              (fun e ->
                let q = Pattern.grow p e in
                let sup = support q in
                if sup >= min_sup then Some (q, sup) else None)
              events
          else [])
        level
    in
    match next with
    | [] -> (List.rev acc, depth)
    | _ -> expand next (List.rev_append next acc) (depth + 1)
  in
  let (rest, levels), truncated =
    match level1 with
    | [] -> (([], 0), false)
    | _ -> (
      match expand level1 [] 1 with
      | result -> (result, false)
      | exception Budget_exhausted -> (([], 0), true))
  in
  let results = level1 @ rest in
  ( results,
    { patterns = List.length results; candidates = !candidates; levels; truncated } )
