open Rgs_core

type stats = {
  patterns : int;
  explored : int;
  equivalence_pruned : int;
}

let closed_filter results =
  (* Group by support; within a group, a pattern is non-closed iff a longer
     pattern of the group contains it. *)
  let module IMap = Map.Make (Int) in
  let groups =
    List.fold_left
      (fun acc (p, sup) ->
        IMap.update sup (fun l -> Some ((p, sup) :: Option.value ~default:[] l)) acc)
      IMap.empty results
  in
  let keep (p, sup) =
    let group = IMap.find sup groups in
    not
      (List.exists
         (fun (q, _) ->
           Pattern.length q > Pattern.length p && Pattern.is_subpattern p ~of_:q)
         group)
  in
  List.filter keep results

let mine ?max_length db ~min_sup =
  if min_sup < 1 then invalid_arg "Clospan.mine: min_sup must be >= 1";
  let explored = ref 0 in
  let equivalence_pruned = ref 0 in
  let all = ref [] in
  (* projected-size -> explored (pattern, support) entries *)
  let seen : (int, (Pattern.t * int) list) Hashtbl.t = Hashtbl.create 1024 in
  let within p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  let rec grow p projs =
    incr explored;
    let items = Seq_mining.frequent_items db projs in
    List.iter
      (fun (e, sup) ->
        if sup >= min_sup then begin
          let q = Pattern.grow p e in
          let projs' = Seq_mining.project db projs e in
          let size = Seq_mining.projected_size db projs' in
          let equivalent_super =
            List.exists
              (fun (r, sup_r) ->
                sup_r = sup
                && Pattern.length r > Pattern.length q
                && Pattern.is_subpattern q ~of_:r)
              (Option.value ~default:[] (Hashtbl.find_opt seen size))
          in
          if equivalent_super then incr equivalence_pruned
          else begin
            all := (q, sup) :: !all;
            Hashtbl.replace seen size
              ((q, sup) :: Option.value ~default:[] (Hashtbl.find_opt seen size));
            if within q then grow q projs'
          end
        end)
      items
  in
  grow Pattern.empty (Seq_mining.initial_projection db);
  let closed = closed_filter (List.rev !all) in
  ( closed,
    {
      patterns = List.length closed;
      explored = !explored;
      equivalence_pruned = !equivalence_pruned;
    } )
