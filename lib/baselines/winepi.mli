(** WINEPI-style serial episode mining (Mannila, Toivonen & Verkamo).

    Mines all serial episodes whose fixed-width-window support
    ({!Episode.window_support}) meets a threshold, over a single long
    sequence — the classic single-sequence counterpart of the paper's
    repetitive mining (Table I row 2 as a miner, not just a counter).

    Window support is anti-monotone under the sub-episode relation (a
    window containing an episode contains all of its subsequences), so
    prefix-growth DFS with Apriori pruning is sound and complete, as in
    GSgrow. *)

open Rgs_sequence
open Rgs_core

type stats = { episodes : int; support_computations : int }

val frequency : Sequence.t -> Pattern.t -> w:int -> float
(** Window support normalised by the number of width-[w] windows, in
    [0, 1]. *)

val mine :
  ?max_length:int ->
  Sequence.t ->
  w:int ->
  min_sup:int ->
  (Pattern.t * int) list * stats
(** All serial episodes with at least [min_sup] width-[w] windows
    containing them, in DFS order.
    @raise Invalid_argument when [w < 1] or [min_sup < 1]. *)
