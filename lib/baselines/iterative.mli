(** Iterative-pattern occurrence counting (Lo, Khoo & Liu, KDD 2007) —
    Table I row 5 and the case study's comparison point.

    An occurrence of pattern [P = e1..em] is a substring matching the QRE
    [e1 G* e2 G* ... G* em], where [G] is the set of all events {e except}
    [{e1, ..., em}]: between two successive matched pattern events, no
    event of the pattern's own alphabet may appear. The support of [P] is
    the number of such occurrences over the database. For Example 1.1,
    [AB] has support 3. *)

open Rgs_sequence
open Rgs_core

val occurrences : Sequence.t -> Pattern.t -> (int * int) list
(** Start/end positions of all QRE occurrences, ascending by start. *)

val support : Sequence.t -> Pattern.t -> int
(** Number of QRE occurrences in one sequence. *)

val db_support : Seqdb.t -> Pattern.t -> int
(** Sum of {!support} over the database. *)
