open Rgs_sequence
open Rgs_core

(* A window (s, e) counts iff S[s] = e1, S[e] = em, and e2..e_{m-1} fits
   strictly between. For each anchor s, greedily match e1..e_{m-1} starting
   at s; every later occurrence of em then closes a valid window. *)
let support s p =
  let n = Sequence.length s in
  let m = Pattern.length p in
  if m = 0 then 0
  else if m = 1 then Sequence.count s (Pattern.get p 1)
  else begin
    let e1 = Pattern.get p 1 and em = Pattern.get p m in
    let prefix = Pattern.of_array (Array.sub (Pattern.to_array p) 0 (m - 1)) in
    (* suffix_em.(pos) = number of occurrences of em at positions > pos *)
    let suffix_em = Array.make (n + 2) 0 in
    for pos = n downto 1 do
      suffix_em.(pos) <-
        (suffix_em.(pos + 1) + if Event.equal (Sequence.get s pos) em then 1 else 0)
    done;
    let total = ref 0 in
    for anchor = 1 to n do
      if Event.equal (Sequence.get s anchor) e1 then begin
        match Seq_mining.leftmost_match s ~from:anchor prefix with
        | Some landmark when landmark.(0) = anchor ->
          (* occurrences of em strictly after the prefix's last event *)
          total := !total + suffix_em.(landmark.(m - 2) + 1)
        | _ -> ()
      end
    done;
    !total
  end

let db_support db p = Seqdb.fold (fun acc _ s -> acc + support s p) 0 db
