(** PrefixSpan (Pei et al., ICDE 2001) over single-event sequences.

    Mines {e all} sequential patterns — support counted as the number of
    sequences containing the pattern — by prefix-projected pattern growth
    with pseudo-projection. This is the paper's sequential-pattern-mining
    comparator (Section IV-A), and the semantics of Table I row 1. *)

open Rgs_sequence
open Rgs_core

type stats = { patterns : int; projections : int }

val mine :
  ?max_length:int ->
  ?max_patterns:int ->
  Seqdb.t ->
  min_sup:int ->
  (Pattern.t * int) list * stats
(** All patterns with sequential support at least [min_sup], in DFS order.
    @raise Invalid_argument when [min_sup < 1]. *)
