(** Serial-episode support (Mannila, Toivonen & Verkamo, DMKD 1997) —
    Table I row 2.

    Episode mining takes a {e single} sequence and counts windows. Two
    classic support definitions are provided for a serial episode (our
    pattern type):

    - {!window_support}: the number of width-[w] windows containing the
      episode as a subsequence. Following the paper's Example 1.1 reading
      (4 width-4 windows of [S1 = AABCDABB] contain [AB]), windows lie
      entirely inside the sequence: starts [1 .. n - w + 1].
    - {!minimal_window_support}: the number of minimal windows — windows
      containing the episode such that no proper sub-window does. *)

open Rgs_sequence
open Rgs_core

val window_support : Sequence.t -> Pattern.t -> w:int -> int
(** @raise Invalid_argument when [w < 1]. *)

val minimal_windows : Sequence.t -> Pattern.t -> (int * int) list
(** The minimal windows as [(start, end)] position pairs, ascending. *)

val minimal_window_support : Sequence.t -> Pattern.t -> int

val db_window_support : Seqdb.t -> Pattern.t -> w:int -> int
(** Sum of {!window_support} over the database's sequences (episode mining
    is single-sequence; the sum is the natural multi-sequence lift). *)

val db_minimal_window_support : Seqdb.t -> Pattern.t -> int
