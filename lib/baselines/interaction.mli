(** Interaction-pattern support (El-Ramly, Stroulia & Sorenson, KDD 2002) —
    Table I row 4.

    The support of a pattern is the number of substrings [S[s..e]] such
    that (i) the pattern is contained in the substring as a subsequence and
    (ii) the substring's first and last events match the pattern's first
    and last events ([S[s] = e1] and [S[e] = em]). For Example 1.1, [AB]
    has support 9 (8 substrings of [S1] and one of [S2]). *)

open Rgs_sequence
open Rgs_core

val support : Sequence.t -> Pattern.t -> int
(** For a size-1 pattern this is its occurrence count ([s = e] windows). *)

val db_support : Seqdb.t -> Pattern.t -> int
(** Sum of {!support} over the database. *)
