open Rgs_sequence
open Rgs_core

type stats = { episodes : int; support_computations : int }

let frequency s p ~w =
  let windows = max 0 (Sequence.length s - w + 1) in
  if windows = 0 then 0.
  else float_of_int (Episode.window_support s p ~w) /. float_of_int windows

let mine ?max_length s ~w ~min_sup =
  if w < 1 then invalid_arg "Winepi.mine: w must be >= 1";
  if min_sup < 1 then invalid_arg "Winepi.mine: min_sup must be >= 1";
  let events = Sequence.events s in
  let results = ref [] in
  let computations = ref 0 in
  let within p =
    match max_length with
    | Some l -> Pattern.length p < l
    | None -> Pattern.length p < w (* an episode longer than the window never fits *)
  in
  let rec grow p =
    List.iter
      (fun e ->
        let q = Pattern.grow p e in
        incr computations;
        let sup = Episode.window_support s q ~w in
        if sup >= min_sup then begin
          results := (q, sup) :: !results;
          if within q then grow q
        end)
      events
  in
  grow Pattern.empty;
  let results = List.rev !results in
  (results, { episodes = List.length results; support_computations = !computations })
