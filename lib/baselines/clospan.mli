(** CloSpan-style closed sequential pattern mining (Yan, Han & Afshar,
    SDM 2003), over single-event sequences.

    PrefixSpan-style growth plus CloSpan's key idea: two prefixes with {e
    equivalent projected databases} (equal total projected suffix size and
    one pattern containing the other) share their whole subtree. We apply
    the sound direction of the pruning — when a {e super}-pattern with an
    equivalent projection was already explored, the current subtree can
    contain no closed pattern and is skipped — and finish with an explicit
    closure filter (CloSpan also ends with a non-closed elimination pass).
    The output is exactly the set of closed sequential patterns. *)

open Rgs_sequence
open Rgs_core

type stats = {
  patterns : int;  (** closed patterns returned *)
  explored : int;  (** DFS nodes expanded *)
  equivalence_pruned : int;  (** subtrees skipped by projected-DB equivalence *)
}

val mine :
  ?max_length:int ->
  Seqdb.t ->
  min_sup:int ->
  (Pattern.t * int) list * stats
(** Closed sequential patterns with support at least [min_sup].
    @raise Invalid_argument when [min_sup < 1]. *)

val closed_filter : (Pattern.t * int) list -> (Pattern.t * int) list
(** Removes every pattern having a super-pattern of equal support in the
    list. Exposed for tests and for post-processing foreign results. *)
