open Rgs_core

type stats = { patterns : int; projections : int }

exception Budget_exhausted

let mine ?max_length ?max_patterns db ~min_sup =
  if min_sup < 1 then invalid_arg "Prefixspan.mine: min_sup must be >= 1";
  let results = ref [] in
  let count = ref 0 in
  let projections = ref 0 in
  let within p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  let emit p sup =
    results := (p, sup) :: !results;
    incr count;
    match max_patterns with
    | Some budget when !count >= budget -> raise Budget_exhausted
    | _ -> ()
  in
  let rec grow p projs =
    let items = Seq_mining.frequent_items db projs in
    List.iter
      (fun (e, sup) ->
        if sup >= min_sup then begin
          let q = Pattern.grow p e in
          emit q sup;
          if within q then begin
            incr projections;
            grow q (Seq_mining.project db projs e)
          end
        end)
      items
  in
  (try grow Pattern.empty (Seq_mining.initial_projection db)
   with Budget_exhausted -> ());
  (List.rev !results, { patterns = !count; projections = !projections })
