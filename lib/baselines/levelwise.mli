(** Levelwise (Apriori-style) repetitive mining — a baseline that ablates
    the paper's {e instance growth} operation.

    Solves exactly the same problem as GSgrow (all frequent repetitive
    gapped subsequences) but the classic way: generate size-[k+1]
    candidates by extending frequent size-[k] patterns, then compute each
    candidate's support {e from scratch} with [supComp]. GSgrow instead
    extends the parent's support set incrementally in [O(sup · log L)].
    Comparing the two isolates how much of GSgrow's efficiency comes from
    instance growth rather than from the DFS traversal itself. *)

open Rgs_sequence
open Rgs_core

type stats = {
  patterns : int;
  candidates : int;  (** supComp invocations *)
  levels : int;  (** deepest level with a frequent pattern *)
  truncated : bool;  (** [should_stop] aborted the run *)
}

val mine :
  ?max_length:int ->
  ?should_stop:(unit -> bool) ->
  Inverted_index.t ->
  min_sup:int ->
  (Pattern.t * int) list * stats
(** Identical output set to [Gsgrow.mine] (different order: by level, then
    lexicographic within a level).
    @raise Invalid_argument when [min_sup < 1]. *)
