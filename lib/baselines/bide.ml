open Rgs_sequence
open Rgs_core

type stats = {
  patterns : int;
  explored : int;
  backscan_pruned : int;
}

(* Rightmost landmark of [p] in [s]: match greedily from the right. Returns
   positions ascending. *)
let rightmost_match s p =
  let n = Sequence.length s and m = Pattern.length p in
  let landmark = Array.make m 0 in
  let rec walk j pos =
    if j < 1 then Some landmark
    else if pos < 1 then None
    else if Event.equal (Sequence.get s pos) (Pattern.get p j) then begin
      landmark.(j - 1) <- pos;
      walk (j - 1) (pos - 1)
    end
    else walk j (pos - 1)
  in
  if m = 0 then Some [||] else walk m n

(* For every containing sequence, call [record seq_count_table] on the
   distinct events of the period (lo, hi) (exclusive bounds) for each period
   index i in [0 .. n-1] (plus i = n when [include_append]). [bounds s fl rl
   i] must return the period's (lo, hi). Returns a table mapping (i, event)
   to the number of containing sequences whose i-th period holds the
   event — an entry equal to [support] signals an extension event. *)
let period_event_counts db p ~periods ~bounds =
  let counts : (int * Event.t, int) Hashtbl.t = Hashtbl.create 64 in
  let support = ref 0 in
  Seqdb.iter
    (fun _ s ->
      match Seq_mining.leftmost_match s p with
      | None -> ()
      | Some fl ->
        incr support;
        let rl =
          match rightmost_match s p with
          | Some rl -> rl
          | None -> assert false (* containment already established *)
        in
        let module EISet = Set.Make (struct
          type t = int * Event.t

          let compare = compare
        end) in
        let seen = ref EISet.empty in
        for i = 0 to periods - 1 do
          let lo, hi = bounds s fl rl i in
          for pos = lo + 1 to hi - 1 do
            if pos >= 1 && pos <= Sequence.length s then
              seen := EISet.add (i, Sequence.get s pos) !seen
          done
        done;
        EISet.iter
          (fun key ->
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
          !seen)
    db;
  (counts, !support)

let has_full_count counts support =
  Hashtbl.fold (fun _ c acc -> acc || c = support) counts false

(* Bi-directional extension check: maximum periods (fl_i, rl_{i+1}),
   i = 0..n (i = n is the forward-extension period). *)
let is_closed_sequential db p =
  let n = Pattern.length p in
  if n = 0 then false
  else begin
    let bounds s fl rl i =
      let lo = if i = 0 then 0 else fl.(i - 1) in
      let hi = if i = n then Sequence.length s + 1 else rl.(i) in
      (lo, hi)
    in
    let counts, support = period_event_counts db p ~periods:(n + 1) ~bounds in
    support > 0 && not (has_full_count counts support)
  end

(* BackScan: semi-maximum periods (fl_i, fl_{i+1}), i = 0..n-1. *)
let backscan_prunable db p =
  let n = Pattern.length p in
  n > 0
  &&
  let bounds s fl _rl i =
    ignore s;
    let lo = if i = 0 then 0 else fl.(i - 1) in
    (lo, fl.(i))
  in
  let counts, support = period_event_counts db p ~periods:n ~bounds in
  support > 0 && has_full_count counts support

let mine ?max_length ?(use_backscan = true) db ~min_sup =
  if min_sup < 1 then invalid_arg "Bide.mine: min_sup must be >= 1";
  let results = ref [] in
  let explored = ref 0 in
  let backscan_pruned = ref 0 in
  let within p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  let rec grow p projs =
    incr explored;
    let items = Seq_mining.frequent_items db projs in
    List.iter
      (fun (e, sup) ->
        if sup >= min_sup then begin
          let q = Pattern.grow p e in
          if use_backscan && backscan_prunable db q then incr backscan_pruned
          else begin
            if is_closed_sequential db q then results := (q, sup) :: !results;
            if within q then grow q (Seq_mining.project db projs e)
          end
        end)
      items
  in
  grow Pattern.empty (Seq_mining.initial_projection db);
  let results = List.rev !results in
  ( results,
    { patterns = List.length results; explored = !explored; backscan_pruned = !backscan_pruned } )
