open Rgs_sequence
open Rgs_core

let contains_in_window s p ~start ~stop =
  let m = Pattern.length p in
  let rec walk j pos =
    if j > m then true
    else if pos > stop then false
    else if Event.equal (Sequence.get s pos) (Pattern.get p j) then walk (j + 1) (pos + 1)
    else walk j (pos + 1)
  in
  m = 0 || walk 1 start

let window_support s p ~w =
  if w < 1 then invalid_arg "Episode.window_support: w must be >= 1";
  let n = Sequence.length s in
  let count = ref 0 in
  for start = 1 to n - w + 1 do
    if contains_in_window s p ~start ~stop:(start + w - 1) then incr count
  done;
  !count

(* Candidate windows: for each possible start, greedily complete the episode
   to its earliest end. The earliest end is non-decreasing in the start, so
   a candidate is a minimal window iff the next candidate ends strictly
   later (same-end candidates collapse to the latest start). *)
let minimal_windows s p =
  let n = Sequence.length s in
  let m = Pattern.length p in
  if m = 0 then []
  else begin
    let candidates = ref [] in
    for start = n downto 1 do
      if Event.equal (Sequence.get s start) (Pattern.get p 1) then begin
        match Seq_mining.leftmost_match s ~from:start p with
        | Some landmark when landmark.(0) = start ->
          candidates := (start, landmark.(m - 1)) :: !candidates
        | _ -> ()
      end
    done;
    (* candidates ascending by start; keep those whose end is strictly
       smaller than every later candidate's end (= latest start per end). *)
    let rec filter = function
      | [] -> []
      | [ w ] -> [ w ]
      | (s1, e1) :: ((_, e2) :: _ as rest) ->
        if e1 < e2 then (s1, e1) :: filter rest else filter rest
    in
    filter !candidates
  end

let minimal_window_support s p = List.length (minimal_windows s p)

let db_window_support db p ~w =
  Seqdb.fold (fun acc _ s -> acc + window_support s p ~w) 0 db

let db_minimal_window_support db p =
  Seqdb.fold (fun acc _ s -> acc + minimal_window_support s p) 0 db
