open Rgs_sequence
open Rgs_core

let occurrences s p =
  let n = Sequence.length s in
  let m = Pattern.length p in
  if m = 0 then []
  else begin
    let module ISet = Set.Make (Int) in
    let alphabet = ISet.of_list (Pattern.events p) in
    let out = ref [] in
    for start = n downto 1 do
      if Event.equal (Sequence.get s start) (Pattern.get p 1) then begin
        (* Walk forward: the next pattern-alphabet event must be the next
           expected pattern event; foreign alphabet events are skipped. *)
        let rec walk j pos =
          if j > m then Some (pos - 1) (* position of the last matched event *)
          else if pos > n then None
          else begin
            let e = Sequence.get s pos in
            if Event.equal e (Pattern.get p j) then walk (j + 1) (pos + 1)
            else if ISet.mem e alphabet then None
            else walk j (pos + 1)
          end
        in
        match walk 2 (start + 1) with
        | Some stop -> out := (start, stop) :: !out
        | None -> ()
      end
    done;
    !out
  end

let support s p = List.length (occurrences s p)
let db_support db p = Seqdb.fold (fun acc _ s -> acc + support s p) 0 db
