(** Gap-requirement occurrence counting (Zhang, Kao, Cheung & Yip, SIGMOD
    2005) — Table I row 3.

    All occurrences (landmarks) of a pattern are counted — overlapping and
    non-overlapping alike — subject to a gap requirement: between two
    successive pattern events, the number of skipped positions must lie in
    [[gmin, gmax]]. The support ratio normalises by [N_l], the maximum
    possible count given the gap requirement (attained when every position
    of the sequence matches every pattern event).

    Counting uses dynamic programming; no occurrence is materialised, so
    counts that would be astronomically large to enumerate are fine (they
    may still overflow native ints for adversarial inputs — counts are
    computed with saturation at [max_int]). *)

open Rgs_sequence
open Rgs_core

val count : Sequence.t -> Pattern.t -> gmin:int -> gmax:int -> int
(** Number of landmarks of [P] in [S] with all successive-event gaps in
    [[gmin, gmax]]. The empty pattern has count [0].
    @raise Invalid_argument when [gmin < 0] or [gmax < gmin]. *)

val max_possible : seq_len:int -> pat_len:int -> gmin:int -> gmax:int -> int
(** [N_l]: the count for a sequence of length [seq_len] in which every
    position matches every pattern event. *)

val support_ratio : Sequence.t -> Pattern.t -> gmin:int -> gmax:int -> float
(** [count / N_l], in [0, 1]; [0] when [N_l = 0]. *)

val db_count : Seqdb.t -> Pattern.t -> gmin:int -> gmax:int -> int
(** Sum of {!count} over the database, saturating at [max_int]. *)
