(** BIDE (Wang & Han, ICDE 2004): closed sequential pattern mining without
    candidate maintenance, over single-event sequences.

    For a frequent prefix [P = e1..en], the leftmost landmark [fl] (the
    "first instance") and the rightmost-start suffix landmark [rl] of [P]
    in each containing sequence delimit the classic BIDE periods:

    - the {b i-th maximum period} is the open interval [(fl_i, rl_{i+1})]
      (with [fl_0 = 0] and [rl_{n+1} = |S| + 1]); an event occurring in the
      i-th maximum period of {e every} containing sequence is a
      backward/forward extension event — [P] is then not closed
      (bi-directional extension closure check);
    - the {b i-th semi-maximum period} is [(fl_i, fl_{i+1})]; an event
      occurring in the i-th semi-maximum period of every containing
      sequence makes the whole subtree of [P] prunable (BackScan). *)

open Rgs_sequence
open Rgs_core

type stats = {
  patterns : int;
  explored : int;  (** DFS nodes expanded *)
  backscan_pruned : int;
}

val mine :
  ?max_length:int ->
  ?use_backscan:bool ->
  Seqdb.t ->
  min_sup:int ->
  (Pattern.t * int) list * stats
(** Closed sequential patterns with support at least [min_sup], in DFS
    order. [use_backscan] (default [true]) toggles the search-space
    pruning (the output is identical either way).
    @raise Invalid_argument when [min_sup < 1]. *)

val is_closed_sequential : Seqdb.t -> Pattern.t -> bool
(** Standalone bi-directional extension closure check. *)
