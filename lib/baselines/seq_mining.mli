(** Shared kernel for classic sequential pattern mining.

    In sequential pattern mining (Agrawal & Srikant), the support of a
    pattern is the {e number of sequences that contain it} — repetitions
    within a sequence are ignored. This module provides containment tests,
    that support function, and the pseudo-projection machinery reused by
    {!Prefixspan}, {!Clospan} and {!Bide}. *)

open Rgs_sequence
open Rgs_core

val contains : Sequence.t -> Pattern.t -> bool
(** [contains s p] iff [P ⊑ S]. The empty pattern is contained in every
    sequence. *)

val leftmost_match : Sequence.t -> ?from:int -> Pattern.t -> int array option
(** Leftmost landmark of [P] in [S] starting at position [>= from]
    (default 1), by greedy matching. *)

val support : Seqdb.t -> Pattern.t -> int
(** Classic sequential support: number of sequences containing [P]. *)

type projection = { pseq : int; start : int }
(** Pseudo-projected entry: sequence [pseq] matched the current prefix, and
    its projected suffix begins at position [start] (1-based; may exceed the
    sequence length when the suffix is empty). *)

val initial_projection : Seqdb.t -> projection list
(** One entry per sequence, suffix = whole sequence. *)

val project : Seqdb.t -> projection list -> Event.t -> projection list
(** Extends each projected entry past the first occurrence of [e] in its
    suffix; entries without one are dropped. The result's length is the
    sequential support of the grown prefix. *)

val frequent_items : Seqdb.t -> projection list -> (Event.t * int) list
(** Events occurring in at least one projected suffix, with the number of
    suffixes they occur in, ascending by event. *)

val projected_size : Seqdb.t -> projection list -> int
(** Total remaining suffix length — CloSpan's equivalence signature. *)
