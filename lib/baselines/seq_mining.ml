open Rgs_sequence
open Rgs_core

let leftmost_match s ?(from = 1) p =
  let n = Sequence.length s and m = Pattern.length p in
  let landmark = Array.make m 0 in
  let rec walk j pos =
    if j > m then Some landmark
    else if pos > n then None
    else if Event.equal (Sequence.get s pos) (Pattern.get p j) then begin
      landmark.(j - 1) <- pos;
      walk (j + 1) (pos + 1)
    end
    else walk j (pos + 1)
  in
  if m = 0 then Some [||] else walk 1 from

let contains s p = Option.is_some (leftmost_match s p)

let support db p =
  Seqdb.fold (fun acc _ s -> if contains s p then acc + 1 else acc) 0 db

type projection = { pseq : int; start : int }

let initial_projection db =
  List.rev (Seqdb.fold (fun acc i _ -> { pseq = i; start = 1 } :: acc) [] db)

let project db projs e =
  List.filter_map
    (fun { pseq; start } ->
      let s = Seqdb.seq db pseq in
      let n = Sequence.length s in
      let rec find pos =
        if pos > n then None
        else if Event.equal (Sequence.get s pos) e then Some pos
        else find (pos + 1)
      in
      Option.map (fun pos -> { pseq; start = pos + 1 }) (find start))
    projs

let frequent_items db projs =
  let module IMap = Map.Make (Int) in
  let counts =
    List.fold_left
      (fun acc { pseq; start } ->
        let s = Seqdb.seq db pseq in
        let module ISet = Set.Make (Int) in
        let seen = ref ISet.empty in
        for pos = start to Sequence.length s do
          seen := ISet.add (Sequence.get s pos) !seen
        done;
        ISet.fold
          (fun e acc ->
            IMap.update e (fun c -> Some (1 + Option.value ~default:0 c)) acc)
          !seen acc)
      IMap.empty projs
  in
  IMap.bindings counts

let projected_size db projs =
  List.fold_left
    (fun acc { pseq; start } ->
      acc + max 0 (Sequence.length (Seqdb.seq db pseq) - start + 1))
    0 projs
