open Rgs_sequence
open Rgs_core

let sat_add a b =
  let c = a + b in
  if c < 0 then max_int else c

(* dp.(pos) after processing pattern index j = number of gap-respecting
   landmarks of e1..ej whose last event is at position pos. *)
let count_generic ~matches ~seq_len ~pat_len ~gmin ~gmax =
  if gmin < 0 || gmax < gmin then invalid_arg "Gap_occurrences: bad gap bounds";
  if pat_len = 0 || seq_len = 0 then 0
  else begin
    let dp = Array.make (seq_len + 1) 0 in
    for pos = 1 to seq_len do
      if matches 1 pos then dp.(pos) <- 1
    done;
    let next = Array.make (seq_len + 1) 0 in
    for j = 2 to pat_len do
      Array.fill next 0 (seq_len + 1) 0;
      (* prefix sums of dp for O(1) range sums *)
      let prefix = Array.make (seq_len + 1) 0 in
      for pos = 1 to seq_len do
        prefix.(pos) <- sat_add prefix.(pos - 1) dp.(pos)
      done;
      for pos = 1 to seq_len do
        if matches j pos then begin
          (* previous event at q with gap pos - q - 1 in [gmin, gmax]:
             q in [pos - gmax - 1, pos - gmin - 1] *)
          let lo = max 1 (pos - gmax - 1) in
          let hi = pos - gmin - 1 in
          if hi >= lo then begin
            let range = prefix.(hi) - prefix.(lo - 1) in
            let range = if range < 0 then max_int else range in
            next.(pos) <- range
          end
        end
      done;
      Array.blit next 0 dp 0 (seq_len + 1)
    done;
    Array.fold_left sat_add 0 dp
  end

let count s p ~gmin ~gmax =
  count_generic
    ~matches:(fun j pos -> Event.equal (Sequence.get s pos) (Pattern.get p j))
    ~seq_len:(Sequence.length s) ~pat_len:(Pattern.length p) ~gmin ~gmax

let max_possible ~seq_len ~pat_len ~gmin ~gmax =
  count_generic ~matches:(fun _ _ -> true) ~seq_len ~pat_len ~gmin ~gmax

let support_ratio s p ~gmin ~gmax =
  let nl =
    max_possible ~seq_len:(Sequence.length s) ~pat_len:(Pattern.length p) ~gmin ~gmax
  in
  if nl = 0 then 0.
  else float_of_int (count s p ~gmin ~gmax) /. float_of_int nl

let db_count db p ~gmin ~gmax =
  Seqdb.fold (fun acc _ s -> sat_add acc (count s p ~gmin ~gmax)) 0 db
