(** Shared machinery for the paper-reproduction experiments: timed mining
    runs with wall-clock budgets (the paper's "cut-off points" where GSgrow
    takes too long), and the scaled dataset constructors. *)

open Rgs_sequence

type run = {
  elapsed_s : float;
  patterns : int;
  timed_out : bool;  (** the time budget interrupted the search *)
}

val run_gsgrow :
  ?timeout_s:float -> ?max_length:int -> Inverted_index.t -> min_sup:int -> run
(** Counts frequent patterns without materialising them. When the budget
    expires the run stops and is marked [timed_out] (pattern count =
    patterns found so far). *)

val run_clogsgrow :
  ?timeout_s:float ->
  ?max_length:int ->
  ?use_lb_check:bool ->
  ?use_c_check:bool ->
  Inverted_index.t ->
  min_sup:int ->
  run

val time : (unit -> 'a) -> 'a * float
(** Wall-clock timing of a thunk. *)

val set_trace : Trace.t -> unit
(** Install the ambient trace every {!run_gsgrow}/{!run_clogsgrow} (and the
    case study's miner call) records into — the [experiments --trace FILE]
    hook. Default {!Trace.null}; reset it after the traced work. *)

val trace : unit -> Trace.t
(** The currently installed ambient trace. *)

val pp_run : Format.formatter -> run -> unit
(** ["0.123s / 456 patterns"] with a ["(timeout)"] suffix when hit. *)

(** Scaled dataset constructors. [scale] multiplies the number of sequences
    (default 1.0 = paper size); all are deterministic in [seed]. *)

val quest_d5c20n10s20 : ?scale:float -> ?seed:int -> unit -> Seqdb.t
val gazelle_like : ?scale:float -> ?seed:int -> unit -> Seqdb.t
val tcas_like : ?scale:float -> ?seed:int -> unit -> Seqdb.t
val jboss_like : ?seed:int -> unit -> Seqdb.t * Codec.t
