open Rgs_sequence

type row = {
  x : int;
  all : Exp_common.run option;
  closed : Exp_common.run;
}

let min_sup_sweep ?(timeout_s = 20.) ?(skip_all_below = 0) db ~min_sups =
  let idx = Inverted_index.build db in
  (* Descending thresholds: once GSgrow times out it would only be slower
     at lower support, so it is skipped from then on (the paper's
     cut-off). *)
  let min_sups = List.sort_uniq (fun a b -> Int.compare b a) min_sups in
  let all_dead = ref false in
  List.map
    (fun min_sup ->
      let all =
        if !all_dead || min_sup < skip_all_below then None
        else begin
          let run = Exp_common.run_gsgrow ~timeout_s idx ~min_sup in
          if run.Exp_common.timed_out then all_dead := true;
          Some run
        end
      in
      let closed = Exp_common.run_clogsgrow ~timeout_s:(4. *. timeout_s) idx ~min_sup in
      { x = min_sup; all; closed })
    min_sups

let fig2 ?(scale = 0.1) ?timeout_s () =
  let db = Exp_common.quest_d5c20n10s20 ~scale () in
  let rows = min_sup_sweep ?timeout_s db ~min_sups:[ 3; 4; 5; 6; 8; 10; 15; 20 ] in
  (rows, Printf.sprintf "D5C20N10S20 (scale %.2f)" scale)

let fig3 ?(scale = 0.1) ?timeout_s () =
  let db = Exp_common.gazelle_like ~scale () in
  let rows = min_sup_sweep ?timeout_s db ~min_sups:[ 8; 10; 15; 20; 30; 50; 65 ] in
  (rows, Printf.sprintf "Gazelle-like (scale %.2f)" scale)

let fig4 ?(scale = 0.25) ?timeout_s () =
  let db = Exp_common.tcas_like ~scale () in
  let rows =
    min_sup_sweep ?timeout_s db
      ~min_sups:[ 20; 50; 100; 200; 400; 600; 800; 886 ]
  in
  (rows, Printf.sprintf "TCAS-like (scale %.2f)" scale)

let quest ~d ~c ~s ?(n = 10000) ?(seed = 42) () =
  Rgs_datagen.Quest_gen.generate (Rgs_datagen.Quest_gen.params ~d ~c ~n ~s ~seed ())

let fixed_min_sup_sweep ?(timeout_s = 20.) ~min_sup dbs =
  let all_dead = ref false in
  List.map
    (fun (x, db) ->
      let idx = Inverted_index.build db in
      let all =
        if !all_dead then None
        else begin
          let run = Exp_common.run_gsgrow ~timeout_s idx ~min_sup in
          if run.Exp_common.timed_out then all_dead := true;
          Some run
        end
      in
      let closed = Exp_common.run_clogsgrow ~timeout_s:(4. *. timeout_s) idx ~min_sup in
      { x; all; closed })
    dbs

let fig5 ?(scale = 0.1) ?timeout_s () =
  let dbs =
    List.map
      (fun d_thousands ->
        let d = max 1 (int_of_float (float_of_int (d_thousands * 1000) *. scale)) in
        (d_thousands * 1000, quest ~d ~c:50 ~s:50 ()))
      [ 5; 10; 15; 20; 25 ]
  in
  (fixed_min_sup_sweep ?timeout_s ~min_sup:20 dbs,
   Printf.sprintf "N10 C=S=50 min_sup=20, varying D (scale %.2f)" scale)

let fig6 ?(scale = 0.1) ?timeout_s () =
  let d = max 1 (int_of_float (10000. *. scale)) in
  let dbs = List.map (fun len -> (len, quest ~d ~c:len ~s:len ())) [ 20; 40; 60; 80; 100 ] in
  (fixed_min_sup_sweep ?timeout_s ~min_sup:20 dbs,
   Printf.sprintf "D10 N10 min_sup=20, varying C=S (scale %.2f)" scale)

let charts rows =
  let ticks f = List.map (fun r -> (string_of_int r.x, f r)) rows in
  let all f = ticks (fun r -> Option.map f r.all) in
  let closed f = ticks (fun r -> Some (f r.closed)) in
  let time (r : Exp_common.run) = r.Exp_common.elapsed_s in
  let patterns (r : Exp_common.run) = float_of_int r.Exp_common.patterns in
  Rgs_post.Ascii_chart.render ~title:"(a) runtime [s]"
    [
      { Rgs_post.Ascii_chart.label = "All"; points = all time };
      { Rgs_post.Ascii_chart.label = "Closed"; points = closed time };
    ]
  ^ "\n"
  ^ Rgs_post.Ascii_chart.render ~title:"(b) patterns"
      [
        { Rgs_post.Ascii_chart.label = "All"; points = all patterns };
        { Rgs_post.Ascii_chart.label = "Closed"; points = closed patterns };
      ]

let report ~x_label rows =
  let t =
    Rgs_post.Report.create
      ~columns:
        [ x_label; "all_time_s"; "all_patterns"; "closed_time_s"; "closed_patterns" ]
  in
  List.iter
    (fun { x; all; closed } ->
      let all_time, all_patterns =
        match all with
        | None -> ("-", "-")
        | Some r ->
          ( Rgs_post.Report.cell_float r.Exp_common.elapsed_s
            ^ (if r.Exp_common.timed_out then "+" else ""),
            string_of_int r.Exp_common.patterns
            ^ if r.Exp_common.timed_out then "+" else "" )
      in
      Rgs_post.Report.add_row t
        [
          string_of_int x;
          all_time;
          all_patterns;
          Rgs_post.Report.cell_float closed.Exp_common.elapsed_s
          ^ (if closed.Exp_common.timed_out then "+" else "");
          string_of_int closed.Exp_common.patterns
          ^ (if closed.Exp_common.timed_out then "+" else "");
        ])
    rows;
  t
