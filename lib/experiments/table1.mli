(** Table I reproduction: the support of patterns [AB] and [CD] from
    Example 1.1 ([S1 = AABCDABB], [S2 = ABCD]) under each related-work
    semantics and under the paper's repetitive support. *)

val rows : unit -> (string * int * int) list
(** [(semantics, sup AB, sup CD)] rows, in the paper's order. *)

val report : unit -> Rgs_post.Report.t
(** The rows as a printable table. *)

val expected : (string * int * int) list
(** The values the paper's Section I / Related Work discussion states:
    sequential = (2, 2); episodes width-4 windows = (4+1, ...); etc. Used
    by the test suite; see the implementation for the exact provenance of
    each number. *)
