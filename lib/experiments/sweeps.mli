(** The performance-study sweeps of Section IV-A (Figures 2-6).

    Each function returns a printable table with one row per X-axis point,
    reporting GSgrow ("All") and CloGSgrow ("Closed") runtime and pattern
    counts — the two curves of each figure's (a) and (b) plots. GSgrow runs
    are skipped below a cut-off (time budget), mirroring the paper's
    "points directly after ... correspond to the cut-off points, where
    GSgrow takes too long". *)

open Rgs_sequence

type row = {
  x : int;  (** the varied parameter (min_sup, D, or average length) *)
  all : Exp_common.run option;  (** [None] when skipped beyond the cut-off *)
  closed : Exp_common.run;
}

val min_sup_sweep :
  ?timeout_s:float ->
  ?skip_all_below:int ->
  Seqdb.t ->
  min_sups:int list ->
  row list
(** Figures 2-4: vary [min_sup] on a fixed database. GSgrow is skipped for
    thresholds below [skip_all_below] (default 0 = never skipped a
    priori; the time budget still applies). *)

val fig2 : ?scale:float -> ?timeout_s:float -> unit -> row list * string
(** D5C20N10S20 (scaled); returns rows and the dataset label. Default
    [scale] 0.1 keeps the full harness in minutes; pass 1.0 for paper
    size. *)

val fig3 : ?scale:float -> ?timeout_s:float -> unit -> row list * string
(** Gazelle-like. *)

val fig4 : ?scale:float -> ?timeout_s:float -> unit -> row list * string
(** TCAS-like, sweeping down to very low thresholds for Closed. *)

val fig5 : ?scale:float -> ?timeout_s:float -> unit -> row list * string
(** Vary the number of sequences D (5K..25K scaled), N=10K, C=S=50,
    min_sup=20. *)

val fig6 : ?scale:float -> ?timeout_s:float -> unit -> row list * string
(** Vary the average sequence length C=S in 20..100, D=10K scaled, N=10K,
    min_sup=20. *)

val report : x_label:string -> row list -> Rgs_post.Report.t
(** Rows as a printable table; timed-out cells carry a [+] suffix and
    skipped GSgrow runs show [-]. *)

val charts : row list -> string
(** The figure's two panels as ASCII log-scale bar charts: (a) runtime and
    (b) number of patterns, All vs Closed — the textual analogue of the
    paper's plots. *)
