(** Sequential-miner runtime comparison (Section IV-A prose): GSgrow /
    CloGSgrow vs PrefixSpan, CloSpan and BIDE on the three datasets.

    The comparison is indicative only — the baselines solve an easier
    problem (sequence-count support, no within-sequence repetition). *)

open Rgs_sequence

type entry = {
  miner : string;
  elapsed_s : float;
  patterns : int;
  timed_out : bool;
}

val compare_all :
  ?timeout_s:float -> ?max_length:int -> Seqdb.t -> min_sup:int -> entry list
(** Runs the five miners with the same threshold. [max_length] bounds
    pattern length for every miner (useful on dense data where the
    baselines explode). *)

val report : entry list -> Rgs_post.Report.t
(** The entries as a printable table. *)
