(** The JBoss case study (Section IV-B): mine closed repetitive patterns
    from transaction-component traces at [min_sup = 18], post-process
    (density > 40%, maximality, rank by length), and inspect the longest
    pattern and the lock/unlock micro-pattern. *)

type outcome = {
  traces : int;
  distinct_events : int;
  avg_trace_len : float;
  max_trace_len : int;
  mining_time_s : float;
  closed_patterns : int;
  truncated : bool;
  after_postprocessing : int;
  longest_length : int;
  longest_support : int;
  longest_events : string list;  (** event names of the longest kept pattern *)
  blocks_touched : string list;  (** life-cycle blocks the longest pattern spans *)
  lock_unlock_support : int;
  lock_unlock_iterative : int;  (** same 2-event behaviour under QRE counting *)
}

val run : ?min_sup:int -> ?max_patterns:int -> ?seed:int -> unit -> outcome
(** Defaults: [min_sup = 18] (the paper's), [max_patterns = 100_000]. *)

val report : outcome -> Rgs_post.Report.t
(** The outcome as a printable metric/value table. *)

val pp : Format.formatter -> outcome -> unit
