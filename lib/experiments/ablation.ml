open Rgs_sequence

type entry = {
  variant : string;
  elapsed_s : float;
  patterns : int;
  timed_out : bool;
}

let run ?(timeout_s = 60.) db ~min_sup =
  let idx = Inverted_index.build db in
  let entry variant (r : Exp_common.run) =
    {
      variant;
      elapsed_s = r.Exp_common.elapsed_s;
      patterns = r.Exp_common.patterns;
      timed_out = r.Exp_common.timed_out;
    }
  in
  (* Post-hoc alternative: mine everything with GSgrow, then filter
     non-closed patterns; only correct when GSgrow finished. *)
  let post_filter_entry =
    let start = Unix.gettimeofday () in
    let calls = ref 0 in
    let should_stop () =
      incr calls;
      !calls land 0x3F = 0 && Unix.gettimeofday () -. start > timeout_s
    in
    let results, stats = Rgs_core.Gsgrow.mine ~should_stop idx ~min_sup in
    let closed =
      if stats.Rgs_core.Gsgrow.truncated then [] else Rgs_post.Filters.closed_filter results
    in
    {
      variant = "GSgrow + post-hoc closed filter";
      elapsed_s = Unix.gettimeofday () -. start;
      patterns = List.length closed;
      timed_out = stats.Rgs_core.Gsgrow.truncated;
    }
  in
  (* Levelwise baseline: same output as GSgrow but recomputing supports
     with supComp instead of growing instances — ablates instance growth
     itself. *)
  let levelwise_entry =
    let start = Unix.gettimeofday () in
    let calls = ref 0 in
    let should_stop () =
      incr calls;
      !calls land 0x3F = 0 && Unix.gettimeofday () -. start > timeout_s
    in
    let results, stats = Rgs_baselines.Levelwise.mine ~should_stop idx ~min_sup in
    {
      variant = "Levelwise Apriori (supComp per candidate)";
      elapsed_s = Unix.gettimeofday () -. start;
      patterns = List.length results;
      timed_out = stats.Rgs_baselines.Levelwise.truncated;
    }
  in
  [
    entry "CloGSgrow (CCheck + LBCheck)"
      (Exp_common.run_clogsgrow ~timeout_s idx ~min_sup);
    entry "CloGSgrow, no LBCheck (CCheck only)"
      (Exp_common.run_clogsgrow ~timeout_s ~use_lb_check:false idx ~min_sup);
    entry "GSgrow (no checks, all patterns)"
      (Exp_common.run_gsgrow ~timeout_s idx ~min_sup);
    post_filter_entry;
    levelwise_entry;
  ]

let report entries =
  let t = Rgs_post.Report.create ~columns:[ "variant"; "time_s"; "patterns" ] in
  List.iter
    (fun e ->
      Rgs_post.Report.add_row t
        [
          e.variant;
          Rgs_post.Report.cell_float e.elapsed_s ^ (if e.timed_out then "+" else "");
          string_of_int e.patterns ^ (if e.timed_out then "+" else "");
        ])
    entries;
  t
