open Rgs_core
open Rgs_datagen

type run = {
  elapsed_s : float;
  patterns : int;
  timed_out : bool;
}

(* Ambient trace for the experiment drivers: the sweeps thread dozens of
   timed runs through here, so the CLI sets one trace for the whole
   invocation instead of threading ?trace through every sweep signature. *)
let ambient_trace = ref Rgs_sequence.Trace.null
let set_trace t = ambient_trace := t
let trace () = !ambient_trace

(* Polling gettimeofday at every DFS node is measurable; check every 64th
   call. *)
let deadline_checker ?timeout_s start =
  match timeout_s with
  | None -> fun () -> false
  | Some budget ->
    let calls = ref 0 in
    fun () ->
      incr calls;
      !calls land 0x3F = 0 && Unix.gettimeofday () -. start > budget

let run_gsgrow ?timeout_s ?max_length idx ~min_sup =
  let start = Unix.gettimeofday () in
  let count = ref 0 in
  let should_stop = deadline_checker ?timeout_s start in
  let stats =
    Gsgrow.iter ?max_length ~should_stop ~trace:(trace ()) idx ~min_sup
      ~f:(fun _ -> incr count)
  in
  {
    elapsed_s = Unix.gettimeofday () -. start;
    patterns = !count;
    timed_out = stats.Gsgrow.truncated;
  }

let run_clogsgrow ?timeout_s ?max_length ?use_lb_check ?use_c_check idx ~min_sup =
  let start = Unix.gettimeofday () in
  let count = ref 0 in
  let should_stop = deadline_checker ?timeout_s start in
  let stats =
    Clogsgrow.iter ?max_length ?use_lb_check ?use_c_check ~should_stop
      ~trace:(trace ()) idx ~min_sup ~f:(fun _ -> incr count)
  in
  {
    elapsed_s = Unix.gettimeofday () -. start;
    patterns = !count;
    timed_out = stats.Clogsgrow.truncated;
  }

let time f =
  let start = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. start)

let pp_run ppf r =
  Format.fprintf ppf "%.3fs / %d patterns%s" r.elapsed_s r.patterns
    (if r.timed_out then " (timeout)" else "")

let quest_d5c20n10s20 ?(scale = 1.0) ?(seed = 42) () =
  Quest_gen.generate
    (Quest_gen.params ~d:(max 1 (int_of_float (5000. *. scale))) ~c:20 ~n:10000
       ~s:20 ~seed ())

let gazelle_like ?(scale = 1.0) ?(seed = 42) () =
  Clickstream_gen.generate (Clickstream_gen.gazelle_like ~scale ~seed ())

let tcas_like ?(scale = 1.0) ?(seed = 42) () =
  Trace_gen.generate (Trace_gen.tcas_like ~scale ~seed ())

let jboss_like ?(seed = 42) () = Jboss_gen.generate (Jboss_gen.params ~seed ())
