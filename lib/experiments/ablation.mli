(** Ablation of CloGSgrow's two checking strategies (DESIGN.md: "our
    closed-pattern mining algorithm is sped up significantly with these two
    checking strategies"):

    - full CloGSgrow (CCheck + LBCheck),
    - CCheck only (no search-space pruning — Example 3.5's regime),
    - GSgrow baseline (no checks, all patterns),
    - GSgrow followed by a post-hoc closed filter (the
      candidate-maintenance alternative the on-the-fly checks avoid),
    - levelwise Apriori with supComp per candidate (ablates instance
      growth itself). *)

open Rgs_sequence

type entry = {
  variant : string;
  elapsed_s : float;
  patterns : int;
  timed_out : bool;
}

val run : ?timeout_s:float -> Seqdb.t -> min_sup:int -> entry list
(** Runs the five variants with a shared per-run budget (default 60 s). *)

val report : entry list -> Rgs_post.Report.t
(** The entries as a printable table. *)
