open Rgs_sequence
open Rgs_core
open Rgs_datagen

type outcome = {
  traces : int;
  distinct_events : int;
  avg_trace_len : float;
  max_trace_len : int;
  mining_time_s : float;
  closed_patterns : int;
  truncated : bool;
  after_postprocessing : int;
  longest_length : int;
  longest_support : int;
  longest_events : string list;
  blocks_touched : string list;
  lock_unlock_support : int;
  lock_unlock_iterative : int;
}

let run ?(min_sup = 18) ?(max_patterns = 100_000) ?(seed = 42) () =
  let db, codec = Jboss_gen.generate (Jboss_gen.params ~seed ()) in
  let stats = Seqdb.stats db in
  let report =
    Miner.mine ~trace:(Exp_common.trace ())
      ~config:(Miner.config ~mode:Miner.Closed ~min_sup ~max_patterns ())
      db
  in
  let kept = Rgs_post.Filters.case_study_pipeline report.Miner.results in
  let longest_length, longest_support, longest_events, blocks_touched =
    match kept with
    | [] -> (0, 0, [], [])
    | longest :: _ ->
      let events = Pattern.to_list longest.Mined.pattern in
      let names = List.map (Codec.name codec) events in
      let touched =
        List.filter
          (fun (_, block_events) ->
            List.exists
              (fun n ->
                match Codec.find codec n with
                | Some e -> List.mem e events
                | None -> false)
              block_events)
          Jboss_gen.blocks
      in
      ( Pattern.length longest.Mined.pattern,
        longest.Mined.support,
        names,
        List.map fst touched )
  in
  let lock = Option.get (Codec.find codec "TransImpl.lock") in
  let unlock = Option.get (Codec.find codec "TransImpl.unlock") in
  let lock_unlock = Pattern.of_list [ lock; unlock ] in
  {
    traces = stats.Seqdb.num_sequences;
    distinct_events = stats.Seqdb.num_events;
    avg_trace_len = stats.Seqdb.avg_length;
    max_trace_len = stats.Seqdb.max_length;
    mining_time_s = report.Miner.elapsed_s;
    closed_patterns = List.length report.Miner.results;
    truncated = report.Miner.truncated;
    after_postprocessing = List.length kept;
    longest_length;
    longest_support;
    longest_events;
    blocks_touched;
    lock_unlock_support = Miner.support db lock_unlock;
    lock_unlock_iterative = Rgs_baselines.Iterative.db_support db lock_unlock;
  }

let report o =
  let t = Rgs_post.Report.create ~columns:[ "metric"; "value" ] in
  let add name v = Rgs_post.Report.add_row t [ name; v ] in
  add "traces" (string_of_int o.traces);
  add "distinct events" (string_of_int o.distinct_events);
  add "avg / max trace length"
    (Printf.sprintf "%.1f / %d" o.avg_trace_len o.max_trace_len);
  add "mining time (s)" (Rgs_post.Report.cell_float o.mining_time_s);
  add "closed patterns (min_sup=18)"
    (string_of_int o.closed_patterns ^ if o.truncated then "+" else "");
  add "after density+maximality" (string_of_int o.after_postprocessing);
  add "longest pattern length" (string_of_int o.longest_length);
  add "longest pattern support" (string_of_int o.longest_support);
  add "blocks touched by longest" (String.concat " -> " o.blocks_touched);
  add "sup(lock -> unlock)" (string_of_int o.lock_unlock_support);
  add "iterative occurrences of lock->unlock" (string_of_int o.lock_unlock_iterative);
  t

let pp ppf o = Format.pp_print_string ppf (Rgs_post.Report.to_string (report o))
