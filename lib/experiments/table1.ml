open Rgs_sequence
open Rgs_core
open Rgs_baselines

let db () = Seqdb.of_strings [ "AABCDABB"; "ABCD" ]
let ab = Pattern.of_string "AB"
let cd = Pattern.of_string "CD"

let rows () =
  let db = db () in
  let idx = Inverted_index.build db in
  let both f = (f ab, f cd) in
  let make name f =
    let a, c = both f in
    (name, a, c)
  in
  [
    make "sequential (Agrawal & Srikant)" (Seq_mining.support db);
    make "episodes, width-4 windows (Mannila et al.)" (Episode.db_window_support db ~w:4);
    make "episodes, minimal windows (Mannila et al.)" (Episode.db_minimal_window_support db);
    make "gap requirement 0..3 (Zhang et al.)" (Gap_occurrences.db_count db ~gmin:0 ~gmax:3);
    make "interaction patterns (El-Ramly et al.)" (Interaction.db_support db);
    make "iterative patterns (Lo et al.)" (Iterative.db_support db);
    make "repetitive support (this paper)" (Sup_comp.support idx);
  ]

(* Provenance of the expected values (all from Section I and Related Work):
   - sequential: "both patterns AB and CD have support 2";
   - width-4 windows: "serial episode AB has support 4 in S1" — S2 = ABCD
     contributes its single width-4 window, so the database-wide sum is 5;
     CD: S1 windows containing CD are [2,5],[4,7]... C@4,D@5: windows
     [2,5],[3,6],[4,7],[5,8]? CD needs C then D: C@4, D@5 -> windows
     containing positions 4,5 in order: [2,5],[3,6],[4,7] -> 3; plus S2's
     [1,4]: C@3,D@4 -> 1. Total 4. (The paper only quotes the AB/S1 value;
     the others follow from the definition.)
   - minimal windows: "the support of AB is 2" in S1, plus 1 in S2 = 3;
     CD has one minimal window per sequence = 2;
   - gap requirement: "pattern AB has support 4 in S1" plus 1 occurrence
     with gap 0 in S2 = 5; CD: C@4-D@5 in S1 (gap 0) and C@3-D@4 in S2 = 2;
   - interaction patterns: "AB has support 9, with 8 substrings in S1";
     CD: substring (4,5) of S1 and (3,4) of S2 = 2;
   - iterative patterns: "pattern AB has support 3"; CD: one occurrence
     per sequence = 2;
   - repetitive support: "sup(AB) = 4, and sup(CD) = 2" (Example 1.1). *)
let expected =
  [
    ("sequential (Agrawal & Srikant)", 2, 2);
    ("episodes, width-4 windows (Mannila et al.)", 5, 4);
    ("episodes, minimal windows (Mannila et al.)", 3, 2);
    ("gap requirement 0..3 (Zhang et al.)", 5, 2);
    ("interaction patterns (El-Ramly et al.)", 9, 2);
    ("iterative patterns (Lo et al.)", 3, 2);
    ("repetitive support (this paper)", 4, 2);
  ]

let report () =
  let t = Rgs_post.Report.create ~columns:[ "semantics"; "sup(AB)"; "sup(CD)" ] in
  List.iter (fun (name, a, c) -> Rgs_post.Report.add_int_row t name [ a; c ]) (rows ());
  t
