open Rgs_sequence
open Rgs_baselines

type entry = {
  miner : string;
  elapsed_s : float;
  patterns : int;
  timed_out : bool;
}

let compare_all ?(timeout_s = 30.) ?max_length db ~min_sup =
  let idx = Inverted_index.build db in
  let gs = Exp_common.run_gsgrow ~timeout_s ?max_length idx ~min_sup in
  let clo = Exp_common.run_clogsgrow ~timeout_s ?max_length idx ~min_sup in
  let timed name f =
    (* The classic miners have no timeout hook; they are simply measured.
       Keep inputs modest. *)
    let (results : int), elapsed = Exp_common.time f in
    { miner = name; elapsed_s = elapsed; patterns = results; timed_out = false }
  in
  [
    {
      miner = "GSgrow (all, repetitive)";
      elapsed_s = gs.Exp_common.elapsed_s;
      patterns = gs.Exp_common.patterns;
      timed_out = gs.Exp_common.timed_out;
    };
    {
      miner = "CloGSgrow (closed, repetitive)";
      elapsed_s = clo.Exp_common.elapsed_s;
      patterns = clo.Exp_common.patterns;
      timed_out = clo.Exp_common.timed_out;
    };
    timed "PrefixSpan (all, sequential)" (fun () ->
        let results, _ = Prefixspan.mine ?max_length db ~min_sup in
        List.length results);
    timed "CloSpan (closed, sequential)" (fun () ->
        let results, _ = Clospan.mine ?max_length db ~min_sup in
        List.length results);
    timed "BIDE (closed, sequential)" (fun () ->
        let results, _ = Bide.mine ?max_length db ~min_sup in
        List.length results);
  ]

let report entries =
  let t = Rgs_post.Report.create ~columns:[ "miner"; "time_s"; "patterns" ] in
  List.iter
    (fun e ->
      Rgs_post.Report.add_row t
        [
          e.miner;
          Rgs_post.Report.cell_float e.elapsed_s ^ (if e.timed_out then "+" else "");
          string_of_int e.patterns ^ (if e.timed_out then "+" else "");
        ])
    entries;
  t
