type series = {
  label : string;
  points : (string * float option) list;
}

let render ?(width = 24) ?(log_scale = true) ~title series =
  (match series with
  | [] -> ()
  | first :: rest ->
    let ticks s = List.map fst s.points in
    if List.exists (fun s -> ticks s <> ticks first) rest then
      invalid_arg "Ascii_chart.render: series have inconsistent ticks");
  let scale v = if log_scale then log10 (1. +. v) else v in
  let max_scaled =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc (_, v) ->
            match v with Some v -> Float.max acc (scale v) | None -> acc)
          acc s.points)
      0. series
  in
  let bar v =
    match v with
    | None -> ""
    | Some v ->
      let n =
        if max_scaled <= 0. then 0
        else int_of_float (Float.round (scale v /. max_scaled *. float_of_int width))
      in
      String.make (max n (if v > 0. then 1 else 0)) '#'
  in
  let ticks = match series with [] -> [] | s :: _ -> List.map fst s.points in
  let tick_width =
    List.fold_left (fun w t -> max w (String.length t)) 4 ticks
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf title;
  if log_scale then Buffer.add_string buf " (log scale)";
  Buffer.add_char buf '\n';
  (* header *)
  Buffer.add_string buf (Printf.sprintf "%-*s" (tick_width + 2) "");
  List.iter (fun s -> Buffer.add_string buf (Printf.sprintf "%-*s" (width + 2) s.label)) series;
  Buffer.add_char buf '\n';
  List.iteri
    (fun row tick ->
      Buffer.add_string buf (Printf.sprintf "%-*s" (tick_width + 2) tick);
      List.iter
        (fun s ->
          let _, v = List.nth s.points row in
          Buffer.add_string buf (Printf.sprintf "%-*s" (width + 2) (bar v)))
        series;
      Buffer.add_char buf '\n')
    ticks;
  Buffer.contents buf
