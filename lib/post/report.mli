(** Plain-text result tables for benches, the CLI and examples. *)

type t
(** A table under construction. *)

val create : columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width differs from the header. *)

val add_int_row : t -> string -> int list -> unit
(** Label in the first column, integers after. *)

val to_string : t -> string
(** Renders with aligned columns:
    {v
    | min_sup | runtime_s | patterns |
    |---------|-----------|----------|
    |      10 |     0.123 |     4521 |
    v} *)

val print : t -> unit
(** [to_string] to stdout. *)

val cell_float : float -> string
(** Fixed 3-decimal rendering used for runtimes. *)

val cell_int : int -> string
