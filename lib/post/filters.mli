(** Post-processing of mined pattern sets — the case-study pipeline of
    Section IV-B, adapted from Lo et al.:

    + {b density}: keep patterns whose number of distinct events exceeds a
      fraction of their length (the paper uses 40%);
    + {b maximality}: keep only patterns not contained in a longer reported
      pattern;
    + {b ranking}: order by decreasing length. *)

open Rgs_core

val density : Pattern.t -> float
(** distinct events / length; [0] for the empty pattern. *)

val density_filter : min_density:float -> Mined.t list -> Mined.t list
(** Keeps results with [density > min_density] (strict, as in "the number
    of unique events is >40% of its length"). *)

val maximal_filter : Mined.t list -> Mined.t list
(** Keeps results whose pattern is not a proper sub-pattern of another
    result's pattern (supports are ignored, as in the case study). *)

val rank_by_length : Mined.t list -> Mined.t list
(** Sorts by decreasing length (ties: decreasing support, then
    lexicographic). *)

val case_study_pipeline :
  ?min_density:float -> Mined.t list -> Mined.t list
(** Density (default 0.4) → maximality → ranking, exactly the three steps
    of Section IV-B. *)

val closed_filter : Mined.t list -> Mined.t list
(** Keeps results with no proper super-pattern of {e equal support} in the
    list: applied to a complete frequent set (GSgrow output), this yields
    exactly the closed patterns. The post-hoc alternative to CloGSgrow's
    on-the-fly checking, used as an ablation baseline. *)
