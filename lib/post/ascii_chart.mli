(** Minimal ASCII charts for the bench harness.

    The paper's figures are log-scale plots; the harness prints tables plus
    these bar renderings so trends (cut-offs, orders of magnitude) are
    visible at a glance in plain text output. *)

type series = {
  label : string;
  points : (string * float option) list;
      (** [(x tick, value)]; [None] renders as a blank (skipped run) *)
}

val render : ?width:int -> ?log_scale:bool -> title:string -> series list -> string
(** Renders the series side by side, one row per x tick:
    {v
    runtime (log scale)
    min_sup  All                  Closed
    200      ######----           ##
    100                           ###
    v}
    Bars are scaled to [width] (default 24) columns against the maximum
    value across all series; with [log_scale] (default true) the bar
    length is proportional to [log10 (1 + value)]. Ticks must agree across
    series (missing ticks are blank).
    @raise Invalid_argument when series have inconsistent tick lists. *)
