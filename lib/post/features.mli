(** Pattern-based sequence features — the paper's first future-work item
    (Section V): "our algorithms find all frequent repetitive patterns and
    report their supports in each sequence as feature values; a future work
    is to select discriminative ones for classification".

    This module turns mined patterns into per-sequence feature vectors
    (instance counts from the leftmost support sets), scores patterns for
    discriminativeness between two labelled groups, and provides a
    nearest-centroid classifier for the demonstration example. *)

open Rgs_core

type matrix = {
  patterns : Pattern.t array;  (** column j describes patterns.(j) *)
  counts : int array array;  (** [counts.(i).(j)]: instances of pattern [j] in sequence [i+1] *)
}

val feature_matrix : num_sequences:int -> Mined.t list -> matrix
(** Feature values straight from the miners' support sets — no re-scan of
    the database. *)

val discriminative_scores : matrix -> labels:bool array -> (Pattern.t * float) array
(** Scores each pattern by the absolute difference of its mean feature
    value between the [true] and [false] groups, descending. A pattern
    repeating often in one group and rarely in the other — the paper's
    [AB] vs [CD] customers — scores high.
    @raise Invalid_argument when [labels] length differs from the matrix
    height or one group is empty. *)

val select_top : int -> (Pattern.t * float) array -> Pattern.t list
(** The [k] best-scoring patterns. *)

val discriminative_indices : matrix -> labels:bool array -> (int * float) array
(** As {!discriminative_scores} but yielding column indices, for use with
    {!project}. *)

val project : matrix -> columns:int array -> matrix
(** Restricts the matrix to the given columns (in the given order) —
    typically the best discriminators, so the classifier is not diluted by
    uninformative patterns. *)

type centroid_model

val train_nearest_centroid : matrix -> labels:bool array -> centroid_model
(** Per-class mean vectors over the full feature matrix. *)

val classify : centroid_model -> int array -> bool
(** Classifies a feature vector (same column order as the training
    matrix) by the closer centroid (Euclidean). *)

val features_of_sequence :
  Rgs_sequence.Seqdb.t -> patterns:Pattern.t array -> int -> int array
(** Recomputes the feature vector of one sequence (1-based index) by
    running supComp on the singleton database — for classifying unseen
    sequences. *)
