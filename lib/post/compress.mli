(** δ-compression of a mined pattern set: cluster the closed patterns
    under a support-distance tolerance and report one representative per
    cluster (after Xin et al.'s pattern-compression framing, adapted to
    repetitive support).

    A pattern [P] is {e δ-covered} by a representative [R] when [P ⊑ R]
    (so [R] preserves all of [P]'s structure) and [R] retains at least a
    [(1 - δ)] fraction of [P]'s repetitive support:
    [sup(P) - sup(R) <= δ · sup(P)]. With [δ = 0] only equal-support
    supersequences absorb (exactly the redundancy closure already
    removes); with [δ = 1] any supersequence in the set absorbs.

    {!delta_cover} runs a greedy set cover — each round promotes the
    uncovered pattern absorbing the most uncovered patterns — which is
    the standard [ln n]-approximation of the (NP-hard) minimum cover.
    Cost is [O(n²)] containment tests per round; this is a post-mining
    pass over an already-compressed (closed) answer, not a hot path. *)

open Rgs_core

type cover = {
  representative : Mined.t;  (** the reported pattern *)
  covered : Mined.t list;
      (** patterns absorbed into it (the representative itself excluded),
          in the module's length-descending candidate order *)
}

val delta_cover : delta:float -> Mined.t list -> cover list
(** [delta_cover ~delta results] greedily partitions [results] into
    δ-cover clusters, in selection order (largest cluster first; ties
    break toward longer representatives, deterministically). Every input
    pattern lands in exactly one cluster. Sets the [query_delta_reps]
    gauge and bumps [query_delta_covered] by the number of absorbed
    patterns.
    @raise Invalid_argument unless [0 <= delta <= 1]. *)

val representatives : cover list -> Mined.t list
(** Just the representatives, in cluster order. *)
