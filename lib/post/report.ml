type t = {
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~columns = { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Report.add_row: row width mismatch";
  t.rows <- row :: t.rows

let cell_float x = Printf.sprintf "%.3f" x
let cell_int = string_of_int

let add_int_row t label ints = add_row t (label :: List.map cell_int ints)

let to_string t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length header) rows)
      t.columns
  in
  let buf = Buffer.create 256 in
  let render_line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Buffer.add_string buf (Printf.sprintf " %*s |" w cell))
      cells;
    Buffer.add_char buf '\n'
  in
  render_line t.columns;
  Buffer.add_char buf '|';
  List.iter (fun w -> Buffer.add_string buf (String.make (w + 2) '-'); Buffer.add_char buf '|') widths;
  Buffer.add_char buf '\n';
  List.iter render_line rows;
  Buffer.contents buf

let print t = print_string (to_string t)
