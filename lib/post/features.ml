open Rgs_core

type matrix = {
  patterns : Pattern.t array;
  counts : int array array;
}

let feature_matrix ~num_sequences results =
  let patterns = Array.of_list (List.map (fun r -> r.Mined.pattern) results) in
  let counts = Array.make_matrix num_sequences (Array.length patterns) 0 in
  List.iteri
    (fun j r ->
      List.iter
        (fun (i, c) -> counts.(i - 1).(j) <- c)
        (Support_set.per_sequence_counts r.Mined.support_set))
    results;
  { patterns; counts }

let group_means m ~labels =
  let rows = Array.length m.counts in
  if Array.length labels <> rows then
    invalid_arg "Features: labels length must match the number of sequences";
  let cols = Array.length m.patterns in
  let sum = [| Array.make cols 0.; Array.make cols 0. |] in
  let n = [| 0; 0 |] in
  Array.iteri
    (fun i row ->
      let g = if labels.(i) then 1 else 0 in
      n.(g) <- n.(g) + 1;
      Array.iteri (fun j v -> sum.(g).(j) <- sum.(g).(j) +. float_of_int v) row)
    m.counts;
  if n.(0) = 0 || n.(1) = 0 then invalid_arg "Features: both groups must be non-empty";
  Array.iteri (fun g s -> Array.iteri (fun j v -> s.(j) <- v /. float_of_int n.(g)) s) sum;
  sum

let discriminative_scores m ~labels =
  let means = group_means m ~labels in
  let scored =
    Array.mapi
      (fun j p -> (p, Float.abs (means.(1).(j) -. means.(0).(j))))
      m.patterns
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) scored;
  scored

let select_top k scored =
  Array.to_list scored
  |> List.filteri (fun i _ -> i < k)
  |> List.map fst

let discriminative_indices m ~labels =
  let means = group_means m ~labels in
  let scored =
    Array.mapi (fun j _ -> (j, Float.abs (means.(1).(j) -. means.(0).(j)))) m.patterns
  in
  Array.sort (fun (_, a) (_, b) -> Float.compare b a) scored;
  scored

let project m ~columns =
  {
    patterns = Array.map (fun j -> m.patterns.(j)) columns;
    counts = Array.map (fun row -> Array.map (fun j -> row.(j)) columns) m.counts;
  }

type centroid_model = {
  centroids : float array array; (* standardized; (0) = false class, (1) = true *)
  mean : float array;
  std : float array;
}

(* Features are z-scored before computing centroids and distances —
   without this, high-variance columns (e.g. loop-iteration counts) drown
   low-variance but informative ones (e.g. a sometimes-skipped block). *)
let train_nearest_centroid m ~labels =
  let rows = Array.length m.counts in
  let cols = Array.length m.patterns in
  let mean = Array.make cols 0. in
  let std = Array.make cols 0. in
  Array.iter (fun row -> Array.iteri (fun j v -> mean.(j) <- mean.(j) +. float_of_int v) row) m.counts;
  Array.iteri (fun j s -> mean.(j) <- s /. float_of_int (max rows 1)) mean;
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v ->
          let d = float_of_int v -. mean.(j) in
          std.(j) <- std.(j) +. (d *. d))
        row)
    m.counts;
  Array.iteri
    (fun j s ->
      let v = sqrt (s /. float_of_int (max rows 1)) in
      std.(j) <- (if v > 1e-9 then v else 1.))
    std;
  let z row = Array.mapi (fun j v -> (float_of_int v -. mean.(j)) /. std.(j)) row in
  let sum = [| Array.make cols 0.; Array.make cols 0. |] in
  let n = [| 0; 0 |] in
  Array.iteri
    (fun i row ->
      let g = if labels.(i) then 1 else 0 in
      n.(g) <- n.(g) + 1;
      Array.iteri (fun j v -> sum.(g).(j) <- sum.(g).(j) +. v) (z row))
    m.counts;
  if n.(0) = 0 || n.(1) = 0 then invalid_arg "Features: both groups must be non-empty";
  Array.iteri (fun g s -> Array.iteri (fun j v -> s.(j) <- v /. float_of_int n.(g)) s) sum;
  { centroids = sum; mean; std }

let classify model v =
  let z = Array.mapi (fun j x -> (float_of_int x -. model.mean.(j)) /. model.std.(j)) v in
  let dist c =
    let acc = ref 0. in
    Array.iteri
      (fun j x ->
        let d = x -. z.(j) in
        acc := !acc +. (d *. d))
      c;
    !acc
  in
  dist model.centroids.(1) < dist model.centroids.(0)

let features_of_sequence db ~patterns i =
  let single = Rgs_sequence.Seqdb.of_sequences [ Rgs_sequence.Seqdb.seq db i ] in
  let idx = Rgs_sequence.Inverted_index.build single in
  Array.map (fun p -> Sup_comp.support idx p) patterns
