open Rgs_core

let density p =
  let len = Pattern.length p in
  if len = 0 then 0.
  else float_of_int (List.length (Pattern.events p)) /. float_of_int len

let density_filter ~min_density results =
  List.filter (fun r -> density r.Mined.pattern > min_density) results

let maximal_filter results =
  let proper_super p q =
    Pattern.length q > Pattern.length p && Pattern.is_subpattern p ~of_:q
  in
  List.filter
    (fun r ->
      not
        (List.exists (fun r' -> proper_super r.Mined.pattern r'.Mined.pattern) results))
    results

let rank_by_length results = List.sort Mined.compare_by_length_desc results

let case_study_pipeline ?(min_density = 0.4) results =
  rank_by_length (maximal_filter (density_filter ~min_density results))

let closed_filter results =
  (* Group by support; within a group, drop patterns contained in a longer
     pattern of the group. *)
  let module IMap = Map.Make (Int) in
  let groups =
    List.fold_left
      (fun acc r ->
        IMap.update r.Mined.support
          (fun l -> Some (r :: Option.value ~default:[] l))
          acc)
      IMap.empty results
  in
  List.filter
    (fun r ->
      not
        (List.exists
           (fun r' ->
             Pattern.length r'.Mined.pattern > Pattern.length r.Mined.pattern
             && Pattern.is_subpattern r.Mined.pattern ~of_:r'.Mined.pattern)
           (IMap.find r.Mined.support groups)))
    results
