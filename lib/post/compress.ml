open Rgs_core

type cover = { representative : Mined.t; covered : Mined.t list }

(* [p] is absorbed by [r] when [r] keeps all of [p]'s structure (P ⊑ R)
   and loses at most a [delta] fraction of its support. Containment makes
   sup(R) <= sup(P) (an instance of R embeds one of P), so the distance
   below is nonnegative for real inputs. *)
let covers ~delta r p =
  float_of_int (p.Mined.support - r.Mined.support)
  <= delta *. float_of_int p.Mined.support
  && Pattern.is_subpattern p.Mined.pattern ~of_:r.Mined.pattern

let popcount w =
  let c = ref 0 in
  let w = ref w in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr c
  done;
  !c

let delta_cover ~delta results =
  if not (delta >= 0. && delta <= 1.) then
    invalid_arg "Compress.delta_cover: delta must be in [0, 1]";
  let order = Array.of_list results in
  (* longest first so greedy ties break toward the patterns most likely to
     absorb others; the order is total, so the output is deterministic *)
  Array.sort Mined.compare_by_length_desc order;
  let n = Array.length order in
  let words = (n + 62) / 63 in
  (* The cover relation, materialised once as n bitset rows: cov.(i) has
     bit j set iff i absorbs j. The support-band test is a float compare,
     so it gates the (much costlier) containment test. *)
  let cov = Array.init n (fun _ -> Array.make words 0) in
  for i = 0 to n - 1 do
    let row = cov.(i) in
    for j = 0 to n - 1 do
      if covers ~delta order.(i) order.(j) then
        row.(j / 63) <- row.(j / 63) lor (1 lsl (j mod 63))
    done
  done;
  let uncovered = Array.make words 0 in
  for j = 0 to n - 1 do
    uncovered.(j / 63) <- uncovered.(j / 63) lor (1 lsl (j mod 63))
  done;
  let remaining = ref n in
  let reps = ref [] in
  while !remaining > 0 do
    (* classic greedy set cover: the uncovered pattern absorbing the most
       uncovered patterns becomes the next representative. Every uncovered
       pattern covers at least itself, so each round makes progress. *)
    let best = ref (-1) in
    let best_count = ref (-1) in
    for i = 0 to n - 1 do
      if uncovered.(i / 63) land (1 lsl (i mod 63)) <> 0 then begin
        let cnt = ref 0 in
        let row = cov.(i) in
        for w = 0 to words - 1 do
          cnt := !cnt + popcount (row.(w) land uncovered.(w))
        done;
        if !cnt > !best_count then begin
          best := i;
          best_count := !cnt
        end
      end
    done;
    if !best_count = 1 then begin
      (* nobody absorbs anybody else: every remaining pattern is its own
         representative, in the same index order the round loop would
         emit them — finishing in one sweep instead of one round each *)
      for i = 0 to n - 1 do
        if uncovered.(i / 63) land (1 lsl (i mod 63)) <> 0 then
          reps := { representative = order.(i); covered = [] } :: !reps
      done;
      Array.fill uncovered 0 words 0;
      remaining := 0
    end
    else begin
      let r = order.(!best) in
      let absorbed = ref [] in
      let row = cov.(!best) in
      for j = n - 1 downto 0 do
        let w = j / 63 and b = 1 lsl (j mod 63) in
        if uncovered.(w) land b <> 0 && row.(w) land b <> 0 then begin
          uncovered.(w) <- uncovered.(w) lxor b;
          if j <> !best then absorbed := order.(j) :: !absorbed
        end
      done;
      remaining := !remaining - !best_count;
      reps := { representative = r; covered = !absorbed } :: !reps
    end
  done;
  let reps = List.rev !reps in
  Metrics.observe_max Metrics.query_delta_reps (List.length reps);
  Metrics.add Metrics.query_delta_covered (n - List.length reps);
  reps

let representatives covers_list =
  List.map (fun c -> c.representative) covers_list
