(** Exporting mined results for downstream tooling (plots, spreadsheets,
    classifiers). *)

open Rgs_sequence
open Rgs_core

val results_to_csv : ?codec:Codec.t -> Mined.t list -> string
(** One row per pattern: [pattern,length,support] (events space-separated,
    named through [codec] when given). Header included; fields containing
    commas or quotes are quoted per RFC 4180. *)

val features_to_csv : ?codec:Codec.t -> Features.matrix -> string
(** One row per sequence, one column per pattern (the per-sequence
    instance counts of Section V's classification proposal). First column
    is the 1-based sequence index. *)

val report_to_csv : Report.t -> string
(** A {!Report.t} table as CSV, for re-plotting experiment sweeps. *)

val save : string -> string -> unit
(** [save path contents] writes a file (convenience). *)
