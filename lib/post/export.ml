open Rgs_sequence
open Rgs_core

let quote field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let row fields = String.concat "," (List.map quote fields) ^ "\n"

let pattern_label ?codec p =
  match codec with
  | Some c ->
    String.concat " " (List.map (Codec.name c) (Pattern.to_list p))
  | None -> Pattern.to_string p

let results_to_csv ?codec results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (row [ "pattern"; "length"; "support" ]);
  List.iter
    (fun r ->
      Buffer.add_string buf
        (row
           [
             pattern_label ?codec r.Mined.pattern;
             string_of_int (Pattern.length r.Mined.pattern);
             string_of_int r.Mined.support;
           ]))
    results;
  Buffer.contents buf

let features_to_csv ?codec (m : Features.matrix) =
  let buf = Buffer.create 1024 in
  let header =
    "sequence"
    :: Array.to_list (Array.map (fun p -> pattern_label ?codec p) m.Features.patterns)
  in
  Buffer.add_string buf (row header);
  Array.iteri
    (fun i counts ->
      Buffer.add_string buf
        (row (string_of_int (i + 1) :: Array.to_list (Array.map string_of_int counts))))
    m.Features.counts;
  Buffer.contents buf

let report_to_csv t =
  (* Re-render the aligned table as CSV by splitting its rows. *)
  let lines = String.split_on_char '\n' (String.trim (Report.to_string t)) in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun k line ->
      if k <> 1 (* skip the |---| separator *) then begin
        (* a table line is "| a | b |": drop the outer empty splits only,
           so genuinely empty cells survive *)
        let cells =
          match String.split_on_char '|' line with
          | [] | [ _ ] | [ _; _ ] -> []
          | _ :: inner ->
            List.filteri (fun i _ -> i < List.length inner - 1) inner
            |> List.map String.trim
        in
        if cells <> [] then Buffer.add_string buf (row cells)
      end)
    lines;
  Buffer.contents buf

let save path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)
