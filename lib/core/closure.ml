open Rgs_sequence

type verdict = {
  closed : bool;
  prunable : bool;
}

exception Prunable

(* Greedy leftmost landmark of [p] in [s]; [None] when [p] does not occur. *)
let leftmost_landmark s p =
  let n = Sequence.length s and m = Pattern.length p in
  let landmark = Array.make m 0 in
  let rec walk j pos =
    if j > m then Some landmark
    else if pos > n then None
    else if Event.equal (Sequence.unsafe_get s pos) (Pattern.get p j) then begin
      landmark.(j - 1) <- pos;
      walk (j + 1) (pos + 1)
    end
    else walk j (pos + 1)
  in
  if m = 0 then Some [||] else walk 1 1

(* Greedy rightmost landmark. *)
let rightmost_landmark s p =
  let n = Sequence.length s and m = Pattern.length p in
  let landmark = Array.make m 0 in
  let rec walk j pos =
    if j < 1 then Some landmark
    else if pos < 1 then None
    else if Event.equal (Sequence.unsafe_get s pos) (Pattern.get p j) then begin
      landmark.(j - 1) <- pos;
      walk (j - 1) (pos - 1)
    end
    else walk j (pos - 1)
  in
  if m = 0 then Some [||] else walk m n

let check ?event_sets ?(trace = Trace.null) idx ~candidate_events ~prefix_sets
    ~pattern ~support_set ~has_equal_append =
  let event_sets =
    match event_sets with Some f -> f | None -> Support_set.of_event idx
  in
  let m = Pattern.length pattern in
  let sup_p = Support_set.size support_set in
  let arr = Pattern.to_array pattern in
  let db = Inverted_index.db idx in
  let events =
    List.filter (fun e -> Inverted_index.occurrence_count idx e >= sup_p) candidate_events
  in
  (* Landmark envelopes of the sequences holding instances: any landmark of
     P in S_i lies position-wise between the leftmost landmark [fl] and the
     rightmost landmark [rl]. [sup_i] is S_i's contribution to sup(P). *)
  let contributing =
    List.filter_map
      (fun (i, count) ->
        let s = Seqdb.seq db i in
        match (leftmost_landmark s pattern, rightmost_landmark s pattern) with
        | Some fl, Some rl -> Some (i, fl, rl, count)
        | _ -> None)
      (Support_set.per_sequence_counts support_set)
  in
  (* Sound pre-filter for inserting e' at gap j (one pass per gap, all
     events at once): instances of the extension P' in S_i project to
     non-overlapping instances of P (Lemma 1), so S_i holds at most
     min(sup_i, occurrences of e' between fl_j and rl_{j+1}) of them — two
     non-overlapping P'-instances need distinct e' positions, and every
     such position lies inside the envelope gap. If the sum over sequences
     is below sup(P), growing the extension cannot reach equal support. *)
  let gap_bounds j =
    let totals : (Event.t, int) Hashtbl.t = Hashtbl.create 32 in
    let local : (Event.t, int) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun (i, fl, rl, sup_i) ->
        let lo = if j = 0 then 0 else fl.(j - 1) in
        let hi = rl.(j) in
        if hi > lo + 1 then begin
          Hashtbl.reset local;
          let s = Seqdb.seq db i in
          for pos = lo + 1 to hi - 1 do
            let e = Sequence.unsafe_get s pos in
            Hashtbl.replace local e (1 + Option.value ~default:0 (Hashtbl.find_opt local e))
          done;
          Hashtbl.iter
            (fun e c ->
              Hashtbl.replace totals e
                (min sup_i c + Option.value ~default:0 (Hashtbl.find_opt totals e)))
            local
        end)
      contributing;
    totals
  in
  let non_closed = ref has_equal_append in
  (* Insertion position j in [0 .. m-1]: extension e1..ej e' e_{j+1}..e_m. *)
  let scan_position j =
    let bounds = gap_bounds j in
    let suffix = Pattern.of_array (Array.sub arr j (m - j)) in
    let base e' =
      if j = 0 then event_sets e' else Support_set.grow idx prefix_sets.(j - 1) e'
    in
    let scan_event e' =
      Metrics.hit Metrics.closure_bound_checks;
      if Option.value ~default:0 (Hashtbl.find_opt bounds e') < sup_p then
        Metrics.hit Metrics.closure_bound_rejects
      else begin
        Metrics.hit Metrics.closure_base_grows;
        let i0 = base e' in
        if Support_set.size i0 >= sup_p then
          match Sup_comp.grow_from_until idx i0 suffix ~min_size:sup_p with
          | None -> ()
          | Some i' ->
            (* sup(P') <= sup(P) by Lemma 1, so reaching min_size means
               equality. *)
            Metrics.hit Metrics.closure_full_grows;
            non_closed := true;
            (* Theorem 5 condition (ii), on the packed lasts arrays. *)
            if Support_set.border_dominated ~extension:i' ~pattern:support_set then
              raise Prunable
      end
    in
    List.iter scan_event events
  in
  match
    for j = 0 to m - 1 do
      scan_position j
    done
  with
  | () ->
    Trace.instant trace Trace.Closure_check
      ~a0:(if !non_closed then 1 else 0)
      ~a1:m;
    { closed = not !non_closed; prunable = false }
  | exception Prunable ->
    Trace.instant trace Trace.Closure_check ~a0:2 ~a1:m;
    { closed = false; prunable = true }

let prefix_sets_of idx pattern =
  let m = Pattern.length pattern in
  let sets = Array.make m Support_set.empty in
  for j = 1 to m do
    sets.(j - 1) <-
      (if j = 1 then Support_set.of_event idx (Pattern.get pattern 1)
       else Support_set.grow idx sets.(j - 2) (Pattern.get pattern j))
  done;
  sets

let standalone ?events idx pattern =
  if Pattern.is_empty pattern then { closed = false; prunable = false }
  else begin
    let events = match events with Some es -> es | None -> Inverted_index.events idx in
    let prefix_sets = prefix_sets_of idx pattern in
    let support_set = prefix_sets.(Pattern.length pattern - 1) in
    let sup_p = Support_set.size support_set in
    let has_equal_append =
      List.exists
        (fun e -> Support_set.size (Support_set.grow idx support_set e) = sup_p)
        events
    in
    check idx ~candidate_events:events ~prefix_sets ~pattern ~support_set ~has_equal_append
  end

let is_closed ?events idx pattern = (standalone ?events idx pattern).closed
let lb_prunable ?events idx pattern = (standalone ?events idx pattern).prunable
