open Rgs_sequence

let support ?max_landmarks db p =
  if Pattern.is_empty p then 0
  else
    Seqdb.fold
      (fun acc i s ->
        let insts =
          List.map
            (fun landmark -> { Instance.fseq = i; landmark })
            (Brute_force.landmarks_in ?max_landmarks s p)
        in
        let compatible a b = not (Instance.strictly_overlap a b) in
        acc + Brute_force.max_pairwise_compatible ~compatible insts)
      0 db

let in_iterated_shuffle ~v ~w =
  let nv = Sequence.length v and nw = Sequence.length w in
  if nw = 0 then true
  else if nv = 0 || nw mod nv <> 0 then false
  else begin
    let db = Seqdb.of_sequences [ w ] in
    let p = Pattern.of_array (Sequence.to_array v) in
    support db p = nw / nv
  end
