type t = {
  pattern : Pattern.t;
  support : int;
  support_set : Support_set.t;
}

let compare_by_support_desc a b =
  match Int.compare b.support a.support with
  | 0 -> (
    match Int.compare (Pattern.length a.pattern) (Pattern.length b.pattern) with
    | 0 -> Pattern.compare a.pattern b.pattern
    | c -> c)
  | c -> c

let compare_by_length_desc a b =
  match Int.compare (Pattern.length b.pattern) (Pattern.length a.pattern) with
  | 0 -> (
    match Int.compare b.support a.support with
    | 0 -> Pattern.compare a.pattern b.pattern
    | c -> c)
  | c -> c

let pp ppf r = Format.fprintf ppf "%a (sup=%d)" Pattern.pp r.pattern r.support

let pp_with codec ppf r =
  Format.fprintf ppf "%a (sup=%d)" (Pattern.pp_with codec) r.pattern r.support
