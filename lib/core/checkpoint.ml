open Rgs_sequence

type entry = { root : Event.t; results : Mined.t list }
type quarantine = { root : Event.t; reason : string; backtrace : string }

type record =
  | Root_done of entry
  | Root_quarantined of quarantine
  | Run_outcome of Budget.outcome

type t = {
  fingerprint : string;
  completed : entry list;
  quarantined : quarantine list;
  outcome : Budget.outcome;
  salvaged_bytes : int;
}

exception Corrupt of string

let magic = "RGS-CHECKPOINT"
let version = 2

let log_src = Logs.Src.create "rgs.checkpoint" ~doc:"Durable checkpoint log"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* The database contributes through [Seqdb.content_digest] — the MD5 of
   the canonical event stream — rather than the stream itself: a mapped
   [.rgsdb] database answers it O(1) from the digest sealed at pack time,
   so text-loaded and store-backed runs of one corpus agree on the
   fingerprint and share checkpoints without forcing any sequence. *)
let fingerprint ~params db =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '|')
    params;
  Buffer.add_string buf (Seqdb.content_digest db);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- CRC32 (zlib polynomial), table-based --- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* --- record framing: 4-byte LE length, 4-byte LE CRC32, payload --- *)

let le32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let read_le32 s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let frame record =
  let payload = Marshal.to_string (record : record) [] in
  let buf = Buffer.create (String.length payload + 8) in
  le32 buf (String.length payload);
  le32 buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let header_string fp = Printf.sprintf "%s\nv%d %s\n" magic version fp

(* An upper bound on a sane record payload; anything larger is framing
   garbage (a torn length field happens to decode huge). *)
let max_payload = 1 lsl 30

(* --- stale temp sweep --- *)

let temp_prefix = "rgs-ckpt"

let sweep_stale_temps dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        if
          String.length name >= String.length temp_prefix
          && String.sub name 0 (String.length temp_prefix) = temp_prefix
          && Filename.check_suffix name ".tmp"
        then begin
          let p = Filename.concat dir name in
          Log.debug (fun m -> m "removing stale checkpoint temp %s" p);
          try Sys.remove p with Sys_error _ -> ()
        end)
      entries

(* --- salvaging reader --- *)

let read_exactly ic n =
  let buf = Bytes.create n in
  let rec loop off =
    if off = n then `All (Bytes.unsafe_to_string buf)
    else
      match input ic buf off (n - off) with
      | 0 -> if off = 0 then `Eof else `Short
      | k -> loop (off + k)
  in
  loop 0

(* Read every intact record of the log; stop (without raising) at the
   first torn, truncated or CRC-failing frame — everything before it was
   written and flushed whole, which is the salvage guarantee. *)
let read_records ic =
  let records = ref [] in
  let rec loop () =
    match read_exactly ic 8 with
    | `Eof -> `Clean
    | `Short -> `Torn
    | `All hdr -> (
      let len = read_le32 hdr 0 in
      let crc = read_le32 hdr 4 in
      if len <= 0 || len > max_payload then `Torn
      else
        match read_exactly ic len with
        | `Eof | `Short -> `Torn
        | `All payload ->
          if crc32 payload <> crc then `Torn
          else (
            match (Marshal.from_string payload 0 : record) with
            | r ->
              records := r :: !records;
              loop ()
            | exception (Failure _ | Invalid_argument _) -> `Torn))
  in
  let ending = loop () in
  (List.rev !records, ending)

let fold_records records =
  (* later records win per root: a quarantined root re-mined after
     [retry_quarantined] appends a fresh [Root_done] that supersedes its
     quarantine record *)
  let order = ref [] in
  let state : (Event.t, record) Hashtbl.t = Hashtbl.create 64 in
  let outcome = ref Budget.Completed in
  List.iter
    (fun r ->
      match r with
      | Root_done { root; _ } | Root_quarantined { root; _ } ->
        if not (Hashtbl.mem state root) then order := root :: !order;
        Hashtbl.replace state root r
      | Run_outcome o -> outcome := o)
    records;
  let completed, quarantined =
    List.fold_left
      (fun (c, q) root ->
        match Hashtbl.find state root with
        | Root_done e -> (e :: c, q)
        | Root_quarantined e -> (c, e :: q)
        | Run_outcome _ -> (c, q))
      ([], []) !order
  in
  (completed, quarantined, !outcome)

let load ~path ~expected_fingerprint =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Corrupt (Printf.sprintf "cannot open: %s" msg))
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (match input_line ic with
      | m when m = magic -> ()
      | _ -> raise (Corrupt (path ^ ": not a checkpoint file"))
      | exception End_of_file -> raise (Corrupt (path ^ ": truncated file")));
      let fp =
        match input_line ic with
        | line -> (
          match Scanf.sscanf_opt line "v%d %s" (fun v fp -> (v, fp)) with
          | Some (v, fp) when v = version -> fp
          | Some (v, _) ->
            raise
              (Corrupt
                 (Printf.sprintf "%s: version %d, expected %d" path v version))
          | None ->
            raise
              (Corrupt
                 (Printf.sprintf
                    "%s: unrecognised header (a v1 whole-file checkpoint \
                     cannot be resumed; delete it and restart)"
                    path)))
        | exception End_of_file -> raise (Corrupt (path ^ ": truncated file"))
      in
      if fp <> expected_fingerprint then
        raise
          (Corrupt
             (path ^ ": fingerprint mismatch (different database or parameters)"));
      let good_start = pos_in ic in
      let records, ending = read_records ic in
      let salvaged_bytes =
        match ending with
        | `Clean -> 0
        | `Torn ->
          let file_len = in_channel_length ic in
          let consumed =
            List.fold_left
              (fun acc r -> acc + String.length (frame r))
              good_start records
          in
          file_len - consumed
      in
      let completed, quarantined, outcome = fold_records records in
      if salvaged_bytes > 0 then begin
        Metrics.add Metrics.checkpoint_salvaged_roots (List.length completed);
        Log.warn (fun m ->
            m "%s: torn tail (%d byte(s) dropped); salvaged %d completed root(s)"
              path salvaged_bytes (List.length completed))
      end;
      { fingerprint = fp; completed; quarantined; outcome; salvaged_bytes })

let load_opt ~path ~expected_fingerprint =
  if Sys.file_exists path then Some (load ~path ~expected_fingerprint) else None

let records_of t =
  List.map (fun e -> Root_done e) t.completed
  @ List.map (fun q -> Root_quarantined q) t.quarantined
  @ [ Run_outcome t.outcome ]

(* --- writer --- *)

module Writer = struct
  type w = {
    path : string;
    mutable oc : out_channel option;  (* [None] once closed *)
    mutable good_ofs : int;  (* bytes known flushed and whole *)
    mutable dirty : bool;  (* a failed write may have left a torn tail *)
    attempts : int;
    backoff_s : float;
    mutable jitter : int;  (* deterministic xorshift state *)
    trace : Trace.t;
    mutex : Mutex.t;
  }

  let next_jitter w =
    let x = w.jitter in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    w.jitter <- x land max_int;
    float_of_int (w.jitter land 0xFFFF) /. 65536.0

  let backoff w attempt =
    let base = w.backoff_s *. (2.0 ** float_of_int (attempt - 1)) in
    let d = base *. (0.5 +. next_jitter w) in
    if d > 0.0 then Unix.sleepf d

  let fsync oc =
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc)

  (* One physical write attempt: heal any torn tail from a previous failed
     attempt (truncate back to the last whole record), then append, flush
     and fsync. The fault site fires first so tests can inject ENOSPC-like
     failures at exactly this boundary. *)
  let try_write w data =
    match w.oc with
    | None -> ()
    | Some oc ->
      Budget.Fault.fire Budget.Fault.Checkpoint_io;
      if w.dirty then begin
        Unix.ftruncate (Unix.descr_of_out_channel oc) w.good_ofs;
        seek_out oc w.good_ofs;
        w.dirty <- false
      end;
      output_string oc data;
      fsync oc;
      w.good_ofs <- w.good_ofs + String.length data;
      Metrics.hit Metrics.checkpoint_writes

  (* Retry loop shared by the header write and every append: exponential
     backoff with deterministic jitter, then degrade — the miner must keep
     mining even when the checkpoint disk is gone. *)
  let write_resilient w data =
    let rec go attempt =
      match try_write w data with
      | () -> true
      | exception e ->
        w.dirty <- true;
        if attempt >= w.attempts then begin
          Metrics.hit Metrics.checkpoint_io_failures;
          Trace.instant w.trace Trace.Checkpoint_retry ~a0:attempt ~a1:1;
          Log.err (fun m ->
              m "checkpoint write to %s failed after %d attempt(s): %s" w.path
                attempt (Printexc.to_string e));
          false
        end
        else begin
          Metrics.hit Metrics.checkpoint_io_retries;
          Trace.instant w.trace Trace.Checkpoint_retry ~a0:attempt ~a1:0;
          Log.warn (fun m ->
              m "checkpoint write to %s failed (%s); retrying" w.path
                (Printexc.to_string e));
          backoff w attempt;
          go (attempt + 1)
        end
    in
    go 1

  let locked w f =
    Mutex.lock w.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock w.mutex) f

  let create ?(attempts = 4) ?(backoff_s = 0.01) ?(trace = Trace.null)
      ?(initial = []) ~path ~fingerprint () =
    let dir = Filename.dirname path in
    sweep_stale_temps dir;
    let header = header_string fingerprint in
    let body =
      String.concat "" (header :: List.map (fun r -> frame r) initial)
    in
    let w =
      {
        path;
        oc = None;
        good_ofs = 0;
        dirty = false;
        attempts;
        backoff_s;
        jitter = 0x2545F491;
        trace;
        mutex = Mutex.create ();
      }
    in
    (* The initial image is written to a temp file and renamed into place,
       so an existing checkpoint is never half-overwritten; the open
       channel survives the rename and subsequent appends go to [path]. *)
    let open_attempt () =
      Budget.Fault.fire Budget.Fault.Checkpoint_io;
      let tmp = Filename.temp_file ~temp_dir:dir temp_prefix ".tmp" in
      match
        let oc = open_out_bin tmp in
        (try
           output_string oc body;
           fsync oc
         with e ->
           close_out_noerr oc;
           raise e);
        Sys.rename tmp path;
        oc
      with
      | oc ->
        w.oc <- Some oc;
        w.good_ofs <- String.length body;
        Metrics.hit Metrics.checkpoint_writes
      | exception e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e
    in
    let rec go attempt =
      match open_attempt () with
      | () -> ()
      | exception e ->
        if attempt >= w.attempts then begin
          Metrics.hit Metrics.checkpoint_io_failures;
          Trace.instant trace Trace.Checkpoint_retry ~a0:attempt ~a1:1;
          Log.err (fun m ->
              m "cannot create checkpoint %s after %d attempt(s): %s" path
                attempt (Printexc.to_string e))
        end
        else begin
          Metrics.hit Metrics.checkpoint_io_retries;
          Trace.instant trace Trace.Checkpoint_retry ~a0:attempt ~a1:0;
          backoff w attempt;
          go (attempt + 1)
        end
    in
    go 1;
    w

  let healthy w = w.oc <> None && not w.dirty

  let append w record =
    locked w (fun () -> ignore (write_resilient w (frame record)))

  let close w =
    locked w (fun () ->
        match w.oc with
        | None -> ()
        | Some oc ->
          w.oc <- None;
          (try fsync oc with _ -> ());
          close_out_noerr oc)
end

(* Whole-file convenience for callers without an incremental loop (tests,
   benches): one writer, every record, close. *)
let write ?(outcome = Budget.Completed) ~path ~fingerprint ~completed
    ~quarantined () =
  let initial =
    List.map (fun e -> Root_done e) completed
    @ List.map (fun q -> Root_quarantined q) quarantined
    @ [ Run_outcome outcome ]
  in
  let w = Writer.create ~initial ~path ~fingerprint () in
  Writer.close w
