open Rgs_sequence

type entry = { root : Event.t; results : Mined.t list }

type t = {
  fingerprint : string;
  completed : entry list;
  remaining : Event.t list;
  outcome : Budget.outcome;
}

exception Corrupt of string

let magic = "RGS-CHECKPOINT"
let version = 1

let fingerprint ~params db =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '|')
    params;
  Seqdb.iter
    (fun _ s ->
      Sequence.iteri
        (fun _ e ->
          Buffer.add_string buf (string_of_int e);
          Buffer.add_char buf ' ')
        s;
      Buffer.add_char buf '\n')
    db;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let save ~path t =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "rgs-ckpt" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc magic;
         output_char oc '\n';
         Marshal.to_channel oc (version, t) [])
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Rgs_sequence.Metrics.hit Rgs_sequence.Metrics.checkpoint_writes

let load ~path ~expected_fingerprint =
  let ic =
    try open_in_bin path
    with Sys_error msg -> raise (Corrupt (Printf.sprintf "cannot open: %s" msg))
  in
  let t =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (match input_line ic with
        | m when m = magic -> ()
        | _ -> raise (Corrupt (path ^ ": not a checkpoint file"))
        | exception End_of_file -> raise (Corrupt (path ^ ": truncated file")));
        match (Marshal.from_channel ic : int * t) with
        | v, _ when v <> version ->
          raise
            (Corrupt (Printf.sprintf "%s: version %d, expected %d" path v version))
        | _, t -> t
        | exception (End_of_file | Failure _) ->
          raise (Corrupt (path ^ ": truncated or garbled payload")))
  in
  if t.fingerprint <> expected_fingerprint then
    raise
      (Corrupt
         (path ^ ": fingerprint mismatch (different database or parameters)"));
  t

let load_opt ~path ~expected_fingerprint =
  if Sys.file_exists path then Some (load ~path ~expected_fingerprint) else None
