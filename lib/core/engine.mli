(** The unified pattern-growth DFS behind {!Gsgrow}, {!Clogsgrow} and
    {!Gap_constrained} — one grow loop, parameterized by a {!strategy}.

    All three miners share the same skeleton: depth-first growth of a
    pattern [P] with its leftmost support set, Apriori pruning on support
    (Theorem 1), per-node budget/stop checks, [Node]/[Extension]/[Root]
    tracing, and batched metric flushes. They differ only in

    - {b how a support set grows} (plain [INSgrow], or the gap-bounded
      skip-on-failure variant), and
    - {b whether closure machinery runs} (CloGSgrow's CCheck/LBCheck
      before expansion; absent for the all-patterns miners).

    A {!strategy} captures exactly those two choices; the miner modules
    are thin instantiations and their outputs are byte-identical to the
    pre-engine implementations (pinned by the [@query] differential
    suite).

    Orthogonally, a {!Query.plan} prunes the {e answer} inside the same
    DFS: per-child cuts before the instance growth, a dynamic support
    floor on top of [min_sup], and an emission predicate. The default
    plan ({!Query.trivial}) is a no-op; the soundness of the non-trivial
    plans is argued in [Query] and DESIGN.md. *)

open Rgs_sequence

(** Closure machinery for strategies that emit only closed patterns. *)
type closure_spec = {
  check :
    pattern:Pattern.t ->
    support_set:Support_set.t ->
    prefix_rev_chain:Support_set.t list ->
    Closure.verdict;
      (** per-node verdict, called {e before} appends are grown
          (prunability never depends on them); [prefix_rev_chain] is the
          DFS stack of prefix support sets, most recent first, including
          the node's own set *)
  detect_equal_append : bool;
      (** treat an equal-support append as proof of non-closedness (the
          CCheck contribution CloGSgrow gets for free from the appends it
          grows anyway) *)
}

type strategy = {
  name : string;  (** used in [Invalid_argument] messages *)
  grow : Inverted_index.t -> Support_set.t -> Event.t -> Support_set.t;
      (** instance growth: the leftmost support set of [P ◦ e] from that
          of [P] *)
  closure :
    (Inverted_index.t -> events:Event.t list -> trace:Trace.t -> closure_spec)
    option;
      (** when present, built once per run (so it can own per-run caches);
          nodes then follow the check-first CloGSgrow shape *)
}

type stats = {
  emitted : int;  (** patterns passed to [emit] *)
  dfs_nodes : int;  (** DFS nodes visited *)
  insgrow_calls : int;  (** instance-growth invocations *)
  lb_pruned : int;  (** subtrees cut by the closure verdict *)
  non_closed_dropped : int;  (** nodes rejected by closure checking *)
  query_cuts : int;  (** subtrees cut by {!Query.plan.cut} (never grown) *)
  floor_prunes : int;
      (** frequent extensions pruned by the dynamic floor only *)
  truncated : bool;  (** [true] iff [outcome <> Completed] *)
  outcome : Budget.outcome;  (** why the search ended *)
}

exception Budget_exhausted
(** Raise from [emit] to abort the search with [outcome = Truncated]
    (how the miners implement [max_patterns]); also raised internally
    when [should_stop] fires. *)

(** {1 The reified DFS}

    {!run} drives the whole search itself. The pieces below expose the
    same search one node at a time, which is what the work-stealing
    executor ({!Parallel_miner}) needs: a {!ctx} holds the per-run state
    (strategy, query plan, limits, counters), a {!frame} is one pending
    DFS node, {!expand} visits a node and returns its admitted children
    instead of recursing, and {!run_frame} walks a whole subtree exactly
    like the recursive miner. Emissions and counter increments are
    identical whichever driver is used; only the {e sibling growth
    order} differs ([expand] grows all of a node's extensions before any
    child is visited, [run_frame] interleaves lazily). *)

type ctx
(** Per-run search state. Not safe to share across domains — each pool
    worker builds its own [ctx] (they may share one {!Query.plan} whose
    closures are thread-safe, e.g. {!Query.shared}). *)

type frame
(** A pending DFS node: pattern, leftmost support set, query state and
    the prefix support-set chain (for LBCheck). Immutable; safe to hand
    to another domain whose [ctx] shares the same index and plan. *)

val make_ctx :
  ?max_length:int ->
  ?events:Event.t list ->
  ?should_stop:(unit -> bool) ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?plan:Query.plan ->
  strategy ->
  Inverted_index.t ->
  min_sup:int ->
  ctx
(** Arguments exactly as {!run}; counters start at zero.
    @raise Invalid_argument when [min_sup < 1]. *)

val ctx_events : ctx -> Event.t list
(** The resolved candidate event list (the [events] argument, or the
    frequent events of the index). *)

val ctx_emitted : ctx -> int
(** Patterns emitted through this [ctx] so far. *)

val root_frame : ctx -> Event.t -> frame option
(** The root node of event [e]'s subtree: builds the size-1 support set
    and applies the root-level query cut and floor admission. [None]
    when the root is cut or below the floor (the same roots {!run}
    skips). *)

val frame_pattern : frame -> Pattern.t
val frame_support : frame -> Support_set.t

val expand : ctx -> emit:(Mined.t -> unit) -> frame -> frame list
(** Visit one node: stop/budget checks, the node's own emission (or
    closure verdict), growth of its extensions, and query/floor
    admission of the children — returned in left-to-right (DFS) order
    instead of recursed into.
    @raise Budget_exhausted and [Budget.Stop] as {!run_frame}. *)

val run_frame : ctx -> emit:(Mined.t -> unit) -> frame -> unit
(** Mine the whole subtree under a frame depth-first, with the original
    miner's lazy sibling interleaving (one extension grown, recursed,
    then the next). Raises {!Budget_exhausted} when [should_stop] fires
    (or [emit] raises it) and lets [Budget.Stop] propagate — the caller
    owns the stop handling, unlike {!run}. *)

val note_stop : ctx -> Budget.outcome -> unit
(** Record a stop the way {!run} does: bumps [Metrics.budget_stops] and
    traces a [Budget_stop] instant. Call once per run when a
    [Budget_exhausted] / [Budget.Stop] ended the search. *)

val finish : ctx -> outcome:Budget.outcome -> stats
(** Flush the [ctx]'s batched counters into {!Metrics} (once — do not
    call twice) and return them as {!stats}. *)

val run :
  ?max_length:int ->
  ?events:Event.t list ->
  ?roots:Event.t list ->
  ?should_stop:(unit -> bool) ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?plan:Query.plan ->
  strategy ->
  Inverted_index.t ->
  min_sup:int ->
  emit:(Mined.t -> unit) ->
  stats
(** [run strategy idx ~min_sup ~emit] walks the pattern tree rooted at
    [roots] (default: all frequent events), growing with [events]
    (default likewise), and hands each answer pattern to [emit] in DFS
    order. [plan] defaults to {!Query.trivial} — identical behaviour to
    the pre-engine miners. All other optionals behave exactly as
    documented on {!Gsgrow.mine} / {!Clogsgrow.mine}.
    @raise Invalid_argument when [min_sup < 1]. *)
