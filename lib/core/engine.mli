(** The unified pattern-growth DFS behind {!Gsgrow}, {!Clogsgrow} and
    {!Gap_constrained} — one grow loop, parameterized by a {!strategy}.

    All three miners share the same skeleton: depth-first growth of a
    pattern [P] with its leftmost support set, Apriori pruning on support
    (Theorem 1), per-node budget/stop checks, [Node]/[Extension]/[Root]
    tracing, and batched metric flushes. They differ only in

    - {b how a support set grows} (plain [INSgrow], or the gap-bounded
      skip-on-failure variant), and
    - {b whether closure machinery runs} (CloGSgrow's CCheck/LBCheck
      before expansion; absent for the all-patterns miners).

    A {!strategy} captures exactly those two choices; the miner modules
    are thin instantiations and their outputs are byte-identical to the
    pre-engine implementations (pinned by the [@query] differential
    suite).

    Orthogonally, a {!Query.plan} prunes the {e answer} inside the same
    DFS: per-child cuts before the instance growth, a dynamic support
    floor on top of [min_sup], and an emission predicate. The default
    plan ({!Query.trivial}) is a no-op; the soundness of the non-trivial
    plans is argued in [Query] and DESIGN.md. *)

open Rgs_sequence

(** Closure machinery for strategies that emit only closed patterns. *)
type closure_spec = {
  check :
    pattern:Pattern.t ->
    support_set:Support_set.t ->
    prefix_rev_chain:Support_set.t list ->
    Closure.verdict;
      (** per-node verdict, called {e before} appends are grown
          (prunability never depends on them); [prefix_rev_chain] is the
          DFS stack of prefix support sets, most recent first, including
          the node's own set *)
  detect_equal_append : bool;
      (** treat an equal-support append as proof of non-closedness (the
          CCheck contribution CloGSgrow gets for free from the appends it
          grows anyway) *)
}

type strategy = {
  name : string;  (** used in [Invalid_argument] messages *)
  grow : Inverted_index.t -> Support_set.t -> Event.t -> Support_set.t;
      (** instance growth: the leftmost support set of [P ◦ e] from that
          of [P] *)
  closure :
    (Inverted_index.t -> events:Event.t list -> trace:Trace.t -> closure_spec)
    option;
      (** when present, built once per run (so it can own per-run caches);
          nodes then follow the check-first CloGSgrow shape *)
}

type stats = {
  emitted : int;  (** patterns passed to [emit] *)
  dfs_nodes : int;  (** DFS nodes visited *)
  insgrow_calls : int;  (** instance-growth invocations *)
  lb_pruned : int;  (** subtrees cut by the closure verdict *)
  non_closed_dropped : int;  (** nodes rejected by closure checking *)
  query_cuts : int;  (** subtrees cut by {!Query.plan.cut} (never grown) *)
  floor_prunes : int;
      (** frequent extensions pruned by the dynamic floor only *)
  truncated : bool;  (** [true] iff [outcome <> Completed] *)
  outcome : Budget.outcome;  (** why the search ended *)
}

exception Budget_exhausted
(** Raise from [emit] to abort the search with [outcome = Truncated]
    (how the miners implement [max_patterns]); also raised internally
    when [should_stop] fires. *)

val run :
  ?max_length:int ->
  ?events:Event.t list ->
  ?roots:Event.t list ->
  ?should_stop:(unit -> bool) ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?plan:Query.plan ->
  strategy ->
  Inverted_index.t ->
  min_sup:int ->
  emit:(Mined.t -> unit) ->
  stats
(** [run strategy idx ~min_sup ~emit] walks the pattern tree rooted at
    [roots] (default: all frequent events), growing with [events]
    (default likewise), and hands each answer pattern to [emit] in DFS
    order. [plan] defaults to {!Query.trivial} — identical behaviour to
    the pre-engine miners. All other optionals behave exactly as
    documented on {!Gsgrow.mine} / {!Clogsgrow.mine}.
    @raise Invalid_argument when [min_sup < 1]. *)
