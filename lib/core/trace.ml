(* Re-export: tracing lives in Rgs_sequence (next to Metrics) so the index
   layer could record too; Rgs_core.Trace is the access path the miners,
   CLI and tests use, mirroring Rgs_core.Metrics. *)
include Rgs_sequence.Trace
