open Rgs_sequence

(* Columnar group storage: per sequence, the (first, last) landmark borders
   of its instances live in two parallel int arrays in right-shift order.
   No per-instance boxing — Instance.t is only materialised at the API
   boundary.

   Sharing: only the first [len] slots of [firsts]/[lasts] belong to the
   group; the arrays may be longer. Appending growth never changes first
   positions and can only kill a suffix of a group (INSgrow stops a
   sequence at the first failed extension), so a grown group reuses its
   parent's [firsts] array outright — whatever its length — with a shorter
   [len]. Without the slack slots, every partially surviving group on an
   append-heavy DFS path copied its firsts prefix at every level,
   amplifying live words O(depth * size). *)
type group = { gseq : int; len : int; firsts : int array; lasts : int array }
type t = { groups : group array; total : int }

let empty = { groups = [||]; total = 0 }

let total_of groups = Array.fold_left (fun n g -> n + g.len) 0 groups

let group_view g =
  Array.init g.len (fun k ->
      { Instance.seq = g.gseq; first = g.firsts.(k); last = g.lasts.(k) })

let well_formed s =
  Array.for_all
    (fun g ->
      let n = g.len in
      n > 0
      && Array.length g.firsts >= n
      && Array.length g.lasts >= n
      &&
      let sorted = ref true in
      for k = 1 to n - 1 do
        (* right-shift order, strict: (last, first) lexicographic *)
        if
          g.lasts.(k - 1) > g.lasts.(k)
          || (g.lasts.(k - 1) = g.lasts.(k) && g.firsts.(k - 1) >= g.firsts.(k))
        then sorted := false
      done;
      !sorted)
    s.groups
  && s.total = total_of s.groups
  &&
  let ascending = ref true in
  for k = 1 to Array.length s.groups - 1 do
    if s.groups.(k - 1).gseq >= s.groups.(k).gseq then ascending := false
  done;
  !ascending

(* [well_formed] is an O(size) scan; it is not asserted on the production
   path (Support_set.grow runs millions of times per mining run) but is
   exposed for the test suite to validate every construction route. *)
let of_group_array groups = { groups; total = total_of groups }

let packed_group (i, firsts, lasts) =
  { gseq = i; len = Array.length lasts; firsts; lasts }

let unsafe_of_packed groups = of_group_array (Array.map packed_group groups)

let unsafe_of_groups groups =
  of_group_array
    (Array.map
       (fun (i, insts) ->
         {
           gseq = i;
           len = Array.length insts;
           firsts = Array.map (fun (inst : Instance.t) -> inst.Instance.first) insts;
           lasts = Array.map (fun (inst : Instance.t) -> inst.Instance.last) insts;
         })
       groups)

let of_event idx e =
  let db = Inverted_index.db idx in
  let groups = ref [] in
  for i = Seqdb.size db downto 1 do
    let positions = Inverted_index.positions idx ~seq:i e in
    let n = Array.length positions in
    if n > 0 then
      (* size-1 instances have first = last: share the positions array *)
      groups := { gseq = i; len = n; firsts = positions; lasts = positions } :: !groups
  done;
  of_group_array (Array.of_list !groups)

let size s = s.total
let is_empty s = s.total = 0
let num_sequences s = Array.length s.groups
let sequences s = Array.to_list (Array.map (fun g -> g.gseq) s.groups)
let num_groups s = Array.length s.groups
let group_seq s k = s.groups.(k).gseq
let group_len s k = s.groups.(k).len
let group_firsts s k = s.groups.(k).firsts
let group_lasts s k = s.groups.(k).lasts

let instances s =
  List.concat_map (fun g -> Array.to_list (group_view g)) (Array.to_list s.groups)

let instances_in s ~seq =
  let found = ref [||] in
  Array.iter (fun g -> if g.gseq = seq then found := group_view g) s.groups;
  !found

let per_sequence_counts s =
  Array.to_list (Array.map (fun g -> (g.gseq, g.len)) s.groups)

let lasts s =
  let out = Array.make s.total (0, 0) in
  let k = ref 0 in
  Array.iter
    (fun g ->
      for j = 0 to g.len - 1 do
        out.(!k) <- (g.gseq, g.lasts.(j));
        incr k
      done)
    s.groups;
  out

(* Theorem 5 condition (ii), straight off the packed arrays: pairing the
   k-th instances of both sets in global right-shift order, every pair must
   share its sequence and the extension's last may not exceed the
   pattern's. With both sets grouped by ascending sequence this holds iff
   the group partitions coincide and the lasts arrays dominate pointwise. *)
exception Not_dominated

let border_dominated ~extension ~pattern =
  extension.total = pattern.total
  && Array.length extension.groups = Array.length pattern.groups
  &&
  try
    Array.iter2
      (fun ge gp ->
        let n = ge.len in
        if ge.gseq <> gp.gseq || n <> gp.len then raise Not_dominated;
        for k = 0 to n - 1 do
          if ge.lasts.(k) > gp.lasts.(k) then raise Not_dominated
        done)
      extension.groups pattern.groups;
    true
  with Not_dominated -> false

let fold_groups f init s =
  Array.fold_left (fun acc g -> f acc g.gseq (group_view g)) init s.groups

(* Algorithm 2 (INSgrow). For each sequence holding instances, walk them in
   right-shift order; extend each with the earliest occurrence of [e] after
   max(last_position, last); stop the sequence at the first failure (later
   instances can only fail too, since both bounds are monotone). The
   monotonicity is also what lets one index cursor serve the whole group:
   each seek resumes where the previous one ended. *)
let empty_group = { gseq = 0; len = 0; firsts = [||]; lasts = [||] }

let grow idx s e =
  Metrics.hit Metrics.insgrow_calls;
  let num = Array.length s.groups in
  if num = 0 then empty
  else begin
    let out = Array.make num empty_group in
    let out_count = ref 0 in
    let total = ref 0 in
    (* one reseatable cursor and one metrics flush for the whole pass *)
    let c = Inverted_index.cursor idx ~seq:s.groups.(0).gseq e in
    for gi = 0 to num - 1 do
      let g = s.groups.(gi) in
      if gi > 0 then Inverted_index.reseat c ~seq:g.gseq;
      let lasts = g.lasts in
      let n = g.len in
      (* Most groups die on the very first seek (the event does not occur
         after the first instance), so nothing is allocated until one
         extension succeeds. *)
      let l0 = Inverted_index.seek_pos c ~lowest:lasts.(0) in
      if l0 >= 0 then begin
        let new_lasts = Array.make n 0 in
        new_lasts.(0) <- l0;
        let count = ref 1 in
        let last_position = ref l0 in
        (try
           for k = 1 to n - 1 do
             let last = lasts.(k) in
             let lowest = if !last_position > last then !last_position else last in
             let lj = Inverted_index.seek_pos c ~lowest in
             if lj < 0 then raise Exit;
             last_position := lj;
             new_lasts.(!count) <- lj;
             incr count
           done
         with Exit -> ());
        (* share the parent's firsts array whole — the surviving prefix is
           a prefix of it — and keep new_lasts at its allocated size; only
           [len] slots are live. Zero copies on partial survival. *)
        out.(!out_count) <- { gseq = g.gseq; len = !count; firsts = g.firsts;
                              lasts = new_lasts };
        incr out_count;
        total := !total + !count
      end
    done;
    Inverted_index.cursor_finish c;
    let groups = if !out_count = num then out else Array.sub out 0 !out_count in
    { groups; total = !total }
  end

(* --- shard support: slicing by sequence range and the associative
   merge. Groups are kept in ascending gseq order, so a sequence range is
   a contiguous sub-array (binary search for the boundaries) and merging
   two sets over disjoint sequence ranges is a linear merge of two sorted
   arrays — the group records themselves are shared, never copied. *)

(* smallest group index with gseq >= lo *)
let lower_bound groups lo =
  let n = Array.length groups in
  let a = ref 0 and b = ref n in
  while !a < !b do
    let mid = (!a + !b) / 2 in
    if groups.(mid).gseq < lo then a := mid + 1 else b := mid
  done;
  !a

let slice s ~lo ~hi =
  if lo > hi then invalid_arg "Support_set.slice: lo > hi";
  let i = lower_bound s.groups lo in
  let j = lower_bound s.groups (hi + 1) in
  if i = 0 && j = Array.length s.groups then s
  else of_group_array (Array.sub s.groups i (j - i))

(* Associative and commutative on sets over disjoint sequence ids: the
   result is determined by the union of groups alone (ascending gseq),
   so any combine tree over a partition of the database yields the same
   set — the property the per-shard grow/merge of {!Shard_merge} rests
   on. A shared sequence id would mean the operands were not support
   sets of disjoint shards; refuse loudly rather than guess an
   interleaving of instances. *)
let combine a b =
  if a.total = 0 then b
  else if b.total = 0 then a
  else begin
    let na = Array.length a.groups and nb = Array.length b.groups in
    let out = Array.make (na + nb) empty_group in
    let ia = ref 0 and ib = ref 0 and k = ref 0 in
    while !ia < na && !ib < nb do
      let ga = a.groups.(!ia) and gb = b.groups.(!ib) in
      if ga.gseq = gb.gseq then
        invalid_arg "Support_set.combine: operands share a sequence"
      else if ga.gseq < gb.gseq then begin
        out.(!k) <- ga;
        incr ia
      end
      else begin
        out.(!k) <- gb;
        incr ib
      end;
      incr k
    done;
    while !ia < na do
      out.(!k) <- a.groups.(!ia);
      incr ia;
      incr k
    done;
    while !ib < nb do
      out.(!k) <- b.groups.(!ib);
      incr ib;
      incr k
    done;
    { groups = out; total = a.total + b.total }
  end

(* --- wire codec. Little-endian int64 per value, trimmed to the live
   [len] prefix of each group (the slack slots are a heap-sharing
   artifact and never cross a process boundary):

     total_groups, total, then per group: gseq, len, firsts[0..len),
     lasts[0..len).

   [decode] is a trust boundary — worker replies arrive through it — so
   it re-validates everything [well_formed] would check (strict
   right-shift order, ascending gseq, total consistency) plus exact
   buffer length, and raises [Invalid_argument] rather than letting a
   malformed set corrupt a merge. *)

let encode s =
  let words =
    2 + Array.fold_left (fun n g -> n + 2 + (2 * g.len)) 0 s.groups
  in
  let buf = Buffer.create (words * 8) in
  let put v = Buffer.add_int64_le buf (Int64.of_int v) in
  put (Array.length s.groups);
  put s.total;
  Array.iter
    (fun g ->
      put g.gseq;
      put g.len;
      for k = 0 to g.len - 1 do
        put g.firsts.(k)
      done;
      for k = 0 to g.len - 1 do
        put g.lasts.(k)
      done)
    s.groups;
  Buffer.contents buf

let decode buf =
  let fail msg = invalid_arg ("Support_set.decode: " ^ msg) in
  let nbytes = String.length buf in
  if nbytes < 16 || nbytes mod 8 <> 0 then fail "truncated buffer";
  let nwords = nbytes / 8 in
  let word i =
    let v64 = String.get_int64_le buf (i * 8) in
    let v = Int64.to_int v64 in
    if Int64.of_int v <> v64 || v < 0 then fail "value out of range";
    v
  in
  let num_groups = word 0 in
  let total = word 1 in
  (* every group costs at least 4 words; bound before allocating *)
  if num_groups > (nwords - 2) / 4 then fail "group count exceeds buffer";
  let groups = Array.make num_groups empty_group in
  let pos = ref 2 in
  let prev_gseq = ref 0 in
  for gi = 0 to num_groups - 1 do
    if !pos + 2 > nwords then fail "truncated group header";
    let gseq = word !pos in
    let len = word (!pos + 1) in
    if gseq <= !prev_gseq then fail "sequence ids not ascending";
    prev_gseq := gseq;
    if len = 0 then fail "empty group";
    if len > (nwords - !pos - 2) / 2 then fail "group length exceeds buffer";
    let firsts = Array.init len (fun k -> word (!pos + 2 + k)) in
    let lasts = Array.init len (fun k -> word (!pos + 2 + len + k)) in
    for k = 1 to len - 1 do
      if
        lasts.(k - 1) > lasts.(k)
        || (lasts.(k - 1) = lasts.(k) && firsts.(k - 1) >= firsts.(k))
      then fail "instances out of right-shift order"
    done;
    groups.(gi) <- { gseq; len; firsts; lasts };
    pos := !pos + 2 + (2 * len)
  done;
  if !pos <> nwords then fail "trailing bytes";
  if total_of groups <> total then fail "total mismatch";
  { groups; total }

(* Content equality over the live prefixes — the arrays may carry slack
   slots and be shared, so structural array equality would be wrong in both
   directions. *)
let group_equal a b =
  a.gseq = b.gseq && a.len = b.len
  &&
  let same = ref true in
  for k = 0 to a.len - 1 do
    if a.firsts.(k) <> b.firsts.(k) || a.lasts.(k) <> b.lasts.(k) then
      same := false
  done;
  !same

let equal a b =
  a.total = b.total
  && Array.length a.groups = Array.length b.groups
  &&
  let same = ref true in
  Array.iteri (fun k ga -> if not (group_equal ga b.groups.(k)) then same := false) a.groups;
  !same

let pp ppf s =
  Format.fprintf ppf "@[<v>{ size = %d@," s.total;
  Array.iter
    (fun g ->
      Format.fprintf ppf "  S%d: %a@," g.gseq
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Instance.pp)
        (Array.to_list (group_view g)))
    s.groups;
  Format.fprintf ppf "}@]"
