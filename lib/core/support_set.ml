open Rgs_sequence

type t = {
  groups : (int * Instance.t array) array;
      (* ascending sequence index; each group non-empty, right-shift order *)
  total : int;
}

let empty = { groups = [||]; total = 0 }

let well_formed s =
  Array.for_all
    (fun (i, insts) ->
      Array.length insts > 0
      && Array.for_all (fun (inst : Instance.t) -> inst.Instance.seq = i) insts
      &&
      let sorted = ref true in
      for k = 1 to Array.length insts - 1 do
        if Instance.right_shift_compare insts.(k - 1) insts.(k) >= 0 then sorted := false
      done;
      !sorted)
    s.groups
  && s.total = Array.fold_left (fun n (_, g) -> n + Array.length g) 0 s.groups
  &&
  let ascending = ref true in
  for k = 1 to Array.length s.groups - 1 do
    if fst s.groups.(k - 1) >= fst s.groups.(k) then ascending := false
  done;
  !ascending

(* [well_formed] is an O(size) scan; it is not asserted on the production
   path (Support_set.grow runs millions of times per mining run) but is
   exposed for the test suite to validate every construction route. *)
let unsafe_of_groups groups =
  let total = Array.fold_left (fun n (_, g) -> n + Array.length g) 0 groups in
  { groups; total }

let of_event idx e =
  let db = Inverted_index.db idx in
  let groups = ref [] in
  for i = Seqdb.size db downto 1 do
    let positions = Inverted_index.positions idx ~seq:i e in
    if Array.length positions > 0 then begin
      let insts =
        Array.map (fun l -> { Instance.seq = i; first = l; last = l }) positions
      in
      groups := (i, insts) :: !groups
    end
  done;
  unsafe_of_groups (Array.of_list !groups)

let size s = s.total
let is_empty s = s.total = 0
let num_sequences s = Array.length s.groups
let sequences s = Array.to_list (Array.map fst s.groups)

let instances s =
  List.concat_map (fun (_, g) -> Array.to_list g) (Array.to_list s.groups)

let instances_in s ~seq =
  let found = ref [||] in
  Array.iter (fun (i, g) -> if i = seq then found := g) s.groups;
  !found

let per_sequence_counts s =
  Array.to_list (Array.map (fun (i, g) -> (i, Array.length g)) s.groups)

let lasts s =
  let out = Array.make s.total (0, 0) in
  let k = ref 0 in
  Array.iter
    (fun (i, g) ->
      Array.iter
        (fun (inst : Instance.t) ->
          out.(!k) <- (i, inst.Instance.last);
          incr k)
        g)
    s.groups;
  out

let fold_groups f init s =
  Array.fold_left (fun acc (i, g) -> f acc i g) init s.groups

(* Algorithm 2 (INSgrow). For each sequence holding instances, walk them in
   right-shift order; extend each with the earliest occurrence of [e] after
   max(last_position, last); stop the sequence at the first failure (later
   instances can only fail too, since both bounds are monotone). *)
let grow idx s e =
  Metrics.hit Metrics.insgrow_calls;
  let out = ref [] in
  let buf = ref [||] in
  Array.iter
    (fun (i, g) ->
      let n = Array.length g in
      if Array.length !buf < n then buf := Array.make n { Instance.seq = 0; first = 0; last = 0 };
      let count = ref 0 in
      let last_position = ref 0 in
      (try
         for k = 0 to n - 1 do
           let inst = g.(k) in
           match
             Inverted_index.next idx ~seq:i e
               ~lowest:(max !last_position inst.Instance.last)
           with
           | None -> raise Exit
           | Some lj ->
             last_position := lj;
             !buf.(!count) <- { inst with Instance.last = lj };
             incr count
         done
       with Exit -> ());
      if !count > 0 then out := (i, Array.sub !buf 0 !count) :: !out)
    s.groups;
  unsafe_of_groups (Array.of_list (List.rev !out))

let equal a b = a.total = b.total && a.groups = b.groups

let pp ppf s =
  Format.fprintf ppf "@[<v>{ size = %d@," s.total;
  Array.iter
    (fun (i, g) ->
      Format.fprintf ppf "  S%d: %a@," i
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Instance.pp)
        (Array.to_list g))
    s.groups;
  Format.fprintf ppf "}@]"
