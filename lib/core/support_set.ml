open Rgs_sequence

(* Columnar group storage: per sequence, the (first, last) landmark borders
   of its instances live in two parallel int arrays in right-shift order.
   No per-instance boxing — Instance.t is only materialised at the API
   boundary. Appending growth never changes first positions, so [firsts]
   arrays are shared structurally between a set and its extensions. *)
type group = { gseq : int; firsts : int array; lasts : int array }
type t = { groups : group array; total : int }

let empty = { groups = [||]; total = 0 }

let total_of groups =
  Array.fold_left (fun n g -> n + Array.length g.lasts) 0 groups

let group_view g =
  Array.init (Array.length g.lasts) (fun k ->
      { Instance.seq = g.gseq; first = g.firsts.(k); last = g.lasts.(k) })

let well_formed s =
  Array.for_all
    (fun g ->
      let n = Array.length g.lasts in
      n > 0
      && Array.length g.firsts = n
      &&
      let sorted = ref true in
      for k = 1 to n - 1 do
        (* right-shift order, strict: (last, first) lexicographic *)
        if
          g.lasts.(k - 1) > g.lasts.(k)
          || (g.lasts.(k - 1) = g.lasts.(k) && g.firsts.(k - 1) >= g.firsts.(k))
        then sorted := false
      done;
      !sorted)
    s.groups
  && s.total = total_of s.groups
  &&
  let ascending = ref true in
  for k = 1 to Array.length s.groups - 1 do
    if s.groups.(k - 1).gseq >= s.groups.(k).gseq then ascending := false
  done;
  !ascending

(* [well_formed] is an O(size) scan; it is not asserted on the production
   path (Support_set.grow runs millions of times per mining run) but is
   exposed for the test suite to validate every construction route. *)
let of_group_array groups = { groups; total = total_of groups }

let unsafe_of_packed groups =
  of_group_array
    (Array.map (fun (i, firsts, lasts) -> { gseq = i; firsts; lasts }) groups)

let unsafe_of_groups groups =
  of_group_array
    (Array.map
       (fun (i, insts) ->
         {
           gseq = i;
           firsts = Array.map (fun (inst : Instance.t) -> inst.Instance.first) insts;
           lasts = Array.map (fun (inst : Instance.t) -> inst.Instance.last) insts;
         })
       groups)

let of_event idx e =
  let db = Inverted_index.db idx in
  let groups = ref [] in
  for i = Seqdb.size db downto 1 do
    let positions = Inverted_index.positions idx ~seq:i e in
    if Array.length positions > 0 then
      (* size-1 instances have first = last: share the positions array *)
      groups := { gseq = i; firsts = positions; lasts = positions } :: !groups
  done;
  of_group_array (Array.of_list !groups)

let size s = s.total
let is_empty s = s.total = 0
let num_sequences s = Array.length s.groups
let sequences s = Array.to_list (Array.map (fun g -> g.gseq) s.groups)
let num_groups s = Array.length s.groups
let group_seq s k = s.groups.(k).gseq
let group_firsts s k = s.groups.(k).firsts
let group_lasts s k = s.groups.(k).lasts

let instances s =
  List.concat_map (fun g -> Array.to_list (group_view g)) (Array.to_list s.groups)

let instances_in s ~seq =
  let found = ref [||] in
  Array.iter (fun g -> if g.gseq = seq then found := group_view g) s.groups;
  !found

let per_sequence_counts s =
  Array.to_list (Array.map (fun g -> (g.gseq, Array.length g.lasts)) s.groups)

let lasts s =
  let out = Array.make s.total (0, 0) in
  let k = ref 0 in
  Array.iter
    (fun g ->
      Array.iter
        (fun last ->
          out.(!k) <- (g.gseq, last);
          incr k)
        g.lasts)
    s.groups;
  out

(* Theorem 5 condition (ii), straight off the packed arrays: pairing the
   k-th instances of both sets in global right-shift order, every pair must
   share its sequence and the extension's last may not exceed the
   pattern's. With both sets grouped by ascending sequence this holds iff
   the group partitions coincide and the lasts arrays dominate pointwise. *)
exception Not_dominated

let border_dominated ~extension ~pattern =
  extension.total = pattern.total
  && Array.length extension.groups = Array.length pattern.groups
  &&
  try
    Array.iter2
      (fun ge gp ->
        let n = Array.length ge.lasts in
        if ge.gseq <> gp.gseq || n <> Array.length gp.lasts then raise Not_dominated;
        for k = 0 to n - 1 do
          if ge.lasts.(k) > gp.lasts.(k) then raise Not_dominated
        done)
      extension.groups pattern.groups;
    true
  with Not_dominated -> false

let fold_groups f init s =
  Array.fold_left (fun acc g -> f acc g.gseq (group_view g)) init s.groups

(* Algorithm 2 (INSgrow). For each sequence holding instances, walk them in
   right-shift order; extend each with the earliest occurrence of [e] after
   max(last_position, last); stop the sequence at the first failure (later
   instances can only fail too, since both bounds are monotone). The
   monotonicity is also what lets one index cursor serve the whole group:
   each seek resumes where the previous one ended. *)
let empty_group = { gseq = 0; firsts = [||]; lasts = [||] }

let grow idx s e =
  Metrics.hit Metrics.insgrow_calls;
  let num = Array.length s.groups in
  if num = 0 then empty
  else begin
    let out = Array.make num empty_group in
    let out_count = ref 0 in
    let total = ref 0 in
    (* one reseatable cursor and one metrics flush for the whole pass *)
    let c = Inverted_index.cursor idx ~seq:s.groups.(0).gseq e in
    for gi = 0 to num - 1 do
      let g = s.groups.(gi) in
      if gi > 0 then Inverted_index.reseat c ~seq:g.gseq;
      let lasts = g.lasts in
      let n = Array.length lasts in
      (* Most groups die on the very first seek (the event does not occur
         after the first instance), so nothing is allocated until one
         extension succeeds. *)
      let l0 = Inverted_index.seek_pos c ~lowest:lasts.(0) in
      if l0 >= 0 then begin
        let new_lasts = Array.make n 0 in
        new_lasts.(0) <- l0;
        let count = ref 1 in
        let last_position = ref l0 in
        (try
           for k = 1 to n - 1 do
             let last = lasts.(k) in
             let lowest = if !last_position > last then !last_position else last in
             let lj = Inverted_index.seek_pos c ~lowest in
             if lj < 0 then raise Exit;
             last_position := lj;
             new_lasts.(!count) <- lj;
             incr count
           done
         with Exit -> ());
        let cnt = !count in
        let firsts = if cnt = n then g.firsts else Array.sub g.firsts 0 cnt in
        let lasts = if cnt = n then new_lasts else Array.sub new_lasts 0 cnt in
        out.(!out_count) <- { gseq = g.gseq; firsts; lasts };
        incr out_count;
        total := !total + cnt
      end
    done;
    Inverted_index.cursor_finish c;
    let groups = if !out_count = num then out else Array.sub out 0 !out_count in
    { groups; total = !total }
  end

let equal a b = a.total = b.total && a.groups = b.groups

let pp ppf s =
  Format.fprintf ppf "@[<v>{ size = %d@," s.total;
  Array.iter
    (fun g ->
      Format.fprintf ppf "  S%d: %a@," g.gseq
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Instance.pp)
        (Array.to_list (group_view g)))
    s.groups;
  Format.fprintf ppf "}@]"
