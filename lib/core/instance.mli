(** Pattern instances.

    An instance of a pattern [P = e1..em] in [SeqDB] is a pair
    [(i, <l1,...,lm>)] where [<l1,...,lm>] is a landmark of [P] in [S_i]
    (Definition 2.2). Two representations are provided:

    - {!full}: the sequence index together with the whole landmark. Used for
      reporting, for the reference oracle and in tests.
    - {!t} (compressed): the triple [(i, l1, lm)] of Section III-D. The
      mining algorithms only ever need the first and last landmark
      positions, so instances are stored in constant space. *)

open Rgs_sequence

type t = { seq : int; first : int; last : int }
(** Compressed instance [(i, l1, lm)]. For a size-1 pattern,
    [first = last]. *)

type full = { fseq : int; landmark : int array }
(** Full instance [(i, <l1,...,lm>)]. Landmark positions are 1-based and
    strictly increasing. *)

val compress : full -> t
(** @raise Invalid_argument on an empty landmark. *)

val right_shift_compare : t -> t -> int
(** The right-shift order of Definition 3.1: [(i,<..lm>)] comes before
    [(i',<..l'm>)] iff [i < i'] or ([i = i'] and [lm < l'm]). Ties (same
    sequence and same last position) are broken by [first] to make the order
    total on distinct compressed instances. *)

val right_shift_compare_full : full -> full -> int
(** The same order on full instances: sequence, then last landmark
    position, with ties broken lexicographically over the earlier landmark
    positions (then by landmark length). Total on distinct instances and
    consistent with {!right_shift_compare} on the compressed views. *)

val overlap : full -> full -> bool
(** Definition 2.3: instances of the {e same} pattern overlap iff they are in
    the same sequence and agree on the landmark position of at least one
    pattern index ([∃ j, lj = l'j]).
    @raise Invalid_argument when landmark lengths differ. *)

val non_overlapping : full -> full -> bool

val strictly_overlap : full -> full -> bool
(** The stronger variant of footnote 1: same sequence and {e any} shared
    position, regardless of its index ([∃ j j', lj = l'j']). Under this
    definition computing the support is NP-complete; see
    {!Strict_overlap}. *)

val is_landmark_of : Pattern.t -> Sequence.t -> int array -> bool
(** [is_landmark_of p s l] checks Definition 2.1: [l] is strictly increasing,
    within bounds, and [S[l_j] = e_j] for all [j]. *)

val pp : Format.formatter -> t -> unit
val pp_full : Format.formatter -> full -> unit
val equal : t -> t -> bool
val equal_full : full -> full -> bool
