(** Patterns — the gapped subsequences being mined.

    A pattern [P = e1 e2 ... em] is itself a sequence of events
    (Section II). This module adds the pattern-growth operation [P ◦ e]
    (Definition 3.3) and the single-event {e extensions} of Definition 3.4
    used by the closure and landmark-border checks. *)

open Rgs_sequence

type t
(** A non-empty-or-empty immutable pattern. *)

val empty : t

val of_list : Event.t list -> t
val of_array : Event.t array -> t

val of_string : string -> t
(** Letter encoding, as {!Rgs_sequence.Sequence.of_string}. *)

val to_list : t -> Event.t list
val to_array : t -> Event.t array
(** Fresh copy. *)

val to_sequence : t -> Sequence.t

val length : t -> int
val is_empty : t -> bool

val get : t -> int -> Event.t
(** 1-based, matching the paper's [e_j]. *)

val last : t -> Event.t
(** @raise Invalid_argument on the empty pattern. *)

val grow : t -> Event.t -> t
(** [grow p e] is [P ◦ e] (Definition 3.3): append [e]. *)

val concat : t -> t -> t
(** [concat p q] is [P ◦ Q]. *)

val insert : t -> at:int -> Event.t -> t
(** [insert p ~at:j e] places [e] so that it becomes the [(j+1)]-th event:
    [at = 0] prepends, [at = length p] appends, [0 < at < length p] inserts
    between [e_at] and [e_{at+1}]. These are exactly the extensions of
    Definition 3.4.
    @raise Invalid_argument when [at] is out of [0 .. length p]. *)

val extensions : t -> events:Event.t list -> (int * Event.t * t) list
(** All single-event extensions [insert p ~at e] for [at] in
    [0 .. length p] and [e] in [events], as [(at, e, extended)] triples.
    Extensions at [at = length p] (appends) come last. *)

val is_subpattern : t -> of_:t -> bool
(** Subsequence containment test (Definition 2.1): [is_subpattern p ~of_:q]
    iff [P ⊑ Q]. The empty pattern is a subpattern of everything. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
val pp_with : Codec.t -> Format.formatter -> t -> unit
val to_string : t -> string

val events : t -> Event.t list
(** Distinct events of the pattern, ascending. *)
