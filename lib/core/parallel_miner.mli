(** Domain-parallel mining (OCaml 5 multicore) with crash isolation.

    The DFS subtrees rooted at distinct size-1 patterns are independent:
    the inverted index is read-only after construction and support sets
    are subtree-local. Each domain repeatedly claims the next unclaimed
    root from an atomic counter and mines its subtree with the sequential
    algorithms; per-root results are stored in a slot array, so the merged
    output is {b deterministic} (identical to the sequential DFS order)
    regardless of scheduling.

    Resilience: an exception raised while mining one root is contained to
    that root — every spawned domain is always joined, the root is retried
    once sequentially, and if the retry fails too only that root's patterns
    are missing from the output, with [stats.outcome = Worker_failed]. A
    shared {!Budget.t} stops the whole pool cooperatively; roots finished
    before the stop keep their results.

    An extension beyond the paper — the 2009 evaluation was single-core —
    kept orthogonal: all correctness arguments are the sequential
    algorithms'. *)

open Rgs_sequence

val default_domains : unit -> int
(** [min (Domain.recommended_domain_count ()) 8], at least 1. *)

val auto_shards : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — the shard count
    the CLIs' [--shards auto] resolves to (uncapped, unlike
    {!default_domains}: shards are index views, not running domains,
    so there is no oversubscription cost to matching the machine). *)

type 'a root_status =
  | Done of 'a  (** the root's miner returned (possibly with partial results
                    and a stop outcome recorded in its stats) *)
  | Failed of exn  (** raised in the pool; {!retry_failed} not yet run *)
  | Skipped  (** never claimed: the pool halted on a budget stop first *)
  | Quarantined of { exn : exn; backtrace : string }
      (** poison root: raised in the pool {e and} in the sequential retry.
          {!Miner.mine_resumable} records these in the checkpoint so a
          resumed run skips them instead of re-crashing. *)

val run_pool :
  ?trace:Trace.t ->
  ?halt_on:('a -> bool) ->
  ?order:int array ->
  domains:int ->
  num_roots:int ->
  mine_root:(int -> 'a) ->
  unit ->
  'a root_status array * Budget.outcome option
(** Generic crash-isolated work pool over root indices [0 .. num_roots-1].
    Exceptions from [mine_root] are captured per root as [Failed] (never
    escaping a domain); all spawned domains are joined before returning,
    even if the main-domain worker itself raises. When [halt_on result]
    holds for a completed root, or a {!Budget.Stop} escapes [mine_root],
    the pool stops claiming further roots; the second component is the
    escaped stop reason, if any. No retry is performed here — see
    {!retry_failed}.

    [order], when given, must be a permutation of [0 .. num_roots-1]: the
    [k]-th claim mines root [order.(k)]. Slots, fault sites
    ({!Budget.Fault.Worker}) and checkpoints stay keyed by root index, so
    the mined output and per-root statuses are identical for every order —
    a permutation only changes which roots are in flight when the pool
    halts. @raise Invalid_argument when its length is not [num_roots].

    Every worker samples {!Metrics.peak_live_words} for its own domain as
    it exits, so the merged snapshot reflects parallel memory use, and
    records its lifecycle as a [Worker] span into its per-domain buffer of
    [trace] (default {!Trace.null}); [mine_root] implementations that want
    per-root spans should record through [Trace.for_domain trace]. *)

val retry_failed :
  ?trace:Trace.t ->
  ?backoff_s:float ->
  mine_root:(int -> 'a) ->
  'a root_status array ->
  'a root_status array
(** Retries every [Failed] slot once, sequentially, in the calling domain,
    sleeping [backoff_s] (default 0.01) before each retry so transient
    pressure has a moment to clear; updates the array in place and returns
    it. The {!Budget.Fault.Worker} site fires again for each retried root,
    so a persistent injected fault fails both attempts — the slot then
    becomes [Quarantined] with the exception and backtrace preserved
    ({!Metrics.quarantined_roots}, [Quarantine] trace instant). Each retry
    bumps {!Metrics.root_retries} and records a [Root_retry] instant. *)

val largest_first_order :
  Inverted_index.t -> Rgs_sequence.Event.t array -> int array
(** A claim order for [run_pool]'s [?order]: root indices sorted by their
    event's occurrence count descending, {b ties broken by the lower root
    index} — the comparator is a total order, so the permutation is
    identical on every OCaml version and backend ([Array.sort] is not
    stable, so an array-order tie-break would be). Heavy DFS subtrees
    start first, so no domain is left mining a large root alone at the
    tail of the pool run — longest-processing-time-first scheduling on
    the size-1 support proxy. *)

val mine_steal :
  ?domains:int ->
  ?max_length:int ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?shards:int ->
  ?query:Query.t ->
  ?split_len:int ->
  strategy:Engine.strategy ->
  Inverted_index.t ->
  min_sup:int ->
  Mined.t list * Engine.stats * int
(** The work-stealing executor: dynamic load balancing at DFS-subtree
    granularity instead of [run_pool]'s static per-root claiming. Every
    worker owns a {!Deque}; it claims fresh roots from a shared counter
    in {!largest_first_order} while any remain, splits nodes of pattern
    length at most [split_len] (default 2) into one task per admitted
    child ([Engine.expand]) pushed onto its own deque, and mines deeper
    subtrees whole ([Engine.run_frame]). A worker with no roots left and
    an empty deque steals the oldest task from a sibling — the largest
    deferred subtree — so a skewed root set no longer serializes the
    tail of the run ([Metrics.steal_attempts]/[steal_successes],
    [Steal] trace instants, [deque_max_depth]).

    {b Determinism}: per-task results are keyed by their DFS path and
    stitched in root order then path order, so the output is identical
    to the sequential miner's for every schedule, shard count and domain
    count. [query] runs through {!Query.shared} (the top-k floor is a
    shared atomic inherited by stolen subtrees; ties at the k-th support
    are resolved canonically in [finalize], not by arrival). [shards]
    wraps the strategy with {!Shard_merge.strategy} per worker.

    Failure handling matches [run_pool] + {!retry_failed}: the first
    exception in any task of a root fails the whole root (its other
    tasks short-circuit), the root is retried sequentially and
    quarantined if the retry fails too — the third result is the number
    of quarantined roots, and [stats.outcome] is [Worker_failed] when
    any root was lost. A {!Budget.Stop} halts all workers cooperatively;
    roots whose every task finished keep their results.
    @raise Invalid_argument when [min_sup < 1], [domains < 1] or
    [shards < 1]. *)

val mine_all :
  ?domains:int ->
  ?max_length:int ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?schedule:[ `Index | `Largest_first ] ->
  ?steal:bool ->
  ?shards:int ->
  ?shard_dispatch:Shard_merge.dispatch ->
  Inverted_index.t ->
  min_sup:int ->
  Mined.t list * Gsgrow.stats
(** Parallel GSgrow. Without failures or budget stops, the output equals
    [Gsgrow.mine idx ~min_sup] exactly (order included); stats are summed
    across domains. Crashing roots lose only their own patterns after one
    sequential retry ([stats.outcome = Worker_failed]); budget stops return
    the roots finished so far ([stats.outcome] carries the reason).
    [schedule] picks the claim order — [`Largest_first] (default,
    {!largest_first_order}) or [`Index]; both yield the identical output.
    [steal] routes the run through {!mine_steal} (same output, dynamic
    balancing; [schedule] is then moot — stealing always claims largest
    first). [shards] runs every instance growth shard-by-shard
    ({!Shard_merge}) in either mode — again identical output;
    [shard_dispatch] routes the per-shard grows through a supervisor's
    closure ({!Shard_merge.dispatch}, non-steal mode only — it is
    called concurrently from every pool domain, so implementations
    must be thread-safe).
    @raise Invalid_argument when [min_sup < 1] or [domains < 1]. *)

val mine_closed :
  ?domains:int ->
  ?max_length:int ->
  ?use_lb_check:bool ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?schedule:[ `Index | `Largest_first ] ->
  ?steal:bool ->
  ?shards:int ->
  ?shard_dispatch:Shard_merge.dispatch ->
  Inverted_index.t ->
  min_sup:int ->
  Mined.t list * Clogsgrow.stats
(** Parallel CloGSgrow; same guarantees. *)
