(** Domain-parallel mining (OCaml 5 multicore).

    The DFS subtrees rooted at distinct size-1 patterns are independent:
    the inverted index is read-only after construction and support sets
    are subtree-local. Each domain repeatedly claims the next unclaimed
    root from an atomic counter and mines its subtree with the sequential
    algorithms; per-root results are stored in a slot array, so the merged
    output is {b deterministic} (identical to the sequential DFS order)
    regardless of scheduling.

    An extension beyond the paper — the 2009 evaluation was single-core —
    kept orthogonal: all correctness arguments are the sequential
    algorithms'. *)

open Rgs_sequence

val default_domains : unit -> int
(** [min (Domain.recommended_domain_count ()) 8], at least 1. *)

val mine_all :
  ?domains:int ->
  ?max_length:int ->
  Inverted_index.t ->
  min_sup:int ->
  Mined.t list * Gsgrow.stats
(** Parallel GSgrow. Output equals [Gsgrow.mine idx ~min_sup] exactly
    (order included); stats are summed across domains.
    @raise Invalid_argument when [min_sup < 1] or [domains < 1]. *)

val mine_closed :
  ?domains:int ->
  ?max_length:int ->
  ?use_lb_check:bool ->
  Inverted_index.t ->
  min_sup:int ->
  Mined.t list * Clogsgrow.stats
(** Parallel CloGSgrow; same guarantees. *)
