(** Instance growth — Algorithm 2 of the paper, under its paper name.

    [INSgrow(SeqDB, P, I, e)] extends a leftmost support set [I] of pattern
    [P] into a leftmost support set of [P ◦ e] (Lemma 4). The production
    implementation works on compressed instances ({!Support_set.grow});
    this module also provides a full-landmark variant used for reporting
    support sets to users and for cross-checking in tests. *)

open Rgs_sequence

val run : Inverted_index.t -> Support_set.t -> Event.t -> Support_set.t
(** Compressed instance growth; alias of {!Support_set.grow}. *)

val run_full :
  Inverted_index.t -> Instance.full list -> Event.t -> Instance.full list
(** Full-landmark instance growth. [i] must be a leftmost support set in
    right-shift order, grouped by ascending sequence (as produced by
    {!full_of_event} and by this function); the result keeps that shape.
    Semantically identical to {!run} — tests verify that compressing the
    result of [run_full] equals the result of [run]. *)

val full_of_event : Inverted_index.t -> Event.t -> Instance.full list
(** The leftmost support set of the size-1 pattern [e], with landmarks. *)
