open Rgs_sequence

type closure_spec = {
  check :
    pattern:Pattern.t ->
    support_set:Support_set.t ->
    prefix_rev_chain:Support_set.t list ->
    Closure.verdict;
  detect_equal_append : bool;
}

type strategy = {
  name : string;
  grow : Inverted_index.t -> Support_set.t -> Event.t -> Support_set.t;
  closure :
    (Inverted_index.t -> events:Event.t list -> trace:Trace.t -> closure_spec)
    option;
}

type stats = {
  emitted : int;
  dfs_nodes : int;
  insgrow_calls : int;
  lb_pruned : int;
  non_closed_dropped : int;
  query_cuts : int;
  floor_prunes : int;
  truncated : bool;
  outcome : Budget.outcome;
}

exception Budget_exhausted

let run ?max_length ?events ?roots ?(should_stop = fun () -> false) ?budget
    ?(trace = Trace.null) ?plan strategy idx ~min_sup ~emit =
  if min_sup < 1 then invalid_arg (strategy.name ^ ": min_sup must be >= 1");
  let events =
    match events with
    | Some es -> es
    | None -> Inverted_index.frequent_events idx ~min_sup
  in
  let roots = match roots with Some rs -> rs | None -> events in
  let plan = match plan with Some p -> p | None -> Query.trivial ~min_sup in
  let closure =
    Option.map (fun mk -> mk idx ~events ~trace) strategy.closure
  in
  let emitted = ref 0 in
  let dfs_nodes = ref 0 in
  let insgrow_calls = ref 0 in
  let lb_pruned = ref 0 in
  let non_closed_dropped = ref 0 in
  let query_cuts = ref 0 in
  let floor_prunes = ref 0 in
  let outcome = ref Budget.Completed in
  let within_length p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  (* Child admission shared by both DFS shapes: the support size against
     the plan's floor. Children in the band [min_sup <= size < floor ()]
     are sound frequent extensions removed only by the dynamic floor; they
     are counted apart from the static Apriori rejections so top-k savings
     stay visible. *)
  let admit ~depth' size =
    if size >= plan.Query.floor () then `Recurse
    else begin
      if size >= min_sup then begin
        incr floor_prunes;
        Trace.instant trace Trace.Query_cut ~a0:depth' ~a1:1
      end;
      `Skip
    end
  in
  let rec mine_fre p i qstate rev_chain =
    if should_stop () then raise Budget_exhausted;
    (match budget with Some b -> Budget.check b | None -> ());
    incr dfs_nodes;
    let sup_p = Support_set.size i in
    Trace.instant trace Trace.Node ~a0:(Pattern.length p) ~a1:sup_p;
    match closure with
    | None ->
      if plan.Query.emit_ok ~state:qstate then begin
        incr emitted;
        emit { Mined.pattern = p; support = sup_p; support_set = i }
      end;
      if within_length p then begin
        let depth' = Pattern.length p + 1 in
        let recursed = ref 0 in
        List.iter
          (fun e ->
            let qstate' = plan.Query.child_state qstate e in
            if plan.Query.cut ~state:qstate' ~depth:depth' then begin
              incr query_cuts;
              Trace.instant trace Trace.Query_cut ~a0:depth' ~a1:0
            end
            else begin
              incr insgrow_calls;
              Budget.Fault.fire Budget.Fault.Insgrow;
              let i_plus = strategy.grow idx i e in
              match admit ~depth' (Support_set.size i_plus) with
              | `Recurse ->
                incr recursed;
                mine_fre (Pattern.grow p e) i_plus qstate' (i_plus :: rev_chain)
              | `Skip -> ()
            end)
          events;
        Trace.instant trace Trace.Extension ~a0:(Pattern.length p) ~a1:!recursed
      end
    | Some c ->
      (* Prunability does not depend on the appended extensions (an append
         always shifts the landmark border right), so the closure check
         runs first: a pruned subtree never pays for its appends. *)
      let verdict =
        c.check ~pattern:p ~support_set:i ~prefix_rev_chain:rev_chain
      in
      if verdict.Closure.prunable then begin
        incr lb_pruned;
        Trace.instant trace Trace.Lb_prune ~a0:(Pattern.length p) ~a1:sup_p
      end
      else begin
        (* All appends are materialised even under a query: closedness of
           [p] depends on whether {e some} candidate append has equal
           support, so the query may only cut recursion, not growth. *)
        let appends =
          List.map
            (fun e ->
              incr insgrow_calls;
              Budget.Fault.fire Budget.Fault.Insgrow;
              (e, strategy.grow idx i e))
            events
        in
        let has_equal_append =
          c.detect_equal_append
          && List.exists (fun (_, i') -> Support_set.size i' = sup_p) appends
        in
        if verdict.Closure.closed && not has_equal_append then begin
          if plan.Query.emit_ok ~state:qstate then begin
            incr emitted;
            emit { Mined.pattern = p; support = sup_p; support_set = i }
          end
        end
        else incr non_closed_dropped;
        if within_length p then begin
          let depth' = Pattern.length p + 1 in
          let recursed = ref 0 in
          List.iter
            (fun (e, i_plus) ->
              let qstate' = plan.Query.child_state qstate e in
              if plan.Query.cut ~state:qstate' ~depth:depth' then begin
                incr query_cuts;
                Trace.instant trace Trace.Query_cut ~a0:depth' ~a1:0
              end
              else
                match admit ~depth' (Support_set.size i_plus) with
                | `Recurse ->
                  incr recursed;
                  mine_fre (Pattern.grow p e) i_plus qstate'
                    (i_plus :: rev_chain)
                | `Skip -> ())
            appends;
          Trace.instant trace Trace.Extension ~a0:(Pattern.length p)
            ~a1:!recursed
        end
      end
  in
  let mine_root e =
    let qstate = plan.Query.root_state e in
    if plan.Query.cut ~state:qstate ~depth:1 then begin
      incr query_cuts;
      Trace.instant trace Trace.Query_cut ~a0:1 ~a1:0
    end
    else begin
      let i = Support_set.of_event idx e in
      match admit ~depth':1 (Support_set.size i) with
      | `Skip -> ()
      | `Recurse ->
        let t0 = Trace.now trace in
        let before = !emitted in
        let finish () =
          Trace.span trace Trace.Root ~a0:e ~a1:(!emitted - before) ~start:t0
        in
        (match mine_fre (Pattern.of_list [ e ]) i qstate [ i ] with
        | () -> finish ()
        | exception ex ->
          finish ();
          raise ex)
    end
  in
  (try List.iter mine_root roots with
  | Budget_exhausted ->
    outcome := Budget.Truncated;
    Metrics.hit Metrics.budget_stops;
    Trace.instant trace Trace.Budget_stop
      ~a0:(Budget.severity Budget.Truncated) ~a1:0
  | Budget.Stop reason ->
    outcome := reason;
    Metrics.hit Metrics.budget_stops;
    Trace.instant trace Trace.Budget_stop ~a0:(Budget.severity reason) ~a1:0);
  Metrics.add Metrics.dfs_nodes !dfs_nodes;
  Metrics.add Metrics.patterns_emitted !emitted;
  Metrics.add Metrics.lb_prunes !lb_pruned;
  Metrics.add Metrics.query_targeted_cuts !query_cuts;
  Metrics.add Metrics.query_floor_prunes !floor_prunes;
  {
    emitted = !emitted;
    dfs_nodes = !dfs_nodes;
    insgrow_calls = !insgrow_calls;
    lb_pruned = !lb_pruned;
    non_closed_dropped = !non_closed_dropped;
    query_cuts = !query_cuts;
    floor_prunes = !floor_prunes;
    truncated = Budget.is_stop !outcome;
    outcome = !outcome;
  }
