open Rgs_sequence

type closure_spec = {
  check :
    pattern:Pattern.t ->
    support_set:Support_set.t ->
    prefix_rev_chain:Support_set.t list ->
    Closure.verdict;
  detect_equal_append : bool;
}

type strategy = {
  name : string;
  grow : Inverted_index.t -> Support_set.t -> Event.t -> Support_set.t;
  closure :
    (Inverted_index.t -> events:Event.t list -> trace:Trace.t -> closure_spec)
    option;
}

type stats = {
  emitted : int;
  dfs_nodes : int;
  insgrow_calls : int;
  lb_pruned : int;
  non_closed_dropped : int;
  query_cuts : int;
  floor_prunes : int;
  truncated : bool;
  outcome : Budget.outcome;
}

exception Budget_exhausted

(* --- the reified DFS ---

   The search is split into a per-run [ctx] (strategy, query plan, limits,
   counters) and a per-node [frame] (pattern, support set, query state,
   prefix chain). [run_frame] walks a whole subtree with the exact lazy
   sibling interleaving of the original recursive miner; [expand] performs
   a single node visit and returns the admitted child frames, which is
   what lets an executor defer subtrees (push them on a deque, hand them
   to another worker) instead of recursing in place. Both visit shapes
   share the node-entry, admission and emission bookkeeping, so a subtree
   produces the same emissions and counter increments whichever way it is
   driven. *)

type ctx = {
  strategy : strategy;
  idx : Inverted_index.t;
  min_sup : int;
  max_length : int option;
  events : Event.t list;
  plan : Query.plan;
  closure : closure_spec option;
  should_stop : unit -> bool;
  budget : Budget.t option;
  trace : Trace.t;
  emitted : int ref;
  dfs_nodes : int ref;
  insgrow_calls : int ref;
  lb_pruned : int ref;
  non_closed_dropped : int ref;
  query_cuts : int ref;
  floor_prunes : int ref;
}

type frame = {
  f_pattern : Pattern.t;
  f_support : Support_set.t;
  f_qstate : int;
  f_rev_chain : Support_set.t list;
}

let make_ctx ?max_length ?events ?(should_stop = fun () -> false) ?budget
    ?(trace = Trace.null) ?plan strategy idx ~min_sup =
  if min_sup < 1 then invalid_arg (strategy.name ^ ": min_sup must be >= 1");
  let events =
    match events with
    | Some es -> es
    | None -> Inverted_index.frequent_events idx ~min_sup
  in
  let plan = match plan with Some p -> p | None -> Query.trivial ~min_sup in
  let closure =
    Option.map (fun mk -> mk idx ~events ~trace) strategy.closure
  in
  {
    strategy;
    idx;
    min_sup;
    max_length;
    events;
    plan;
    closure;
    should_stop;
    budget;
    trace;
    emitted = ref 0;
    dfs_nodes = ref 0;
    insgrow_calls = ref 0;
    lb_pruned = ref 0;
    non_closed_dropped = ref 0;
    query_cuts = ref 0;
    floor_prunes = ref 0;
  }

let ctx_events c = c.events
let ctx_emitted c = !(c.emitted)

let frame_pattern f = f.f_pattern
let frame_support f = f.f_support

let within_length c p =
  match c.max_length with None -> true | Some l -> Pattern.length p < l

(* Child admission shared by both DFS shapes: the support size against
   the plan's floor. Children in the band [min_sup <= size < floor ()]
   are sound frequent extensions removed only by the dynamic floor; they
   are counted apart from the static Apriori rejections so top-k savings
   stay visible. *)
let admit c ~depth' size =
  if size >= c.plan.Query.floor () then `Recurse
  else begin
    if size >= c.min_sup then begin
      incr c.floor_prunes;
      Trace.instant c.trace Trace.Query_cut ~a0:depth' ~a1:1
    end;
    `Skip
  end

(* node entry: stop/budget checks, node count, [Node] instant *)
let enter c f =
  if c.should_stop () then raise Budget_exhausted;
  (match c.budget with Some b -> Budget.check b | None -> ());
  incr c.dfs_nodes;
  let sup = Support_set.size f.f_support in
  Trace.instant c.trace Trace.Node ~a0:(Pattern.length f.f_pattern) ~a1:sup;
  sup

let emit_node c ~emit f sup =
  if c.plan.Query.emit_ok ~state:f.f_qstate then begin
    incr c.emitted;
    emit { Mined.pattern = f.f_pattern; support = sup; support_set = f.f_support }
  end

let grow_child c i e =
  incr c.insgrow_calls;
  Budget.Fault.fire Budget.Fault.Insgrow;
  c.strategy.grow c.idx i e

let rec run_frame c ~emit f =
  let sup_p = enter c f in
  let p = f.f_pattern and i = f.f_support and qstate = f.f_qstate in
  match c.closure with
  | None ->
    emit_node c ~emit f sup_p;
    if within_length c p then begin
      let depth' = Pattern.length p + 1 in
      let recursed = ref 0 in
      List.iter
        (fun e ->
          let qstate' = c.plan.Query.child_state qstate e in
          if c.plan.Query.cut ~state:qstate' ~depth:depth' then begin
            incr c.query_cuts;
            Trace.instant c.trace Trace.Query_cut ~a0:depth' ~a1:0
          end
          else begin
            let i_plus = grow_child c i e in
            match admit c ~depth' (Support_set.size i_plus) with
            | `Recurse ->
              incr recursed;
              run_frame c ~emit
                {
                  f_pattern = Pattern.grow p e;
                  f_support = i_plus;
                  f_qstate = qstate';
                  f_rev_chain = i_plus :: f.f_rev_chain;
                }
            | `Skip -> ()
          end)
        c.events;
      Trace.instant c.trace Trace.Extension ~a0:(Pattern.length p) ~a1:!recursed
    end
  | Some cl ->
    (* Prunability does not depend on the appended extensions (an append
       always shifts the landmark border right), so the closure check
       runs first: a pruned subtree never pays for its appends. *)
    let verdict =
      cl.check ~pattern:p ~support_set:i ~prefix_rev_chain:f.f_rev_chain
    in
    if verdict.Closure.prunable then begin
      incr c.lb_pruned;
      Trace.instant c.trace Trace.Lb_prune ~a0:(Pattern.length p) ~a1:sup_p
    end
    else begin
      (* All appends are materialised even under a query: closedness of
         [p] depends on whether {e some} candidate append has equal
         support, so the query may only cut recursion, not growth. *)
      let appends = List.map (fun e -> (e, grow_child c i e)) c.events in
      let has_equal_append =
        cl.detect_equal_append
        && List.exists (fun (_, i') -> Support_set.size i' = sup_p) appends
      in
      if verdict.Closure.closed && not has_equal_append then
        emit_node c ~emit f sup_p
      else incr c.non_closed_dropped;
      if within_length c p then begin
        let depth' = Pattern.length p + 1 in
        let recursed = ref 0 in
        List.iter
          (fun (e, i_plus) ->
            let qstate' = c.plan.Query.child_state qstate e in
            if c.plan.Query.cut ~state:qstate' ~depth:depth' then begin
              incr c.query_cuts;
              Trace.instant c.trace Trace.Query_cut ~a0:depth' ~a1:0
            end
            else
              match admit c ~depth' (Support_set.size i_plus) with
              | `Recurse ->
                incr recursed;
                run_frame c ~emit
                  {
                    f_pattern = Pattern.grow p e;
                    f_support = i_plus;
                    f_qstate = qstate';
                    f_rev_chain = i_plus :: f.f_rev_chain;
                  }
              | `Skip -> ())
          appends;
        Trace.instant c.trace Trace.Extension ~a0:(Pattern.length p)
          ~a1:!recursed
      end
    end

(* One node visit, children returned instead of recursed into. The only
   behavioural difference with [run_frame] is eager sibling growth in the
   non-closure shape (the closure shape grows all appends up front either
   way): the same children are admitted, in the same left-to-right order,
   and the node's own emission happens before any child is visited — so
   driving every frame through [expand] in DFS order replays [run_frame]'s
   emission sequence exactly. *)
let expand c ~emit f =
  let sup_p = enter c f in
  let p = f.f_pattern and i = f.f_support and qstate = f.f_qstate in
  let collect_children appends =
    let depth' = Pattern.length p + 1 in
    let out = ref [] in
    List.iter
      (fun (e, i_plus) ->
        let qstate' = c.plan.Query.child_state qstate e in
        if c.plan.Query.cut ~state:qstate' ~depth:depth' then begin
          incr c.query_cuts;
          Trace.instant c.trace Trace.Query_cut ~a0:depth' ~a1:0
        end
        else
          match admit c ~depth' (Support_set.size i_plus) with
          | `Recurse ->
            out :=
              {
                f_pattern = Pattern.grow p e;
                f_support = i_plus;
                f_qstate = qstate';
                f_rev_chain = i_plus :: f.f_rev_chain;
              }
              :: !out
          | `Skip -> ())
      appends;
    let children = List.rev !out in
    Trace.instant c.trace Trace.Extension ~a0:(Pattern.length p)
      ~a1:(List.length children);
    children
  in
  match c.closure with
  | None ->
    emit_node c ~emit f sup_p;
    if not (within_length c p) then []
    else begin
      (* grow after the cut check, like [run_frame]: cut children are
         never grown *)
      let depth' = Pattern.length p + 1 in
      let out = ref [] in
      List.iter
        (fun e ->
          let qstate' = c.plan.Query.child_state qstate e in
          if c.plan.Query.cut ~state:qstate' ~depth:depth' then begin
            incr c.query_cuts;
            Trace.instant c.trace Trace.Query_cut ~a0:depth' ~a1:0
          end
          else begin
            let i_plus = grow_child c i e in
            match admit c ~depth' (Support_set.size i_plus) with
            | `Recurse ->
              out :=
                {
                  f_pattern = Pattern.grow p e;
                  f_support = i_plus;
                  f_qstate = qstate';
                  f_rev_chain = i_plus :: f.f_rev_chain;
                }
                :: !out
            | `Skip -> ()
          end)
        c.events;
      let children = List.rev !out in
      Trace.instant c.trace Trace.Extension ~a0:(Pattern.length p)
        ~a1:(List.length children);
      children
    end
  | Some cl ->
    let verdict =
      cl.check ~pattern:p ~support_set:i ~prefix_rev_chain:f.f_rev_chain
    in
    if verdict.Closure.prunable then begin
      incr c.lb_pruned;
      Trace.instant c.trace Trace.Lb_prune ~a0:(Pattern.length p) ~a1:sup_p;
      []
    end
    else begin
      let appends = List.map (fun e -> (e, grow_child c i e)) c.events in
      let has_equal_append =
        cl.detect_equal_append
        && List.exists (fun (_, i') -> Support_set.size i' = sup_p) appends
      in
      if verdict.Closure.closed && not has_equal_append then
        emit_node c ~emit f sup_p
      else incr c.non_closed_dropped;
      if within_length c p then collect_children appends else []
    end

let root_frame c e =
  let qstate = c.plan.Query.root_state e in
  if c.plan.Query.cut ~state:qstate ~depth:1 then begin
    incr c.query_cuts;
    Trace.instant c.trace Trace.Query_cut ~a0:1 ~a1:0;
    None
  end
  else begin
    let i = Support_set.of_event c.idx e in
    match admit c ~depth':1 (Support_set.size i) with
    | `Skip -> None
    | `Recurse ->
      Some
        {
          f_pattern = Pattern.of_list [ e ];
          f_support = i;
          f_qstate = qstate;
          f_rev_chain = [ i ];
        }
  end

let note_stop c outcome =
  Metrics.hit Metrics.budget_stops;
  Trace.instant c.trace Trace.Budget_stop ~a0:(Budget.severity outcome) ~a1:0

let finish c ~outcome =
  Metrics.add Metrics.dfs_nodes !(c.dfs_nodes);
  Metrics.add Metrics.patterns_emitted !(c.emitted);
  Metrics.add Metrics.lb_prunes !(c.lb_pruned);
  Metrics.add Metrics.query_targeted_cuts !(c.query_cuts);
  Metrics.add Metrics.query_floor_prunes !(c.floor_prunes);
  {
    emitted = !(c.emitted);
    dfs_nodes = !(c.dfs_nodes);
    insgrow_calls = !(c.insgrow_calls);
    lb_pruned = !(c.lb_pruned);
    non_closed_dropped = !(c.non_closed_dropped);
    query_cuts = !(c.query_cuts);
    floor_prunes = !(c.floor_prunes);
    truncated = Budget.is_stop outcome;
    outcome;
  }

let run ?max_length ?events ?roots ?should_stop ?budget ?trace ?plan strategy
    idx ~min_sup ~emit =
  let c =
    make_ctx ?max_length ?events ?should_stop ?budget ?trace ?plan strategy idx
      ~min_sup
  in
  let roots = match roots with Some rs -> rs | None -> c.events in
  let outcome = ref Budget.Completed in
  let mine_root e =
    match root_frame c e with
    | None -> ()
    | Some f ->
      let t0 = Trace.now c.trace in
      let before = !(c.emitted) in
      let finish_span () =
        Trace.span c.trace Trace.Root ~a0:e ~a1:(!(c.emitted) - before)
          ~start:t0
      in
      (match run_frame c ~emit f with
      | () -> finish_span ()
      | exception ex ->
        finish_span ();
        raise ex)
  in
  (try List.iter mine_root roots with
  | Budget_exhausted ->
    outcome := Budget.Truncated;
    note_stop c Budget.Truncated
  | Budget.Stop reason ->
    outcome := reason;
    note_stop c reason);
  finish c ~outcome:!outcome
