(** Exact reference implementations (exponential) used as test oracles.

    Everything here enumerates explicitly: all landmarks of a pattern, the
    true maximum non-overlapping instance set (by branch and bound over the
    conflict graph), and the complete frequent / closed pattern sets on tiny
    databases. The production algorithms ({!Sup_comp}, {!Gsgrow},
    {!Clogsgrow}) are validated against these in the test suite.

    All functions may raise {!Too_large} when an internal enumeration
    exceeds its budget — keep inputs tiny. *)

open Rgs_sequence

exception Too_large

val landmarks_in :
  ?max_landmarks:int ->
  ?min_gap:int ->
  ?max_gap:int ->
  Sequence.t ->
  Pattern.t ->
  int array list
(** All landmarks of [P] in [S] (Definition 2.1), in lexicographic order.
    [max_landmarks] defaults to [200_000]. When gap bounds are given, only
    landmarks whose successive positions satisfy
    [min_gap <= l_{j+1} - l_j - 1 <= max_gap] are produced (the
    gap-constrained variant of the paper's future work; [min_gap] defaults
    to 0, [max_gap] to unbounded). *)

val all_instances :
  ?max_landmarks:int -> Seqdb.t -> Pattern.t -> Instance.full list
(** [SeqDB(P)]: the set of all instances of [P] in the database
    (Definition 2.2). *)

val support :
  ?max_landmarks:int -> ?min_gap:int -> ?max_gap:int -> Seqdb.t -> Pattern.t -> int
(** The true repetitive support (Definition 2.5): the maximum cardinality of
    a non-redundant instance set, computed exactly per sequence (instances
    in different sequences never overlap) and summed. With [max_gap], the
    exact gap-constrained repetitive support (only gap-respecting landmarks
    count as instances). *)

val max_non_overlapping : Instance.full list -> int
(** Maximum size of a pairwise non-overlapping subset of the given instances
    of a common pattern (they must all have equal landmark length). Exact
    branch and bound. *)

val max_pairwise_compatible :
  compatible:(Instance.full -> Instance.full -> bool) -> Instance.full list -> int
(** Generic exact maximum pairwise-compatible subset (branch and bound);
    [compatible] must be symmetric. Also used by {!Strict_overlap} with the
    stronger compatibility relation.
    @raise Too_large beyond 64 instances. *)

val frequent :
  ?max_length:int -> Seqdb.t -> min_sup:int -> (Pattern.t * int) list
(** All frequent patterns with their exact supports, by exhaustive DFS over
    the pattern space with Apriori pruning (prefixes of frequent patterns
    are frequent). *)

val closed :
  ?max_length:int -> Seqdb.t -> min_sup:int -> (Pattern.t * int) list
(** All closed frequent patterns (Definition 2.6), obtained by filtering
    {!frequent}: [P] is closed iff no frequent super-pattern has equal
    support. [max_length], when given, must exceed the longest frequent
    pattern for the filtering to be sound. *)
