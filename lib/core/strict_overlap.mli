(** The stronger overlap semantics of footnote 1.

    Under the stronger Definition 2.3 — two instances overlap when they
    share {e any} sequence position, regardless of which pattern index it
    carries — computing the support is NP-complete (by reduction from the
    iterated-shuffle problem of Warmuth and Haussler). This module
    implements that variant {e exactly} with exponential search, for tiny
    inputs, so tests can demonstrate the semantic difference the paper
    discusses (e.g. [sup_strict(ABA) = 1] vs [sup(ABA) = 2] on Table II)
    and the reduction itself. *)

open Rgs_sequence

val support : ?max_landmarks:int -> Seqdb.t -> Pattern.t -> int
(** Maximum number of instances that are pairwise non-overlapping in the
    strong sense (pairwise position-disjoint within each sequence).
    @raise Brute_force.Too_large when enumeration budgets are exceeded. *)

val in_iterated_shuffle : v:Sequence.t -> w:Sequence.t -> bool
(** [in_iterated_shuffle ~v ~w] decides whether [w] belongs to the iterated
    shuffle of [v], via the paper's reduction: with [P = v] and
    [SeqDB = {w}], [w] is in the iterated shuffle of [v] iff
    [support {w} v = |w| / |v|] (and [|v|] divides [|w|]). The empty [w] is
    in the iterated shuffle of any [v]. *)
