open Rgs_sequence

type t =
  | All
  | Targeted of Pattern.t
  | Top_k of int

let validate = function
  | All -> ()
  | Targeted p ->
    if Pattern.is_empty p then
      invalid_arg "Query: target pattern must be non-empty"
  | Top_k k -> if k < 1 then invalid_arg "Query: top-k must be >= 1"

let equal a b =
  match (a, b) with
  | All, All -> true
  | Targeted p, Targeted q -> Pattern.equal p q
  | Top_k j, Top_k k -> j = k
  | (All | Targeted _ | Top_k _), _ -> false

(* Stable encoding: feeds checkpoint fingerprints, so any change here
   invalidates resumable runs started under the old encoding. *)
let to_string = function
  | All -> "all"
  | Targeted p ->
    "target:"
    ^ String.concat "." (List.map string_of_int (Pattern.to_list p))
  | Top_k k -> Printf.sprintf "topk:%d" k

let pp ppf q = Format.pp_print_string ppf (to_string q)

type plan = {
  root_state : Event.t -> int;
  child_state : int -> Event.t -> int;
  cut : state:int -> depth:int -> bool;
  floor : unit -> int;
  emit_ok : state:int -> bool;
}

let trivial ~min_sup =
  {
    root_state = (fun _ -> 0);
    child_state = (fun s _ -> s);
    cut = (fun ~state:_ ~depth:_ -> false);
    floor = (fun () -> min_sup);
    emit_ok = (fun ~state:_ -> true);
  }

type collector = {
  plan : plan;
  offer : Mined.t -> unit;
  results : unit -> Mined.t list;
}

let all_collector ~min_sup =
  let acc = ref [] in
  {
    plan = trivial ~min_sup;
    offer = (fun r -> acc := r :: !acc);
    results = (fun () -> List.rev !acc);
  }

(* The greedy left-to-right match of the target [q] into the grown pattern
   is exact for subsequence containment and advances by at most one per
   append, so the matched count is the whole per-node state. *)
let targeted_collector ?max_length ~events ~min_sup q =
  let m = Pattern.length q in
  let events_frequent =
    let rec ok j =
      j > m || (List.mem (Pattern.get q j) events && ok (j + 1))
    in
    ok 1
  in
  let acc = ref [] in
  let plan =
    {
      root_state =
        (fun e -> if m > 0 && Pattern.get q 1 = e then 1 else 0);
      child_state =
        (fun s e -> if s < m && Pattern.get q (s + 1) = e then s + 1 else s);
      cut =
        (fun ~state ~depth ->
          (not events_frequent)
          ||
          match max_length with
          | Some l -> depth + (m - state) > l
          | None -> false);
      floor = (fun () -> min_sup);
      emit_ok = (fun ~state -> state = m);
    }
  in
  {
    plan;
    offer = (fun r -> acc := r :: !acc);
    results = (fun () -> List.rev !acc);
  }

(* Fixed-capacity binary min-heap on support. Admission needs support
   strictly above the current minimum, so among boundary-support patterns
   the first k - (better ones) encountered in DFS order are kept — a
   deterministic answer for a deterministic DFS. *)
module Heap = struct
  type t = { arr : Mined.t option array; mutable len : int }

  let create k = { arr = Array.make k None; len = 0 }
  let full h = h.len = Array.length h.arr
  let sup h i = match h.arr.(i) with Some r -> r.Mined.support | None -> max_int

  let swap h i j =
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- tmp

  let rec sift_up h i =
    let parent = (i - 1) / 2 in
    if i > 0 && sup h i < sup h parent then begin
      swap h i parent;
      sift_up h parent
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < h.len && sup h l < sup h !smallest then smallest := l;
    if r < h.len && sup h r < sup h !smallest then smallest := r;
    if !smallest <> i then begin
      swap h i !smallest;
      sift_down h !smallest
    end

  let min_support h = sup h 0

  let offer h r =
    if not (full h) then begin
      h.arr.(h.len) <- Some r;
      h.len <- h.len + 1;
      sift_up h (h.len - 1)
    end
    else if r.Mined.support > min_support h then begin
      h.arr.(0) <- Some r;
      sift_down h 0
    end

  let contents h =
    Array.to_list (Array.sub h.arr 0 h.len) |> List.filter_map Fun.id
end

let top_k_collector ~min_sup k =
  let heap = Heap.create k in
  (* Antimonotone support bounds appends (Theorem 1), so once the heap is
     full no descendant of a node with support <= min(heap) can displace
     anything: the floor rises to min(heap) + 1 and the engine prunes with
     it exactly like the static Apriori bound. *)
  let floor () =
    if Heap.full heap then max min_sup (Heap.min_support heap + 1)
    else min_sup
  in
  let plan = { (trivial ~min_sup) with floor } in
  {
    plan;
    offer = (fun r -> Heap.offer heap r);
    results =
      (fun () ->
        if Heap.full heap then
          Metrics.observe_max Metrics.query_topk_floor (Heap.min_support heap);
        List.sort Mined.compare_by_support_desc (Heap.contents heap));
  }

let collector ?max_length ~events ~min_sup = function
  | All -> all_collector ~min_sup
  | Targeted q ->
    validate (Targeted q);
    targeted_collector ?max_length ~events ~min_sup q
  | Top_k k ->
    validate (Top_k k);
    top_k_collector ~min_sup k

(* --- shared (multi-domain) answer modes, for the stealing executor ---

   All and Targeted plans are stateless pure closures, so the same plan is
   safe from every worker and no cross-worker bookkeeping is needed. Top-k
   keeps one heap behind a mutex, but the plan's floor reads an atomic
   cache — the DFS hot path never takes the lock.

   Determinism: the shared floor is [min(heap)], NOT [min(heap) + 1] as in
   the single-domain collector. With the +1 floor, which boundary-support
   patterns survive would depend on worker scheduling (whoever fills the
   heap first cuts the others' ties). With [min(heap)], every pattern that
   ties the k-th best support is still mined and collected, whatever the
   schedule; [finalize] then sorts the union by [compare_by_support_desc]
   and keeps [k] — the same canonical tie-break as [mine_resumable]'s
   per-root merge, independent of arrival order.

   Soundness of the floor: once the heap is full it holds [k] real mined
   patterns, so its min never exceeds the k-th best support overall;
   pruning strictly below it can never remove an answer pattern (supports
   are antimonotone under appends, Theorem 1). *)

type shared = {
  shared_plan : plan;
  shared_offer : Mined.t -> unit;
  finalize : Mined.t list -> Mined.t list;
}

let shared ?max_length ~events ~min_sup query =
  validate query;
  match query with
  | All ->
    {
      shared_plan = trivial ~min_sup;
      shared_offer = ignore;
      finalize = Fun.id;
    }
  | Targeted q ->
    let c = targeted_collector ?max_length ~events ~min_sup q in
    { shared_plan = c.plan; shared_offer = ignore; finalize = Fun.id }
  | Top_k k ->
    let heap = Heap.create k in
    let mu = Mutex.create () in
    let floor_cache = Atomic.make min_sup in
    let shared_offer r =
      Mutex.lock mu;
      Heap.offer heap r;
      if Heap.full heap then
        Atomic.set floor_cache (max min_sup (Heap.min_support heap));
      Mutex.unlock mu
    in
    let shared_plan =
      { (trivial ~min_sup) with floor = (fun () -> Atomic.get floor_cache) }
    in
    let finalize rs =
      if Heap.full heap then
        Metrics.observe_max Metrics.query_topk_floor (Heap.min_support heap);
      List.filteri
        (fun i _ -> i < k)
        (List.sort Mined.compare_by_support_desc rs)
    in
    { shared_plan; shared_offer; finalize }
