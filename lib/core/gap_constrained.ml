open Rgs_sequence

let validate_gaps ~min_gap ~max_gap =
  if max_gap < 0 then invalid_arg "Gap_constrained: max_gap must be >= 0";
  if min_gap < 0 then invalid_arg "Gap_constrained: min_gap must be >= 0";
  if min_gap > max_gap then invalid_arg "Gap_constrained: min_gap > max_gap"

(* Skip-on-failure instance growth with per-step gap bounds. Instances are
   still processed in right-shift order and take the earliest admissible
   occurrence after max(last_position, last + min_gap), but the occurrence
   must also lie within last + max_gap + 1. Both components of the lowest
   bound are nondecreasing along a group, so one monotone index cursor
   serves the whole per-sequence pass, exactly as in Support_set.grow —
   a miss (occurrence beyond the deadline) leaves the cursor parked at
   that occurrence, which later instances can still consume. *)
let grow ?(min_gap = 0) idx ~max_gap s e =
  validate_gaps ~min_gap ~max_gap;
  Metrics.hit Metrics.insgrow_calls;
  let num = Support_set.num_groups s in
  if num = 0 then Support_set.empty
  else begin
    let out = ref [] in
    let c = Inverted_index.cursor idx ~seq:(Support_set.group_seq s 0) e in
    for gi = num - 1 downto 0 do
      let i = Support_set.group_seq s gi in
      let firsts = Support_set.group_firsts s gi in
      let lasts = Support_set.group_lasts s gi in
      let n = Support_set.group_len s gi in
      Inverted_index.reseat c ~seq:i;
      let new_firsts = Array.make n 0 in
      let new_lasts = Array.make n 0 in
      let count = ref 0 in
      let last_position = ref 0 in
      for k = 0 to n - 1 do
        let lowest = max !last_position (lasts.(k) + min_gap) in
        let deadline = lasts.(k) + max_gap + 1 in
        if lowest < deadline then begin
          let lj = Inverted_index.seek_pos c ~lowest in
          if lj >= 0 && lj <= deadline then begin
            last_position := lj;
            new_firsts.(!count) <- firsts.(k);
            new_lasts.(!count) <- lj;
            incr count
          end
        end
      done;
      let cnt = !count in
      if cnt > 0 then
        out :=
          (i, Array.sub new_firsts 0 cnt, Array.sub new_lasts 0 cnt) :: !out
    done;
    Inverted_index.cursor_finish c;
    Support_set.unsafe_of_packed (Array.of_list !out)
  end

let support_set ?min_gap idx ~max_gap p =
  if Pattern.is_empty p then Support_set.empty
  else begin
    let i = ref (Support_set.of_event idx (Pattern.get p 1)) in
    for j = 2 to Pattern.length p do
      i := grow ?min_gap idx ~max_gap !i (Pattern.get p j)
    done;
    !i
  end

let support ?min_gap idx ~max_gap p =
  Support_set.size (support_set ?min_gap idx ~max_gap p)

type stats = { patterns : int; truncated : bool; outcome : Budget.outcome }

exception Budget_exhausted

let mine ?max_length ?max_patterns ?(min_gap = 0) ?budget ?(trace = Trace.null)
    idx ~max_gap ~min_sup =
  if min_sup < 1 then invalid_arg "Gap_constrained.mine: min_sup must be >= 1";
  validate_gaps ~min_gap ~max_gap;
  let events = Inverted_index.frequent_events idx ~min_sup in
  let results = ref [] in
  let count = ref 0 in
  let outcome = ref Budget.Completed in
  let within p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  let emit p i =
    results := { Mined.pattern = p; support = Support_set.size i; support_set = i } :: !results;
    incr count;
    match max_patterns with
    | Some budget when !count >= budget -> raise Budget_exhausted
    | _ -> ()
  in
  let rec mine_fre p i =
    (match budget with Some b -> Budget.check b | None -> ());
    Trace.instant trace Trace.Node ~a0:(Pattern.length p)
      ~a1:(Support_set.size i);
    emit p i;
    if within p then begin
      let recursed = ref 0 in
      List.iter
        (fun e ->
          Budget.Fault.fire Budget.Fault.Insgrow;
          let i_plus = grow ~min_gap idx ~max_gap i e in
          if Support_set.size i_plus >= min_sup then begin
            incr recursed;
            mine_fre (Pattern.grow p e) i_plus
          end)
        events;
      Trace.instant trace Trace.Extension ~a0:(Pattern.length p) ~a1:!recursed
    end
  in
  let mine_root e =
    let i = Support_set.of_event idx e in
    if Support_set.size i >= min_sup then begin
      let t0 = Trace.now trace in
      let before = !count in
      let finish () =
        Trace.span trace Trace.Root ~a0:e ~a1:(!count - before) ~start:t0
      in
      match mine_fre (Pattern.of_list [ e ]) i with
      | () -> finish ()
      | exception ex ->
        finish ();
        raise ex
    end
  in
  (try List.iter mine_root events with
  | Budget_exhausted ->
    outcome := Budget.Truncated;
    Metrics.hit Metrics.budget_stops;
    Trace.instant trace Trace.Budget_stop
      ~a0:(Budget.severity Budget.Truncated) ~a1:0
  | Budget.Stop reason ->
    outcome := reason;
    Metrics.hit Metrics.budget_stops;
    Trace.instant trace Trace.Budget_stop ~a0:(Budget.severity reason) ~a1:0);
  Metrics.add Metrics.dfs_nodes !count;
  Metrics.add Metrics.patterns_emitted !count;
  ( List.rev !results,
    {
      patterns = !count;
      truncated = Budget.is_stop !outcome;
      outcome = !outcome;
    } )
