open Rgs_sequence

let validate_gaps ~min_gap ~max_gap =
  if max_gap < 0 then invalid_arg "Gap_constrained: max_gap must be >= 0";
  if min_gap < 0 then invalid_arg "Gap_constrained: min_gap must be >= 0";
  if min_gap > max_gap then invalid_arg "Gap_constrained: min_gap > max_gap"

(* Skip-on-failure instance growth with per-step gap bounds. Instances are
   still processed in right-shift order and take the earliest admissible
   occurrence after max(last_position, last + min_gap), but the occurrence
   must also lie within last + max_gap + 1. Both components of the lowest
   bound are nondecreasing along a group, so one monotone index cursor
   serves the whole per-sequence pass, exactly as in Support_set.grow —
   a miss (occurrence beyond the deadline) leaves the cursor parked at
   that occurrence, which later instances can still consume. *)
let grow ?(min_gap = 0) idx ~max_gap s e =
  validate_gaps ~min_gap ~max_gap;
  Metrics.hit Metrics.insgrow_calls;
  let num = Support_set.num_groups s in
  if num = 0 then Support_set.empty
  else begin
    let out = ref [] in
    let c = Inverted_index.cursor idx ~seq:(Support_set.group_seq s 0) e in
    for gi = num - 1 downto 0 do
      let i = Support_set.group_seq s gi in
      let firsts = Support_set.group_firsts s gi in
      let lasts = Support_set.group_lasts s gi in
      let n = Support_set.group_len s gi in
      Inverted_index.reseat c ~seq:i;
      let new_firsts = Array.make n 0 in
      let new_lasts = Array.make n 0 in
      let count = ref 0 in
      let last_position = ref 0 in
      for k = 0 to n - 1 do
        let lowest = max !last_position (lasts.(k) + min_gap) in
        let deadline = lasts.(k) + max_gap + 1 in
        if lowest < deadline then begin
          let lj = Inverted_index.seek_pos c ~lowest in
          if lj >= 0 && lj <= deadline then begin
            last_position := lj;
            new_firsts.(!count) <- firsts.(k);
            new_lasts.(!count) <- lj;
            incr count
          end
        end
      done;
      let cnt = !count in
      if cnt > 0 then
        out :=
          (i, Array.sub new_firsts 0 cnt, Array.sub new_lasts 0 cnt) :: !out
    done;
    Inverted_index.cursor_finish c;
    Support_set.unsafe_of_packed (Array.of_list !out)
  end

let support_set ?min_gap idx ~max_gap p =
  if Pattern.is_empty p then Support_set.empty
  else begin
    let i = ref (Support_set.of_event idx (Pattern.get p 1)) in
    for j = 2 to Pattern.length p do
      i := grow ?min_gap idx ~max_gap !i (Pattern.get p j)
    done;
    !i
  end

let support ?min_gap idx ~max_gap p =
  Support_set.size (support_set ?min_gap idx ~max_gap p)

type stats = { patterns : int; truncated : bool; outcome : Budget.outcome }

exception Budget_exhausted = Engine.Budget_exhausted

(* The gap-constrained miner is the engine with the skip-on-failure
   gap-bounded growth above and no closure machinery. *)
let strategy ~min_gap ~max_gap =
  {
    Engine.name = "Gap_constrained.mine";
    grow = (fun idx i e -> grow ~min_gap idx ~max_gap i e);
    closure = None;
  }

let mine ?max_length ?max_patterns ?(min_gap = 0) ?budget ?trace ?shards idx
    ~max_gap ~min_sup =
  if min_sup < 1 then invalid_arg "Gap_constrained.mine: min_sup must be >= 1";
  validate_gaps ~min_gap ~max_gap;
  let strategy =
    let base = strategy ~min_gap ~max_gap in
    match shards with
    | None -> base
    | Some sm -> Shard_merge.strategy ?trace sm base
  in
  let results = ref [] in
  let count = ref 0 in
  let emit r =
    results := r :: !results;
    incr count;
    match max_patterns with
    | Some budget when !count >= budget -> raise Budget_exhausted
    | _ -> ()
  in
  let s = Engine.run ?max_length ?budget ?trace strategy idx ~min_sup ~emit in
  ( List.rev !results,
    {
      patterns = s.Engine.emitted;
      truncated = s.Engine.truncated;
      outcome = s.Engine.outcome;
    } )
