(** Resource budgets and cooperative cancellation for the mining DFS.

    GSgrow's search (Algorithm 3) is exponential in the worst case, and the
    paper's own experiments (Sec. V) show runtime exploding as [min_sup]
    drops. A service answering arbitrary queries therefore needs the miner
    to degrade gracefully: every run carries a {!t} that is {!check}ed once
    per DFS node, and stops the search — keeping the results mined so far —
    when a wall-clock deadline passes, a DFS-node budget is spent, a GC
    heap-words ceiling is crossed, or the caller {!cancel}s from another
    domain.

    A budget may be shared by several domains ({!Parallel_miner}): the node
    counter and the cancellation flag are atomic. *)

type outcome =
  | Completed  (** the search ran to the end *)
  | Truncated  (** a [max_patterns] or DFS-node budget stopped it *)
  | Deadline_exceeded  (** the wall-clock deadline passed *)
  | Memory_limit  (** the GC heap-words ceiling was crossed *)
  | Cancelled  (** {!cancel} was called *)
  | Worker_failed
      (** at least one parallel root raised and failed its retry; the
          surviving roots' results are still returned *)

exception Stop of outcome
(** Raised by {!check}; the mining loops catch it, record the reason and
    return partial results. [Stop Completed] is never raised. *)

type t

val create :
  ?deadline_s:float -> ?max_nodes:int -> ?max_words:int -> unit -> t
(** [create ()] is an unlimited budget. [deadline_s] is relative seconds
    from now; [max_nodes] bounds the number of {!check} calls (DFS nodes);
    [max_words] bounds [Gc.(quick_stat ()).heap_words]. *)

val check : t -> unit
(** Counts one DFS node and raises [Stop reason] when any limit is hit or
    the budget was cancelled. Cheap enough for the DFS hot loop: one atomic
    increment, one clock read and one [Gc.quick_stat] (only when the
    corresponding limit is set). *)

val cancel : t -> unit
(** Cooperative cancellation; safe from any domain. The next {!check}
    raises [Stop Cancelled]. *)

val cancelled : t -> bool
val nodes : t -> int
(** DFS nodes counted so far (across all domains sharing the budget). *)

val severity : outcome -> int
(** [Completed] = 0 rising to [Worker_failed] = 5. *)

val combine : outcome -> outcome -> outcome
(** Most severe of the two — merging per-root outcomes into a run
    outcome. *)

val is_stop : outcome -> bool
(** Everything except [Completed]. *)

val to_string : outcome -> string
val pp : Format.formatter -> outcome -> unit

(** Deterministic fault injection, for tests. A single process-global hook
    fired from instrumented sites inside the miners; the hook may raise to
    simulate a crash at that site. Reading the hook is one atomic load, so
    production runs (hook unset) pay next to nothing. *)
module Fault : sig
  type site =
    | Insgrow  (** fired once per instance-growth call in the DFS *)
    | Worker of int  (** fired by a pool worker as it claims root [i] *)

  val set : (site -> unit) -> unit
  val clear : unit -> unit

  val fire : site -> unit
  (** Called by the miners; no-op when no hook is set. *)

  val with_hook : (site -> unit) -> (unit -> 'a) -> 'a
  (** [with_hook h f] installs [h], runs [f], and always clears the hook. *)
end
