(** Resource budgets and cooperative cancellation for the mining DFS.

    GSgrow's search (Algorithm 3) is exponential in the worst case, and the
    paper's own experiments (Sec. V) show runtime exploding as [min_sup]
    drops. A service answering arbitrary queries therefore needs the miner
    to degrade gracefully: every run carries a {!t} that is {!check}ed once
    per DFS node, and stops the search — keeping the results mined so far —
    when a wall-clock deadline passes, a DFS-node budget is spent, a GC
    heap-words ceiling is crossed, or the caller {!cancel}s from another
    domain.

    A budget may be shared by several domains ({!Parallel_miner}): the node
    counter and the cancellation flag are atomic. *)

type outcome =
  | Completed  (** the search ran to the end *)
  | Truncated  (** a [max_patterns] or DFS-node budget stopped it *)
  | Deadline_exceeded  (** the wall-clock deadline passed *)
  | Memory_limit  (** the GC heap-words ceiling was crossed *)
  | Cancelled  (** {!cancel} was called *)
  | Interrupted
      (** a {!request_shutdown} (typically a SIGINT/SIGTERM handler) asked
          the run to stop; results mined so far are returned and a final
          checkpoint record is written before the process exits *)
  | Worker_failed
      (** at least one parallel root raised and failed its retry; the
          surviving roots' results are still returned *)

exception Stop of outcome
(** Raised by {!check}; the mining loops catch it, record the reason and
    return partial results. [Stop Completed] is never raised. *)

type t

val create :
  ?deadline_s:float -> ?max_nodes:int -> ?max_words:int -> unit -> t
(** [create ()] is an unlimited budget. [deadline_s] is relative seconds
    from now; [max_nodes] bounds the number of {!check} calls (DFS nodes);
    [max_words] bounds [Gc.(quick_stat ()).heap_words]. *)

val check : t -> unit
(** Counts one DFS node and raises [Stop reason] when any limit is hit or
    the budget was cancelled. Cheap enough for the DFS hot loop: one atomic
    increment, one clock read and one [Gc.quick_stat] (only when the
    corresponding limit is set). *)

val cancel : t -> unit
(** Cooperative cancellation; safe from any domain. The next {!check}
    raises [Stop Cancelled]. *)

val cancelled : t -> bool
val nodes : t -> int
(** DFS nodes counted so far (across all domains sharing the budget). *)

(** {2 Graceful shutdown}

    A single process-global flag, separate from per-run {!cancel}: a signal
    handler cannot know which budgets are live, so it sets the flag and
    every budget's next {!check} raises [Stop Interrupted]. *)

val request_shutdown : unit -> unit
(** Ask every in-flight budgeted run to stop at its next {!check}.
    Async-signal-safe (one atomic store). *)

val shutdown_requested : unit -> bool
val reset_shutdown : unit -> unit
(** Clear the flag — tests, and long-lived callers embedding several runs. *)

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!request_shutdown} and remember that
    handlers are installed ({!signals_installed}), which makes
    {!Miner.mine}/{!Miner.mine_resumable} create a budget even when no
    explicit limit is configured, so the flag is actually polled. *)

val signals_installed : unit -> bool

val severity : outcome -> int
(** [Completed] = 0 rising to [Worker_failed] = 6. *)

val combine : outcome -> outcome -> outcome
(** Most severe of the two — merging per-root outcomes into a run
    outcome. *)

val is_stop : outcome -> bool
(** Everything except [Completed]. *)

val to_string : outcome -> string
val pp : Format.formatter -> outcome -> unit

(** Deterministic fault injection, for tests. A single process-global hook
    fired from instrumented sites inside the miners; the hook may raise to
    simulate a crash at that site. Reading the hook is one atomic load, so
    production runs (hook unset) pay next to nothing. *)
module Fault : sig
  type site =
    | Insgrow  (** fired once per instance-growth call in the DFS *)
    | Worker of int  (** fired by a pool worker as it claims root [i] *)
    | Checkpoint_io
        (** fired before every physical checkpoint write
            ([Checkpoint.Writer] header and record appends); raising here
            simulates ENOSPC/EIO and exercises the retry/degrade path *)
    | Socket_write
        (** fired by the daemon ({!Rgs_server}) before every response
            frame write; raising here simulates EPIPE/ECONNRESET and
            exercises the client-shedding path *)
    | Steal of int
        (** fired by pool worker [i] right after it steals a DFS subtree
            from a peer's deque; raising here simulates a worker crashing
            with stolen work in flight and exercises the failed-root
            retry/quarantine path under stealing *)
    | Shard_merge
        (** fired in the middle of a sharded growth pass
            ([Shard_merge.grow]), between the per-shard INSgrow calls and
            the [Support_set.combine] merge; raising here simulates a
            mid-merge cancellation *)

  val site_name : site -> string
  (** Stable lowercase class name (["worker"] for every [Worker _]) —
      {!Chaos} keys its fault plans on it. *)

  val set : (site -> unit) -> unit
  val clear : unit -> unit

  val fire : site -> unit
  (** Called by the miners; no-op when no hook is set. *)

  val with_hook : (site -> unit) -> (unit -> 'a) -> 'a
  (** [with_hook h f] installs [h], runs [f], and always clears the hook. *)
end
