(** CloGSgrow — Algorithm 4: mining {e closed} frequent repetitive gapped
    subsequences.

    Same DFS pattern growth as {!Gsgrow}, with two additions (Section
    III-C):

    - {b closure checking} ([CCheck], Theorem 4) drops non-closed patterns
      from the output on the fly, without consulting previously generated
      patterns;
    - {b landmark-border checking} ([LBCheck], Theorem 5) prunes entire DFS
      subtrees: when an extension of [P] has equal support and does not
      shift the landmark border right, no pattern prefixed by [P] is
      closed.

    Both checks can be disabled individually for ablation benchmarks. With
    [use_lb_check:false] the output is still exactly the closed patterns,
    only slower; disabling [use_c_check] additionally keeps non-closed
    patterns (turning the algorithm into GSgrow with extra work — useful
    only to measure the cost of the checks). *)

open Rgs_sequence

type stats = {
  patterns : int;  (** closed patterns emitted *)
  dfs_nodes : int;  (** frequent DFS nodes visited *)
  insgrow_calls : int;
  lb_pruned : int;  (** subtrees cut by landmark-border checking *)
  non_closed_dropped : int;  (** frequent nodes rejected by closure checking *)
  truncated : bool;  (** [true] iff [outcome <> Completed] *)
  outcome : Budget.outcome;  (** why the search ended *)
}

val strategy : use_lb_check:bool -> use_c_check:bool -> Engine.strategy
(** CloGSgrow as an {!Engine} strategy: plain instance growth plus the
    closure spec (CCheck first, LBCheck pruning, equal-support appends as
    free non-closedness proof), with either check disabled on request.
    {!mine} and {!iter} wrap [Engine.run (strategy ~use_lb_check:true
    ~use_c_check:true)]; the query layer reuses the same strategy. *)

val mine :
  ?max_length:int ->
  ?max_patterns:int ->
  ?events:Event.t list ->
  ?roots:Event.t list ->
  ?use_lb_check:bool ->
  ?use_c_check:bool ->
  ?should_stop:(unit -> bool) ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?shards:Shard_merge.t ->
  Inverted_index.t ->
  min_sup:int ->
  Mined.t list * stats
(** [mine idx ~min_sup] returns every closed pattern with repetitive
    support at least [min_sup], in DFS order. [should_stop] is polled at
    every DFS node and aborts the search when it returns [true] (sets
    [stats.outcome = Truncated]); [budget] is {!Budget.check}ed at every
    DFS node and its stop reason lands in [stats.outcome], with the
    patterns mined so far still returned; [trace] (default {!Trace.null})
    records per-root [Root] spans plus, at the [Nodes] level, per-node
    [Node]/[Extension] instants, closure verdicts and [Lb_prune] events;
    [shards] runs the DFS instance growths shard-by-shard and merges
    ({!Shard_merge.strategy}) — identical output by construction (the
    closure machinery's internal growths are untouched).
    @raise Invalid_argument when [min_sup < 1]. *)

val iter :
  ?max_length:int ->
  ?events:Event.t list ->
  ?roots:Event.t list ->
  ?use_lb_check:bool ->
  ?use_c_check:bool ->
  ?should_stop:(unit -> bool) ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?shards:Shard_merge.t ->
  Inverted_index.t ->
  min_sup:int ->
  f:(Mined.t -> unit) ->
  stats
(** Callback-style mining: [f] is invoked on each closed pattern in DFS
    order without accumulating results. *)
