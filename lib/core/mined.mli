(** Mined pattern records shared by {!Gsgrow}, {!Clogsgrow} and the
    {!Miner} facade. *)

type t = {
  pattern : Pattern.t;
  support : int;  (** repetitive support [sup(pattern)] *)
  support_set : Support_set.t;  (** leftmost support set, compressed *)
}

val compare_by_support_desc : t -> t -> int
(** Orders by decreasing support, then by increasing length, then
    lexicographically — a stable presentation order for reports. *)

val compare_by_length_desc : t -> t -> int
(** Orders by decreasing pattern length (the case study's ranking step),
    then by decreasing support, then lexicographically. *)

val pp : Format.formatter -> t -> unit

val pp_with : Rgs_sequence.Codec.t -> Format.formatter -> t -> unit
