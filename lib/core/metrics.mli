(** Alias of {!Rgs_sequence.Metrics}.

    The counters moved into [rgs_sequence] when the inverted index gained
    its own hot-path counters ([next_calls], [cursor_advances]); this alias
    keeps the historical [Rgs_core.Metrics] access path working. *)

include module type of Rgs_sequence.Metrics
