(** Lightweight global counters for observing the mining hot paths.

    Counters are atomic so they stay accurate under {!Parallel_miner}'s
    domain-parallel mining; they cost one atomic increment when hit.
    Benches and tests use them to explain where time goes (e.g. how many
    extension growths the closure check's pre-filter avoided). *)

type counter = int Atomic.t

val hit : counter -> unit
(** Increment (atomic). *)

val value : counter -> int
(** Current reading. *)

val reset : unit -> unit
(** Zero every counter. *)

val dump : unit -> (string * int) list
(** Current [(name, value)] pairs, name-sorted, zeros omitted. *)

val pp : Format.formatter -> unit -> unit

(** The counters themselves (bumped by library code): *)

val insgrow_calls : counter
(** Compressed instance-growth invocations ({!Support_set.grow}). *)

val closure_bound_checks : counter
(** Pre-filter evaluations in {!Closure.check}. *)

val closure_bound_rejects : counter
(** Candidate extensions the pre-filter proved hopeless (no growth run). *)

val closure_base_grows : counter
(** Extension candidates that survived the filter and grew their base. *)

val closure_full_grows : counter
(** Extensions grown to completion (equal support found). *)
