open Rgs_sequence

type t = Event.t array

let empty : t = [||]
let of_list = Array.of_list
let of_array = Array.copy
let of_string s = Sequence.to_array (Sequence.of_string s)
let to_list = Array.to_list
let to_array = Array.copy
let to_sequence p = Sequence.of_array p
let length = Array.length
let is_empty p = Array.length p = 0

let get p j =
  if j < 1 || j > Array.length p then
    invalid_arg (Printf.sprintf "Pattern.get: index %d out of [1;%d]" j (Array.length p))
  else p.(j - 1)

let last p =
  if Array.length p = 0 then invalid_arg "Pattern.last: empty pattern"
  else p.(Array.length p - 1)

let grow p e =
  let m = Array.length p in
  let q = Array.make (m + 1) e in
  Array.blit p 0 q 0 m;
  q

let concat = Array.append

let insert p ~at e =
  let m = Array.length p in
  if at < 0 || at > m then
    invalid_arg (Printf.sprintf "Pattern.insert: position %d out of [0;%d]" at m);
  let q = Array.make (m + 1) e in
  Array.blit p 0 q 0 at;
  Array.blit p at q (at + 1) (m - at);
  q

let extensions p ~events =
  let m = Array.length p in
  let at_pos at = List.map (fun e -> (at, e, insert p ~at e)) events in
  List.concat_map at_pos (List.init (m + 1) (fun j -> j))

let is_subpattern p ~of_:q =
  let np = Array.length p and nq = Array.length q in
  let rec walk i j =
    if i >= np then true
    else if j >= nq then false
    else if Event.equal p.(i) q.(j) then walk (i + 1) (j + 1)
    else walk i (j + 1)
  in
  walk 0 0

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let hash (p : t) = Hashtbl.hash p
let pp ppf p = Sequence.pp ppf (Sequence.of_array p)
let pp_with codec ppf p = Sequence.pp_with codec ppf (Sequence.of_array p)
let to_string p = Format.asprintf "%a" pp p

let events p =
  let module ISet = Set.Make (Int) in
  ISet.elements (Array.fold_left (fun acc e -> ISet.add e acc) ISet.empty p)
