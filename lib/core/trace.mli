(** Alias of {!Rgs_sequence.Trace}.

    Structured tracing lives in [rgs_sequence] beside {!Metrics}; this
    alias gives core code, the CLI and tests the same [Rgs_core.Trace]
    access path they already use for counters. *)

include module type of Rgs_sequence.Trace
