(** Gap-constrained repetitive mining — the paper's second future-work item
    (Section V): "extend our algorithms for mining approximate repetitive
    patterns with gap constraints, which is useful for mining subsequences
    from long sequences of DNA, protein, and text data".

    An instance is {e gap-respecting} when every two successive landmark
    positions satisfy [min_gap <= l_{j+1} - l_j - 1 <= max_gap] (the
    two-sided gap requirement of Zhang et al.; [min_gap] defaults to 0);
    the gap-constrained repetitive support is the maximum number of
    pairwise non-overlapping gap-respecting instances.

    Unlike the unconstrained case, greedy leftmost instance growth is no
    longer provably optimal under a gap bound (an instance that dies at the
    earliest admissible occurrence might have survived from a later one).
    This module therefore computes a {b greedy lower bound} with a
    skip-on-failure variant of INSgrow. Consequences:

    - reported supports never exceed the true gap-constrained support
      (property-tested against the exact oracle, which also shows equality
      on the vast majority of random inputs);
    - every pattern reported by {!mine} is genuinely frequent (sound), but
      patterns whose greedy value dips below the threshold may be missed
      (potentially incomplete). *)

open Rgs_sequence

val grow :
  ?min_gap:int ->
  Inverted_index.t ->
  max_gap:int ->
  Support_set.t ->
  Event.t ->
  Support_set.t
(** Gap-bounded instance growth: like [INSgrow] but an instance with no
    admissible occurrence of [e] in
    [[last + min_gap + 1, last + max_gap + 1]] is dropped (skip), not the
    whole tail of the sequence (break) — with a gap bound, later instances
    can still succeed. *)

val support : ?min_gap:int -> Inverted_index.t -> max_gap:int -> Pattern.t -> int
(** Greedy lower bound on the gap-constrained repetitive support. *)

val support_set :
  ?min_gap:int -> Inverted_index.t -> max_gap:int -> Pattern.t -> Support_set.t
(** The greedy gap-respecting instance set behind {!support}. *)

type stats = { patterns : int; truncated : bool; outcome : Budget.outcome }

val strategy : min_gap:int -> max_gap:int -> Engine.strategy
(** The gap-constrained miner as an {!Engine} strategy: {!grow} as the
    growth operation, no closure machinery. {!mine} wraps
    [Engine.run (strategy ~min_gap ~max_gap)]; the query layer reuses the
    same strategy.
    @raise Invalid_argument from the first growth on invalid gaps. *)

val mine :
  ?max_length:int ->
  ?max_patterns:int ->
  ?min_gap:int ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?shards:Shard_merge.t ->
  Inverted_index.t ->
  max_gap:int ->
  min_sup:int ->
  Mined.t list * stats
(** DFS growth over greedy gap-bounded support sets. Sound: every reported
    pattern has true gap-constrained support at least [min_sup]. [budget]
    is {!Budget.check}ed at every DFS node; on a stop the patterns mined so
    far are returned with the reason in [stats.outcome]. [shards] runs
    every growth shard-by-shard and merges ({!Shard_merge.strategy}) —
    identical output by construction ({!grow} is per-sequence
    independent, like INSgrow).
    @raise Invalid_argument when [min_sup < 1], [max_gap < 0],
    [min_gap < 0] or [min_gap > max_gap]. *)
