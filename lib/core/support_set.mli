(** Support sets in compressed form.

    A support set of a pattern [P] is a maximum-size non-redundant set of
    instances of [P] (Definition 2.5). The mining algorithms maintain
    {e leftmost} support sets (Definition 3.2) in the compressed
    representation of Section III-D: per sequence, an array of
    [(first, last)] landmark borders, kept in right-shift order (ascending
    [last]). *)

open Rgs_sequence

type t
(** A compressed support set. Immutable from the outside. *)

val empty : t

val of_event : Inverted_index.t -> Event.t -> t
(** The leftmost support set of the size-1 pattern [e]: every occurrence of
    [e] in the database (line 1 of Algorithm 1 / line 3 of Algorithm 3). *)

val size : t -> int
(** Number of instances — the repetitive support of the pattern this set
    belongs to when the set is leftmost. *)

val is_empty : t -> bool

val num_sequences : t -> int
(** Number of sequences holding at least one instance. *)

val sequences : t -> int list
(** 1-based indices of sequences holding instances, ascending. *)

val instances : t -> Instance.t list
(** All instances in right-shift order (Definition 3.1). *)

val instances_in : t -> seq:int -> Instance.t array
(** Instances located in sequence [seq], in right-shift order. The array is
    owned by the set; do not mutate. *)

val per_sequence_counts : t -> (int * int) list
(** [(sequence index, instance count)] pairs, ascending by sequence. Useful
    as per-sequence feature values (Section V's classification idea). *)

val lasts : t -> (int * int) array
(** [(sequence, last landmark position)] of every instance in right-shift
    order — the "landmark border" compared by {!Closure.lb_check}
    (Theorem 5). *)

val fold_groups : ('a -> int -> Instance.t array -> 'a) -> 'a -> t -> 'a
(** Folds over per-sequence groups in ascending sequence order. *)

val grow :
  Inverted_index.t -> t -> Event.t -> t
(** [grow idx i e] is the instance-growth operation [INSgrow(SeqDB, P, I, e)]
    (Algorithm 2): extends the leftmost support set [I] of [P] into the
    leftmost support set of [P ◦ e]. Runs in [O(size i · log L)]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val well_formed : t -> bool
(** Structural invariant: groups ascend by sequence, each group is
    non-empty, in right-shift order, and instances carry the group's
    sequence index. Checked by the test suite on every construction route
    (it is too costly to assert inside the mining hot loop). *)

(**/**)

val unsafe_of_groups : (int * Instance.t array) array -> t
(** Internal: build from per-sequence groups; the caller must guarantee
    {!well_formed}. Exposed for tests and the oracle. *)
