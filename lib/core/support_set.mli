(** Support sets in compressed, columnar form.

    A support set of a pattern [P] is a maximum-size non-redundant set of
    instances of [P] (Definition 2.5). The mining algorithms maintain
    {e leftmost} support sets (Definition 3.2) in the compressed
    representation of Section III-D: per sequence, the [(first, last)]
    landmark borders kept in right-shift order (ascending [last]).

    Storage is columnar: each per-sequence group is a pair of parallel
    [int array]s ([firsts], [lasts]) rather than an array of boxed
    instance records, with an explicit live length ([group_len]) that may
    be shorter than the arrays. Appending growth never moves first
    positions and only ever kills a suffix of a group, so a grown group
    shares its parent's [firsts] array outright (no prefix copies on
    append-heavy DFS paths). {!Instance.t} remains the public view type,
    materialised on demand by {!instances}, {!instances_in} and
    {!fold_groups}. *)

open Rgs_sequence

type t
(** A compressed support set. Immutable from the outside. *)

val empty : t

val of_event : Inverted_index.t -> Event.t -> t
(** The leftmost support set of the size-1 pattern [e]: every occurrence of
    [e] in the database (line 1 of Algorithm 1 / line 3 of Algorithm 3). *)

val size : t -> int
(** Number of instances — the repetitive support of the pattern this set
    belongs to when the set is leftmost. *)

val is_empty : t -> bool

val num_sequences : t -> int
(** Number of sequences holding at least one instance. *)

val sequences : t -> int list
(** 1-based indices of sequences holding instances, ascending. *)

val instances : t -> Instance.t list
(** All instances in right-shift order (Definition 3.1). *)

val instances_in : t -> seq:int -> Instance.t array
(** Instances located in sequence [seq], in right-shift order (fresh
    array of materialised views). *)

val per_sequence_counts : t -> (int * int) list
(** [(sequence index, instance count)] pairs, ascending by sequence. Useful
    as per-sequence feature values (Section V's classification idea). *)

val lasts : t -> (int * int) array
(** [(sequence, last landmark position)] of every instance in right-shift
    order — the "landmark border" of Theorem 5. Allocates; the mining path
    uses {!border_dominated} on the packed arrays instead. *)

val border_dominated : extension:t -> pattern:t -> bool
(** Theorem 5 condition (ii): both sets have the same size and, pairing
    instances by rank in right-shift order, each of [extension]'s
    instances lies in the same sequence as — and ends no later than — the
    corresponding instance of [pattern]. Scans the packed [lasts] arrays
    directly; no allocation. *)

val fold_groups : ('a -> int -> Instance.t array -> 'a) -> 'a -> t -> 'a
(** Folds over per-sequence groups in ascending sequence order. The
    instance arrays are materialised views (fresh; safe to keep). *)

(** {2 Packed accessors}

    Zero-copy access to the columnar storage, for hot paths
    ({!Closure.check}, {!Gap_constrained.grow}) and the differential test
    suite. Groups are indexed [0 .. num_groups - 1] in ascending sequence
    order; the returned arrays are owned by the set — do not mutate. *)

val num_groups : t -> int
val group_seq : t -> int -> int

val group_len : t -> int -> int
(** Number of live instances in the group. The packed arrays may be longer
    than this (growth shares a parent's [firsts] array wholesale and keeps
    [lasts] at its allocated size); only the first [group_len] slots are
    meaningful. *)

val group_firsts : t -> int -> int array
val group_lasts : t -> int -> int array

val grow :
  Inverted_index.t -> t -> Event.t -> t
(** [grow idx i e] is the instance-growth operation [INSgrow(SeqDB, P, I, e)]
    (Algorithm 2): extends the leftmost support set [I] of [P] into the
    leftmost support set of [P ◦ e]. Each per-sequence pass drives one
    monotone {!Inverted_index.cursor} (all three backends are stateful),
    so a whole group costs O(occurrences of [e]) amortized rather than one
    full [O(log L)] search per instance. Surviving groups share the
    parent's [firsts] array; no arrays are copied on partial survival. *)

val slice : t -> lo:int -> hi:int -> t
(** [slice s ~lo ~hi] restricts [s] to the sequences in the inclusive
    1-based range [[lo, hi]] — a shard view: groups ascend by sequence,
    so the result is a contiguous sub-array of shared group records
    (binary-searched boundaries, no instance copying; [s] itself when
    the range covers every group).
    @raise Invalid_argument when [lo > hi]. *)

val combine : t -> t -> t
(** Merge two support sets over {e disjoint} sequence ids (e.g. the
    per-shard results of growing disjoint {!slice}s) into one, in
    ascending sequence order. Group records are shared, not copied.
    Associative and commutative: the result depends only on the union
    of the per-sequence groups, and instances keep their right-shift
    order inside each group, so combining a partition's shards in any
    tree yields exactly the unsharded set ({!Shard_merge}'s proof
    obligation, checked differentially by the [@steal] suite).
    @raise Invalid_argument when the operands share a sequence id. *)

val encode : t -> string
(** Serialise for the wire (shard worker replies): little-endian int64
    words — group count, total, then per group [gseq], [len], the live
    [firsts] prefix, the live [lasts] prefix. Slack slots are trimmed,
    so [encode] is a pure function of the set's {e content}:
    [encode a = encode b] whenever [equal a b]. *)

val decode : string -> t
(** Inverse of {!encode}. A trust boundary: the input may come from a
    crashed or corrupted worker process, so every {!well_formed}
    invariant (strict right-shift order, ascending sequence ids, total
    consistency) plus exact buffer length is re-validated.
    @raise Invalid_argument on any malformed input. *)

val equal : t -> t -> bool
(** Content equality over live prefixes (slack slots and sharing are
    representation details and do not affect it). *)

val pp : Format.formatter -> t -> unit

val well_formed : t -> bool
(** Structural invariant: groups ascend by sequence, each group is
    non-empty with parallel [firsts]/[lasts] arrays in strict right-shift
    order. Checked by the test suite on every construction route (it is
    too costly to assert inside the mining hot loop). *)

(**/**)

val unsafe_of_groups : (int * Instance.t array) array -> t
(** Internal: build from per-sequence instance groups; the caller must
    guarantee {!well_formed}. Exposed for tests and the oracle. *)

val unsafe_of_packed : (int * int array * int array) array -> t
(** Internal: build directly from packed [(seq, firsts, lasts)] groups;
    the caller must guarantee {!well_formed} and hand over ownership of
    the arrays. *)
