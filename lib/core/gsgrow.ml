open Rgs_sequence

type stats = {
  patterns : int;
  insgrow_calls : int;
  truncated : bool;
  outcome : Budget.outcome;
}

exception Budget_exhausted

(* Shared DFS skeleton for [mine] and [iter]. [emit] receives each frequent
   pattern; raising [Budget_exhausted] from it aborts the search, as does
   [Budget.Stop] from the budget's per-node check. *)
let run ?max_length ?events ?roots ?(should_stop = fun () -> false) ?budget
    ?(trace = Trace.null) idx ~min_sup ~emit =
  if min_sup < 1 then invalid_arg "Gsgrow: min_sup must be >= 1";
  let events =
    match events with
    | Some es -> es
    | None -> Inverted_index.frequent_events idx ~min_sup
  in
  let roots = match roots with Some rs -> rs | None -> events in
  let insgrow_calls = ref 0 in
  let outcome = ref Budget.Completed in
  let patterns = ref 0 in
  let within_length p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  let rec mine_fre p i =
    if should_stop () then raise Budget_exhausted;
    (match budget with Some b -> Budget.check b | None -> ());
    incr patterns;
    Trace.instant trace Trace.Node ~a0:(Pattern.length p)
      ~a1:(Support_set.size i);
    emit { Mined.pattern = p; support = Support_set.size i; support_set = i };
    if within_length p then begin
      let recursed = ref 0 in
      List.iter
        (fun e ->
          incr insgrow_calls;
          Budget.Fault.fire Budget.Fault.Insgrow;
          let i_plus = Support_set.grow idx i e in
          if Support_set.size i_plus >= min_sup then begin
            incr recursed;
            mine_fre (Pattern.grow p e) i_plus
          end)
        events;
      Trace.instant trace Trace.Extension ~a0:(Pattern.length p) ~a1:!recursed
    end
  in
  let mine_root e =
    let i = Support_set.of_event idx e in
    if Support_set.size i >= min_sup then begin
      let t0 = Trace.now trace in
      let before = !patterns in
      let finish () =
        Trace.span trace Trace.Root ~a0:e ~a1:(!patterns - before) ~start:t0
      in
      match mine_fre (Pattern.of_list [ e ]) i with
      | () -> finish ()
      | exception ex ->
        finish ();
        raise ex
    end
  in
  (try List.iter mine_root roots with
  | Budget_exhausted ->
    outcome := Budget.Truncated;
    Metrics.hit Metrics.budget_stops;
    Trace.instant trace Trace.Budget_stop
      ~a0:(Budget.severity Budget.Truncated) ~a1:0
  | Budget.Stop reason ->
    outcome := reason;
    Metrics.hit Metrics.budget_stops;
    Trace.instant trace Trace.Budget_stop ~a0:(Budget.severity reason) ~a1:0);
  (* every GSgrow node emits its pattern, so nodes = patterns *)
  Metrics.add Metrics.dfs_nodes !patterns;
  Metrics.add Metrics.patterns_emitted !patterns;
  {
    patterns = !patterns;
    insgrow_calls = !insgrow_calls;
    truncated = Budget.is_stop !outcome;
    outcome = !outcome;
  }

let mine ?max_length ?max_patterns ?events ?roots ?should_stop ?budget ?trace idx
    ~min_sup =
  let results = ref [] in
  let count = ref 0 in
  let emit r =
    results := r :: !results;
    incr count;
    match max_patterns with
    | Some budget when !count >= budget -> raise Budget_exhausted
    | _ -> ()
  in
  let stats =
    run ?max_length ?events ?roots ?should_stop ?budget ?trace idx ~min_sup ~emit
  in
  (List.rev !results, stats)

let iter ?max_length ?events ?roots ?should_stop ?budget ?trace idx ~min_sup ~f =
  run ?max_length ?events ?roots ?should_stop ?budget ?trace idx ~min_sup ~emit:f
