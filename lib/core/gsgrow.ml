type stats = {
  patterns : int;
  insgrow_calls : int;
  truncated : bool;
  outcome : Budget.outcome;
}

exception Budget_exhausted = Engine.Budget_exhausted

(* GSgrow is the engine with plain instance growth and no closure
   machinery: every frequent node emits its pattern. *)
let strategy =
  { Engine.name = "Gsgrow"; grow = Support_set.grow; closure = None }

let run ?max_length ?events ?roots ?should_stop ?budget ?trace ?shards idx
    ~min_sup ~emit =
  let strategy =
    match shards with
    | None -> strategy
    | Some sm -> Shard_merge.strategy ?trace sm strategy
  in
  let s =
    Engine.run ?max_length ?events ?roots ?should_stop ?budget ?trace strategy
      idx ~min_sup ~emit
  in
  {
    patterns = s.Engine.emitted;
    insgrow_calls = s.Engine.insgrow_calls;
    truncated = s.Engine.truncated;
    outcome = s.Engine.outcome;
  }

let mine ?max_length ?max_patterns ?events ?roots ?should_stop ?budget ?trace
    ?shards idx ~min_sup =
  let results = ref [] in
  let count = ref 0 in
  let emit r =
    results := r :: !results;
    incr count;
    match max_patterns with
    | Some budget when !count >= budget -> raise Budget_exhausted
    | _ -> ()
  in
  let stats =
    run ?max_length ?events ?roots ?should_stop ?budget ?trace ?shards idx
      ~min_sup ~emit
  in
  (List.rev !results, stats)

let iter ?max_length ?events ?roots ?should_stop ?budget ?trace ?shards idx
    ~min_sup ~f =
  run ?max_length ?events ?roots ?should_stop ?budget ?trace ?shards idx
    ~min_sup ~emit:f
