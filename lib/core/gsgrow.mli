(** GSgrow — Algorithm 3: mining {e all} frequent repetitive gapped
    subsequences.

    Depth-first pattern growth with the instance-growth operation embedded:
    for every frequent pattern [P] with leftmost support set [I], each
    candidate event [e] yields [I+ = INSgrow(SeqDB, P, I, e)]; the DFS
    recurses whenever [|I+| >= min_sup] (Apriori pruning, Theorem 1).

    Time complexity is [O(Σ_{P ∈ Fre} sup(P) · E · log L)] (Theorem 6) and
    working space beyond the inverted index is [O(sup_max · len_max)]
    (Theorem 7). *)

open Rgs_sequence

type stats = {
  patterns : int;  (** frequent patterns found *)
  insgrow_calls : int;  (** instance-growth invocations *)
  truncated : bool;  (** [true] iff [outcome <> Completed] *)
  outcome : Budget.outcome;
      (** why the search ended; partial results are returned for every
          non-[Completed] outcome *)
}

val strategy : Engine.strategy
(** GSgrow as an {!Engine} strategy: plain instance growth
    ({!Support_set.grow}), no closure machinery — every frequent node
    emits. {!mine} and {!iter} are thin wrappers over
    [Engine.run strategy]; the query layer ({!Query}, {!Miner}) reuses the
    same strategy with a non-trivial plan. *)

val mine :
  ?max_length:int ->
  ?max_patterns:int ->
  ?events:Event.t list ->
  ?roots:Event.t list ->
  ?should_stop:(unit -> bool) ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?shards:Shard_merge.t ->
  Inverted_index.t ->
  min_sup:int ->
  Mined.t list * stats
(** [mine idx ~min_sup] returns every pattern with repetitive support at
    least [min_sup], in DFS (prefix) order, with supports and leftmost
    support sets.

    [max_length] bounds pattern length; [max_patterns] aborts the search
    after that many patterns (the result is then a prefix of the full
    answer and [stats.truncated] is set); [events] restricts candidate
    growth events (defaults to all events with occurrence count at least
    [min_sup]); [roots] restricts the {e starting} size-1 patterns (still
    grown with the full [events] set — the hook {!Parallel_miner} uses to
    partition the search across domains); [should_stop] is polled at every
    DFS node and aborts the search when it returns [true] (sets
    [stats.outcome = Truncated]); [budget] is {!Budget.check}ed at every
    DFS node and its stop reason is recorded in [stats.outcome] — the
    patterns mined before the stop are always returned; [trace] (default
    {!Trace.null}, i.e. off) records per-root [Root] spans plus, at the
    [Nodes] level, per-node [Node]/[Extension] instants and budget stops;
    [shards] runs every instance growth shard-by-shard and merges
    ({!Shard_merge.strategy}) — the mined output is identical by
    construction.

    @raise Invalid_argument when [min_sup < 1]. *)

val iter :
  ?max_length:int ->
  ?events:Event.t list ->
  ?roots:Event.t list ->
  ?should_stop:(unit -> bool) ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  ?shards:Shard_merge.t ->
  Inverted_index.t ->
  min_sup:int ->
  f:(Mined.t -> unit) ->
  stats
(** Callback-style mining: [f] is invoked on each frequent pattern in DFS
    order without accumulating results. *)
