(* Re-export: the counters live in Rgs_sequence so the index/cursor layer
   can bump them without a dependency cycle; Rgs_core.Metrics remains the
   historical access path for tests, benches and downstream code. *)
include Rgs_sequence.Metrics
