type counter = int Atomic.t

let hit c = Atomic.incr c
let value = Atomic.get
let insgrow_calls = Atomic.make 0
let closure_bound_checks = Atomic.make 0
let closure_bound_rejects = Atomic.make 0
let closure_base_grows = Atomic.make 0
let closure_full_grows = Atomic.make 0

let all =
  [
    ("insgrow_calls", insgrow_calls);
    ("closure_bound_checks", closure_bound_checks);
    ("closure_bound_rejects", closure_bound_rejects);
    ("closure_base_grows", closure_base_grows);
    ("closure_full_grows", closure_full_grows);
  ]

let reset () = List.iter (fun (_, c) -> Atomic.set c 0) all

let dump () =
  List.filter (fun (_, v) -> v <> 0) (List.map (fun (n, c) -> (n, Atomic.get c)) all)
  |> List.sort compare

let pp ppf () =
  List.iter (fun (n, v) -> Format.fprintf ppf "%s = %d@." n v) (dump ())
