let support_set idx p =
  if Pattern.is_empty p then Support_set.empty
  else begin
    let i = ref (Support_set.of_event idx (Pattern.get p 1)) in
    for j = 2 to Pattern.length p do
      i := Support_set.grow idx !i (Pattern.get p j)
    done;
    !i
  end

let support idx p = Support_set.size (support_set idx p)

let landmarks idx p =
  if Pattern.is_empty p then []
  else begin
    let i = ref (Insgrow.full_of_event idx (Pattern.get p 1)) in
    for j = 2 to Pattern.length p do
      i := Insgrow.run_full idx !i (Pattern.get p j)
    done;
    !i
  end

let reconstruct idx p set =
  let m = Pattern.length p in
  if m = 0 then []
  else begin
    let out = ref [] in
    Support_set.fold_groups
      (fun () seq group ->
        (* Seed landmarks with the stored first positions (right-shift
           order), then replay INSgrow for indices 2..m within this
           sequence. *)
        let insts =
          ref
            (Array.to_list
               (Array.map
                  (fun (inst : Instance.t) ->
                    { Instance.fseq = seq; landmark = [| inst.Instance.first |] })
                  group))
        in
        for j = 2 to m do
          insts := Insgrow.run_full idx !insts (Pattern.get p j)
        done;
        (* The replay must reproduce the stored compressed instances. *)
        let replayed = List.map Instance.compress !insts in
        if replayed <> Array.to_list group then
          invalid_arg "Sup_comp.reconstruct: set is not a leftmost support set of p";
        out := List.rev_append !insts !out)
      () set;
    List.rev !out
  end

let grow_from idx i q =
  let acc = ref i in
  for j = 1 to Pattern.length q do
    acc := Support_set.grow idx !acc (Pattern.get q j)
  done;
  !acc

let grow_from_until idx i q ~min_size =
  let rec loop acc j =
    if Support_set.size acc < min_size then None
    else if j > Pattern.length q then Some acc
    else loop (Support_set.grow idx acc (Pattern.get q j)) (j + 1)
  in
  loop i 1
