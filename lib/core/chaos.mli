(** Deterministic chaos harness over the {!Budget.Fault} sites.

    A {e fault plan} is a small seeded recipe — which site kind to attack,
    after how many firings, and whether the fault is transient (one shot)
    or persistent — generated reproducibly from a seed by {!plans}. The
    harness installs the plan as the process fault hook ({!inject}) and
    the sweep asserts the resilience invariant the runtime promises:

    {e mined output restricted to non-quarantined roots equals the
    fault-free run} ({!check_invariant}), and no injected fault ever
    escapes [mine_all]/[mine_closed]/[mine_resumable] as an uncaught
    exception.

    Transient faults must be fully absorbed (retry recovers the root, the
    output is byte-identical); persistent faults may cost quarantined
    roots but never patterns of surviving roots, and [Checkpoint_io]
    faults may never change mined output at all — they only degrade
    checkpoint durability.

    Everything is deterministic given the seed: the generator is an
    inline splitmix64, and no wall-clock or global randomness is
    consulted. *)

type site_kind =
  | Insgrow  (** {!Budget.Fault.Insgrow}: crash inside a root's DFS *)
  | Worker  (** {!Budget.Fault.Worker}: crash at a root claim/retry *)
  | Checkpoint_io
      (** {!Budget.Fault.Checkpoint_io}: fail a physical checkpoint
          write (ENOSPC/EIO stand-in) *)

type plan = {
  id : int;  (** position in the generated sweep *)
  kind : site_kind;
  trigger : int;  (** inject at the [trigger]-th matching firing (1-based) *)
  persistent : bool;
      (** [true]: every firing from [trigger] on fails (poison root /
          dead disk); [false]: exactly one firing fails (transient blip) *)
}

exception Injected of plan
(** The fault raised by an active plan. Deliberately {e not} a
    [Budget.Stop]: it exercises the crash-isolation path, not the
    cooperative-stop path. *)

val pp_plan : Format.formatter -> plan -> unit

val plans : ?kinds:site_kind list -> seed:int -> count:int -> unit -> plan list
(** [count] plans drawn deterministically from [seed], cycling through
    [kinds] (default: all three) so every site kind is attacked, with
    pseudo-random triggers in [1, 8] and a persistent/transient mix. *)

val inject : plan -> (unit -> 'a) -> 'a
(** Run a thunk with the plan installed as the {!Budget.Fault} hook
    (firing counter starts at zero). The counter is atomic, so plans
    behave under pool parallelism; with more than one domain the {e root}
    hit by the nth firing may vary, which the invariant is insensitive
    to. Not reentrant — plans do not compose with an already-installed
    hook. *)

val check_invariant :
  baseline:Mined.t list ->
  faulty:Mined.t list ->
  quarantined:int ->
  (unit, string) result
(** The chaos invariant. Groups both result lists by DFS root (a mined
    pattern's first event) and checks that every root's group is either
    {e identical} to the baseline's (patterns, order and supports) or
    {e entirely absent}, that no root appears only in the faulty run, and
    that the number of absent roots equals [quarantined]. [Error]
    carries a human-readable diagnosis for the failing root. *)
