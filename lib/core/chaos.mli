(** Deterministic chaos harness over the {!Budget.Fault} sites.

    A {e fault plan} is a small seeded recipe — which site kind to attack,
    after how many firings, and whether the fault is transient (one shot)
    or persistent — generated reproducibly from a seed by {!plans}. The
    harness installs the plan as the process fault hook ({!inject}) and
    the sweep asserts the resilience invariant the runtime promises:

    {e mined output restricted to non-quarantined roots equals the
    fault-free run} ({!check_invariant}), and no injected fault ever
    escapes [mine_all]/[mine_closed]/[mine_resumable] as an uncaught
    exception.

    Transient faults must be fully absorbed (retry recovers the root, the
    output is byte-identical); persistent faults may cost quarantined
    roots but never patterns of surviving roots, and [Checkpoint_io]
    faults may never change mined output at all — they only degrade
    checkpoint durability.

    Everything is deterministic given the seed: the generator is an
    inline splitmix64, and no wall-clock or global randomness is
    consulted. *)

type site_kind =
  | Insgrow  (** {!Budget.Fault.Insgrow}: crash inside a root's DFS *)
  | Worker  (** {!Budget.Fault.Worker}: crash at a root claim/retry *)
  | Checkpoint_io
      (** {!Budget.Fault.Checkpoint_io}: fail a physical checkpoint
          write (ENOSPC/EIO stand-in) *)
  | Socket_write
      (** {!Budget.Fault.Socket_write}: fail a daemon response-frame
          write (EPIPE/ECONNRESET stand-in) *)
  | Steal
      (** {!Budget.Fault.Steal}: crash a pool worker right after it stole
          a DFS subtree (steal-in-flight crash) *)
  | Shard_merge
      (** {!Budget.Fault.Shard_merge}: cancel a sharded growth pass
          between the per-shard grows and the combine (mid-merge
          cancellation) *)

type plan = {
  id : int;  (** position in the generated sweep *)
  kind : site_kind;
  trigger : int;  (** inject at the [trigger]-th matching firing (1-based) *)
  persistent : bool;
      (** [true]: every firing from [trigger] on fails (poison root /
          dead disk); [false]: exactly one firing fails (transient blip) *)
}

exception Injected of plan
(** The fault raised by an active plan. Deliberately {e not} a
    [Budget.Stop]: it exercises the crash-isolation path, not the
    cooperative-stop path. *)

val pp_plan : Format.formatter -> plan -> unit

val plans : ?kinds:site_kind list -> seed:int -> count:int -> unit -> plan list
(** [count] plans drawn deterministically from [seed], cycling through
    [kinds] (default: the three miner-side sites — [Socket_write] is
    daemon-side and attacked through {!job_plans}) so every site kind is
    attacked, with pseudo-random triggers in [1, 8] and a
    persistent/transient mix. *)

val inject : plan -> (unit -> 'a) -> 'a
(** Run a thunk with the plan installed as the {!Budget.Fault} hook
    (firing counter starts at zero). The counter is atomic, so plans
    behave under pool parallelism; with more than one domain the {e root}
    hit by the nth firing may vary, which the invariant is insensitive
    to. Not reentrant — plans do not compose with an already-installed
    hook. *)

(** {2 Job-level plans}

    Whole-scenario fault recipes for the mining daemon ({!Rgs_server}):
    instead of one crashing call site, a job plan names a failure mode of
    the serving path — a client that vanishes mid-job, a second submission
    of a live job id, a response write that fails, a kill -9 landing
    mid-drain. The daemon test harness interprets each site (it owns the
    sockets and processes); the invariant asserted is the same as above —
    after recovery, the daemon's output for the job modulo quarantined
    roots equals a fault-free batch run. *)

type job_site =
  | Client_disconnect  (** abruptly close the client socket mid-job *)
  | Overlapping_resume
      (** submit the same job id again while the first run is live *)
  | Socket_write_fail
      (** fail a daemon response write ({!Budget.Fault.Socket_write}) *)
  | Kill_mid_drain
      (** SIGTERM the daemon, then kill -9 before the drain finishes *)

type job_plan = {
  jid : int;  (** position in the generated sweep *)
  site : job_site;
  delay : int;
      (** scenario pacing knob in [1, 8] — the harness scales it into a
          trigger count ([Socket_write_fail]) or a delay before striking *)
}

val job_site_name : job_site -> string
val pp_job_plan : Format.formatter -> job_plan -> unit

val job_plans :
  ?sites:job_site list -> seed:int -> count:int -> unit -> job_plan list
(** [count] job plans drawn deterministically from [seed], cycling through
    [sites] (default: all four) with pseudo-random delays in [1, 8]. *)

val fault_plan_of_job : job_plan -> plan option
(** The {!plan} to {!inject} while the scenario runs: [Socket_write_fail]
    maps to a transient {!Socket_write} plan triggered at the [delay]-th
    write; the other sites are enacted by the harness itself ([None]). *)

(** {2 Process-level plans}

    Fault recipes for supervised shard {e worker processes}
    ([Supervisor] in [lib/server/], the [@supervise] tier). These fire
    inside a separate process, so they travel as an environment
    variable instead of a [Budget.Fault] hook: the harness serialises a
    plan with {!worker_fault_to_string} into {!worker_fault_env}, and
    the worker arms it at startup with {!worker_fault_of_string}.
    Transient plans arm only in the worker's first incarnation — the
    supervisor exports the restart generation in {!worker_restart_env}
    and replacement workers see a non-zero value — so one restart
    recovers; persistent plans re-fire in every incarnation until the
    restart budget quarantines the shard (whose part the supervisor
    then computes in-process, keeping output byte-identical). *)

type proc_site =
  | Proc_kill  (** [kill -9] self mid-shard (segfault-class crash) *)
  | Proc_hang
      (** stop heartbeating and sleep forever (livelock / stuck I/O);
          detected by the liveness deadline *)
  | Proc_corrupt
      (** reply with a garbage frame (CRC mismatch / torn write);
          detected by the frame CRC *)
  | Proc_slow
      (** delay every reply while still heartbeating — {e not} a fault:
          the supervisor must tolerate it without a restart *)

type proc_plan = {
  wid : int;  (** position in the generated sweep *)
  psite : proc_site;
  after : int;  (** fire on the [after]-th growth request (1-based) *)
  persist : bool;
      (** [true]: every incarnation re-arms the fault (crashy shard —
          ends in quarantine); [false]: first incarnation only (one
          restart recovers) *)
}

val proc_site_name : proc_site -> string
val pp_proc_plan : Format.formatter -> proc_plan -> unit

val proc_plans :
  ?sites:proc_site list -> seed:int -> count:int -> unit -> proc_plan list
(** [count] process plans drawn deterministically from [seed], cycling
    through [sites] (default: all four) with pseudo-random trigger
    counts in [1, 4] and a persistent/transient mix. *)

val worker_fault_env : string
(** Environment variable carrying a serialised plan into a worker
    process (["RGS_WORKER_FAULT"]). *)

val worker_restart_env : string
(** Environment variable carrying the worker's restart generation
    (["RGS_WORKER_RESTART"]): [0] in the first incarnation, the restart
    count afterwards. Transient plans only arm at generation 0. *)

val worker_fault_to_string : proc_plan -> string
(** Serialise for {!worker_fault_env}: ["kill:3"], ["corrupt:1:persist"],
    ... *)

val worker_fault_of_string : string -> (proc_site * int * bool) option
(** Parse a {!worker_fault_to_string} value back into [(site, after,
    persist)]; [None] on anything malformed (a worker ignores garbage
    rather than dying to it). *)

val check_invariant :
  baseline:Mined.t list ->
  faulty:Mined.t list ->
  quarantined:int ->
  (unit, string) result
(** The chaos invariant. Groups both result lists by DFS root (a mined
    pattern's first event) and checks that every root's group is either
    {e identical} to the baseline's (patterns, order and supports) or
    {e entirely absent}, that no root appears only in the faulty run, and
    that the number of absent roots equals [quarantined]. [Error]
    carries a human-readable diagnosis for the failing root. *)
