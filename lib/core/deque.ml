(* Chase–Lev work-stealing deque over SC atomics.

   Invariants that carry the linearizability argument (see the .mli):
   - [top] is monotone: only thief CASes and the owner's last-element
     CAS advance it, by exactly one, and nothing ever decreases it.
   - a push at bottom [b] writes buffer cell [b land mask] before
     publishing [b + 1] into [bottom], so any domain that observes
     [bottom > b] also observes the cell's value (SC atomics).
   - the buffer grows whenever it would hold [capacity - 1] elements,
     so the live index range [top, bottom) never wraps onto itself: a
     cell for ticket [t] is only rewritten once [top > t], and by then
     every CAS expecting [t] must fail. A successful steal CAS on [t]
     therefore returns the unique value published for ticket [t]. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a option Atomic.t array Atomic.t;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 64) () =
  let cap = pow2 (max 2 capacity) 2 in
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init cap (fun _ -> Atomic.make None));
  }

let size d = max 0 (Atomic.get d.bottom - Atomic.get d.top)

(* Owner only. Copy the live range into a doubled buffer, preserving
   absolute indices mod the new mask, and publish it. Thieves holding
   the retired buffer still read correct values: the live cells were
   copied, not moved, and their CAS on [top] arbitrates as usual. *)
let grow d t b buf =
  let n = Array.length buf in
  let buf' = Array.init (2 * n) (fun _ -> Atomic.make None) in
  for i = t to b - 1 do
    Atomic.set buf'.(i land ((2 * n) - 1)) (Atomic.get buf.(i land (n - 1)))
  done;
  Atomic.set d.buf buf';
  buf'

let push d v =
  let b = Atomic.get d.bottom in
  let t = Atomic.get d.top in
  let buf = Atomic.get d.buf in
  let buf = if b - t >= Array.length buf - 1 then grow d t b buf else buf in
  Atomic.set buf.(b land (Array.length buf - 1)) (Some v);
  Atomic.set d.bottom (b + 1)

let pop d =
  let b = Atomic.get d.bottom - 1 in
  (* reserve index [b] before reading [top]: a thief that subsequently
     observes [top = b] must also observe the reservation and back off *)
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty; restore the canonical empty state bottom = top *)
    Atomic.set d.bottom t;
    None
  end
  else begin
    let buf = Atomic.get d.buf in
    let v = Atomic.get buf.(b land (Array.length buf - 1)) in
    if b > t then v
    else begin
      (* last element: race thieves for ticket [t] *)
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then v else None
    end
  end

type 'a steal_result = Stolen of 'a | Empty | Retry

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then Empty
  else begin
    let buf = Atomic.get d.buf in
    let v = Atomic.get buf.(t land (Array.length buf - 1)) in
    if Atomic.compare_and_set d.top t (t + 1) then
      match v with
      | Some x -> Stolen x
      | None ->
        (* unreachable: [bottom > t] was observed, so the push of ticket
           [t]'s value had been published before our cell read *)
        assert false
    else Retry
  end
