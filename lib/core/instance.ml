open Rgs_sequence

type t = { seq : int; first : int; last : int }
type full = { fseq : int; landmark : int array }

let compress f =
  let n = Array.length f.landmark in
  if n = 0 then invalid_arg "Instance.compress: empty landmark";
  { seq = f.fseq; first = f.landmark.(0); last = f.landmark.(n - 1) }

let right_shift_compare a b =
  match Int.compare a.seq b.seq with
  | 0 -> ( match Int.compare a.last b.last with 0 -> Int.compare a.first b.first | c -> c)
  | c -> c

let right_shift_compare_full a b =
  let last f =
    let n = Array.length f.landmark in
    if n = 0 then 0 else f.landmark.(n - 1)
  in
  (* Lexicographic tie-break over the earlier landmark positions keeps the
     order total on distinct instances and consistent with
     [right_shift_compare]'s first-position tie-break on the compressed
     view (Def 3.1). *)
  let lex a b =
    let na = Array.length a.landmark and nb = Array.length b.landmark in
    let rec cmp j =
      if j >= na || j >= nb then Int.compare na nb
      else
        match Int.compare a.landmark.(j) b.landmark.(j) with
        | 0 -> cmp (j + 1)
        | c -> c
    in
    cmp 0
  in
  match Int.compare a.fseq b.fseq with
  | 0 -> ( match Int.compare (last a) (last b) with 0 -> lex a b | c -> c)
  | c -> c

let overlap a b =
  let na = Array.length a.landmark and nb = Array.length b.landmark in
  if na <> nb then invalid_arg "Instance.overlap: landmark lengths differ";
  a.fseq = b.fseq
  &&
  let rec shared j = j < na && (a.landmark.(j) = b.landmark.(j) || shared (j + 1)) in
  shared 0

let non_overlapping a b = not (overlap a b)

let strictly_overlap a b =
  a.fseq = b.fseq
  && Array.exists (fun l -> Array.exists (fun l' -> l = l') b.landmark) a.landmark

let is_landmark_of p s l =
  Array.length l = Pattern.length p
  && Array.for_all (fun pos -> pos >= 1 && pos <= Sequence.length s) l
  &&
  let increasing = ref true in
  for j = 1 to Array.length l - 1 do
    if l.(j) <= l.(j - 1) then increasing := false
  done;
  !increasing
  &&
  let matches = ref true in
  Array.iteri
    (fun j pos -> if not (Event.equal (Sequence.get s pos) (Pattern.get p (j + 1))) then matches := false)
    l;
  !matches

let pp ppf i = Format.fprintf ppf "(%d,<%d..%d>)" i.seq i.first i.last

let pp_full ppf f =
  Format.fprintf ppf "(%d,<%s>)" f.fseq
    (String.concat "," (List.map string_of_int (Array.to_list f.landmark)))

let equal (a : t) b = a = b
let equal_full (a : full) b = a.fseq = b.fseq && a.landmark = b.landmark
