open Rgs_sequence

type stats = {
  patterns : int;
  dfs_nodes : int;
  insgrow_calls : int;
  lb_pruned : int;
  non_closed_dropped : int;
  truncated : bool;
  outcome : Budget.outcome;
}

exception Budget_exhausted = Engine.Budget_exhausted

(* CloGSgrow is the engine with plain instance growth plus the closure
   spec: CCheck/LBCheck before expansion, equal-support appends as free
   non-closedness proof. The size-1 support sets reused as prepend bases
   by every closure check are memoised per run. *)
let strategy ~use_lb_check ~use_c_check =
  let make_closure idx ~events ~trace =
    let event_set_cache : (Event.t, Support_set.t) Hashtbl.t =
      Hashtbl.create 64
    in
    let event_sets e =
      match Hashtbl.find_opt event_set_cache e with
      | Some s -> s
      | None ->
        let s = Support_set.of_event idx e in
        Hashtbl.add event_set_cache e s;
        s
    in
    {
      Engine.check =
        (fun ~pattern ~support_set ~prefix_rev_chain ->
          if use_c_check || use_lb_check then begin
            let prefix_sets = Array.of_list (List.rev prefix_rev_chain) in
            let v =
              Closure.check ~event_sets ~trace idx ~candidate_events:events
                ~prefix_sets ~pattern ~support_set ~has_equal_append:false
            in
            if not use_lb_check then { v with Closure.prunable = false }
            else if not use_c_check then { v with Closure.closed = true }
            else v
          end
          else { Closure.closed = true; prunable = false });
      detect_equal_append = use_c_check;
    }
  in
  {
    Engine.name = "Clogsgrow";
    grow = Support_set.grow;
    closure = Some make_closure;
  }

let run ?max_length ?events ?roots ?(use_lb_check = true) ?(use_c_check = true)
    ?should_stop ?budget ?trace ?shards idx ~min_sup ~emit =
  let strategy =
    let base = strategy ~use_lb_check ~use_c_check in
    match shards with
    | None -> base
    | Some sm -> Shard_merge.strategy ?trace sm base
  in
  let s =
    Engine.run ?max_length ?events ?roots ?should_stop ?budget ?trace strategy
      idx ~min_sup ~emit
  in
  {
    patterns = s.Engine.emitted;
    dfs_nodes = s.Engine.dfs_nodes;
    insgrow_calls = s.Engine.insgrow_calls;
    lb_pruned = s.Engine.lb_pruned;
    non_closed_dropped = s.Engine.non_closed_dropped;
    truncated = s.Engine.truncated;
    outcome = s.Engine.outcome;
  }

let mine ?max_length ?max_patterns ?events ?roots ?use_lb_check ?use_c_check
    ?should_stop ?budget ?trace ?shards idx ~min_sup =
  let results = ref [] in
  let count = ref 0 in
  let emit r =
    results := r :: !results;
    incr count;
    match max_patterns with
    | Some budget when !count >= budget -> raise Budget_exhausted
    | _ -> ()
  in
  let stats =
    run ?max_length ?events ?roots ?use_lb_check ?use_c_check ?should_stop ?budget
      ?trace ?shards idx ~min_sup ~emit
  in
  (List.rev !results, stats)

let iter ?max_length ?events ?roots ?use_lb_check ?use_c_check ?should_stop ?budget
    ?trace ?shards idx ~min_sup ~f =
  run ?max_length ?events ?roots ?use_lb_check ?use_c_check ?should_stop ?budget
    ?trace ?shards idx ~min_sup ~emit:f
