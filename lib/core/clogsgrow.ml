open Rgs_sequence

type stats = {
  patterns : int;
  dfs_nodes : int;
  insgrow_calls : int;
  lb_pruned : int;
  non_closed_dropped : int;
  truncated : bool;
  outcome : Budget.outcome;
}

exception Budget_exhausted

let run ?max_length ?events ?roots ?(use_lb_check = true) ?(use_c_check = true)
    ?(should_stop = fun () -> false) ?budget ?(trace = Trace.null) idx ~min_sup
    ~emit =
  if min_sup < 1 then invalid_arg "Clogsgrow: min_sup must be >= 1";
  let events =
    match events with
    | Some es -> es
    | None -> Inverted_index.frequent_events idx ~min_sup
  in
  let roots = match roots with Some rs -> rs | None -> events in
  (* Size-1 support sets are reused as prepend bases by every closure
     check; memoise them for the whole run. *)
  let event_set_cache : (Event.t, Support_set.t) Hashtbl.t = Hashtbl.create 64 in
  let event_sets e =
    match Hashtbl.find_opt event_set_cache e with
    | Some s -> s
    | None ->
      let s = Support_set.of_event idx e in
      Hashtbl.add event_set_cache e s;
      s
  in
  let patterns = ref 0 in
  let dfs_nodes = ref 0 in
  let insgrow_calls = ref 0 in
  let lb_pruned = ref 0 in
  let non_closed_dropped = ref 0 in
  let outcome = ref Budget.Completed in
  let within_length p =
    match max_length with None -> true | Some l -> Pattern.length p < l
  in
  (* [rev_chain] holds the leftmost support sets of the proper prefixes and
     of [p] itself, most recent first (Theorem 7: O(sup_max · len_max)). *)
  let rec mine_fre p i rev_chain =
    if should_stop () then raise Budget_exhausted;
    (match budget with Some b -> Budget.check b | None -> ());
    incr dfs_nodes;
    let sup_p = Support_set.size i in
    Trace.instant trace Trace.Node ~a0:(Pattern.length p) ~a1:sup_p;
    (* Prunability does not depend on the appended extensions (an append
       always shifts the landmark border right), so the insert/prepend scan
       runs first: a pruned subtree never pays for its appends. *)
    let verdict =
      if use_c_check || use_lb_check then begin
        let prefix_sets = Array.of_list (List.rev rev_chain) in
        let v =
          Closure.check ~event_sets ~trace idx ~candidate_events:events
            ~prefix_sets ~pattern:p ~support_set:i ~has_equal_append:false
        in
        if not use_lb_check then { v with Closure.prunable = false }
        else if not use_c_check then { v with Closure.closed = true }
        else v
      end
      else { Closure.closed = true; prunable = false }
    in
    if verdict.Closure.prunable then begin
      incr lb_pruned;
      Trace.instant trace Trace.Lb_prune ~a0:(Pattern.length p) ~a1:sup_p
    end
    else begin
      let appends =
        List.map
          (fun e ->
            incr insgrow_calls;
            Budget.Fault.fire Budget.Fault.Insgrow;
            (e, Support_set.grow idx i e))
          events
      in
      let has_equal_append =
        use_c_check
        && List.exists (fun (_, i') -> Support_set.size i' = sup_p) appends
      in
      if verdict.Closure.closed && not has_equal_append then begin
        incr patterns;
        emit { Mined.pattern = p; support = sup_p; support_set = i }
      end
      else incr non_closed_dropped;
      if within_length p then begin
        let recursed = ref 0 in
        List.iter
          (fun (e, i_plus) ->
            if Support_set.size i_plus >= min_sup then begin
              incr recursed;
              mine_fre (Pattern.grow p e) i_plus (i_plus :: rev_chain)
            end)
          appends;
        Trace.instant trace Trace.Extension ~a0:(Pattern.length p) ~a1:!recursed
      end
    end
  in
  let mine_root e =
    let i = Support_set.of_event idx e in
    if Support_set.size i >= min_sup then begin
      let t0 = Trace.now trace in
      let before = !patterns in
      let finish () =
        Trace.span trace Trace.Root ~a0:e ~a1:(!patterns - before) ~start:t0
      in
      match mine_fre (Pattern.of_list [ e ]) i [ i ] with
      | () -> finish ()
      | exception ex ->
        finish ();
        raise ex
    end
  in
  (try List.iter mine_root roots with
  | Budget_exhausted ->
    outcome := Budget.Truncated;
    Metrics.hit Metrics.budget_stops;
    Trace.instant trace Trace.Budget_stop
      ~a0:(Budget.severity Budget.Truncated) ~a1:0
  | Budget.Stop reason ->
    outcome := reason;
    Metrics.hit Metrics.budget_stops;
    Trace.instant trace Trace.Budget_stop ~a0:(Budget.severity reason) ~a1:0);
  Metrics.add Metrics.dfs_nodes !dfs_nodes;
  Metrics.add Metrics.patterns_emitted !patterns;
  Metrics.add Metrics.lb_prunes !lb_pruned;
  {
    patterns = !patterns;
    dfs_nodes = !dfs_nodes;
    insgrow_calls = !insgrow_calls;
    lb_pruned = !lb_pruned;
    non_closed_dropped = !non_closed_dropped;
    truncated = Budget.is_stop !outcome;
    outcome = !outcome;
  }

let mine ?max_length ?max_patterns ?events ?roots ?use_lb_check ?use_c_check ?should_stop
    ?budget ?trace idx ~min_sup =
  let results = ref [] in
  let count = ref 0 in
  let emit r =
    results := r :: !results;
    incr count;
    match max_patterns with
    | Some budget when !count >= budget -> raise Budget_exhausted
    | _ -> ()
  in
  let stats =
    run ?max_length ?events ?roots ?use_lb_check ?use_c_check ?should_stop ?budget
      ?trace idx ~min_sup ~emit
  in
  (List.rev !results, stats)

let iter ?max_length ?events ?roots ?use_lb_check ?use_c_check ?should_stop ?budget
    ?trace idx ~min_sup ~f =
  run ?max_length ?events ?roots ?use_lb_check ?use_c_check ?should_stop ?budget
    ?trace idx ~min_sup ~emit:f
