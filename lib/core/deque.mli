(** Chase–Lev-style work-stealing deque (OCaml 5 multicore).

    One {e owner} domain pushes and pops at the bottom (LIFO, its own
    DFS order); any number of {e thief} domains steal from the top
    (FIFO — the oldest, largest deferred subtree). The classic
    algorithm (Chase & Lev, SPAA 2005; Lê et al., PPoPP 2013) adapted
    to the OCaml memory model: top, bottom and every buffer cell are
    [Atomic.t], so all inter-domain reads are SC and the stale-buffer
    argument needs no fences. The growable circular buffer keeps at
    most [capacity - 1] elements before doubling, which guarantees a
    live index is never overwritten in place — a steal that wins its
    CAS on [top] therefore returns the unique value published for that
    ticket, and a stale (pre-grow) buffer read is harmless because the
    grow copied the live range and retired buffers are left to the GC.

    Used by {!Parallel_miner}'s stealing pool: workers push deferred
    DFS extension subtrees and idle workers steal from the top, so one
    giant root no longer serializes the tail of a parallel run. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] makes an empty deque. [capacity] (default 64) is the
    initial buffer size, rounded up to a power of two [>= 2]; the
    buffer doubles on demand, so the capacity is not a bound. *)

val push : 'a t -> 'a -> unit
(** Owner only: publish a value at the bottom. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed value, or [None] when
    the deque is empty (racing thieves may take the last element). *)

type 'a steal_result =
  | Stolen of 'a
  | Empty  (** nothing published at the time of the attempt *)
  | Retry  (** lost a race with the owner or another thief; try again *)

val steal : 'a t -> 'a steal_result
(** Thief (any domain): try to take the oldest value. Lock-free: some
    domain always makes progress; an individual attempt may [Retry]. *)

val size : 'a t -> int
(** Snapshot of the number of published values ([>= 0]); exact only
    when quiescent — feeds the [deque_max_depth] gauge, not logic. *)
