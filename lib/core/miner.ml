open Rgs_sequence

type mode = All | Closed

type config = {
  min_sup : int;
  mode : mode;
  query : Query.t;
  max_length : int option;
  max_patterns : int option;
  max_gap : int option;
  domains : int option;
  shards : int option;
  shard_dispatch : Shard_merge.dispatch option;
  steal : bool;
  paged_index : bool;
  index_kind : Inverted_index.kind option;
  deadline_s : float option;
  max_nodes : int option;
  max_words : int option;
}

let validate_config cfg =
  if cfg.min_sup < 1 then invalid_arg "Miner: min_sup must be >= 1";
  Query.validate cfg.query;
  (match (cfg.query, cfg.max_patterns) with
  | Query.Top_k _, Some _ ->
    invalid_arg "Miner: max_patterns cannot be combined with a top-k query"
  | _ -> ());
  (match cfg.shards with
  | Some s when s < 1 -> invalid_arg "Miner: shards must be >= 1"
  | _ -> ());
  if cfg.shard_dispatch <> None && cfg.shards = None then
    invalid_arg "Miner: shard_dispatch requires shards";
  if cfg.shard_dispatch <> None && cfg.steal then
    invalid_arg "Miner: shard_dispatch cannot be combined with steal";
  if cfg.steal && cfg.domains = None then
    invalid_arg "Miner: steal requires domains";
  if cfg.steal && cfg.max_patterns <> None then
    invalid_arg "Miner: steal cannot be combined with max_patterns";
  (match cfg.deadline_s with
  | Some d when d < 0.0 -> invalid_arg "Miner: deadline_s must be >= 0"
  | _ -> ());
  (match cfg.max_nodes with
  | Some n when n < 0 -> invalid_arg "Miner: max_nodes must be >= 0"
  | _ -> ());
  match cfg.max_words with
  | Some w when w < 1 -> invalid_arg "Miner: max_words must be >= 1"
  | _ -> ()

let config ?(mode = Closed) ?(query = Query.All) ?max_length ?max_patterns
    ?max_gap ?domains ?shards ?shard_dispatch ?(steal = false)
    ?(paged_index = false) ?index_kind ?deadline_s ?max_nodes ?max_words
    ~min_sup () =
  let cfg =
    {
      min_sup;
      mode;
      query;
      max_length;
      max_patterns;
      max_gap;
      domains;
      shards;
      shard_dispatch;
      steal;
      paged_index;
      index_kind;
      deadline_s;
      max_nodes;
      max_words;
    }
  in
  validate_config cfg;
  cfg

(* [index_kind] wins over the older [paged_index] flag when both are set. *)
let build_index cfg db =
  match cfg.index_kind with
  | Some kind -> Inverted_index.build_kind kind db
  | None ->
    if cfg.paged_index then Inverted_index.build_paged db
    else Inverted_index.build db

type report = {
  results : Mined.t list;
  truncated : bool;
  outcome : Budget.outcome;
  elapsed_s : float;
  quarantined : int;
}

let log_src = Logs.Src.create "rgs.miner" ~doc:"Repetitive gapped subsequence mining"

module Log = (val Logs.src_log log_src : Logs.LOG)

let describe cfg =
  String.concat ""
    [
      (match cfg.max_gap with
      | Some g -> Printf.sprintf "gap-constrained (<= %d) " g
      | None -> "");
      (match cfg.mode with All -> "all" | Closed -> "closed");
      (match cfg.query with
      | Query.All -> ""
      | q -> Printf.sprintf ", query=%s" (Query.to_string q));
      (match cfg.domains with Some d -> Printf.sprintf ", %d domains" d | None -> "");
      (match cfg.shards with Some s -> Printf.sprintf ", %d shards" s | None -> "");
      (if cfg.shard_dispatch <> None then " (supervised)" else "");
      (if cfg.steal then ", stealing" else "");
      (match cfg.max_length with Some l -> Printf.sprintf ", max_length=%d" l | None -> "");
      (match cfg.max_patterns with Some b -> Printf.sprintf ", max_patterns=%d" b | None -> "");
      (match cfg.deadline_s with Some d -> Printf.sprintf ", deadline=%gs" d | None -> "");
      (match cfg.max_nodes with Some n -> Printf.sprintf ", max_nodes=%d" n | None -> "");
      (match cfg.max_words with Some w -> Printf.sprintf ", max_words=%d" w | None -> "");
    ]

(* With signal handlers installed every run needs a budget, even a
   limitless one: [Budget.check] is where the process-global shutdown flag
   is polled, so without it SIGTERM could not stop the DFS gracefully. *)
let budget_of cfg =
  match (cfg.deadline_s, cfg.max_nodes, cfg.max_words) with
  | None, None, None ->
    if Budget.signals_installed () then Some (Budget.create ()) else None
  | deadline_s, max_nodes, max_words ->
    Some (Budget.create ?deadline_s ?max_nodes ?max_words ())

(* The strategy a config's sequential DFS runs under — shared by the
   query path here and the per-root query path of [mine_resumable]. *)
let strategy_of cfg =
  match (cfg.max_gap, cfg.mode) with
  | Some max_gap, _ -> Gap_constrained.strategy ~min_gap:0 ~max_gap
  | None, All -> Gsgrow.strategy
  | None, Closed -> Clogsgrow.strategy ~use_lb_check:true ~use_c_check:true

(* The shard layout a config asks for, computed once per run from the
   index's backing database ([None] = unsharded). *)
let layout_of cfg idx =
  Option.map
    (fun n ->
      Shard_merge.make ?dispatch:cfg.shard_dispatch (Inverted_index.db idx)
        ~shards:n)
    cfg.shards

(* Under a top-k query the floor rises fastest when big subtrees are
   explored first, so roots are visited in descending single-event
   support; everything else keeps the index's canonical event order (the
   output order contract). Ties keep that canonical order too. *)
let query_root_order cfg idx events =
  match cfg.query with
  | Query.Top_k _ ->
    Some
      (List.stable_sort
         (fun a b ->
           Int.compare
             (Inverted_index.occurrence_count idx b)
             (Inverted_index.occurrence_count idx a))
         events)
  | Query.All | Query.Targeted _ -> None

(* Answer-mode pruning inside the DFS: one engine run under the query's
   plan, with the query's collector as the sink. *)
let mine_query ?trace cfg idx ~budget =
  let events = Inverted_index.frequent_events idx ~min_sup:cfg.min_sup in
  let collector =
    Query.collector ?max_length:cfg.max_length ~events ~min_sup:cfg.min_sup
      cfg.query
  in
  let count = ref 0 in
  let emit r =
    collector.Query.offer r;
    incr count;
    match cfg.max_patterns with
    | Some b when !count >= b -> raise Engine.Budget_exhausted
    | _ -> ()
  in
  let strategy =
    match layout_of cfg idx with
    | None -> strategy_of cfg
    | Some sm -> Shard_merge.strategy ?trace sm (strategy_of cfg)
  in
  let s =
    Engine.run ?max_length:cfg.max_length ~events
      ?roots:(query_root_order cfg idx events) ?budget ?trace
      ~plan:collector.Query.plan strategy idx ~min_sup:cfg.min_sup ~emit
  in
  (collector.Query.results (), s.Engine.outcome)

let mine_indexed ?trace cfg idx =
  validate_config cfg;
  (match (cfg.domains, cfg.max_patterns, cfg.max_gap) with
  | Some _, Some _, _ ->
    invalid_arg "Miner: domains cannot be combined with max_patterns"
  | Some _, _, Some _ when not cfg.steal ->
    invalid_arg "Miner: domains cannot be combined with max_gap"
  | _ -> ());
  (match (cfg.query, cfg.domains) with
  | Query.All, _ | _, None -> ()
  | _, Some _ ->
    if not cfg.steal then
      invalid_arg
        "Miner: domains cannot be combined with a query here (use \
         mine_resumable, or steal)");
  Log.info (fun m -> m "mining %s patterns, min_sup=%d" (describe cfg) cfg.min_sup);
  let budget = budget_of cfg in
  let start = Unix.gettimeofday () in
  let results, outcome, quarantined =
    match (cfg.steal, cfg.domains) with
    | true, Some domains ->
      (* the stealing executor handles every mode and query uniformly:
         the strategy captures gap/closure behaviour, the query runs
         through the shared thread-safe plan *)
      let results, stats, quarantined =
        Parallel_miner.mine_steal ~domains ?max_length:cfg.max_length ?budget
          ?trace ?shards:cfg.shards ~query:cfg.query
          ~strategy:(strategy_of cfg) idx ~min_sup:cfg.min_sup
      in
      (results, stats.Engine.outcome, quarantined)
    | true, None -> assert false (* validate_config rejects *)
    | false, _ ->
      let results, outcome =
        match (cfg.query, cfg.max_gap, cfg.domains, cfg.mode) with
        | (Query.Targeted _ | Query.Top_k _), _, _, _ ->
          mine_query ?trace cfg idx ~budget
        | Query.All, Some max_gap, _, _ ->
          let results, stats =
            Gap_constrained.mine ?max_length:cfg.max_length
              ?max_patterns:cfg.max_patterns ?budget ?trace
              ?shards:(layout_of cfg idx) idx ~max_gap ~min_sup:cfg.min_sup
          in
          (results, stats.Gap_constrained.outcome)
        | Query.All, None, Some domains, All ->
          let results, stats =
            Parallel_miner.mine_all ~domains ?max_length:cfg.max_length ?budget
              ?trace ?shards:cfg.shards ?shard_dispatch:cfg.shard_dispatch idx
              ~min_sup:cfg.min_sup
          in
          (results, stats.Gsgrow.outcome)
        | Query.All, None, Some domains, Closed ->
          let results, stats =
            Parallel_miner.mine_closed ~domains ?max_length:cfg.max_length
              ?budget ?trace ?shards:cfg.shards
              ?shard_dispatch:cfg.shard_dispatch idx ~min_sup:cfg.min_sup
          in
          (results, stats.Clogsgrow.outcome)
        | Query.All, None, None, All ->
          let results, stats =
            Gsgrow.mine ?max_length:cfg.max_length
              ?max_patterns:cfg.max_patterns ?budget ?trace
              ?shards:(layout_of cfg idx) idx ~min_sup:cfg.min_sup
          in
          (results, stats.Gsgrow.outcome)
        | Query.All, None, None, Closed ->
          let results, stats =
            Clogsgrow.mine ?max_length:cfg.max_length
              ?max_patterns:cfg.max_patterns ?budget ?trace
              ?shards:(layout_of cfg idx) idx ~min_sup:cfg.min_sup
          in
          (results, stats.Clogsgrow.outcome)
      in
      (results, outcome, 0)
  in
  let elapsed_s = Unix.gettimeofday () -. start in
  Log.info (fun m ->
      m "found %d pattern(s) (%a) in %.3fs" (List.length results) Budget.pp outcome
        elapsed_s);
  { results; truncated = Budget.is_stop outcome; outcome; elapsed_s; quarantined }

let mine ?config:cfg ?min_sup ?trace db =
  let cfg =
    match (cfg, min_sup) with
    | Some c, _ -> c
    | None, Some min_sup -> config ~min_sup ()
    | None, None -> invalid_arg "Miner.mine: provide ~config or ~min_sup"
  in
  let idx = build_index cfg db in
  mine_indexed ?trace cfg idx

(* --- checkpoint/resume driver --- *)

let checkpoint_fingerprint cfg db =
  Checkpoint.fingerprint
    ~params:
      ([
         (match cfg.mode with All -> "all" | Closed -> "closed");
         string_of_int cfg.min_sup;
         (match cfg.max_length with Some l -> string_of_int l | None -> "-");
       ]
      @
      (* appended only for non-trivial queries, so checkpoints written
         before queries existed keep their fingerprints; a resumed run
         under a {e different} query is refused (Checkpoint.Corrupt) *)
      match cfg.query with
      | Query.All -> []
      | q -> [ "query=" ^ Query.to_string q ])
    db

(* Chaos/testing knob: slow every root down so an external harness has a
   deterministic window to deliver signals or kill -9 mid-run. Unset (the
   default) costs one load per root. *)
let chaos_root_delay_s =
  lazy
    (match Sys.getenv_opt "RGS_CHAOS_ROOT_DELAY_MS" with
    | None -> 0.0
    | Some v -> ( try float_of_string v /. 1000.0 with Failure _ -> 0.0))

let mine_resumable ?budget ?checkpoint ?(resume = false)
    ?(retry_quarantined = false) ?(trace = Trace.null) cfg db =
  validate_config cfg;
  if cfg.max_gap <> None then
    invalid_arg "Miner: checkpointing is not supported with max_gap";
  if cfg.max_patterns <> None then
    invalid_arg "Miner: checkpointing is not supported with max_patterns";
  if cfg.steal then
    invalid_arg "Miner: checkpointing is not supported with steal";
  if resume && checkpoint = None then
    invalid_arg "Miner: resume requires a checkpoint path";
  let start = Unix.gettimeofday () in
  let idx = build_index cfg db in
  let events = Inverted_index.frequent_events idx ~min_sup:cfg.min_sup in
  let fp = checkpoint_fingerprint cfg db in
  let prior =
    match (resume, checkpoint) with
    | true, Some path -> Checkpoint.load_opt ~path ~expected_fingerprint:fp
    | _ -> None
  in
  let prior_completed =
    match prior with None -> [] | Some c -> c.Checkpoint.completed
  in
  let prior_quarantined =
    match prior with None -> [] | Some c -> c.Checkpoint.quarantined
  in
  let completed_results : (Event.t, Mined.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun { Checkpoint.root; results } ->
      Hashtbl.replace completed_results root results)
    prior_completed;
  (* Quarantined roots stay off the frontier — a poison root must not
     re-crash every resume — unless the caller explicitly asks to re-mine
     them ([retry_quarantined], e.g. after fixing the cause). *)
  let skip_quarantined = not retry_quarantined in
  let quarantined_skipped : (Event.t, unit) Hashtbl.t = Hashtbl.create 8 in
  if skip_quarantined then
    List.iter
      (fun (q : Checkpoint.quarantine) ->
        if not (Hashtbl.mem completed_results q.root) then
          Hashtbl.replace quarantined_skipped q.root ())
      prior_quarantined;
  let remaining =
    List.filter
      (fun root ->
        (not (Hashtbl.mem completed_results root))
        && not (Hashtbl.mem quarantined_skipped root))
      events
  in
  Log.info (fun m ->
      m "mining %s patterns, min_sup=%d: %d/%d root(s) to mine%s%s" (describe cfg)
        cfg.min_sup (List.length remaining) (List.length events)
        (if prior <> None then " (resumed)" else "")
        (match Hashtbl.length quarantined_skipped with
        | 0 -> ""
        | n -> Printf.sprintf " (%d quarantined root(s) skipped)" n));
  (* An external budget (the daemon's per-job budget) wins over the
     config-derived one: the caller owns its limits and its cancellation. *)
  let budget =
    match budget with Some b -> Some b | None -> budget_of cfg
  in
  let roots = Array.of_list remaining in
  let domains =
    match cfg.domains with
    | Some d ->
      if d < 1 then invalid_arg "Miner: domains must be >= 1";
      d
    | None -> 1
  in
  let writer =
    Option.map
      (fun path ->
        let initial =
          match prior with Some c -> Checkpoint.records_of c | None -> []
        in
        Checkpoint.Writer.create ~trace ~initial ~path ~fingerprint:fp ())
      checkpoint
  in
  (* Append one [Root_done] record the moment a root completes — that is
     the durability unit: a kill -9 loses at most the root being appended.
     [logged] feeds the Checkpoint_write span args (completed, remaining). *)
  let total_roots = List.length events in
  let logged = Atomic.make (Hashtbl.length completed_results) in
  let log_root_done root results =
    match writer with
    | None -> ()
    | Some w ->
      let t0 = Trace.now trace in
      Checkpoint.Writer.append w (Checkpoint.Root_done { root; results });
      let done_now = 1 + Atomic.fetch_and_add logged 1 in
      Trace.span trace Trace.Checkpoint_write ~a0:done_now
        ~a1:(total_roots - done_now) ~start:t0
  in
  let layout = layout_of cfg idx in
  let mine_root k =
    (match Lazy.force chaos_root_delay_s with
    | 0.0 -> ()
    | d -> ( try Unix.sleepf d with Unix.Unix_error (Unix.EINTR, _, _) -> ()));
    let ((results, outcome) as r) =
      match cfg.query with
      | Query.Targeted _ | Query.Top_k _ ->
        (* Per-root query runs: a root's local answer over-approximates its
           contribution to the global one (for top-k, any globally winning
           pattern is in its root's local top-k), so the checkpointed
           per-root answers stay root-independent and the global answer is
           recovered at assembly time. *)
        let collector =
          Query.collector ?max_length:cfg.max_length ~events
            ~min_sup:cfg.min_sup cfg.query
        in
        let wtr = Trace.for_domain trace in
        let strategy =
          match layout with
          | None -> strategy_of cfg
          | Some sm -> Shard_merge.strategy ~trace:wtr sm (strategy_of cfg)
        in
        let s =
          Engine.run ?max_length:cfg.max_length ?budget ~trace:wtr ~events
            ~roots:[ roots.(k) ] ~plan:collector.Query.plan strategy idx
            ~min_sup:cfg.min_sup ~emit:collector.Query.offer
        in
        (collector.Query.results (), s.Engine.outcome)
      | Query.All -> (
        match cfg.mode with
        | All ->
          let results, stats =
            Gsgrow.mine ?max_length:cfg.max_length ?budget
              ~trace:(Trace.for_domain trace) ?shards:layout ~events
              ~roots:[ roots.(k) ] idx ~min_sup:cfg.min_sup
          in
          (results, stats.Gsgrow.outcome)
        | Closed ->
          let results, stats =
            Clogsgrow.mine ?max_length:cfg.max_length ?budget
              ~trace:(Trace.for_domain trace) ?shards:layout ~events
              ~roots:[ roots.(k) ] idx ~min_sup:cfg.min_sup
          in
          (results, stats.Clogsgrow.outcome))
    in
    if outcome = Budget.Completed then log_root_done roots.(k) results;
    r
  in
  let slots, halt_reason =
    Parallel_miner.run_pool ~trace
      ~halt_on:(fun (_, outcome) -> Budget.is_stop outcome)
      ~order:(Parallel_miner.largest_first_order idx roots)
      ~domains ~num_roots:(Array.length roots) ~mine_root ()
  in
  let slots = Parallel_miner.retry_failed ~trace ~mine_root slots in
  (* Classify each freshly mined root: fully completed roots advance the
     checkpoint frontier; partially mined and crashed roots stay on it, but
     partial results still reach the report; quarantined roots are recorded
     so the next resume skips them. *)
  let partials = Hashtbl.create 16 in
  let quarantined_now = ref [] in
  let outcome = ref (Option.value halt_reason ~default:Budget.Completed) in
  if Hashtbl.length quarantined_skipped > 0 then
    (* the output is missing the skipped roots' patterns *)
    outcome := Budget.combine !outcome Budget.Worker_failed;
  Array.iteri
    (fun k status ->
      let root = roots.(k) in
      match status with
      | Parallel_miner.Done (results, Budget.Completed) ->
        Hashtbl.replace completed_results root results
      | Parallel_miner.Done (results, stop) ->
        Hashtbl.replace partials root results;
        outcome := Budget.combine !outcome stop
      | Parallel_miner.Failed _ ->
        (* only reachable if retry_failed was skipped for this slot *)
        outcome := Budget.combine !outcome Budget.Worker_failed
      | Parallel_miner.Quarantined { exn; backtrace } ->
        quarantined_now :=
          { Checkpoint.root; reason = Printexc.to_string exn; backtrace }
          :: !quarantined_now;
        outcome := Budget.combine !outcome Budget.Worker_failed
      | Parallel_miner.Skipped ->
        (* the pool halted before this root; the halt reason (or another
           root's stop outcome) already accounts for it *)
        ())
    slots;
  let quarantined_now = List.rev !quarantined_now in
  let outcome = !outcome in
  (* Assemble the report in the full root order, so a resumed run completes
     to exactly the uninterrupted run's output. *)
  let results =
    List.concat_map
      (fun root ->
        match Hashtbl.find_opt completed_results root with
        | Some rs -> rs
        | None -> (
          match Hashtbl.find_opt partials root with Some rs -> rs | None -> []))
      events
  in
  (* Per-root top-k answers merge into the global one here; ties at the k
     boundary resolve by [compare_by_support_desc], deterministically. *)
  let results =
    match cfg.query with
    | Query.Top_k k ->
      List.filteri
        (fun i _ -> i < k)
        (List.sort Mined.compare_by_support_desc results)
    | Query.All | Query.Targeted _ -> results
  in
  (match writer with
  | None -> ()
  | Some w ->
    List.iter
      (fun q -> Checkpoint.Writer.append w (Checkpoint.Root_quarantined q))
      quarantined_now;
    Checkpoint.Writer.append w (Checkpoint.Run_outcome outcome);
    Checkpoint.Writer.close w);
  let quarantined =
    Hashtbl.length quarantined_skipped + List.length quarantined_now
  in
  let elapsed_s = Unix.gettimeofday () -. start in
  Log.info (fun m ->
      m "found %d pattern(s) (%a) in %.3fs" (List.length results) Budget.pp outcome
        elapsed_s);
  { results; truncated = Budget.is_stop outcome; outcome; elapsed_s; quarantined }

let landmarks db p = Sup_comp.landmarks (Inverted_index.build db) p
let support db p = Sup_comp.support (Inverted_index.build db) p

let pp_report ?codec ?(limit = 20) ppf report =
  let pp_one =
    match codec with Some c -> Mined.pp_with c | None -> Mined.pp
  in
  let sorted = List.sort Mined.compare_by_support_desc report.results in
  let total = List.length sorted in
  let suffix =
    match report.outcome with
    | Budget.Completed -> ""
    | Budget.Truncated -> " (truncated)"
    | o -> Printf.sprintf " (partial: %s)" (Budget.to_string o)
  in
  Format.fprintf ppf "@[<v>%d pattern%s%s in %.3fs@," total
    (if total = 1 then "" else "s")
    suffix report.elapsed_s;
  List.iteri
    (fun k r -> if k < limit then Format.fprintf ppf "  %a@," pp_one r)
    sorted;
  if total > limit then Format.fprintf ppf "  ... (%d more)@," (total - limit);
  Format.fprintf ppf "@]"
